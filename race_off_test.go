//go:build !race

package repro

// raceEnabled reports whether this binary was built with the race detector.
const raceEnabled = false
