package repro_test

// This file executes docs/TUTORIAL.md: the real-estate ontology and page
// below are the tutorial's, verbatim in substance, and every claim the
// tutorial makes is asserted here so the document cannot drift from the
// code.

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/reldb"
	"repro/internal/wrapper"
)

const realEstateDSL = `
ontology RealEstate
entity Listing

lexicon Suffix { Street Avenue Drive Lane Road Court Circle }

object Price : one-to-one {
    type price
    keyword ` + "`[Aa]sking|[Pp]riced at|[Oo]ffered at`" + `
    value ` + "`\\$[0-9][0-9,]*`" + `
}
object Bedrooms : one-to-one {
    type rooms
    keyword ` + "`[0-9] (?:bdrm|bedroom|BR)`" + `
}
object Phone : one-to-one {
    type phone
    value ` + "`\\(?[0-9]{3}\\)?[ -][0-9]{3}-[0-9]{4}`" + `
}
object Address : one-to-one {
    type address
    value ` + "`[0-9]{2,5} [A-Z][a-z]+ {Suffix}`" + `
}
object SquareFeet : functional {
    type area
    keyword ` + "`[0-9,]+ sq\\.? ?ft`" + `
}
object Feature : many {
    type feature
    keyword ` + "`garage|fireplace|fenced yard|new roof|hardwood floors`" + `
}

relationship Costs : Listing [1] Price [1]
relationship LocatedAt : Listing [1] Address [1]
`

// Note the two bold runs per listing: a tag that appears exactly once per
// record is statistically indistinguishable from the separator (its count
// matches OM's estimate and RP's boundary-pair count matches its own), so
// a page whose only markup is one bold address per record genuinely has
// two correct separators. Real listings pages, like Figure 2, bold more.
const listingsPage = `<html><head><title>Homes For Sale</title></head>
<body>
<h1>Homes For Sale - October 1998</h1>
<div>
<hr>
<b>412 Maple Street</b> Charming 3 bdrm rambler, 1,450 sq. ft., fireplace
and fenced yard. Offered at $128,500. Call Nancy (801) 555-8714.
<b>OPEN HOUSE SATURDAY</b>.
<hr>
<b>77 Cedar Lane</b> Spacious 4 bedroom two-story, 2,200 sq ft, garage,
hardwood floors. Asking $189,900. Call (801) 555-2203 evenings.
<b>REDUCED</b>.
<hr>
<b>1508 Willow Court</b> Cozy 2 BR starter with new roof. Priced at
$94,000. Call Ted (435) 555-9917. <b>MUST SEE</b>.
<hr>
<b>23 Aspen Circle</b> Updated 3 bedroom with fireplace, 1,800 sq ft.
Asking $142,000. Call Rosa (801) 555-6641. <b>BY OWNER</b>.
<hr>
</div>
</body></html>`

func tutorialOntology(t *testing.T) *repro.Ontology {
	t.Helper()
	ont, err := repro.ParseOntology(realEstateDSL)
	if err != nil {
		t.Fatal(err)
	}
	return ont
}

func TestTutorialOntologyFieldSelection(t *testing.T) {
	ont := tutorialOntology(t)
	fields, ok := ont.RecordIdentifyingFields()
	if !ok {
		t.Fatal("tutorial ontology must yield record-identifying fields")
	}
	// ≥3 one-to-one fields: keywords first (Price, Bedrooms), then unique-
	// typed values (Phone, Address); the 20% rule caps at 3 for 6 sets.
	var names []string
	for _, f := range fields {
		names = append(names, f.Set.Name)
	}
	if got := strings.Join(names, " "); got != "Price Bedrooms Phone" {
		t.Errorf("fields = %q, want %q", got, "Price Bedrooms Phone")
	}
}

func TestTutorialDiscovery(t *testing.T) {
	ont := tutorialOntology(t)
	res, err := repro.DiscoverWithOntology(listingsPage, ont)
	if err != nil {
		t.Fatal(err)
	}
	if res.Separator != "hr" {
		t.Fatalf("separator = %s, want hr\n%s", res.Separator, repro.Explain(res))
	}
	if _, ok := res.Rankings["OM"]; !ok {
		t.Error("OM should vote with the tutorial ontology")
	}
}

func TestTutorialClassification(t *testing.T) {
	cls, err := repro.Classify(listingsPage, tutorialOntology(t))
	if err != nil {
		t.Fatal(err)
	}
	if cls.Kind != repro.MultipleRecords {
		t.Errorf("kind = %v (estimate %.2f), want multiple-records", cls.Kind, cls.Estimate)
	}
}

func TestTutorialExtraction(t *testing.T) {
	ont := tutorialOntology(t)
	db, err := repro.Extract(listingsPage, ont)
	if err != nil {
		t.Fatal(err)
	}
	rows := db.Table("Listing").Select(nil)
	if len(rows) != 4 {
		t.Fatalf("listings = %d, want 4", len(rows))
	}
	wantPrices := []string{"$128,500", "$189,900", "$94,000", "$142,000"}
	wantAddrs := []string{"412 Maple Street", "77 Cedar Lane", "1508 Willow Court", "23 Aspen Circle"}
	for i, row := range rows {
		if got := row.Get("Price").Str; got != wantPrices[i] {
			t.Errorf("listing %d price = %q, want %q", i+1, got, wantPrices[i])
		}
		if got := row.Get("Address").Str; got != wantAddrs[i] {
			t.Errorf("listing %d address = %q, want %q", i+1, got, wantAddrs[i])
		}
	}
	// The many-valued features table.
	features := db.Table("Listing_Feature")
	if features == nil || features.Len() < 4 {
		t.Errorf("features table = %v", features)
	}

	// The tutorial's query: listings under $200,000 ordered by price.
	cheap := db.Table("Listing").Query().
		WhereNotNull("Price").
		Where("Price", reldb.Lt, "$200,000").
		OrderBy("Price").
		Rows()
	if len(cheap) != 4 || cheap[0].Get("Price").Str != "$94,000" {
		t.Errorf("query result wrong: %d rows, first %v", len(cheap), cheap[0].Get("Price"))
	}
}

func TestTutorialWrapper(t *testing.T) {
	ont := tutorialOntology(t)
	// One page is a legal (if small) training sample for a consistent site.
	w, err := wrapper.Learn([]string{listingsPage, listingsPage}, ont)
	if err != nil {
		t.Fatal(err)
	}
	if w.Separator != "hr" {
		t.Errorf("wrapper separator = %s", w.Separator)
	}
	recs, err := w.Apply(listingsPage)
	if err != nil || len(recs) != 4 {
		t.Errorf("apply: %d records, err %v", len(recs), err)
	}
}
