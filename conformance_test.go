package repro

// Differential conformance suite: every serving surface of the system must
// give byte-for-byte the same discovery answer for the same document. For
// each document of the 20-site test corpus the suite runs
//
//	core.Discover            (the library's synchronous entry point)
//	core.DiscoverContext     (the cancellable entry point)
//	POST /v1/discover        (both the cache miss and the cache hit)
//	POST /v1/discover/batch  (the concurrent batch endpoint)
//	POST /v1/discover/stream (the streaming bulk surface)
//	pipeline.Engine          (the bulk engine cmd/bulk wires up)
//
// and requires the six answers to agree on separator, top tags, compound
// certainty scores, per-heuristic rankings, and candidate sets. A
// disagreement means one surface drifted from the shared pipeline —
// exactly the regression class this suite pins down. Run under -race it
// doubles as a concurrency check on the batch and stream paths.
//
// TestClusterConformance extends the matrix to the scale-out tier: a
// consistent-hash router over three replicas (in-process backends in one
// topology, real HTTP servers in the other) must be byte-for-byte
// indistinguishable from a single node on the interactive, cached, batch,
// and stream surfaces.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/tagtree"
	"repro/internal/template"
)

// wireResult is the canonical cross-surface answer: the wire shape shared by
// /v1/discover, batch, stream, and the bulk engine, with empty collections
// normalized to nil so JSON round-trips compare equal to in-process results.
type wireResult struct {
	Separator  string               `json:"separator"`
	TopTags    []string             `json:"top_tags"`
	Scores     []wireScore          `json:"scores"`
	Rankings   map[string][]wireRow `json:"rankings"`
	Candidates []wireCand           `json:"candidates"`
	Subtree    string               `json:"subtree"`
	Degraded   bool                 `json:"degraded"`
	Failed     []string             `json:"failed_heuristics"`
}

type wireScore struct {
	Tag string  `json:"tag"`
	CF  float64 `json:"cf"`
}

type wireRow struct {
	Tag  string `json:"tag"`
	Rank int    `json:"rank"`
}

type wireCand struct {
	Tag   string `json:"tag"`
	Count int    `json:"count"`
}

// normalize maps empty collections to nil, in place.
func (w *wireResult) normalize() *wireResult {
	if len(w.TopTags) == 0 {
		w.TopTags = nil
	}
	if len(w.Scores) == 0 {
		w.Scores = nil
	}
	if len(w.Rankings) == 0 {
		w.Rankings = nil
	}
	for k, rows := range w.Rankings {
		if len(rows) == 0 {
			delete(w.Rankings, k)
		}
	}
	if len(w.Candidates) == 0 {
		w.Candidates = nil
	}
	if len(w.Failed) == 0 {
		w.Failed = nil
	}
	return w
}

// fromCore converts a core.Result into the canonical wire shape.
func fromCore(res *core.Result) *wireResult {
	w := &wireResult{
		Separator: res.Separator,
		TopTags:   append([]string(nil), res.TopTags...),
		Subtree:   res.Subtree.Name,
		Degraded:  res.Degraded,
		Failed:    append([]string(nil), res.FailedHeuristics...),
	}
	for _, s := range res.Scores {
		w.Scores = append(w.Scores, wireScore{Tag: s.Tag, CF: s.CF})
	}
	if len(res.Rankings) > 0 {
		w.Rankings = make(map[string][]wireRow, len(res.Rankings))
		for name, ranking := range res.Rankings {
			rows := make([]wireRow, 0, len(ranking))
			for _, e := range ranking {
				rows = append(rows, wireRow{Tag: e.Tag, Rank: e.Rank})
			}
			w.Rankings[name] = rows
		}
	}
	for _, c := range res.Candidates {
		w.Candidates = append(w.Candidates, wireCand{Tag: c.Name, Count: c.Count})
	}
	return w.normalize()
}

// decodeWire parses one surface's JSON answer into the canonical shape.
func decodeWire(t *testing.T, data []byte) *wireResult {
	t.Helper()
	var w wireResult
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
	return w.normalize()
}

// conformanceServer runs the full HTTP handler with the cache enabled, so
// the cached path is part of the matrix.
func conformanceServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(httpapi.NewHandler(httpapi.Config{CacheSize: 64}))
	t.Cleanup(srv.Close)
	return srv
}

func conformancePost(t *testing.T, url string, body any) []byte {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, buf.Bytes())
	}
	return buf.Bytes()
}

// TestConformanceAcrossSurfaces is the differential suite over the full
// 20-site test corpus.
func TestConformanceAcrossSurfaces(t *testing.T) {
	docs := corpus.TestDocuments()
	srv := conformanceServer(t)

	// Reference answers: the synchronous library entry point.
	want := make([]*wireResult, len(docs))
	for i, d := range docs {
		res, err := core.Discover(d.HTML, core.Options{
			Ontology: BuiltinOntology(string(d.Site.Domain)),
		})
		if err != nil {
			t.Fatalf("%s: Discover: %v", d.Site.Name, err)
		}
		want[i] = fromCore(res)
	}

	t.Run("DiscoverContext", func(t *testing.T) {
		for i, d := range docs {
			res, err := core.DiscoverContext(context.Background(), d.HTML, core.Options{
				Ontology: BuiltinOntology(string(d.Site.Domain)),
			})
			if err != nil {
				t.Fatalf("%s: %v", d.Site.Name, err)
			}
			if got := fromCore(res); !reflect.DeepEqual(got, want[i]) {
				t.Errorf("%s: DiscoverContext disagrees with Discover:\n got %+v\nwant %+v",
					d.Site.Name, got, want[i])
			}
		}
	})

	t.Run("ByteArena", func(t *testing.T) {
		// The byte-level hot path: one arena reused across the whole corpus,
		// serial heuristics, []byte input. Must be bit-identical to the
		// string path's answers on every document.
		arena := tagtree.AcquireArena()
		defer arena.Release()
		for i, d := range docs {
			res, err := core.DiscoverBytesContext(context.Background(), []byte(d.HTML), core.Options{
				Ontology: BuiltinOntology(string(d.Site.Domain)),
				Arena:    arena,
			})
			if err != nil {
				t.Fatalf("%s: %v", d.Site.Name, err)
			}
			// fromCore copies everything compared, so the next iteration's
			// arena reset cannot corrupt this document's snapshot.
			if got := fromCore(res); !reflect.DeepEqual(got, want[i]) {
				t.Errorf("%s: DiscoverBytesContext (arena) disagrees with Discover:\n got %+v\nwant %+v",
					d.Site.Name, got, want[i])
			}
		}
	})

	t.Run("HTTPMissAndHit", func(t *testing.T) {
		for _, label := range []string{"miss", "hit"} {
			for i, d := range docs {
				body := conformancePost(t, srv.URL+"/v1/discover", map[string]any{
					"html": d.HTML, "ontology": string(d.Site.Domain),
				})
				if got := decodeWire(t, body); !reflect.DeepEqual(got, want[i]) {
					t.Errorf("%s: /v1/discover (%s) disagrees:\n got %+v\nwant %+v",
						d.Site.Name, label, got, want[i])
				}
			}
		}
	})

	t.Run("Batch", func(t *testing.T) {
		var documents []map[string]any
		for _, d := range docs {
			documents = append(documents, map[string]any{
				"html": d.HTML, "ontology": string(d.Site.Domain),
			})
		}
		body := conformancePost(t, srv.URL+"/v1/discover/batch", map[string]any{"documents": documents})
		var parsed struct {
			Results []json.RawMessage `json:"results"`
		}
		if err := json.Unmarshal(body, &parsed); err != nil {
			t.Fatal(err)
		}
		if len(parsed.Results) != len(docs) {
			t.Fatalf("batch returned %d results, want %d", len(parsed.Results), len(docs))
		}
		for i, raw := range parsed.Results {
			if got := decodeWire(t, raw); !reflect.DeepEqual(got, want[i]) {
				t.Errorf("%s: batch disagrees:\n got %+v\nwant %+v",
					docs[i].Site.Name, got, want[i])
			}
		}
	})

	t.Run("Stream", func(t *testing.T) {
		var in bytes.Buffer
		for _, d := range docs {
			line, err := json.Marshal(map[string]any{
				"html": d.HTML, "ontology": string(d.Site.Domain),
			})
			if err != nil {
				t.Fatal(err)
			}
			in.Write(line)
			in.WriteByte('\n')
		}
		resp, err := http.Post(srv.URL+"/v1/discover/stream", "application/x-ndjson", &in)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream status = %d", resp.StatusCode)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		i := 0
		for sc.Scan() {
			if len(bytes.TrimSpace(sc.Bytes())) == 0 {
				continue
			}
			if i >= len(docs) {
				t.Fatalf("stream returned more lines than documents: %s", sc.Text())
			}
			if got := decodeWire(t, sc.Bytes()); !reflect.DeepEqual(got, want[i]) {
				t.Errorf("%s: stream disagrees:\n got %+v\nwant %+v",
					docs[i].Site.Name, got, want[i])
			}
			i++
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if i != len(docs) {
			t.Fatalf("stream returned %d lines, want %d", i, len(docs))
		}
	})

	t.Run("BulkEngine", func(t *testing.T) {
		var tasks []*pipeline.Task
		for _, d := range docs {
			tasks = append(tasks, &pipeline.Task{
				Mode:     "html",
				Doc:      d.HTML,
				Ontology: string(d.Site.Domain),
			})
		}
		var out bytes.Buffer
		eng := pipeline.New(pipeline.Config{Workers: 4})
		stats, err := eng.Run(context.Background(),
			pipeline.NewSliceSource(tasks), pipeline.NewWriterSink(&out, nil), nil)
		if err != nil {
			t.Fatal(err)
		}
		if stats.OK != len(docs) {
			t.Fatalf("bulk stats = %+v", stats)
		}
		i := 0
		for _, line := range bytes.Split(bytes.TrimSpace(out.Bytes()), []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			if got := decodeWire(t, line); !reflect.DeepEqual(got, want[i]) {
				t.Errorf("%s: bulk engine disagrees:\n got %+v\nwant %+v",
					docs[i].Site.Name, got, want[i])
			}
			i++
		}
		if i != len(docs) {
			t.Fatalf("bulk engine returned %d outcomes, want %d", i, len(docs))
		}
	})
}

// TestConformanceXML extends the matrix to the XML mode on a synthetic feed:
// library, HTTP, stream, and bulk engine must agree there too.
func TestConformanceXML(t *testing.T) {
	feed := `<catalog>` + strings.Repeat(`<item><title>t</title><price>p</price></item>`, 6) + `</catalog>`
	srv := conformanceServer(t)

	res, err := DiscoverXML(feed, Options{SeparatorList: []string{"item"}})
	if err != nil {
		t.Fatal(err)
	}
	want := fromCore(res)

	arena := tagtree.AcquireArena()
	bres, err := core.DiscoverXMLBytesContext(context.Background(), []byte(feed), core.Options{
		SeparatorList: []string{"item"},
		Arena:         arena,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := fromCore(bres)
	arena.Release()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DiscoverXMLBytesContext (arena) disagrees:\n got %+v\nwant %+v", got, want)
	}

	body := conformancePost(t, srv.URL+"/v1/discover", map[string]any{
		"xml": feed, "separator_list": []string{"item"},
	})
	if got := decodeWire(t, body); !reflect.DeepEqual(got, want) {
		t.Errorf("/v1/discover (xml) disagrees:\n got %+v\nwant %+v", got, want)
	}

	line, _ := json.Marshal(map[string]any{"xml": feed, "separator_list": []string{"item"}})
	resp, err := http.Post(srv.URL+"/v1/discover/stream", "application/x-ndjson",
		bytes.NewReader(append(line, '\n')))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if got := decodeWire(t, bytes.TrimSpace(buf.Bytes())); !reflect.DeepEqual(got, want) {
		t.Errorf("stream (xml) disagrees:\n got %+v\nwant %+v", got, want)
	}

	var out bytes.Buffer
	eng := pipeline.New(pipeline.Config{})
	if _, err := eng.Run(context.Background(),
		pipeline.NewSliceSource([]*pipeline.Task{{
			Mode: "xml", Doc: feed, SeparatorList: []string{"item"},
		}}),
		pipeline.NewWriterSink(&out, nil), nil); err != nil {
		t.Fatal(err)
	}
	if got := decodeWire(t, bytes.TrimSpace(out.Bytes())); !reflect.DeepEqual(got, want) {
		t.Errorf("bulk engine (xml) disagrees:\n got %+v\nwant %+v", got, want)
	}
}

// TestTemplateFastPathConformance is the template-store layer of the
// differential suite: a server answering from the learned-wrapper fast path
// (docs/WRAPPER.md) must be byte-for-byte indistinguishable from a server
// that has no store at all, for every corpus document — on the cold request
// that learns the wrapper AND the warm request served from it. Caching is
// disabled on every node so the result cache cannot mask which path
// produced the bytes, and store counters prove the warm pass really took
// the fast path rather than quietly falling back to full discovery.
func TestTemplateFastPathConformance(t *testing.T) {
	docs := corpus.TestDocuments()

	// Reference answers: a template-free, cache-free server.
	ref := httptest.NewServer(httpapi.NewHandler(httpapi.Config{}))
	t.Cleanup(ref.Close)

	bodies := make([][]byte, len(docs))
	for i, d := range docs {
		b, err := json.Marshal(map[string]any{
			"html": d.HTML, "ontology": string(d.Site.Domain),
		})
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = b
	}
	want := make([][]byte, len(docs))
	for i := range docs {
		code, body := postRaw(t, ref.URL+"/v1/discover", "application/json", bodies[i])
		if code != http.StatusOK {
			t.Fatalf("%s: reference status %d", docs[i].Site.Name, code)
		}
		want[i] = body
	}

	// checkPasses drives the cold (learning) and warm (fast path) passes
	// against one templated URL and diffs every response against the
	// template-free reference.
	checkPasses := func(t *testing.T, url string) {
		for _, label := range []string{"cold", "warm"} {
			for i, d := range docs {
				code, got := postRaw(t, url+"/v1/discover", "application/json", bodies[i])
				if code != http.StatusOK {
					t.Fatalf("%s (%s): status %d", d.Site.Name, label, code)
				}
				if !bytes.Equal(got, want[i]) {
					t.Errorf("%s (%s): templated bytes differ from template-free reference:\n got %s\nwant %s",
						d.Site.Name, label, got, want[i])
				}
			}
		}
	}

	// assertFastPath proves the passes went where they should have: every
	// document missed once (and was learned), then hit once.
	assertFastPath := func(t *testing.T, store *template.Store) {
		stats := store.Stats()
		if stats.Entries != len(docs) || stats.Stores != float64(len(docs)) {
			t.Errorf("cold pass learned %d entries (%v stores), want %d",
				stats.Entries, stats.Stores, len(docs))
		}
		if stats.Misses != float64(len(docs)) || stats.Hits != float64(len(docs)) {
			t.Errorf("store saw %v misses / %v hits, want %d / %d",
				stats.Misses, stats.Hits, len(docs), len(docs))
		}
	}

	t.Run("SingleNode", func(t *testing.T) {
		store, err := template.Open(template.Config{Metrics: obs.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		srv := httptest.NewServer(httpapi.NewHandler(httpapi.Config{Templates: store}))
		t.Cleanup(srv.Close)
		checkPasses(t, srv.URL)
		assertFastPath(t, store)
	})

	// Three replicas holding the same *Store — the cmd/serve cluster wiring.
	// Wherever the router lands the cold request, the learned wrapper is
	// visible to every replica, so the warm pass hits regardless of routing.
	t.Run("ThreeReplicasSharedStore", func(t *testing.T) {
		store, err := template.Open(template.Config{Metrics: obs.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		var peers []cluster.Peer
		for i := 0; i < 3; i++ {
			peers = append(peers, cluster.NewLocalPeer(fmt.Sprintf("replica-%d", i),
				httpapi.NewHandler(httpapi.Config{Templates: store})))
		}
		srv := newClusterServer(t, peers)
		checkPasses(t, srv.URL)
		assertFastPath(t, store)
	})
}

// failDiff is a debugging aid: render a wireResult compactly when the
// conformance suite reports a disagreement.
func (w *wireResult) String() string {
	data, err := json.Marshal(w)
	if err != nil {
		return fmt.Sprintf("%#v", *w)
	}
	return string(data)
}

// newClusterServer serves a consistent-hash router over the given replicas.
func newClusterServer(t *testing.T, peers []cluster.Peer) *httptest.Server {
	t.Helper()
	router, err := cluster.NewRouter(cluster.Config{
		Peers:          peers,
		HealthInterval: time.Minute, // conformance never exercises health transitions
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	srv := httptest.NewServer(router)
	t.Cleanup(srv.Close)
	return srv
}

// postRaw posts pre-marshaled bytes and returns status and body verbatim.
func postRaw(t *testing.T, url, contentType string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestClusterConformance is the cluster layer of the differential suite: a
// router over three replicas — in-process backends in one topology, real
// HTTP servers in the other — must answer byte-for-byte what a single node
// answers, for every corpus document, on the interactive (cache miss AND
// hit), batch, and stream surfaces. The cluster being routed, hashed, and
// hedge-capable must be invisible in the bytes.
func TestClusterConformance(t *testing.T) {
	docs := corpus.TestDocuments()
	single := conformanceServer(t)

	topologies := map[string]func(t *testing.T) *httptest.Server{
		"InProcessReplicas": func(t *testing.T) *httptest.Server {
			var peers []cluster.Peer
			for i := 0; i < 3; i++ {
				peers = append(peers, cluster.NewLocalPeer(fmt.Sprintf("replica-%d", i),
					httpapi.NewHandler(httpapi.Config{CacheSize: 64})))
			}
			return newClusterServer(t, peers)
		},
		"HTTPPeers": func(t *testing.T) *httptest.Server {
			var peers []cluster.Peer
			for i := 0; i < 3; i++ {
				backend := httptest.NewServer(httpapi.NewHandler(httpapi.Config{CacheSize: 64}))
				t.Cleanup(backend.Close)
				peers = append(peers, cluster.NewHTTPPeer(backend.URL, nil))
			}
			return newClusterServer(t, peers)
		},
	}

	// One marshaling of every request, shared by both sides of each diff.
	bodies := make([][]byte, len(docs))
	for i, d := range docs {
		b, err := json.Marshal(map[string]any{
			"html": d.HTML, "ontology": string(d.Site.Domain),
		})
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = b
	}

	for name, build := range topologies {
		t.Run(name, func(t *testing.T) {
			srv := build(t)

			t.Run("DiscoverMissAndHit", func(t *testing.T) {
				for _, label := range []string{"miss", "hit"} {
					for i, d := range docs {
						wantCode, want := postRaw(t, single.URL+"/v1/discover", "application/json", bodies[i])
						gotCode, got := postRaw(t, srv.URL+"/v1/discover", "application/json", bodies[i])
						if gotCode != wantCode {
							t.Fatalf("%s (%s): cluster status %d, single node %d",
								d.Site.Name, label, gotCode, wantCode)
						}
						if !bytes.Equal(got, want) {
							t.Errorf("%s (%s): cluster bytes differ from single node:\n got %s\nwant %s",
								d.Site.Name, label, got, want)
						}
					}
				}
			})

			t.Run("Batch", func(t *testing.T) {
				var documents []json.RawMessage
				for i := range docs {
					documents = append(documents, bodies[i])
				}
				batch, err := json.Marshal(map[string]any{"documents": documents})
				if err != nil {
					t.Fatal(err)
				}
				wantCode, want := postRaw(t, single.URL+"/v1/discover/batch", "application/json", batch)
				gotCode, got := postRaw(t, srv.URL+"/v1/discover/batch", "application/json", batch)
				if gotCode != wantCode || wantCode != http.StatusOK {
					t.Fatalf("batch: cluster status %d, single node %d", gotCode, wantCode)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("batch: cluster bytes differ from single node:\n got %s\nwant %s", got, want)
				}
			})

			t.Run("Stream", func(t *testing.T) {
				var in bytes.Buffer
				for i := range docs {
					in.Write(bodies[i])
					in.WriteByte('\n')
				}
				wantCode, want := postRaw(t, single.URL+"/v1/discover/stream", "application/x-ndjson", in.Bytes())
				gotCode, got := postRaw(t, srv.URL+"/v1/discover/stream", "application/x-ndjson", in.Bytes())
				if gotCode != wantCode || wantCode != http.StatusOK {
					t.Fatalf("stream: cluster status %d, single node %d", gotCode, wantCode)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("stream: cluster bytes differ from single node:\n got %s\nwant %s", got, want)
				}
			})
		})
	}
}
