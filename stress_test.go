package repro

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ontology"
	"repro/internal/tagtree"
)

// TestLargeDocumentCorrectness runs the full pipeline on a 5000-record page
// (~1.7 MB): correctness must hold at two orders of magnitude beyond the
// paper's page sizes, and splitting must return every record.
func TestLargeDocumentCorrectness(t *testing.T) {
	if testing.Short() {
		t.Skip("large-document stress test")
	}
	const records = 5000
	site := &corpus.Site{
		Name:   "stress",
		Domain: corpus.Obituaries,
		Profile: corpus.Profile{
			Container: []string{"div"},
			Layout:    corpus.Delimited,
			Separator: "hr",
			Records:   [2]int{records, records},
			BoldRuns:  [2]int{2, 3},
			Breaks:    [2]int{1, 2},
			BaseSize:  300,
		},
	}
	doc := site.Generate(0)
	res, err := core.Discover(doc.HTML, core.Options{Ontology: ontology.Builtin("obituary")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Separator != "hr" {
		t.Fatalf("separator = %s\n%s", res.Separator, core.Explain(res))
	}
	recs := core.Split(doc.HTML, res)
	if len(recs) != records {
		t.Errorf("split = %d records, want %d", len(recs), records)
	}
}

// TestManyCandidateTags exercises RP's O(c²) pair table and the ranking
// machinery with an unusually wide candidate set (the paper calls c
// "pathologically large" beyond a dozen).
func TestManyCandidateTags(t *testing.T) {
	tags := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "sep"}
	var b strings.Builder
	b.WriteString("<div>")
	for rec := 0; rec < 12; rec++ {
		b.WriteString("<sep>")
		for _, tag := range tags[:10] {
			fmt.Fprintf(&b, "<%s>field %s content</%s> ", tag, tag, tag)
		}
	}
	b.WriteString("<sep></div>")
	// With 11 tag types of near-equal share, everything sits below the
	// paper's 10% cutoff (each ≈ 9%) — itself a faithful finding: the rule
	// assumes few distinct tags. Lower the threshold to keep all 11.
	res, err := core.Discover(b.String(), core.Options{
		CandidateThreshold: 0.05,
		// None of the synthetic tags is on IT's list; give it the truth.
		SeparatorList: []string{"sep"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 11 {
		t.Fatalf("candidates = %d, want 11", len(res.Candidates))
	}
	if res.Separator != "sep" {
		t.Errorf("separator = %s\n%s", res.Separator, core.Explain(res))
	}
}

// TestDeeplyNestedDocument guards against recursion or event-range bugs on
// pathological nesting depth.
func TestDeeplyNestedDocument(t *testing.T) {
	const depth = 2000
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("<div>")
	}
	b.WriteString("<p>a</p><p>b</p><p>c</p>")
	for i := 0; i < depth; i++ {
		b.WriteString("</div>")
	}
	tree := tagtree.Parse(b.String())
	hf := tree.HighestFanOut()
	if hf.Name != "div" || hf.FanOut() != 3 {
		t.Errorf("highest fan-out = %s(%d)", hf.Name, hf.FanOut())
	}
	res, err := core.Discover(b.String(), core.Options{})
	if err != nil || res.Separator != "p" {
		t.Errorf("separator = %v, err = %v", res, err)
	}
}

// TestPathologicalAttributeSoup: huge attribute lists must not break
// tokenization or positions.
func TestPathologicalAttributeSoup(t *testing.T) {
	var b strings.Builder
	b.WriteString("<div")
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&b, ` a%d="v%d"`, i, i)
	}
	b.WriteString("><p>x</p><p>y</p></div>")
	res, err := core.Discover(b.String(), core.Options{})
	if err != nil || res.Separator != "p" {
		t.Errorf("res = %v, err = %v", res, err)
	}
}
