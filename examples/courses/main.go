// Courses: record-boundary discovery on university course catalogs (the
// paper's test set 4) plus a demonstration of writing a custom application
// ontology in the DSL and seeing how it changes the OM heuristic's vote.
//
// Run with:
//
//	go run ./examples/courses
package main

import (
	"fmt"

	"repro"
	"repro/internal/corpus"
)

// A deliberately tiny custom ontology: it only knows about course codes,
// credit hours, and meeting patterns. Three record-identifying fields is
// exactly the paper's minimum for OM to participate.
const tinyCatalogOntology = `
ontology TinyCatalog
entity Course

lexicon Dept { CS MATH PHYS CHEM ENGL HIST BIOL ECON PSYCH PHIL STAT GEOG }

object Credits : one-to-one {
    type credits
    keyword ` + "`[0-9] (?:credit hours|credits)`" + `
}
object Code : one-to-one {
    type code
    value ` + "`{Dept} ?[0-9]{3}[A-Z]?`" + `
}
object Meets : one-to-one {
    type meeting
    keyword ` + "`MWF|TTh|Daily at`" + `
}
`

func main() {
	// The BYU analogue from Table 9 — the hardest course site: an italic
	// note per record fools OM, and italic-bold pairs fool RP, yet the
	// compound still lands on <hr>.
	site := corpus.TestSites(corpus.Courses)[0]
	doc := site.Generate(0)
	fmt.Printf("site: %s, %d course descriptions\n\n", site.Name, doc.Records)

	fmt.Println("--- with the full built-in course ontology ---")
	res, err := repro.DiscoverWithOntology(doc.HTML, repro.BuiltinOntology("course"))
	if err != nil {
		panic(err)
	}
	fmt.Println(repro.Explain(res))

	fmt.Println("--- with a three-field custom ontology (DSL) ---")
	tiny, err := repro.ParseOntology(tinyCatalogOntology)
	if err != nil {
		panic(err)
	}
	res2, err := repro.DiscoverWithOntology(doc.HTML, tiny)
	if err != nil {
		panic(err)
	}
	fmt.Println(repro.Explain(res2))

	if res.Separator != res2.Separator {
		fmt.Println("the two ontologies disagree on the separator!")
		return
	}
	fmt.Printf("both ontologies agree: records are separated by <%s>\n\n", res.Separator)

	// Show the first few separated course records.
	recs := repro.Split(doc.HTML, res)
	for i, rec := range recs {
		if i >= 3 {
			fmt.Printf("… and %d more records\n", len(recs)-i)
			break
		}
		text := rec.Text
		if len(text) > 80 {
			text = text[:80] + "…"
		}
		fmt.Printf("record %d: %s\n", i+1, text)
	}
}
