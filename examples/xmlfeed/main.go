// Xmlfeed: the paper's footnote 1 in action — record-boundary discovery on
// an XML document type instead of HTML. A syndication-style catalog feed is
// segmented with the same five-heuristic machinery; only IT's separator
// list changes (the HTML list means nothing to an XML vocabulary).
//
// Run with:
//
//	go run ./examples/xmlfeed
package main

import (
	"fmt"

	"repro"
)

const feed = `<?xml version="1.0" encoding="ISO-8859-1"?>
<!-- nightly classifieds export -->
<export>
  <generated>1998-10-01</generated>
  <ads>
    <ad>
      <vehicle>1994 Ford Taurus</vehicle>
      <color>red</color>
      <price>$4,500</price>
      <contact>(801) 555-1234</contact>
    </ad>
    <ad>
      <vehicle>1991 Honda Civic</vehicle>
      <color>blue</color>
      <price>$2,900</price>
      <contact>(801) 555-9876</contact>
    </ad>
    <ad>
      <vehicle>1997 Toyota Camry</vehicle>
      <color>white</color>
      <price>$11,200</price>
      <contact>(435) 555-4321</contact>
    </ad>
    <ad>
      <vehicle>1989 Buick LeSabre</vehicle>
      <color>gold</color>
      <price>$1,850</price>
      <contact>(801) 555-2468</contact>
    </ad>
  </ads>
</export>`

func main() {
	// The separator list is the only HTML-specific knob; give IT the
	// vocabulary's plausible record wrappers instead. The car-ad ontology
	// still powers OM — the field text is the same.
	res, err := repro.DiscoverXML(feed, repro.Options{
		Ontology:      repro.BuiltinOntology("carad"),
		SeparatorList: []string{"ad", "listing", "item", "entry", "record"},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(repro.Explain(res))

	for i, rec := range repro.Split(feed, res) {
		fmt.Printf("record %d: %s\n", i+1, rec.Text)
	}
}
