// Carads: a comparison-shopping sweep over every synthetic car-ad test
// site (the paper's Table 7). For each site the program discovers the
// record separator — the layouts differ per site: <hr> rules, table rows,
// sentence-broken columns — extracts the ads into a database, and then
// runs cross-site queries over the populated instances: the cheapest ads
// under a price ceiling, like the comparison-shopping agents the paper
// cites, plus a make-popularity breakdown.
//
// Run with:
//
//	go run ./examples/carads
package main

import (
	"fmt"
	"sort"

	"repro"
	"repro/internal/corpus"
	"repro/internal/reldb"
)

func main() {
	ont := repro.BuiltinOntology("carad")

	// One merged table across all sites.
	merged := reldb.New()
	if err := merged.Create(reldb.Schema{
		Table: "Ad",
		Columns: []reldb.Column{
			{Name: "id"}, {Name: "Site", Nullable: true},
			{Name: "Year", Nullable: true}, {Name: "Make", Nullable: true},
			{Name: "Model", Nullable: true}, {Name: "Price", Nullable: true},
			{Name: "Phone", Nullable: true},
		},
		Key: []string{"id"},
	}); err != nil {
		panic(err)
	}

	next := 1
	for _, site := range corpus.TestSites(corpus.CarAds) {
		doc := site.Generate(0)
		res, err := repro.DiscoverWithOntology(doc.HTML, ont)
		if err != nil {
			panic(err)
		}
		db, err := repro.Extract(doc.HTML, ont)
		if err != nil {
			panic(err)
		}
		n := db.Table("CarAd").Len()
		fmt.Printf("%-28s separator <%s>  %d/%d ads extracted\n",
			site.Name, res.Separator, n, doc.Records)

		for _, row := range db.Table("CarAd").Select(nil) {
			err := merged.Insert("Ad", map[string]reldb.Value{
				"id":    reldb.V(fmt.Sprint(next)),
				"Site":  reldb.V(site.Name),
				"Year":  row.Get("Year"),
				"Make":  row.Get("Make"),
				"Model": row.Get("Model"),
				"Price": row.Get("Price"),
				"Phone": row.Get("Phone"),
			})
			if err != nil {
				panic(err)
			}
			next++
		}
	}

	// The comparison-shopping query, expressed with the store's query API:
	// cheapest ads under $5,000 across all five sites.
	cheap := merged.Table("Ad").Query().
		WhereNotNull("Price").
		Where("Price", Lt, "$5,000").
		OrderBy("Price").
		Limit(8).
		Rows()
	fmt.Println("\ncheapest ads under $5,000 across all sites:")
	for _, r := range cheap {
		fmt.Printf("  %7s  %s %s %s  %s  (%s)\n",
			r.Get("Price"), r.Get("Year"), r.Get("Make"), r.Get("Model"),
			r.Get("Phone"), r.Get("Site"))
	}

	// Make popularity across the whole crawl.
	groups := merged.Table("Ad").Query().WhereNotNull("Make").GroupCount("Make")
	type kv struct {
		make_ string
		n     int
	}
	var ranked []kv
	for m, n := range groups {
		ranked = append(ranked, kv{m, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].make_ < ranked[j].make_
	})
	fmt.Println("\nmost advertised makes:")
	for i, e := range ranked {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-12s %d ads\n", e.make_, e.n)
	}
}

// Lt re-exported for readability at the call site above.
const Lt = reldb.Lt
