// Obituaries: the paper's motivating application end-to-end. Generates a
// synthetic funeral-notices page in the Figure 2 house style, runs the
// complete Figure 1 pipeline — boundary discovery, constant/keyword
// recognition, keyword-constant correlation, cardinality-constrained
// population — and prints the resulting database instance as CSV.
//
// Run with:
//
//	go run ./examples/obituaries
package main

import (
	"fmt"
	"os"

	"repro"
	"repro/internal/corpus"
)

func main() {
	// A fresh obituary page from one of the synthetic test sites (the
	// Tampa Tribune analogue in Table 6).
	site := corpus.TestSites(corpus.Obituaries)[3]
	doc := site.Generate(7)
	fmt.Printf("site: %s (%s), %d obituaries, %d bytes of HTML\n\n",
		site.Name, site.URL, doc.Records, len(doc.HTML))

	ont := repro.BuiltinOntology("obituary")

	// Discover the boundary and show the consensus.
	res, err := repro.DiscoverWithOntology(doc.HTML, ont)
	if err != nil {
		panic(err)
	}
	fmt.Println(repro.Explain(res))

	// Full extraction into the generated database scheme.
	db, err := repro.Extract(doc.HTML, ont)
	if err != nil {
		panic(err)
	}
	fmt.Println("populated database:", db.Summary())
	fmt.Println()

	// Print the entity table. Columns include the record-identifying
	// fields (DeathDate, FuneralService, Interment) plus names, dates, and
	// places the recognizer correlated.
	if err := db.Table("Obituary").WriteCSV(os.Stdout); err != nil {
		panic(err)
	}
}
