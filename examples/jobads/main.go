// Jobads: a crawler-shaped workflow over computer-job listings. Pages are
// first *classified* (the paper's future-work assumption check): navigation
// pages are skipped, single-posting detail pages are taken whole, and only
// multi-record listing pages go through boundary discovery. Extracted
// postings are then aggregated into a skills demand table.
//
// Run with:
//
//	go run ./examples/jobads
package main

import (
	"fmt"
	"sort"

	"repro"
	"repro/internal/classify"
	"repro/internal/corpus"
)

// navPage imitates a section front page: links, no postings.
const navPage = `<html><body><ul>
<li><a href="mon.html">Monday's listings</a>
<li><a href="tue.html">Tuesday's listings</a>
<li><a href="archive.html">Archive</a>
<li><a href="place-ad.html">Place an ad</a>
</ul></body></html>`

// detailPage imitates a single-posting page.
const detailPage = `<html><body><div>
<b>SOFTWARE ENGINEER</b><br>
Summit Systems Inc. seeks a Software Engineer for its Provo office.
3+ years experience in Java, SQL required. Send resume to Summit Systems Inc.
Email jobs@summit.com for details. Job #41372.
</div></body></html>`

func main() {
	ont := repro.BuiltinOntology("jobad")

	// The crawl frontier: two chrome pages plus the five Table 8 sites.
	pages := []struct {
		name string
		html string
	}{
		{"section front", navPage},
		{"detail page", detailPage},
	}
	for _, site := range corpus.TestSites(corpus.JobAds) {
		pages = append(pages, struct {
			name string
			html string
		}{site.Name, site.Generate(0).HTML})
	}

	skills := map[string]int{}
	postings := 0
	for _, page := range pages {
		cls, err := repro.Classify(page.html, ont)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-28s %-17s", page.name, cls.Kind)
		switch cls.Kind {
		case classify.NoRecords:
			fmt.Println(" → skipped")
			continue
		case classify.SingleRecord:
			fmt.Println(" → taken whole")
			postings++
			continue
		}

		res, err := repro.DiscoverWithOntology(page.html, ont)
		if err != nil {
			panic(err)
		}
		db, err := repro.Extract(page.html, ont)
		if err != nil {
			panic(err)
		}
		n := db.Table("JobAd").Len()
		postings += n
		fmt.Printf(" → separator <%s>, %d postings\n", res.Separator, n)

		for _, row := range db.Table("JobAd_Skill").Select(nil) {
			skills[row.Get("Skill").Str]++
		}
	}

	fmt.Printf("\n%d postings collected; most demanded skills:\n", postings)
	type kv struct {
		skill string
		n     int
	}
	var ranked []kv
	for s, n := range skills {
		ranked = append(ranked, kv{s, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].skill < ranked[j].skill
	})
	for i, e := range ranked {
		if i >= 6 {
			break
		}
		fmt.Printf("  %-14s %d postings\n", e.skill, e.n)
	}
}
