// Quickstart: discover the record separator of the paper's own Figure 2
// document — a 1998 funeral-notices page with three obituaries — split it
// into records, and print the §5.3 worked example's numbers.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
	"repro/internal/paperdoc"
)

func main() {
	// The page under test is the paper's Figure 2(a): an <hr>-separated
	// obituary column inside a single-cell table.
	html := paperdoc.Figure2

	// Discover the separator. Without an ontology, four heuristics vote
	// (RP, SD, IT, HT); the result is already unambiguous.
	res, err := repro.Discover(html)
	if err != nil {
		panic(err)
	}
	fmt.Printf("separator without ontology: <%s>\n\n", res.Separator)

	// With the obituary application ontology the OM heuristic joins in and
	// the full ORSIH compound reproduces the paper's worked example:
	// hr 99.96%, b 64.75%, br 56.34%.
	res, err = repro.DiscoverWithOntology(html, repro.BuiltinOntology("obituary"))
	if err != nil {
		panic(err)
	}
	fmt.Println(repro.Explain(res))

	// Split the page at the separator: a heading chunk plus one chunk per
	// obituary, cleaned of markup.
	for i, rec := range repro.Split(html, res) {
		text := rec.Text
		if len(text) > 72 {
			text = text[:72] + "…"
		}
		fmt.Printf("record %d: %s\n", i+1, text)
	}
}
