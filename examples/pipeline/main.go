// Pipeline: a stage-by-stage walkthrough of the paper's Figure 1 on the
// Figure 2 document, printing each intermediate artifact:
//
//  1. the tag tree (Appendix A),
//  2. the highest-fan-out subtree and candidate tags (§3),
//  3. the five heuristic rankings and the compound consensus (§4–5),
//  4. the Data-Record Table head (recognition),
//  5. the record-level model instance with binding provenance and
//     constraint checks (objrel),
//  6. the populated database.
//
// Run with:
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dbgen"
	"repro/internal/objrel"
	"repro/internal/ontology"
	"repro/internal/paperdoc"
	"repro/internal/recognizer"
	"repro/internal/tagtree"
)

func main() {
	doc := paperdoc.Figure2
	ont := ontology.Builtin("obituary")

	fmt.Println("=== stage 1: tag tree (Appendix A) ===")
	tree := tagtree.Parse(doc)
	printTree(tree.Root, 0)

	fmt.Println("\n=== stage 2: highest-fan-out subtree and candidates (§3) ===")
	hf := tree.HighestFanOut()
	fmt.Printf("highest fan-out: <%s> with %d children, %d tags in subtree\n",
		hf.Name, hf.FanOut(), hf.SubtreeTagCount())
	for _, c := range tagtree.Candidates(hf, tagtree.DefaultCandidateThreshold) {
		fmt.Printf("  candidate <%s> × %d\n", c.Name, c.Count)
	}

	fmt.Println("\n=== stage 3: heuristics and consensus (§4–5) ===")
	res, err := core.Discover(doc, core.Options{Ontology: ont})
	if err != nil {
		panic(err)
	}
	fmt.Print(core.Explain(res))

	fmt.Println("\n=== stage 4: Data-Record Table (recognition) ===")
	table := recognizer.Recognize(ont, res.Tree, res.Subtree)
	fmt.Printf("%d entries; first 8:\n", table.Len())
	for i, e := range table.Entries {
		if i >= 8 {
			break
		}
		fmt.Printf("  %6d  %-26s %q\n", e.Pos, e.Descriptor(), e.String)
	}

	fmt.Println("\n=== stage 5: record-level model instance (objrel) ===")
	inst := dbgen.Correlate(ont, res, table)
	fmt.Print(inst.Describe())
	fmt.Println("provenance profile:", formatProvenance(inst))

	fmt.Println("\n=== stage 6: populated database ===")
	db, err := dbgen.PopulateInstance(ont, inst)
	if err != nil {
		panic(err)
	}
	fmt.Println(db.Summary())
	if err := db.Table("Obituary").WriteCSV(os.Stdout); err != nil {
		panic(err)
	}
}

// printTree renders the tag tree with indentation, eliding text.
func printTree(n *tagtree.Node, depth int) {
	fmt.Printf("%s<%s>", strings.Repeat("  ", depth), n.Name)
	if len(n.Chunks) > 0 {
		total := 0
		for _, c := range n.Chunks {
			total += len(c.Text)
		}
		fmt.Printf(" +%dB text", total)
	}
	fmt.Println()
	for _, c := range n.Children {
		printTree(c, depth+1)
	}
}

func formatProvenance(inst *objrel.Instance) string {
	counts := inst.ProvenanceCounts()
	var parts []string
	for _, p := range []objrel.Provenance{objrel.KeywordAnchored, objrel.Positional, objrel.KeywordOnly} {
		parts = append(parts, fmt.Sprintf("%s=%d", p, counts[p]))
	}
	return strings.Join(parts, " ")
}
