# Record-Boundary Discovery in Web Documents — build targets.

GO ?= go

.PHONY: all build test testshort race shuffle cover cover-pipeline cover-eval bench bench-smoke bench-gate throughput-gate evalrun quality-gate cluster obs-smoke wrapper-smoke membership-smoke fuzz chaos experiments corpus examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

testshort:
	$(GO) test -short ./...

# The CI configuration (.github/workflows/ci.yml) runs this; the metrics
# registry and HTTP middleware are exercised concurrently by their tests.
race:
	$(GO) test -race ./...

# Shuffled double run: catches inter-test ordering dependencies and
# leftover-state bugs that a fixed order hides. CI runs this on every push.
shuffle:
	$(GO) test -shuffle=on -count=2 ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Coverage gate for the bulk-ingestion engine: the resumability and retry
# invariants live there, so its statement coverage must stay at or above 80%.
cover-pipeline:
	$(GO) test -coverprofile=pipeline_cover.out ./internal/pipeline/
	@total=$$($(GO) tool cover -func=pipeline_cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/pipeline statement coverage: $$total%"; \
	awk "BEGIN{exit !($$total >= 80.0)}" || { \
		echo "FAIL: internal/pipeline coverage $$total% is below the 80% floor"; exit 1; }

# Coverage gate for the evaluation harness: the leaderboard, the
# structural-match metric, and the quality gate decide what "no worse than
# the baseline" means, so their statement coverage must stay at or above 80%.
cover-eval:
	$(GO) test -coverprofile=eval_cover.out ./internal/eval/
	@total=$$($(GO) tool cover -func=eval_cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/eval statement coverage: $$total%"; \
	awk "BEGIN{exit !($$total >= 80.0)}" || { \
		echo "FAIL: internal/eval coverage $$total% is below the 80% floor"; exit 1; }

# Full benchmark run, archived as BENCH_<n>.json (next free index) via
# cmd/benchjson so runs can be diffed across commits. CI runs the cheaper
# bench-smoke variant on every push. Raw output goes under the git-ignored
# $(BENCH_DIR) — only the distilled BENCH_<n>.json belongs in the tree.
BENCH_DIR ?= .bench
bench:
	mkdir -p $(BENCH_DIR)
	$(GO) test -bench=. -benchmem ./... | tee $(BENCH_DIR)/bench_output.txt
	n=0; for f in BENCH_*.json; do \
		[ -e "$$f" ] || continue; \
		i=$${f#BENCH_}; i=$${i%.json}; \
		case "$$i" in *[!0-9]*) continue;; esac; \
		[ "$$i" -ge "$$n" ] && n=$$((i+1)); \
	done; \
	$(GO) run ./cmd/benchjson -in $(BENCH_DIR)/bench_output.txt -out BENCH_$$n.json && \
	echo "wrote BENCH_$$n.json"

# The one-iteration smoke CI runs: catches benchmarks that crash or hang
# without paying for a full measurement.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Perf-regression gate: a fresh measurement of the core benchmarks compared
# against the newest committed BENCH_<n>.json; any benchmark more than 30%
# slower than the baseline fails (speed-ups and new benchmarks are
# informational). Each benchmark is measured 3 times and benchjson folds
# the repeats to the fastest run, so a GC cycle or scheduler hiccup landing
# inside one timed window cannot fail the gate on its own.
# BENCH_BASELINE / BENCH_TOLERANCE override the defaults.
BENCH_BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
BENCH_TOLERANCE ?= 0.30
bench-gate:
	@test -n "$(BENCH_BASELINE)" || { echo "no BENCH_<n>.json baseline committed"; exit 1; }
	@echo "comparing against $(BENCH_BASELINE) (tolerance $(BENCH_TOLERANCE))"
	mkdir -p $(BENCH_DIR)
	$(GO) test -bench=. -benchmem -count=3 -run='^$$' . ./internal/core/ ./internal/heuristic/ | \
		tee $(BENCH_DIR)/bench_gate_output.txt | \
		$(GO) run ./cmd/benchjson -compare $(BENCH_BASELINE) -tolerance $(BENCH_TOLERANCE)

# Throughput gate for the byte-level hot path: the whole-corpus MB/s
# macro-benchmark compared against the committed baseline. benchjson diffs
# SetBytes benchmarks on MB/s (payload-invariant), so corpus growth does not
# read as a regression; a real throughput loss beyond the tolerance fails.
# CI runs this as its own job — see .github/workflows/ci.yml.
throughput-gate:
	@test -n "$(BENCH_BASELINE)" || { echo "no BENCH_<n>.json baseline committed"; exit 1; }
	@echo "comparing against $(BENCH_BASELINE) (tolerance $(BENCH_TOLERANCE))"
	mkdir -p $(BENCH_DIR)
	$(GO) test -bench='^BenchmarkCorpusThroughput$$' -benchmem -count=3 -run='^$$' . | \
		tee $(BENCH_DIR)/throughput_gate_output.txt | \
		$(GO) run ./cmd/benchjson -compare $(BENCH_BASELINE) -tolerance $(BENCH_TOLERANCE)

# Full leaderboard run over the 220-document corpus, archived as
# QUALITY_<n>.json (next free index) — the quality counterpart of `bench`.
# Commit the new file alongside the code change that justified it.
evalrun:
	n=0; for f in QUALITY_*.json; do \
		[ -e "$$f" ] || continue; \
		i=$${f#QUALITY_}; i=$${i%.json}; \
		case "$$i" in *[!0-9]*) continue;; esac; \
		[ "$$i" -ge "$$n" ] && n=$$((i+1)); \
	done; \
	$(GO) run ./cmd/evalrun -out QUALITY_$$n.json

# Quality-regression gate: a fresh leaderboard run compared against the
# newest committed QUALITY_<n>.json; any tracked extractor whose F1 (exact
# or forgiving) dropped more than 2 absolute points fails (improvements and
# new extractors are informational). Everything is deterministic, so unlike
# bench-gate there is no noise to fold away.
# QUALITY_BASELINE / QUALITY_TOLERANCE override the defaults.
QUALITY_BASELINE ?= $(lastword $(sort $(wildcard QUALITY_*.json)))
QUALITY_TOLERANCE ?= 0.02
quality-gate:
	@test -n "$(QUALITY_BASELINE)" || { echo "no QUALITY_<n>.json baseline committed"; exit 1; }
	@echo "comparing against $(QUALITY_BASELINE) (tolerance $(QUALITY_TOLERANCE))"
	$(GO) run ./cmd/evalrun -compare $(QUALITY_BASELINE) -tolerance $(QUALITY_TOLERANCE)

# The cluster-mode serving tier (see docs/SCALING.md) under the race
# detector: routing/conformance suites, the chaos scenarios (hedging, peer
# death, total backend loss), and the cmd/serve cluster-mode boot test.
cluster:
	$(GO) test -race ./internal/cluster/
	$(GO) test -race -run 'TestClusterConformance' -v .
	$(GO) test -race -run 'TestServeCluster' ./cmd/serve/

# Observability smoke (see docs/OBSERVABILITY.md): boots cmd/serve in
# cluster mode, makes a traced request, and checks /metrics and
# /metrics/cluster parse as Prometheus exposition and /debug/traces returns
# the stitched trace — plus the trace/federation unit suites under -race.
obs-smoke:
	$(GO) test -race -run 'TestObservabilitySmoke' -v ./cmd/serve/
	$(GO) test -race ./internal/obs/
	$(GO) test -race -run 'Trace|Federat|Explain' ./internal/cluster/

# Learned-wrapper smoke (see docs/WRAPPER.md): boots cmd/serve with a
# wrapper store on disk, sends the same document twice, and checks the
# second answer came byte-identical off the template fast path — then
# restarts on the same journal and checks the wrapper survived. Plus the
# store/fingerprint unit suites and the fast-path conformance layer, all
# under -race.
wrapper-smoke:
	$(GO) test -race -run 'TestWrapperSmoke' -v ./cmd/serve/
	$(GO) test -race ./internal/template/
	$(GO) test -race -run 'TestTemplateFastPathConformance' .

# Dynamic-membership smoke (see docs/MEMBERSHIP.md): boots a three-node
# gossip fleet on ephemeral ports, proves every node answers byte-identical
# to a single node, kills one node, restarts it under the same name, and
# requires it to rejoin warm — wrapper state pulled from a neighbor, result
# cache replayed from its journal. Plus the membership/state-transfer unit
# suites and the root churn-conformance layer, all under -race.
membership-smoke:
	$(GO) test -race -run 'TestMembershipSmoke' -v ./cmd/serve/
	$(GO) test -race ./internal/membership/
	$(GO) test -race -run 'TestChurn' .

# Brief fuzz sessions over every fuzz target (seeds always run under `test`).
fuzz:
	$(GO) test -fuzz='^FuzzTokenize$$' -fuzztime=30s ./internal/htmlparse/
	$(GO) test -fuzz='^FuzzTokenizeXML$$' -fuzztime=30s ./internal/htmlparse/
	$(GO) test -fuzz='^FuzzDecodeEntities$$' -fuzztime=30s ./internal/htmlparse/
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime=30s ./internal/tagtree/
	$(GO) test -fuzz='^FuzzParseXML$$' -fuzztime=30s ./internal/tagtree/
	$(GO) test -fuzz='^FuzzByteVsStringParse$$' -fuzztime=30s ./internal/tagtree/
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime=30s ./internal/ontology/
	$(GO) test -fuzz='^FuzzDiscoverRequest$$' -fuzztime=30s ./internal/httpapi/

# The fault-injection chaos suite (see docs/ROBUSTNESS.md) under the race
# detector: isolated heuristic panics, mid-batch cancellation, load
# shedding, resource limits, and singleflight dedup.
chaos:
	$(GO) test -race -run 'TestChaos' -v ./internal/httpapi/
	$(GO) test -race -run 'Panic|Canceled|Fault|Limits' ./internal/core/ ./internal/tagtree/

# Regenerate every table of the paper, plus quality, scaling, and the
# threshold ablation.
experiments:
	$(GO) run ./cmd/experiments -scaling -ablation

corpus:
	$(GO) run ./cmd/gencorpus -out corpus

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/obituaries
	$(GO) run ./examples/carads
	$(GO) run ./examples/jobads
	$(GO) run ./examples/courses
	$(GO) run ./examples/xmlfeed

clean:
	rm -rf corpus cover.out pipeline_cover.out eval_cover.out test_output.txt bench_output.txt $(BENCH_DIR)
