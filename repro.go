// Package repro is a Go reproduction of D.W. Embley, Y. Jiang, and
// Y.-K. Ng, "Record-Boundary Discovery in Web Documents" (SIGMOD 1999).
//
// Given an HTML page containing multiple records — obituaries, classified
// ads, course listings — the library discovers the HTML tag that separates
// the records by building a tag tree, locating the highest-fan-out subtree,
// and combining five independent heuristics (ontology matching, repeating-
// tag patterns, interval standard deviation, a known-separator list, and
// tag counts) with Stanford certainty theory.
//
// Quick start:
//
//	res, err := repro.Discover(html)
//	if err != nil { ... }
//	fmt.Println(res.Separator)           // e.g. "hr"
//	for _, rec := range repro.Split(html, res) {
//	    fmt.Println(rec.Text)            // one cleaned record per chunk
//	}
//
// Supplying an application ontology enables the OM heuristic and the full
// Figure 1 extraction pipeline:
//
//	ont := repro.BuiltinOntology("obituary")
//	res, _ := repro.DiscoverWithOntology(html, ont)
//	db, _ := repro.Extract(html, ont) // populated relational instance
//
// The facade re-exports the core types; the implementing packages live
// under internal/ (core, tagtree, heuristic, certainty, ontology,
// recognizer, dbgen, reldb, corpus, eval).
package repro

import (
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/dbgen"
	"repro/internal/ontology"
	"repro/internal/reldb"
)

// Result is a record-boundary discovery outcome. See core.Result.
type Result = core.Result

// Record is one record-sized chunk of a document. See core.Record.
type Record = core.Record

// Options configure discovery; the zero value is the paper's published
// configuration (all five heuristics, Table 4 factors, 10% threshold).
type Options = core.Options

// Ontology is a parsed application ontology.
type Ontology = ontology.Ontology

// DB is a populated relational instance.
type DB = reldb.DB

// ErrNoCandidates is returned for documents with no candidate separator
// tags.
var ErrNoCandidates = core.ErrNoCandidates

// Discover runs the paper's Record-Boundary Discovery Algorithm (§5.3) on
// an HTML document with the default options and no ontology (the OM
// heuristic declines; the remaining four heuristics still vote).
func Discover(html string) (*Result, error) {
	return core.Discover(html, core.Options{})
}

// DiscoverWithOntology runs discovery with the OM heuristic enabled by the
// given application ontology.
func DiscoverWithOntology(html string, ont *Ontology) (*Result, error) {
	return core.Discover(html, core.Options{Ontology: ont})
}

// DiscoverOptions runs discovery with full control over heuristic
// combination, certainty factors, candidate threshold, and separator list.
func DiscoverOptions(html string, opts Options) (*Result, error) {
	return core.Discover(html, opts)
}

// Split partitions the document into record chunks at the discovered
// separator.
func Split(html string, res *Result) []Record {
	return core.Split(html, res)
}

// Explain renders a human-readable report of a discovery result in the
// paper's §5.3 worked-example format.
func Explain(res *Result) string {
	return core.Explain(res)
}

// Extract runs the complete Figure 1 pipeline: discover boundaries,
// recognize constants and keywords, correlate them into records, and
// populate the ontology's generated database scheme.
func Extract(html string, ont *Ontology) (*DB, error) {
	res, err := core.Discover(html, core.Options{Ontology: ont})
	if err != nil {
		return nil, err
	}
	return dbgen.Populate(ont, res)
}

// DiscoverXML runs discovery on an XML document (the paper's footnote 1
// generalization): case-sensitive element names, no HTML void or
// optional-end-tag rules. Supply Options.SeparatorList for the vocabulary's
// likely wrappers, since the default IT list is HTML-specific.
func DiscoverXML(xml string, opts Options) (*Result, error) {
	return core.DiscoverXML(xml, opts)
}

// Classification re-exports the document classifier (the paper's stated
// future work): decide whether a page has multiple records before running
// boundary discovery.
type Classification = classify.Result

// Document-kind values reported by Classify.
const (
	NoRecords       = classify.NoRecords
	SingleRecord    = classify.SingleRecord
	MultipleRecords = classify.MultipleRecords
)

// Classify reports whether the document satisfies the algorithm's input
// assumptions: multiple records (run Discover), a single record (skip
// discovery, treat the page as one record), or no records at all.
func Classify(html string, ont *Ontology) (*Classification, error) {
	return classify.Classify(html, ont)
}

// ParseOntology parses an application ontology from its DSL source. See
// the ontology package for the DSL grammar.
func ParseOntology(src string) (*Ontology, error) {
	return ontology.Parse(src)
}

// BuiltinOntology returns one of the four built-in application ontologies:
// "obituary", "carad", "jobad", or "course". It returns nil for unknown
// names.
func BuiltinOntology(name string) *Ontology {
	return ontology.Builtin(name)
}
