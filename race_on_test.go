//go:build race

package repro

// raceEnabled reports whether this binary was built with the race detector.
// Allocation ceilings and throughput floors are meaningless under its
// instrumentation (it allocates shadow state and slows the hot path ~5×),
// so those gates skip; the arena-safety tests run regardless — -race is
// their whole point.
const raceEnabled = true
