package repro

// Churn conformance suite: the cluster must stay byte-for-byte identical to
// a single node while its peer set changes under it. For every document of
// the 20-site test corpus the suite drives the consistent-hash router
// through the three membership events a production fleet sees —
//
//	join            a new replica enters the ring mid-traffic
//	graceful leave  a replica is removed from the rotation mid-traffic
//	hard kill       a replica's process dies mid-request, no goodbye
//
// — and requires every answer during and after the event to match the
// single-node reference exactly. The streaming surface runs all three
// events inside one NDJSON request and accounts for every line: exactly one
// response per input document, in input order, none lost, none duplicated.
// This is the conformance contract behind docs/MEMBERSHIP.md: membership is
// an availability mechanism, never an answer-changing one.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/httpapi"
)

// churnBackend is one real-HTTP replica that the suite can remove cleanly
// or kill without warning.
type churnBackend struct {
	name string
	srv  *httptest.Server
}

func newChurnBackend(t *testing.T, name string) *churnBackend {
	t.Helper()
	srv := httptest.NewServer(httpapi.NewHandler(httpapi.Config{CacheSize: 64}))
	t.Cleanup(srv.Close)
	return &churnBackend{name: name, srv: srv}
}

// peer wraps the backend as a ring member under its stable name, the way
// membership mode names remote peers.
func (b *churnBackend) peer() cluster.Peer {
	return cluster.NewNamedHTTPPeer(b.name, b.srv.URL, nil)
}

// hardKill severs every established connection and stops the listener — the
// wire-level signature of a dead process, not a drained one.
func (b *churnBackend) hardKill() {
	b.srv.CloseClientConnections()
	b.srv.Close()
}

// newChurnRouter serves a router over the given backends and returns both,
// so tests can mutate the peer set mid-traffic.
func newChurnRouter(t *testing.T, backends ...*churnBackend) (*cluster.Router, *httptest.Server) {
	t.Helper()
	var peers []cluster.Peer
	for _, b := range backends {
		peers = append(peers, b.peer())
	}
	router, err := cluster.NewRouter(cluster.Config{
		Peers:          peers,
		HealthInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	srv := httptest.NewServer(router)
	t.Cleanup(srv.Close)
	return router, srv
}

// churnReference computes the single-node answer for every corpus document:
// the bytes every churn topology must reproduce.
func churnReference(t *testing.T, docs []*corpus.Document) (bodies, want [][]byte) {
	t.Helper()
	single := conformanceServer(t)
	bodies = make([][]byte, len(docs))
	want = make([][]byte, len(docs))
	for i, d := range docs {
		b, err := json.Marshal(map[string]any{
			"html": d.HTML, "ontology": string(d.Site.Domain),
		})
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = b
		code, resp := postRaw(t, single.URL+"/v1/discover", "application/json", b)
		if code != http.StatusOK {
			t.Fatalf("%s: single-node reference answered %d: %s", d.Site.Name, code, resp)
		}
		want[i] = resp
	}
	return bodies, want
}

// driveThrough posts docs[from:to] through the router and requires every
// answer to match the reference byte-for-byte.
func driveThrough(t *testing.T, url string, docs []*corpus.Document, bodies, want [][]byte, from, to int, phase string) {
	t.Helper()
	for i := from; i < to; i++ {
		code, got := postRaw(t, url+"/v1/discover", "application/json", bodies[i])
		if code != http.StatusOK {
			t.Fatalf("%s (%s): cluster answered %d: %s", docs[i].Site.Name, phase, code, got)
		}
		if !bytes.Equal(got, want[i]) {
			t.Errorf("%s (%s): cluster bytes differ from single node:\n got %s\nwant %s",
				docs[i].Site.Name, phase, got, want[i])
		}
	}
}

func TestChurnConformance(t *testing.T) {
	docs := corpus.TestDocuments()
	bodies, want := churnReference(t, docs)
	third := len(docs) / 3

	// A replica joins the ring after a third of the traffic has flowed. The
	// ring rebalances — some documents change owner and recompute on the new
	// replica — but the bytes must not move.
	t.Run("Join", func(t *testing.T) {
		b0, b1 := newChurnBackend(t, "replica-0"), newChurnBackend(t, "replica-1")
		router, srv := newChurnRouter(t, b0, b1)

		driveThrough(t, srv.URL, docs, bodies, want, 0, third, "before join")
		joiner := newChurnBackend(t, "replica-2")
		if err := router.AddPeer(joiner.peer()); err != nil {
			t.Fatal(err)
		}
		driveThrough(t, srv.URL, docs, bodies, want, third, len(docs), "after join")
		// Second full pass: warm caches on a rebalanced ring, same bytes.
		driveThrough(t, srv.URL, docs, bodies, want, 0, len(docs), "warm after join")
	})

	// A replica is removed from the rotation mid-traffic; its documents
	// reassign to the survivors and recompute there, byte-identically.
	t.Run("GracefulLeave", func(t *testing.T) {
		b0, b1, b2 := newChurnBackend(t, "replica-0"), newChurnBackend(t, "replica-1"), newChurnBackend(t, "replica-2")
		router, srv := newChurnRouter(t, b0, b1, b2)

		driveThrough(t, srv.URL, docs, bodies, want, 0, third, "before leave")
		if !router.RemovePeer("replica-1") {
			t.Fatal("replica-1 was not in the ring")
		}
		driveThrough(t, srv.URL, docs, bodies, want, third, len(docs), "after leave")
		driveThrough(t, srv.URL, docs, bodies, want, 0, len(docs), "warm after leave")
	})

	// A replica dies without a goodbye: connections severed, listener gone,
	// still in the ring until the health checker ejects it. Every request —
	// including those whose preferred owner is the corpse — must fail over
	// to a survivor and answer the same bytes, with no client-visible error.
	t.Run("HardKill", func(t *testing.T) {
		b0, b1, b2 := newChurnBackend(t, "replica-0"), newChurnBackend(t, "replica-1"), newChurnBackend(t, "replica-2")
		_, srv := newChurnRouter(t, b0, b1, b2)

		driveThrough(t, srv.URL, docs, bodies, want, 0, third, "before kill")
		b1.hardKill()
		driveThrough(t, srv.URL, docs, bodies, want, third, len(docs), "after kill")
		driveThrough(t, srv.URL, docs, bodies, want, 0, len(docs), "warm after kill")
	})

	// The streaming surface under all three events at once: one NDJSON
	// request carrying every corpus document three times over, with a join,
	// a graceful leave, and a hard kill fired while lines are in flight.
	// The response must carry exactly one line per input line, in input
	// order, each byte-identical to the single node — no document lost to a
	// dying peer, none answered twice by a rerouted retry.
	t.Run("StreamNoLossNoDuplication", func(t *testing.T) {
		const rounds = 3
		b0, b1, b2 := newChurnBackend(t, "replica-0"), newChurnBackend(t, "replica-1"), newChurnBackend(t, "replica-2")
		router, srv := newChurnRouter(t, b0, b1, b2)

		var in bytes.Buffer
		for r := 0; r < rounds; r++ {
			for i := range docs {
				in.Write(bodies[i])
				in.WriteByte('\n')
			}
		}
		total := rounds * len(docs)

		resp, err := http.Post(srv.URL+"/v1/discover/stream", "application/x-ndjson", &in)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream answered %d", resp.StatusCode)
		}

		// Churn points: fire each event after the corresponding share of
		// the response has streamed back, so lines are genuinely in flight.
		joiner := newChurnBackend(t, "replica-3")
		events := map[int]func(){
			total / 4: func() {
				if err := router.AddPeer(joiner.peer()); err != nil {
					t.Error(err)
				}
			},
			total / 2:     func() { router.RemovePeer("replica-1") },
			3 * total / 4: func() { b2.hardKill() },
		}

		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		n := 0
		for sc.Scan() {
			line := sc.Bytes()
			if n >= total {
				t.Fatalf("stream emitted more than %d lines; line %d: %s", total, n+1, line)
			}
			ref := want[n%len(docs)]
			// Stream lines are the discover answer plus a sequence number;
			// compare the answer fields through the wire shape.
			var gotLine, wantLine wireResult
			if err := json.Unmarshal(line, &gotLine); err != nil {
				t.Fatalf("line %d is not a result: %v: %s", n, err, line)
			}
			if err := json.Unmarshal(ref, &wantLine); err != nil {
				t.Fatal(err)
			}
			if gotLine.String() != wantLine.String() {
				t.Errorf("line %d differs from single node:\n got %s\nwant %s", n, gotLine.String(), wantLine.String())
			}
			if fire, ok := events[n]; ok {
				fire()
			}
			n++
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("stream tore after %d lines: %v", n, err)
		}
		if n != total {
			t.Fatalf("stream emitted %d lines, want exactly %d (loss or duplication)", n, total)
		}
	})
}

// TestChurnEveryDocumentAnsweredOnceInterleaved drives interactive traffic
// concurrently with repeated join/leave churn and accounts for every
// request: each must answer exactly once with the single-node bytes, even
// while the ring is rebalancing under it. This is the request-accounting
// half of the churn contract (the stream test covers ordered bulk).
func TestChurnEveryDocumentAnsweredOnceInterleaved(t *testing.T) {
	docs := corpus.TestDocuments()
	bodies, want := churnReference(t, docs)

	b0, b1 := newChurnBackend(t, "replica-0"), newChurnBackend(t, "replica-1")
	router, srv := newChurnRouter(t, b0, b1)

	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		// Membership churn loop: a third replica repeatedly joins and
		// leaves while the client drives traffic.
		defer close(churnDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			extra := newChurnBackend(t, fmt.Sprintf("flapper-%d", i))
			if err := router.AddPeer(extra.peer()); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(5 * time.Millisecond)
			router.RemovePeer(extra.name)
			extra.srv.Close()
		}
	}()

	for pass := 0; pass < 3; pass++ {
		driveThrough(t, srv.URL, docs, bodies, want, 0, len(docs), fmt.Sprintf("churn pass %d", pass))
	}
	close(stop)
	<-churnDone
}
