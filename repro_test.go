package repro

import (
	"strings"
	"testing"

	"repro/internal/paperdoc"
)

func TestDiscoverFigure2(t *testing.T) {
	res, err := Discover(paperdoc.Figure2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Separator != "hr" {
		t.Errorf("separator = %s, want hr", res.Separator)
	}
}

func TestDiscoverWithOntologyFigure2(t *testing.T) {
	res, err := DiscoverWithOntology(paperdoc.Figure2, BuiltinOntology("obituary"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Separator != "hr" {
		t.Errorf("separator = %s, want hr", res.Separator)
	}
	if _, ok := res.Rankings["OM"]; !ok {
		t.Error("OM should participate with an ontology")
	}
}

func TestSplitFacade(t *testing.T) {
	res, err := Discover(paperdoc.Figure2)
	if err != nil {
		t.Fatal(err)
	}
	recs := Split(paperdoc.Figure2, res)
	if len(recs) != 4 {
		t.Errorf("records = %d, want 4", len(recs))
	}
}

func TestExtractFacade(t *testing.T) {
	db, err := Extract(paperdoc.Figure2, BuiltinOntology("obituary"))
	if err != nil {
		t.Fatal(err)
	}
	if db.Table("Obituary").Len() != 3 {
		t.Errorf("obituaries = %d, want 3", db.Table("Obituary").Len())
	}
}

func TestParseOntologyFacade(t *testing.T) {
	ont, err := ParseOntology("ontology X\nentity X\nobject A : many {\nkeyword `k`\n}")
	if err != nil {
		t.Fatal(err)
	}
	if ont.Name != "X" {
		t.Errorf("name = %s", ont.Name)
	}
	if _, err := ParseOntology("garbage"); err == nil {
		t.Error("expected parse error")
	}
}

func TestBuiltinOntologyFacade(t *testing.T) {
	for _, name := range []string{"obituary", "carad", "jobad", "course"} {
		if BuiltinOntology(name) == nil {
			t.Errorf("builtin %s missing", name)
		}
	}
	if BuiltinOntology("nope") != nil {
		t.Error("unknown builtin should be nil")
	}
}

func TestDiscoverErrors(t *testing.T) {
	if _, err := Discover(""); err == nil {
		t.Error("empty document should error")
	}
}

func TestExplainFacade(t *testing.T) {
	res, err := Discover(paperdoc.Figure2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Explain(res), "separator: <hr>") {
		t.Error("Explain output missing separator line")
	}
}
