package repro

// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each BenchmarkTableN measures the full computation behind that table;
// BenchmarkLinearScaling checks the paper's O(n) claim (§3, §5.3) by
// sweeping document size; the ablation benchmarks cover the design knobs
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The printed experiment outputs themselves come from cmd/experiments.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/certainty"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/httpapi"
	"repro/internal/ontology"
	"repro/internal/paperdoc"
	"repro/internal/tagtree"
	"repro/internal/template"
	"repro/internal/wrapper"
)

// BenchmarkFigure2Document measures the §5.3 worked example end-to-end:
// tag tree, candidates, all five heuristics, and the compound combination
// on the paper's Figure 2 page.
func BenchmarkFigure2Document(b *testing.B) {
	ont := ontology.Builtin("obituary")
	b.SetBytes(int64(len(paperdoc.Figure2)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Discover(paperdoc.Figure2, core.Options{Ontology: ont})
		if err != nil || res.Separator != "hr" {
			b.Fatalf("separator = %v, err = %v", res, err)
		}
	}
}

// benchTraining measures evaluating one 50-document training corpus (the
// computation behind Tables 2 and 3).
func benchTraining(b *testing.B, d corpus.Domain) {
	docs := corpus.TrainingDocuments(d)
	total := 0
	for _, doc := range docs {
		total += len(doc.HTML)
	}
	b.SetBytes(int64(total))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := eval.EvaluateAll(docs, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if sr := eval.SuccessRate(results); sr != 1.0 {
			b.Fatalf("ORSIH success = %v, want 1.0", sr)
		}
	}
}

// BenchmarkTable2Obituaries regenerates the obituary training distribution.
func BenchmarkTable2Obituaries(b *testing.B) { benchTraining(b, corpus.Obituaries) }

// BenchmarkTable3CarAds regenerates the car-ad training distribution.
func BenchmarkTable3CarAds(b *testing.B) { benchTraining(b, corpus.CarAds) }

// BenchmarkTable4Calibration measures deriving certainty factors from the
// measured training distributions (Tables 2+3 → Table 4).
func BenchmarkTable4Calibration(b *testing.B) {
	obits, err := eval.EvaluateAll(corpus.TrainingDocuments(corpus.Obituaries), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cars, err := eval.EvaluateAll(corpus.TrainingDocuments(corpus.CarAds), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	dists := append(eval.RankingDistribution(obits), eval.RankingDistribution(cars)...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := certainty.Calibrate(dists)
		if len(t) != 5 {
			b.Fatalf("calibrated table has %d heuristics", len(t))
		}
	}
}

// BenchmarkTable5CombinationSweep measures scoring all 26 heuristic
// combinations over the 100 training documents.
func BenchmarkTable5CombinationSweep(b *testing.B) {
	obits, err := eval.EvaluateAll(corpus.TrainingDocuments(corpus.Obituaries), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cars, err := eval.EvaluateAll(corpus.TrainingDocuments(corpus.CarAds), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	all := append(obits, cars...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := eval.CombinationSweep(all, certainty.PaperTable)
		if len(rows) != 26 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// benchTestSet measures one Tables 6–9 test-set evaluation.
func benchTestSet(b *testing.B, d corpus.Domain) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := eval.TestSetTable(d)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.A != 1 {
				b.Fatalf("%s: compound rank %d", row.Site, row.A)
			}
		}
	}
}

// BenchmarkTable6TestObituaries regenerates test set 1.
func BenchmarkTable6TestObituaries(b *testing.B) { benchTestSet(b, corpus.Obituaries) }

// BenchmarkTable7TestCarAds regenerates test set 2.
func BenchmarkTable7TestCarAds(b *testing.B) { benchTestSet(b, corpus.CarAds) }

// BenchmarkTable8TestJobAds regenerates test set 3.
func BenchmarkTable8TestJobAds(b *testing.B) { benchTestSet(b, corpus.JobAds) }

// BenchmarkTable9TestCourses regenerates test set 4.
func BenchmarkTable9TestCourses(b *testing.B) { benchTestSet(b, corpus.Courses) }

// BenchmarkTable10SuccessRates measures the final 20-document success-rate
// computation.
func BenchmarkTable10SuccessRates(b *testing.B) {
	docs := corpus.TestDocuments()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := eval.EvaluateAll(docs, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rates := eval.IndividualSuccessRates(results)
		if rates["ORSIH"] != 1.0 {
			b.Fatalf("ORSIH = %v", rates["ORSIH"])
		}
	}
}

// BenchmarkLinearScaling sweeps document size (records × multiplier) to
// exhibit the paper's O(n) behaviour: ns/op should grow roughly linearly
// with bytes processed (compare the MB/s column across sizes).
func BenchmarkLinearScaling(b *testing.B) {
	ont := ontology.Builtin("obituary")
	for _, mult := range []int{1, 4, 16, 64} {
		records := 8 * mult
		site := &corpus.Site{
			Name:   fmt.Sprintf("scale-%dx", mult),
			Domain: corpus.Obituaries,
			Profile: corpus.Profile{
				Container: []string{"div"},
				Layout:    corpus.Delimited,
				Separator: "hr",
				Records:   [2]int{records, records},
				BoldRuns:  [2]int{2, 3},
				Breaks:    [2]int{1, 2},
				BaseSize:  300,
			},
		}
		doc := site.Generate(0)
		b.Run(fmt.Sprintf("%dx_%dKB", mult, len(doc.HTML)/1024), func(b *testing.B) {
			b.SetBytes(int64(len(doc.HTML)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Discover(doc.HTML, core.Options{Ontology: ont})
				if err != nil || res.Separator != "hr" {
					b.Fatalf("res = %v err = %v", res, err)
				}
			}
		})
	}
}

// BenchmarkAblationCandidateThreshold sweeps the irrelevant-tag cutoff
// around the paper's 10% choice.
func BenchmarkAblationCandidateThreshold(b *testing.B) {
	ont := ontology.Builtin("obituary")
	for _, threshold := range []float64{0.02, 0.05, 0.10, 0.20} {
		b.Run(fmt.Sprintf("%.0f%%", threshold*100), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Discover(paperdoc.Figure2, core.Options{
					Ontology:           ont,
					CandidateThreshold: threshold,
				})
				if err != nil || res.Separator != "hr" {
					b.Fatalf("threshold %v: res=%v err=%v", threshold, res, err)
				}
			}
		})
	}
}

// BenchmarkAblationHeuristicSubsets measures the per-document cost of the
// paper's headline combinations (Table 5's winners plus cheap baselines).
func BenchmarkAblationHeuristicSubsets(b *testing.B) {
	ont := ontology.Builtin("obituary")
	combos := []certainty.Combination{
		{certainty.IT, certainty.HT},
		{certainty.OM, certainty.IT},
		{certainty.OM, certainty.RP, certainty.SD, certainty.IT},
		certainty.AllHeuristics,
	}
	for _, combo := range combos {
		b.Run(combo.Abbrev(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Discover(paperdoc.Figure2, core.Options{
					Ontology:    ont,
					Combination: combo,
				})
				if err != nil || res.Separator != "hr" {
					b.Fatalf("%s: res=%v err=%v", combo.Abbrev(), res, err)
				}
			}
		})
	}
}

// BenchmarkExtractPipeline measures the complete Figure 1 pipeline —
// boundary discovery, recognition, correlation, database population — on a
// mid-sized synthetic page.
func BenchmarkExtractPipeline(b *testing.B) {
	site := corpus.TestSites(corpus.CarAds)[2] // wrapped table layout
	doc := site.Generate(0)
	ont := ontology.Builtin("carad")
	b.SetBytes(int64(len(doc.HTML)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := Extract(doc.HTML, ont)
		if err != nil {
			b.Fatal(err)
		}
		if db.Table("CarAd").Len() == 0 {
			b.Fatal("no records extracted")
		}
	}
}

// BenchmarkCorpusGeneration measures synthesizing the full 120-document
// corpus (both training domains plus the test set).
func BenchmarkCorpusGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := len(corpus.TrainingDocuments(corpus.Obituaries)) +
			len(corpus.TrainingDocuments(corpus.CarAds)) +
			len(corpus.TestDocuments())
		if n != 120 {
			b.Fatalf("corpus = %d docs", n)
		}
	}
}

// BenchmarkSplitRecords measures record chunking on a large page.
func BenchmarkSplitRecords(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<html><body><div>")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "<hr><b>Record %d</b> body text with several words in it.", i)
	}
	sb.WriteString("<hr></div></body></html>")
	doc := sb.String()
	res, err := Discover(doc)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs := Split(doc, res)
		if len(recs) != 200 {
			b.Fatalf("records = %d", len(recs))
		}
	}
}

// BenchmarkParallelEvaluation compares sequential and worker-pool corpus
// evaluation (the production crawl shape).
func BenchmarkParallelEvaluation(b *testing.B) {
	docs := corpus.TestDocuments()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results, err := eval.EvaluateAllParallel(docs, core.Options{}, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != 20 {
					b.Fatal("wrong result count")
				}
			}
		})
	}
}

// BenchmarkDiscoverXML measures footnote 1's XML generalization on a
// synthetic feed.
func BenchmarkDiscoverXML(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<export><ads>")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, "<ad><vehicle>1994 Ford %d</vehicle><price>$%d</price><contact>(801) 555-%04d</contact></ad>", i, 1000+i, i)
	}
	sb.WriteString("</ads></export>")
	feed := sb.String()
	opts := Options{SeparatorList: []string{"ad", "item"}}
	b.SetBytes(int64(len(feed)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := DiscoverXML(feed, opts)
		if err != nil || res.Separator != "ad" {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}

// BenchmarkWrapperApplyVsDiscover shows why a learned wrapper exists: Apply
// skips the heuristic voting entirely.
func BenchmarkWrapperApplyVsDiscover(b *testing.B) {
	site := corpus.TrainingSites(corpus.Obituaries)[0]
	samples := []string{site.Generate(0).HTML, site.Generate(1).HTML, site.Generate(2).HTML}
	w, err := wrapper.Learn(samples, ontology.Builtin("obituary"))
	if err != nil {
		b.Fatal(err)
	}
	target := site.Generate(9).HTML
	b.Run("WrapperApply", func(b *testing.B) {
		b.SetBytes(int64(len(target)))
		for i := 0; i < b.N; i++ {
			if _, err := w.Apply(target); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FullDiscover", func(b *testing.B) {
		b.SetBytes(int64(len(target)))
		ont := ontology.Builtin("obituary")
		for i := 0; i < b.N; i++ {
			res, err := core.Discover(target, core.Options{Ontology: ont})
			if err != nil {
				b.Fatal(err)
			}
			core.Split(target, res)
		}
	})
}

// openBenchStore builds an in-memory template store pre-warmed with the
// Figure 2 wrapper, returning the store and the salt the serving layer
// would use for that request shape.
func openBenchStore(b *testing.B) (*template.Store, string) {
	b.Helper()
	store, err := template.Open(template.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { store.Close() })
	salt := template.Salt("html", "obituary", nil)
	res, err := core.Discover(paperdoc.Figure2, core.Options{
		Ontology:     ontology.Builtin("obituary"),
		Templates:    store,
		TemplateSalt: salt,
	})
	if err != nil || res.Separator != "hr" {
		b.Fatalf("warm discovery: res=%v err=%v", res, err)
	}
	if store.Len() != 1 {
		b.Fatalf("warm store holds %d entries, want 1", store.Len())
	}
	return store, salt
}

// BenchmarkTemplateHit measures the learned-wrapper fast path on a warm
// store: fingerprint the raw document, look up the stored wrapper, done.
// Compare against BenchmarkTemplateMissFallback (or BenchmarkFigure2Document)
// for the cost the store saves; docs/WRAPPER.md quotes the ratio.
func BenchmarkTemplateHit(b *testing.B) {
	store, salt := openBenchStore(b)
	b.SetBytes(int64(len(paperdoc.Figure2)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _, ok := store.LookupDoc(paperdoc.Figure2, salt)
		if !ok || e.Separator != "hr" {
			b.Fatalf("warm lookup: entry=%v ok=%v", e, ok)
		}
	}
}

// BenchmarkTemplateMissFallback measures the same request when the store
// has no wrapper for the template: the miss costs one lookup on top of full
// discovery, then the result is learned. Resetting per iteration keeps every
// pass on the miss path.
func BenchmarkTemplateMissFallback(b *testing.B) {
	store, salt := openBenchStore(b)
	ont := ontology.Builtin("obituary")
	b.SetBytes(int64(len(paperdoc.Figure2)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Reset()
		res, err := core.Discover(paperdoc.Figure2, core.Options{
			Ontology:     ont,
			Templates:    store,
			TemplateSalt: salt,
		})
		if err != nil || res.Separator != "hr" {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}

// TestTemplateFastPathSpeedup is the perf claim behind the template store:
// serving a warm template hit must be at least 50× faster than the cold
// Figure 2 discovery it replaces. Measured here with testing.Benchmark so
// the ratio is enforced, not just reported.
func TestTemplateFastPathSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark ratio check skipped in -short mode")
	}
	store, err := template.Open(template.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	salt := template.Salt("html", "obituary", nil)
	ont := ontology.Builtin("obituary")
	if _, err := core.Discover(paperdoc.Figure2, core.Options{
		Ontology: ont, Templates: store, TemplateSalt: salt,
	}); err != nil {
		t.Fatal(err)
	}
	// `go test ./...` runs package test binaries concurrently, and the warm
	// side is microseconds per op — one descheduled slice can inflate a
	// single measurement severalfold. Measure up to a few trials and pass on
	// the first that clears the floor; fail only if none do (idle-machine
	// ratios run >150x, so a persistent miss of 50x is a real regression,
	// not scheduling noise).
	const trials = 4
	best := 0.0
	for trial := 0; trial < trials; trial++ {
		warm := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, ok := store.LookupDoc(paperdoc.Figure2, salt); !ok {
					b.Fatal("warm lookup missed")
				}
			}
		})
		cold := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Discover(paperdoc.Figure2, core.Options{Ontology: ont}); err != nil {
					b.Fatal(err)
				}
			}
		})
		ratio := float64(cold.NsPerOp()) / float64(warm.NsPerOp())
		t.Logf("trial %d: cold %d ns/op, warm %d ns/op: %.1fx", trial, cold.NsPerOp(), warm.NsPerOp(), ratio)
		if ratio >= 50 {
			return
		}
		if ratio > best {
			best = ratio
		}
	}
	t.Errorf("warm template hit is %.1fx faster than cold discovery at best over %d trials, want >= 50x",
		best, trials)
}

// postJSON drives one HTTP round-trip against the serving layer, draining
// the body so connections are reused across iterations.
func postJSON(b *testing.B, client *http.Client, url string, body []byte) {
	b.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status = %d", resp.StatusCode)
	}
}

// BenchmarkServeCacheHitVsMiss contrasts a discovery request that must run
// the full pipeline with the identical request answered from the result
// cache. The gap is the pipeline cost the cache saves; the hit side is pure
// HTTP + JSON + LRU overhead.
func BenchmarkServeCacheHitVsMiss(b *testing.B) {
	body, err := json.Marshal(map[string]string{"html": paperdoc.Figure2})
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, cacheSize int) {
		srv := httptest.NewServer(httpapi.NewHandler(httpapi.Config{CacheSize: cacheSize}))
		defer srv.Close()
		client := srv.Client()
		postJSON(b, client, srv.URL+"/v1/discover", body) // warm (fills the cache when enabled)
		b.SetBytes(int64(len(paperdoc.Figure2)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			postJSON(b, client, srv.URL+"/v1/discover", body)
		}
	}
	b.Run("miss", func(b *testing.B) { run(b, 0) }) // cache disabled: every request recomputes
	b.Run("hit", func(b *testing.B) { run(b, 8) })
}

// BenchmarkServeBatchThroughput measures the batch endpoint fanning 32
// distinct documents across its worker pool, with caching disabled so every
// iteration pays full pipeline cost (the crawl-shaped workload).
func BenchmarkServeBatchThroughput(b *testing.B) {
	docs := make([]map[string]string, 32)
	total := 0
	for i := range docs {
		doc := corpus.TrainingSites(corpus.Obituaries)[i%10].Generate(i).HTML
		docs[i] = map[string]string{"html": doc}
		total += len(doc)
	}
	body, err := json.Marshal(map[string]any{"documents": docs})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			srv := httptest.NewServer(httpapi.NewHandler(httpapi.Config{BatchWorkers: workers}))
			defer srv.Close()
			client := srv.Client()
			b.SetBytes(int64(total))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				postJSON(b, client, srv.URL+"/v1/discover/batch", body)
			}
		})
	}
}

// benchCorpus assembles the 220-document benchmark corpus — every domain's
// training documents plus the 20-site test set, the same population
// cmd/evalrun scores — and its total byte size.
func benchCorpus() ([]*corpus.Document, int64) {
	var docs []*corpus.Document
	for _, d := range corpus.AllDomains {
		docs = append(docs, corpus.TrainingDocuments(d)...)
	}
	docs = append(docs, corpus.TestDocuments()...)
	var total int64
	for _, doc := range docs {
		total += int64(len(doc.HTML))
	}
	return docs, total
}

// BenchmarkCorpusThroughput is the headline MB/s number for boundary
// discovery over the 220-document corpus (no ontology — the pure structural
// path every request pays). ByteArena is the byte-level hot path: []byte
// input, one arena reset per document, serial heuristics, zero parse-side
// allocations. LegacyString is the original heap-allocating path, kept as
// the in-run reference so TestCorpusThroughputGate can assert the ratio
// without depending on the machine. The MB/s this reports is what the CI
// throughput-gate job compares against BENCH_6.json.
func BenchmarkCorpusThroughput(b *testing.B) {
	docs, total := benchCorpus()
	raw := make([][]byte, len(docs))
	for i, d := range docs {
		raw[i] = []byte(d.HTML)
	}

	b.Run("ByteArena", func(b *testing.B) {
		arena := tagtree.AcquireArena()
		defer arena.Release()
		opts := core.Options{Arena: arena}
		b.SetBytes(total)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, doc := range raw {
				if _, err := core.DiscoverBytes(doc, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("ByteArenaOntology", func(b *testing.B) {
		// With each domain's ontology armed — the recognizer scan included,
		// matching the configuration behind BENCH_3's Table benchmarks
		// (~2.6 MB/s there).
		arena := tagtree.AcquireArena()
		defer arena.Release()
		onts := make([]*ontology.Ontology, len(docs))
		for i, d := range docs {
			onts[i] = d.Site.Domain.Ontology()
		}
		b.SetBytes(total)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, doc := range raw {
				if _, err := core.DiscoverBytes(doc, core.Options{Ontology: onts[j], Arena: arena}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("LegacyString", func(b *testing.B) {
		b.SetBytes(total)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, d := range docs {
				if _, err := core.Discover(d.HTML, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// TestCorpusThroughputGate enforces the byte-path throughput claim as a test,
// so a regression fails `go test ./...` rather than only shifting a benchmark
// number nobody is watching. Two floors:
//
//   - Absolute: ≥ 30 MB/s over the 220-doc corpus — 10× the 2.6–3.0 MB/s the
//     archived BENCH_3/BENCH_5 discover path measured on this class of
//     machine (BENCH_5's Table rows ran as low as 1.43 MB/s).
//   - Relative: ≥ 1.5× the legacy string path measured in the same run, which
//     holds even if the machine itself is slow or contended.
//
// Idle-machine numbers run ~70 MB/s and ~2.4×, so the floors have ≳2× slack;
// best-of-trials absorbs scheduling noise on shared runners.
func TestCorpusThroughputGate(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark ratio check skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("throughput floors are meaningless under -race instrumentation")
	}
	docs, total := benchCorpus()
	raw := make([][]byte, len(docs))
	for i, d := range docs {
		raw[i] = []byte(d.HTML)
	}
	const (
		minMBs   = 30.0
		minRatio = 1.5
		trials   = 3
	)
	mbs := func(r testing.BenchmarkResult) float64 {
		return float64(total) / (float64(r.NsPerOp()) / 1e9) / 1e6
	}
	bestAbs, bestRatio := 0.0, 0.0
	for trial := 0; trial < trials; trial++ {
		byteRes := testing.Benchmark(func(b *testing.B) {
			arena := tagtree.AcquireArena()
			defer arena.Release()
			opts := core.Options{Arena: arena}
			for i := 0; i < b.N; i++ {
				for _, doc := range raw {
					if _, err := core.DiscoverBytes(doc, opts); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		legacyRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, d := range docs {
					if _, err := core.Discover(d.HTML, core.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		abs, ratio := mbs(byteRes), float64(legacyRes.NsPerOp())/float64(byteRes.NsPerOp())
		t.Logf("trial %d: byte path %.1f MB/s, legacy %.1f MB/s, ratio %.2fx",
			trial, abs, mbs(legacyRes), ratio)
		if abs >= minMBs && ratio >= minRatio {
			return
		}
		if abs > bestAbs {
			bestAbs = abs
		}
		if ratio > bestRatio {
			bestRatio = ratio
		}
	}
	t.Errorf("byte path best of %d trials: %.1f MB/s (want >= %.0f) at %.2fx legacy (want >= %.1fx)",
		trials, bestAbs, minMBs, bestRatio, minRatio)
}

// BenchmarkTagTreeVsFullDiscovery isolates the tag-tree construction share
// of the end-to-end cost (the paper's Appendix A component).
func BenchmarkTagTreeVsFullDiscovery(b *testing.B) {
	doc := corpus.TestSites(corpus.Obituaries)[1].Generate(0)
	b.Run("TagTreeOnly", func(b *testing.B) {
		b.SetBytes(int64(len(doc.HTML)))
		for i := 0; i < b.N; i++ {
			tagtree.Parse(doc.HTML)
		}
	})
	b.Run("FullDiscovery", func(b *testing.B) {
		b.SetBytes(int64(len(doc.HTML)))
		for i := 0; i < b.N; i++ {
			if _, err := Discover(doc.HTML); err != nil {
				b.Fatal(err)
			}
		}
	})
}
