package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/paperdoc"
)

func figure2File(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig2.html")
	if err := os.WriteFile(path, []byte(paperdoc.Figure2), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSummary(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "obituary", "summary", []string{figure2File(t)}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "separator: <hr>") || !strings.Contains(out.String(), "Obituary(3)") {
		t.Errorf("summary output:\n%s", out.String())
	}
}

func TestRunCSV(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "obituary", "csv", []string{figure2File(t)}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# table Obituary") {
		t.Errorf("csv missing table header:\n%s", s)
	}
	if !strings.Contains(s, "Lemar K. Adamson") {
		t.Errorf("csv missing extracted name:\n%s", s)
	}
}

func TestRunJSON(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "obituary", "json", []string{figure2File(t)}); err != nil {
		t.Fatal(err)
	}
	var generic map[string]json.RawMessage
	if err := json.Unmarshal([]byte(out.String()), &generic); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if _, ok := generic["Obituary"]; !ok {
		t.Errorf("JSON missing Obituary table: %s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "", "summary", nil); err == nil {
		t.Error("missing ontology should error")
	}
	if err := run(&out, "bogus-name", "summary", []string{figure2File(t)}); err == nil {
		t.Error("unknown ontology should error")
	}
	if err := run(&out, "obituary", "yaml", []string{figure2File(t)}); err == nil {
		t.Error("unknown format should error")
	}
	if err := run(&out, "obituary", "summary", []string{"/nope.html"}); err == nil {
		t.Error("missing file should error")
	}
}
