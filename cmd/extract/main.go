// Command extract runs the paper's complete Figure 1 pipeline on an HTML
// document: record-boundary discovery, constant/keyword recognition,
// keyword-constant correlation, and database population.
//
// Usage:
//
//	extract -ontology obituary [-format csv|json|summary] [file.html]
//
// With no file argument the document is read from standard input. CSV
// output prints each table preceded by a "# table <name>" line; JSON output
// is a single object keyed by table name.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/dbgen"
	"repro/internal/ontology"
	"repro/internal/reldb"
)

func main() {
	ontName := flag.String("ontology", "", "built-in ontology name or DSL file path (required)")
	format := flag.String("format", "summary", "output format: csv, json, or summary")
	flag.Parse()

	if err := run(os.Stdout, *ontName, *format, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "extract:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, ontName, format string, args []string) error {
	if ontName == "" {
		return fmt.Errorf("-ontology is required (one of %v or a DSL file)", ontology.BuiltinNames())
	}
	ont := ontology.Builtin(ontName)
	if ont == nil {
		src, err := os.ReadFile(ontName)
		if err != nil {
			return fmt.Errorf("ontology %q is neither built-in nor readable: %w", ontName, err)
		}
		if ont, err = ontology.Parse(string(src)); err != nil {
			return err
		}
	}

	doc, err := readDocument(args)
	if err != nil {
		return err
	}
	res, err := core.Discover(doc, core.Options{Ontology: ont})
	if err != nil {
		return err
	}
	db, err := dbgen.Populate(ont, res)
	if err != nil {
		return err
	}
	return write(out, db, res, format)
}

func write(out io.Writer, db *reldb.DB, res *core.Result, format string) error {
	switch format {
	case "summary":
		fmt.Fprintf(out, "separator: <%s>\n", res.Separator)
		fmt.Fprintln(out, "tables:", db.Summary())
		return nil
	case "csv":
		for _, name := range db.TableNames() {
			fmt.Fprintf(out, "# table %s\n", name)
			if err := db.Table(name).WriteCSV(out); err != nil {
				return err
			}
		}
		return nil
	case "json":
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(db)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

func readDocument(args []string) (string, error) {
	if len(args) == 0 {
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
	data, err := os.ReadFile(args[0])
	return string(data), err
}
