package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/paperdoc"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "doc.html")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExplain(t *testing.T) {
	var out strings.Builder
	err := run(&out, "obituary", false, true, false, false, false, []string{writeTemp(t, paperdoc.Figure2)})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"separator: <hr>", "OM: [(hr, 1)", "(hr, 99.96%)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRecords(t *testing.T) {
	var out strings.Builder
	err := run(&out, "", true, false, false, false, false, []string{writeTemp(t, paperdoc.Figure2)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "--- record 2") || !strings.Contains(out.String(), "Lemar K. Adamson") {
		t.Errorf("records missing:\n%s", out.String())
	}
}

func TestRunXML(t *testing.T) {
	var out strings.Builder
	path := writeTemp(t, "<c><item>a b</item><item>c d</item><item>e f</item></c>")
	err := run(&out, "", false, false, true, false, false, []string{path})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "separator: <item>") {
		t.Errorf("xml output:\n%s", out.String())
	}
}

func TestRunCheckRefusesSingleRecord(t *testing.T) {
	single := `<html><body><div><b>One Person</b> passed away on March 3, 1998.
Funeral services will be held Friday. Interment will follow.</div></body></html>`
	var out strings.Builder
	err := run(&out, "obituary", false, false, false, true, false, []string{writeTemp(t, single)})
	if err == nil {
		t.Fatal("expected refusal for single-record page")
	}
	if !strings.Contains(out.String(), "single-record") {
		t.Errorf("classification line missing:\n%s", out.String())
	}
}

func TestRunTrace(t *testing.T) {
	var out strings.Builder
	err := run(&out, "obituary", false, true, false, false, true, []string{writeTemp(t, paperdoc.Figure2)})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"stage timings:",
		"stage", "duration", "attributes",
		"parse", "fanout", "candidates", "recognize",
		"heuristic/OM", "heuristic/RP", "heuristic/SD", "heuristic/IT", "heuristic/HT",
		"combine", "separator=hr", "total",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("trace output missing %q:\n%s", want, got)
		}
	}
}

func TestRunCheckNeedsOntology(t *testing.T) {
	var out strings.Builder
	err := run(&out, "", false, false, false, true, false, []string{writeTemp(t, paperdoc.Figure2)})
	if err == nil || !strings.Contains(err.Error(), "-ontology") {
		t.Errorf("err = %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "", false, true, false, false, false, []string{"/nonexistent/file.html"}); err == nil {
		t.Error("missing file should error")
	}
	if err := run(&out, "no-such-ontology", false, true, false, false, false, []string{writeTemp(t, paperdoc.Figure2)}); err == nil {
		t.Error("bad ontology should error")
	}
	if err := run(&out, "", false, true, false, false, false, []string{writeTemp(t, "no tags")}); err == nil {
		t.Error("tagless document should error")
	}
}

// TestRunDegradedNoTopTagFails: a degraded result that names no separator at
// all must exit non-zero and name the failed heuristics, not print an empty
// answer with exit 0.
func TestRunDegradedNoTopTagFails(t *testing.T) {
	orig := discoverHTML
	defer func() { discoverHTML = orig }()
	discoverHTML = func(doc string, opts core.Options) (*core.Result, error) {
		return &core.Result{
			Degraded:         true,
			FailedHeuristics: []string{"OM", "RP", "SD", "IT", "HT"},
		}, nil
	}
	var out strings.Builder
	err := run(&out, "", false, true, false, false, false, []string{writeTemp(t, paperdoc.Figure2)})
	if err == nil {
		t.Fatal("degraded result with no top tag must be an error")
	}
	for _, want := range []string{"degraded", "OM", "RP", "SD", "IT", "HT"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err.Error(), want)
		}
	}
}

// TestRunDegradedWithTopTagSucceeds: degradation with a surviving answer is
// still a usable result and must keep exit status 0.
func TestRunDegradedWithTopTagSucceeds(t *testing.T) {
	orig := discoverHTML
	defer func() { discoverHTML = orig }()
	discoverHTML = func(doc string, opts core.Options) (*core.Result, error) {
		res, err := core.Discover(doc, opts)
		if err != nil {
			return nil, err
		}
		res.Degraded = true
		res.FailedHeuristics = []string{"SD"}
		return res, nil
	}
	var out strings.Builder
	err := run(&out, "", false, false, false, false, false, []string{writeTemp(t, paperdoc.Figure2)})
	if err != nil {
		t.Fatalf("degraded-with-answer should succeed: %v", err)
	}
	if !strings.Contains(out.String(), "separator: <hr>") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestLoadOntologyFromDSLFile(t *testing.T) {
	dsl := "ontology X\nentity X\nobject A : many {\nkeyword `k`\n}\n"
	path := filepath.Join(t.TempDir(), "x.ont")
	if err := os.WriteFile(path, []byte(dsl), 0o644); err != nil {
		t.Fatal(err)
	}
	ont, err := loadOntology(path)
	if err != nil {
		t.Fatal(err)
	}
	if ont.Name != "X" {
		t.Errorf("ontology name = %s", ont.Name)
	}
}
