// Command boundary discovers the record separator of an HTML document and
// optionally dumps the separated records.
//
// Usage:
//
//	boundary [-ontology obituary] [-records] [-explain] [-xml] [-check] [-trace] [file.html]
//
// With no file argument the document is read from standard input. The
// -ontology flag enables the OM heuristic with one of the built-in
// application ontologies (obituary, carad, jobad, course) or a path to an
// ontology DSL file. -xml parses the input with XML semantics. -check runs
// the document classifier first and refuses to discover boundaries on
// pages that do not hold multiple records (the paper's input assumption).
// -trace appends the run's trace ID (the same ID a service request would
// publish to /debug/traces), a table of heuristics that declined or failed
// with their reasons, and a per-stage timing table (parse, fan-out search,
// candidate extraction, each heuristic, certainty combination) showing where
// the pipeline spends its time on the document. -explain includes each
// heuristic's certainty factor (or decline reason) and the combination
// arithmetic behind the compound score.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ontology"
)

// The discovery entry points are package variables so tests can exercise the
// degraded-exit path without arranging a real all-heuristic failure.
var (
	discoverHTML = core.Discover
	discoverXML  = core.DiscoverXML
)

func main() {
	ontName := flag.String("ontology", "", "built-in ontology name or DSL file path (enables OM)")
	records := flag.Bool("records", false, "print the separated records' cleaned text")
	explain := flag.Bool("explain", true, "print per-heuristic rankings and compound scores")
	xml := flag.Bool("xml", false, "parse the input as XML instead of HTML")
	check := flag.Bool("check", false, "classify the document first; refuse non-multi-record pages")
	trace := flag.Bool("trace", false, "print a per-stage timing table for the discovery run")
	flag.Parse()

	if err := run(os.Stdout, *ontName, *records, *explain, *xml, *check, *trace, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "boundary:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, ontName string, records, explain, xml, check, trace bool, args []string) error {
	doc, err := readDocument(args)
	if err != nil {
		return err
	}
	ont, err := loadOntology(ontName)
	if err != nil {
		return err
	}

	if check {
		if ont == nil {
			return fmt.Errorf("-check needs -ontology (classification is content-based)")
		}
		cls, err := classify.Classify(doc, ont)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "classification: %s (estimate %.1f records, fan-out %d)\n",
			cls.Kind, cls.Estimate, cls.FanOut)
		if cls.Kind != classify.MultipleRecords {
			return fmt.Errorf("document does not hold multiple records; boundary discovery does not apply")
		}
	}

	discover := discoverHTML
	if xml {
		discover = discoverXML
	}
	opts := core.Options{Ontology: ont}
	if trace {
		opts.Trace = obs.NewTrace()
	}
	res, err := discover(doc, opts)
	if err != nil {
		return err
	}
	// A degraded result that still names a separator is a usable (if
	// lower-confidence) answer; a degraded result with no top tag is not —
	// exiting 0 there would let scripts consume an empty separator as
	// success.
	if res.Degraded && len(res.TopTags) == 0 {
		return fmt.Errorf("discovery degraded with no usable separator (failed heuristics: %s)",
			strings.Join(res.FailedHeuristics, ", "))
	}
	if explain {
		fmt.Fprint(out, core.ExplainVerbose(res, opts))
	} else {
		fmt.Fprintf(out, "separator: <%s>\n", res.Separator)
	}
	if trace {
		fmt.Fprintf(out, "\ntrace id: %s\n", opts.Trace.ID())
		if len(res.HeuristicReasons) > 0 {
			fmt.Fprintln(out, "declined/failed heuristics:")
			for _, name := range []string{"OM", "RP", "SD", "IT", "HT"} {
				if reason, ok := res.HeuristicReasons[name]; ok {
					fmt.Fprintf(out, "  %-3s %s\n", name, reason)
				}
			}
		}
		fmt.Fprintf(out, "\nstage timings:\n%s", opts.Trace.Table())
	}
	if records {
		for i, rec := range core.Split(doc, res) {
			fmt.Fprintf(out, "\n--- record %d [%d:%d] ---\n%s\n", i+1, rec.Start, rec.End, rec.Text)
		}
	}
	return nil
}

func readDocument(args []string) (string, error) {
	if len(args) == 0 {
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
	data, err := os.ReadFile(args[0])
	return string(data), err
}

// loadOntology resolves the -ontology flag: empty disables OM, a built-in
// name selects it, anything else is treated as a DSL file path.
func loadOntology(name string) (*ontology.Ontology, error) {
	if name == "" {
		return nil, nil
	}
	if ont := ontology.Builtin(name); ont != nil {
		return ont, nil
	}
	src, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("ontology %q is neither built-in nor readable: %w", name, err)
	}
	return ontology.Parse(string(src))
}
