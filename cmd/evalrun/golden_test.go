package main

// Golden snapshots for the leaderboard surface: the full-corpus table and
// the machine-readable QUALITY json are locked byte for byte. The corpus,
// the extractors, and the metric are all deterministic, so any diff here is
// a real quality movement (update the snapshot AND the committed
// QUALITY_<n>.json baseline deliberately, together) or a formatting break.
//
// To accept an intentional change:
//
//	go test ./cmd/evalrun -run TestGolden -update

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the .golden snapshots")

func TestGoldenLeaderboard(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus leaderboard run is slow")
	}
	var out strings.Builder
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "leaderboard.golden", out.String())
}

func TestGoldenQualityJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus leaderboard run is slow")
	}
	var out strings.Builder
	if err := run([]string{"-table=false", "-out", "-"}, &out); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "quality.golden", out.String())
}

// TestReportsDeterministic pins the property the golden files and the
// committed QUALITY baseline rely on: two independent runs emit
// byte-identical output, table and json alike.
func TestReportsDeterministic(t *testing.T) {
	render := func() string {
		var out strings.Builder
		if err := run([]string{"-docs", "test", "-out", "-"}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("two runs produced different bytes:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// checkGolden compares got with testdata/<name>, rewriting the file under
// -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./cmd/evalrun -run TestGolden -update)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from its snapshot.\n--- got\n%s\n--- want\n%s", name, got, want)
	}
}
