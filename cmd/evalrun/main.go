// Command evalrun runs the method-generic evaluation harness: every
// registered extractor (the ORSIH compound, each single-heuristic ablation,
// the learned-wrapper fast path, and the highest-fan-out baseline) is scored
// on the synthetic corpus with structural-match precision/recall/F1, and the
// result is printed as a leaderboard table and optionally archived as a
// machine-readable QUALITY_<n>.json report.
//
// Usage:
//
//	evalrun                              # leaderboard over the full 220-doc corpus
//	evalrun -docs test                   # the 20-document test corpus only
//	evalrun -out QUALITY_1.json          # archive the machine-readable report
//	evalrun -compare QUALITY_1.json      # regression gate against a committed baseline
//
// -compare switches to gate mode (the quality counterpart of
// `benchjson -compare`): the fresh run is diffed against the baseline and
// the command fails when any extractor's F1 — exact or forgiving — dropped
// by more than -tolerance absolute points. The corpus, the extractors, and
// the metric are all deterministic, so reports are byte-identical across
// runs and the gate never flakes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/corpus"
	"repro/internal/eval"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "evalrun:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("evalrun", flag.ContinueOnError)
	docsFlag := fs.String("docs", "all", "corpus to score: all|training|test")
	slack := fs.Int("slack", eval.DefaultBoundarySlack,
		"forgiving-variant boundary tolerance in bytes")
	workers := fs.Int("workers", 0, "evaluation concurrency (0 = GOMAXPROCS)")
	out := fs.String("out", "",
		`write the QUALITY json report to this file ("-" for stdout)`)
	baseline := fs.String("compare", "",
		"baseline QUALITY_<n>.json; fail when any extractor's F1 drops beyond -tolerance")
	tolerance := fs.Float64("tolerance", eval.DefaultQualityTolerance,
		"allowed absolute F1 drop against the -compare baseline (0.02 = two points)")
	table := fs.Bool("table", true, "print the leaderboard table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	docs, err := selectDocs(*docsFlag)
	if err != nil {
		return err
	}

	// Load the baseline before the (much more expensive) evaluation run so
	// a bad path or corrupt file fails fast.
	var base *eval.QualityReport
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			return err
		}
		base = &eval.QualityReport{}
		if err := json.Unmarshal(data, base); err != nil {
			return fmt.Errorf("baseline %s: %w", *baseline, err)
		}
	}

	report := eval.RunLeaderboard(docs, eval.QualityOptions{
		Slack:   *slack,
		Workers: *workers,
	})
	if base != nil {
		return eval.CompareQuality(base, report, *tolerance, stdout)
	}

	if *table {
		fmt.Fprint(stdout, eval.FormatLeaderboard(report))
	}
	if *out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *out == "-" {
			_, err = stdout.Write(data)
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	return nil
}

// selectDocs resolves the -docs flag: the full corpus (200 training + 20
// test), the training half, or the test half.
func selectDocs(which string) ([]*corpus.Document, error) {
	var docs []*corpus.Document
	switch which {
	case "all":
		for _, d := range corpus.AllDomains {
			docs = append(docs, corpus.TrainingDocuments(d)...)
		}
		docs = append(docs, corpus.TestDocuments()...)
	case "training":
		for _, d := range corpus.AllDomains {
			docs = append(docs, corpus.TrainingDocuments(d)...)
		}
	case "test":
		docs = corpus.TestDocuments()
	default:
		return nil, fmt.Errorf("unknown -docs %q (want all, training, or test)", which)
	}
	return docs, nil
}
