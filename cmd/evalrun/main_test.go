package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/eval"
)

func TestSelectDocs(t *testing.T) {
	cases := map[string]int{"all": 220, "training": 200, "test": 20}
	for which, want := range cases {
		docs, err := selectDocs(which)
		if err != nil {
			t.Fatalf("%s: %v", which, err)
		}
		if len(docs) != want {
			t.Errorf("%s: %d documents, want %d", which, len(docs), want)
		}
	}
	if _, err := selectDocs("bogus"); err == nil {
		t.Error("unknown -docs value must be rejected")
	}
}

func TestRunTestCorpusTable(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-docs", "test"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "20 documents") || !strings.Contains(out.String(), "ORSIH") {
		t.Errorf("unexpected leaderboard output:\n%s", out.String())
	}
}

func TestRunWritesReportFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "QUALITY_test.json")
	var out strings.Builder
	if err := run([]string{"-docs", "test", "-table=false", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	report := &eval.QualityReport{}
	if err := json.Unmarshal(data, report); err != nil {
		t.Fatalf("report is not valid json: %v", err)
	}
	if report.Documents != 20 || len(report.Extractors) < 5 {
		t.Errorf("unexpected report shape: %d documents, %d extractors",
			report.Documents, len(report.Extractors))
	}
}

// TestCompareGateEndToEnd is the acceptance check at the CLI level: the
// gate passes against a faithful baseline and fails once a tracked
// extractor's baseline F1 is doctored more than two points above what the
// code now delivers.
func TestCompareGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "QUALITY_base.json")
	var out strings.Builder
	if err := run([]string{"-docs", "test", "-table=false", "-out", baseline}, &out); err != nil {
		t.Fatal(err)
	}

	// Faithful baseline: the gate passes.
	out.Reset()
	if err := run([]string{"-docs", "test", "-compare", baseline}, &out); err != nil {
		t.Fatalf("gate failed against a baseline the same code just wrote: %v", err)
	}
	if !strings.Contains(out.String(), "no tracked extractor regressed") {
		t.Errorf("missing pass summary:\n%s", out.String())
	}

	// Doctored baseline: claim OM-only used to be 2.5 points better than it
	// is; the fresh run now reads as a regression and the gate must fail.
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	report := &eval.QualityReport{}
	if err := json.Unmarshal(data, report); err != nil {
		t.Fatal(err)
	}
	doctored := false
	for i, e := range report.Extractors {
		if e.Name == "OM-only" {
			report.Extractors[i].Exact.F1 += 0.025
			report.Extractors[i].Forgiving.F1 += 0.025
			doctored = true
		}
	}
	if !doctored {
		t.Fatal("no OM-only row to doctor")
	}
	data, err = json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = run([]string{"-docs", "test", "-compare", baseline}, &out)
	if err == nil {
		t.Fatal("gate passed despite an injected 2.5-point F1 regression")
	}
	if !strings.Contains(err.Error(), "OM-only") {
		t.Errorf("gate error does not name the regressed extractor: %v", err)
	}

	// A wider tolerance absorbs the same injected drop.
	out.Reset()
	if err := run([]string{"-docs", "test", "-compare", baseline, "-tolerance", "0.05"}, &out); err != nil {
		t.Fatalf("5-point tolerance should absorb a 2.5-point drop: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-docs", "everything"}, &strings.Builder{}); err == nil {
		t.Error("bad -docs must error")
	}
	if err := run([]string{"-docs", "test", "-compare", filepath.Join(t.TempDir(), "missing.json")}, &strings.Builder{}); err == nil {
		t.Error("missing baseline must error")
	}
}
