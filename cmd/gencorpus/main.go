// Command gencorpus writes the synthetic experimental corpus to disk for
// inspection: the 100 training documents (Tables 2–5) and the 20 test
// documents (Tables 6–10), one HTML file each, plus a manifest with the
// ground-truth separators.
//
// Usage:
//
//	gencorpus -out corpus/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/corpus"
)

type manifestEntry struct {
	File    string   `json:"file"`
	Site    string   `json:"site"`
	URL     string   `json:"url"`
	Domain  string   `json:"domain"`
	Set     string   `json:"set"` // "training" or "test"
	Index   int      `json:"index"`
	Records int      `json:"records"`
	Truth   []string `json:"truth"`
}

func main() {
	out := flag.String("out", "corpus", "output directory")
	flag.Parse()

	if err := run(os.Stdout, *out); err != nil {
		fmt.Fprintln(os.Stderr, "gencorpus:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, out string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	var manifest []manifestEntry

	emit := func(d *corpus.Document, set string) error {
		name := fmt.Sprintf("%s_%s_%s_%d.html", set, d.Site.Domain, slug(d.Site.Name), d.Index)
		if err := os.WriteFile(filepath.Join(out, name), []byte(d.HTML), 0o644); err != nil {
			return err
		}
		manifest = append(manifest, manifestEntry{
			File: name, Site: d.Site.Name, URL: d.Site.URL,
			Domain: string(d.Site.Domain), Set: set, Index: d.Index,
			Records: d.Records, Truth: d.Truth,
		})
		return nil
	}

	for _, dom := range []corpus.Domain{corpus.Obituaries, corpus.CarAds} {
		for _, d := range corpus.TrainingDocuments(dom) {
			if err := emit(d, "training"); err != nil {
				return err
			}
		}
	}
	for _, d := range corpus.TestDocuments() {
		if err := emit(d, "test"); err != nil {
			return err
		}
	}

	data, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(out, "manifest.json"), data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %d documents + manifest.json to %s\n", len(manifest), out)
	return nil
}

func slug(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '/':
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}
