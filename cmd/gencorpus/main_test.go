package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesCorpusAndManifest(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run(&out, dir); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 120 documents") {
		t.Errorf("output: %s", out.String())
	}

	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var manifest []manifestEntry
	if err := json.Unmarshal(data, &manifest); err != nil {
		t.Fatal(err)
	}
	if len(manifest) != 120 {
		t.Fatalf("manifest entries = %d, want 120", len(manifest))
	}
	training, test := 0, 0
	for _, e := range manifest {
		switch e.Set {
		case "training":
			training++
		case "test":
			test++
		default:
			t.Errorf("bad set %q", e.Set)
		}
		if len(e.Truth) == 0 || e.Records == 0 {
			t.Errorf("entry %s lacks ground truth", e.File)
		}
		if _, err := os.Stat(filepath.Join(dir, e.File)); err != nil {
			t.Errorf("document file missing: %s", e.File)
		}
	}
	if training != 100 || test != 20 {
		t.Errorf("training/test = %d/%d, want 100/20", training, test)
	}
}

func TestSlug(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Salt Lake Tribune", "salt-lake-tribune"},
		{"GoCincinnati.com", "gocincinnaticom"},
		{"UT - Austin", "ut---austin"},
	}
	for _, c := range cases {
		if got := slug(c.in); got != c.want {
			t.Errorf("slug(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
