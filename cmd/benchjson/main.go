// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark runs can be checked in (BENCH_<n>.json at the
// repo root) and diffed across commits.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH_2.json
//	benchjson -in bench_output.txt
//
// -in "-" reads stdin, -out "-" writes stdout (both defaults). Non-benchmark
// lines (test chatter, PASS/ok) are ignored; goos/goarch/cpu/pkg headers are
// captured as environment metadata.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document: run environment plus every benchmark in
// input order.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	in := fs.String("in", "-", `input file ("-" for stdin)`)
	out := fs.String("out", "-", `output file ("-" for stdout)`)
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	report, err := parse(r)
	if err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return errors.New("no benchmark lines in input")
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out != "-" {
		return os.WriteFile(*out, data, 0o644)
	}
	_, err = stdout.Write(data)
	return err
}

// parse scans go-test output, keeping header metadata and benchmark result
// lines. The line grammar is: name, iteration count, then value/unit pairs
// (ns/op, MB/s, B/op, allocs/op).
func parse(r io.Reader) (*Report, error) {
	report := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			b.Package = pkg
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	return report, sc.Err()
}

func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, errors.New("too few fields")
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations: %w", err)
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "MB/s":
			b.MBPerS = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		default:
			// Custom ReportMetric units: ignore rather than fail, so the
			// tool keeps working as benchmarks evolve.
		}
	}
	return b, nil
}
