// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark runs can be checked in (BENCH_<n>.json at the
// repo root) and diffed across commits.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH_2.json
//	benchjson -in bench_output.txt
//	go test -bench=. ./... | benchjson -compare BENCH_2.json -tolerance 0.30
//
// -in "-" reads stdin, -out "-" writes stdout (both defaults). Non-benchmark
// lines (test chatter, PASS/ok) are ignored; goos/goarch/cpu/pkg headers are
// captured as environment metadata.
//
// -compare switches to regression-gate mode: instead of emitting JSON, the
// parsed run is diffed against a committed BENCH_<n>.json baseline and the
// command fails when any benchmark's ns/op slowed by more than -tolerance
// (a fraction; 0.30 allows +30%). Benchmarks reporting MB/s on both sides
// (b.SetBytes throughput benchmarks) are diffed and gated on MB/s instead,
// which stays comparable when the per-op payload (e.g. the corpus) grows. Speed-ups, benchmarks present on only
// one side, and benchmarks faster than the -min-ns noise floor are
// reported informationally, never as failures — the gate catches real
// regressions, not improvements, suite growth, or scheduling jitter on
// sub-microsecond loops. Benchmarks are matched by package and name with
// the -GOMAXPROCS suffix stripped, so baselines transfer across machines
// with different core counts; a benchmark whose pkg header go test dropped
// (it streams the first package's output headerless) matches by bare name
// when that is unambiguous. Repeated measurements (`go test -count=N`)
// fold to the fastest observed ns/op per benchmark before the diff, which
// filters one-sided interference noise (GC pauses, scheduling).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document: run environment plus every benchmark in
// input order.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	in := fs.String("in", "-", `input file ("-" for stdin)`)
	out := fs.String("out", "-", `output file ("-" for stdout)`)
	baseline := fs.String("compare", "",
		"baseline BENCH_<n>.json; fail when any benchmark slows beyond -tolerance")
	tolerance := fs.Float64("tolerance", 0.30,
		"allowed fractional ns/op slowdown against the -compare baseline")
	minNs := fs.Float64("min-ns", 10000,
		"noise floor: benchmarks whose baseline ns/op is below this are reported but never gated")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tolerance <= 0 {
		return fmt.Errorf("-tolerance must be > 0, got %v", *tolerance)
	}

	r := stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	report, err := parse(r)
	if err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return errors.New("no benchmark lines in input")
	}

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			return err
		}
		base := &Report{}
		if err := json.Unmarshal(data, base); err != nil {
			return fmt.Errorf("baseline %s: %w", *baseline, err)
		}
		w := io.Writer(stdout)
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return compare(base, report, *tolerance, *minNs, w)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out != "-" {
		return os.WriteFile(*out, data, 0o644)
	}
	_, err = stdout.Write(data)
	return err
}

// parse scans go-test output, keeping header metadata and benchmark result
// lines. The line grammar is: name, iteration count, then value/unit pairs
// (ns/op, MB/s, B/op, allocs/op).
func parse(r io.Reader) (*Report, error) {
	report := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			b.Package = pkg
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	return report, sc.Err()
}

// key identifies a benchmark across runs: its package plus its name with
// the -GOMAXPROCS suffix stripped.
type key struct{ pkg, name string }

// foldRepeats collapses repeated measurements of the same benchmark
// (`go test -count=N`) to a single entry carrying the fastest observed
// ns/op, preserving first-seen order.
func foldRepeats(benchmarks []Benchmark) []Benchmark {
	idx := make(map[key]int, len(benchmarks))
	out := make([]Benchmark, 0, len(benchmarks))
	for _, b := range benchmarks {
		k := key{b.Package, baseName(b.Name)}
		i, seen := idx[k]
		if !seen {
			idx[k] = len(out)
			out = append(out, b)
			continue
		}
		if b.NsPerOp > 0 && (out[i].NsPerOp == 0 || b.NsPerOp < out[i].NsPerOp) {
			out[i] = b
		}
	}
	return out
}

// baseName strips the -GOMAXPROCS suffix go test appends to benchmark
// names, so runs from machines with different core counts still match.
func baseName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// compare diffs the current run against a baseline report and writes one
// line per benchmark. It returns an error naming every benchmark whose
// ns/op slowed by more than tolerance; speed-ups, one-sided benchmarks,
// and benchmarks faster than the minNs noise floor (sub-microsecond loops
// drift far more than tolerance from scheduling alone) are informational
// only.
//
// Throughput benchmarks — both sides carrying an MB/s column (b.SetBytes) —
// are diffed and gated on MB/s instead of ns/op: their per-op payload is a
// whole corpus, so suite growth would otherwise read as a slowdown, while
// MB/s stays comparable across payload sizes.
//
// Repeated measurements (`go test -count=N`) of the same benchmark are
// folded to the fastest observed ns/op on both sides before diffing — the
// minimum is the standard noise-robust estimator for benchmark time, since
// interference (GC cycles, scheduling) only ever adds to it.
func compare(base, current *Report, tolerance, minNs float64, w io.Writer) error {
	baseBenchmarks := foldRepeats(base.Benchmarks)
	currentBenchmarks := foldRepeats(current.Benchmarks)
	baseline := make(map[key]Benchmark, len(baseBenchmarks))
	byName := make(map[string][]key)
	for _, b := range baseBenchmarks {
		k := key{b.Package, baseName(b.Name)}
		baseline[k] = b
		byName[k.name] = append(byName[k.name], k)
	}
	// resolve finds the baseline entry for a current benchmark. Exact
	// (package, name) first; when that misses, fall back to the bare name if
	// it is unambiguous in the baseline — `go test` streams the first
	// package's output without its pkg header, so either side of the diff
	// can carry an empty package for the same benchmark.
	resolve := func(c Benchmark) (key, Benchmark, bool) {
		k := key{c.Package, baseName(c.Name)}
		if b, ok := baseline[k]; ok {
			return k, b, true
		}
		if ks := byName[k.name]; len(ks) == 1 {
			return ks[0], baseline[ks[0]], true
		}
		return k, Benchmark{}, false
	}

	var regressions []string
	matched := make(map[key]bool)
	for _, c := range currentBenchmarks {
		k, b, ok := resolve(c)
		if !ok {
			fmt.Fprintf(w, "new       %-44s %12.0f ns/op (no baseline)\n", c.Name, c.NsPerOp)
			continue
		}
		matched[k] = true
		if b.NsPerOp == 0 {
			fmt.Fprintf(w, "skip      %-44s baseline has zero ns/op\n", c.Name)
			continue
		}
		if b.MBPerS > 0 && c.MBPerS > 0 {
			// Throughput benchmark: diff MB/s, not ns/op. ns/op on a
			// SetBytes benchmark scales with the per-op payload (e.g. the
			// whole corpus), so corpus growth would read as a regression;
			// MB/s is payload-invariant. The slowdown direction flips:
			// lower MB/s is worse.
			delta := c.MBPerS/b.MBPerS - 1
			status := "ok"
			switch {
			case b.NsPerOp < minNs:
				status = "tiny"
				if delta > tolerance {
					status = "faster"
				}
			case delta < -tolerance:
				status = "SLOWER"
				regressions = append(regressions,
					fmt.Sprintf("%s (%s): %.2f -> %.2f MB/s (%+.1f%%)",
						baseName(c.Name), c.Package, b.MBPerS, c.MBPerS, delta*100))
			case delta > tolerance:
				status = "faster"
			}
			fmt.Fprintf(w, "%-9s %-44s %12.2f -> %12.2f MB/s   %+6.1f%%\n",
				status, c.Name, b.MBPerS, c.MBPerS, delta*100)
			continue
		}
		delta := c.NsPerOp/b.NsPerOp - 1
		status := "ok"
		switch {
		case b.NsPerOp < minNs:
			status = "tiny"
			if delta < -tolerance {
				status = "faster"
			}
		case delta > tolerance:
			status = "SLOWER"
			regressions = append(regressions,
				fmt.Sprintf("%s (%s): %.0f -> %.0f ns/op (%+.1f%%)",
					baseName(c.Name), c.Package, b.NsPerOp, c.NsPerOp, delta*100))
		case delta < -tolerance:
			status = "faster"
		}
		fmt.Fprintf(w, "%-9s %-44s %12.0f -> %12.0f ns/op  %+6.1f%%\n",
			status, c.Name, b.NsPerOp, c.NsPerOp, delta*100)
	}
	for _, b := range baseBenchmarks {
		if k := (key{b.Package, baseName(b.Name)}); !matched[k] {
			fmt.Fprintf(w, "gone      %-44s was %.0f ns/op in the baseline\n", b.Name, b.NsPerOp)
		}
	}

	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond the %.0f%% tolerance:\n  %s",
			len(regressions), tolerance*100, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(w, "no gated benchmark regressed beyond %.0f%% of the baseline (%d matched, noise floor %.0f ns)\n",
		tolerance*100, len(matched), minNs)
	return nil
}

func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, errors.New("too few fields")
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations: %w", err)
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "MB/s":
			b.MBPerS = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		default:
			// Custom ReportMetric units: ignore rather than fail, so the
			// tool keeps working as benchmarks evolve.
		}
	}
	return b, nil
}
