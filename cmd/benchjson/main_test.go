package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFigure2Document-4   	    2282	    510679 ns/op	  88.89 MB/s	   93239 B/op	     441 allocs/op
BenchmarkSplitRecords-4      	   19741	     60055 ns/op	 317.85 MB/s	   60328 B/op	     621 allocs/op
BenchmarkCorpusGeneration-4  	      37	  31234567 ns/op
PASS
ok  	repro	12.345s
pkg: repro/internal/lru
BenchmarkGet-4               	12345678	        95.2 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/lru	1.234s
`

func TestParse(t *testing.T) {
	report, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if report.GOOS != "linux" || report.GOARCH != "amd64" || !strings.Contains(report.CPU, "Xeon") {
		t.Errorf("environment = %q/%q/%q", report.GOOS, report.GOARCH, report.CPU)
	}
	if len(report.Benchmarks) != 4 {
		t.Fatalf("benchmarks = %d, want 4", len(report.Benchmarks))
	}
	fig := report.Benchmarks[0]
	if fig.Name != "BenchmarkFigure2Document-4" || fig.Package != "repro" ||
		fig.Iterations != 2282 || fig.NsPerOp != 510679 ||
		fig.MBPerS != 88.89 || fig.BytesPerOp != 93239 || fig.AllocsPerOp != 441 {
		t.Errorf("Figure2 parsed as %+v", fig)
	}
	// Line with ns/op only: remaining metrics stay zero.
	gen := report.Benchmarks[2]
	if gen.NsPerOp != 31234567 || gen.BytesPerOp != 0 || gen.MBPerS != 0 {
		t.Errorf("CorpusGeneration parsed as %+v", gen)
	}
	// pkg headers re-scope later benchmarks.
	if got := report.Benchmarks[3].Package; got != "repro/internal/lru" {
		t.Errorf("lru benchmark package = %q", got)
	}
	// Fractional ns/op survives.
	if got := report.Benchmarks[3].NsPerOp; got != 95.2 {
		t.Errorf("lru ns/op = %v", got)
	}
}

func TestParseRejectsMalformedBenchmarkLine(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkBroken-4 notanumber 5 ns/op\n")); err == nil {
		t.Error("malformed iteration count accepted")
	}
}

func TestRunFileToFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(in, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", in, "-out", out}, nil, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(report.Benchmarks) != 4 {
		t.Errorf("round-tripped benchmarks = %d", len(report.Benchmarks))
	}
}

func TestRunStdinToStdout(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"name": "BenchmarkSplitRecords-4"`) {
		t.Errorf("stdout output missing benchmark:\n%s", out.String())
	}
}

func TestRunEmptyInputErrors(t *testing.T) {
	if err := run(nil, strings.NewReader("PASS\nok repro 0.1s\n"), &strings.Builder{}); err == nil {
		t.Error("input with no benchmarks accepted")
	}
}
