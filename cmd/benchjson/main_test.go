package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFigure2Document-4   	    2282	    510679 ns/op	  88.89 MB/s	   93239 B/op	     441 allocs/op
BenchmarkSplitRecords-4      	   19741	     60055 ns/op	 317.85 MB/s	   60328 B/op	     621 allocs/op
BenchmarkCorpusGeneration-4  	      37	  31234567 ns/op
PASS
ok  	repro	12.345s
pkg: repro/internal/lru
BenchmarkGet-4               	12345678	        95.2 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/lru	1.234s
`

func TestParse(t *testing.T) {
	report, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if report.GOOS != "linux" || report.GOARCH != "amd64" || !strings.Contains(report.CPU, "Xeon") {
		t.Errorf("environment = %q/%q/%q", report.GOOS, report.GOARCH, report.CPU)
	}
	if len(report.Benchmarks) != 4 {
		t.Fatalf("benchmarks = %d, want 4", len(report.Benchmarks))
	}
	fig := report.Benchmarks[0]
	if fig.Name != "BenchmarkFigure2Document-4" || fig.Package != "repro" ||
		fig.Iterations != 2282 || fig.NsPerOp != 510679 ||
		fig.MBPerS != 88.89 || fig.BytesPerOp != 93239 || fig.AllocsPerOp != 441 {
		t.Errorf("Figure2 parsed as %+v", fig)
	}
	// Line with ns/op only: remaining metrics stay zero.
	gen := report.Benchmarks[2]
	if gen.NsPerOp != 31234567 || gen.BytesPerOp != 0 || gen.MBPerS != 0 {
		t.Errorf("CorpusGeneration parsed as %+v", gen)
	}
	// pkg headers re-scope later benchmarks.
	if got := report.Benchmarks[3].Package; got != "repro/internal/lru" {
		t.Errorf("lru benchmark package = %q", got)
	}
	// Fractional ns/op survives.
	if got := report.Benchmarks[3].NsPerOp; got != 95.2 {
		t.Errorf("lru ns/op = %v", got)
	}
}

func TestParseRejectsMalformedBenchmarkLine(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkBroken-4 notanumber 5 ns/op\n")); err == nil {
		t.Error("malformed iteration count accepted")
	}
}

func TestRunFileToFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(in, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", in, "-out", out}, nil, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(report.Benchmarks) != 4 {
		t.Errorf("round-tripped benchmarks = %d", len(report.Benchmarks))
	}
}

func TestRunStdinToStdout(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"name": "BenchmarkSplitRecords-4"`) {
		t.Errorf("stdout output missing benchmark:\n%s", out.String())
	}
}

func TestRunEmptyInputErrors(t *testing.T) {
	if err := run(nil, strings.NewReader("PASS\nok repro 0.1s\n"), &strings.Builder{}); err == nil {
		t.Error("input with no benchmarks accepted")
	}
}

// writeBaseline marshals a Report to a temp BENCH json file.
func writeBaseline(t *testing.T, report Report) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_0.json")
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBaseName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFigure2Document-4":  "BenchmarkFigure2Document",
		"BenchmarkFigure2Document-16": "BenchmarkFigure2Document",
		"BenchmarkFigure2Document":    "BenchmarkFigure2Document",
		"BenchmarkUTF-8":              "BenchmarkUTF",
		"Benchmark-NotACount-x":       "Benchmark-NotACount-x",
	} {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestCompareWithinTolerance: a run matching the baseline (modulo the
// GOMAXPROCS suffix and small drift) passes and says so.
func TestCompareWithinTolerance(t *testing.T) {
	baseline := writeBaseline(t, Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkFigure2Document", Package: "repro", NsPerOp: 500000},
		{Name: "BenchmarkSplitRecords", Package: "repro", NsPerOp: 60000},
	}})
	input := "pkg: repro\n" +
		"BenchmarkFigure2Document-4 100 510679 ns/op\n" +
		"BenchmarkSplitRecords-4 100 60055 ns/op\n"
	var out strings.Builder
	err := run([]string{"-compare", baseline}, strings.NewReader(input), &out)
	if err != nil {
		t.Fatalf("within-tolerance run failed: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no gated benchmark regressed beyond 30%") {
		t.Errorf("missing pass summary:\n%s", out.String())
	}
}

// TestCompareNoiseFloor: a benchmark under the -min-ns floor may drift far
// beyond the tolerance without failing the gate — sub-microsecond loops
// move that much from scheduling alone.
func TestCompareNoiseFloor(t *testing.T) {
	baseline := writeBaseline(t, Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkTinyLoop", Package: "repro/internal/lru", NsPerOp: 95},
		{Name: "BenchmarkFigure2Document", Package: "repro", NsPerOp: 500000},
	}})
	input := "pkg: repro/internal/lru\n" +
		"BenchmarkTinyLoop-4 100 250 ns/op\n" + // +163%, below the floor
		"pkg: repro\n" +
		"BenchmarkFigure2Document-4 100 510000 ns/op\n"
	var out strings.Builder
	if err := run([]string{"-compare", baseline}, strings.NewReader(input), &out); err != nil {
		t.Fatalf("noise-floor drift failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "tiny") {
		t.Errorf("report should mark the sub-floor benchmark:\n%s", out.String())
	}
	// Raising the floor's reach by lowering it puts the tiny benchmark back
	// under the gate.
	if err := run([]string{"-compare", baseline, "-min-ns", "10"},
		strings.NewReader(input), &strings.Builder{}); err == nil {
		t.Error("-min-ns 10 should gate the tiny benchmark's +163%")
	}
}

// TestCompareRegressionFails: a benchmark beyond the tolerance fails the run
// and the error names it with both measurements.
func TestCompareRegressionFails(t *testing.T) {
	baseline := writeBaseline(t, Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkFigure2Document", Package: "repro", NsPerOp: 500000},
		{Name: "BenchmarkSplitRecords", Package: "repro", NsPerOp: 60000},
	}})
	input := "pkg: repro\n" +
		"BenchmarkFigure2Document-4 100 800000 ns/op\n" + // +60%
		"BenchmarkSplitRecords-4 100 60055 ns/op\n"
	var out strings.Builder
	err := run([]string{"-compare", baseline}, strings.NewReader(input), &out)
	if err == nil {
		t.Fatalf("60%% regression passed the 30%% gate:\n%s", out.String())
	}
	for _, want := range []string{"1 benchmark(s) regressed", "BenchmarkFigure2Document", "+60.0%"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if !strings.Contains(out.String(), "SLOWER") {
		t.Errorf("report should flag the slow benchmark:\n%s", out.String())
	}
}

// TestCompareImprovementAndChurnAreInformational: large speed-ups, new
// benchmarks, and retired benchmarks never fail the gate.
func TestCompareImprovementAndChurnAreInformational(t *testing.T) {
	baseline := writeBaseline(t, Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkFigure2Document", Package: "repro", NsPerOp: 500000},
		{Name: "BenchmarkRetired", Package: "repro", NsPerOp: 1000},
	}})
	input := "pkg: repro\n" +
		"BenchmarkFigure2Document-4 100 100000 ns/op\n" + // -80%
		"BenchmarkBrandNew-4 100 42 ns/op\n"
	var out strings.Builder
	if err := run([]string{"-compare", baseline}, strings.NewReader(input), &out); err != nil {
		t.Fatalf("improvements/churn failed the gate: %v\n%s", err, out.String())
	}
	for _, want := range []string{"faster", "new", "BenchmarkBrandNew", "gone", "BenchmarkRetired"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

// TestCompareToleranceFlag: -tolerance rescales the gate and must be
// positive.
func TestCompareToleranceFlag(t *testing.T) {
	baseline := writeBaseline(t, Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkFigure2Document", Package: "repro", NsPerOp: 500000},
	}})
	input := "pkg: repro\nBenchmarkFigure2Document-4 100 600000 ns/op\n" // +20%
	if err := run([]string{"-compare", baseline, "-tolerance", "0.10"},
		strings.NewReader(input), &strings.Builder{}); err == nil {
		t.Error("+20% passed a 10% gate")
	}
	if err := run([]string{"-compare", baseline, "-tolerance", "0.25"},
		strings.NewReader(input), &strings.Builder{}); err != nil {
		t.Errorf("+20%% failed a 25%% gate: %v", err)
	}
	if err := run([]string{"-tolerance", "0"}, strings.NewReader(input), &strings.Builder{}); err == nil {
		t.Error("-tolerance 0 accepted")
	}
}

// TestCompareAgainstCommittedBaseline: the checked-in BENCH_<n>.json at the
// repo root parses and self-compares cleanly — guarding the file the CI
// perf gate depends on.
func TestCompareAgainstCommittedBaseline(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_2.json")
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	var report Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("committed baseline is not valid: %v", err)
	}
	if len(report.Benchmarks) == 0 {
		t.Fatal("committed baseline has no benchmarks")
	}
	var out strings.Builder
	if err := compare(&report, &report, 0.30, 10000, &out); err != nil {
		t.Errorf("baseline does not equal itself: %v", err)
	}
}

// TestCompareMatchesAcrossMissingPkgHeader: go test streams the first
// package's output without its goos/pkg header block, so the same benchmark
// can carry an empty package on either side of the diff. Matching falls
// back to the bare name when it is unambiguous — both for gating (a real
// regression is still caught) and so headerless benchmarks are not
// reported as new/gone churn.
func TestCompareMatchesAcrossMissingPkgHeader(t *testing.T) {
	baseline := writeBaseline(t, Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkFigure2Document", Package: "", NsPerOp: 500000},
		{Name: "BenchmarkHeuristics/OM", Package: "repro/internal/heuristic", NsPerOp: 200000},
	}})
	input := "pkg: repro\n" +
		"BenchmarkFigure2Document-4 100 510000 ns/op\n" +
		"pkg: repro/internal/heuristic\n" +
		"BenchmarkHeuristics/OM-4 100 201000 ns/op\n"
	var out strings.Builder
	err := run([]string{"-compare", baseline}, strings.NewReader(input), &out)
	if err != nil {
		t.Fatalf("headerless baseline should still match: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "(2 matched") {
		t.Errorf("want both benchmarks matched:\n%s", out.String())
	}
	if strings.Contains(out.String(), "gone") || strings.Contains(out.String(), "new ") {
		t.Errorf("headerless match reported churn:\n%s", out.String())
	}

	// The fallback still gates: a regression on the headerless side fails.
	input = "BenchmarkFigure2Document-4 100 900000 ns/op\n"
	out.Reset()
	if err := run([]string{"-compare", baseline}, strings.NewReader(input), &out); err == nil {
		t.Fatalf("regression hidden by missing pkg header:\n%s", out.String())
	}
}

// TestCompareFoldsRepeatedMeasurements: `go test -count=N` emits each
// benchmark N times; compare folds the repeats to the fastest run on both
// sides so one interfered measurement (a GC cycle inside the timed window)
// cannot fail the gate. A benchmark that is slow in EVERY repeat still
// fails — that's a real regression, not noise.
func TestCompareFoldsRepeatedMeasurements(t *testing.T) {
	baseline := writeBaseline(t, Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkFigure2Document", Package: "repro", NsPerOp: 520000},
		{Name: "BenchmarkFigure2Document", Package: "repro", NsPerOp: 500000},
	}})

	// One repeat far over tolerance, one fast: min-folding passes it.
	input := "pkg: repro\n" +
		"BenchmarkFigure2Document-4 100 900000 ns/op\n" +
		"BenchmarkFigure2Document-4 100 510000 ns/op\n" +
		"BenchmarkFigure2Document-4 100 880000 ns/op\n"
	var out strings.Builder
	if err := run([]string{"-compare", baseline}, strings.NewReader(input), &out); err != nil {
		t.Fatalf("fast repeat should win the fold: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "(1 matched") {
		t.Errorf("repeats must fold to one matched benchmark:\n%s", out.String())
	}

	// Slow in every repeat: still a gated regression.
	input = "pkg: repro\n" +
		"BenchmarkFigure2Document-4 100 900000 ns/op\n" +
		"BenchmarkFigure2Document-4 100 880000 ns/op\n"
	out.Reset()
	if err := run([]string{"-compare", baseline}, strings.NewReader(input), &out); err == nil {
		t.Fatalf("consistently slow repeats must still fail:\n%s", out.String())
	}
}

// TestCompareThroughputGatesOnMBs: benchmarks with an MB/s column on both
// sides diff on MB/s, not ns/op. A SetBytes benchmark's ns/op scales with
// its per-op payload (the whole corpus), so adding documents would read as
// a huge ns/op regression even at identical throughput — MB/s stays
// comparable. Lower MB/s beyond tolerance fails; payload-driven ns/op
// growth at steady MB/s passes.
func TestCompareThroughputGatesOnMBs(t *testing.T) {
	baseline := writeBaseline(t, Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkCorpusThroughput/ByteArena", Package: "repro", NsPerOp: 16000000, MBPerS: 70.0},
	}})

	// Corpus grew: ns/op doubled but MB/s held. Not a regression.
	input := "pkg: repro\n" +
		"BenchmarkCorpusThroughput/ByteArena-4 100 32000000 ns/op 69.00 MB/s\n"
	var out strings.Builder
	if err := run([]string{"-compare", baseline}, strings.NewReader(input), &out); err != nil {
		t.Fatalf("steady MB/s failed the gate on payload growth: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "MB/s") {
		t.Errorf("throughput diff should report MB/s:\n%s", out.String())
	}

	// Throughput halved: gated even though ns/op alone also moved.
	input = "pkg: repro\n" +
		"BenchmarkCorpusThroughput/ByteArena-4 100 33000000 ns/op 34.00 MB/s\n"
	out.Reset()
	err := run([]string{"-compare", baseline}, strings.NewReader(input), &out)
	if err == nil {
		t.Fatalf("halved MB/s passed the gate:\n%s", out.String())
	}
	for _, want := range []string{"BenchmarkCorpusThroughput/ByteArena", "MB/s"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}

	// A current run without the MB/s column (benchmem-only rerun) falls back
	// to the ns/op diff rather than silently passing.
	input = "pkg: repro\n" +
		"BenchmarkCorpusThroughput/ByteArena-4 100 32000000 ns/op\n"
	if err := run([]string{"-compare", baseline}, strings.NewReader(input), &strings.Builder{}); err == nil {
		t.Error("+100% ns/op with no MB/s column should gate on ns/op")
	}
}
