// Command bulk streams a document corpus through record-boundary discovery:
// NDJSON tasks (or a directory of HTML/XML files) in, per-shard NDJSON
// results out, with a bounded worker pool, transient-failure retries, and a
// checkpoint journal that makes a killed run resumable without re-processing
// anything already written.
//
// Usage:
//
//	bulk -in corpus.ndjson -out results/
//	bulk -in pages/ -ontology obituary -out results/
//	cat corpus.ndjson | bulk -in - -out -        # stream stdin → stdout
//
// Input lines carry the /v1/discover request fields plus bulk labels:
//
//	{"id":"tribune-3","html":"<html>...","ontology":"obituary","shard":"obituary"}
//
// Results land in <out>/results[-<shard>].ndjson in input order; the
// journal (default <out>/checkpoint.ndjson) records each completed document
// and its output offset. Re-running the same command after a kill resumes:
// completed documents are skipped, torn trailing writes are truncated away,
// and the final output is byte-identical to an uninterrupted run.
//
// Flags: -workers bounds the pool (0 = GOMAXPROCS); -max-attempts,
// -retry-base, -retry-max govern transient-failure retries;
// -attempt-timeout bounds one document attempt (expiry is retried);
// -max-doc-bytes/-max-tree-depth/-max-nodes bound parse resources as on the
// serving surface; -metrics dumps the run's Prometheus counters to stderr at
// exit; -trace dumps the run's trace — its ID and the per-stage span table
// every document contributed to — to stderr at exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/pipeline"
	"repro/internal/tagtree"
	"repro/internal/template"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bulk:", err)
		os.Exit(1)
	}
}

// run wires flags to one engine run. stdin/stdout stand in for "-" paths so
// tests can drive the full CLI surface.
func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bulk", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "-", "input: NDJSON file, directory of .html/.xml files, or - for stdin")
	out := fs.String("out", "", "output directory for sharded results, or - for stdout NDJSON")
	checkpoint := fs.String("checkpoint", "",
		"checkpoint journal path (default <out>/checkpoint.ndjson; \"none\" disables)")
	workers := fs.Int("workers", 0, "concurrent documents; 0 means GOMAXPROCS")
	window := fs.Int("window", 0, "reorder window (documents); 0 means 4*workers")
	maxAttempts := fs.Int("max-attempts", 3, "attempts per document before a transient failure is final")
	retryBase := fs.Duration("retry-base", 25*time.Millisecond, "first retry backoff")
	retryMax := fs.Duration("retry-max", time.Second, "retry backoff cap")
	attemptTimeout := fs.Duration("attempt-timeout", 0,
		"per-attempt processing deadline (expiry retries); 0 disables")
	ontologySrc := fs.String("ontology", "",
		"ontology for directory inputs: built-in name or DSL file path; NDJSON lines carry their own")
	shard := fs.String("shard", "", "shard label for directory inputs")
	maxLine := fs.Int("max-line-bytes", 0,
		fmt.Sprintf("max NDJSON input line bytes; 0 means %d", pipeline.DefaultMaxLineBytes))
	maxDocBytes := fs.Int("max-doc-bytes", 0, "max document size in bytes; 0 disables")
	maxTreeDepth := fs.Int("max-tree-depth", 0, "max tag-tree nesting depth; 0 disables")
	maxNodes := fs.Int("max-nodes", 0, "max tag-tree node count; 0 disables")
	dumpMetrics := fs.Bool("metrics", false, "dump the run's metrics in Prometheus text form to stderr")
	dumpTrace := fs.Bool("trace", false, "dump the run's trace (ID plus per-stage span table) to stderr")
	wrapperStore := fs.String("wrapper-store", "",
		"path of the learned-wrapper store journal enabling the template fast path (docs/WRAPPER.md); empty disables")
	spotCheckRate := fs.Int("spot-check-rate", 64,
		"re-verify every Nth template fast-path hit against full discovery; 0 disables spot-checks")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return errors.New("-out is required (a directory, or - for stdout)")
	}
	if *maxAttempts < 1 {
		return fmt.Errorf("-max-attempts must be >= 1, got %d", *maxAttempts)
	}
	if *spotCheckRate < 0 {
		return fmt.Errorf("-spot-check-rate must be >= 0, got %d", *spotCheckRate)
	}

	ontSrc, err := resolveOntologyFlag(*ontologySrc)
	if err != nil {
		return err
	}
	src, srcClose, err := openSource(*in, stdin, ontSrc, *shard, *maxLine)
	if err != nil {
		return err
	}
	defer srcClose()

	metrics := obs.NewRegistry()
	var trace *obs.Trace
	if *dumpTrace {
		trace = obs.NewTrace()
		trace.SetRoot("bulk", "run")
	}
	// A corpus dominated by a few site templates pays full discovery once
	// per template; the rest of the run serves from the wrapper store, and
	// the journal carries what was learned into the next run.
	var templates *template.Store
	if *wrapperStore != "" {
		templates, err = template.Open(template.Config{
			Path:           *wrapperStore,
			SpotCheckEvery: *spotCheckRate,
			Metrics:        metrics,
		})
		if err != nil {
			return fmt.Errorf("-wrapper-store: %w", err)
		}
		defer templates.Close()
	}
	eng := pipeline.New(pipeline.Config{
		Workers: *workers,
		Window:  *window,
		Retry: pipeline.RetryPolicy{
			MaxAttempts: *maxAttempts,
			BaseDelay:   *retryBase,
			MaxDelay:    *retryMax,
		},
		AttemptTimeout: *attemptTimeout,
		Metrics:        metrics,
		Trace:          trace,
		Limits: tagtree.Limits{
			MaxBytes: *maxDocBytes,
			MaxDepth: *maxTreeDepth,
			MaxNodes: *maxNodes,
		},
		Templates: templates,
	})

	var (
		sink    pipeline.Sink
		journal *pipeline.Journal
	)
	if *out == "-" {
		if *checkpoint != "" && *checkpoint != "none" {
			return errors.New("-checkpoint needs a directory output (-out -): stdout runs cannot resume")
		}
		sink = pipeline.NewWriterSink(stdout, nil)
	} else {
		fileSink, err := pipeline.NewShardedFileSink(*out)
		if err != nil {
			return err
		}
		sink = fileSink
		jpath := *checkpoint
		if jpath == "" {
			jpath = filepath.Join(*out, "checkpoint.ndjson")
		}
		if jpath != "none" {
			journal, err = pipeline.OpenJournal(jpath)
			if err != nil {
				return err
			}
			defer journal.Close()
			if n := journal.DoneCount(); n > 0 {
				fmt.Fprintf(stderr, "bulk: resuming from %s: %d documents already complete\n", jpath, n)
			}
			if err := fileSink.Truncate(journal.Offsets()); err != nil {
				return err
			}
		}
	}
	defer sink.Close()

	stats, runErr := eng.Run(ctx, src, sink, journal)
	fmt.Fprintf(stderr,
		"bulk: read=%d skipped=%d ok=%d degraded=%d failed=%d canceled=%d retries=%d\n",
		stats.Read, stats.Skipped, stats.OK, stats.Degraded, stats.Failed,
		stats.Canceled, stats.Retries)
	if *dumpMetrics {
		_ = metrics.WritePrometheus(stderr)
	}
	if trace != nil {
		trace.Finish()
		fmt.Fprintf(stderr, "bulk: trace id: %s\n%s", trace.ID(), trace.Table())
	}
	if runErr != nil {
		if errors.Is(runErr, context.Canceled) && journal != nil {
			return fmt.Errorf("interrupted; re-run the same command to resume from the checkpoint (%w)", runErr)
		}
		return runErr
	}
	return nil
}

// openSource maps the -in flag to a task source plus a cleanup: "-" reads
// NDJSON from stdin, a directory reads its document files, anything else is
// an NDJSON file.
func openSource(in string, stdin io.Reader, ontologySrc, shard string, maxLine int) (pipeline.Source, func() error, error) {
	noop := func() error { return nil }
	if in == "-" {
		return pipeline.NewNDJSONSource(stdin, maxLine), noop, nil
	}
	info, err := os.Stat(in)
	if err != nil {
		return nil, nil, err
	}
	if info.IsDir() {
		src, err := pipeline.NewDirSource(in, ontologySrc, shard)
		if err != nil {
			return nil, nil, err
		}
		return src, noop, nil
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, nil, err
	}
	return pipeline.NewNDJSONSource(f, maxLine), f.Close, nil
}

// resolveOntologyFlag turns the -ontology flag into task ontology source:
// empty stays empty, a built-in name passes through, anything else is read
// as a DSL file whose contents become the source (validated here so a typo
// fails the run up front rather than per document).
func resolveOntologyFlag(name string) (string, error) {
	if name == "" || ontology.Builtin(name) != nil {
		return name, nil
	}
	src, err := os.ReadFile(name)
	if err != nil {
		return "", fmt.Errorf("ontology %q is neither built-in nor readable: %w", name, err)
	}
	if _, err := ontology.Parse(string(src)); err != nil {
		return "", fmt.Errorf("ontology file %s: %w", name, err)
	}
	return string(src), nil
}
