package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/paperdoc"
	"repro/internal/testutil"
)

func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }

// runBulk drives the CLI's run() with the given args and stdin.
func runBulk(t *testing.T, args []string, stdin string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err = run(context.Background(), args, strings.NewReader(stdin), &out, &errBuf)
	return out.String(), errBuf.String(), err
}

func decodeNDJSON(t *testing.T, data string) []map[string]json.RawMessage {
	t.Helper()
	var lines []map[string]json.RawMessage
	for _, line := range strings.Split(strings.TrimSpace(data), "\n") {
		if line == "" {
			continue
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		lines = append(lines, m)
	}
	return lines
}

func fieldStr(t *testing.T, m map[string]json.RawMessage, key string) string {
	t.Helper()
	if m[key] == nil {
		return ""
	}
	var s string
	if err := json.Unmarshal(m[key], &s); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStdinToStdout(t *testing.T) {
	input := `{"id":"a","html":"<div><hr><b>A</b> one<hr><b>B</b> two<hr><b>C</b> three</div>"}` + "\n" +
		`{"id":"b","xml":"<feed><entry>a b</entry><entry>c d</entry><entry>e f</entry></feed>"}` + "\n"
	stdout, stderr, err := runBulk(t, []string{"-in", "-", "-out", "-"}, input)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, stderr)
	}
	lines := decodeNDJSON(t, stdout)
	if len(lines) != 2 {
		t.Fatalf("got %d output lines, want 2", len(lines))
	}
	if got := fieldStr(t, lines[0], "separator"); got != "hr" {
		t.Errorf("line 0 separator = %q", got)
	}
	if got := fieldStr(t, lines[1], "separator"); got != "entry" {
		t.Errorf("line 1 separator = %q", got)
	}
	if !strings.Contains(stderr, "ok=2") {
		t.Errorf("stats line missing from stderr: %q", stderr)
	}
}

func TestFileToShardedDir(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "corpus.ndjson")
	var b strings.Builder
	for _, d := range corpus.TestDocuments()[:4] {
		line, err := json.Marshal(map[string]any{
			"id":       d.Site.Name,
			"html":     d.HTML,
			"ontology": string(d.Site.Domain),
			"shard":    string(d.Site.Domain),
		})
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(inPath, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(dir, "results")
	_, stderr, err := runBulk(t, []string{"-in", inPath, "-out", outDir, "-workers", "2"}, "")
	if err != nil {
		t.Fatalf("run: %v\n%s", err, stderr)
	}
	data, err := os.ReadFile(filepath.Join(outDir, "results-obituary.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(decodeNDJSON(t, string(data))); got != 4 {
		t.Errorf("obituary shard has %d lines, want 4", got)
	}
	if _, err := os.Stat(filepath.Join(outDir, "checkpoint.ndjson")); err != nil {
		t.Errorf("checkpoint journal missing: %v", err)
	}

	// Re-running the finished job is a no-op resume: everything skipped.
	_, stderr, err = runBulk(t, []string{"-in", inPath, "-out", outDir, "-workers", "2"}, "")
	if err != nil {
		t.Fatalf("resume run: %v\n%s", err, stderr)
	}
	if !strings.Contains(stderr, "resuming from") || !strings.Contains(stderr, "skipped=4") {
		t.Errorf("resume stderr = %q", stderr)
	}
}

func TestDirInputWithOntologyFlag(t *testing.T) {
	dir := t.TempDir()
	docs := filepath.Join(dir, "pages")
	if err := os.Mkdir(docs, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(docs, "fig2.html"), []byte(paperdoc.Figure2), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, err := runBulk(t,
		[]string{"-in", docs, "-out", "-", "-checkpoint", "none", "-ontology", "obituary"}, "")
	if err != nil {
		t.Fatalf("run: %v\n%s", err, stderr)
	}
	lines := decodeNDJSON(t, stdout)
	if len(lines) != 1 || fieldStr(t, lines[0], "separator") != "hr" {
		t.Fatalf("output = %q", stdout)
	}
	if got := fieldStr(t, lines[0], "id"); got != "fig2.html" {
		t.Errorf("id = %q, want file name", got)
	}
}

func TestFlagValidation(t *testing.T) {
	if _, _, err := runBulk(t, []string{"-in", "-"}, ""); err == nil ||
		!strings.Contains(err.Error(), "-out is required") {
		t.Errorf("missing -out: err = %v", err)
	}
	if _, _, err := runBulk(t, []string{"-in", "-", "-out", "-", "-max-attempts", "0"}, ""); err == nil ||
		!strings.Contains(err.Error(), "max-attempts") {
		t.Errorf("bad -max-attempts: err = %v", err)
	}
	if _, _, err := runBulk(t,
		[]string{"-in", "-", "-out", "-", "-checkpoint", "ck.ndjson"}, ""); err == nil ||
		!strings.Contains(err.Error(), "resume") {
		t.Errorf("checkpoint with stdout: err = %v", err)
	}
	if _, _, err := runBulk(t,
		[]string{"-in", "-", "-out", "-", "-ontology", "no-such-ontology"}, ""); err == nil ||
		!strings.Contains(err.Error(), "ontology") {
		t.Errorf("bad -ontology: err = %v", err)
	}
}

func TestOntologyDSLFile(t *testing.T) {
	dir := t.TempDir()
	// An invalid DSL file must fail up front, not per document.
	bad := filepath.Join(dir, "bad.ont")
	if err := os.WriteFile(bad, []byte("object x ("), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runBulk(t, []string{"-in", "-", "-out", "-", "-ontology", bad}, ""); err == nil {
		t.Error("invalid DSL file should fail the run up front")
	}
}

func TestMetricsDump(t *testing.T) {
	input := `{"html":"<div><hr><b>A</b> x<hr><b>B</b> y<hr></div>"}` + "\n"
	_, stderr, err := runBulk(t, []string{"-in", "-", "-out", "-", "-metrics"}, input)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "boundary_bulk_documents_total") {
		t.Errorf("-metrics dump missing bulk counters: %q", stderr)
	}
}

func TestCanceledRunSuggestsResume(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	err := run(ctx, []string{"-in", "-", "-out", dir},
		strings.NewReader(`{"html":"<p>x</p>"}`+"\n"), &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "resume") {
		t.Errorf("canceled run err = %v, want resume hint", err)
	}
}
