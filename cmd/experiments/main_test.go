package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunSingleTable(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 6, false, false, false); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Table 6: test set 1 - obituaries") {
		t.Errorf("missing title:\n%s", s)
	}
	if !strings.Contains(s, "Alameda Newspaper") {
		t.Errorf("missing site row:\n%s", s)
	}
	if strings.Contains(s, "Table 10") {
		t.Errorf("-table 6 should not emit Table 10:\n%s", s)
	}
}

func TestRunTable10AndQuality(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 10, false, false, false); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "ORSIH") || !strings.Contains(s, "100.0%") {
		t.Errorf("Table 10 output:\n%s", s)
	}
}

// TestGoldenOutput locks the complete Tables 1–10 output: the corpus is
// deterministic, so any diff means an intentional change — regenerate with
//
//	go run ./cmd/experiments -quality=false > cmd/experiments/testdata/golden.txt
func TestGoldenOutput(t *testing.T) {
	golden, err := os.ReadFile("testdata/golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(&out, 0, false, false, false); err != nil {
		t.Fatal(err)
	}
	if out.String() != string(golden) {
		t.Errorf("experiments output diverged from testdata/golden.txt;\n"+
			"regenerate it if the change is intentional.\ngot:\n%s", out.String())
	}
}

func TestRunScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep is slow")
	}
	var out strings.Builder
	if err := run(&out, 99, false, false, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "O(n) scaling") {
		t.Errorf("scaling output:\n%s", out.String())
	}
}
