package main

// Per-table golden snapshots. Each of Tables 1–10 is locked to its own
// .golden file so a regression points at the exact table that moved, not
// just "the output changed". The corpus and every evaluation are
// deterministic, so the snapshots are stable across runs and platforms.
//
// To accept an intentional change, regenerate the snapshots:
//
//	go test ./cmd/experiments -run TestGoldenTables -update

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the per-table .golden snapshots")

func TestGoldenTables(t *testing.T) {
	for table := 1; table <= 10; table++ {
		t.Run(fmt.Sprintf("table%d", table), func(t *testing.T) {
			var out strings.Builder
			if err := run(&out, table, false, false, false); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, fmt.Sprintf("table%d.golden", table), out.String())
		})
	}
}

// TestGoldenMangled locks the robustness report (-mangled) the same way: it
// must render Table 10's numbers unchanged for every mangling seed.
func TestGoldenMangled(t *testing.T) {
	var out strings.Builder
	if err := runMangled(&out); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "mangled.golden", out.String())
}

// checkGolden compares got with testdata/<name>, rewriting the file under
// -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./cmd/experiments -run TestGolden -update)", err)
	}
	if got != string(want) {
		t.Errorf("output diverged from %s — if the change is intentional, regenerate with -update.\n"+
			"got:\n%s\nwant:\n%s", path, got, want)
	}
}
