// Command experiments regenerates every table of the paper's evaluation
// (Tables 1–10) from the synthetic corpus.
//
// Usage:
//
//	experiments            # all tables
//	experiments -table 5   # one table
//	experiments -verbose   # include per-document detail for failures
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/certainty"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/paperdata"
)

func main() {
	table := flag.Int("table", 0, "regenerate only this table number (1-10); 0 = all")
	verbose := flag.Bool("verbose", false, "print per-document detail for compound failures")
	quality := flag.Bool("quality", true, "also report extraction recall/precision (the §2 companion numbers)")
	scaling := flag.Bool("scaling", false, "time discovery across document sizes (the O(n) claim)")
	ablation := flag.Bool("ablation", false, "sweep the candidate-tag threshold (the 10%% rule)")
	compare := flag.Bool("compare", false, "render measured results side by side with the paper's published numbers")
	mangled := flag.Bool("mangled", false, "re-run Table 10 on markup-mangled test documents (robustness)")
	flag.Parse()

	if *mangled {
		if err := runMangled(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	if *compare {
		if err := runCompare(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(os.Stdout, *table, *verbose, *quality, *scaling); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *ablation {
		if err := runAblation(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

// runMangled re-evaluates the 20 test documents after markup mangling
// (random tag case, dropped optional end-tags, injected comments): the
// Appendix A normalization must make the results identical to Table 10.
func runMangled(out io.Writer) error {
	docs := corpus.TestDocuments()
	for seed := int64(0); seed < 3; seed++ {
		mangledDocs := make([]*corpus.Document, len(docs))
		for i, d := range docs {
			m := *d
			m.HTML = corpus.Mangle(d.HTML, seed)
			mangledDocs[i] = &m
		}
		results, err := eval.EvaluateAllParallel(mangledDocs, core.Options{}, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Table 10 on mangled markup (seed %d):\n", seed)
		fmt.Fprint(out, eval.FormatSuccessRates(eval.IndividualSuccessRates(results)))
		fmt.Fprintln(out)
	}
	return nil
}

// runCompare renders every table with the paper's published numbers inline.
func runCompare(out io.Writer) error {
	obits, err := eval.EvaluateAllParallel(corpus.TrainingDocuments(corpus.Obituaries), core.Options{}, 0)
	if err != nil {
		return err
	}
	cars, err := eval.EvaluateAllParallel(corpus.TrainingDocuments(corpus.CarAds), core.Options{}, 0)
	if err != nil {
		return err
	}
	fmt.Fprint(out, eval.FormatDistributionComparison(
		"Table 2 (obituaries, training): measured vs paper",
		eval.RankingDistribution(obits), paperdata.Table2))
	fmt.Fprintln(out)
	fmt.Fprint(out, eval.FormatDistributionComparison(
		"Table 3 (car ads, training): measured vs paper",
		eval.RankingDistribution(cars), paperdata.Table3))
	fmt.Fprintln(out)

	all := append(append([]*eval.DocResult{}, obits...), cars...)
	fmt.Fprintln(out, "Table 5 (all 26 compounds): measured vs paper")
	fmt.Fprint(out, eval.FormatTable5Comparison(eval.CombinationSweep(all, certainty.PaperTable)))
	fmt.Fprintln(out)

	titles := map[corpus.Domain]string{
		corpus.Obituaries: "Table 6 (test obituaries)",
		corpus.CarAds:     "Table 7 (test car ads)",
		corpus.JobAds:     "Table 8 (test job ads)",
		corpus.Courses:    "Table 9 (test courses)",
	}
	for _, d := range corpus.AllDomains {
		rows, err := eval.TestSetTable(d)
		if err != nil {
			return err
		}
		fmt.Fprint(out, eval.FormatTestComparison(titles[d], d, rows))
		fmt.Fprintln(out)
	}

	results, err := eval.EvaluateAllParallel(corpus.TestDocuments(), core.Options{}, 0)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Table 10 (success rates, 20 test docs): measured vs paper")
	fmt.Fprint(out, eval.FormatSuccessComparison(eval.IndividualSuccessRates(results)))
	return nil
}

// runAblation sweeps the candidate threshold over the test corpus.
func runAblation(out io.Writer) error {
	rows, err := eval.AblateThreshold(corpus.TestDocuments(), []float64{0.02, 0.05, 0.10, 0.15, 0.25})
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Ablation: candidate-tag threshold (the paper's 10% rule), 20 test docs")
	fmt.Fprint(out, eval.FormatThresholdAblation(rows))
	fmt.Fprintln(out)
	return nil
}

func run(out io.Writer, table int, verbose, quality, scaling bool) error {
	want := func(n int) bool { return table == 0 || table == n }

	var obits, cars []*eval.DocResult
	needTraining := want(2) || want(3) || want(4) || want(5)
	if needTraining {
		var err error
		obits, err = eval.EvaluateAll(corpus.TrainingDocuments(corpus.Obituaries), core.Options{})
		if err != nil {
			return err
		}
		cars, err = eval.EvaluateAll(corpus.TrainingDocuments(corpus.CarAds), core.Options{})
		if err != nil {
			return err
		}
	}

	if want(1) {
		fmt.Fprintln(out, "Table 1: on-line newspapers for initial experiments")
		fmt.Fprintf(out, "%-28s %s\n", "On-line Newspaper", "URL")
		for _, s := range corpus.TrainingSites(corpus.Obituaries) {
			fmt.Fprintf(out, "%-28s %s\n", s.Name, s.URL)
		}
		fmt.Fprintln(out)
	}
	if want(2) {
		fmt.Fprint(out, eval.FormatDistributions("Table 2: experimental results for obituaries (training)", eval.RankingDistribution(obits)))
		fmt.Fprintln(out)
		if verbose {
			printFailures(out, obits)
		}
	}
	if want(3) {
		fmt.Fprint(out, eval.FormatDistributions("Table 3: experimental results for car advertisements (training)", eval.RankingDistribution(cars)))
		fmt.Fprintln(out)
		if verbose {
			printFailures(out, cars)
		}
	}
	if want(4) {
		calibrated := certainty.Calibrate(append(eval.RankingDistribution(obits), eval.RankingDistribution(cars)...))
		fmt.Fprint(out, eval.FormatCertaintyTable("Table 4: certainty factors calibrated from Tables 2+3 (measured)", calibrated))
		fmt.Fprintln(out)
		fmt.Fprint(out, eval.FormatCertaintyTable("Table 4 (paper's published factors, used by the compound)", certainty.PaperTable))
		fmt.Fprintln(out)
	}
	if want(5) {
		all := append(append([]*eval.DocResult{}, obits...), cars...)
		fmt.Fprintln(out, "Table 5: success rates for all compound heuristics (100 training docs)")
		fmt.Fprint(out, eval.FormatCombinations(eval.CombinationSweep(all, certainty.PaperTable)))
		fmt.Fprintln(out)
	}

	testTables := []struct {
		n      int
		domain corpus.Domain
		title  string
	}{
		{6, corpus.Obituaries, "Table 6: test set 1 - obituaries"},
		{7, corpus.CarAds, "Table 7: test set 2 - car advertisements"},
		{8, corpus.JobAds, "Table 8: test set 3 - computer job advertisements"},
		{9, corpus.Courses, "Table 9: test set 4 - university course descriptions"},
	}
	for _, tt := range testTables {
		if !want(tt.n) {
			continue
		}
		rows, err := eval.TestSetTable(tt.domain)
		if err != nil {
			return err
		}
		fmt.Fprint(out, eval.FormatTestTable(tt.title, rows))
		fmt.Fprintln(out)
	}

	if want(10) {
		results, err := eval.EvaluateAllParallel(corpus.TestDocuments(), core.Options{}, 0)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Table 10: success rates of individual heuristics and ORSIH (20 test docs)")
		fmt.Fprint(out, eval.FormatSuccessRates(eval.IndividualSuccessRates(results)))
		fmt.Fprintln(out)
		if verbose {
			printFailures(out, results)
		}
	}

	if scaling {
		if err := printScaling(out); err != nil {
			return err
		}
	}

	if quality && table == 0 {
		byDomain, err := eval.MeasureDomainExtraction(corpus.TestDocuments())
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Extraction quality, clean test corpus (synthetic text, no authoring noise):")
		fmt.Fprint(out, eval.FormatQuality(byDomain))
		fmt.Fprintln(out)

		noisy, err := eval.MeasureDomainExtraction(corpus.NoisyTestDocuments())
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Extraction quality, hand-authoring-noise corpus (the paper's §2 regime:")
		fmt.Fprintln(out, "recall ≈ 90%, precision ≈ 95%, one weaker domain):")
		fmt.Fprint(out, eval.FormatQuality(noisy))
		fmt.Fprintln(out)
	}
	return nil
}

// printScaling times end-to-end discovery on documents of growing size and
// prints throughput per size — flat MB/s across the sweep is the empirical
// face of the paper's O(n) claim (§3, §5.3).
func printScaling(out io.Writer) error {
	ont := corpus.Obituaries.Ontology()
	fmt.Fprintln(out, "O(n) scaling: end-to-end discovery throughput by document size")
	fmt.Fprintf(out, "%8s %10s %12s %12s\n", "records", "bytes", "ms/doc", "MB/s")
	for _, records := range []int{8, 32, 128, 512} {
		site := &corpus.Site{
			Name:   fmt.Sprintf("scale-%d", records),
			Domain: corpus.Obituaries,
			Profile: corpus.Profile{
				Container: []string{"div"},
				Layout:    corpus.Delimited,
				Separator: "hr",
				Records:   [2]int{records, records},
				BoldRuns:  [2]int{2, 3},
				Breaks:    [2]int{1, 2},
				BaseSize:  300,
			},
		}
		doc := site.Generate(0)
		iters := 1 + 2048/records
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := core.Discover(doc.HTML, core.Options{Ontology: ont}); err != nil {
				return err
			}
		}
		elapsed := time.Since(start)
		perDoc := elapsed / time.Duration(iters)
		mbps := float64(len(doc.HTML)) / perDoc.Seconds() / 1e6
		fmt.Fprintf(out, "%8d %10d %12.2f %12.1f\n",
			records, len(doc.HTML), float64(perDoc.Microseconds())/1000, mbps)
	}
	fmt.Fprintln(out)
	return nil
}

// printFailures dumps the compound explanation for every document where
// ORSIH did not uniquely choose a correct separator.
func printFailures(out io.Writer, results []*eval.DocResult) {
	for _, dr := range results {
		if dr.Success == 1.0 {
			continue
		}
		fmt.Fprintf(out, "--- FAILURE %s #%d (truth %v, sc=%.2f)\n",
			dr.Doc.Site.Name, dr.Doc.Index, dr.Doc.Truth, dr.Success)
		fmt.Fprint(out, core.Explain(dr.Compound))
	}
}
