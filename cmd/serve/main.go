// Command serve runs the record-boundary discovery pipeline as a JSON HTTP
// service (see internal/httpapi for the endpoint reference).
//
// Usage:
//
//	serve -addr :8080
//
// Example:
//
//	curl -s localhost:8080/v1/discover \
//	     -d '{"html":"<div><hr><b>A</b> x<hr><b>B</b> y<hr></div>"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.NewServeMux(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	fmt.Printf("record-boundary service listening on %s\n", *addr)
	log.Fatal(srv.ListenAndServe())
}
