// Command serve runs the record-boundary discovery pipeline as a JSON HTTP
// service (see internal/httpapi for the endpoint reference), with structured
// request logging, Prometheus metrics at /metrics, expvar at /debug/vars,
// and graceful shutdown on SIGINT/SIGTERM.
//
// Usage:
//
//	serve -addr :8080 [-ops-addr :6060] [-shutdown-timeout 10s]
//	      [-cache-size 1024] [-cache-journal path] [-batch-parallelism 0]
//	      [-max-inflight 0] [-request-timeout 0]
//	      [-max-doc-bytes 0] [-max-tree-depth 0] [-max-nodes 0]
//	      [-cluster 0] [-peers URL,URL,...] [-hedge-after 0]
//	      [-peer-queue-depth 32] [-health-interval 1s]
//	      [-node-name name] [-join addr,addr,...] [-advertise host:port]
//	      [-gossip-interval 1s] [-warmup-timeout 5s]
//	      [-trace-capacity 512] [-trace-sample 0]
//	      [-wrapper-store path] [-spot-check-rate 64]
//
// Observability (see docs/OBSERVABILITY.md): every request is traced; the
// trace ID is returned in the X-Trace-ID response header and incoming W3C
// traceparent headers are honoured, so cluster hops stitch into one trace.
// -trace-capacity bounds the in-memory store behind /debug/traces and
// -trace-sample head-samples 1 in N healthy traces (errored, degraded, shed,
// and tail-latency traces are always kept). In cluster mode the router also
// serves /metrics/cluster, a federated view of every replica's registry.
//
// -ops-addr starts a second, operations-only listener carrying the
// net/http/pprof profiling handlers (plus /metrics and /debug/vars again) so
// profiling is never exposed on the service port; empty disables it.
//
// -cache-size bounds the LRU result cache for /v1/discover and
// /v1/discover/batch (entries, not bytes); 0 disables caching.
// -cache-journal makes that cache durable: puts and evictions are appended
// to an NDJSON journal at the path and replayed on startup, so a restarted
// replica answers its first requests warm (requires -cache-size > 0). With
// -cluster N each in-process replica journals to path.<replica-name>.
// -batch-parallelism caps the worker pool draining one batch request;
// 0 means GOMAXPROCS.
//
// -wrapper-store enables the learned-wrapper fast path (docs/WRAPPER.md):
// discovered wrappers are keyed by template fingerprint, journaled to the
// given path so they survive restarts, and answer structurally-identical
// documents without re-running discovery. -spot-check-rate re-verifies
// every Nth fast-path hit against full discovery and evicts the wrapper on
// drift; 0 disables spot-checks. /v1/template/stats reports the store.
//
// Robustness knobs (see docs/ROBUSTNESS.md; each 0 disables its limit):
// -max-inflight sheds /v1/ requests beyond N in flight with 429 +
// Retry-After; -request-timeout aborts a /v1/ request's pipeline work after
// the duration and answers 503; -max-doc-bytes (413), -max-tree-depth (422),
// and -max-nodes (422) bound per-document parse resources.
//
// Cluster mode (see docs/SCALING.md): -cluster N runs N in-process replica
// backends — each a full single-node service with its own result cache —
// behind a consistent-hash router, and -peers adds remote replicas (base
// URLs speaking the same HTTP API). Discover traffic is routed by document
// fingerprint for cache affinity; /v1/discover/batch and /v1/discover/stream
// scatter-gather across the replica set. -hedge-after launches a second
// attempt on the next peer when the primary is slower than the duration
// (0 disables hedging); -peer-queue-depth bounds each replica's queue
// (saturation sheds interactive requests with 429 and throttles bulk
// fan-out); -health-interval paces the /healthz probes that eject and
// readmit replicas.
//
// Dynamic membership (see docs/MEMBERSHIP.md): -node-name with -join turns
// the process into one replica of a gossip-managed cluster instead of a
// statically-configured one (the two are mutually exclusive with
// -cluster/-peers). The node joins through the seed addresses, learns the
// live member set by gossip, and feeds it into its consistent-hash router:
// peers join and leave the ring at runtime, no restart or flag change. With
// a wrapper store configured, a joiner first pulls the cluster's learned
// wrapper state from an already-serving member (bounded by -warmup-timeout;
// on expiry it serves cold and warms through ordinary publishes), and every
// locally-learned wrapper is published to the current members. -advertise
// overrides the address peers dial (defaults to the bound listener address);
// -gossip-interval paces heartbeats — suspicion starts after 3 silent
// intervals, death after 10. Shutdown broadcasts a graceful leave.
//
// Example:
//
//	curl -s localhost:8080/v1/discover \
//	     -d '{"html":"<div><hr><b>A</b> x<hr><b>B</b> y<hr></div>"}'
//	curl -s localhost:8080/metrics
//	go tool pprof localhost:6060/debug/pprof/profile?seconds=10
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/httpapi"
	"repro/internal/membership"
	"repro/internal/obs"
	"repro/internal/tagtree"
	"repro/internal/template"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until ctx is cancelled (then draining
// in-flight requests) or a listener fails. Listener addresses are printed to
// out so callers using port 0 learn the bound ports.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "service listen address")
	opsAddr := fs.String("ops-addr", "",
		"operations listen address (pprof, /metrics, /debug/vars); empty disables")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second,
		"how long to drain in-flight requests on SIGINT/SIGTERM")
	cacheSize := fs.Int("cache-size", 1024,
		"max entries in the discovery result cache; 0 disables caching")
	cacheJournal := fs.String("cache-journal", "",
		"path of the result-cache journal: puts/evictions are appended and replayed on restart so the cache survives; empty keeps the cache memory-only")
	batchParallelism := fs.Int("batch-parallelism", 0,
		"workers per /v1/discover/batch request; 0 means GOMAXPROCS")
	maxInflight := fs.Int("max-inflight", 0,
		"max concurrently-processing /v1/ requests; excess shed with 429; 0 disables")
	requestTimeout := fs.Duration("request-timeout", 0,
		"per-request processing deadline for /v1/ routes (503 on expiry); 0 disables")
	maxDocBytes := fs.Int("max-doc-bytes", 0,
		"max document size in bytes (413 beyond it); 0 disables")
	maxTreeDepth := fs.Int("max-tree-depth", 0,
		"max tag-tree nesting depth (422 beyond it); 0 disables")
	maxNodes := fs.Int("max-nodes", 0,
		"max tag-tree node count (422 beyond it); 0 disables")
	clusterN := fs.Int("cluster", 0,
		"run N in-process replica backends behind the consistent-hash router; 0 disables cluster mode unless -peers is set")
	peerList := fs.String("peers", "",
		"comma-separated base URLs of remote replicas speaking the same HTTP API")
	hedgeAfter := fs.Duration("hedge-after", 0,
		"hedge a discover request on the next peer when the primary is slower than this; 0 disables")
	peerQueueDepth := fs.Int("peer-queue-depth", 32,
		"max in-flight requests per replica; beyond it interactive requests shed 429 and bulk fan-out throttles")
	healthInterval := fs.Duration("health-interval", time.Second,
		"period of the per-replica /healthz probes driving ejection and readmission")
	nodeName := fs.String("node-name", "",
		"stable name of this node in a gossip-managed cluster (docs/MEMBERSHIP.md); enables dynamic membership")
	joinSeeds := fs.String("join", "",
		"comma-separated seed addresses (host:port or URL) to join a gossip-managed cluster through; requires -node-name")
	advertise := fs.String("advertise", "",
		"address peers dial for this node's API and gossip; empty derives it from the bound -addr listener")
	gossipInterval := fs.Duration("gossip-interval", membership.DefaultInterval,
		"membership heartbeat period; members turn suspect after 3 silent intervals and dead after 10")
	warmupTimeout := fs.Duration("warmup-timeout", 5*time.Second,
		"how long a joiner waits for the wrapper state transfer before serving cold; 0 leaves it unbounded")
	traceCapacity := fs.Int("trace-capacity", 512,
		"max traces retained in memory for /debug/traces; 0 uses the default")
	traceSample := fs.Int("trace-sample", 0,
		"head-sample 1 in N healthy traces (errored, degraded, shed, and slow traces are always kept); 0 or 1 keeps all")
	wrapperStore := fs.String("wrapper-store", "",
		"path of the learned-wrapper store journal enabling the template fast path (docs/WRAPPER.md); empty disables")
	spotCheckRate := fs.Int("spot-check-rate", 64,
		"re-verify every Nth template fast-path hit against full discovery; 0 disables spot-checks")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cacheSize < 0 {
		return fmt.Errorf("-cache-size must be >= 0, got %d", *cacheSize)
	}
	if *batchParallelism < 0 {
		return fmt.Errorf("-batch-parallelism must be >= 0, got %d", *batchParallelism)
	}
	for name, v := range map[string]int{
		"-max-inflight": *maxInflight, "-max-doc-bytes": *maxDocBytes,
		"-max-tree-depth": *maxTreeDepth, "-max-nodes": *maxNodes,
	} {
		if v < 0 {
			return fmt.Errorf("%s must be >= 0, got %d", name, v)
		}
	}
	if *requestTimeout < 0 {
		return fmt.Errorf("-request-timeout must be >= 0, got %v", *requestTimeout)
	}
	if *clusterN < 0 {
		return fmt.Errorf("-cluster must be >= 0, got %d", *clusterN)
	}
	if *traceCapacity < 0 {
		return fmt.Errorf("-trace-capacity must be >= 0, got %d", *traceCapacity)
	}
	if *traceSample < 0 {
		return fmt.Errorf("-trace-sample must be >= 0, got %d", *traceSample)
	}
	if *spotCheckRate < 0 {
		return fmt.Errorf("-spot-check-rate must be >= 0, got %d", *spotCheckRate)
	}
	if *gossipInterval <= 0 {
		return fmt.Errorf("-gossip-interval must be > 0, got %v", *gossipInterval)
	}
	if *warmupTimeout < 0 {
		return fmt.Errorf("-warmup-timeout must be >= 0, got %v", *warmupTimeout)
	}
	memberMode := *nodeName != "" || *joinSeeds != ""
	clusterMode := *clusterN > 0 || *peerList != ""
	if memberMode {
		if *nodeName == "" {
			return errors.New("-join requires -node-name")
		}
		if clusterMode {
			return errors.New("dynamic membership (-node-name/-join) and static topology (-cluster/-peers) are mutually exclusive")
		}
	}

	logger := slog.New(slog.NewJSONHandler(out, nil))
	metrics := obs.NewRegistry()
	limits := tagtree.Limits{
		MaxBytes: *maxDocBytes,
		MaxDepth: *maxTreeDepth,
		MaxNodes: *maxNodes,
	}
	// One trace store is shared by the router and every in-process replica,
	// so the fragments of one distributed request merge into a single trace
	// at /debug/traces.
	traces := obs.NewTraceStore(obs.TraceStoreConfig{
		Capacity:    *traceCapacity,
		SampleEvery: *traceSample,
	})

	// The wrapper store is one instance shared by the single-node handler
	// and every in-process replica: a template learned by any local replica
	// is instantly warm for all of them. Remote peers are warmed through
	// the publisher, which POSTs each locally-learned entry to their
	// /v1/template/publish endpoints.
	var templates *template.Store
	var publisher *template.Publisher
	if *wrapperStore != "" {
		var err error
		templates, err = template.Open(template.Config{
			Path:           *wrapperStore,
			SpotCheckEvery: *spotCheckRate,
			Metrics:        metrics,
		})
		if err != nil {
			return fmt.Errorf("-wrapper-store: %w", err)
		}
		defer templates.Close()
		fmt.Fprintf(out, "wrapper store %s: %d templates loaded\n", *wrapperStore, templates.Len())
	}

	// Listen before building the membership layer: a node's advertised
	// address derives from the bound port when -advertise is not given, and
	// -addr may carry port 0.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()

	apiCfg := httpapi.Config{
		Logger:         logger,
		Metrics:        metrics,
		Traces:         traces,
		Service:        "boundary",
		CacheSize:      *cacheSize,
		BatchWorkers:   *batchParallelism,
		MaxInFlight:    *maxInflight,
		RequestTimeout: *requestTimeout,
		Limits:         limits,
		Templates:      templates,
	}

	var handler http.Handler
	var node *membership.Node
	switch {
	case memberMode:
		advertiseAddr := *advertise
		if advertiseAddr == "" {
			advertiseAddr = deriveAdvertise(ln.Addr().String())
		}
		seeds := splitList(*joinSeeds)

		// The router and publisher don't exist yet when the node is built
		// (they need the node's self handler), so OnChange goes through
		// nil-guarded references; both are set before Join, and nothing
		// changes the serving set before that.
		var peersMu sync.Mutex
		known := map[string]string{} // member name → addr currently wired into the router
		var routerRef *cluster.Router
		var pubRef *template.Publisher
		onChange := func(serving []membership.Member) {
			peersMu.Lock()
			defer peersMu.Unlock()
			if routerRef == nil {
				return
			}
			want := make(map[string]string, len(serving))
			var targets []string
			for _, m := range serving {
				if m.Name == *nodeName {
					continue
				}
				want[m.Name] = m.Addr
				targets = append(targets, peerBaseURL(m.Addr))
			}
			for name := range known {
				if _, ok := want[name]; !ok {
					routerRef.RemovePeer(name)
					delete(known, name)
				}
			}
			for name, maddr := range want {
				if known[name] == maddr {
					continue
				}
				// AddPeer replaces a same-name peer, so a member that
				// rejoined on a new address swaps cleanly.
				if err := routerRef.AddPeer(cluster.NewNamedHTTPPeer(name, peerBaseURL(maddr), nil)); err == nil {
					known[name] = maddr
				}
			}
			if pubRef != nil {
				sort.Strings(targets)
				pubRef.SetTargets(targets)
			}
		}

		var err error
		node, err = membership.New(membership.Config{
			Name:      *nodeName,
			Addr:      advertiseAddr,
			Seeds:     seeds,
			Interval:  *gossipInterval,
			Transport: &membership.HTTPTransport{},
			OnChange:  onChange,
			Metrics:   metrics,
			Traces:    traces,
			Service:   *nodeName,
			Logger:    logger,
		})
		if err != nil {
			return err
		}
		defer node.Close()

		// The self replica: the full single-node service plus the gossip
		// surface and, with -cache-journal, the durable result cache.
		selfCfg := apiCfg
		selfCfg.Service = *nodeName
		selfCfg.CacheJournal = *cacheJournal
		selfCfg.Membership = node
		selfSrv, err := httpapi.NewServer(selfCfg)
		if err != nil {
			return fmt.Errorf("-cache-journal: %w", err)
		}
		defer selfSrv.Close()

		if templates != nil {
			publisher = template.NewPublisher(template.PublisherConfig{Metrics: metrics})
			defer publisher.Close()
			templates.OnStore = publisher.Publish
		}

		router, err := cluster.NewRouter(cluster.Config{
			Peers:          []cluster.Peer{cluster.NewLocalPeer(*nodeName, selfSrv)},
			HedgeAfter:     *hedgeAfter,
			QueueDepth:     *peerQueueDepth,
			HealthInterval: *healthInterval,
			Metrics:        metrics,
			Logger:         logger,
			TraceStore:     traces,
			Service:        "router",
			Fallback:       selfSrv,
		})
		if err != nil {
			return err
		}
		defer router.Close()
		peersMu.Lock()
		routerRef, pubRef = router, publisher
		peersMu.Unlock()

		if err := node.Join(ctx); err != nil {
			return err
		}
		// Warmup: pull the cluster's learned wrapper state from a member
		// that is already serving, before this node takes traffic. Failure
		// (or -warmup-timeout) degrades to serving cold — ordinary
		// publishes warm the store from here on.
		if templates != nil {
			var sources []string
			for _, m := range node.Serving() {
				if m.Name != *nodeName {
					sources = append(sources, peerBaseURL(m.Addr))
				}
			}
			if len(sources) > 0 {
				n, err := templates.Pull(ctx, template.PullConfig{
					Sources: sources,
					Timeout: *warmupTimeout,
					Metrics: metrics,
				})
				if err != nil {
					fmt.Fprintf(out, "warmup: serving cold: %v\n", err)
				} else {
					fmt.Fprintf(out, "warmup: %d templates pulled\n", n)
				}
			}
		}
		handler = router
		fmt.Fprintf(out, "membership: node %s advertising %s (%d seeds)\n",
			*nodeName, advertiseAddr, len(seeds))

	case clusterMode:
		// The fallback handler serves non-discover routes; replicas own the
		// result caches (and their journals), so it stays memory-only.
		fallback := httpapi.NewHandler(apiCfg)
		var peers []cluster.Peer
		for i := 0; i < *clusterN; i++ {
			// Each replica is a full single-node service with its own result
			// cache and its own metric registry (so /metrics/cluster can tell
			// the replicas apart). Replicas skip the request log and in-flight
			// limiter — the router logs each request once and its per-peer
			// queues are the cluster's backpressure. The wrapper store is the
			// exception: all replicas share the one instance.
			name := fmt.Sprintf("local-%d", i)
			replicaCfg := httpapi.Config{
				Metrics:        obs.NewRegistry(),
				Traces:         traces,
				Service:        name,
				CacheSize:      *cacheSize,
				BatchWorkers:   *batchParallelism,
				RequestTimeout: *requestTimeout,
				Limits:         limits,
				Templates:      templates,
			}
			if *cacheJournal != "" {
				replicaCfg.CacheJournal = *cacheJournal + "." + name
			}
			replica, err := httpapi.NewServer(replicaCfg)
			if err != nil {
				return fmt.Errorf("-cache-journal (%s): %w", name, err)
			}
			defer replica.Close()
			peers = append(peers, cluster.NewLocalPeer(name, replica))
		}
		var remoteURLs []string
		for _, u := range splitList(*peerList) {
			peers = append(peers, cluster.NewHTTPPeer(u, nil))
			remoteURLs = append(remoteURLs, u)
		}
		if templates != nil && len(remoteURLs) > 0 {
			publisher = template.NewPublisher(template.PublisherConfig{
				Targets: remoteURLs,
				Metrics: metrics,
			})
			defer publisher.Close()
			templates.OnStore = publisher.Publish
		}
		router, err := cluster.NewRouter(cluster.Config{
			Peers:          peers,
			HedgeAfter:     *hedgeAfter,
			QueueDepth:     *peerQueueDepth,
			HealthInterval: *healthInterval,
			Metrics:        metrics,
			Logger:         logger,
			TraceStore:     traces,
			Service:        "router",
			Fallback:       fallback,
		})
		if err != nil {
			return err
		}
		defer router.Close()
		handler = router
		fmt.Fprintf(out, "cluster mode: %d replicas (%d in-process)\n", len(peers), *clusterN)

	default:
		singleCfg := apiCfg
		singleCfg.CacheJournal = *cacheJournal
		single, err := httpapi.NewServer(singleCfg)
		if err != nil {
			return fmt.Errorf("-cache-journal: %w", err)
		}
		defer single.Close()
		handler = single
	}

	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	fmt.Fprintf(out, "record-boundary service listening on %s\n", ln.Addr())

	servers := []*http.Server{srv}
	errCh := make(chan error, 2)
	go func() { errCh <- srv.Serve(ln) }()

	if *opsAddr != "" {
		opsLn, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			shutdown(out, servers, *shutdownTimeout)
			return err
		}
		ops := &http.Server{
			Handler:           opsMux(metrics, traces),
			ReadHeaderTimeout: 5 * time.Second,
		}
		servers = append(servers, ops)
		fmt.Fprintf(out, "ops listener (pprof, metrics) on %s\n", opsLn.Addr())
		go func() { errCh <- ops.Serve(opsLn) }()
	}

	select {
	case <-ctx.Done():
		fmt.Fprintln(out, "shutting down")
		if node != nil {
			// Graceful leave: peers drop this node from their rings now
			// instead of detecting the silence as Suspect→Dead later.
			lctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			node.Leave(lctx)
			cancel()
		}
		return shutdown(out, servers, *shutdownTimeout)
	case err := <-errCh:
		shutdown(out, servers, *shutdownTimeout)
		return err
	}
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, raw := range strings.Split(s, ",") {
		if v := strings.TrimSpace(raw); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// peerBaseURL turns an advertised member address into the base URL the
// router and the warmup pull dial.
func peerBaseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimRight(addr, "/")
	}
	return "http://" + addr
}

// deriveAdvertise turns the bound listener address into something peers can
// dial: an unspecified host (":8080", "[::]:8080", "0.0.0.0:8080") becomes
// 127.0.0.1, which is right for local fleets; multi-host deployments set
// -advertise explicitly.
func deriveAdvertise(bound string) string {
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return bound
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// shutdown drains every server, allowing up to timeout for in-flight
// requests; http.ErrServerClosed from the Serve goroutines is expected.
func shutdown(out io.Writer, servers []*http.Server, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var firstErr error
	for _, s := range servers {
		err := s.Shutdown(ctx)
		if errors.Is(err, context.DeadlineExceeded) {
			// The graceful window is exhausted: force-close the stragglers
			// rather than wedging process exit. This is not necessarily a
			// stuck handler — net/http counts a pooled client connection
			// that never sent a request as active for its first 5 seconds,
			// so a drain window shorter than that can expire on a
			// connection carrying nothing at all.
			s.Close()
			fmt.Fprintf(out, "shutdown: drain window expired after %s; forcing close\n", timeout)
			continue
		}
		if err != nil && !errors.Is(err, http.ErrServerClosed) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// opsMux is the operations-only surface: profiling endpoints that must not
// face service traffic, plus the metric exports and the trace store for
// convenience.
func opsMux(metrics *obs.Registry, traces *obs.TraceStore) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /metrics", metrics.Handler())
	mux.Handle("GET /debug/traces", traces.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}
