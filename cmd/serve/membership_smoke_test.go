package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// memberNode is one serve process (run() in a goroutine) in a gossip fleet.
type memberNode struct {
	name   string
	addr   string
	buf    *lockedBuffer
	cancel context.CancelFunc
	done   chan error
}

// startMemberNode boots one node of a gossip-managed fleet on an ephemeral
// port, with its wrapper store and cache journal rooted in dir.
func startMemberNode(t *testing.T, name, dir string, seeds ...string) *memberNode {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	buf := &lockedBuffer{}
	args := []string{
		"-addr", "127.0.0.1:0",
		"-node-name", name,
		"-gossip-interval", "25ms",
		"-wrapper-store", filepath.Join(dir, "wrappers.ndjson"),
		"-cache-journal", filepath.Join(dir, "cache.ndjson"),
		"-warmup-timeout", "5s",
		"-health-interval", "50ms",
		"-shutdown-timeout", "2s",
	}
	if len(seeds) > 0 {
		args = append(args, "-join", strings.Join(seeds, ","))
	}
	done := make(chan error, 1)
	go func() { done <- run(ctx, args, buf) }()
	n := &memberNode{name: name, buf: buf, cancel: cancel, done: done}
	n.addr = waitFor(t, buf, `service listening on ([0-9.:]+)`)
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Errorf("%s: run did not return during cleanup", name)
		}
	})
	return n
}

// stop shuts the node down gracefully (leave broadcast + drain) and reports
// run()'s error.
func (n *memberNode) stop(t *testing.T) {
	t.Helper()
	n.cancel()
	select {
	case err := <-n.done:
		n.done <- nil // keep the cleanup drain from blocking
		if err != nil {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Logf("goroutines at failure:\n%s", buf)
			t.Fatalf("%s: run returned %v", n.name, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("%s: run did not return after cancel", n.name)
	}
}

// servingCount reads /v1/cluster/members and returns how many members the
// node currently serves traffic with.
func servingCount(t *testing.T, addr string) int {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/v1/cluster/members")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	var body struct {
		Serving []struct{ Name string } `json:"serving"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return -1
	}
	return len(body.Serving)
}

// waitServing polls every node until each serves exactly n members.
func waitServing(t *testing.T, nodes []*memberNode, n int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, node := range nodes {
			if servingCount(t, node.addr) != n {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, node := range nodes {
		t.Logf("%s serves %d members", node.name, servingCount(t, node.addr))
	}
	t.Fatalf("fleet never converged on %d serving members", n)
}

// metricValue scrapes one counter/gauge value from a node's /metrics.
func metricValue(t *testing.T, addr, metric string) float64 {
	t.Helper()
	_, body := get(t, "http://"+addr+"/metrics")
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(metric) + ` ([0-9.e+-]+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: bad value %q", metric, m[1])
	}
	return v
}

// TestMembershipSmoke is the end-to-end membership acceptance run, and what
// `make membership-smoke` executes under -race: boot a seed, join two more
// nodes (each warming its wrapper store from the fleet before serving),
// prove every node answers byte-identically, then kill one node and restart
// it under the same name — it must rejoin, refute its stale record, come
// back warm from its cache journal, and answer the same bytes again.
func TestMembershipSmoke(t *testing.T) {
	docs := make([]string, 12)
	for i := range docs {
		docs[i] = fmt.Sprintf(
			`{"html":"<div><hr><b>item %d</b> alpha<hr><b>more</b> beta<hr><b>tail</b> gamma</div>"}`, i)
	}

	dirA, dirB, dirC := t.TempDir(), t.TempDir(), t.TempDir()
	a := startMemberNode(t, "node-a", dirA)
	b := startMemberNode(t, "node-b", dirB, a.addr)
	c := startMemberNode(t, "node-c", dirC, a.addr)
	fleet := []*memberNode{a, b, c}
	waitServing(t, fleet, 3)

	// Reference pass through the seed: learns the wrapper, fills the owner
	// replicas' caches (and their journals).
	reference := make(map[string]string, len(docs))
	for _, doc := range docs {
		code, body := post(t, "http://"+a.addr+"/v1/discover", doc)
		if code != http.StatusOK {
			t.Fatalf("reference discover = %d %q", code, body)
		}
		reference[doc] = body
	}

	// Byte-identical from every member: the ring routes each document to
	// the same owner no matter which node fields the request.
	for _, node := range []*memberNode{b, c} {
		for _, doc := range docs {
			code, body := post(t, "http://"+node.addr+"/v1/discover", doc)
			if code != http.StatusOK || body != reference[doc] {
				t.Fatalf("%s answered differently (code %d):\n got %q\nwant %q",
					node.name, code, body, reference[doc])
			}
		}
	}
	if got := metricValue(t, a.addr, `boundary_membership_members{state="alive"}`); got != 3 {
		t.Errorf(`boundary_membership_members{state="alive"} = %v on the seed, want 3`, got)
	}

	// Kill node-b and let the survivors converge on a 2-member fleet.
	b.stop(t)
	waitServing(t, []*memberNode{a, c}, 2)
	for _, doc := range docs[:3] {
		if code, body := post(t, "http://"+c.addr+"/v1/discover", doc); code != http.StatusOK ||
			body != reference[doc] {
			t.Fatalf("2-member fleet answered differently (code %d): %q", code, body)
		}
	}

	// Restart under the same name: rejoin (refuting the stale record), warm
	// the wrapper store from a neighbor, and replay the cache journal.
	b2 := startMemberNode(t, "node-b", dirB, a.addr)
	pulled := waitFor(t, b2.buf, `warmup: (\d+) templates pulled`)
	if n, _ := strconv.Atoi(pulled); n < 1 {
		t.Errorf("restarted node-b pulled %s templates during warmup, want >= 1", pulled)
	}
	fleet = []*memberNode{a, b2, c}
	waitServing(t, fleet, 3)

	for _, doc := range docs {
		code, body := post(t, "http://"+b2.addr+"/v1/discover", doc)
		if code != http.StatusOK || body != reference[doc] {
			t.Fatalf("restarted node-b answered differently (code %d):\n got %q\nwant %q",
				code, body, reference[doc])
		}
	}
	// The documents node-b owns were answered from its replayed journal:
	// its result cache was hit without a single miss-and-recompute first.
	if hits := metricValue(t, b2.addr, "boundary_cache_hits_total"); hits < 1 {
		t.Errorf("restarted node-b served %v cache hits, want >= 1 (journal replay should warm it)", hits)
	}

	for _, node := range fleet {
		node.stop(t)
	}
}
