package main

// Wrapper smoke (run by `make wrapper-smoke` and CI): boots the real
// cmd/serve binary surface with a wrapper store on disk, sends the same
// document twice, and proves the second answer came from the learned-
// wrapper fast path — then reboots on the same journal and proves the
// wrapper survived the restart. docs/WRAPPER.md describes the path.

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/paperdoc"
)

func TestWrapperSmoke(t *testing.T) {
	storePath := t.TempDir() + "/wrappers.ndjson"
	body, err := json.Marshal(map[string]string{"html": paperdoc.Figure2, "ontology": "obituary"})
	if err != nil {
		t.Fatal(err)
	}

	boot := func(t *testing.T) (addr string, shutdown func()) {
		ctx, cancel := context.WithCancel(context.Background())
		buf := &lockedBuffer{}
		done := make(chan error, 1)
		go func() {
			done <- run(ctx, []string{
				"-addr", "127.0.0.1:0",
				"-cache-size", "0", // the result cache must not mask the template path
				"-wrapper-store", storePath,
				"-shutdown-timeout", "2s",
			}, buf)
		}()
		addr = waitFor(t, buf, `service listening on ([0-9.:]+)`)
		waitFor(t, buf, `wrapper store .*: (\d+) templates loaded`)
		return addr, func() {
			cancel()
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("run returned %v after cancel", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("run did not return after context cancel")
			}
		}
	}

	stats := func(t *testing.T, addr string) (entries int, hits, misses float64) {
		t.Helper()
		code, body := get(t, "http://"+addr+"/v1/template/stats")
		if code != 200 {
			t.Fatalf("/v1/template/stats = %d: %s", code, body)
		}
		var s struct {
			Entries int     `json:"entries"`
			Hits    float64 `json:"hits"`
			Misses  float64 `json:"misses"`
		}
		if err := json.Unmarshal([]byte(body), &s); err != nil {
			t.Fatalf("stats decode: %v: %s", err, body)
		}
		return s.Entries, s.Hits, s.Misses
	}

	addr, shutdown := boot(t)

	// First request: a miss that learns the wrapper.
	code, first := post(t, "http://"+addr+"/v1/discover", string(body))
	if code != 200 {
		t.Fatalf("first discover = %d: %s", code, first)
	}
	var decoded struct {
		Separator string `json:"separator"`
	}
	if err := json.Unmarshal([]byte(first), &decoded); err != nil || decoded.Separator != "hr" {
		t.Fatalf("first discover separator = %q (err %v): %s", decoded.Separator, err, first)
	}
	if entries, hits, misses := stats(t, addr); entries != 1 || hits != 0 || misses != 1 {
		t.Fatalf("after first request: entries=%d hits=%v misses=%v, want 1/0/1", entries, hits, misses)
	}

	// Second request: must be answered by the template fast path, with
	// bytes identical to the cold answer.
	code, second := post(t, "http://"+addr+"/v1/discover", string(body))
	if code != 200 {
		t.Fatalf("second discover = %d", code)
	}
	if second != first {
		t.Errorf("template hit bytes differ from cold answer:\n got %s\nwant %s", second, first)
	}
	if _, hits, _ := stats(t, addr); hits != 1 {
		t.Errorf("second request did not hit the wrapper store (hits=%v)", hits)
	}
	if _, metrics := get(t, "http://"+addr+"/metrics"); !strings.Contains(metrics, "boundary_template_hits_total 1") {
		t.Errorf("boundary_template_hits_total missing from /metrics")
	}

	// Restart on the same journal: the wrapper is warm from request one.
	shutdown()
	addr, shutdown = boot(t)
	defer shutdown()
	if entries, _, _ := stats(t, addr); entries != 1 {
		t.Fatalf("restarted store holds %d entries, want 1 from the journal", entries)
	}
	code, warm := post(t, "http://"+addr+"/v1/discover", string(body))
	if code != 200 || warm != first {
		t.Errorf("post-restart answer differs (status %d):\n got %s\nwant %s", code, warm, first)
	}
	if _, hits, misses := stats(t, addr); hits != 1 || misses != 0 {
		t.Errorf("post-restart request was not a pure hit (hits=%v misses=%v)", hits, misses)
	}
}
