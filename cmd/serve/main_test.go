package main

import (
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuffer is an io.Writer safe for the concurrent writes run() and the
// request logger make while the test polls the output.
type lockedBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// waitFor polls the buffer for a regexp's first capture group.
func waitFor(t *testing.T, buf *lockedBuffer, pattern string) string {
	t.Helper()
	re := regexp.MustCompile(pattern)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(buf.String()); m != nil {
			return m[1]
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("output never matched %q; output so far:\n%s", pattern, buf.String())
	return ""
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServeGracefulShutdown boots the full service on ephemeral ports,
// exercises the service and ops listeners, then cancels the context and
// checks run() drains and returns cleanly.
func TestServeGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buf := &lockedBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-ops-addr", "127.0.0.1:0",
			"-shutdown-timeout", "2s",
		}, buf)
	}()

	addr := waitFor(t, buf, `service listening on ([0-9.:]+)`)
	opsAddr := waitFor(t, buf, `ops listener \(pprof, metrics\) on ([0-9.:]+)`)

	if code, body := get(t, "http://"+addr+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, "http://"+addr+"/metrics"); code != 200 ||
		!strings.Contains(body, "http_requests_total") {
		t.Errorf("/metrics = %d, want 200 with http_requests_total; body:\n%s", code, body)
	}
	if code, body := get(t, "http://"+addr+"/debug/vars"); code != 200 ||
		!strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars = %d, want 200 with memstats", code)
		_ = body
	}
	if code, body := get(t, "http://"+opsAddr+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("ops /debug/pprof/cmdline = %d", code)
	}
	if code, _ := get(t, "http://"+opsAddr+"/metrics"); code != 200 {
		t.Errorf("ops /metrics = %d", code)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v after cancel, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after context cancel")
	}
	if !strings.Contains(buf.String(), "shutting down") {
		t.Errorf("missing shutdown message; output:\n%s", buf.String())
	}
}

// TestServeBadFlag checks flag errors surface instead of booting.
func TestServeBadFlag(t *testing.T) {
	buf := &lockedBuffer{}
	if err := run(context.Background(), []string{"-no-such-flag"}, buf); err == nil {
		t.Error("run accepted an unknown flag")
	}
}

// TestServeAddrInUse checks a bind failure is reported as an error.
func TestServeAddrInUse(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buf := &lockedBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0"}, buf)
	}()
	addr := waitFor(t, buf, `service listening on ([0-9.:]+)`)

	if err := run(ctx, []string{"-addr", addr}, &lockedBuffer{}); err == nil {
		t.Error("second bind on the same address succeeded")
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("first server: %v", err)
	}
}
