package main

import (
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuffer is an io.Writer safe for the concurrent writes run() and the
// request logger make while the test polls the output.
type lockedBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// waitFor polls the buffer for a regexp's first capture group.
func waitFor(t *testing.T, buf *lockedBuffer, pattern string) string {
	t.Helper()
	re := regexp.MustCompile(pattern)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(buf.String()); m != nil {
			return m[1]
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("output never matched %q; output so far:\n%s", pattern, buf.String())
	return ""
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServeGracefulShutdown boots the full service on ephemeral ports,
// exercises the service and ops listeners, then cancels the context and
// checks run() drains and returns cleanly.
func TestServeGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buf := &lockedBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-ops-addr", "127.0.0.1:0",
			"-shutdown-timeout", "2s",
		}, buf)
	}()

	addr := waitFor(t, buf, `service listening on ([0-9.:]+)`)
	opsAddr := waitFor(t, buf, `ops listener \(pprof, metrics\) on ([0-9.:]+)`)

	if code, body := get(t, "http://"+addr+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, "http://"+addr+"/metrics"); code != 200 ||
		!strings.Contains(body, "http_requests_total") {
		t.Errorf("/metrics = %d, want 200 with http_requests_total; body:\n%s", code, body)
	}
	if code, body := get(t, "http://"+addr+"/debug/vars"); code != 200 ||
		!strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars = %d, want 200 with memstats", code)
		_ = body
	}
	if code, body := get(t, "http://"+opsAddr+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("ops /debug/pprof/cmdline = %d", code)
	}
	if code, _ := get(t, "http://"+opsAddr+"/metrics"); code != 200 {
		t.Errorf("ops /metrics = %d", code)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v after cancel, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after context cancel")
	}
	if !strings.Contains(buf.String(), "shutting down") {
		t.Errorf("missing shutdown message; output:\n%s", buf.String())
	}
}

// TestServeBadFlag checks flag errors surface instead of booting.
func TestServeBadFlag(t *testing.T) {
	buf := &lockedBuffer{}
	if err := run(context.Background(), []string{"-no-such-flag"}, buf); err == nil {
		t.Error("run accepted an unknown flag")
	}
	for _, args := range [][]string{
		{"-cache-size", "-1"},
		{"-batch-parallelism", "-2"},
	} {
		if err := run(context.Background(), args, &lockedBuffer{}); err == nil {
			t.Errorf("run accepted %v", args)
		}
	}
}

// TestServeCacheAndBatchFlags boots the service with an explicit cache size
// and batch parallelism and checks both code paths are live: repeated
// discover requests surface boundary_cache_* metrics, and the batch endpoint
// answers in order.
func TestServeCacheAndBatchFlags(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buf := &lockedBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-cache-size", "16",
			"-batch-parallelism", "2",
			"-shutdown-timeout", "2s",
		}, buf)
	}()
	addr := waitFor(t, buf, `service listening on ([0-9.:]+)`)

	doc := `{"html":"<div><hr><b>A</b> x<hr><b>B</b> y<hr><b>C</b> z</div>"}`
	for i := 0; i < 2; i++ {
		code, body := post(t, "http://"+addr+"/v1/discover", doc)
		if code != 200 || !strings.Contains(body, `"separator": "hr"`) {
			t.Fatalf("discover %d = %d %q", i, code, body)
		}
	}
	if code, body := get(t, "http://"+addr+"/metrics"); code != 200 ||
		!strings.Contains(body, "boundary_cache_hits_total 1") ||
		!strings.Contains(body, "boundary_cache_misses_total 1") {
		t.Errorf("/metrics should show one cache hit and one miss; got %d:\n%s", code, body)
	}

	code, body := post(t, "http://"+addr+"/v1/discover/batch",
		`{"documents":[`+doc+`,{"xml":"<f><e>a b</e><e>c d</e><e>e f</e></f>"}]}`)
	if code != 200 {
		t.Fatalf("batch = %d %q", code, body)
	}
	if hr, e := strings.Index(body, `"separator": "hr"`), strings.Index(body, `"separator": "e"`); hr < 0 || e < 0 || hr > e {
		t.Errorf("batch results out of order or missing: %q", body)
	}

	cancel()
	if err := <-done; err != nil {
		t.Errorf("run returned %v after cancel", err)
	}
}

// TestServeClusterMode boots the service with -cluster 3 and checks routed
// discover traffic, scatter-gather batch, cluster metrics, and that the
// fallback still serves non-discover routes.
func TestServeClusterMode(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buf := &lockedBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-cluster", "3",
			"-peer-queue-depth", "8",
			"-hedge-after", "250ms",
			"-shutdown-timeout", "2s",
		}, buf)
	}()
	addr := waitFor(t, buf, `service listening on ([0-9.:]+)`)
	if !strings.Contains(buf.String(), "cluster mode: 3 replicas (3 in-process)") {
		t.Errorf("missing cluster banner; output:\n%s", buf.String())
	}

	doc := `{"html":"<div><hr><b>A</b> x<hr><b>B</b> y<hr><b>C</b> z</div>"}`
	if code, body := post(t, "http://"+addr+"/v1/discover", doc); code != 200 ||
		!strings.Contains(body, `"separator": "hr"`) {
		t.Fatalf("routed discover = %d %q", code, body)
	}
	if code, body := post(t, "http://"+addr+"/v1/discover/batch",
		`{"documents":[`+doc+`,{"xml":"<f><e>a b</e><e>c d</e><e>e f</e></f>"}]}`); code != 200 ||
		!strings.Contains(body, `"separator": "hr"`) || !strings.Contains(body, `"separator": "e"`) {
		t.Fatalf("routed batch = %d %q", code, body)
	}
	if code, body := get(t, "http://"+addr+"/metrics"); code != 200 ||
		!strings.Contains(body, "boundary_cluster_requests_total") ||
		!strings.Contains(body, "boundary_cluster_peers_healthy 3") {
		t.Errorf("/metrics should show cluster series with 3 healthy peers; got %d:\n%s", code, body)
	}
	if code, body := get(t, "http://"+addr+"/v1/ontologies"); code != 200 ||
		!strings.Contains(body, "obituary") {
		t.Errorf("fallback /v1/ontologies = %d %q", code, body)
	}
	if code, _ := get(t, "http://"+addr+"/healthz"); code != 200 {
		t.Errorf("cluster /healthz = %d", code)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v after cancel", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cluster-mode run did not return after cancel")
	}
}

// TestServeClusterFlagValidation checks cluster flag errors surface.
func TestServeClusterFlagValidation(t *testing.T) {
	if err := run(context.Background(), []string{"-cluster", "-1"}, &lockedBuffer{}); err == nil {
		t.Error("run accepted -cluster -1")
	}
}

// TestServeAddrInUse checks a bind failure is reported as an error.
func TestServeAddrInUse(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buf := &lockedBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0"}, buf)
	}()
	addr := waitFor(t, buf, `service listening on ([0-9.:]+)`)

	if err := run(ctx, []string{"-addr", addr}, &lockedBuffer{}); err == nil {
		t.Error("second bind on the same address succeeded")
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("first server: %v", err)
	}
}
