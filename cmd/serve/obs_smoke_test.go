package main

// Observability smoke test: boot the full service in cluster mode, make one
// traced request, and check the whole observability surface holds together —
// /metrics and /metrics/cluster parse as Prometheus text exposition, the
// response's X-Trace-ID resolves at /debug/traces, and the stored trace
// stitches router and replica fragments. CI runs this as its own job
// (make obs-smoke).

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestObservabilitySmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buf := &lockedBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-ops-addr", "127.0.0.1:0",
			"-cluster", "3",
			"-shutdown-timeout", "2s",
		}, buf)
	}()
	addr := waitFor(t, buf, `service listening on ([0-9.:]+)`)
	opsAddr := waitFor(t, buf, `ops listener \(pprof, metrics\) on ([0-9.:]+)`)

	// One traced discover request through the router.
	doc := `{"html":"<div><hr><b>A</b> x<hr><b>B</b> y<hr><b>C</b> z<hr></div>"}`
	resp, err := http.Post("http://"+addr+"/v1/discover", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/discover = %d: %s", resp.StatusCode, body)
	}
	traceID := resp.Header.Get(obs.TraceIDHeader)
	if traceID == "" {
		t.Fatal("response carries no X-Trace-ID header")
	}
	if _, ok := obs.ParseTraceID(traceID); !ok {
		t.Fatalf("X-Trace-ID %q is not a valid trace id", traceID)
	}

	// Both metric surfaces must be valid Prometheus exposition.
	for _, path := range []string{"/metrics", "/metrics/cluster"} {
		code, text := get(t, "http://"+addr+path)
		if code != 200 {
			t.Fatalf("%s = %d: %s", path, code, text)
		}
		if err := obs.ValidateExposition([]byte(text)); err != nil {
			t.Errorf("%s is not valid exposition: %v", path, err)
		}
	}
	if _, text := get(t, "http://"+addr+"/metrics/cluster"); !strings.Contains(text, `peer="local-0"`) ||
		!strings.Contains(text, `peer="router"`) {
		t.Errorf("/metrics/cluster lacks per-peer attribution:\n%.2000s", text)
	}

	// The trace must be retrievable on the ops listener: in the JSON listing
	// and as a rendered tree with both the router and a replica fragment.
	deadline := time.Now().Add(3 * time.Second)
	var tree string
	for time.Now().Before(deadline) {
		if code, text := get(t, "http://"+opsAddr+"/debug/traces?trace="+traceID); code == 200 {
			tree = text
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if tree == "" {
		t.Fatalf("trace %s never appeared at /debug/traces", traceID)
	}
	if !strings.Contains(tree, "router POST /v1/discover") ||
		!strings.Contains(tree, "cluster/peer/local-") {
		t.Errorf("trace tree missing router fragment or peer hop:\n%s", tree)
	}
	if !strings.Contains(tree, "local-") || !strings.Contains(tree, "parse") {
		t.Errorf("trace tree missing replica-side pipeline spans:\n%s", tree)
	}

	code, listing := get(t, "http://"+opsAddr+"/debug/traces")
	if code != 200 {
		t.Fatalf("/debug/traces listing = %d", code)
	}
	var env struct {
		Published int `json:"published"`
		Traces    []struct {
			TraceID string `json:"trace_id"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(listing), &env); err != nil {
		t.Fatalf("/debug/traces is not JSON: %v\n%s", err, listing)
	}
	found := false
	for _, tr := range env.Traces {
		if tr.TraceID == traceID {
			found = true
		}
	}
	if !found {
		t.Errorf("trace %s missing from listing (published=%d)", traceID, env.Published)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v after cancel", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after cancel")
	}
}
