// Command wrapper learns, saves, and applies per-site wrappers — the
// production workflow: discover boundaries once on sample pages, then split
// new pages from the same site ~40× faster, with drift detection.
//
// Usage:
//
//	wrapper learn -ontology obituary -out site.wrapper page1.html page2.html ...
//	wrapper apply -wrapper site.wrapper page.html
//	wrapper show  -wrapper site.wrapper
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/ontology"
	"repro/internal/wrapper"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "wrapper: need a subcommand: learn, apply, or show")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "learn":
		err = learnCmd(os.Stdout, os.Args[2:])
	case "apply":
		err = applyCmd(os.Stdout, os.Args[2:])
	case "show":
		err = showCmd(os.Stdout, os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrapper:", err)
		os.Exit(1)
	}
}

func learnCmd(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("learn", flag.ContinueOnError)
	ontName := fs.String("ontology", "", "built-in ontology name or DSL file path (enables OM)")
	outPath := fs.String("out", "", "file to save the learned wrapper to (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("learn needs at least one sample page")
	}
	samples := make([]string, 0, fs.NArg())
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		samples = append(samples, string(data))
	}
	ont, err := loadOntology(*ontName)
	if err != nil {
		return err
	}
	w, err := wrapper.Learn(samples, ont)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, w)
	dst := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	return w.Save(dst)
}

func applyCmd(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("apply", flag.ContinueOnError)
	wrapperPath := fs.String("wrapper", "", "saved wrapper file (required)")
	ontName := fs.String("ontology", "", "re-attach a custom ontology (built-in name or DSL file)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *wrapperPath == "" || fs.NArg() != 1 {
		return fmt.Errorf("apply needs -wrapper and exactly one page")
	}
	ont, err := loadOntology(*ontName)
	if err != nil {
		return err
	}
	f, err := os.Open(*wrapperPath)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := wrapper.LoadWithOntology(f, ont)
	if err != nil {
		return err
	}
	page, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	records, err := w.Apply(string(page))
	if err != nil {
		return err
	}
	for i, rec := range records {
		fmt.Fprintf(out, "--- record %d [%d:%d] ---\n%s\n", i+1, rec.Start, rec.End, rec.Text)
	}
	return nil
}

func showCmd(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("show", flag.ContinueOnError)
	wrapperPath := fs.String("wrapper", "", "saved wrapper file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *wrapperPath == "" {
		return fmt.Errorf("show needs -wrapper")
	}
	f, err := os.Open(*wrapperPath)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := wrapper.Load(f)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, w)
	return nil
}

// loadOntology resolves an ontology flag: empty means none, a built-in name
// selects it, anything else is a DSL file path.
func loadOntology(name string) (*ontology.Ontology, error) {
	if name == "" {
		return nil, nil
	}
	if ont := ontology.Builtin(name); ont != nil {
		return ont, nil
	}
	src, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("ontology %q is neither built-in nor readable: %w", name, err)
	}
	return ontology.Parse(string(src))
}
