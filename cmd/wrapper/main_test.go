package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
)

// sitePages writes n generated pages to disk and returns their paths.
func sitePages(t *testing.T, n int) []string {
	t.Helper()
	site := corpus.TrainingSites(corpus.Obituaries)[0]
	dir := t.TempDir()
	paths := make([]string, n)
	for i := range paths {
		paths[i] = filepath.Join(dir, "page"+string(rune('0'+i))+".html")
		if err := os.WriteFile(paths[i], []byte(site.Generate(i).HTML), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

func TestLearnApplyShowWorkflow(t *testing.T) {
	pages := sitePages(t, 4)
	wrapperPath := filepath.Join(t.TempDir(), "site.wrapper")

	var out strings.Builder
	err := learnCmd(&out, []string{"-ontology", "obituary", "-out", wrapperPath, pages[0], pages[1], pages[2]})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sep=<hr>") {
		t.Errorf("learn output: %s", out.String())
	}

	out.Reset()
	if err := showCmd(&out, []string{"-wrapper", wrapperPath}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sep=<hr>") {
		t.Errorf("show output: %s", out.String())
	}

	out.Reset()
	if err := applyCmd(&out, []string{"-wrapper", wrapperPath, pages[3]}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "--- record 1") {
		t.Errorf("apply output: %s", out.String())
	}
}

func TestLearnErrors(t *testing.T) {
	var out strings.Builder
	if err := learnCmd(&out, []string{}); err == nil {
		t.Error("learn without samples should fail")
	}
	if err := learnCmd(&out, []string{"/nope.html"}); err == nil {
		t.Error("learn with a missing file should fail")
	}
}

func TestApplyErrors(t *testing.T) {
	var out strings.Builder
	if err := applyCmd(&out, []string{}); err == nil {
		t.Error("apply without -wrapper should fail")
	}
	pages := sitePages(t, 1)
	if err := applyCmd(&out, []string{"-wrapper", "/nope.wrapper", pages[0]}); err == nil {
		t.Error("apply with a missing wrapper should fail")
	}
}

func TestShowErrors(t *testing.T) {
	var out strings.Builder
	if err := showCmd(&out, []string{}); err == nil {
		t.Error("show without -wrapper should fail")
	}
}
