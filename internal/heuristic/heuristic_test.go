package heuristic

import (
	"strings"
	"testing"

	"repro/internal/ontology"
	"repro/internal/paperdoc"
	"repro/internal/tagtree"
)

// figure2Context builds the shared context for the paper's Figure 2 document
// with the obituary ontology.
func figure2Context(t *testing.T) *Context {
	t.Helper()
	tree := tagtree.Parse(paperdoc.Figure2)
	return NewContext(tree, tagtree.DefaultCandidateThreshold, ontology.Builtin("obituary"))
}

func rankingString(r Ranking) string { return strings.Join(r.Tags(), " ") }

// TestFigure2IndividualRankings is the §5.3 golden test: each heuristic's
// ranking on the Figure 2 document must match the paper's reported output.
func TestFigure2IndividualRankings(t *testing.T) {
	ctx := figure2Context(t)
	want := map[string]string{
		"OM": "hr br b",
		"RP": "hr br b",
		"SD": "hr b br",
		"IT": "hr br b",
		"HT": "b br hr",
	}
	for _, h := range All() {
		r, ok := h.Rank(ctx)
		if !ok {
			t.Errorf("%s declined to answer", h.Name())
			continue
		}
		if got := rankingString(r); got != want[h.Name()] {
			t.Errorf("%s ranking = %q, want %q (scores: %+v)", h.Name(), got, want[h.Name()], r)
		}
	}
}

func TestHTCountsFigure2(t *testing.T) {
	ctx := figure2Context(t)
	r, ok := HT{}.Rank(ctx)
	if !ok {
		t.Fatal("HT declined")
	}
	wantScores := map[string]float64{"b": 8, "br": 5, "hr": 4}
	for _, e := range r {
		if e.Score != wantScores[e.Tag] {
			t.Errorf("HT %s score = %v, want %v", e.Tag, e.Score, wantScores[e.Tag])
		}
	}
}

func TestHTNoCandidates(t *testing.T) {
	ctx := &Context{}
	if _, ok := (HT{}).Rank(ctx); ok {
		t.Error("HT should decline with no candidates")
	}
}

func TestITUsesListOrder(t *testing.T) {
	ctx := figure2Context(t)
	r, _ := IT{}.Rank(ctx)
	// hr is 1st on the list, br 7th, b 11th.
	wantScores := map[string]float64{"hr": 1, "br": 7, "b": 11}
	for _, e := range r {
		if e.Score != wantScores[e.Tag] {
			t.Errorf("IT %s score = %v, want %v", e.Tag, e.Score, wantScores[e.Tag])
		}
	}
}

func TestITDiscardsUnlistedTags(t *testing.T) {
	tree := tagtree.Parse("<div><blink>a</blink><blink>b</blink><p>c</p><p>d</p></div>")
	ctx := NewContext(tree, 0, nil)
	r, ok := IT{}.Rank(ctx)
	if !ok {
		t.Fatal("IT declined")
	}
	if r.RankOf("blink") != 0 {
		t.Error("blink should be discarded (not on the separator list)")
	}
	if r.RankOf("p") != 1 {
		t.Errorf("p rank = %d, want 1", r.RankOf("p"))
	}
}

func TestITDeclinesWhenNothingListed(t *testing.T) {
	tree := tagtree.Parse("<div><blink>a</blink><blink>b</blink><marquee>c</marquee><marquee>d</marquee></div>")
	ctx := NewContext(tree, 0, nil)
	if _, ok := (IT{}).Rank(ctx); ok {
		t.Error("IT should decline when no candidate is on the list")
	}
}

func TestITCustomList(t *testing.T) {
	tree := tagtree.Parse("<div><p>a</p><hr><p>b</p><hr></div>")
	ctx := NewContext(tree, 0, nil)
	r, ok := IT{List: []string{"p", "hr"}}.Rank(ctx)
	if !ok {
		t.Fatal("IT declined")
	}
	if r.RankOf("p") != 1 || r.RankOf("hr") != 2 {
		t.Errorf("custom list ranking wrong: %+v", r)
	}
}

func TestSDPrefersUniformIntervals(t *testing.T) {
	// sep occurs at perfectly regular 20-char intervals; x floats around
	// inside each record, so its intervals vary (37 vs 11 chars).
	doc := "<div>" +
		"<sep>aa<x>aaaaaaaaaaaaaaaaaa" +
		"<sep>ccccccccccccccccccc<x>c" +
		"<sep>ffffffffff<x>ffffffffff" +
		"<sep></div>"
	ctx := NewContext(tagtree.Parse(doc), 0, nil)
	r, ok := SD{}.Rank(ctx)
	if !ok {
		t.Fatal("SD declined")
	}
	if r.Tags()[0] != "sep" {
		t.Errorf("SD ranking = %v, want sep first", r.Tags())
	}
}

func TestSDTooFewOccurrencesRankLast(t *testing.T) {
	// once appears twice (one interval): no spread measurable → last.
	doc := "<div><once>a<sep>bb<sep>bb<sep>bb<sep>cc<once></div>"
	ctx := NewContext(tagtree.Parse(doc), 0, nil)
	r, ok := SD{}.Rank(ctx)
	if !ok {
		t.Fatal("SD declined")
	}
	if last := r[len(r)-1]; last.Tag != "once" {
		t.Errorf("SD ranking = %+v, want once last", r)
	}
}

func TestRPFigure2Pairs(t *testing.T) {
	ctx := figure2Context(t)
	pairs := RPPairs(ctx)
	if got := pairs[Pair{First: "hr", Second: "b"}]; got != 2 {
		t.Errorf("<hr><b> pairs = %d, want 2", got)
	}
	if got := pairs[Pair{First: "br", Second: "hr"}]; got != 2 {
		t.Errorf("<br><hr> pairs = %d, want 2", got)
	}
	// No other pair should exist in the Figure 2 document: every other
	// adjacency has intervening prose.
	if len(pairs) != 2 {
		t.Errorf("pairs = %v, want exactly the paper's two", pairs)
	}
}

func TestRPScoresFigure2(t *testing.T) {
	ctx := figure2Context(t)
	r, ok := RP{}.Rank(ctx)
	if !ok {
		t.Fatal("RP declined")
	}
	// hr: |2-4| = 2; br: |2-5| = 3; b: |2-8| = 6.
	wantScores := map[string]float64{"hr": 2, "br": 3, "b": 6}
	for _, e := range r {
		if e.Score != wantScores[e.Tag] {
			t.Errorf("RP %s score = %v, want %v", e.Tag, e.Score, wantScores[e.Tag])
		}
	}
}

func TestRPDeclinesWithoutPairs(t *testing.T) {
	// Every adjacency has text between the tags.
	doc := "<div><p>a</p>x<p>b</p>y<p>c</p>z<q>q</q>w<q>r</q></div>"
	ctx := NewContext(tagtree.Parse(doc), 0, nil)
	if _, ok := (RP{}).Rank(ctx); ok {
		t.Error("RP should decline with no adjacent pairs")
	}
}

func TestRPWhitespaceDoesNotBreakAdjacency(t *testing.T) {
	doc := "<div><hr>\n\t <b>x</b>text<hr>\n<b>y</b>text<hr>\n<b>z</b>text<hr></div>"
	ctx := NewContext(tagtree.Parse(doc), 0, nil)
	pairs := RPPairs(ctx)
	if got := pairs[Pair{First: "hr", Second: "b"}]; got != 3 {
		t.Errorf("<hr><b> pairs = %d, want 3 (whitespace must not break adjacency)", got)
	}
}

func TestRPEndTagsDoNotBreakAdjacency(t *testing.T) {
	// </b><br>: the b start-tag has text inside, so (b, br) is NOT a pair,
	// but (br, hr) later is, even crossing the </b>.
	doc := "<div><b>x</b><br><hr><b>y</b><br><hr><b>z</b><br><hr></div>"
	ctx := NewContext(tagtree.Parse(doc), 0, nil)
	pairs := RPPairs(ctx)
	if got := pairs[Pair{First: "b", Second: "br"}]; got != 0 {
		t.Errorf("(b,br) pairs = %d, want 0 (text inside b intervenes)", got)
	}
	if got := pairs[Pair{First: "br", Second: "hr"}]; got != 3 {
		t.Errorf("(br,hr) pairs = %d, want 3", got)
	}
	if got := pairs[Pair{First: "hr", Second: "b"}]; got != 2 {
		t.Errorf("(hr,b) pairs = %d, want 2", got)
	}
}

func TestRPPairFloorFiltersRarePairs(t *testing.T) {
	// (a,b) occurs once; candidate counts are 10 each, so the floor
	// (10% × 10 = 1) excludes count-1 pairs (strictly greater required).
	var b strings.Builder
	b.WriteString("<div>")
	b.WriteString("<a></a><b></b>") // one adjacent pair
	for i := 0; i < 9; i++ {
		b.WriteString("<a></a>x<b></b>y") // non-adjacent
	}
	b.WriteString("</div>")
	ctx := NewContext(tagtree.Parse(b.String()), 0, nil)
	if _, ok := (RP{}).Rank(ctx); ok {
		t.Error("RP should decline: only pair is at the floor")
	}
}

func TestOMFigure2Scores(t *testing.T) {
	ctx := figure2Context(t)
	r, ok := OM{}.Rank(ctx)
	if !ok {
		t.Fatal("OM declined")
	}
	// Estimate is 3.0; |4-3|=1, |5-3|=2, |8-3|=5.
	wantScores := map[string]float64{"hr": 1, "br": 2, "b": 5}
	for _, e := range r {
		if e.Score != wantScores[e.Tag] {
			t.Errorf("OM %s score = %v, want %v", e.Tag, e.Score, wantScores[e.Tag])
		}
	}
}

func TestOMDeclinesWithoutOntology(t *testing.T) {
	tree := tagtree.Parse(paperdoc.Figure2)
	ctx := NewContext(tree, tagtree.DefaultCandidateThreshold, nil)
	if _, ok := (OM{}).Rank(ctx); ok {
		t.Error("OM should decline without an ontology")
	}
}

func TestRankByScoreCompetitionRanking(t *testing.T) {
	scores := map[string]float64{"a": 1, "b": 2, "c": 2, "d": 3}
	r := rankByScore(scores, true)
	wantRanks := map[string]int{"a": 1, "b": 2, "c": 2, "d": 4}
	for _, e := range r {
		if e.Rank != wantRanks[e.Tag] {
			t.Errorf("%s rank = %d, want %d", e.Tag, e.Rank, wantRanks[e.Tag])
		}
	}
}

func TestRankByScoreDescending(t *testing.T) {
	scores := map[string]float64{"low": 1, "high": 9}
	r := rankByScore(scores, false)
	if r[0].Tag != "high" {
		t.Errorf("descending ranking = %+v", r)
	}
}

func TestRankingHelpers(t *testing.T) {
	r := Ranking{{Tag: "hr", Rank: 1}, {Tag: "b", Rank: 2}}
	if r.RankOf("hr") != 1 || r.RankOf("b") != 2 || r.RankOf("zz") != 0 {
		t.Error("RankOf wrong")
	}
	if got := strings.Join(r.Tags(), ","); got != "hr,b" {
		t.Errorf("Tags = %q", got)
	}
	m := r.ToMap()
	if m["hr"] != 1 || m["b"] != 2 || len(m) != 2 {
		t.Errorf("ToMap = %v", m)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"OM", "RP", "SD", "IT", "HT"} {
		h := ByName(name)
		if h == nil || h.Name() != name {
			t.Errorf("ByName(%q) = %v", name, h)
		}
	}
	if ByName("XX") != nil {
		t.Error("unknown name should be nil")
	}
}

func TestNewContextFigure2(t *testing.T) {
	ctx := figure2Context(t)
	if ctx.Subtree.Name != "td" {
		t.Errorf("subtree = %s, want td", ctx.Subtree.Name)
	}
	if !ctx.IsCandidate("hr") || ctx.IsCandidate("h1") {
		t.Error("candidate set wrong")
	}
	if ctx.CandidateCount("b") != 8 {
		t.Errorf("b count = %d, want 8", ctx.CandidateCount("b"))
	}
	if ctx.Table == nil || ctx.Table.Len() == 0 {
		t.Error("Data-Record Table missing")
	}
}
