package heuristic

import (
	"math"

	"repro/internal/tagtree"
)

// SD is the standard-deviation heuristic (§4.3): multiple records about the
// same kind of entity tend to be about the same size, so the candidate tag
// whose consecutive occurrences are separated by the most uniform amount of
// plain text (smallest standard deviation of the inter-occurrence character
// counts) tends to be the separator.
type SD struct{}

// Name returns "SD".
func (SD) Name() string { return "SD" }

// Rank computes, for each candidate, the standard deviation of the plain-
// text character counts between its consecutive occurrences in the highest-
// fan-out subtree, and ranks ascending. Text lengths are measured on
// whitespace-collapsed text ("number of characters" in the paper). A
// candidate with fewer than three occurrences has fewer than two intervals
// — no spread to measure — and is ranked after all measurable candidates.
// SD always answers when candidates exist.
func (SD) Rank(ctx *Context) (Ranking, bool) {
	if len(ctx.Candidates) == 0 {
		return nil, false
	}
	intervals := intervalLengths(ctx)
	scores := make(map[string]float64, len(ctx.Candidates))
	for i, c := range ctx.Candidates {
		iv := intervals[i]
		if len(iv) < 2 {
			scores[c.Name] = math.Inf(1)
			continue
		}
		scores[c.Name] = stddev(iv)
	}
	return rankByScore(scores, true), true
}

// intervalLengths scans the subtree's event stream once and accumulates, per
// candidate (indexed as in ctx.Candidates), the plain-text lengths between
// its consecutive occurrences. The text between a candidate's occurrences is
// the running document total minus the total at its previous occurrence, so
// one cumulative counter serves every candidate — O(1) per event instead of
// bumping a per-candidate table on every text chunk.
func intervalLengths(ctx *Context) [][]float64 {
	idx := candidateIndex(ctx)
	out := make([][]float64, len(ctx.Candidates))
	lastCum := make([]int, len(ctx.Candidates))
	seen := make([]bool, len(ctx.Candidates))
	cum := 0
	events := ctx.Tree.SubtreeEvents(ctx.Subtree)
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case tagtree.EventText:
			cum += collapsedTextLen(ctx, events, i)
		case tagtree.EventStart:
			if ev.Node == ctx.Subtree {
				continue
			}
			k, ok := idx[ev.Node.Name]
			if !ok {
				continue
			}
			if seen[k] {
				out[k] = append(out[k], float64(cum-lastCum[k]))
			}
			seen[k] = true
			lastCum[k] = cum
		}
	}
	return out
}

// stddev returns the population standard deviation.
func stddev(xs []float64) float64 {
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	variance := 0.0
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	return math.Sqrt(variance / float64(len(xs)))
}
