package heuristic

import (
	"math"

	"repro/internal/tagtree"
)

// SD is the standard-deviation heuristic (§4.3): multiple records about the
// same kind of entity tend to be about the same size, so the candidate tag
// whose consecutive occurrences are separated by the most uniform amount of
// plain text (smallest standard deviation of the inter-occurrence character
// counts) tends to be the separator.
type SD struct{}

// Name returns "SD".
func (SD) Name() string { return "SD" }

// Rank computes, for each candidate, the standard deviation of the plain-
// text character counts between its consecutive occurrences in the highest-
// fan-out subtree, and ranks ascending. Text lengths are measured on
// whitespace-collapsed text ("number of characters" in the paper). A
// candidate with fewer than three occurrences has fewer than two intervals
// — no spread to measure — and is ranked after all measurable candidates.
// SD always answers when candidates exist.
func (SD) Rank(ctx *Context) (Ranking, bool) {
	if len(ctx.Candidates) == 0 {
		return nil, false
	}
	intervals := intervalLengths(ctx)
	scores := make(map[string]float64, len(ctx.Candidates))
	for _, c := range ctx.Candidates {
		iv := intervals[c.Name]
		if len(iv) < 2 {
			scores[c.Name] = math.Inf(1)
			continue
		}
		scores[c.Name] = stddev(iv)
	}
	return rankByScore(scores, true), true
}

// intervalLengths scans the subtree's event stream once and accumulates, for
// every candidate tag, the plain-text lengths between its consecutive
// occurrences.
func intervalLengths(ctx *Context) map[string][]float64 {
	candidate := make(map[string]bool, len(ctx.Candidates))
	for _, c := range ctx.Candidates {
		candidate[c.Name] = true
	}
	// running[tag] is the number of characters seen since the tag's last
	// occurrence; present only after its first occurrence.
	running := make(map[string]int, len(candidate))
	out := make(map[string][]float64, len(candidate))
	for _, ev := range ctx.Tree.SubtreeEvents(ctx.Subtree) {
		switch ev.Kind {
		case tagtree.EventText:
			n := len(tagtree.CollapseSpace(ev.Text))
			if n == 0 {
				continue
			}
			for tag := range running {
				running[tag] += n
			}
		case tagtree.EventStart:
			name := ev.Node.Name
			if ev.Node == ctx.Subtree || !candidate[name] {
				continue
			}
			if _, seen := running[name]; seen {
				out[name] = append(out[name], float64(running[name]))
			}
			running[name] = 0
		}
	}
	return out
}

// stddev returns the population standard deviation.
func stddev(xs []float64) float64 {
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	variance := 0.0
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	return math.Sqrt(variance / float64(len(xs)))
}
