package heuristic

import (
	"reflect"
	"testing"

	"repro/internal/tagtree"
)

func parseFor(t *testing.T, doc string) *tagtree.Tree {
	t.Helper()
	return tagtree.Parse(doc)
}

func TestLearnSeparatorListOrdersByFrequency(t *testing.T) {
	obs := [][]string{
		{"hr"}, {"hr"}, {"hr"},
		{"tr", "td"}, {"tr", "td"},
		{"p"},
	}
	got := LearnSeparatorList(obs)
	want := []string{"hr", "td", "tr", "p"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("learned list = %v, want %v", got, want)
	}
}

func TestLearnSeparatorListDedupsWithinDocument(t *testing.T) {
	// A document listing the same tag twice counts once.
	got := LearnSeparatorList([][]string{{"hr", "hr"}, {"p"}, {"p"}})
	if got[0] != "p" {
		t.Errorf("list = %v, want p first", got)
	}
}

func TestLearnSeparatorListEmpty(t *testing.T) {
	if got := LearnSeparatorList(nil); len(got) != 0 {
		t.Errorf("list = %v, want empty", got)
	}
	if got := LearnSeparatorList([][]string{{""}}); len(got) != 0 {
		t.Errorf("empty tags should be ignored: %v", got)
	}
}

func TestLearnedListDrivesIT(t *testing.T) {
	// A vocabulary IT has never seen: learn the list from labelled
	// observations, then rank with it.
	list := LearnSeparatorList([][]string{{"entry"}, {"entry"}, {"item"}})
	doc := "<feed><entry>a b</entry><entry>c d</entry><item>e</item><item>f</item></feed>"
	ctx := NewContext(parseFor(t, doc), 0, nil)
	r, ok := IT{List: list}.Rank(ctx)
	if !ok {
		t.Fatal("IT declined")
	}
	if r.RankOf("entry") != 1 || r.RankOf("item") != 2 {
		t.Errorf("ranking = %+v", r)
	}
}
