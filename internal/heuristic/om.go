package heuristic

import (
	"math"

	"repro/internal/recognizer"
)

// OM is the ontology-matching heuristic (§4.5): the only heuristic that
// considers record *content*. Fields in one-to-one correspondence with (or
// functional on) the entity of interest appear once per record; averaging
// the occurrence counts of a few such record-identifying fields estimates
// the number of records, and candidates are ranked by how close their own
// appearance count comes to that estimate.
//
// OM reads its counts from the Data-Record Table, which the larger
// extraction process of Figure 1 has already computed — this is the basis of
// the paper's argument that OM contributes O(d) to the overall process
// rather than a fresh regular-expression pass.
type OM struct{}

// Name returns "OM".
func (OM) Name() string { return "OM" }

// Rank estimates the record count from the ontology's record-identifying
// fields and ranks candidates by |count(tag) − estimate| ascending. ok is
// false when no ontology or Data-Record Table is available, or when the
// ontology has fewer than three record-identifying fields (§4.5's lower
// bound).
func (OM) Rank(ctx *Context) (Ranking, bool) {
	if ctx.Ontology == nil || ctx.Table == nil || len(ctx.Candidates) == 0 {
		return nil, false
	}
	estimate, ok := recognizer.EstimateRecordCount(ctx.Ontology, ctx.Table)
	if !ok {
		return nil, false
	}
	scores := make(map[string]float64, len(ctx.Candidates))
	for _, c := range ctx.Candidates {
		scores[c.Name] = math.Abs(float64(c.Count) - estimate)
	}
	return rankByScore(scores, true), true
}
