package heuristic

// DefaultSeparatorList is the paper's ordered list of identifiable separator
// tags (§4.2), compiled by the authors from one hundred documents across ten
// sites: the most commonly used record-separator tags, most common first.
var DefaultSeparatorList = []string{
	"hr", "tr", "td", "a", "table", "p", "br", "h4", "h1", "strong", "b", "i",
}

// IT is the identifiable-"separator"-tags heuristic (§4.2): candidate tags
// are ranked by their position in a predetermined list of tags that authors
// and authoring tools commonly use to separate records. Candidates not on
// the list are discarded.
type IT struct {
	// List overrides the separator list; nil uses DefaultSeparatorList.
	List []string
}

// Name returns "IT".
func (IT) Name() string { return "IT" }

// Rank orders candidates by list position; tags absent from the list are
// dropped. ok is false when no candidate appears on the list.
func (h IT) Rank(ctx *Context) (Ranking, bool) {
	list := h.List
	if list == nil {
		list = DefaultSeparatorList
	}
	index := make(map[string]int, len(list))
	for i, name := range list {
		index[name] = i + 1
	}
	scores := make(map[string]float64)
	for _, c := range ctx.Candidates {
		if i, ok := index[c.Name]; ok {
			scores[c.Name] = float64(i)
		}
	}
	if len(scores) == 0 {
		return nil, false
	}
	return rankByScore(scores, true), true
}
