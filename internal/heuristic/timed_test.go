package heuristic

import (
	"testing"

	"repro/internal/ontology"
	"repro/internal/paperdoc"
	"repro/internal/tagtree"
)

// TestNewContextTimedStages checks every construction stage is reported,
// in order, with its descriptive attributes.
func TestNewContextTimedStages(t *testing.T) {
	tree := tagtree.Parse(paperdoc.Figure2)
	var stages []Stage
	ctx := NewContextTimed(tree, tagtree.DefaultCandidateThreshold,
		ontology.Builtin("obituary"), func(s Stage) { stages = append(stages, s) })

	if len(stages) != 3 {
		t.Fatalf("got %d stages, want 3 (fanout, candidates, recognize)", len(stages))
	}
	for i, want := range []string{"fanout", "candidates", "recognize"} {
		if stages[i].Name != want {
			t.Errorf("stage %d = %s, want %s", i, stages[i].Name, want)
		}
		if stages[i].Duration < 0 {
			t.Errorf("stage %s has negative duration", want)
		}
	}
	attrs := func(s Stage) map[string]string {
		m := map[string]string{}
		for i := 0; i+1 < len(s.Attrs); i += 2 {
			m[s.Attrs[i]] = s.Attrs[i+1]
		}
		return m
	}
	if got := attrs(stages[0]); got["tag"] != ctx.Subtree.Name {
		t.Errorf("fanout tag attr = %q, want %q", got["tag"], ctx.Subtree.Name)
	}
	if got := attrs(stages[1]); got["count"] != "3" {
		t.Errorf("candidates count attr = %q, want 3 (hr, b, br)", got["count"])
	}
}

// TestNewContextTimedNoOntology: without an ontology the recognize stage
// must not run or be reported.
func TestNewContextTimedNoOntology(t *testing.T) {
	tree := tagtree.Parse(paperdoc.Figure2)
	var names []string
	NewContextTimed(tree, tagtree.DefaultCandidateThreshold, nil,
		func(s Stage) { names = append(names, s.Name) })
	if len(names) != 2 || names[0] != "fanout" || names[1] != "candidates" {
		t.Errorf("stages = %v, want [fanout candidates]", names)
	}
}

// TestNewContextTimedMatchesUntimed: observation must not change the result.
func TestNewContextTimedMatchesUntimed(t *testing.T) {
	tree := tagtree.Parse(paperdoc.Figure2)
	plain := NewContext(tree, tagtree.DefaultCandidateThreshold, ontology.Builtin("obituary"))
	timed := NewContextTimed(tree, tagtree.DefaultCandidateThreshold,
		ontology.Builtin("obituary"), func(Stage) {})
	if len(plain.Candidates) != len(timed.Candidates) || plain.Subtree.Name != timed.Subtree.Name {
		t.Errorf("timed context differs: %+v vs %+v", plain.Candidates, timed.Candidates)
	}
}
