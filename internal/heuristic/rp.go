package heuristic

import (
	"math"

	"repro/internal/tagtree"
)

// RP is the repeating-tag-pattern heuristic (§4.4): record boundaries often
// show consistent patterns of two or more adjacent tags (an <hr> immediately
// followed by a <b>, a <br> immediately before an <hr>). For each ordered
// pair of candidate tags <a><b> occurring with no intervening plain text, if
// <a> is the separator then the pair count should be close to the count of
// <a> alone — so tags are scored by the smallest absolute difference between
// any of their pair counts and their own count.
type RP struct {
	// PairFloor is the fraction of the lowest-count candidate's count below
	// which a pair is ignored; 0 means the paper's default of 10%.
	PairFloor float64
}

// Name returns "RP".
func (RP) Name() string { return "RP" }

// Rank counts adjacent candidate-tag pairs in the subtree's event stream,
// keeps pairs whose count exceeds the floor (10% of the lowest-count
// candidate), scores each tag of each kept pair by |count(pair) −
// count(tag)| keeping the best (lowest) score per tag, and ranks ascending.
// ok is false when no pair survives — the paper notes the list may be empty,
// in which case RP "simply does not supply an answer".
func (h RP) Rank(ctx *Context) (Ranking, bool) {
	nc := len(ctx.Candidates)
	if nc == 0 {
		return nil, false
	}
	floor := h.PairFloor
	if floor == 0 {
		floor = 0.10
	}

	pairs, any := adjacentPairs(ctx)
	if !any {
		return nil, false
	}

	lowest := ctx.Candidates[nc-1].Count // candidates sorted by count desc
	cutoff := floor * float64(lowest)

	scores := make(map[string]float64)
	for a := 0; a < nc; a++ {
		for b := 0; b < nc; b++ {
			n := pairs[a*nc+b]
			if n == 0 || float64(n) <= cutoff {
				continue
			}
			for _, k := range [2]int{a, b} {
				c := ctx.Candidates[k]
				d := math.Abs(float64(n) - float64(c.Count))
				if best, ok := scores[c.Name]; !ok || d < best {
					scores[c.Name] = d
				}
			}
		}
	}
	if len(scores) == 0 {
		return nil, false
	}
	return rankByScore(scores, true), true
}

// adjacentPairs scans the subtree's event stream and counts ordered pairs of
// candidate start-tags with no non-whitespace plain text between them, as a
// dense nc×nc matrix indexed by candidate position ([a*nc+b] is the count of
// candidate a immediately followed by candidate b). any is false when no
// pair was observed at all. Intervening end-tags and whitespace do not break
// adjacency — the paper's own example pairs, <hr><b> and <br><hr> in Figure
// 2, span newlines and a </b> respectively.
func adjacentPairs(ctx *Context) (counts []int, any bool) {
	idx := candidateIndex(ctx)
	nc := len(ctx.Candidates)
	counts = make([]int, nc*nc)
	prev := -1 // last candidate start-tag not yet separated by text
	events := ctx.Tree.SubtreeEvents(ctx.Subtree)
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case tagtree.EventText:
			if collapsedTextLen(ctx, events, i) != 0 {
				prev = -1
			}
		case tagtree.EventStart:
			if ev.Node == ctx.Subtree {
				continue
			}
			k, ok := idx[ev.Node.Name]
			if !ok {
				// A non-candidate tag (e.g. an irrelevant h1) interrupts
				// adjacency between candidates.
				prev = -1
				continue
			}
			if prev >= 0 {
				counts[prev*nc+k]++
				any = true
			}
			prev = k
		}
	}
	return counts, any
}
