package heuristic

import (
	"math"

	"repro/internal/tagtree"
)

// RP is the repeating-tag-pattern heuristic (§4.4): record boundaries often
// show consistent patterns of two or more adjacent tags (an <hr> immediately
// followed by a <b>, a <br> immediately before an <hr>). For each ordered
// pair of candidate tags <a><b> occurring with no intervening plain text, if
// <a> is the separator then the pair count should be close to the count of
// <a> alone — so tags are scored by the smallest absolute difference between
// any of their pair counts and their own count.
type RP struct {
	// PairFloor is the fraction of the lowest-count candidate's count below
	// which a pair is ignored; 0 means the paper's default of 10%.
	PairFloor float64
}

// Name returns "RP".
func (RP) Name() string { return "RP" }

// pair is an ordered adjacency of two candidate start-tags.
type pair struct{ a, b string }

// Rank counts adjacent candidate-tag pairs in the subtree's event stream,
// keeps pairs whose count exceeds the floor (10% of the lowest-count
// candidate), scores each tag of each kept pair by |count(pair) −
// count(tag)| keeping the best (lowest) score per tag, and ranks ascending.
// ok is false when no pair survives — the paper notes the list may be empty,
// in which case RP "simply does not supply an answer".
func (h RP) Rank(ctx *Context) (Ranking, bool) {
	if len(ctx.Candidates) == 0 {
		return nil, false
	}
	floor := h.PairFloor
	if floor == 0 {
		floor = 0.10
	}

	pairs := adjacentPairs(ctx)
	if len(pairs) == 0 {
		return nil, false
	}

	lowest := ctx.Candidates[len(ctx.Candidates)-1].Count // candidates sorted by count desc
	cutoff := floor * float64(lowest)

	scores := make(map[string]float64)
	for p, n := range pairs {
		if float64(n) <= cutoff {
			continue
		}
		for _, tag := range []string{p.a, p.b} {
			d := math.Abs(float64(n) - float64(ctx.CandidateCount(tag)))
			if best, ok := scores[tag]; !ok || d < best {
				scores[tag] = d
			}
		}
	}
	if len(scores) == 0 {
		return nil, false
	}
	return rankByScore(scores, true), true
}

// adjacentPairs scans the subtree's event stream and counts ordered pairs of
// candidate start-tags with no non-whitespace plain text between them.
// Intervening end-tags and whitespace do not break adjacency — the paper's
// own example pairs, <hr><b> and <br><hr> in Figure 2, span newlines and a
// </b> respectively.
func adjacentPairs(ctx *Context) map[pair]int {
	candidate := make(map[string]bool, len(ctx.Candidates))
	for _, c := range ctx.Candidates {
		candidate[c.Name] = true
	}
	pairs := make(map[pair]int)
	prev := "" // last candidate start-tag not yet separated by text
	for _, ev := range ctx.Tree.SubtreeEvents(ctx.Subtree) {
		switch ev.Kind {
		case tagtree.EventText:
			if tagtree.CollapseSpace(ev.Text) != "" {
				prev = ""
			}
		case tagtree.EventStart:
			name := ev.Node.Name
			if ev.Node == ctx.Subtree {
				continue
			}
			if !candidate[name] {
				// A non-candidate tag (e.g. an irrelevant h1) interrupts
				// adjacency between candidates.
				prev = ""
				continue
			}
			if prev != "" {
				pairs[pair{prev, name}]++
			}
			prev = name
		}
	}
	return pairs
}
