// Package heuristic implements the paper's five independent record-boundary
// heuristics (Section 4):
//
//	HT — highest-count tags
//	IT — identifiable "separator" tags
//	SD — standard deviation of inter-tag text size
//	RP — repeating-tag pattern
//	OM — ontology matching
//
// Each heuristic ranks the candidate separator tags of a document's
// highest-fan-out subtree; a heuristic may also decline to answer (RP with
// no adjacent pairs, OM without enough record-identifying fields). Rankings
// use competition ranking: tags with equal scores share the better rank.
package heuristic

import (
	"context"
	"sort"
	"strconv"
	"time"

	"repro/internal/faultinject"
	"repro/internal/ontology"
	"repro/internal/recognizer"
	"repro/internal/tagtree"
)

// Context carries everything a heuristic may consult about one document.
// Build it once with NewContext and share it across heuristics — this is
// what keeps the overall process linear: the tag tree, candidate counts, and
// Data-Record Table are each computed in one pass.
type Context struct {
	// Tree is the document's tag tree.
	Tree *tagtree.Tree
	// Subtree is the highest-fan-out subtree's root.
	Subtree *tagtree.Node
	// Candidates are the candidate separator tags with their appearance
	// counts, sorted by descending count.
	Candidates []tagtree.Candidate
	// Ontology is the application ontology; nil disables OM.
	Ontology *ontology.Ontology
	// Table is the Data-Record Table over the subtree's plain text; nil
	// unless an ontology was supplied.
	Table *recognizer.Table
	// SubtreeTextLens caches, aligned with Tree.SubtreeEvents(Subtree), the
	// whitespace-collapsed text length of each text event (zero for tag
	// events). NewContextCtx fills it in one pass so SD and RP — which both
	// need "how much real text is here" per chunk — don't each re-scan
	// every text byte. Contexts assembled by hand may leave it nil; the
	// heuristics then fall back to computing lengths on the fly.
	SubtreeTextLens []int32
}

// NewContext parses nothing itself; it derives the heuristic context from an
// already-built tree. threshold is the candidate-tag cutoff
// (tagtree.DefaultCandidateThreshold for the paper's 10% rule). ont may be
// nil, in which case the OM heuristic will decline to answer.
func NewContext(tree *tagtree.Tree, threshold float64, ont *ontology.Ontology) *Context {
	return NewContextTimed(tree, threshold, ont, nil)
}

// Stage is one timed step of Context construction, reported to the observer
// passed to NewContextTimed. Attrs holds alternating key, value descriptive
// pairs (the winning tag, the candidate count, ...).
type Stage struct {
	Name     string // "fanout", "candidates" or "recognize"
	Duration time.Duration
	Attrs    []string
}

// StageFunc observes one completed stage of context construction.
type StageFunc func(Stage)

// NewContextTimed is NewContext with per-stage observation: each derivation
// step — highest-fan-out search, candidate extraction, and (with an
// ontology) Data-Record Table recognition — is timed and reported to
// onStage. A nil onStage skips all bookkeeping; this is the hook the
// pipeline's observability layer uses for trace spans and stage-latency
// histograms.
func NewContextTimed(tree *tagtree.Tree, threshold float64, ont *ontology.Ontology, onStage StageFunc) *Context {
	hctx, err := NewContextCtx(context.Background(), tree, threshold, ont, onStage, nil)
	if err != nil {
		// Unreachable: a background context never cancels and a nil fault
		// set never fires.
		panic("heuristic: context build failed without cancellation: " + err.Error())
	}
	return hctx
}

// NewContextCtx is NewContextTimed with cancellation and fault injection:
// the Data-Record Table recognition — the expensive step — honors ctx and
// the test-only fault set (see internal/faultinject), so a hung-up caller
// stops paying for recognition and chaos tests can force failures here. It
// returns ctx's error when canceled and the recognizer's error when a
// chunk-scan fault fires.
func NewContextCtx(ctx context.Context, tree *tagtree.Tree, threshold float64, ont *ontology.Ontology, onStage StageFunc, faults *faultinject.Set) (*Context, error) {
	start := time.Now()
	sub := tree.HighestFanOut()
	if onStage != nil {
		onStage(Stage{Name: "fanout", Duration: time.Since(start), Attrs: []string{
			"tag", sub.Name, "fan_out", strconv.Itoa(sub.FanOut()),
		}})
		start = time.Now()
	}
	events := tree.SubtreeEvents(sub)
	lens := make([]int32, len(events))
	for i := range events {
		if ev := &events[i]; ev.Kind == tagtree.EventText {
			lens[i] = int32(tagtree.CollapsedLen(ev.Text))
		}
	}
	hctx := &Context{
		Tree:            tree,
		Subtree:         sub,
		Candidates:      tagtree.Candidates(sub, threshold),
		Ontology:        ont,
		SubtreeTextLens: lens,
	}
	if onStage != nil {
		onStage(Stage{Name: "candidates", Duration: time.Since(start), Attrs: []string{
			"count", strconv.Itoa(len(hctx.Candidates)),
		}})
		start = time.Now()
	}
	if ont != nil {
		table, err := recognizer.RecognizeContext(ctx, ont, tree, sub, faults)
		if err != nil {
			return nil, err
		}
		hctx.Table = table
		if onStage != nil {
			onStage(Stage{Name: "recognize", Duration: time.Since(start), Attrs: []string{
				"entries", strconv.Itoa(hctx.Table.Len()),
			}})
		}
	}
	return hctx, nil
}

// CandidateCount returns the appearance count of the named candidate tag,
// or 0 if the tag is not a candidate.
func (c *Context) CandidateCount(name string) int {
	for _, cand := range c.Candidates {
		if cand.Name == name {
			return cand.Count
		}
	}
	return 0
}

// IsCandidate reports whether name is one of the candidate tags.
func (c *Context) IsCandidate(name string) bool {
	return c.CandidateCount(name) > 0
}

// candidateIndex maps each candidate tag name to its position in
// c.Candidates, for heuristics that scan the event stream and want O(1)
// membership tests plus dense per-candidate accumulators instead of
// per-event map traffic.
func candidateIndex(c *Context) map[string]int {
	m := make(map[string]int, len(c.Candidates))
	for i, cand := range c.Candidates {
		m[cand.Name] = i
	}
	return m
}

// collapsedTextLen returns the whitespace-collapsed length of the i-th
// subtree event's text: the cached value when the context carries one, a
// direct scan otherwise.
func collapsedTextLen(c *Context, events []tagtree.Event, i int) int {
	if c.SubtreeTextLens != nil {
		return int(c.SubtreeTextLens[i])
	}
	return tagtree.CollapsedLen(events[i].Text)
}

// Ranked is one entry of a heuristic's answer: a candidate tag, its 1-based
// competition rank, and the heuristic's raw score (meaning varies by
// heuristic; exposed for explainability and tests).
type Ranked struct {
	Tag   string
	Rank  int
	Score float64
}

// Ranking is a heuristic's ordered answer, best first.
type Ranking []Ranked

// RankOf returns the 1-based rank of the tag, or 0 if the ranking does not
// include it.
func (r Ranking) RankOf(tag string) int {
	for _, e := range r {
		if e.Tag == tag {
			return e.Rank
		}
	}
	return 0
}

// Tags returns the ranked tag names, best first.
func (r Ranking) Tags() []string {
	out := make([]string, len(r))
	for i, e := range r {
		out[i] = e.Tag
	}
	return out
}

// ToMap converts the ranking to tag → rank form for certainty combination.
func (r Ranking) ToMap() map[string]int {
	out := make(map[string]int, len(r))
	for _, e := range r {
		out[e.Tag] = e.Rank
	}
	return out
}

// Heuristic is one of the paper's five individual heuristics.
type Heuristic interface {
	// Name returns the paper's two-letter abbreviation (OM, RP, SD, IT, HT).
	Name() string
	// Rank orders the candidate tags best-first. ok is false when the
	// heuristic cannot supply an answer for this document.
	Rank(ctx *Context) (r Ranking, ok bool)
}

// All returns the five heuristics in the paper's ORSIH order.
func All() []Heuristic {
	return []Heuristic{OM{}, RP{}, SD{}, IT{}, HT{}}
}

// ByName returns the named heuristic (OM, RP, SD, IT, HT), or nil.
func ByName(name string) Heuristic {
	for _, h := range All() {
		if h.Name() == name {
			return h
		}
	}
	return nil
}

// rankByScore sorts scored tags ascending (lower score is better when
// ascending is true, higher when false) and assigns competition ranks: tags
// with equal scores share a rank and the next distinct score skips the
// intervening positions (1, 2, 2, 4). Score ties are ordered by tag name for
// determinism.
func rankByScore(scores map[string]float64, ascending bool) Ranking {
	tags := make([]string, 0, len(scores))
	for t := range scores {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool {
		si, sj := scores[tags[i]], scores[tags[j]]
		if si != sj {
			if ascending {
				return si < sj
			}
			return si > sj
		}
		return tags[i] < tags[j]
	})
	out := make(Ranking, len(tags))
	for i, t := range tags {
		rank := i + 1
		if i > 0 && scores[t] == scores[tags[i-1]] {
			rank = out[i-1].Rank
		}
		out[i] = Ranked{Tag: t, Rank: rank, Score: scores[t]}
	}
	return out
}
