package heuristic

import "repro/internal/recognizer"

// This file exposes each heuristic's intermediate evidence for debugging,
// UI explanations, and tests — the quantities the paper discusses when
// walking through its Figure 2 example.

// Pair is an ordered adjacency of two candidate start-tags (RP's unit of
// evidence): First occurs immediately before Second with no intervening
// plain text.
type Pair struct {
	First, Second string
}

// RPPairs returns RP's adjacency counts for the document: how many times
// each ordered candidate pair occurs at a potential boundary. For the
// paper's Figure 2, RPPairs yields {hr b}:2 and {br hr}:2.
func RPPairs(ctx *Context) map[Pair]int {
	counts, _ := adjacentPairs(ctx)
	nc := len(ctx.Candidates)
	out := make(map[Pair]int)
	for a := 0; a < nc; a++ {
		for b := 0; b < nc; b++ {
			if n := counts[a*nc+b]; n > 0 {
				out[Pair{First: ctx.Candidates[a].Name, Second: ctx.Candidates[b].Name}] = n
			}
		}
	}
	return out
}

// SDIntervals returns, per candidate tag, the plain-text character counts
// between its consecutive occurrences — the samples whose standard
// deviation SD ranks by.
func SDIntervals(ctx *Context) map[string][]float64 {
	intervals := intervalLengths(ctx)
	out := make(map[string][]float64, len(ctx.Candidates))
	for i, c := range ctx.Candidates {
		if len(intervals[i]) > 0 {
			out[c.Name] = intervals[i]
		}
	}
	return out
}

// OMEstimate returns the record-count estimate OM ranks against (the mean
// indicator count of the ontology's record-identifying fields). ok is false
// when OM would decline (no ontology/table, or fewer than three
// record-identifying fields).
func OMEstimate(ctx *Context) (estimate float64, ok bool) {
	if ctx.Ontology == nil || ctx.Table == nil {
		return 0, false
	}
	return recognizer.EstimateRecordCount(ctx.Ontology, ctx.Table)
}

// DeclineReason reconstructs why the named heuristic declined to answer on
// this context, in the terms the paper uses for each heuristic's
// no-answer case. It returns "" for heuristics that would not have declined
// (the caller is then looking at an isolated failure or an injected fault,
// not a genuine decline) and for unknown names.
func DeclineReason(name string, ctx *Context) string {
	if len(ctx.Candidates) == 0 {
		return "no candidate separator tags"
	}
	switch name {
	case "OM":
		switch {
		case ctx.Ontology == nil:
			return "no ontology supplied"
		case ctx.Table == nil:
			return "no data-record table built"
		default:
			if _, ok := recognizer.EstimateRecordCount(ctx.Ontology, ctx.Table); !ok {
				return "fewer than three record-identifying fields matched"
			}
		}
	case "RP":
		if _, any := adjacentPairs(ctx); !any {
			return "no adjacent candidate start-tag pairs"
		}
		return "no tag pair above the pair-count floor"
	case "IT":
		return "no candidate on the identifiable-separator list"
	}
	return ""
}
