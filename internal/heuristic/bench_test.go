package heuristic

import (
	"testing"

	"repro/internal/ontology"
	"repro/internal/tagtree"
)

// benchContext builds a shared context over a mid-sized page once.
func benchContext(b *testing.B) *Context {
	b.Helper()
	doc := buildDoc(randomRecords(5, 40))
	return NewContext(tagtree.Parse(doc), tagtree.DefaultCandidateThreshold, ontology.Builtin("obituary"))
}

// BenchmarkHeuristics measures each heuristic's marginal ranking cost over
// an already-built context — the per-heuristic slice of the paper's O(n)
// budget (context construction, which includes the OM recognition pass, is
// measured separately below).
func BenchmarkHeuristics(b *testing.B) {
	ctx := benchContext(b)
	for _, h := range All() {
		b.Run(h.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := h.Rank(ctx); !ok {
					b.Fatalf("%s declined", h.Name())
				}
			}
		})
	}
}

// BenchmarkNewContext measures context construction with and without the
// ontology — the difference is the Data-Record-Table recognition cost the
// paper's O(d) argument amortizes away.
func BenchmarkNewContext(b *testing.B) {
	doc := buildDoc(randomRecords(5, 40))
	tree := tagtree.Parse(doc)
	b.Run("structural", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			NewContext(tree, tagtree.DefaultCandidateThreshold, nil)
		}
	})
	b.Run("with-ontology", func(b *testing.B) {
		ont := ontology.Builtin("obituary")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			NewContext(tree, tagtree.DefaultCandidateThreshold, ont)
		}
	})
}
