package heuristic

// HT is the highest-count-tags heuristic (§4.1): candidate tags are ranked
// in descending order of their appearance count in the highest-fan-out
// subtree. When a document has many records, the separator necessarily
// appears many times, so it tends to rank high — but tags used repeatedly
// inside records (bold field labels, line breaks) outrank it just as easily,
// which is why HT is the weakest individual heuristic in the paper's
// experiments (Table 10: 45%).
type HT struct{}

// Name returns "HT".
func (HT) Name() string { return "HT" }

// Rank orders candidates by descending appearance count. HT always answers
// when at least one candidate exists.
func (HT) Rank(ctx *Context) (Ranking, bool) {
	if len(ctx.Candidates) == 0 {
		return nil, false
	}
	scores := make(map[string]float64, len(ctx.Candidates))
	for _, c := range ctx.Candidates {
		scores[c.Name] = float64(c.Count)
	}
	return rankByScore(scores, false), true
}
