package heuristic

// Table-driven edge-case coverage for all five heuristics on one shared set
// of degenerate documents: empty/tagless input (every heuristic must
// decline), a single candidate tag, candidates that force individual
// heuristics to decline (RP without adjacent pairs, IT without listed tags,
// SD with too few occurrences), and symmetric documents where two tags tie
// and must share competition rank 1 in deterministic name order.

import (
	"testing"

	"repro/internal/ontology"
	"repro/internal/tagtree"
)

// symmetricXY has two candidate tags with identical counts, identical
// inter-occurrence text sizes, no adjacent candidate pairs, and names absent
// from IT's separator list — the maximal two-way tie.
const symmetricXY = "<div><x>aa</x><y>bb</y><x>cc</x><y>dd</y><x>ee</x><y>ff</y></div>"

func TestHeuristicEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		ont  *ontology.Ontology
		// want maps heuristic name to its expected ranking (space-joined
		// tags, best first); a heuristic absent from the map must decline.
		want map[string]string
		// tiedAtTop lists heuristics whose first two entries must share
		// competition rank 1.
		tiedAtTop []string
	}{
		{
			name: "EmptyDocument",
			doc:  "",
		},
		{
			name: "TaglessDocument",
			doc:  "plain text, not a web document at all",
		},
		{
			// One candidate: RP finds no adjacent pairs (text between every
			// occurrence) and OM has no ontology; the rest rank the only tag.
			name: "SingleCandidateTag",
			doc:  "<div><p>one</p><p>two</p><p>three</p></div>",
			want: map[string]string{"SD": "p", "IT": "p", "HT": "p"},
		},
		{
			// q occurs twice — a single interval, no spread to measure — so
			// SD ranks it after p; IT discards it (not on the list).
			name: "TooFewOccurrencesForSpread",
			doc:  "<div><p>aaa</p><q>b</q><p>ccc</p><q>d</q><p>eee</p></div>",
			want: map[string]string{"SD": "p q", "IT": "p", "HT": "p q"},
		},
		{
			// Without an ontology only the always-answer heuristics reply,
			// and the document's symmetry ties x and y under both.
			name:      "TwoTagTie",
			doc:       symmetricXY,
			want:      map[string]string{"SD": "x y", "HT": "x y"},
			tiedAtTop: []string{"SD", "HT"},
		},
		{
			// With an ontology that matches none of the content, OM answers
			// from a zero-record estimate and inherits the same tie.
			name:      "TwoTagTieOntologyWithoutMatches",
			doc:       symmetricXY,
			ont:       ontology.Builtin("obituary"),
			want:      map[string]string{"OM": "x y", "SD": "x y", "HT": "x y"},
			tiedAtTop: []string{"OM", "SD", "HT"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tree := tagtree.Parse(tc.doc)
			ctx := NewContext(tree, tagtree.DefaultCandidateThreshold, tc.ont)
			for _, h := range All() {
				r, ok := h.Rank(ctx)
				want, shouldAnswer := tc.want[h.Name()]
				if !shouldAnswer {
					if ok {
						t.Errorf("%s answered %v, want decline", h.Name(), r.Tags())
					}
					continue
				}
				if !ok {
					t.Errorf("%s declined, want ranking %q", h.Name(), want)
					continue
				}
				if got := rankingString(r); got != want {
					t.Errorf("%s ranking = %q, want %q (scores: %+v)", h.Name(), got, want, r)
				}
			}
			for _, name := range tc.tiedAtTop {
				r, ok := ByName(name).Rank(ctx)
				if !ok || len(r) < 2 {
					t.Errorf("%s: no two-entry ranking to tie: %+v", name, r)
					continue
				}
				if r[0].Rank != 1 || r[1].Rank != 1 {
					t.Errorf("%s ranks = %d,%d, want shared competition rank 1 (%+v)",
						name, r[0].Rank, r[1].Rank, r)
				}
			}
		})
	}
}
