package heuristic

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ontology"
	"repro/internal/tagtree"
)

// buildDoc renders records (given as inner-HTML fragments) into an
// hr-delimited page.
func buildDoc(records []string) string {
	var b strings.Builder
	b.WriteString("<html><body><div>\n")
	for _, rec := range records {
		b.WriteString("<hr>")
		b.WriteString(rec)
		b.WriteByte('\n')
	}
	b.WriteString("<hr></div></body></html>")
	return b.String()
}

// randomRecords produces n obituary-ish fragments from a seeded source.
func randomRecords(seed int64, n int) []string {
	r := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		var b strings.Builder
		fmt.Fprintf(&b, "<b>Person %c. Number%d</b> died on March %d, 1998. ",
			'A'+rune(r.Intn(26)), i, 1+r.Intn(28))
		for w := 0; w < 5+r.Intn(20); w++ {
			b.WriteString("word ")
		}
		if r.Intn(2) == 0 {
			b.WriteString("<br> ")
		}
		// Vary the bold count per record: a tag appearing exactly once per
		// record is indistinguishable from the separator (see sites.go).
		if r.Intn(2) == 0 {
			b.WriteString("<b>MEMORIAL CHAPEL</b>. ")
		}
		b.WriteString("Funeral services will be held. Interment will follow. ")
		out[i] = b.String()
	}
	return out
}

// TestHeuristicsDeterministic: ranking the same document twice gives
// identical results for every heuristic.
func TestHeuristicsDeterministic(t *testing.T) {
	doc := buildDoc(randomRecords(42, 15))
	for _, h := range All() {
		ctx1 := NewContext(tagtree.Parse(doc), tagtree.DefaultCandidateThreshold, ontology.Builtin("obituary"))
		ctx2 := NewContext(tagtree.Parse(doc), tagtree.DefaultCandidateThreshold, ontology.Builtin("obituary"))
		r1, ok1 := h.Rank(ctx1)
		r2, ok2 := h.Rank(ctx2)
		if ok1 != ok2 || !reflect.DeepEqual(r1, r2) {
			t.Errorf("%s not deterministic:\n %+v\n %+v", h.Name(), r1, r2)
		}
	}
}

// TestRecordPermutationInvariance: HT, IT, and OM depend only on tag counts
// and content counts, so permuting record order must not change their
// rankings. (SD and RP observe sequences, so they are legitimately
// order-sensitive and excluded.)
func TestRecordPermutationInvariance(t *testing.T) {
	records := randomRecords(7, 12)
	shuffled := append([]string(nil), records...)
	rand.New(rand.NewSource(99)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	ont := ontology.Builtin("obituary")
	ctxA := NewContext(tagtree.Parse(buildDoc(records)), tagtree.DefaultCandidateThreshold, ont)
	ctxB := NewContext(tagtree.Parse(buildDoc(shuffled)), tagtree.DefaultCandidateThreshold, ont)
	for _, h := range []Heuristic{HT{}, IT{}, OM{}} {
		rA, okA := h.Rank(ctxA)
		rB, okB := h.Rank(ctxB)
		if okA != okB || !reflect.DeepEqual(rA, rB) {
			t.Errorf("%s changed under record permutation:\n %+v\n %+v", h.Name(), rA, rB)
		}
	}
}

// TestHTScoreIsExactlyTheCount cross-checks HT against raw tag counts.
func TestHTScoreIsExactlyTheCount(t *testing.T) {
	doc := buildDoc(randomRecords(3, 10))
	tree := tagtree.Parse(doc)
	ctx := NewContext(tree, tagtree.DefaultCandidateThreshold, nil)
	counts := tagtree.TagCounts(ctx.Subtree)
	r, ok := HT{}.Rank(ctx)
	if !ok {
		t.Fatal("HT declined")
	}
	for _, e := range r {
		if int(e.Score) != counts[e.Tag] {
			t.Errorf("HT score for %s = %v, tag count = %d", e.Tag, e.Score, counts[e.Tag])
		}
	}
}

// TestSDIntervalsSumToTotalText: for a tag occurring at positions
// p1..pk, the intervals partition the text between p1 and pk.
func TestSDIntervalsSumToTotalText(t *testing.T) {
	doc := "<div><sep>aaaa<x>bbbb<sep>cc<sep>dddddd<sep></div>"
	ctx := NewContext(tagtree.Parse(doc), 0, nil)
	intervals := SDIntervals(ctx)
	sum := 0.0
	for _, iv := range intervals["sep"] {
		sum += iv
	}
	// Text between first and last sep: "aaaa"+"bbbb"+"cc"+"dddddd" = 16.
	if sum != 16 {
		t.Errorf("sep interval sum = %v, want 16 (%v)", sum, intervals["sep"])
	}
	if len(intervals["sep"]) != 3 {
		t.Errorf("sep intervals = %d, want 3", len(intervals["sep"]))
	}
}

// TestRPPairsExplainAPI: the exported pair counts match the paper's Figure 2
// numbers.
func TestRPPairsExplainAPI(t *testing.T) {
	ctx := figure2Context(t)
	pairs := RPPairs(ctx)
	if pairs[Pair{"hr", "b"}] != 2 || pairs[Pair{"br", "hr"}] != 2 {
		t.Errorf("pairs = %v", pairs)
	}
}

// TestOMEstimateExplainAPI: the exported estimate matches Figure 2's three
// records.
func TestOMEstimateExplainAPI(t *testing.T) {
	ctx := figure2Context(t)
	est, ok := OMEstimate(ctx)
	if !ok || est != 3.0 {
		t.Errorf("estimate = %v ok=%v, want 3.0", est, ok)
	}
	bare := NewContext(ctx.Tree, tagtree.DefaultCandidateThreshold, nil)
	if _, ok := OMEstimate(bare); ok {
		t.Error("estimate should be unavailable without an ontology")
	}
}

// TestMoreRecordsImproveSeparatorCertainty: with more records, the compound
// result for the separator should not get worse — the evidence only
// accumulates. (Checked via the individual heuristics still ranking hr
// first at several scales.)
func TestSeparatorStableAcrossScales(t *testing.T) {
	ont := ontology.Builtin("obituary")
	for _, n := range []int{4, 8, 16, 32, 64} {
		doc := buildDoc(randomRecords(11, n))
		ctx := NewContext(tagtree.Parse(doc), tagtree.DefaultCandidateThreshold, ont)
		for _, h := range []Heuristic{OM{}, IT{}, SD{}} {
			r, ok := h.Rank(ctx)
			if !ok {
				t.Fatalf("n=%d: %s declined", n, h.Name())
			}
			if r.RankOf("hr") != 1 {
				t.Errorf("n=%d: %s ranked hr at %d: %+v", n, h.Name(), r.RankOf("hr"), r)
			}
		}
	}
}

// TestRankingContract: every heuristic's answer over real corpus documents
// obeys the ranking contract — ranks start at 1, are competition-assigned
// (equal scores share a rank, the next distinct score skips positions), and
// every ranked tag is a candidate.
func TestRankingContract(t *testing.T) {
	docs := []string{
		buildDoc(randomRecords(1, 10)),
		buildDoc(randomRecords(2, 25)),
	}
	for _, doc := range docs {
		ctx := NewContext(tagtree.Parse(doc), tagtree.DefaultCandidateThreshold, ontology.Builtin("obituary"))
		candidates := map[string]bool{}
		for _, c := range ctx.Candidates {
			candidates[c.Name] = true
		}
		for _, h := range All() {
			r, ok := h.Rank(ctx)
			if !ok {
				continue
			}
			if len(r) == 0 {
				t.Fatalf("%s returned ok with an empty ranking", h.Name())
			}
			if r[0].Rank != 1 {
				t.Errorf("%s first rank = %d, want 1", h.Name(), r[0].Rank)
			}
			for i := 1; i < len(r); i++ {
				prev, cur := r[i-1], r[i]
				switch {
				case cur.Score == prev.Score && cur.Rank != prev.Rank:
					t.Errorf("%s: equal scores ranked %d and %d", h.Name(), prev.Rank, cur.Rank)
				case cur.Score != prev.Score && cur.Rank != i+1:
					t.Errorf("%s: rank %d at position %d (competition ranking expects %d)",
						h.Name(), cur.Rank, i, i+1)
				}
			}
			for _, e := range r {
				if !candidates[e.Tag] {
					t.Errorf("%s ranked non-candidate %q", h.Name(), e.Tag)
				}
			}
		}
	}
}
