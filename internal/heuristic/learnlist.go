package heuristic

import "sort"

// LearnSeparatorList reproduces how the paper's authors built the IT
// heuristic's list (§4.2): "By looking at these documents and keeping track
// of separator tags and how often authors use these tags to separate
// records, we can create an ordered list of the most commonly used tags
// that separate records of interest in Web documents."
//
// Each observation is one document's set of correct separator tags; the
// result orders tags by how many documents used them as a separator, most
// common first (ties broken alphabetically for determinism). Feeding the
// learned list to IT{List: ...} closes the loop: the heuristic's prior can
// be re-derived from labelled data rather than copied from the paper.
func LearnSeparatorList(observations [][]string) []string {
	counts := map[string]int{}
	for _, seps := range observations {
		seen := map[string]bool{}
		for _, tag := range seps {
			if tag == "" || seen[tag] {
				continue
			}
			seen[tag] = true
			counts[tag]++
		}
	}
	out := make([]string, 0, len(counts))
	for tag := range counts {
		out = append(out, tag)
	}
	sort.Slice(out, func(i, j int) bool {
		if counts[out[i]] != counts[out[j]] {
			return counts[out[i]] > counts[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
