// Package paperdoc holds the paper's Figure 2(a) sample document — an
// October 1998 funeral-notices page with three obituaries — reconstructed
// with realistic filler text where the paper shows ellipses.
//
// The document is the paper's running example and the source of its §5.3
// worked results, all of which this codebase reproduces exactly:
//
//	candidates:  hr (4), b (8), br (5); h1 is irrelevant
//	OM ranking:  hr, br, b
//	RP ranking:  hr, br, b   (pairs <hr><b> = 2, <br><hr> = 2)
//	SD ranking:  hr, b, br
//	IT ranking:  hr, br, b
//	HT ranking:  b, br, hr
//	ORSIH:       hr 99.96%, b 64.75%, br 56.34%
package paperdoc

// Figure2 is the reconstructed Figure 2(a) document. The tag skeleton —
// every HTML tag and its order — is exactly the paper's; only the prose
// behind the ellipses is reconstructed. The filler is sized so that the
// three records have nearly equal plain-text length (giving <hr> the
// smallest standard deviation, as in the paper) while the <b> and <br>
// inter-occurrence intervals vary (SD ranks b second and br third).
const Figure2 = `<html><head><title>Classifieds</title></head>
<body bgcolor="#FFFFFF">
<table><tr><td>
<h1 align="left">Funeral Notices - </h1> October 1, 1998
<hr>
<b>Lemar K. Adamson</b><br> died on September 30, 1998. Lemar was born on September 5, 1913 in Spring City, a son of Knud and Hannah Adamson. He married Phyllis Jensen on June 4, 1937. He served honorably and was a lifelong member of his
church. Services will be held Saturday at <b>MEMORIAL CHAPEL</b>, where friends may call one hour prior. Interment will follow in the city cemetery with military honors accorded graveside.<br>
<hr>
Our beloved <b>Brian Fielding Frost</b>, age 41, passed away on September 30, 1998, in a tragic accident. Brian was born May 12, 1957 in Tucson. He is survived by his wife Anne and their four children. Funeral services will be
held at noon on Friday in the <b>Howard Stake Center</b>,
<b>Carrillo's Tucson Mortuary</b>, directing. Friends may call Thursday evening. Interment,
Holy Hope Cemetery<br>, where the family will gather following the services on Friday afternoon.
<hr>
<b>Leonard Kenneth Gunther</b><br> passed away on September 30, 1998. Leonard was born March 3, 1921 in Ogden, the second of six children. He worked forty years for the railroad and is survived by three sons. Friends may call Monday evening at <b>HEATHER MORTUARY</b>, from six until eight. Funeral services will be held
Tuesday at 11:00 a.m. at <b>HEATHER MORTUARY</b>, on
Tuesday, October 6, 1998. Interment will follow at the Ogden city cemetery beside his wife.<br>
<hr>
</td></tr></table>
All material is copyrighted.
</body>
</html>`

// TreeShape is the expected tag tree of Figure2 in a compact nested-paren
// notation (names only), matching the paper's Figure 2(b).
const TreeShape = "#document(html(head(title) body(table(tr(td(h1 hr b br b br hr b b b br hr b br b b br hr))))))"
