package reldb

import (
	"strconv"
	"strings"
	"testing"
)

// adsDB builds a small car-ads table for query tests.
func adsDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	if err := db.Create(Schema{
		Table: "CarAd",
		Columns: []Column{
			{Name: "id"}, {Name: "Make", Nullable: true},
			{Name: "Price", Nullable: true}, {Name: "Year", Nullable: true},
		},
		Key: []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
	rows := []struct{ id, make_, price, year string }{
		{"1", "Ford", "$4,500", "1994"},
		{"2", "Honda", "$2,900", "1991"},
		{"3", "Toyota", "$11,200", "1997"},
		{"4", "Ford", "$1,850", "1989"},
		{"5", "Ford", "", "1996"},
	}
	for _, r := range rows {
		vals := map[string]Value{"id": V(r.id), "Make": V(r.make_), "Year": V(r.year)}
		if r.price != "" {
			vals["Price"] = V(r.price)
		}
		if err := db.Insert("CarAd", vals); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func ids(rows []Row) string {
	var out []string
	for _, r := range rows {
		out = append(out, r.Get("id").Str)
	}
	return strings.Join(out, ",")
}

func TestQueryWhereEq(t *testing.T) {
	db := adsDB(t)
	rows := db.Table("CarAd").Query().Where("Make", Eq, "Ford").Rows()
	if got := ids(rows); got != "1,4,5" {
		t.Errorf("fords = %s", got)
	}
}

func TestQueryWhereNumericComparison(t *testing.T) {
	db := adsDB(t)
	// "$4,500" must compare numerically: under $5,000 means ads 1, 2, 4.
	rows := db.Table("CarAd").Query().Where("Price", Lt, "$5,000").Rows()
	if got := ids(rows); got != "1,2,4" {
		t.Errorf("cheap ads = %s", got)
	}
	rows = db.Table("CarAd").Query().Where("Year", Ge, "1994").Rows()
	if got := ids(rows); got != "1,3,5" {
		t.Errorf("recent ads = %s", got)
	}
}

func TestQueryWhereContainsAndNe(t *testing.T) {
	db := adsDB(t)
	if got := ids(db.Table("CarAd").Query().Where("Make", Contains, "o").Rows()); got != "1,2,3,4,5" {
		t.Errorf("contains-o = %s", got)
	}
	if got := ids(db.Table("CarAd").Query().Where("Make", Ne, "Ford").Rows()); got != "2,3" {
		t.Errorf("non-fords = %s", got)
	}
}

func TestQueryNullHandling(t *testing.T) {
	db := adsDB(t)
	// Ad 5 has NULL price: excluded by comparisons and by WhereNotNull.
	if got := ids(db.Table("CarAd").Query().Where("Price", Gt, "0").Rows()); strings.Contains(got, "5") {
		t.Errorf("NULL price matched a comparison: %s", got)
	}
	if got := db.Table("CarAd").Query().WhereNotNull("Price").Count(); got != 4 {
		t.Errorf("non-null prices = %d", got)
	}
}

func TestQueryOrderByNumeric(t *testing.T) {
	db := adsDB(t)
	rows := db.Table("CarAd").Query().WhereNotNull("Price").OrderBy("Price").Rows()
	if got := ids(rows); got != "4,2,1,3" {
		t.Errorf("by price = %s", got)
	}
	rows = db.Table("CarAd").Query().WhereNotNull("Price").OrderByDesc("Price").Rows()
	if got := ids(rows); got != "3,1,2,4" {
		t.Errorf("by price desc = %s", got)
	}
}

func TestQueryOrderByNullsFirst(t *testing.T) {
	db := adsDB(t)
	rows := db.Table("CarAd").Query().OrderBy("Price").Rows()
	if rows[0].Get("id").Str != "5" {
		t.Errorf("NULL should sort first ascending: %s", ids(rows))
	}
}

func TestQueryLimitOffset(t *testing.T) {
	db := adsDB(t)
	q := func() *Query { return db.Table("CarAd").Query().OrderBy("id") }
	if got := ids(q().Limit(2).Rows()); got != "1,2" {
		t.Errorf("limit = %s", got)
	}
	if got := ids(q().Offset(3).Rows()); got != "4,5" {
		t.Errorf("offset = %s", got)
	}
	if got := q().Offset(99).Rows(); got != nil {
		t.Errorf("overshoot offset = %v", got)
	}
	if got := ids(q().Limit(-1).Rows()); got != "1,2,3,4,5" {
		t.Errorf("unlimited = %s", got)
	}
}

func TestQueryChainedPredicates(t *testing.T) {
	db := adsDB(t)
	rows := db.Table("CarAd").Query().
		Where("Make", Eq, "Ford").
		WhereNotNull("Price").
		Where("Price", Lt, "$2,000").
		Rows()
	if got := ids(rows); got != "4" {
		t.Errorf("cheap fords = %s", got)
	}
}

func TestQueryWhereFunc(t *testing.T) {
	db := adsDB(t)
	rows := db.Table("CarAd").Query().WhereFunc(func(r Row) bool {
		return len(r.Get("Make").Str) == 4 // Ford only
	}).Rows()
	if got := ids(rows); got != "1,4,5" {
		t.Errorf("func filter = %s", got)
	}
}

func TestQueryMinBy(t *testing.T) {
	db := adsDB(t)
	row, ok := db.Table("CarAd").Query().MinBy("Price")
	if !ok || row.Get("id").Str != "4" {
		t.Errorf("cheapest = %v ok=%v", row.Get("id"), ok)
	}
	_, ok = db.Table("CarAd").Query().Where("Make", Eq, "Nobody").MinBy("Price")
	if ok {
		t.Error("MinBy on empty result should report !ok")
	}
}

func TestQuerySumBy(t *testing.T) {
	db := adsDB(t)
	sum := db.Table("CarAd").Query().Where("Make", Eq, "Ford").SumBy("Price")
	if sum != 4500+1850 {
		t.Errorf("ford price sum = %v", sum)
	}
}

func TestQueryGroupCount(t *testing.T) {
	db := adsDB(t)
	groups := db.Table("CarAd").Query().GroupCount("Make")
	if groups["Ford"] != 3 || groups["Honda"] != 1 || groups["Toyota"] != 1 {
		t.Errorf("groups = %v", groups)
	}
}

func TestParseNumeric(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"$4,500", 4500, true},
		{"78,000", 78000, true},
		{"1994", 1994, true},
		{" 12.5 ", 12.5, true},
		{"", 0, false},
		{"Ford", 0, false},
		{"$", 0, false},
	}
	for _, c := range cases {
		got, ok := parseNumeric(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("parseNumeric(%q) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestQueryString(t *testing.T) {
	db := adsDB(t)
	s := db.Table("CarAd").Query().Where("Make", Eq, "Ford").OrderBy("Price").String()
	if !strings.Contains(s, "CarAd") || !strings.Contains(s, "1 preds") {
		t.Errorf("String = %q", s)
	}
}

// BenchmarkQuery measures the fluent query path over a mid-sized table.
func BenchmarkQuery(b *testing.B) {
	db := New()
	if err := db.Create(Schema{
		Table:   "T",
		Columns: []Column{{Name: "id"}, {Name: "k", Nullable: true}, {Name: "v", Nullable: true}},
		Key:     []string{"id"},
	}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := db.Insert("T", map[string]Value{
			"id": V(strconv.Itoa(i)),
			"k":  V(strconv.Itoa(i % 7)),
			"v":  V("$" + strconv.Itoa(i*13%9000)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := db.Table("T").Query().
			Where("k", Eq, "3").
			WhereNotNull("v").
			OrderBy("v").
			Limit(10).
			Rows()
		if len(rows) != 10 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}
