package reldb

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func widgetSchema() Schema {
	return Schema{
		Table: "Widget",
		Columns: []Column{
			{Name: "id", Type: "int"},
			{Name: "name", Type: "text"},
			{Name: "color", Type: "text", Nullable: true},
		},
		Key: []string{"id"},
	}
}

func newWidgetDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	if err := db.Create(widgetSchema()); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateAndInsert(t *testing.T) {
	db := newWidgetDB(t)
	err := db.Insert("Widget", map[string]Value{"id": V("1"), "name": V("sprocket")})
	if err != nil {
		t.Fatal(err)
	}
	tab := db.Table("Widget")
	if tab.Len() != 1 {
		t.Fatalf("len = %d", tab.Len())
	}
	row := tab.Select(nil)[0]
	if row.Get("name").Str != "sprocket" {
		t.Errorf("name = %v", row.Get("name"))
	}
	if !row.Get("color").Null {
		t.Errorf("missing nullable column should be NULL")
	}
}

func TestCreateErrors(t *testing.T) {
	db := newWidgetDB(t)
	cases := []struct {
		name string
		s    Schema
		want string
	}{
		{"duplicate table", widgetSchema(), "already exists"},
		{"empty name", Schema{}, "empty table name"},
		{"unnamed column", Schema{Table: "X", Columns: []Column{{}}}, "unnamed column"},
		{"duplicate column", Schema{Table: "X", Columns: []Column{{Name: "a"}, {Name: "a"}}}, "duplicate column"},
		{"bad key", Schema{Table: "X", Columns: []Column{{Name: "a"}}, Key: []string{"z"}}, "does not exist"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := db.Create(c.s)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestInsertErrors(t *testing.T) {
	db := newWidgetDB(t)
	if err := db.Insert("Nope", nil); err == nil {
		t.Error("insert into missing table should fail")
	}
	if err := db.Insert("Widget", map[string]Value{"id": V("1"), "name": V("a"), "bogus": V("x")}); err == nil {
		t.Error("insert with unknown column should fail")
	}
	if err := db.Insert("Widget", map[string]Value{"id": V("1")}); err == nil {
		t.Error("NOT NULL violation should fail")
	}
	if err := db.Insert("Widget", map[string]Value{"name": V("a")}); err == nil {
		t.Error("NULL key should fail")
	}
}

func TestPrimaryKeyUniqueness(t *testing.T) {
	db := newWidgetDB(t)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.Insert("Widget", map[string]Value{"id": V("1"), "name": V("a")}))
	err := db.Insert("Widget", map[string]Value{"id": V("1"), "name": V("b")})
	if err == nil || !strings.Contains(err.Error(), "duplicate key") {
		t.Errorf("duplicate key err = %v", err)
	}
	must(db.Insert("Widget", map[string]Value{"id": V("2"), "name": V("b")}))
	if db.Table("Widget").Len() != 2 {
		t.Errorf("len = %d, want 2", db.Table("Widget").Len())
	}
}

func TestCompositeKey(t *testing.T) {
	db := New()
	if err := db.Create(Schema{
		Table:   "Pair",
		Columns: []Column{{Name: "a"}, {Name: "b"}},
		Key:     []string{"a", "b"},
	}); err != nil {
		t.Fatal(err)
	}
	ins := func(a, b string) error {
		return db.Insert("Pair", map[string]Value{"a": V(a), "b": V(b)})
	}
	if err := ins("1", "x"); err != nil {
		t.Fatal(err)
	}
	if err := ins("1", "y"); err != nil {
		t.Fatal(err)
	}
	if err := ins("1", "x"); err == nil {
		t.Error("composite duplicate should fail")
	}
}

func TestSelectPredicate(t *testing.T) {
	db := newWidgetDB(t)
	for _, w := range []struct{ id, name, color string }{
		{"1", "gear", "red"}, {"2", "cog", "blue"}, {"3", "gear", "blue"},
	} {
		if err := db.Insert("Widget", map[string]Value{"id": V(w.id), "name": V(w.name), "color": V(w.color)}); err != nil {
			t.Fatal(err)
		}
	}
	rows := db.Table("Widget").Select(func(r Row) bool { return r.Get("name").Str == "gear" })
	if len(rows) != 2 {
		t.Fatalf("gears = %d, want 2", len(rows))
	}
	if rows[0].Get("id").Str != "1" || rows[1].Get("id").Str != "3" {
		t.Errorf("select order wrong: %v %v", rows[0].Get("id"), rows[1].Get("id"))
	}
}

func TestSortRows(t *testing.T) {
	db := newWidgetDB(t)
	for _, w := range [][2]string{{"3", "c"}, {"1", "b"}, {"2", "b"}} {
		if err := db.Insert("Widget", map[string]Value{"id": V(w[0]), "name": V(w[1])}); err != nil {
			t.Fatal(err)
		}
	}
	rows := db.Table("Widget").Select(nil)
	SortRows(rows, "name", "id")
	var ids []string
	for _, r := range rows {
		ids = append(ids, r.Get("id").Str)
	}
	if got := strings.Join(ids, ""); got != "123" {
		t.Errorf("sorted ids = %s, want 123", got)
	}
}

func TestSortRowsNullsFirst(t *testing.T) {
	db := newWidgetDB(t)
	if err := db.Insert("Widget", map[string]Value{"id": V("1"), "name": V("a"), "color": V("red")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("Widget", map[string]Value{"id": V("2"), "name": V("b")}); err != nil {
		t.Fatal(err)
	}
	rows := db.Table("Widget").Select(nil)
	SortRows(rows, "color")
	if !rows[0].Get("color").Null {
		t.Error("NULL should sort first")
	}
}

func TestWriteCSV(t *testing.T) {
	db := newWidgetDB(t)
	if err := db.Insert("Widget", map[string]Value{"id": V("1"), "name": V("a,b"), "color": V("red")}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Table("Widget").WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "id,name,color" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != `1,"a,b",red` {
		t.Errorf("row = %q", lines[1])
	}
}

func TestMarshalJSON(t *testing.T) {
	db := newWidgetDB(t)
	if err := db.Insert("Widget", map[string]Value{"id": V("1"), "name": V("a")}); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(db)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string][]map[string]*string
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	rows := decoded["Widget"]
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0]["color"] != nil {
		t.Error("NULL should encode as JSON null")
	}
	if *rows[0]["name"] != "a" {
		t.Errorf("name = %v", rows[0]["name"])
	}
}

func TestSummaryAndTableNames(t *testing.T) {
	db := newWidgetDB(t)
	if err := db.Create(Schema{Table: "Other", Columns: []Column{{Name: "x", Nullable: true}}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("Widget", map[string]Value{"id": V("1"), "name": V("a")}); err != nil {
		t.Fatal(err)
	}
	if got := db.Summary(); got != "Widget(1) Other(0)" {
		t.Errorf("summary = %q", got)
	}
	names := db.TableNames()
	if len(names) != 2 || names[0] != "Widget" {
		t.Errorf("names = %v", names)
	}
}

func TestRowGetMissingColumn(t *testing.T) {
	db := newWidgetDB(t)
	if err := db.Insert("Widget", map[string]Value{"id": V("1"), "name": V("a")}); err != nil {
		t.Fatal(err)
	}
	row := db.Table("Widget").Select(nil)[0]
	if !row.Get("nonexistent").Null {
		t.Error("missing column should be NULL")
	}
	cells := row.Cells()
	if len(cells) != 3 {
		t.Errorf("cells = %v", cells)
	}
}

// Property: inserting n distinct keys always yields n rows and any duplicate
// key always fails, regardless of key content (including empty strings and
// separator bytes).
func TestKeyUniquenessProperty(t *testing.T) {
	f := func(keys []string) bool {
		db := New()
		if err := db.Create(Schema{
			Table:   "T",
			Columns: []Column{{Name: "k"}},
			Key:     []string{"k"},
		}); err != nil {
			return false
		}
		seen := map[string]bool{}
		want := 0
		for _, k := range keys {
			err := db.Insert("T", map[string]Value{"k": V(k)})
			if seen[k] {
				if err == nil {
					return false // duplicate accepted
				}
			} else {
				if err != nil {
					return false // fresh key rejected
				}
				seen[k] = true
				want++
			}
		}
		return db.Table("T").Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSchemaCopyIsolation(t *testing.T) {
	db := newWidgetDB(t)
	s := db.Table("Widget").Schema()
	s.Columns[0].Name = "mutated"
	if db.Table("Widget").Schema().Columns[0].Name != "id" {
		t.Error("Schema() must return a copy")
	}
}
