// Package reldb is a minimal in-memory relational store — the "Populated
// Database" at the end of the paper's Figure 1 pipeline. It supports typed
// schemas with primary keys, NOT-NULL enforcement, inserts with key-
// uniqueness checking, predicate selects with ordering, and CSV/JSON export.
//
// It is deliberately small: the paper needs a database instance to populate,
// not a query engine. Everything is stdlib-only and value-semantics simple.
package reldb

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Value is a nullable string-typed cell.
type Value struct {
	Str  string
	Null bool
}

// NullValue is the SQL NULL analogue.
var NullValue = Value{Null: true}

// V makes a non-null value.
func V(s string) Value { return Value{Str: s} }

// String renders the value; NULL renders as the empty string.
func (v Value) String() string {
	if v.Null {
		return ""
	}
	return v.Str
}

// Column describes one attribute of a table.
type Column struct {
	Name string
	// Type is a domain label ("date", "price", "text"); the store does not
	// interpret it but exports carry it for documentation.
	Type string
	// Nullable permits NULL cells.
	Nullable bool
}

// Schema describes a table.
type Schema struct {
	Table   string
	Columns []Column
	// Key lists the primary-key column names; empty means no key (every
	// insert accepted).
	Key []string
}

// colIndex returns the index of the named column, or -1.
func (s *Schema) colIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Row is one tuple, in schema column order.
type Row struct {
	schema *Schema
	cells  []Value
}

// Get returns the cell for the named column; missing columns yield NULL.
func (r Row) Get(col string) Value {
	i := r.schema.colIndex(col)
	if i < 0 {
		return NullValue
	}
	return r.cells[i]
}

// Cells returns the row's cells in column order (a copy).
func (r Row) Cells() []Value { return append([]Value(nil), r.cells...) }

// Table is one relation.
type Table struct {
	schema Schema
	rows   [][]Value
	// keys holds the encoded primary keys of inserted rows for uniqueness.
	keys map[string]bool
}

// Schema returns the table's schema (a copy).
func (t *Table) Schema() Schema {
	s := t.schema
	s.Columns = append([]Column(nil), t.schema.Columns...)
	s.Key = append([]string(nil), t.schema.Key...)
	return s
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// DB is a set of tables.
type DB struct {
	tables map[string]*Table
	order  []string // creation order for deterministic export
}

// New returns an empty database.
func New() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// Create adds a table with the given schema. It fails on duplicate table
// names, empty/duplicate column names, and key columns that do not exist.
func (db *DB) Create(s Schema) error {
	if s.Table == "" {
		return fmt.Errorf("reldb: empty table name")
	}
	if _, ok := db.tables[s.Table]; ok {
		return fmt.Errorf("reldb: table %q already exists", s.Table)
	}
	seen := map[string]bool{}
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("reldb: table %q has an unnamed column", s.Table)
		}
		if seen[c.Name] {
			return fmt.Errorf("reldb: table %q has duplicate column %q", s.Table, c.Name)
		}
		seen[c.Name] = true
	}
	for _, k := range s.Key {
		if !seen[k] {
			return fmt.Errorf("reldb: table %q key column %q does not exist", s.Table, k)
		}
	}
	db.tables[s.Table] = &Table{schema: s, keys: map[string]bool{}}
	db.order = append(db.order, s.Table)
	return nil
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table { return db.tables[name] }

// TableNames returns the table names in creation order.
func (db *DB) TableNames() []string { return append([]string(nil), db.order...) }

// Insert adds a tuple given as column→value; missing nullable columns become
// NULL. It enforces NOT NULL on non-nullable columns and primary-key
// uniqueness.
func (db *DB) Insert(table string, vals map[string]Value) error {
	t := db.tables[table]
	if t == nil {
		return fmt.Errorf("reldb: no table %q", table)
	}
	cells := make([]Value, len(t.schema.Columns))
	for i, c := range t.schema.Columns {
		v, ok := vals[c.Name]
		if !ok {
			v = NullValue
		}
		if v.Null && !c.Nullable && contains(t.schema.Key, c.Name) {
			return fmt.Errorf("reldb: %s.%s: key column is NULL", table, c.Name)
		}
		if v.Null && !c.Nullable && !contains(t.schema.Key, c.Name) {
			return fmt.Errorf("reldb: %s.%s: NOT NULL column is NULL", table, c.Name)
		}
		cells[i] = v
	}
	for name := range vals {
		if t.schema.colIndex(name) < 0 {
			return fmt.Errorf("reldb: %s has no column %q", table, name)
		}
	}
	if len(t.schema.Key) > 0 {
		key := t.encodeKey(cells)
		if t.keys[key] {
			return fmt.Errorf("reldb: %s: duplicate key %s", table, key)
		}
		t.keys[key] = true
	}
	t.rows = append(t.rows, cells)
	return nil
}

func (t *Table) encodeKey(cells []Value) string {
	var parts []string
	for _, k := range t.schema.Key {
		parts = append(parts, cells[t.schema.colIndex(k)].Str)
	}
	return strings.Join(parts, "\x00")
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// Select returns the rows satisfying pred (nil selects all), in insertion
// order.
func (t *Table) Select(pred func(Row) bool) []Row {
	var out []Row
	for _, cells := range t.rows {
		r := Row{schema: &t.schema, cells: cells}
		if pred == nil || pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// SortRows orders rows by the named columns, ascending, NULLs first.
func SortRows(rows []Row, cols ...string) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, c := range cols {
			a, b := rows[i].Get(c), rows[j].Get(c)
			if a.Null != b.Null {
				return a.Null
			}
			if a.Str != b.Str {
				return a.Str < b.Str
			}
		}
		return false
	})
}

// WriteCSV writes the table (header row first) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.schema.Columns))
	for i, c := range t.schema.Columns {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, cells := range t.rows {
		rec := make([]string, len(cells))
		for i, v := range cells {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// MarshalJSON renders the whole database as {table: [{col: val|null}]}.
func (db *DB) MarshalJSON() ([]byte, error) {
	out := make(map[string][]map[string]*string, len(db.tables))
	for _, name := range db.order {
		t := db.tables[name]
		rows := make([]map[string]*string, 0, len(t.rows))
		for _, cells := range t.rows {
			m := make(map[string]*string, len(cells))
			for i, v := range cells {
				if v.Null {
					m[t.schema.Columns[i].Name] = nil
				} else {
					s := v.Str
					m[t.schema.Columns[i].Name] = &s
				}
			}
			rows = append(rows, m)
		}
		out[name] = rows
	}
	return json.Marshal(out)
}

// Summary renders "table(rows)" pairs for logs and CLI output.
func (db *DB) Summary() string {
	var parts []string
	for _, name := range db.order {
		parts = append(parts, fmt.Sprintf("%s(%d)", name, db.tables[name].Len()))
	}
	return strings.Join(parts, " ")
}
