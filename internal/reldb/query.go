package reldb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Query is a small fluent read API over one table — enough for the
// downstream consumers of a populated instance (the comparison-shopping
// queries the paper's introduction motivates) without growing into a query
// engine.
//
//	rows := db.Table("CarAd").Query().
//	        WhereNotNull("Price").
//	        Where("Make", Eq, "Ford").
//	        OrderBy("Price").
//	        Limit(10).
//	        Rows()
type Query struct {
	table  *Table
	preds  []func(Row) bool
	order  []orderKey
	limit  int
	offset int
}

type orderKey struct {
	col     string
	desc    bool
	numeric bool
}

// Op is a comparison operator for Where.
type Op int

// Comparison operators.
const (
	// Eq matches cells equal to the operand.
	Eq Op = iota
	// Ne matches cells not equal to the operand (NULLs do not match).
	Ne
	// Lt, Le, Gt, Ge compare numerically when both sides parse as numbers
	// (after stripping $ , and spaces), lexically otherwise.
	Lt
	Le
	Gt
	Ge
	// Contains matches cells containing the operand as a substring.
	Contains
)

// Query starts a query over the table.
func (t *Table) Query() *Query { return &Query{table: t, limit: -1} }

// Where adds a comparison predicate on a column. NULL cells never match.
func (q *Query) Where(col string, op Op, operand string) *Query {
	q.preds = append(q.preds, func(r Row) bool {
		v := r.Get(col)
		if v.Null {
			return false
		}
		switch op {
		case Eq:
			return v.Str == operand
		case Ne:
			return v.Str != operand
		case Contains:
			return strings.Contains(v.Str, operand)
		default:
			c := compareValues(v.Str, operand)
			switch op {
			case Lt:
				return c < 0
			case Le:
				return c <= 0
			case Gt:
				return c > 0
			case Ge:
				return c >= 0
			}
			return false
		}
	})
	return q
}

// WhereNotNull keeps rows whose column is non-NULL and non-empty.
func (q *Query) WhereNotNull(col string) *Query {
	q.preds = append(q.preds, func(r Row) bool {
		v := r.Get(col)
		return !v.Null && v.Str != ""
	})
	return q
}

// WhereFunc adds an arbitrary predicate.
func (q *Query) WhereFunc(pred func(Row) bool) *Query {
	q.preds = append(q.preds, pred)
	return q
}

// OrderBy sorts ascending by the column (numeric-aware); call repeatedly
// for secondary keys.
func (q *Query) OrderBy(col string) *Query {
	q.order = append(q.order, orderKey{col: col, numeric: true})
	return q
}

// OrderByDesc sorts descending by the column.
func (q *Query) OrderByDesc(col string) *Query {
	q.order = append(q.order, orderKey{col: col, desc: true, numeric: true})
	return q
}

// Limit caps the number of returned rows; negative means unlimited.
func (q *Query) Limit(n int) *Query { q.limit = n; return q }

// Offset skips the first n rows after ordering.
func (q *Query) Offset(n int) *Query { q.offset = n; return q }

// Rows executes the query.
func (q *Query) Rows() []Row {
	rows := q.table.Select(func(r Row) bool {
		for _, p := range q.preds {
			if !p(r) {
				return false
			}
		}
		return true
	})
	if len(q.order) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for _, k := range q.order {
				a, b := rows[i].Get(k.col), rows[j].Get(k.col)
				if a.Null != b.Null {
					return a.Null != k.desc // NULLs first ascending, last descending
				}
				c := compareValues(a.Str, b.Str)
				if c != 0 {
					if k.desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}
	if q.offset > 0 {
		if q.offset >= len(rows) {
			return nil
		}
		rows = rows[q.offset:]
	}
	if q.limit >= 0 && q.limit < len(rows) {
		rows = rows[:q.limit]
	}
	return rows
}

// Count executes the query and returns the row count (Limit/Offset apply).
func (q *Query) Count() int { return len(q.Rows()) }

// compareValues compares numerically when both operands parse as numbers
// (after stripping currency/grouping characters), lexically otherwise.
func compareValues(a, b string) int {
	na, aok := parseNumeric(a)
	nb, bok := parseNumeric(b)
	if aok && bok {
		switch {
		case na < nb:
			return -1
		case na > nb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a, b)
}

// parseNumeric extracts a float from strings like "$4,500" or "78,000".
func parseNumeric(s string) (float64, bool) {
	clean := strings.Map(func(r rune) rune {
		switch r {
		case '$', ',', ' ':
			return -1
		}
		return r
	}, strings.TrimSpace(s))
	if clean == "" {
		return 0, false
	}
	f, err := strconv.ParseFloat(clean, 64)
	return f, err == nil
}

// Aggregate helpers over query results.

// MinBy returns the row with the smallest value in col (numeric-aware);
// ok is false for an empty result.
func (q *Query) MinBy(col string) (Row, bool) {
	rows := q.WhereNotNull(col).OrderBy(col).Limit(1).Rows()
	if len(rows) == 0 {
		return Row{}, false
	}
	return rows[0], true
}

// SumBy sums the numeric values of col over the query's rows, skipping
// cells that do not parse.
func (q *Query) SumBy(col string) float64 {
	sum := 0.0
	for _, r := range q.Rows() {
		if v := r.Get(col); !v.Null {
			if f, ok := parseNumeric(v.Str); ok {
				sum += f
			}
		}
	}
	return sum
}

// GroupCount groups the query's rows by col and returns value → count,
// with NULLs grouped under "".
func (q *Query) GroupCount(col string) map[string]int {
	out := map[string]int{}
	for _, r := range q.Rows() {
		out[r.Get(col).String()]++
	}
	return out
}

// String renders a compact description for debugging.
func (q *Query) String() string {
	return fmt.Sprintf("query{%s, %d preds, %d order keys, limit %d}",
		q.table.schema.Table, len(q.preds), len(q.order), q.limit)
}
