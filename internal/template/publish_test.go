package template

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

func TestPublisherDeliversToAllTargets(t *testing.T) {
	var mu sync.Mutex
	got := map[string][]string{}
	mkPeer := func(name string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/v1/template/publish" {
				t.Errorf("peer %s: unexpected path %s", name, r.URL.Path)
			}
			var e Entry
			if err := json.NewDecoder(r.Body).Decode(&e); err != nil {
				t.Errorf("peer %s: bad body: %v", name, err)
			}
			mu.Lock()
			got[name] = append(got[name], e.Key)
			mu.Unlock()
		}))
	}
	p1, p2 := mkPeer("p1"), mkPeer("p2")
	defer p1.Close()
	defer p2.Close()

	reg := obs.NewRegistry()
	pub := NewPublisher(PublisherConfig{Targets: []string{p1.URL, p2.URL}, Metrics: reg})
	e := testEntry("<html><body><hr><hr></body></html>", 0.99)
	pub.Publish(e)
	pub.Close() // drains

	mu.Lock()
	defer mu.Unlock()
	for _, name := range []string{"p1", "p2"} {
		if len(got[name]) != 1 || got[name][0] != e.Key {
			t.Errorf("peer %s received %v, want [%s]", name, got[name], e.Key)
		}
	}
	if v := reg.Counter("boundary_template_publishes_total", "", "outcome", "ok").Value(); v != 2 {
		t.Errorf("ok publishes = %v, want 2", v)
	}
}

func TestPublisherFaultAndErrorOutcomes(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	faults := faultinject.New()
	pub := NewPublisher(PublisherConfig{Targets: []string{srv.URL}, Metrics: reg, Faults: faults})

	faults.Inject(FaultPublish, faultinject.Fault{Err: errors.New("network down"), Times: 1})
	pub.Publish(testEntry("<html><body><hr><hr></body></html>", 0.99)) // faulted
	pub.Publish(testEntry("<html><body><p><p></body></html>", 0.99))   // 500 from peer
	pub.Close()

	if v := reg.Counter("boundary_template_publishes_total", "", "outcome", "error").Value(); v != 2 {
		t.Errorf("error publishes = %v, want 2", v)
	}
	if v := reg.Counter("boundary_template_publishes_total", "", "outcome", "ok").Value(); v != 0 {
		t.Errorf("ok publishes = %v, want 0", v)
	}
	if faults.Fired(FaultPublish) != 2 {
		t.Errorf("publish hook fired %d times, want 2", faults.Fired(FaultPublish))
	}
}

func TestPublisherDropsWhenClosed(t *testing.T) {
	reg := obs.NewRegistry()
	pub := NewPublisher(PublisherConfig{Targets: nil, Metrics: reg})
	pub.Close()
	pub.Publish(testEntry("<html><body><hr><hr></body></html>", 0.99))
	if v := reg.Counter("boundary_template_publishes_total", "", "outcome", "dropped").Value(); v != 1 {
		t.Errorf("dropped = %v, want 1", v)
	}
	pub.Close() // idempotent
}

func TestStoreOnStoreWiresPublisher(t *testing.T) {
	var mu sync.Mutex
	var received []string
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var e Entry
		json.NewDecoder(r.Body).Decode(&e)
		mu.Lock()
		received = append(received, e.Key)
		mu.Unlock()
	}))
	defer peer.Close()

	pub := NewPublisher(PublisherConfig{Targets: []string{peer.URL}})
	s, _ := Open(Config{})
	defer s.Close()
	s.OnStore = pub.Publish

	e := testEntry("<html><body><hr><hr></body></html>", 0.99)
	s.Put(e)
	absorbed := testEntry("<html><body><p><p></body></html>", 0.99)
	s.Absorb(absorbed) // must NOT publish
	pub.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(received) != 1 || received[0] != e.Key {
		t.Fatalf("peer received %v, want only the locally-learned %s", received, e.Key)
	}
}
