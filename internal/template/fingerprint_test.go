package template

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/tagtree"
)

// docFP runs both implementations and fails the test if they disagree —
// every fingerprint computed in this file doubles as a differential check.
func docFP(t *testing.T, doc string) Fingerprint {
	t.Helper()
	fast := FingerprintDoc(doc)
	ref, _ := FingerprintTree(tagtree.Parse(doc))
	if fast != ref {
		t.Fatalf("FingerprintDoc = %s, FingerprintTree = %s\ndoc: %q", fast, ref, doc)
	}
	return fast
}

func TestFingerprintDeterministic(t *testing.T) {
	doc := "<html><body><ul><li>a<li>b<li>c</ul></body></html>"
	if docFP(t, doc) != docFP(t, doc) {
		t.Fatal("fingerprint not deterministic")
	}
}

func TestFingerprintIgnoresTextAndAttributes(t *testing.T) {
	base := docFP(t, `<html><body><table><tr><td>a</td></tr><tr><td>b</td></tr><tr><td>c</td></tr></table></body></html>`)
	variants := []string{
		// different text
		`<html><body><table><tr><td>xxxxx</td></tr><tr><td></td></tr><tr><td>zz zz</td></tr></table></body></html>`,
		// attributes, any order or casing
		`<HTML><BODY><TABLE border="1" width='90%'><TR class=odd><TD align=left>a</TD></TR><TR><TD>b</TD></TR><TR><TD>c</TD></TR></TABLE></BODY></HTML>`,
		// comments and whitespace
		"<html>\n<!-- header -->\n<body> <table>\n<tr><td>a</td></tr> <tr><td>b</td></tr>\n<tr><td>c</td></tr>\n</table> </body>\n</html>",
		// omitted optional end tags
		`<html><body><table><tr><td>a<tr><td>b<tr><td>c</table></body></html>`,
	}
	for i, v := range variants {
		if got := docFP(t, v); got != base {
			t.Errorf("variant %d: fingerprint %s != base %s", i, got, base)
		}
	}
}

func TestFingerprintSeesShape(t *testing.T) {
	base := docFP(t, `<html><body><ul><li>a<li>b<li>c</ul></body></html>`)
	different := []string{
		// different record tag
		`<html><body><dl><dt>a<dt>b<dt>c</dl></body></html>`,
		// different record count (exact shape hash)
		`<html><body><ul><li>a<li>b</ul></body></html>`,
		// nested structure inside records
		`<html><body><ul><li><b>a</b><li><b>b</b><li><b>c</b></ul></body></html>`,
	}
	for i, d := range different {
		if got := docFP(t, d); got == base {
			t.Errorf("doc %d: fingerprint should differ from base", i)
		}
	}
}

// TestFingerprintDocMatchesTreeEdgeCases drives the fast scanner through the
// tokenizer and normalizer behaviors it replicates: voids, self-closing
// syntax, raw-text elements, orphan end tags, auto-closing, processing
// instructions, and malformed markup.
func TestFingerprintDocMatchesTreeEdgeCases(t *testing.T) {
	docs := []string{
		"",
		"plain text only",
		"<",
		"<3 is not markup <html><body><p>x</p></body></html>",
		"<html><body>a<br>b<br/>c<hr></body></html>",
		"<html><body><img src='a>b'><p>x</p><img src=\"c>d\"></body></html>",
		"<html><head><script>if (a < b) { document.write('<p>'); }</script><title>x < y</title></head><body><p>a</p><p>b</p></body></html>",
		"<html><body><script>var s = '</scriptfoo>';</script><p>a</p></body></html>",
		"<html><body><style>p > b { color: red }</style><p>a</p><p>b</p></body></html>",
		"<html><body></p></div><ul><li>a</ul></body></html>",
		"<html><body><p>one<p>two<p>three</body></html>",
		"<html><body><select><option>a<option>b<option>c</select></body></html>",
		"<html><body><table><thead><tr><th>h</th></tr></thead><tbody><tr><td>a</td></tr><tr><td>b</td></tr></tbody></table></body></html>",
		"<html><body><div/><div/><div/></body></html>",
		"<?xml version=\"1.0\"?><!DOCTYPE html><html><body><p>a</p></body></html>",
		"<!-- <p>commented out</p> --><html><body><p>a</p><p>b</p></body></html>",
		"<html><body><p>unterminated comment <!-- never closes <p>x</body></html>",
		"<html><body><p>unterminated tag <div class=",
		"<html><body><textarea><p>not a p</p></textarea><p>a</p></body></html>",
		"<html><body><ul><li>a</li><li>b</li></ul><ol><li>c</li><li>d</li><li>e</li></ol></body></html>",
		"<html><body><br></br><hr></hr></body></html>",
		"<CUSTOM-tag><x:y><a_b.c>text</a_b.c></x:y></CUSTOM-tag>",
	}
	for i, doc := range docs {
		_ = docFP(t, doc) // docFP fails on divergence
		_ = i
	}
}

// TestFingerprintMangleInvarianceSample pins Mangle invariance on a slice of
// the corpus; the full 220-doc sweep lives in internal/eval's metamorphic
// suite.
func TestFingerprintMangleInvarianceSample(t *testing.T) {
	docs := corpus.TestDocuments()
	if len(docs) < 5 {
		t.Fatalf("test corpus too small: %d", len(docs))
	}
	for _, d := range docs[:5] {
		base := docFP(t, d.HTML)
		for seed := int64(1); seed <= 3; seed++ {
			m := corpus.Mangle(d.HTML, seed)
			if got := docFP(t, m); got != base {
				t.Errorf("site %s doc %d seed %d: mangled fingerprint diverged",
					d.Site.Name, d.Index, seed)
			}
		}
	}
}

func TestSaltLengthPrefixing(t *testing.T) {
	// Field boundaries must not be ambiguous under concatenation.
	a := Salt("html", "ab", []string{"c"})
	b := Salt("html", "a", []string{"bc"})
	if a == b {
		t.Fatalf("salts collide: %q", a)
	}
	if Salt("html", "", nil) == Salt("xml", "", nil) {
		t.Fatal("mode must affect salt")
	}
	if Salt("html", "", []string{"hr"}) == Salt("html", "", []string{"hr", "p"}) {
		t.Fatal("separator list must affect salt")
	}
}

func TestMakeKeyBindsSalt(t *testing.T) {
	fp := FingerprintDoc("<html><body><p>a<p>b</body></html>")
	k1 := MakeKey(fp, Salt("html", "", nil))
	k2 := MakeKey(fp, Salt("xml", "", nil))
	if k1 == k2 {
		t.Fatal("same key for different salts")
	}
	rt, err := ParseKey(k1.String())
	if err != nil || rt != k1 {
		t.Fatalf("ParseKey round-trip: %v %v", rt, err)
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Fatal("ParseKey accepted garbage")
	}
}

func TestFingerprintXMLTree(t *testing.T) {
	// XML trees fingerprint through the tree path only; just pin that two
	// same-shaped XML docs agree and a different shape does not.
	f1, _ := FingerprintTree(tagtree.ParseXML("<feed><entry>a</entry><entry>b</entry></feed>"))
	f2, _ := FingerprintTree(tagtree.ParseXML("<feed><entry>xxx</entry><entry attr='v'>y</entry></feed>"))
	f3, _ := FingerprintTree(tagtree.ParseXML("<feed><item>a</item><item>b</item></feed>"))
	if f1 != f2 {
		t.Error("same-shaped XML docs should share a fingerprint")
	}
	if f1 == f3 {
		t.Error("different-shaped XML docs should not share a fingerprint")
	}
}
