// Package template implements the learned-wrapper fast path: a structural
// fingerprint of a page's record region plus a store mapping fingerprints to
// previously-discovered separators, so requests for already-seen page shapes
// skip the heuristic pipeline entirely (the paper's §1 premise, after
// [ECJ+98]: boundary discovery is a one-time cost that feeds a wrapper).
//
// The fingerprint is a stable hash over the tag-shape of the highest-fan-out
// subtree — names and nesting only, no attributes, no text — which makes it
// invariant under exactly the manglings tag-tree normalization absorbs
// (corpus.Mangle: case, attribute order/values, omitted optional end-tags,
// comments, whitespace, self-closing slashes on voids). Two documents share a
// fingerprint iff their normalized record regions have identical shape.
//
// Two implementations must agree byte-for-byte on every input:
//
//   - FingerprintTree walks an already-built tagtree.Tree. It is the
//     reference semantics and serves callers that need the tree anyway
//     (core's tree-level fast path, XML mode).
//   - FingerprintDoc scans the raw document with a specialized tag-only
//     scanner that skips text, entities, and attribute materialization. It
//     replicates the htmlparse tokenizer's tag grammar and the tagtree
//     normalization rules exactly, and exists because the warm path must
//     beat full discovery by ~50×: even the general tokenizer costs more
//     than the whole warm-path budget.
//
// FuzzFingerprintDoc pins the equivalence; the metamorphic suite in
// internal/eval pins the Mangle invariance over the full corpus.
package template

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/tagtree"
)

// Fingerprint is the structural hash of a record region's tag shape.
type Fingerprint [sha256.Size]byte

// String returns the fingerprint in hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Key is a store key: a fingerprint bound to the request options that can
// change the discovery answer (the salt). Same shape + same options = same
// key, on any replica and across restarts.
type Key [sha256.Size]byte

// String returns the key in hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses a hex key as produced by Key.String.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, fmt.Errorf("template: bad key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

// Salt derives the option salt for a discover request: parse mode ("html" or
// "xml"), the ontology argument verbatim (builtin name or DSL source), and
// the separator-list override — the same fields httpapi.RequestFingerprint
// hashes, minus the document itself. Heuristic answers depend on these, so
// two requests may share a page shape but must not share a store entry when
// they differ. Fields are length-prefixed so concatenations cannot collide.
func Salt(mode, ontologySrc string, separatorList []string) string {
	var b strings.Builder
	field := func(s string) {
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	}
	field(mode)
	field(ontologySrc)
	for _, s := range separatorList {
		field(s)
	}
	return b.String()
}

// MakeKey binds a fingerprint to an option salt.
func MakeKey(fp Fingerprint, salt string) Key {
	h := sha256.New()
	h.Write(fp[:])
	h.Write([]byte(salt))
	var k Key
	h.Sum(k[:0])
	return k
}

// Shape serialization markers. A node is 0x01 name 0x00 children... 0x02;
// void and self-closing elements serialize as an immediately-closed node, so
// <br> and <br></br>-shaped trees agree (both are childless regions).
const (
	shapeOpen  = 0x01
	shapeClose = 0x02
	shapeSep   = 0x00
)

// FingerprintTree fingerprints an already-built tag tree and returns the
// highest-fan-out node the hash covers (the paper's conjectured record
// group). This is the reference implementation FingerprintDoc must match on
// HTML input; it also serves XML trees, whose fingerprints simply live in a
// different key space via the mode salt.
func FingerprintTree(t *tagtree.Tree) (Fingerprint, *tagtree.Node) {
	n := t.HighestFanOut()
	buf := appendNodeShape(make([]byte, 0, 1024), n)
	return sha256.Sum256(buf), n
}

func appendNodeShape(buf []byte, n *tagtree.Node) []byte {
	buf = append(buf, shapeOpen)
	buf = append(buf, n.Name...)
	buf = append(buf, shapeSep)
	for _, c := range n.Children {
		buf = appendNodeShape(buf, c)
	}
	return append(buf, shapeClose)
}
