package template

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// testEntry builds a valid entry keyed by an arbitrary document shape.
func testEntry(doc string, certainty float64) *Entry {
	key := MakeKey(FingerprintDoc(doc), Salt("html", "", nil))
	return &Entry{
		Key:       key.String(),
		Separator: "hr",
		TopTags:   []string{"hr"},
		Scores:    []Score{{Tag: "hr", CF: certainty}, {Tag: "p", CF: 0.2}},
		Rankings: map[string][]RankEntry{
			"OM": {{Tag: "hr", Rank: 1}, {Tag: "p", Rank: 2}},
		},
		Candidates: []Candidate{{Tag: "hr", Count: 3}, {Tag: "p", Count: 2}},
		Subtree:    "body",
		Certainty:  certainty,
	}
}

func mustKey(t *testing.T, e *Entry) Key {
	t.Helper()
	k, err := ParseKey(e.Key)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestStorePutLookup(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	e := testEntry("<html><body><hr><hr></body></html>", 0.99)
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Lookup(mustKey(t, e))
	if !ok {
		t.Fatal("lookup miss after put")
	}
	if got.Separator != "hr" || got.Subtree != "body" || len(got.Scores) != 2 {
		t.Fatalf("entry mangled: %+v", got)
	}
	// The returned entry is a copy: mutating it must not poison the cache.
	got.Separator = "poisoned"
	got.Scores[0].Tag = "poisoned"
	again, _ := s.Lookup(mustKey(t, e))
	if again.Separator != "hr" || again.Scores[0].Tag != "hr" {
		t.Fatal("lookup returned shared mutable state")
	}
	if _, ok := s.Lookup(MakeKey(FingerprintDoc("<p>other</p>"), "s")); ok {
		t.Fatal("lookup hit for unknown key")
	}
}

func TestStoreRejectsInvalidEntries(t *testing.T) {
	s, _ := Open(Config{})
	defer s.Close()
	bad := []*Entry{
		nil,
		{Key: "nothex", Separator: "hr", Subtree: "body"},
		{Key: testEntry("<p>a</p>", 1).Key, Separator: "", Subtree: "body"},
		{Key: testEntry("<p>a</p>", 1).Key, Separator: "hr", Subtree: ""},
		func() *Entry { e := testEntry("<p>a</p>", 1); e.Certainty = 1.5; return e }(),
	}
	for i, e := range bad {
		if err := s.Put(e); err == nil {
			t.Errorf("entry %d: Put accepted invalid entry", i)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("store grew to %d on invalid puts", s.Len())
	}
}

func TestStoreLowCertaintyEvictsOnLookup(t *testing.T) {
	s, _ := Open(Config{MinCertainty: 0.9})
	defer s.Close()
	e := testEntry("<html><body><hr><hr></body></html>", 0.5)
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup(mustKey(t, e)); ok {
		t.Fatal("low-certainty entry served")
	}
	if s.Len() != 0 {
		t.Fatal("low-certainty entry not evicted")
	}
}

func TestStoreReportDrift(t *testing.T) {
	reg := obs.NewRegistry()
	s, _ := Open(Config{Metrics: reg})
	defer s.Close()
	e := testEntry("<html><body><hr><hr></body></html>", 0.99)
	s.Put(e)
	s.ReportDrift(mustKey(t, e), "divergent")
	if _, ok := s.Lookup(mustKey(t, e)); ok {
		t.Fatal("drifted entry still served")
	}
	if v := reg.Counter("boundary_template_drift_total", "", "reason", "divergent").Value(); v != 1 {
		t.Fatalf("drift counter = %v, want 1", v)
	}
}

func TestStoreDiskRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wrappers.ndjson")
	s, err := Open(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	var keys []Key
	for i := 0; i < 5; i++ {
		e := testEntry(fmt.Sprintf("<html><body>%s</body></html>",
			repeatTag("hr", i+2)), 0.99)
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, mustKey(t, e))
	}
	s.ReportDrift(keys[0], "divergent")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 4 {
		t.Fatalf("reloaded %d entries, want 4", re.Len())
	}
	if _, ok := re.Lookup(keys[0]); ok {
		t.Fatal("evicted entry resurrected by replay")
	}
	for _, k := range keys[1:] {
		if _, ok := re.Lookup(k); !ok {
			t.Fatalf("entry %s lost across restart", k)
		}
	}
}

func repeatTag(tag string, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += "<" + tag + ">"
	}
	return out
}

func TestStoreTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wrappers.ndjson")
	s, _ := Open(Config{Path: path})
	e := testEntry("<html><body><hr><hr></body></html>", 0.99)
	s.Put(e)
	s.Close()

	// Simulate a crash mid-append: a torn, unterminated final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"v":1,"put":{"key":"dead`)
	f.Close()

	re, err := Open(Config{Path: path})
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("reloaded %d entries, want 1", re.Len())
	}
	if _, ok := re.Lookup(mustKey(t, e)); !ok {
		t.Fatal("acknowledged entry lost to torn tail")
	}
}

func TestStoreCorruptBodyRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wrappers.ndjson")
	good, _ := os.Create(path)
	e := testEntry("<html><body><hr><hr></body></html>", 0.99)
	fmt.Fprintf(good, "this is not json\n")
	fmt.Fprintf(good, `{"v":1,"put":{"key":%q,"separator":"hr","subtree":"body","certainty":0.99}}`+"\n", e.Key)
	good.Close()

	_, err := Open(Config{Path: path})
	if err == nil {
		t.Fatal("corrupt journal body accepted")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v should wrap ErrCorrupt", err)
	}
}

func TestStoreSpotCheckCadence(t *testing.T) {
	s, _ := Open(Config{SpotCheckEvery: 3})
	defer s.Close()
	var pattern []bool
	for i := 0; i < 9; i++ {
		pattern = append(pattern, s.SpotCheck())
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("spot-check pattern %v, want %v", pattern, want)
		}
	}
	off, _ := Open(Config{})
	defer off.Close()
	for i := 0; i < 10; i++ {
		if off.SpotCheck() {
			t.Fatal("spot-check fired with cadence disabled")
		}
	}
}

func TestStoreLookupFaultDegradesToMiss(t *testing.T) {
	faults := faultinject.New()
	reg := obs.NewRegistry()
	s, _ := Open(Config{Faults: faults, Metrics: reg})
	defer s.Close()
	e := testEntry("<html><body><hr><hr></body></html>", 0.99)
	s.Put(e)

	faults.Inject(FaultLookup, faultinject.Fault{Err: errors.New("store on fire")})
	if _, ok := s.Lookup(mustKey(t, e)); ok {
		t.Fatal("faulted lookup served a hit")
	}
	if v := reg.Counter("boundary_template_lookup_errors_total", "").Value(); v != 1 {
		t.Fatalf("lookup_errors = %v, want 1", v)
	}
	faults.Reset()
	if _, ok := s.Lookup(mustKey(t, e)); !ok {
		t.Fatal("store did not recover after fault cleared")
	}
}

func TestStorePutDedupesAndAbsorbSkipsOnStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wrappers.ndjson")
	s, _ := Open(Config{Path: path})
	defer s.Close()
	var announced int
	s.OnStore = func(*Entry) { announced++ }

	e := testEntry("<html><body><hr><hr></body></html>", 0.99)
	s.Put(e)
	s.Put(e) // identical re-learn: no journal line, no announcement
	if announced != 1 {
		t.Fatalf("OnStore fired %d times, want 1", announced)
	}

	other := testEntry("<html><body><p><p><p></body></html>", 0.98)
	if err := s.Absorb(other); err != nil {
		t.Fatal(err)
	}
	if announced != 1 {
		t.Fatal("Absorb must not fire OnStore (publish loop)")
	}
	if _, ok := s.Lookup(mustKey(t, other)); !ok {
		t.Fatal("absorbed entry not served")
	}

	// A changed answer for the same key is a real update and re-announces.
	e2 := testEntry("<html><body><hr><hr></body></html>", 0.97)
	e2.Separator = "p"
	s.Put(e2)
	if announced != 2 {
		t.Fatalf("OnStore fired %d times after update, want 2", announced)
	}
	got, _ := s.Lookup(mustKey(t, e2))
	if got.Separator != "p" {
		t.Fatal("update did not replace entry")
	}
}

func TestStoreCapacityEviction(t *testing.T) {
	s, _ := Open(Config{Capacity: 3})
	defer s.Close()
	for i := 0; i < 5; i++ {
		e := testEntry(fmt.Sprintf("<html><body>%s</body></html>",
			repeatTag("hr", i+2)), 0.99)
		s.Put(e)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want capacity 3", s.Len())
	}
}

func TestStoreStatsAndReset(t *testing.T) {
	reg := obs.NewRegistry()
	s, _ := Open(Config{Metrics: reg})
	defer s.Close()
	e := testEntry("<html><body><hr><hr></body></html>", 0.99)
	s.Put(e)
	s.Lookup(mustKey(t, e))
	s.Lookup(MakeKey(FingerprintDoc("<p>x</p>"), "s"))

	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("stats = %+v", st)
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset left entries behind")
	}
	if g := reg.Gauge("boundary_template_entries", "").Value(); g != 0 {
		t.Fatalf("entries gauge = %v after Reset", g)
	}
}

func TestStoreCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wrappers.ndjson")
	s, _ := Open(Config{Path: path})
	e := testEntry("<html><body><hr><hr></body></html>", 0.99)
	// Churn the same key with alternating answers to build up dead lines.
	for i := 0; i < 50; i++ {
		mod := e.clone()
		if i%2 == 0 {
			mod.Separator = "p"
		}
		s.Put(mod)
	}
	s.Close() // Close compacts: journal should hold exactly one live line

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(strings.TrimRight(string(data), "\n"), "\n") + 1; n != 1 {
		t.Fatalf("compacted journal has %d lines, want 1", n)
	}
	re, err := Open(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("reloaded %d entries, want 1", re.Len())
	}
}
