package template

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// FaultTransfer is the chaos hook inside a joiner's warmup state transfer;
// an armed error fails the current source so tests can prove a joiner falls
// through to its next ring neighbor, or degrades to serving cold. The name
// lives in the membership namespace — membership.FaultTransfer is the same
// string — because the transfer is a membership-lifecycle event that merely
// executes here.
const FaultTransfer = "membership/transfer"

// ExportPath is where every warm replica streams its wrapper state as
// NDJSON (one Entry per line); Pull reads it, httpapi serves it.
const ExportPath = "/v1/template/export"

// PullConfig configures one warmup state transfer into a joining replica.
type PullConfig struct {
	// Sources are candidate base URLs to pull from — the joiner's ring
	// neighbors, nearest first. Pull takes the full state of the first
	// source that answers; the rest are fallbacks, not a merge.
	Sources []string
	// Client is the HTTP client; nil means a 5-second-timeout default.
	Client *http.Client
	// Timeout bounds the whole transfer (the -warmup-timeout flag); a
	// joiner that cannot warm in time serves cold rather than blocking
	// forever. Zero leaves only the caller's ctx in charge.
	Timeout time.Duration
	// Metrics receives boundary_template_pull* series; nil disables.
	Metrics *obs.Registry
	// Faults is the chaos hook set (FaultTransfer); nil disables.
	Faults *faultinject.Set
}

// Pull streams another replica's journaled wrapper state into s — the
// joiner's half of cluster warming, run after membership Join and before the
// node takes traffic. Entries arrive through Absorb, so they are validated,
// journaled locally (on a durable store), and never re-announced through
// OnStore. Returns how many entries were absorbed; the error is non-nil only
// when every source failed. An empty source list (bootstrap: no one to pull
// from) is a successful no-op.
func (s *Store) Pull(ctx context.Context, cfg PullConfig) (int, error) {
	if len(cfg.Sources) == 0 {
		return 0, nil
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	var errs []error
	for _, source := range cfg.Sources {
		n, err := s.pullFrom(ctx, cfg, source)
		if err == nil {
			cfg.Metrics.Counter("boundary_template_pulls_total",
				"Warmup state transfers attempted, by outcome.", "outcome", "ok").Inc()
			return n, nil
		}
		cfg.Metrics.Counter("boundary_template_pulls_total",
			"Warmup state transfers attempted, by outcome.", "outcome", "error").Inc()
		errs = append(errs, fmt.Errorf("%s: %w", source, err))
		if ctx.Err() != nil {
			break // the budget is spent; further sources would fail the same way
		}
	}
	return 0, fmt.Errorf("template: warmup pull failed from every source: %w", errors.Join(errs...))
}

// pullFrom transfers one source's full state: GET its export stream and
// absorb entry by entry. A mid-stream failure aborts this source; entries
// already absorbed are kept (they are individually valid), and the caller
// moves on to the next source.
func (s *Store) pullFrom(ctx context.Context, cfg PullConfig, source string) (int, error) {
	if err := cfg.Faults.Fire(FaultTransfer); err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, source+ExportPath, nil)
	if err != nil {
		return 0, err
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("status %d: %.200s", resp.StatusCode, b)
	}
	absorbed := 0
	dec := json.NewDecoder(resp.Body)
	for {
		var e Entry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return absorbed, fmt.Errorf("bad export stream after %d entries: %w", absorbed, err)
		}
		if err := s.Absorb(&e); err != nil {
			return absorbed, fmt.Errorf("invalid entry %q in export stream: %w", e.Key, err)
		}
		absorbed++
	}
	cfg.Metrics.Counter("boundary_template_pull_entries_total",
		"Wrapper entries absorbed through warmup state transfers.").Add(float64(absorbed))
	return absorbed, nil
}
