package template

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// exportServer serves entries as NDJSON at ExportPath, the way a warm
// replica's httpapi does.
func exportServer(t *testing.T, entries []*Entry) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != ExportPath {
			t.Errorf("unexpected path %s", r.URL.Path)
			http.NotFound(w, r)
			return
		}
		enc := json.NewEncoder(w)
		for _, e := range entries {
			enc.Encode(e)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func pullEntries() []*Entry {
	return []*Entry{
		testEntry("<html><body><hr><hr></body></html>", 0.99),
		testEntry("<html><body><p><p><p></body></html>", 0.95),
		testEntry("<html><body><li><li></body></html>", 0.90),
	}
}

func TestPullWarmsStoreFromSource(t *testing.T) {
	entries := pullEntries()
	srv := exportServer(t, entries)

	dst, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	var published []string
	dst.OnStore = func(e *Entry) { published = append(published, e.Key) }

	reg := obs.NewRegistry()
	n, err := dst.Pull(context.Background(), PullConfig{
		Sources: []string{srv.URL},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(entries) {
		t.Fatalf("absorbed %d entries, want %d", n, len(entries))
	}
	for _, e := range entries {
		got, ok := dst.Lookup(mustKey(t, e))
		if !ok {
			t.Fatalf("pulled entry %s missing from store", e.Key)
		}
		if got.Separator != e.Separator {
			t.Fatalf("pulled entry %s mangled: %+v", e.Key, got)
		}
	}
	// Pulled state arrives via Absorb: re-announcing it through OnStore
	// would bounce entries between warmed replicas forever.
	if len(published) != 0 {
		t.Fatalf("pull re-announced %v through OnStore", published)
	}
	if v := reg.Counter("boundary_template_pulls_total", "", "outcome", "ok").Value(); v != 1 {
		t.Errorf("ok pulls = %v, want 1", v)
	}
	if v := reg.Counter("boundary_template_pull_entries_total", "").Value(); v != 3 {
		t.Errorf("pulled entries = %v, want 3", v)
	}
}

func TestPullFallsThroughToNextSource(t *testing.T) {
	entries := pullEntries()
	good := exportServer(t, entries)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused

	dst, _ := Open(Config{})
	defer dst.Close()
	reg := obs.NewRegistry()
	n, err := dst.Pull(context.Background(), PullConfig{
		Sources: []string{dead.URL, good.URL},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(entries) {
		t.Fatalf("absorbed %d entries, want %d", n, len(entries))
	}
	if v := reg.Counter("boundary_template_pulls_total", "", "outcome", "error").Value(); v != 1 {
		t.Errorf("error pulls = %v, want 1", v)
	}
}

// TestPullTransferFaultFailsOver drives the membership/transfer hook: an
// armed fault kills the first source's transfer, and the joiner falls
// through to the next ring neighbor instead of blocking.
func TestPullTransferFaultFailsOver(t *testing.T) {
	entries := pullEntries()
	srv := exportServer(t, entries)

	dst, _ := Open(Config{})
	defer dst.Close()
	faults := faultinject.New()
	faults.Inject(FaultTransfer, faultinject.Fault{Err: errors.New("transfer torn"), Times: 1})

	n, err := dst.Pull(context.Background(), PullConfig{
		Sources: []string{srv.URL, srv.URL},
		Faults:  faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(entries) {
		t.Fatalf("absorbed %d entries, want %d", n, len(entries))
	}
	if got := faults.Fired(FaultTransfer); got != 2 {
		t.Fatalf("membership/transfer fired %d times, want 2 (one fault, one pass)", got)
	}
}

func TestPullAllSourcesFailingReturnsError(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	dst, _ := Open(Config{})
	defer dst.Close()
	n, err := dst.Pull(context.Background(), PullConfig{
		Sources: []string{dead.URL, dead.URL},
	})
	if err == nil {
		t.Fatal("pull with every source down should fail")
	}
	if n != 0 {
		t.Fatalf("failed pull reported %d entries", n)
	}
}

func TestPullNoSourcesIsBootstrapNoop(t *testing.T) {
	dst, _ := Open(Config{})
	defer dst.Close()
	if n, err := dst.Pull(context.Background(), PullConfig{}); n != 0 || err != nil {
		t.Fatalf("bootstrap pull = (%d, %v), want (0, nil)", n, err)
	}
}

func TestPullCorruptStreamAbortsSource(t *testing.T) {
	e := testEntry("<html><body><hr><hr></body></html>", 0.99)
	line, _ := json.Marshal(e)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write(line)
		w.Write([]byte("\n{this is not json\n"))
	}))
	t.Cleanup(srv.Close)

	dst, _ := Open(Config{})
	defer dst.Close()
	_, err := dst.Pull(context.Background(), PullConfig{Sources: []string{srv.URL}})
	if err == nil {
		t.Fatal("pull of a corrupt stream should fail")
	}
	if !strings.Contains(err.Error(), "bad export stream") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The entries absorbed before the tear are individually valid and kept.
	if _, ok := dst.Lookup(mustKey(t, e)); !ok {
		t.Fatal("entry absorbed before the stream tore was discarded")
	}
}

func TestPullTimeoutServesColdRatherThanBlocking(t *testing.T) {
	blocked := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-blocked:
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(func() { close(blocked); srv.Close() })

	dst, _ := Open(Config{})
	defer dst.Close()
	start := time.Now()
	_, err := dst.Pull(context.Background(), PullConfig{
		Sources: []string{srv.URL, srv.URL},
		Timeout: 50 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("pull past the warmup timeout should fail")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("pull blocked %v past its 50ms budget", d)
	}
}

func TestPublisherSetTargetsFollowsMembership(t *testing.T) {
	var mu sync.Mutex
	var got []string
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var e Entry
		json.NewDecoder(r.Body).Decode(&e)
		mu.Lock()
		got = append(got, e.Key)
		mu.Unlock()
	}))
	t.Cleanup(peer.Close)

	reg := obs.NewRegistry()
	pub := NewPublisher(PublisherConfig{Metrics: reg}) // born with no peers

	pub.SetTargets([]string{peer.URL}) // a peer joined
	e1 := testEntry("<html><body><hr><hr></body></html>", 0.99)
	pub.Publish(e1)
	// Targets are read at delivery time, so wait for e1 to land before
	// retargeting — otherwise it would (correctly) go nowhere.
	okCount := func() float64 {
		return reg.Counter("boundary_template_publishes_total", "", "outcome", "ok").Value()
	}
	for deadline := time.Now().Add(5 * time.Second); okCount() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("first publish never delivered")
		}
		time.Sleep(time.Millisecond)
	}

	pub.SetTargets(nil) // the peer left
	e2 := testEntry("<html><body><p><p></body></html>", 0.95)
	pub.Publish(e2)
	pub.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != e1.Key {
		t.Fatalf("peer received %v, want only the pre-departure %s", got, e1.Key)
	}
	if v := reg.Counter("boundary_template_publishes_total", "", "outcome", "ok").Value(); v != 1 {
		t.Errorf("ok publishes = %v, want 1", v)
	}
}
