package template

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// PublisherConfig configures cluster warming.
type PublisherConfig struct {
	// Targets are peer base URLs (e.g. "http://10.0.0.2:8080"); each
	// locally-learned entry is POSTed to every target's
	// /v1/template/publish endpoint.
	Targets []string
	// Client is the HTTP client; nil means a 5-second-timeout default.
	Client *http.Client
	// QueueSize bounds the publish backlog; 0 means 256. When the queue
	// is full new entries are dropped (outcome "dropped") — warming is
	// best-effort, never backpressure on the serving path.
	QueueSize int
	// Metrics receives boundary_template_publishes_total; nil disables.
	Metrics *obs.Registry
	// Faults is the chaos hook set (FaultPublish); nil disables.
	Faults *faultinject.Set
}

// Publisher pushes locally-learned wrapper entries to ring neighbors so one
// discovery warms the whole cluster. Wire it to a store with
// store.OnStore = publisher.Publish. Publishing is asynchronous and
// best-effort: a slow or dead peer never slows the request that learned the
// entry, and failures only show up in metrics.
type Publisher struct {
	cfg PublisherConfig
	ch  chan *Entry
	wg  sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPublisher starts a publisher's delivery worker. Close it to drain.
func NewPublisher(cfg PublisherConfig) *Publisher {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	p := &Publisher{cfg: cfg, ch: make(chan *Entry, cfg.QueueSize)}
	p.wg.Add(1)
	go p.run()
	return p
}

// SetTargets replaces the publish target set. The membership layer calls it
// on every serving-set change, so warming follows the live cluster: joiners
// start receiving publishes, leavers stop costing delivery attempts.
func (p *Publisher) SetTargets(targets []string) {
	p.mu.Lock()
	p.cfg.Targets = append([]string(nil), targets...)
	p.mu.Unlock()
}

// targets snapshots the current target set for one delivery round.
func (p *Publisher) targets() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cfg.Targets
}

// Publish enqueues an entry for delivery to every target, dropping it (with
// an outcome metric) when the backlog is full or the publisher is closed.
// Its signature matches Store.OnStore.
func (p *Publisher) Publish(e *Entry) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.outcome("dropped").Inc()
		return
	}
	select {
	case p.ch <- e:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		p.outcome("dropped").Inc()
	}
}

// Close drains the queue, delivers what it can, and stops the worker.
func (p *Publisher) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.ch)
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Publisher) run() {
	defer p.wg.Done()
	for e := range p.ch {
		body, err := json.Marshal(e)
		if err != nil {
			p.outcome("error").Inc()
			continue
		}
		for _, target := range p.targets() {
			p.deliver(target, body)
		}
	}
}

func (p *Publisher) deliver(target string, body []byte) {
	if err := p.cfg.Faults.Fire(FaultPublish); err != nil {
		p.outcome("error").Inc()
		return
	}
	resp, err := p.cfg.Client.Post(target+"/v1/template/publish",
		"application/json", bytes.NewReader(body))
	if err != nil {
		p.outcome("error").Inc()
		return
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		p.outcome("error").Inc()
		return
	}
	p.outcome("ok").Inc()
}

func (p *Publisher) outcome(o string) *obs.Counter {
	return p.cfg.Metrics.Counter("boundary_template_publishes_total",
		"Wrapper entries published to cluster peers, by outcome.",
		"outcome", o)
}
