package template

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/lru"
	"repro/internal/obs"
)

// ErrCorrupt marks a wrapper-store journal whose body (not merely its torn
// tail) fails to decode. Callers distinguish it from I/O errors with
// errors.Is; the store refuses to open over corruption rather than silently
// serving a partial memory of what it learned.
var ErrCorrupt = errors.New("template: corrupt store journal")

// Score is one compound-certainty row of a learned answer, mirroring the
// discover response's scores array.
type Score struct {
	Tag string  `json:"tag"`
	CF  float64 `json:"cf"`
}

// RankEntry is one row of a heuristic's ranking, mirroring the wire shape.
type RankEntry struct {
	Tag  string `json:"tag"`
	Rank int    `json:"rank"`
}

// Candidate is one candidate separator tag with its subtree count.
type Candidate struct {
	Tag   string `json:"tag"`
	Count int    `json:"count"`
}

// Entry is a learned wrapper: the complete, reconstructable discovery answer
// for one (fingerprint, options) key. It snapshots every field a discover
// response or downstream record split needs, so serving from the store is
// byte-identical to re-running the heuristics on an identically-shaped page.
// Entries are stored only for clean (non-degraded) discoveries.
type Entry struct {
	// Key is the hex store key (MakeKey of fingerprint + option salt).
	Key string `json:"key"`
	// Separator and TopTags are the discovery consensus.
	Separator string   `json:"separator"`
	TopTags   []string `json:"top_tags"`
	// Scores are all candidates with compound CFs, best first.
	Scores []Score `json:"scores"`
	// Rankings holds each contributing heuristic's ordered answer.
	Rankings map[string][]RankEntry `json:"rankings"`
	// Candidates are the candidate tags with counts, descending.
	Candidates []Candidate `json:"candidates"`
	// Subtree names the highest-fan-out node the answer was learned on; a
	// hit whose document disagrees is drift, not a servable answer.
	Subtree string `json:"subtree"`
	// Reasons carries per-heuristic decline reasons (library surface).
	Reasons map[string]string `json:"reasons,omitempty"`
	// Certainty is the compound CF of the winning separator — the entry's
	// health: below the store's MinCertainty it is evicted on lookup.
	Certainty float64 `json:"certainty"`
}

// Validate checks an entry is well-formed enough to serve: parseable key,
// non-empty separator and subtree, certainty in [0,1].
func (e *Entry) Validate() error {
	if e == nil {
		return errors.New("template: nil entry")
	}
	if _, err := ParseKey(e.Key); err != nil {
		return err
	}
	if e.Separator == "" {
		return errors.New("template: entry missing separator")
	}
	if e.Subtree == "" {
		return errors.New("template: entry missing subtree")
	}
	if e.Certainty < 0 || e.Certainty > 1 {
		return fmt.Errorf("template: entry certainty %v out of range", e.Certainty)
	}
	return nil
}

// clone deep-copies an entry so cached state can never be mutated through a
// pointer a caller (or the JSON decoder on a later Absorb) still holds.
func (e *Entry) clone() *Entry {
	c := *e
	c.TopTags = append([]string(nil), e.TopTags...)
	c.Scores = append([]Score(nil), e.Scores...)
	c.Candidates = append([]Candidate(nil), e.Candidates...)
	if e.Rankings != nil {
		c.Rankings = make(map[string][]RankEntry, len(e.Rankings))
		for k, v := range e.Rankings {
			c.Rankings[k] = append([]RankEntry(nil), v...)
		}
	}
	if e.Reasons != nil {
		c.Reasons = make(map[string]string, len(e.Reasons))
		for k, v := range e.Reasons {
			c.Reasons[k] = v
		}
	}
	return &c
}

// Equal reports semantic equality. The store uses it to suppress redundant
// journal writes and publish loops when a replica re-learns what it already
// knows; spot-checks use it to compare a stored answer against a fresh
// full-discovery answer.
func (e *Entry) Equal(o *Entry) bool {
	ej, _ := json.Marshal(e)
	oj, _ := json.Marshal(o)
	return string(ej) == string(oj)
}

// DefaultMinCertainty is the drift floor: stored answers whose compound CF
// fell below it are evicted on lookup and relearned. The paper's Figure-2
// worked example lands at 0.9996; anything under one-half means the
// heuristics themselves were ambivalent, so we don't trust a cached copy.
const DefaultMinCertainty = 0.5

// DefaultCapacity bounds the in-memory entry count when Config.Capacity is
// zero. One entry is a few hundred bytes; 4096 covers far more distinct
// templates than any real site exhibits.
const DefaultCapacity = 4096

// Fault hook points owned by this package (catalog: docs/ROBUSTNESS.md).
const (
	// FaultLookup fires at the head of every store lookup; an armed error
	// turns the lookup into a miss (counted as a lookup error), proving
	// a degraded store falls back to full discovery.
	FaultLookup = "template/lookup"
	// FaultPublish fires before each peer publish attempt.
	FaultPublish = "template/publish"
)

// Config configures a Store.
type Config struct {
	// Capacity bounds in-memory entries (LRU); 0 means DefaultCapacity.
	Capacity int
	// Path is the disk journal; empty means memory-only.
	Path string
	// MinCertainty is the drift floor; 0 means DefaultMinCertainty. Use a
	// negative value to disable the floor entirely.
	MinCertainty float64
	// SpotCheckEvery re-verifies every Nth hit against full discovery
	// (deterministic cadence, not sampling, so tests are exact); 0
	// disables spot-checks.
	SpotCheckEvery int
	// Metrics receives boundary_template_* series; nil disables.
	Metrics *obs.Registry
	// Faults is the chaos-test hook set; nil disables.
	Faults *faultinject.Set
}

// Store maps template keys to learned wrappers. It is safe for concurrent
// use, optionally journaled to disk for warm restarts, and shared: in a
// cluster every in-process replica holds the same *Store, and remote
// replicas are warmed through a Publisher wired to OnStore.
type Store struct {
	cfg Config

	journal *journal.Journal // nil when memory-only

	cache *lru.Cache[Key, *Entry]

	hits atomic.Uint64 // lifetime hit ordinal, drives spot-check cadence

	// OnStore, when non-nil, observes every locally-learned entry (Put,
	// not Absorb — absorbed entries came from a peer and re-announcing
	// them would loop). Set it before the store sees traffic.
	OnStore func(*Entry)

	mHits, mMisses, mStores, mAbsorbs, mLookupErrs *obs.Counter
	mEntries                                       *obs.Gauge
}

// Open creates a store. With a non-empty cfg.Path it replays the journal
// through the shared internal/journal machinery (tolerating a torn final
// line, exactly like the bulk checkpoint journal) and keeps the file open
// for appends; a journal corrupt before its final line returns an error
// wrapping ErrCorrupt.
func Open(cfg Config) (*Store, error) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.MinCertainty == 0 {
		cfg.MinCertainty = DefaultMinCertainty
	}
	s := &Store{
		cfg:   cfg,
		cache: lru.New[Key, *Entry](cfg.Capacity),

		mHits:       cfg.Metrics.Counter("boundary_template_hits_total", "Template fast-path lookups served from the wrapper store."),
		mMisses:     cfg.Metrics.Counter("boundary_template_misses_total", "Template fast-path lookups that fell back to full discovery."),
		mStores:     cfg.Metrics.Counter("boundary_template_stores_total", "Learned wrappers stored locally."),
		mAbsorbs:    cfg.Metrics.Counter("boundary_template_absorbs_total", "Learned wrappers absorbed from cluster peers."),
		mLookupErrs: cfg.Metrics.Counter("boundary_template_lookup_errors_total", "Store lookups that failed and degraded to a miss."),
		mEntries:    cfg.Metrics.Gauge("boundary_template_entries", "Learned wrappers currently held in memory."),
	}
	if cfg.Path != "" {
		j, err := journal.Open(journal.Config{
			Path:     cfg.Path,
			Snapshot: s.snapshot,
			Faults:   cfg.Faults,
		}, s.applyPut, s.applyEvict)
		if err != nil {
			if errors.Is(err, journal.ErrCorrupt) {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			return nil, err
		}
		s.journal = j
	}
	s.mEntries.Set(float64(s.cache.Len()))
	return s, nil
}

// applyPut replays one journaled put into the cache; a malformed or invalid
// entry is an error the journal layer maps to torn-tail tolerance or
// ErrCorrupt by position.
func (s *Store) applyPut(put json.RawMessage) error {
	var e Entry
	if err := json.Unmarshal(put, &e); err != nil {
		return err
	}
	if err := e.Validate(); err != nil {
		return err
	}
	k, _ := ParseKey(e.Key)
	s.cache.Add(k, &e)
	return nil
}

// applyEvict replays one journaled eviction.
func (s *Store) applyEvict(key string) error {
	k, err := ParseKey(key)
	if err != nil {
		return err
	}
	s.cache.Remove(k)
	return nil
}

// snapshot emits every live entry for journal compaction, least recently
// used first (the order that, replayed, reproduces the recency state).
func (s *Store) snapshot() []json.RawMessage {
	vals := s.cache.Values()
	out := make([]json.RawMessage, 0, len(vals))
	for _, e := range vals {
		b, err := json.Marshal(e)
		if err != nil {
			continue
		}
		out = append(out, b)
	}
	return out
}

// appendPut journals one stored entry.
func (s *Store) appendPut(e *Entry) {
	if s.journal == nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	s.journal.Append(b, s.cache.Len())
}

// Lookup returns the stored entry for key, if one exists and is healthy. A
// lookup fault (chaos: FaultLookup) or a below-floor certainty degrades to a
// miss; the latter also evicts so the next discovery relearns the template.
func (s *Store) Lookup(key Key) (*Entry, bool) {
	if s == nil {
		return nil, false
	}
	if err := s.cfg.Faults.Fire(FaultLookup); err != nil {
		s.mLookupErrs.Inc()
		s.mMisses.Inc()
		return nil, false
	}
	e, ok := s.cache.Get(key)
	if !ok {
		s.mMisses.Inc()
		return nil, false
	}
	if e.Certainty < s.cfg.MinCertainty {
		s.evict(key, "low_certainty")
		s.mMisses.Inc()
		return nil, false
	}
	s.mHits.Inc()
	return e.clone(), true
}

// LookupDoc is Lookup over a raw HTML document: it fingerprints doc with the
// fast scanner and returns the entry, the computed key (for a later Put on
// miss), and whether it hit.
func (s *Store) LookupDoc(doc, salt string) (*Entry, Key, bool) {
	key := MakeKey(FingerprintDoc(doc), salt)
	e, ok := s.Lookup(key)
	return e, key, ok
}

// SpotCheck reports whether this hit should be re-verified against full
// discovery. The cadence is a deterministic 1-in-N on the lifetime hit
// ordinal, so tests can force the Nth request to verify.
func (s *Store) SpotCheck() bool {
	if s == nil || s.cfg.SpotCheckEvery <= 0 {
		return false
	}
	return s.hits.Add(1)%uint64(s.cfg.SpotCheckEvery) == 0
}

// ReportSpotCheck records a spot-check outcome ("ok" or "divergent").
func (s *Store) ReportSpotCheck(outcome string) {
	if s == nil {
		return
	}
	s.cfg.Metrics.Counter("boundary_template_spot_checks_total",
		"Template hits re-verified against full discovery, by outcome.",
		"outcome", outcome).Inc()
}

// Put stores a locally-learned entry: validates, caches, journals, and
// announces it through OnStore. Identical re-learns are dropped so replicas
// don't re-journal and re-publish what they already know.
func (s *Store) Put(e *Entry) error {
	if s == nil {
		return nil
	}
	return s.add(e, true)
}

// Absorb stores an entry received from a cluster peer. It is Put without the
// OnStore announcement — re-publishing a received entry would bounce it
// around the ring forever.
func (s *Store) Absorb(e *Entry) error {
	if s == nil {
		return nil
	}
	return s.add(e, false)
}

func (s *Store) add(e *Entry, local bool) error {
	if err := e.Validate(); err != nil {
		return err
	}
	key, _ := ParseKey(e.Key)
	if old, ok := s.cache.Get(key); ok && old.Equal(e) {
		return nil
	}
	e = e.clone()
	s.cache.Add(key, e)
	s.mEntries.Set(float64(s.cache.Len()))
	if local {
		s.mStores.Inc()
	} else {
		s.mAbsorbs.Inc()
	}
	s.appendPut(e)
	if local && s.OnStore != nil {
		s.OnStore(e)
	}
	return nil
}

// ReportDrift evicts key because its stored answer no longer matches the
// document (reason "divergent"), the page shape ("subtree_mismatch"), or the
// certainty floor ("low_certainty"), and counts the eviction by reason.
func (s *Store) ReportDrift(key Key, reason string) {
	if s == nil {
		return
	}
	s.evict(key, reason)
}

func (s *Store) evict(key Key, reason string) {
	if s.cache.Remove(key) && s.journal != nil {
		s.journal.AppendEvict(key.String(), s.cache.Len())
	}
	s.mEntries.Set(float64(s.cache.Len()))
	s.cfg.Metrics.Counter("boundary_template_drift_total",
		"Stored wrappers evicted as drifted, by reason.", "reason", reason).Inc()
}

// Stats is a point-in-time snapshot of the store's counters for the stats
// endpoint and tests.
type Stats struct {
	Entries      int     `json:"entries"`
	Hits         float64 `json:"hits"`
	Misses       float64 `json:"misses"`
	Stores       float64 `json:"stores"`
	Absorbs      float64 `json:"absorbs"`
	LookupErrors float64 `json:"lookup_errors"`
}

// Stats returns current counters. Without a metrics registry only Entries is
// populated.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Entries:      s.cache.Len(),
		Hits:         s.mHits.Value(),
		Misses:       s.mMisses.Value(),
		Stores:       s.mStores.Value(),
		Absorbs:      s.mAbsorbs.Value(),
		LookupErrors: s.mLookupErrs.Value(),
	}
}

// Len returns the number of entries held in memory.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	return s.cache.Len()
}

// Entries returns a snapshot of all live entries, least recently used first
// (the publisher uses it to warm a newly-joined peer).
func (s *Store) Entries() []*Entry {
	if s == nil {
		return nil
	}
	vals := s.cache.Values()
	out := make([]*Entry, len(vals))
	for i, e := range vals {
		out[i] = e.clone()
	}
	return out
}

// Reset drops every in-memory entry (journal untouched; benchmarks use it to
// force the miss path).
func (s *Store) Reset() {
	if s == nil {
		return
	}
	for _, e := range s.cache.Values() {
		if k, err := ParseKey(e.Key); err == nil {
			s.cache.Remove(k)
		}
	}
	s.mEntries.Set(float64(s.cache.Len()))
}

// Close compacts and closes the journal. The store must not be used after
// Close; a memory-only store's Close is a no-op.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	return s.journal.Close()
}
