package template

import (
	"crypto/sha256"
	"strings"
	"sync"

	"repro/internal/htmlparse"
)

// FingerprintDoc fingerprints a raw HTML document without building the tag
// tree: a single tag-only pass that skips text, entity decoding, and
// attribute materialization. The tag grammar comes from the htmlparse scan
// core (the same primitives the arena tokenizer runs on), and the balancing
// rules replicate tagtree.Normalize (void elements, implied closings, orphan
// end-tags, raw-text content). It returns exactly what
// FingerprintTree(tagtree.Parse(doc)) returns, at a small fraction of the
// cost — this is what lets a template hit undercut full discovery by ~50×.
func FingerprintDoc(doc string) Fingerprint {
	sc := scanPool.Get().(*docScanner)
	sc.reset()
	sc.scan(doc)
	fp := sc.fingerprint()
	scanPool.Put(sc)
	return fp
}

var scanPool = sync.Pool{New: func() any { return newDocScanner() }}

// shapeEvent packs one structural event: nameID<<1 for an element opening,
// the constant eventClose for a region closing.
type shapeEvent int32

const eventClose shapeEvent = 1

func openEvent(id int32) shapeEvent { return shapeEvent(id << 1) }

// elemRec is one completed element region: its event range (half-open) and
// its fan-out, collected so the highest-fan-out winner can be picked after
// the scan without building nodes.
type elemRec struct {
	enter, end int32
	fan        int32
}

type docScanner struct {
	events  []shapeEvent
	stack   []int32 // open element name IDs, innermost last
	open    []int32 // enter-event index per open element
	fan     []int32 // child count per open element
	elems   []elemRec
	rootFan int32

	nbuf []byte // lowercased tag-name scratch
	sbuf []byte // hash serialization scratch

	// extra interns tag names outside the built-in table, per scan.
	extra      map[string]int32
	extraNames []string
}

func newDocScanner() *docScanner {
	return &docScanner{
		events: make([]shapeEvent, 0, 256),
		stack:  make([]int32, 0, 32),
		open:   make([]int32, 0, 32),
		fan:    make([]int32, 0, 32),
		elems:  make([]elemRec, 0, 128),
		nbuf:   make([]byte, 0, 16),
		sbuf:   make([]byte, 0, 1024),
	}
}

// maxRetained bounds the pooled buffers: a pathological document must not
// pin its peak allocation in the pool forever.
const maxRetained = 1 << 16

func (sc *docScanner) reset() {
	if cap(sc.events) > maxRetained {
		sc.events = make([]shapeEvent, 0, 256)
		sc.elems = make([]elemRec, 0, 128)
	}
	sc.events = sc.events[:0]
	sc.stack = sc.stack[:0]
	sc.open = sc.open[:0]
	sc.fan = sc.fan[:0]
	sc.elems = sc.elems[:0]
	sc.rootFan = 0
	if sc.extra != nil {
		sc.extra = nil
		sc.extraNames = sc.extraNames[:0]
	}
}

func (sc *docScanner) name(id int32) string {
	if int(id) < len(baseNames) {
		return baseNames[id]
	}
	return sc.extraNames[int(id)-len(baseNames)]
}

// intern returns the ID of the lowercased tag name raw.
func (sc *docScanner) intern(raw string) int32 {
	sc.nbuf = sc.nbuf[:0]
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		sc.nbuf = append(sc.nbuf, c)
	}
	if id, ok := baseIDs[string(sc.nbuf)]; ok {
		return id
	}
	if id, ok := sc.extra[string(sc.nbuf)]; ok {
		return id
	}
	if sc.extra == nil {
		sc.extra = make(map[string]int32, 4)
	}
	name := string(sc.nbuf)
	id := int32(len(baseNames) + len(sc.extraNames))
	sc.extraNames = append(sc.extraNames, name)
	sc.extra[name] = id
	return id
}

// noteChild credits a new element to its parent's fan-out (or the synthetic
// root's when the stack is empty).
func (sc *docScanner) noteChild() {
	if n := len(sc.fan); n > 0 {
		sc.fan[n-1]++
	} else {
		sc.rootFan++
	}
}

func (sc *docScanner) push(id int32) {
	sc.noteChild()
	sc.open = append(sc.open, int32(len(sc.events)))
	sc.stack = append(sc.stack, id)
	sc.fan = append(sc.fan, 0)
	sc.events = append(sc.events, openEvent(id))
}

// pop closes the innermost open element, recording its completed region.
func (sc *docScanner) pop() {
	top := len(sc.stack) - 1
	sc.events = append(sc.events, eventClose)
	sc.elems = append(sc.elems, elemRec{
		enter: sc.open[top],
		end:   int32(len(sc.events)),
		fan:   sc.fan[top],
	})
	sc.stack = sc.stack[:top]
	sc.open = sc.open[:top]
	sc.fan = sc.fan[:top]
}

// leaf records a childless region (void element or self-closing tag).
func (sc *docScanner) leaf(id int32) {
	sc.noteChild()
	enter := int32(len(sc.events))
	sc.events = append(sc.events, openEvent(id), eventClose)
	sc.elems = append(sc.elems, elemRec{enter: enter, end: enter + 2})
}

// scan runs the tag-only pass over doc on the htmlparse scan core
// (MarkupStartsAt / ScanDeclarationSpans / ScanPISpans / ScanTagAttrs /
// RawTextEnd), so the grammar — what counts as markup, how comments and
// bogus comments terminate, how quoted attribute values hide '>', when a
// start tag is self-closing, and how raw-text content ends — is the
// tokenizer's own, not a replica. The balancing decisions mirror
// tagtree.Normalize: voids and self-closing tags are leaves, arriving tags
// imply closings per the HTML 3.2/4.0 optional-end-tag rules (stopped at a
// table boundary), orphan end-tags are dropped, and EOF closes everything.
func (sc *docScanner) scan(doc string) {
	i, n := 0, len(doc)
	for i < n {
		if doc[i] != '<' {
			j := strings.IndexByte(doc[i:], '<')
			if j < 0 {
				break
			}
			i += j
		}
		if !htmlparse.MarkupStartsAt(doc, i) {
			// A lone '<' that is not markup: character data.
			i++
			continue
		}
		switch doc[i+1] {
		case '!':
			_, _, i, _ = htmlparse.ScanDeclarationSpans(doc, i)
		case '?':
			_, _, i = htmlparse.ScanPISpans(doc, i)
		case '/':
			i = sc.endTag(doc, i)
		default:
			i = sc.startTag(doc, i)
		}
	}
	for len(sc.stack) > 0 {
		sc.pop()
	}
}

// skipPast returns the index just past the first b at or after from, or
// len(s) when absent (mirrors the tokenizer's indexFrom).
func skipPast(s string, from int, b byte) int {
	if i := strings.IndexByte(s[from:], b); i >= 0 {
		return from + i + 1
	}
	return len(s)
}

func (sc *docScanner) endTag(s string, i int) int {
	start := i + 2
	j := htmlparse.NameEnd(s, start)
	id := sc.intern(s[start:j])
	j = skipPast(s, j, '>')
	if isVoidID(id) {
		return j // </br> and friends: orphan by definition.
	}
	match := -1
	for k := len(sc.stack) - 1; k >= 0; k-- {
		if sc.stack[k] == id {
			match = k
			break
		}
	}
	if match < 0 {
		return j // no corresponding start-tag: dropped.
	}
	for len(sc.stack) > match {
		sc.pop()
	}
	return j
}

func (sc *docScanner) startTag(s string, i int) int {
	start := i + 1
	j := htmlparse.NameEnd(s, start)
	id := sc.intern(s[start:j])
	// nil visit: the fingerprint only needs structure, so attribute spans are
	// scanned (for the quote-aware '>' rules) but never materialized.
	j, selfClosing := htmlparse.ScanTagAttrs(s, j, nil)

	if isVoidID(id) {
		sc.leaf(id)
		return j
	}
	if closes := autoCloseIDs[id]; closes != nil {
		for len(sc.stack) > 0 {
			top := sc.stack[len(sc.stack)-1]
			if !contains(closes, top) || top == tableID {
				break
			}
			sc.pop()
		}
	}
	if selfClosing {
		sc.leaf(id)
		return j
	}
	sc.push(id)
	if isRawTextID(id) {
		// Raw-text content runs to the first case-insensitive "</name" (no
		// delimiter check after the name, exactly like the tokenizer); the
		// end-tag itself is then parsed by the main loop.
		j = htmlparse.RawTextEnd(s, j, sc.name(id))
	}
	return j
}

func contains(ids []int32, id int32) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// fingerprint picks the highest-fan-out region (HighestFanOut's exact tie
// rules: the first element in document order whose fan-out reaches the
// maximum, the synthetic root only when no element matches its fan-out) and
// hashes its shape serialization.
func (sc *docScanner) fingerprint() Fingerprint {
	best := elemRec{fan: -1}
	for _, e := range sc.elems {
		if e.fan > best.fan {
			best = e
		} else if e.fan == best.fan && e.enter < best.enter {
			best = e
		}
	}
	buf := sc.sbuf[:0]
	if best.fan < sc.rootFan {
		// The synthetic root wins: its shape wraps every top-level event.
		buf = append(buf, shapeOpen)
		buf = append(buf, rootName...)
		buf = append(buf, shapeSep)
		buf = sc.appendEvents(buf, 0, int32(len(sc.events)))
		buf = append(buf, shapeClose)
	} else {
		buf = sc.appendEvents(buf, best.enter, best.end)
	}
	if cap(buf) <= maxRetained {
		sc.sbuf = buf
	}
	return sha256.Sum256(buf)
}

func (sc *docScanner) appendEvents(buf []byte, from, to int32) []byte {
	for _, ev := range sc.events[from:to] {
		if ev == eventClose {
			buf = append(buf, shapeClose)
			continue
		}
		buf = append(buf, shapeOpen)
		buf = append(buf, sc.name(int32(ev>>1))...)
		buf = append(buf, shapeSep)
	}
	return buf
}

// rootName matches the tagtree synthetic document root.
const rootName = "#document"

// The built-in name table: fixed IDs shared by every scan so the hot path
// never allocates a tag name. It must cover every name with normalization
// semantics (voids, raw-text elements, optional-end-tag participants); other
// common names are included purely to dodge the per-scan intern path.
var baseNames = []string{
	// Voids (htmlparse.IsVoid must hold for each).
	"area", "base", "basefont", "bgsound", "br", "col", "embed", "frame",
	"hr", "img", "input", "isindex", "keygen", "link", "meta", "param",
	"source", "spacer", "track", "wbr",
	// Raw-text elements (htmlparse.IsRawText).
	"script", "style", "textarea", "title", "xmp", "plaintext",
	// Optional-end-tag participants (tagtree's autoClose) and the table
	// scope barrier.
	"li", "p", "dt", "dd", "option", "tr", "td", "th", "thead", "tbody",
	"tfoot", "colgroup", "table",
	// Common structural names.
	"html", "head", "body", "div", "span", "a", "b", "i", "u", "em",
	"strong", "font", "center", "ul", "ol", "dl", "h1", "h2", "h3", "h4",
	"h5", "h6", "form", "select", "blockquote", "pre", "tt", "small",
	"big", "strike", "code", "address", "caption", "label", "fieldset",
	"article", "section", "nav", "header", "footer", "main", "aside",
}

var (
	baseIDs      = make(map[string]int32, len(baseNames))
	baseVoid     []bool
	baseRaw      []bool
	autoCloseIDs map[int32][]int32
	tableID      int32
)

func init() {
	baseVoid = make([]bool, len(baseNames))
	baseRaw = make([]bool, len(baseNames))
	for i, n := range baseNames {
		if _, dup := baseIDs[n]; dup {
			panic("template: duplicate base name " + n)
		}
		baseIDs[n] = int32(i)
		baseVoid[i] = htmlparse.IsVoid(n)
		baseRaw[i] = htmlparse.IsRawText(n)
	}
	// Every name the normalization rules special-case must be in the base
	// table, or the ID predicates below would miss it.
	for _, n := range []string{
		"area", "base", "basefont", "bgsound", "br", "col", "embed",
		"frame", "hr", "img", "input", "isindex", "keygen", "link", "meta",
		"param", "source", "spacer", "track", "wbr",
	} {
		if !htmlparse.IsVoid(n) {
			panic("template: base table lists non-void " + n)
		}
	}
	tableID = baseIDs["table"]
	autoCloseIDs = make(map[int32][]int32)
	for arriving, closes := range map[string][]string{
		"li":       {"li"},
		"p":        {"p"},
		"dt":       {"dt", "dd"},
		"dd":       {"dt", "dd"},
		"option":   {"option"},
		"tr":       {"td", "th", "tr"},
		"td":       {"td", "th"},
		"th":       {"td", "th"},
		"thead":    {"td", "th", "tr"},
		"tbody":    {"td", "th", "tr", "thead"},
		"tfoot":    {"td", "th", "tr", "tbody"},
		"colgroup": {"colgroup"},
	} {
		var ids []int32
		for _, c := range closes {
			ids = append(ids, baseIDs[c])
		}
		autoCloseIDs[baseIDs[arriving]] = ids
	}
}

func isVoidID(id int32) bool    { return int(id) < len(baseVoid) && baseVoid[id] }
func isRawTextID(id int32) bool { return int(id) < len(baseRaw) && baseRaw[id] }
