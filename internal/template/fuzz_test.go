package template

import (
	"testing"

	"repro/internal/tagtree"
)

// FuzzFingerprintDoc pins the load-bearing equivalence of the fast path: the
// specialized tag-only scanner must agree byte-for-byte with the reference
// tree walk on arbitrary input. Any divergence means a warm request could be
// served a wrapper learned for a differently-shaped page.
func FuzzFingerprintDoc(f *testing.F) {
	seeds := []string{
		"",
		"<html><body><hr><hr><hr></body></html>",
		"<html><body><ul><li>a<li>b<li>c</ul></body></html>",
		"<table><tr><td>a<tr><td>b</table>",
		"<script>'</scr'+'ipt>'</script><p>a</p>",
		"<div a='<b>' b=\">\"><p>x</div>",
		"<!doctype html><!-- c --><p>a<p>b",
		"<br/><BR></br><x:y.z-w_v>t</x:y.z-w_v>",
		"<select><option>1<option>2</select>",
		"<p <div> </p x>",
		"<textarea></textarea\u00e9></textarea>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		fast := FingerprintDoc(doc)
		ref, _ := FingerprintTree(tagtree.Parse(doc))
		if fast != ref {
			t.Fatalf("scanner/tree fingerprint divergence on %q:\n  doc  %s\n  tree %s",
				doc, fast, ref)
		}
		if again := FingerprintDoc(doc); again != fast {
			t.Fatalf("FingerprintDoc not deterministic on %q", doc)
		}
	})
}
