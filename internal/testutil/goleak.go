// Package testutil holds test-only helpers shared across packages. It must
// not be imported by production code.
package testutil

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// VerifyTestMain runs a package's tests and then fails the run if goroutines
// started by the tests are still alive — a hand-rolled, stdlib-only take on
// goroutine-leak detection. Use it as the package's TestMain:
//
//	func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
//
// Goroutines are given a grace period to wind down (httptest servers and
// worker pools exit asynchronously after their tests complete), and
// well-known runtime/testing/net-internal stacks are ignored.
func VerifyTestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := waitForDrain(5 * time.Second); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "goroutine leak: %d goroutine(s) still running after tests:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// waitForDrain polls until no unexpected goroutines remain or the deadline
// passes, returning the stacks of any stragglers.
func waitForDrain(timeout time.Duration) []string {
	// Keep-alive connections pin net/http readLoop/writeLoop goroutines;
	// drop them before judging.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(timeout)
	for {
		leaked := interestingStacks()
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// ignoredStackMarkers identify goroutines that are part of normal process
// machinery rather than test leftovers.
var ignoredStackMarkers = []string{
	"testing.Main(",
	"testing.(*M).",
	"testing.tRunner(",
	"runtime.goexit",
	"runtime.gc",
	"runtime.MHeap_Scavenger",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"signal.signal_recv",
	"signal.loop",
	"runtime.ensureSigM",
	"GC sweep wait",
	"GC scavenge wait",
	"finalizer wait",
	"os/signal.NotifyContext",
	"runtime/trace.Start",
	"created by runtime",
}

// interestingStacks returns the stack dumps of goroutines that are neither
// this one nor recognizably process machinery.
func interestingStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var leaked []string
	for i, g := range strings.Split(string(buf), "\n\n") {
		if i == 0 {
			continue // the goroutine calling runtime.Stack — ours
		}
		ignored := false
		for _, marker := range ignoredStackMarkers {
			if strings.Contains(g, marker) {
				ignored = true
				break
			}
		}
		if !ignored {
			leaked = append(leaked, g)
		}
	}
	return leaked
}
