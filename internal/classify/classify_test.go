package classify

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/ontology"
)

// singleObituary is a detail page with exactly one record.
const singleObituary = `<html><body>
<h1>Obituary</h1>
<div>
<b>Harold W. Whitaker</b> passed away on March 3, 1998. Harold was born on
June 1, 1920 in Ogden. Funeral services will be held Friday at 11:00 a.m.
at WASATCH FUNERAL HOME. Interment will follow in Evergreen Cemetery.
<p>He is survived by his wife and three daughters.</p>
<p>The family thanks the staff of the county hospital.</p>
</div>
</body></html>`

// navPage has structure (a link list) but no record content.
const navPage = `<html><body>
<ul>
<li><a href="news.html">News</a>
<li><a href="sports.html">Sports</a>
<li><a href="obits.html">Obituaries</a>
<li><a href="classifieds.html">Classifieds</a>
<li><a href="weather.html">Weather</a>
<li><a href="contact.html">Contact us</a>
</ul>
</body></html>`

func obituaryOnt() *ontology.Ontology { return ontology.Builtin("obituary") }

func TestClassifyMultiRecordPages(t *testing.T) {
	for _, d := range corpus.TestDocuments() {
		res, err := Classify(d.HTML, d.Site.Domain.Ontology())
		if err != nil {
			t.Fatal(err)
		}
		if res.Kind != MultipleRecords {
			t.Errorf("%s %s: kind = %v (estimate %.1f, fanout %d), want multiple-records",
				d.Site.Name, d.Site.Domain, res.Kind, res.Estimate, res.FanOut)
		}
		if res.Estimate < 2 {
			t.Errorf("%s: estimate %.1f too low for %d records", d.Site.Name, res.Estimate, d.Records)
		}
	}
}

func TestClassifySingleRecordPage(t *testing.T) {
	res, err := Classify(singleObituary, obituaryOnt())
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != SingleRecord {
		t.Errorf("kind = %v (estimate %.2f), want single-record", res.Kind, res.Estimate)
	}
}

func TestClassifyNoRecordsPage(t *testing.T) {
	res, err := Classify(navPage, obituaryOnt())
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != NoRecords {
		t.Errorf("kind = %v (estimate %.2f), want no-records", res.Kind, res.Estimate)
	}
}

func TestClassifyStructuralVeto(t *testing.T) {
	// An article that mentions several deaths in running prose has the
	// keyword counts of "multiple records" but no repeated structure: a
	// single flat paragraph.
	article := `<html><body><p>` +
		strings.Repeat(`The victim passed away on March 3, 1998. Funeral services
were announced. Interment followed. `, 4) +
		`</p></body></html>`
	res, err := Classify(article, obituaryOnt())
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind == MultipleRecords && res.FanOut < 4 {
		t.Errorf("flat article classified multiple-records with fan-out %d", res.FanOut)
	}
}

func TestClassifyRequiresUsableOntology(t *testing.T) {
	tiny := ontology.MustParse("ontology X\nentity X\nobject A : one-to-one {\nkeyword `k`\n}")
	if _, err := Classify(singleObituary, tiny); err == nil {
		t.Error("expected error for ontology without 3 record-identifying fields")
	}
}

func TestSpanAnalysisDetectsSplitRecord(t *testing.T) {
	// One obituary split across two pages: the death notice on page one,
	// funeral and interment details on page two.
	page1 := `<html><body><div><b>Harold W. Whitaker</b> passed away on
March 3, 1998, at his home, after a long illness. He was born June 1, 1920.
<a href="page2.html">continued</a></div></body></html>`
	page2 := `<html><body><div>Funeral services will be held Friday at
11:00 a.m. at WASATCH FUNERAL HOME. Interment will follow in Evergreen
Cemetery.</div></body></html>`

	res, err := SpanAnalysis([]string{page1, page2}, obituaryOnt())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Spanning {
		t.Fatalf("spanning not detected: per-page %v/%v (est %.2f/%.2f), joint %v (est %.2f)",
			res.PerPage[0].Kind, res.PerPage[1].Kind,
			res.PerPage[0].Estimate, res.PerPage[1].Estimate,
			res.Joint.Kind, res.Joint.Estimate)
	}
	for i, r := range res.PerPage {
		if r.Kind != PartialRecord {
			t.Errorf("page %d kind = %v, want partial-record", i+1, r.Kind)
		}
	}
}

func TestSpanAnalysisWholeRecordsNotSpanning(t *testing.T) {
	// Two complete single-record pages are not a spanning record.
	res, err := SpanAnalysis([]string{singleObituary, singleObituary}, obituaryOnt())
	if err != nil {
		t.Fatal(err)
	}
	if res.Spanning {
		t.Error("two complete records misreported as spanning")
	}
	for i, r := range res.PerPage {
		if r.Kind != SingleRecord {
			t.Errorf("page %d kind = %v, want single-record", i+1, r.Kind)
		}
	}
}

func TestSpanAnalysisSinglePage(t *testing.T) {
	res, err := SpanAnalysis([]string{singleObituary}, obituaryOnt())
	if err != nil {
		t.Fatal(err)
	}
	if res.Spanning {
		t.Error("single page cannot span")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		NoRecords: "no-records", SingleRecord: "single-record",
		MultipleRecords: "multiple-records", PartialRecord: "partial-record",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should include its number")
	}
}
