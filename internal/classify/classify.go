// Package classify addresses the paper's stated future work (§1): checking
// the assumptions the Record-Boundary Discovery Algorithm makes about its
// input. The paper assumes every document (1) has multiple records and
// (2) contains at least one record-separator tag, and explicitly defers
// "to determine if a record spans multiple Web documents or if a record
// resides in a single Web document" to future research.
//
// The classifier reuses the machinery the paper already has: the ontology's
// record-identifying fields estimate how many records a page holds (the OM
// heuristic's counting argument), and the tag tree's highest-fan-out
// subtree says whether the page even has a repeated structure to separate.
package classify

import (
	"fmt"

	"repro/internal/ontology"
	"repro/internal/recognizer"
	"repro/internal/tagtree"
)

// Kind is the classification of one Web document.
type Kind int

// Document kinds.
const (
	// NoRecords: the page shows no evidence of records of interest
	// (navigation pages, front pages, error pages).
	NoRecords Kind = iota
	// SingleRecord: the page holds exactly one record (a detail page); the
	// boundary-discovery algorithm should not be applied.
	SingleRecord
	// MultipleRecords: the paper's assumed input — run the
	// Record-Boundary Discovery Algorithm.
	MultipleRecords
	// PartialRecord: the page holds a fragment of a record (a record that
	// spans several documents); only SpanAnalysis reports this kind.
	PartialRecord
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case NoRecords:
		return "no-records"
	case SingleRecord:
		return "single-record"
	case MultipleRecords:
		return "multiple-records"
	case PartialRecord:
		return "partial-record"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Result carries the classification with its supporting evidence.
type Result struct {
	Kind Kind
	// Estimate is the record-count estimate from the ontology's
	// record-identifying fields (the OM counting argument).
	Estimate float64
	// FieldCounts are the per-field indicator counts behind the estimate.
	FieldCounts map[string]int
	// FanOut is the highest fan-out in the tag tree.
	FanOut int
	// Candidates is the number of candidate separator tags in the
	// highest-fan-out subtree.
	Candidates int
}

// thresholds for the record-count estimate. Between a half and
// one-and-a-half indicators per field reads as "one record".
const (
	noRecordCeiling     = 0.5
	singleRecordCeiling = 1.5
)

// Classify decides whether the document satisfies the paper's input
// assumptions. The ontology is required: without record-identifying fields
// there is no content-based evidence of records (the structural signal
// alone cannot distinguish a record list from a navigation menu).
func Classify(doc string, ont *ontology.Ontology) (*Result, error) {
	fields, ok := ont.RecordIdentifyingFields()
	if !ok {
		return nil, fmt.Errorf("classify: ontology %s has fewer than %d record-identifying fields",
			ont.Name, ontology.MinRecordIdentifyingFields)
	}
	tree := tagtree.Parse(doc)
	// Recognize over the whole document: unlike boundary discovery, the
	// classifier cannot presume records live in the highest-fan-out
	// subtree (a single-record page has no such concentration).
	table := recognizer.Recognize(ont, tree, tree.Root)

	res := &Result{FieldCounts: make(map[string]int, len(fields))}
	sum := 0
	for _, f := range fields {
		n := recognizer.FieldCount(table, f)
		res.FieldCounts[f.Set.Name] = n
		sum += n
	}
	res.Estimate = float64(sum) / float64(len(fields))

	hf := tree.HighestFanOut()
	res.FanOut = hf.FanOut()
	res.Candidates = len(tagtree.Candidates(hf, tagtree.DefaultCandidateThreshold))

	switch {
	case res.Estimate < noRecordCeiling:
		res.Kind = NoRecords
	case res.Estimate < singleRecordCeiling:
		res.Kind = SingleRecord
	default:
		res.Kind = MultipleRecords
	}
	// Structural veto: "multiple records" additionally requires a repeated
	// structure to separate — at least one candidate tag and a fan-out
	// comparable to the estimate. A long article that merely *mentions*
	// many death dates has the counts but not the structure.
	if res.Kind == MultipleRecords && (res.Candidates == 0 || float64(res.FanOut)+1 < res.Estimate) {
		res.Kind = SingleRecord
	}
	return res, nil
}

// SpanResult is the outcome of analysing an ordered sequence of pages that
// may jointly hold records.
type SpanResult struct {
	// PerPage classifies each page in isolation.
	PerPage []*Result
	// Joint classifies the concatenation of all pages.
	Joint *Result
	// Spanning is true when the pages are fragments of record(s) that span
	// documents: individually they look like partial records (field counts
	// uneven, estimate below one) while jointly they complete.
	Spanning bool
}

// SpanAnalysis addresses the paper's "record spans multiple Web documents"
// question for an ordered page sequence (a story split across pages, a
// record with a continuation link). Pages that individually classify below
// a whole record but whose concatenation reaches one or more records are
// reported as spanning, and their per-page kinds are rewritten to
// PartialRecord.
func SpanAnalysis(pages []string, ont *ontology.Ontology) (*SpanResult, error) {
	out := &SpanResult{}
	var joined string
	for _, p := range pages {
		r, err := Classify(p, ont)
		if err != nil {
			return nil, err
		}
		out.PerPage = append(out.PerPage, r)
		joined += p
	}
	joint, err := Classify(joined, ont)
	if err != nil {
		return nil, err
	}
	out.Joint = joint

	// Spanning: no single page holds a whole record, but together they do.
	allPartial := len(pages) > 1
	for _, r := range out.PerPage {
		if r.Estimate >= singleRecordCeiling || r.Kind == MultipleRecords {
			allPartial = false
		}
	}
	incomplete := 0
	for _, r := range out.PerPage {
		if r.Estimate < 1 {
			incomplete++
		}
	}
	if allPartial && incomplete > 0 && joint.Estimate >= singleRecordCeiling-0.5 {
		out.Spanning = true
		for _, r := range out.PerPage {
			if r.Estimate > 0 {
				r.Kind = PartialRecord
			}
		}
	}
	return out, nil
}
