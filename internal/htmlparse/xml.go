package htmlparse

import "strings"

// TokenizeXML scans an XML document into tokens. It differs from the HTML
// tokenizer in the ways the paper's footnote 1 ("most of this work should
// carry over directly to other document type definitions, such as XML")
// requires:
//
//   - element names keep their case (XML is case-sensitive); attribute
//     keys are still normalized to lowercase,
//   - there are no void elements or raw-text elements — emptiness comes
//     only from explicit self-closing tags (<item/>),
//   - CDATA sections become text tokens,
//   - processing instructions (<?xml ...?>) become comments.
//
// The tokenizer remains tolerant: malformed constructs degrade to text
// rather than failing, so the record-boundary pipeline can run over
// imperfect feeds.
func TokenizeXML(input string) []Token {
	z := &xmlTokenizer{input: input}
	var out []Token
	for {
		tok, ok := z.next()
		if !ok {
			return out
		}
		out = append(out, tok)
	}
}

type xmlTokenizer struct {
	input string
	pos   int
}

func (z *xmlTokenizer) next() (Token, bool) {
	if z.pos >= len(z.input) {
		return Token{}, false
	}
	s := z.input
	if s[z.pos] == '<' && looksLikeMarkup(s[z.pos:]) {
		if strings.HasPrefix(s[z.pos:], "<![CDATA[") {
			return z.scanCDATA(), true
		}
		return z.scanMarkup(), true
	}
	return z.scanText(), true
}

func (z *xmlTokenizer) scanText() Token {
	start := z.pos
	i := start + 1
	for i < len(z.input) {
		if z.input[i] == '<' && looksLikeMarkup(z.input[i:]) {
			break
		}
		i++
	}
	z.pos = i
	return Token{Type: Text, Data: DecodeEntities(z.input[start:i]), Pos: start, End: i}
}

func (z *xmlTokenizer) scanCDATA() Token {
	start := z.pos
	body := start + len("<![CDATA[")
	end := strings.Index(z.input[body:], "]]>")
	if end < 0 {
		z.pos = len(z.input)
		return Token{Type: Text, Data: z.input[body:], Pos: start, End: len(z.input)}
	}
	stop := body + end + 3
	z.pos = stop
	// CDATA content is literal: no entity decoding.
	return Token{Type: Text, Data: z.input[body : body+end], Pos: start, End: stop}
}

func (z *xmlTokenizer) scanMarkup() Token {
	s := z.input
	start := z.pos
	switch s[start+1] {
	case '!':
		// Comments and declarations: reuse the HTML scanner's logic.
		h := &Tokenizer{input: s, pos: start}
		tok := h.scanDeclaration()
		z.pos = h.pos
		return tok
	case '?':
		end := indexFrom(s, start, '>')
		z.pos = end
		return Token{Type: Comment, Data: s[start+2 : max(start+2, end-1)], Pos: start, End: end}
	case '/':
		i := start + 2
		nameStart := i
		for i < len(s) && isNameByte(s[i]) {
			i++
		}
		name := s[nameStart:i] // case preserved
		end := indexFrom(s, i, '>')
		z.pos = end
		return Token{Type: EndTag, Name: name, Pos: start, End: end}
	default:
		// Start tag: reuse the HTML attribute scanner, then restore case.
		h := &Tokenizer{input: s, pos: start}
		tok := h.scanStartTag()
		z.pos = h.pos
		nameEnd := start + 1
		for nameEnd < len(s) && isNameByte(s[nameEnd]) {
			nameEnd++
		}
		tok.Name = s[start+1 : nameEnd]
		h.rawEnd = "" // XML has no raw-text elements
		return tok
	}
}
