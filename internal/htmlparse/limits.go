package htmlparse

import (
	"errors"
	"fmt"
)

// ErrTooLarge reports a document whose byte size exceeds the caller's limit.
// It is a sentinel: match with errors.Is. The HTTP layer maps it to
// 413 Request Entity Too Large.
var ErrTooLarge = errors.New("htmlparse: document exceeds byte limit")

// CheckSize returns an ErrTooLarge-wrapping error when maxBytes is positive
// and doc is larger; zero or negative maxBytes means unlimited. It is the
// single byte-limit gate shared by the HTML and XML parse paths.
func CheckSize(doc string, maxBytes int) error {
	if maxBytes > 0 && len(doc) > maxBytes {
		return fmt.Errorf("%w (%d bytes, limit %d)", ErrTooLarge, len(doc), maxBytes)
	}
	return nil
}
