// Package htmlparse provides a small, dependency-free HTML tokenizer tuned
// for the record-boundary discovery pipeline.
//
// It is not a full HTML5 parser: it produces a flat stream of tokens
// (start-tags, end-tags, text, comments, doctypes) with byte positions, from
// which the tagtree package builds the paper's tag tree. The tokenizer is
// deliberately tolerant — 1998-era Web pages are full of unclosed tags,
// uppercase names, bare ampersands, and unquoted attribute values — and it
// never fails: any malformed construct degrades to text.
package htmlparse

import "strings"

// TokenType identifies the kind of a lexical token.
type TokenType int

// Token kinds produced by the tokenizer.
const (
	// StartTag is an opening tag such as <td> or <img src="x">.
	StartTag TokenType = iota
	// EndTag is a closing tag such as </td>.
	EndTag
	// Text is a run of character data between tags, entity-decoded.
	Text
	// Comment is an HTML comment (<!-- ... -->) or other <! construct.
	// The paper discards these; the tagtree package drops them.
	Comment
	// Doctype is a <!DOCTYPE ...> declaration.
	Doctype
)

// String returns a human-readable name for the token type.
func (t TokenType) String() string {
	switch t {
	case StartTag:
		return "StartTag"
	case EndTag:
		return "EndTag"
	case Text:
		return "Text"
	case Comment:
		return "Comment"
	case Doctype:
		return "Doctype"
	default:
		return "Unknown"
	}
}

// Attr is a single name/value attribute on a start-tag. Value is empty for
// boolean attributes (<td nowrap>).
type Attr struct {
	Key   string
	Value string
}

// Token is one lexical unit of an HTML document.
type Token struct {
	Type TokenType
	// Name is the lowercased tag name for StartTag and EndTag tokens.
	Name string
	// Attrs holds the attributes of a StartTag in document order.
	Attrs []Attr
	// Data is the entity-decoded character data for Text tokens, and the
	// raw interior for Comment and Doctype tokens.
	Data string
	// Pos and End delimit the token's byte range in the original input.
	Pos, End int
	// SelfClosing reports a trailing slash on a start-tag (<br/>).
	SelfClosing bool
	// Synthetic marks tokens inserted by downstream normalization (the
	// paper's "insert missing end-tags" step), which have no byte range of
	// their own; Pos/End give the insertion point.
	Synthetic bool
}

// Attr returns the value of the named attribute and whether it is present.
// The lookup is case-insensitive on the attribute key.
func (t *Token) Attr(key string) (string, bool) {
	for _, a := range t.Attrs {
		if strings.EqualFold(a.Key, key) {
			return a.Value, true
		}
	}
	return "", false
}

// IsVoid reports whether the (lowercased) tag name is a void element — one
// with no end-tag and therefore no region of its own beyond the tag itself.
// The set reflects HTML 3.2/4.0 usage (the paper's era) plus the modern
// HTML5 void list. A switch rather than a map: the compiler dispatches on
// length first, so the per-tag check in the tokenizer hot loop avoids map
// hashing entirely.
func IsVoid(name string) bool {
	switch name {
	case "area", "base", "basefont", "bgsound", "br", "col", "embed",
		"frame", "hr", "img", "input", "isindex", "keygen", "link",
		"meta", "param", "source", "spacer", "track", "wbr":
		return true
	}
	return false
}

// IsRawText reports whether the element's content is not parsed as markup
// (e.g. script). Same length-dispatch reasoning as IsVoid.
func IsRawText(name string) bool {
	switch name {
	case "script", "style", "textarea", "title", "xmp", "plaintext":
		return true
	}
	return false
}
