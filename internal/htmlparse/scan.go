package htmlparse

import "strings"

// This file is the byte-level scan core: allocation-free primitives over the
// raw document that the arena tokenizer (arena.go), the legacy string
// Tokenizer's raw-text scanner, and internal/template's structural
// fingerprint scanner all share. Every function works on index spans into
// the input string and never allocates, so callers decide when (and whether)
// bytes become heap strings. The grammar is exactly the Tokenizer's: any
// change here must keep FuzzByteVsStringParse green.

// MarkupStartsAt reports whether a plausible tag, comment, or declaration
// begins at s[i]. s[i] must be '<'; a bare less-than followed by anything
// else is character data.
func MarkupStartsAt(s string, i int) bool {
	if i+1 >= len(s) {
		return false
	}
	c := s[i+1]
	return c == '/' || c == '!' || c == '?' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// NameEnd returns the index just past the run of tag-name bytes starting at
// i ([a-zA-Z0-9._:-]).
func NameEnd(s string, i int) int {
	for i < len(s) && isNameByte(s[i]) {
		i++
	}
	return i
}

// ScanTagAttrs scans a start tag's attribute section. i must point just past
// the tag name; the scan honors quoted values (a '>' inside quotes does not
// close the tag) and stops just past the closing '>' (or at end of input).
// visit, when non-nil, receives each non-empty attribute's key span
// [k0,k1), raw (undecoded) value span [v0,v1), and whether an '=' was
// present. The spans let callers that only need structure skip all string
// work.
func ScanTagAttrs(s string, i int, visit func(k0, k1, v0, v1 int, hasVal bool)) (next int, selfClosing bool) {
	for i < len(s) && s[i] != '>' {
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		if i >= len(s) || s[i] == '>' {
			break
		}
		if s[i] == '/' {
			i++
			if i < len(s) && s[i] == '>' {
				selfClosing = true
			}
			continue
		}
		k0 := i
		for i < len(s) && !isSpace(s[i]) && s[i] != '=' && s[i] != '>' && s[i] != '/' {
			i++
		}
		k1 := i
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		v0, v1 := i, i
		hasVal := false
		if i < len(s) && s[i] == '=' {
			hasVal = true
			i++
			for i < len(s) && isSpace(s[i]) {
				i++
			}
			if i < len(s) && (s[i] == '"' || s[i] == '\'') {
				quote := s[i]
				i++
				v0 = i
				for i < len(s) && s[i] != quote {
					i++
				}
				v1 = i
				if i < len(s) {
					i++ // consume closing quote
				}
			} else {
				v0 = i
				for i < len(s) && !isSpace(s[i]) && s[i] != '>' {
					i++
				}
				v1 = i
			}
		}
		if k1 > k0 && visit != nil {
			visit(k0, k1, v0, v1, hasVal)
		}
	}
	if i < len(s) {
		i++ // consume '>'
	}
	return i, selfClosing
}

// ScanDeclarationSpans scans a construct beginning "<!" at start: either a
// <!-- comment --> (full "-->" terminator respected) or a <!DOCTYPE ...>
// style declaration. It returns the body span [b0,b1), the index just past
// the construct, and whether the body names a doctype.
func ScanDeclarationSpans(s string, start int) (b0, b1, next int, doctype bool) {
	if strings.HasPrefix(s[start:], "<!--") {
		end := strings.Index(s[start+4:], "-->")
		if end < 0 {
			return start + 4, len(s), len(s), false
		}
		stop := start + 4 + end + 3
		return start + 4, stop - 3, stop, false
	}
	next = indexFrom(s, start, '>')
	b0 = start + 2
	b1 = max(b0, next-1)
	body := s[b0:b1]
	doctype = len(body) >= 7 && strings.EqualFold(body[:7], "doctype")
	return b0, b1, next, doctype
}

// ScanPISpans scans a processing instruction / bogus comment beginning "<?"
// at start: everything to the next '>' (an unterminated PI at EOF has no '>'
// to strip, hence the clamp). It returns the body span and the index just
// past the construct.
func ScanPISpans(s string, start int) (b0, b1, next int) {
	next = indexFrom(s, start, '>')
	return start + 2, max(start+2, next-1), next
}

// RawTextEnd returns the index of the "</name" opener that terminates a
// raw-text element's content, searching from i with ASCII case-insensitive
// matching, or len(s) when the end-tag never appears. name must already be
// lowercase (tag names are ASCII by construction: see isNameByte).
func RawTextEnd(s string, i int, name string) int {
	for i < len(s) {
		j := strings.IndexByte(s[i:], '<')
		if j < 0 {
			return len(s)
		}
		i += j
		if i+1 < len(s) && s[i+1] == '/' && hasFoldPrefixASCII(s[i+2:], name) {
			return i
		}
		i++
	}
	return len(s)
}

// hasFoldPrefixASCII reports whether s begins with name under ASCII case
// folding. name must already be lowercase.
func hasFoldPrefixASCII(s, name string) bool {
	if len(s) < len(name) {
		return false
	}
	for k := 0; k < len(name); k++ {
		c := s[k]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != name[k] {
			return false
		}
	}
	return true
}
