package htmlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

func tokenKinds(toks []Token) string {
	var b strings.Builder
	for i, t := range toks {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch t.Type {
		case StartTag:
			b.WriteString("<" + t.Name + ">")
		case EndTag:
			b.WriteString("</" + t.Name + ">")
		case Text:
			b.WriteString("T")
		case Comment:
			b.WriteString("C")
		case Doctype:
			b.WriteString("D")
		}
	}
	return b.String()
}

func TestTokenizeSimpleDocument(t *testing.T) {
	toks := Tokenize("<html><body>Hello</body></html>")
	got := tokenKinds(toks)
	want := "<html> <body> T </body> </html>"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
	if toks[2].Data != "Hello" {
		t.Errorf("text = %q, want Hello", toks[2].Data)
	}
}

func TestTokenizeAttributes(t *testing.T) {
	cases := []struct {
		name  string
		input string
		key   string
		want  string
	}{
		{"double quoted", `<body bgcolor="#FFFFFF">`, "bgcolor", "#FFFFFF"},
		{"single quoted", `<a href='x.html'>`, "href", "x.html"},
		{"unquoted", `<td width=40>`, "width", "40"},
		{"uppercase key", `<TD WIDTH=40>`, "width", "40"},
		{"entity in value", `<a href="a&amp;b">`, "href", "a&b"},
		{"boolean attr", `<td nowrap>`, "nowrap", ""},
		{"spaces around equals", `<img src = "pic.gif">`, "src", "pic.gif"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			toks := Tokenize(c.input)
			if len(toks) != 1 || toks[0].Type != StartTag {
				t.Fatalf("tokens = %v", toks)
			}
			got, ok := toks[0].Attr(c.key)
			if !ok {
				t.Fatalf("attribute %q missing", c.key)
			}
			if got != c.want {
				t.Errorf("attr %q = %q, want %q", c.key, got, c.want)
			}
		})
	}
}

func TestTokenizeMultipleAttributes(t *testing.T) {
	toks := Tokenize(`<h1 align="left" class=big id='x'>`)
	if len(toks[0].Attrs) != 3 {
		t.Fatalf("attrs = %v, want 3", toks[0].Attrs)
	}
	wantKeys := []string{"align", "class", "id"}
	for i, k := range wantKeys {
		if toks[0].Attrs[i].Key != k {
			t.Errorf("attr %d key = %q, want %q", i, toks[0].Attrs[i].Key, k)
		}
	}
}

func TestTokenizeUppercaseTagNames(t *testing.T) {
	toks := Tokenize("<HTML><Body></BODY></html>")
	names := []string{"html", "body", "body", "html"}
	for i, n := range names {
		if toks[i].Name != n {
			t.Errorf("token %d name = %q, want %q", i, toks[i].Name, n)
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	toks := Tokenize("a<!-- hidden <b> -->b")
	got := tokenKinds(toks)
	if got != "T C T" {
		t.Fatalf("kinds = %q, want T C T", got)
	}
	if toks[1].Data != " hidden <b> " {
		t.Errorf("comment data = %q", toks[1].Data)
	}
}

func TestTokenizeUnterminatedComment(t *testing.T) {
	toks := Tokenize("a<!-- never ends")
	if len(toks) != 2 || toks[1].Type != Comment {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestTokenizeDoctype(t *testing.T) {
	toks := Tokenize(`<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 3.2//EN"><html>`)
	if toks[0].Type != Doctype {
		t.Fatalf("first token = %v, want doctype", toks[0])
	}
	if toks[1].Name != "html" {
		t.Errorf("second token = %v", toks[1])
	}
}

func TestTokenizeBareLessThan(t *testing.T) {
	toks := Tokenize("price < 5000 and > 100")
	if len(toks) != 1 || toks[0].Type != Text {
		t.Fatalf("tokens = %v, want single text", toks)
	}
	if !strings.Contains(toks[0].Data, "< 5000") {
		t.Errorf("text = %q", toks[0].Data)
	}
}

func TestTokenizeSelfClosing(t *testing.T) {
	toks := Tokenize("<br/><hr />")
	if !toks[0].SelfClosing || !toks[1].SelfClosing {
		t.Errorf("self-closing flags: %v %v", toks[0].SelfClosing, toks[1].SelfClosing)
	}
	if toks[0].Name != "br" || toks[1].Name != "hr" {
		t.Errorf("names: %q %q", toks[0].Name, toks[1].Name)
	}
}

func TestTokenizeRawTextScript(t *testing.T) {
	toks := Tokenize(`<script>if (a < b && c > d) { x("<b>"); }</script>after`)
	got := tokenKinds(toks)
	if got != "<script> T </script> T" {
		t.Fatalf("kinds = %q", got)
	}
	if !strings.Contains(toks[1].Data, `x("<b>")`) {
		t.Errorf("script body = %q", toks[1].Data)
	}
}

func TestTokenizeRawTextStyleCaseInsensitiveClose(t *testing.T) {
	toks := Tokenize("<style>b { color: red }</STYLE>x")
	got := tokenKinds(toks)
	if got != "<style> T </style> T" {
		t.Fatalf("kinds = %q", got)
	}
}

func TestTokenizeUnterminatedRawText(t *testing.T) {
	toks := Tokenize("<script>var x = 1;")
	if len(toks) != 2 || toks[1].Type != Text {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestTokenizePositions(t *testing.T) {
	input := "ab<b>cd</b>"
	toks := Tokenize(input)
	for _, tok := range toks {
		if tok.Pos < 0 || tok.End > len(input) || tok.Pos >= tok.End {
			t.Errorf("token %v has bad range [%d,%d)", tok, tok.Pos, tok.End)
		}
	}
	if toks[1].Pos != 2 || toks[1].End != 5 {
		t.Errorf("<b> range = [%d,%d), want [2,5)", toks[1].Pos, toks[1].End)
	}
}

func TestTokenizePositionsCoverInput(t *testing.T) {
	input := `<html><!-- c --><body bgcolor="#fff">text &amp; more<br></body></html>`
	toks := Tokenize(input)
	covered := 0
	for _, tok := range toks {
		covered += tok.End - tok.Pos
	}
	if covered != len(input) {
		t.Errorf("tokens cover %d bytes, input has %d", covered, len(input))
	}
	// Tokens must also be contiguous and ordered.
	pos := 0
	for _, tok := range toks {
		if tok.Pos != pos {
			t.Errorf("token %v starts at %d, want %d", tok, tok.Pos, pos)
		}
		pos = tok.End
	}
}

func TestTokenizeProcessingInstruction(t *testing.T) {
	toks := Tokenize(`<?xml version="1.0"?>x`)
	if toks[0].Type != Comment {
		t.Fatalf("PI should tokenize as comment, got %v", toks[0])
	}
	if toks[1].Data != "x" {
		t.Errorf("following text = %q", toks[1].Data)
	}
}

func TestTokenizeUnterminatedPI(t *testing.T) {
	// Regression: "<?" at EOF used to panic (found by FuzzTokenize).
	for _, in := range []string{"<?", "a<?", "<?x", "<?xml"} {
		toks := Tokenize(in)
		if len(toks) == 0 {
			t.Errorf("Tokenize(%q) returned nothing", in)
		}
	}
}

func TestTokenizeUnclosedTagAtEOF(t *testing.T) {
	toks := Tokenize("<b")
	if len(toks) != 1 {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[0].Type != StartTag || toks[0].Name != "b" {
		t.Errorf("token = %v", toks[0])
	}
}

func TestTokenizeEmptyInput(t *testing.T) {
	if toks := Tokenize(""); len(toks) != 0 {
		t.Errorf("tokens = %v, want none", toks)
	}
}

func TestTokenTypeString(t *testing.T) {
	cases := map[TokenType]string{
		StartTag: "StartTag", EndTag: "EndTag", Text: "Text",
		Comment: "Comment", Doctype: "Doctype", TokenType(99): "Unknown",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestAttrLookupCaseInsensitiveAndMissing(t *testing.T) {
	toks := Tokenize(`<td WIDTH=40>`)
	if v, ok := toks[0].Attr("WiDtH"); !ok || v != "40" {
		t.Errorf("case-insensitive lookup = %q %v", v, ok)
	}
	if _, ok := toks[0].Attr("height"); ok {
		t.Error("missing attribute should report !ok")
	}
}

func TestTokenizeTagNamePunctuation(t *testing.T) {
	// Name bytes include -, _, :, . — XMLish names survive the HTML
	// tokenizer too.
	toks := Tokenize("<my-tag><ns:other><x_y.z>")
	want := []string{"my-tag", "ns:other", "x_y.z"}
	for i, w := range want {
		if toks[i].Name != w {
			t.Errorf("token %d name = %q, want %q", i, toks[i].Name, w)
		}
	}
}

func TestIsVoid(t *testing.T) {
	for _, name := range []string{"br", "hr", "img", "input", "meta", "link"} {
		if !IsVoid(name) {
			t.Errorf("IsVoid(%q) = false, want true", name)
		}
	}
	for _, name := range []string{"b", "td", "table", "p", "div"} {
		if IsVoid(name) {
			t.Errorf("IsVoid(%q) = true, want false", name)
		}
	}
}

func TestDecodeEntitiesNamed(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Fish &amp; Chips", "Fish & Chips"},
		{"a &lt; b &gt; c", "a < b > c"},
		{"&quot;hi&quot;", `"hi"`},
		{"&nbsp;", " "},
		{"caf&eacute;", "café"},
		{"&copy; 1998", "© 1998"},
		{"no entities here", "no entities here"},
		{"&mdash;", "—"},
		{"&unknown;", "&unknown;"},
		{"&", "&"},
		{"&&amp;", "&&"},
		{"&amp no semicolon", "& no semicolon"},
	}
	for _, c := range cases {
		if got := DecodeEntities(c.in); got != c.want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDecodeEntitiesNumeric(t *testing.T) {
	cases := []struct{ in, want string }{
		{"&#65;", "A"},
		{"&#x41;", "A"},
		{"&#X41;", "A"},
		{"&#233;", "é"},
		{"&#0;", "&#0;"}, // NUL rejected
		{"&#x;", "&#x;"}, // no digits
		{"&#abc;", "&#abc;"},
	}
	for _, c := range cases {
		if got := DecodeEntities(c.in); got != c.want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Property: tokenizing never panics and token ranges are sane for arbitrary
// input, including binary garbage.
func TestTokenizeArbitraryInputProperty(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		pos := 0
		for _, tok := range toks {
			if tok.Pos != pos || tok.End < tok.Pos || tok.End > len(s) {
				return false
			}
			pos = tok.End
		}
		return pos == len(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: DecodeEntities is identity on strings with no ampersand.
func TestDecodeEntitiesIdentityProperty(t *testing.T) {
	f := func(s string) bool {
		clean := strings.ReplaceAll(s, "&", "")
		return DecodeEntities(clean) == clean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTokenize(b *testing.B) {
	doc := strings.Repeat(`<tr><td><b>1993 Ford Taurus</b> &mdash; $4,500 <a href="mailto:x@y.com">call</a></td></tr>`, 200)
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(doc)
	}
}
