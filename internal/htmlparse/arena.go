package htmlparse

import "strings"

// Arena is the tokenizer half of the per-request scratch arena: a reusable
// token slab, a reusable attribute slab, and a tag/attribute-name intern
// table. TokenizeHTML and TokenizeXML fill the slabs in place, so a warm
// arena tokenizes an entire document without allocating.
//
// Ownership rules (see docs/PERFORMANCE.md):
//
//   - The returned tokens, their Attrs windows, and any name or text string
//     they carry are valid only until the arena's next tokenize call. Copy
//     anything that must outlive the request.
//   - Token names and undecoded text are zero-copy views into the input
//     document; the document must stay immutable while results derived from
//     it are alive. (The string tokenizer has the same aliasing behavior —
//     strings.ToLower returns its input unchanged when nothing needs
//     lowering — so this is not a new hazard.)
//
// An Arena is not safe for concurrent use. internal/tagtree's Arena embeds
// one and manages pooling; most callers want that.
type Arena struct {
	tokens []Token
	attrs  []Attr
	// names interns lowercased tag and attribute names that needed case
	// work, so warm-path tokenizing of <DIV> or BORDER= costs a map hit
	// instead of an allocation. Interned strings are fresh copies — the
	// table never pins a request document.
	names map[string]string
	lower []byte // lowercase scratch for names that need case folding
	src   string // document being tokenized; set by reset
	visit func(k0, k1, v0, v1 int, hasVal bool)
}

// maxInternedNames bounds the intern table so hostile inputs with endless
// distinct attribute names cannot grow it without limit. Past the bound,
// names that need case work are allocated per token (correct, just slower).
const maxInternedNames = 4096

// maxRetainedTokens / maxRetainedAttrs bound what a pooled arena keeps
// between requests; one pathological document must not pin its peak
// footprint forever.
const (
	maxRetainedTokens = 1 << 16
	maxRetainedAttrs  = 1 << 16
)

// NewArena returns an empty tokenizer arena.
func NewArena() *Arena {
	a := &Arena{names: make(map[string]string)}
	a.visit = a.visitAttr
	return a
}

// reset points the arena at a new document and empties the slabs. Previously
// returned tokens become invalid.
func (a *Arena) reset(src string) {
	a.src = src
	a.tokens = a.tokens[:0]
	a.attrs = a.attrs[:0]
}

// Trim drops slab capacity beyond the retention bounds and clears the
// document reference. tagtree's arena calls this before repooling.
func (a *Arena) Trim() {
	if cap(a.tokens) > maxRetainedTokens {
		a.tokens = nil
	} else {
		clearTokens(a.tokens[:cap(a.tokens)])
		a.tokens = a.tokens[:0]
	}
	if cap(a.attrs) > maxRetainedAttrs {
		a.attrs = nil
	} else {
		attrs := a.attrs[:cap(a.attrs)]
		for i := range attrs {
			attrs[i] = Attr{}
		}
		a.attrs = a.attrs[:0]
	}
	a.src = ""
}

func clearTokens(toks []Token) {
	for i := range toks {
		toks[i] = Token{}
	}
}

// visitAttr is the ScanTagAttrs callback: it interns the key, lazily decodes
// the value, and appends to the attribute slab. Bound once in NewArena so
// the warm path never allocates a closure.
func (a *Arena) visitAttr(k0, k1, v0, v1 int, _ bool) {
	a.attrs = append(a.attrs, Attr{
		Key:   a.lowerIntern(a.src[k0:k1]),
		Value: DecodeEntities(a.src[v0:v1]),
	})
}

// lowerIntern returns the lowercase form of s with the same bytes
// strings.ToLower would produce, without allocating on the warm path:
// already-lowercase ASCII names are returned as zero-copy views, names that
// need folding come from the intern table.
func (a *Arena) lowerIntern(s string) string {
	upper := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 {
			// Non-ASCII attribute keys take the Unicode-aware lowering the
			// string tokenizer uses, so both paths agree byte for byte.
			return a.intern(strings.ToLower(s))
		}
		if c >= 'A' && c <= 'Z' {
			upper = true
		}
	}
	if !upper {
		return s
	}
	a.lower = a.lower[:0]
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		a.lower = append(a.lower, c)
	}
	if v, ok := a.names[string(a.lower)]; ok { // no-alloc map probe
		return v
	}
	return a.intern(string(a.lower))
}

// intern stores (and returns) a canonical copy of name. name must not alias
// the request document.
func (a *Arena) intern(name string) string {
	if v, ok := a.names[name]; ok {
		return v
	}
	if len(a.names) < maxInternedNames {
		a.names[name] = name
	}
	return name
}

// TokenizeHTML tokenizes doc into the arena's slabs with the exact grammar
// of Tokenize. The returned slice is the arena's; see the ownership rules on
// Arena.
func (a *Arena) TokenizeHTML(s string) []Token {
	a.reset(s)
	pos := 0
	rawEnd := ""
	for pos < len(s) {
		if rawEnd != "" {
			end := RawTextEnd(s, pos, rawEnd)
			// Raw text is not entity-decoded (scripts may contain '&&').
			a.tokens = append(a.tokens, Token{Type: Text, Data: s[pos:end], Pos: pos, End: end})
			pos = end
			rawEnd = ""
			continue
		}
		if s[pos] == '<' && MarkupStartsAt(s, pos) {
			switch s[pos+1] {
			case '!':
				b0, b1, next, doctype := ScanDeclarationSpans(s, pos)
				typ := Comment
				if doctype {
					typ = Doctype
				}
				a.tokens = append(a.tokens, Token{Type: typ, Data: s[b0:b1], Pos: pos, End: next})
				pos = next
			case '?':
				b0, b1, next := ScanPISpans(s, pos)
				a.tokens = append(a.tokens, Token{Type: Comment, Data: s[b0:b1], Pos: pos, End: next})
				pos = next
			case '/':
				i := NameEnd(s, pos+2)
				name := a.lowerIntern(s[pos+2:i])
				end := indexFrom(s, i, '>')
				a.tokens = append(a.tokens, Token{Type: EndTag, Name: name, Pos: pos, End: end})
				pos = end
			default:
				var tok Token
				tok, pos = a.scanStartTag(s, pos, false)
				if IsRawText(tok.Name) && !tok.SelfClosing {
					rawEnd = tok.Name
				}
			}
			continue
		}
		pos = a.scanText(s, pos)
	}
	return a.tokens
}

// TokenizeXML tokenizes doc into the arena's slabs with the exact grammar of
// TokenizeXML: element names keep their case, CDATA becomes literal text,
// processing instructions become comments, and there are no void or raw-text
// elements.
func (a *Arena) TokenizeXML(s string) []Token {
	a.reset(s)
	pos := 0
	for pos < len(s) {
		if s[pos] == '<' && MarkupStartsAt(s, pos) {
			if strings.HasPrefix(s[pos:], "<![CDATA[") {
				body := pos + len("<![CDATA[")
				end := strings.Index(s[body:], "]]>")
				if end < 0 {
					// CDATA content is literal: no entity decoding.
					a.tokens = append(a.tokens, Token{Type: Text, Data: s[body:], Pos: pos, End: len(s)})
					pos = len(s)
					continue
				}
				stop := body + end + 3
				a.tokens = append(a.tokens, Token{Type: Text, Data: s[body : body+end], Pos: pos, End: stop})
				pos = stop
				continue
			}
			switch s[pos+1] {
			case '!':
				b0, b1, next, doctype := ScanDeclarationSpans(s, pos)
				typ := Comment
				if doctype {
					typ = Doctype
				}
				a.tokens = append(a.tokens, Token{Type: typ, Data: s[b0:b1], Pos: pos, End: next})
				pos = next
			case '?':
				b0, b1, next := ScanPISpans(s, pos)
				a.tokens = append(a.tokens, Token{Type: Comment, Data: s[b0:b1], Pos: pos, End: next})
				pos = next
			case '/':
				i := NameEnd(s, pos+2)
				name := s[pos+2:i] // case preserved
				end := indexFrom(s, i, '>')
				a.tokens = append(a.tokens, Token{Type: EndTag, Name: name, Pos: pos, End: end})
				pos = end
			default:
				_, pos = a.scanStartTag(s, pos, true)
			}
			continue
		}
		pos = a.scanText(s, pos)
	}
	return a.tokens
}

// scanStartTag scans <name attr=value ...> at pos into the slabs and returns
// the token plus the index just past it. xmlNames preserves the element
// name's case (attribute keys are lowercased in both modes).
func (a *Arena) scanStartTag(s string, pos int, xmlNames bool) (Token, int) {
	i := NameEnd(s, pos+1)
	var name string
	if xmlNames {
		name = s[pos+1 : i]
	} else {
		name = a.lowerIntern(s[pos+1 : i])
	}
	attrStart := len(a.attrs)
	next, selfClosing := ScanTagAttrs(s, i, a.visit)
	tok := Token{Type: StartTag, Name: name, Pos: pos, End: next, SelfClosing: selfClosing}
	if n := len(a.attrs); n > attrStart {
		tok.Attrs = a.attrs[attrStart:n:n]
	}
	a.tokens = append(a.tokens, tok)
	return tok, next
}

// scanText scans character data starting at pos (always consuming at least
// one byte, since the first byte may be a non-markup '<'), appends the
// decoded token, and returns the index just past it.
func (a *Arena) scanText(s string, pos int) int {
	i := pos + 1
	for i < len(s) {
		j := strings.IndexByte(s[i:], '<')
		if j < 0 {
			i = len(s)
			break
		}
		i += j
		if MarkupStartsAt(s, i) {
			break
		}
		i++
	}
	a.tokens = append(a.tokens, Token{Type: Text, Data: DecodeEntities(s[pos:i]), Pos: pos, End: i})
	return i
}
