package htmlparse

import (
	"strings"
)

// Tokenizer scans an HTML document into a stream of Tokens. Create one with
// NewTokenizer and call Next until it returns ok == false.
type Tokenizer struct {
	input string
	pos   int
	// rawEnd, when non-empty, is the element name whose raw-text content we
	// are inside (script, style, ...); the next token is everything up to
	// its end-tag.
	rawEnd string
}

// NewTokenizer returns a Tokenizer over the given document.
func NewTokenizer(input string) *Tokenizer {
	return &Tokenizer{input: input}
}

// Tokenize scans the whole document and returns its tokens.
func Tokenize(input string) []Token {
	tz := NewTokenizer(input)
	var out []Token
	for {
		tok, ok := tz.Next()
		if !ok {
			return out
		}
		out = append(out, tok)
	}
}

// Next returns the next token. ok is false at end of input.
func (z *Tokenizer) Next() (tok Token, ok bool) {
	if z.pos >= len(z.input) {
		return Token{}, false
	}
	if z.rawEnd != "" {
		return z.scanRawText(), true
	}
	if z.input[z.pos] == '<' {
		if t, ok := z.scanMarkup(); ok {
			return t, true
		}
		// A lone '<' that does not begin real markup is character data.
		return z.scanText(), true
	}
	return z.scanText(), true
}

// scanText consumes character data up to the next plausible markup start.
func (z *Tokenizer) scanText() Token {
	start := z.pos
	i := z.pos
	// The first byte may be a non-markup '<'; always consume at least one.
	i++
	for i < len(z.input) {
		if z.input[i] == '<' && looksLikeMarkup(z.input[i:]) {
			break
		}
		i++
	}
	raw := z.input[start:i]
	z.pos = i
	return Token{Type: Text, Data: DecodeEntities(raw), Pos: start, End: i}
}

// looksLikeMarkup reports whether s (beginning with '<') plausibly starts a
// tag, comment, or declaration, as opposed to a bare less-than in text.
func looksLikeMarkup(s string) bool {
	if len(s) < 2 {
		return false
	}
	c := s[1]
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		return true
	case c == '/' || c == '!' || c == '?':
		return true
	}
	return false
}

// scanMarkup consumes a tag, comment, or declaration starting at '<'.
// ok is false when the construct is not actually markup.
func (z *Tokenizer) scanMarkup() (Token, bool) {
	s := z.input
	start := z.pos
	if !looksLikeMarkup(s[start:]) {
		return Token{}, false
	}
	switch s[start+1] {
	case '!':
		return z.scanDeclaration(), true
	case '?':
		// Processing instruction / bogus comment: skip to '>'. An
		// unterminated PI at EOF has no '>' to strip, hence the clamp.
		end := indexFrom(s, start, '>')
		z.pos = end
		return Token{Type: Comment, Data: s[start+2 : max(start+2, end-1)], Pos: start, End: end}, true
	case '/':
		return z.scanEndTag(), true
	default:
		return z.scanStartTag(), true
	}
}

// indexFrom returns the index just past the first occurrence of b at or
// after from, or len(s) if absent.
func indexFrom(s string, from int, b byte) int {
	if i := strings.IndexByte(s[from:], b); i >= 0 {
		return from + i + 1
	}
	return len(s)
}

// scanDeclaration consumes <!-- comments --> and <!DOCTYPE ...> style
// declarations. Comments respect the full "-->" terminator.
func (z *Tokenizer) scanDeclaration() Token {
	s := z.input
	start := z.pos
	if strings.HasPrefix(s[start:], "<!--") {
		end := strings.Index(s[start+4:], "-->")
		if end < 0 {
			z.pos = len(s)
			return Token{Type: Comment, Data: s[start+4:], Pos: start, End: len(s)}
		}
		stop := start + 4 + end + 3
		z.pos = stop
		return Token{Type: Comment, Data: s[start+4 : stop-3], Pos: start, End: stop}
	}
	end := indexFrom(s, start, '>')
	z.pos = end
	body := s[start+2 : max(start+2, end-1)]
	typ := Comment
	if len(body) >= 7 && strings.EqualFold(body[:7], "doctype") {
		typ = Doctype
	}
	return Token{Type: typ, Data: body, Pos: start, End: end}
}

// scanEndTag consumes </name ...>.
func (z *Tokenizer) scanEndTag() Token {
	s := z.input
	start := z.pos
	i := start + 2
	nameStart := i
	for i < len(s) && isNameByte(s[i]) {
		i++
	}
	name := strings.ToLower(s[nameStart:i])
	end := indexFrom(s, i, '>')
	z.pos = end
	return Token{Type: EndTag, Name: name, Pos: start, End: end}
}

// scanStartTag consumes <name attr=value ...> including attributes.
func (z *Tokenizer) scanStartTag() Token {
	s := z.input
	start := z.pos
	i := start + 1
	nameStart := i
	for i < len(s) && isNameByte(s[i]) {
		i++
	}
	name := strings.ToLower(s[nameStart:i])
	tok := Token{Type: StartTag, Name: name, Pos: start}

	for i < len(s) && s[i] != '>' {
		// Skip whitespace between attributes.
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		if i >= len(s) || s[i] == '>' {
			break
		}
		if s[i] == '/' {
			i++
			if i < len(s) && s[i] == '>' {
				tok.SelfClosing = true
			}
			continue
		}
		// Attribute name.
		keyStart := i
		for i < len(s) && !isSpace(s[i]) && s[i] != '=' && s[i] != '>' && s[i] != '/' {
			i++
		}
		key := strings.ToLower(s[keyStart:i])
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		var val string
		if i < len(s) && s[i] == '=' {
			i++
			for i < len(s) && isSpace(s[i]) {
				i++
			}
			if i < len(s) && (s[i] == '"' || s[i] == '\'') {
				quote := s[i]
				i++
				valStart := i
				for i < len(s) && s[i] != quote {
					i++
				}
				val = s[valStart:i]
				if i < len(s) {
					i++ // consume closing quote
				}
			} else {
				valStart := i
				for i < len(s) && !isSpace(s[i]) && s[i] != '>' {
					i++
				}
				val = s[valStart:i]
			}
		}
		if key != "" {
			tok.Attrs = append(tok.Attrs, Attr{Key: key, Value: DecodeEntities(val)})
		}
	}
	if i < len(s) {
		i++ // consume '>'
	}
	tok.End = i
	z.pos = i
	if IsRawText(name) && !tok.SelfClosing {
		z.rawEnd = name
	}
	return tok
}

// scanRawText consumes raw-text content up to the matching end-tag of the
// raw-text element we are inside (script, style, ...). The end-tag itself is
// left for the next call.
func (z *Tokenizer) scanRawText() Token {
	s := z.input
	start := z.pos
	// ASCII case-insensitive search for "</name" (tag names are ASCII by
	// construction). The old strings.ToLower(s[start:]) approach allocated
	// the whole remainder per raw-text element and, worse, Unicode case
	// mappings that change byte length (U+0130 shrinks) shifted the match
	// offset relative to the original bytes.
	end := RawTextEnd(s, start, z.rawEnd)
	z.pos = end
	z.rawEnd = ""
	// Raw text is not entity-decoded (scripts may contain '&&').
	return Token{Type: Text, Data: s[start:end], Pos: start, End: end}
}

func isNameByte(b byte) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9':
		return true
	case b == '-' || b == '_' || b == ':' || b == '.':
		return true
	}
	return false
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '\f'
}
