package htmlparse

import "testing"

// FuzzTokenize: the tokenizer must never panic and must produce contiguous,
// in-bounds token ranges covering the whole input, for any byte soup.
// Run `go test -fuzz=FuzzTokenize ./internal/htmlparse` to explore beyond
// the seed corpus; the seeds alone run in normal `go test`.
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"",
		"plain text",
		"<html><body>x</body></html>",
		"<b>unclosed",
		"</orphan>",
		"<!-- comment",
		"<!DOCTYPE html><p>",
		"<a href='x' b=\"y\" c=z d>",
		"<script>if (a<b) {}</script>",
		"< not a tag >",
		"&amp;&#65;&#x41;&bogus;&",
		"<td nowrap><tr><td>",
		"\x00\xff<p>\x80",
		"<p/><br/><hr />",
		"<style>b{}</STYLE>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		pos := 0
		for _, tok := range toks {
			if tok.Pos != pos {
				t.Fatalf("gap: token at %d, expected %d", tok.Pos, pos)
			}
			if tok.End < tok.Pos || tok.End > len(s) {
				t.Fatalf("bad range [%d,%d) in %d-byte input", tok.Pos, tok.End, len(s))
			}
			pos = tok.End
		}
		if pos != len(s) {
			t.Fatalf("tokens cover %d of %d bytes", pos, len(s))
		}
	})
}

// FuzzTokenizeXML: same contract for the XML tokenizer.
func FuzzTokenizeXML(f *testing.F) {
	for _, s := range []string{
		"",
		"<?xml version=\"1.0\"?><r/>",
		"<A><b/></A>",
		"<![CDATA[x]]>",
		"<![CDATA[unterminated",
		"<r>text</wrong></r>",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := TokenizeXML(s)
		pos := 0
		for _, tok := range toks {
			if tok.Pos != pos || tok.End < tok.Pos || tok.End > len(s) {
				t.Fatalf("bad range [%d,%d) at expected %d", tok.Pos, tok.End, pos)
			}
			pos = tok.End
		}
		if pos != len(s) {
			t.Fatalf("tokens cover %d of %d bytes", pos, len(s))
		}
	})
}

// FuzzDecodeEntities: never panics; output of entity-free input is
// identity; output never contains a valid named entity it should have
// decoded... (we settle for the crash-freedom and length sanity parts).
func FuzzDecodeEntities(f *testing.F) {
	for _, s := range []string{"", "&amp;", "&#65;", "&#x41;", "&&&", "&unknown;", "a&b", "&#xffffffff;"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		out := DecodeEntities(s)
		// Decoding only ever shrinks or preserves byte length for ASCII
		// entities, but multi-byte replacements (—, ©) can grow it; allow
		// a generous bound.
		if len(out) > 4*len(s)+4 {
			t.Fatalf("output blew up: %d from %d bytes", len(out), len(s))
		}
	})
}
