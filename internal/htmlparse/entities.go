package htmlparse

import (
	"strconv"
	"strings"
)

// namedEntities maps HTML entity names (without & and ;) to their replacement
// text. The set covers the entities that occur in practice in the kinds of
// documents the paper processes: classifieds, obituaries, and course listings
// authored in the HTML 3.2/4.0 era, plus the common Latin-1 accents.
var namedEntities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'",
	"nbsp": " ", "copy": "©", "reg": "®", "trade": "™",
	"deg": "°", "plusmn": "±", "middot": "·", "para": "¶",
	"sect": "§", "cent": "¢", "pound": "£", "yen": "¥",
	"euro": "€", "curren": "¤", "frac12": "½",
	"frac14": "¼", "frac34": "¾", "sup1": "¹",
	"sup2": "²", "sup3": "³", "micro": "µ", "times": "×",
	"divide": "÷", "laquo": "«", "raquo": "»",
	"iexcl": "¡", "iquest": "¿", "szlig": "ß",
	"agrave": "à", "aacute": "á", "acirc": "â",
	"atilde": "ã", "auml": "ä", "aring": "å",
	"aelig": "æ", "ccedil": "ç", "egrave": "è",
	"eacute": "é", "ecirc": "ê", "euml": "ë",
	"igrave": "ì", "iacute": "í", "icirc": "î",
	"iuml": "ï", "ntilde": "ñ", "ograve": "ò",
	"oacute": "ó", "ocirc": "ô", "otilde": "õ",
	"ouml": "ö", "oslash": "ø", "ugrave": "ù",
	"uacute": "ú", "ucirc": "û", "uuml": "ü",
	"yacute": "ý", "yuml": "ÿ",
	"Agrave": "À", "Aacute": "Á", "Acirc": "Â",
	"Atilde": "Ã", "Auml": "Ä", "Aring": "Å",
	"AElig": "Æ", "Ccedil": "Ç", "Egrave": "È",
	"Eacute": "É", "Ecirc": "Ê", "Euml": "Ë",
	"Ntilde": "Ñ", "Ograve": "Ò", "Oacute": "Ó",
	"Ouml": "Ö", "Oslash": "Ø", "Ugrave": "Ù",
	"Uacute": "Ú", "Uuml": "Ü",
	"mdash": "—", "ndash": "–", "hellip": "…",
	"lsquo": "‘", "rsquo": "’", "ldquo": "“",
	"rdquo": "”", "bull": "•", "dagger": "†",
	"Dagger": "‡", "permil": "‰", "prime": "′",
	"Prime": "″", "lsaquo": "‹", "rsaquo": "›",
	"oline": "‾", "frasl": "⁄", "minus": "−",
	"lowast": "∗", "sdot": "⋅", "ensp": " ",
	"emsp": " ", "thinsp": " ", "shy": "­",
}

// DecodeEntities replaces HTML character references (&amp;, &#65;, &#x41;)
// in s with their character values. Unknown or malformed references are left
// verbatim, matching browser leniency.
func DecodeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	b.WriteString(s[:amp])
	i := amp
	for i < len(s) {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		rep, consumed := decodeOneEntity(s[i:])
		if consumed == 0 {
			b.WriteByte('&')
			i++
			continue
		}
		b.WriteString(rep)
		i += consumed
	}
	return b.String()
}

// decodeOneEntity decodes the entity at the start of s (which begins with
// '&'). It returns the replacement text and the number of input bytes
// consumed; consumed == 0 means no valid entity.
func decodeOneEntity(s string) (string, int) {
	if len(s) < 3 {
		return "", 0
	}
	if s[1] == '#' {
		return decodeNumericEntity(s)
	}
	// Named entity: scan alphanumerics, up to a sane bound.
	end := 1
	for end < len(s) && end < 32 && isAlnum(s[end]) {
		end++
	}
	if end == 1 {
		return "", 0
	}
	name := s[1:end]
	rep, ok := namedEntities[name]
	if !ok {
		// Try case-insensitive fallback for sloppy authoring (&NBSP;).
		rep, ok = namedEntities[strings.ToLower(name)]
	}
	if !ok {
		return "", 0
	}
	if end < len(s) && s[end] == ';' {
		end++
	}
	return rep, end
}

// decodeNumericEntity handles &#123; and &#x1F; forms.
func decodeNumericEntity(s string) (string, int) {
	i := 2
	base := 10
	if i < len(s) && (s[i] == 'x' || s[i] == 'X') {
		base = 16
		i++
	}
	start := i
	for i < len(s) && i-start < 8 && isDigitBase(s[i], base) {
		i++
	}
	if i == start {
		return "", 0
	}
	n, err := strconv.ParseInt(s[start:i], base, 32)
	if err != nil || n <= 0 || n > 0x10FFFF {
		return "", 0
	}
	if i < len(s) && s[i] == ';' {
		i++
	}
	return string(rune(n)), i
}

func isAlnum(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

func isDigitBase(b byte, base int) bool {
	if base == 10 {
		return b >= '0' && b <= '9'
	}
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F'
}
