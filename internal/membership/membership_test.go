package membership

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// memTransport delivers gossip in-process: addr → node, with per-address
// kill switches standing in for partitions and crashed processes.
type memTransport struct {
	mu    sync.Mutex
	nodes map[string]*Node
	down  map[string]bool
}

func newMemTransport() *memTransport {
	return &memTransport{nodes: make(map[string]*Node), down: make(map[string]bool)}
}

func (mt *memTransport) register(addr string, n *Node) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.nodes[addr] = n
	mt.down[addr] = false
}

func (mt *memTransport) setDown(addr string, down bool) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.down[addr] = down
}

func (mt *memTransport) Gossip(_ context.Context, addr string, msg Message) (Message, error) {
	mt.mu.Lock()
	n, ok := mt.nodes[addr]
	down := mt.down[addr]
	mt.mu.Unlock()
	if !ok || down {
		return Message{}, errors.New("unreachable")
	}
	return n.ReceiveGossip(msg), nil
}

// fleetNode is one test node plus its chaos hooks.
type fleetNode struct {
	node   *Node
	faults *faultinject.Set
}

// startFleet boots n nodes on one memTransport, node-0 acting as the seed,
// and waits for the views to converge.
func startFleet(t *testing.T, mt *memTransport, n int, interval time.Duration) []*fleetNode {
	t.Helper()
	fleet := make([]*fleetNode, n)
	for i := 0; i < n; i++ {
		fleet[i] = startNode(t, mt, i, interval, nil)
	}
	for i := 1; i < n; i++ {
		if err := fleet[i].node.Join(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, fleet, n)
	return fleet
}

func startNode(t *testing.T, mt *memTransport, i int, interval time.Duration, onChange func([]Member)) *fleetNode {
	t.Helper()
	faults := faultinject.New()
	var seeds []string
	if i > 0 {
		seeds = []string{"addr-0"}
	}
	node, err := New(Config{
		Name:      fmt.Sprintf("node-%d", i),
		Addr:      fmt.Sprintf("addr-%d", i),
		Seeds:     seeds,
		Interval:  interval,
		Transport: mt,
		OnChange:  onChange,
		Metrics:   obs.NewRegistry(),
		Faults:    faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	mt.register(fmt.Sprintf("addr-%d", i), node)
	return &fleetNode{node: node, faults: faults}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitConverged waits until every node serves the same n members and the
// view digests agree.
func waitConverged(t *testing.T, fleet []*fleetNode, n int) {
	t.Helper()
	waitUntil(t, 5*time.Second, fmt.Sprintf("%d-node convergence", n), func() bool {
		d := fleet[0].node.Digest()
		for _, f := range fleet {
			if len(f.node.Serving()) != n || f.node.Digest() != d {
				return false
			}
		}
		return true
	})
}

func TestJoinConvergesAndDigestsAgree(t *testing.T) {
	mt := newMemTransport()
	fleet := startFleet(t, mt, 3, 5*time.Millisecond)
	for _, f := range fleet {
		serving := f.node.Serving()
		if len(serving) != 3 {
			t.Fatalf("%s serves %d members, want 3", f.node.cfg.Name, len(serving))
		}
		for _, m := range serving {
			if m.State != Alive {
				t.Errorf("%s sees %s as %s, want alive", f.node.cfg.Name, m.Name, m.State)
			}
		}
	}
}

func TestJoinFailsWhenNoSeedReachable(t *testing.T) {
	mt := newMemTransport()
	node, err := New(Config{
		Name: "n", Addr: "a", Seeds: []string{"nowhere"},
		Interval: 5 * time.Millisecond, Transport: mt,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Join(context.Background()); err == nil {
		t.Fatal("Join with only unreachable seeds should fail")
	}
}

// TestHeartbeatLossSuspectsWithoutEjection is the acceptance contract for
// the membership/heartbeat hook: dropped heartbeats drive Alive→Suspect,
// the suspected node refutes with an incarnation bump once gossip resumes,
// and the serving set never shrinks — no ejection flapping.
func TestHeartbeatLossSuspectsWithoutEjection(t *testing.T) {
	mt := newMemTransport()
	var mu sync.Mutex
	var servingSizes []int
	onChange := func(ms []Member) {
		mu.Lock()
		servingSizes = append(servingSizes, len(ms))
		mu.Unlock()
	}
	interval := 5 * time.Millisecond
	a := startNode(t, mt, 0, interval, onChange)
	b := startNode(t, mt, 1, interval, nil)
	if err := b.node.Join(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, []*fleetNode{a, b}, 2)

	// Drop both directions for a bounded burst — long enough to cross
	// SuspectAfter (3 intervals), far short of DeadAfter (10).
	a.faults.Inject(FaultHeartbeat, faultinject.Fault{Err: errors.New("partitioned"), Times: 5})
	b.faults.Inject(FaultHeartbeat, faultinject.Fault{Err: errors.New("partitioned"), Times: 5})

	sawSuspect := func() bool {
		for _, m := range a.node.Members() {
			if m.Name == "node-1" && m.State == Suspect {
				return true
			}
		}
		return false
	}
	waitUntil(t, 5*time.Second, "node-1 to be suspected", sawSuspect)

	// Once the burst is spent, gossip resumes: node-1 learns it is
	// suspected and refutes. Everyone must end Alive at a bumped
	// incarnation, with no Dead transition in between.
	waitUntil(t, 5*time.Second, "refutation to clear the suspicion", func() bool {
		for _, m := range a.node.Members() {
			if m.Name == "node-1" {
				return m.State == Alive && m.Incarnation > 1
			}
		}
		return false
	})
	if got := b.faults.Fired(FaultHeartbeat); got < 5 {
		t.Fatalf("membership/heartbeat fired %d times on node-1, want >= 5", got)
	}
	for _, m := range a.node.Members() {
		if m.State == Dead || m.State == Left {
			t.Fatalf("%s ended %s; a refuted suspicion must not kill", m.Name, m.State)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, n := range servingSizes {
		if n < 2 {
			t.Fatalf("serving set shrank to %d during suspicion; suspects must keep serving", n)
		}
	}
}

// TestHardKillDetectsDeadThenRejoinRefutes: a crashed node is detected
// Suspect→Dead and drops from the serving set; its restart (same name,
// fresh incarnation 1) refutes the stale Dead record during Join and
// rejoins the serving set.
func TestHardKillDetectsDeadThenRejoinRefutes(t *testing.T) {
	mt := newMemTransport()
	interval := 5 * time.Millisecond
	a := startNode(t, mt, 0, interval, nil)
	b := startNode(t, mt, 1, interval, nil)
	if err := b.node.Join(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, []*fleetNode{a, b}, 2)

	// Hard kill: the process is gone, the address black-holed.
	b.node.Close()
	mt.setDown("addr-1", true)
	waitUntil(t, 5*time.Second, "node-1 to be declared dead", func() bool {
		for _, m := range a.node.Members() {
			if m.Name == "node-1" {
				return m.State == Dead
			}
		}
		return false
	})
	if got := len(a.node.Serving()); got != 1 {
		t.Fatalf("serving set has %d members after death, want 1", got)
	}

	// Restart under the same name: Join must discover the stale Dead
	// record, refute past it, and re-enter the serving set.
	b2 := startNode(t, mt, 1, interval, nil)
	if err := b2.node.Join(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "restarted node-1 to rejoin", func() bool {
		for _, m := range a.node.Members() {
			if m.Name == "node-1" {
				return m.State == Alive
			}
		}
		return false
	})
	var inc uint64
	for _, m := range a.node.Members() {
		if m.Name == "node-1" {
			inc = m.Incarnation
		}
	}
	if inc < 2 {
		t.Fatalf("rejoined node-1 has incarnation %d, want a refutation bump past the dead record", inc)
	}
}

func TestGracefulLeaveDropsFromServing(t *testing.T) {
	mt := newMemTransport()
	interval := 5 * time.Millisecond
	fleet := startFleet(t, mt, 3, interval)

	fleet[2].node.Leave(context.Background())
	fleet[2].node.Close()
	mt.setDown("addr-2", true)

	waitUntil(t, 5*time.Second, "leavers to drop from serving sets", func() bool {
		return len(fleet[0].node.Serving()) == 2 && len(fleet[1].node.Serving()) == 2
	})
	for _, m := range fleet[0].node.Members() {
		if m.Name == "node-2" && m.State != Left {
			t.Fatalf("node-2 recorded as %s, want left", m.State)
		}
	}
}

func TestOnChangeDeliversSortedServingSet(t *testing.T) {
	mt := newMemTransport()
	var mu sync.Mutex
	var last []Member
	onChange := func(ms []Member) {
		mu.Lock()
		last = ms
		mu.Unlock()
	}
	interval := 5 * time.Millisecond
	a := startNode(t, mt, 0, interval, onChange)
	b := startNode(t, mt, 1, interval, nil)
	if err := b.node.Join(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, []*fleetNode{a, b}, 2)
	waitUntil(t, 5*time.Second, "OnChange to observe the join", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(last) == 2 && last[0].Name == "node-0" && last[1].Name == "node-1"
	})
}

func TestNewValidatesConfig(t *testing.T) {
	mt := newMemTransport()
	for _, cfg := range []Config{
		{Addr: "a", Transport: mt},
		{Name: "n", Transport: mt},
		{Name: "n", Addr: "a"},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) should fail validation", cfg)
		}
	}
}
