// Package membership is the cluster's dynamic-fleet layer: a seed-node join
// protocol with gossip-style liveness. Every node runs a small gossip loop
// that periodically sends its full member view (each member carrying a name,
// serving address, state, and incarnation number, plus a digest of the whole
// list) to the peers it knows; replies and incoming gossips are merged under
// SWIM-style rules, so views converge without any coordinator.
//
// Failure detection is timeout-driven with refutation. A member that has not
// been heard from for SuspectAfter becomes Suspect — still in the serving
// set, because a slow peer must not be ejected by one missed heartbeat. Only
// after DeadAfter does it become Dead and leave the serving set. A node that
// learns it is suspected refutes by bumping its own incarnation and
// re-announcing itself Alive; the higher incarnation wins everywhere, so the
// suspicion clears without flapping. Graceful shutdown broadcasts Left,
// which is terminal for that incarnation.
//
// Merge rules (per member record): a higher incarnation always wins; at the
// same incarnation the more severe state wins (Alive < Suspect < Dead <
// Left). Only a node itself ever raises its own incarnation — that is what
// makes refutation authoritative.
//
// The serving set (Alive + Suspect members) feeds the consistent-hash ring
// in internal/cluster through Config.OnChange; docs/MEMBERSHIP.md walks
// through the join flow, the state machine, and the warmup handoff.
package membership

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// State is one member's liveness state. The numeric order is the merge
// precedence at equal incarnation: later states are "more severe" and win.
type State int

const (
	// Alive members heartbeat on schedule and serve traffic.
	Alive State = iota
	// Suspect members missed heartbeats past SuspectAfter. They stay in
	// the serving set — suspicion is a grace period, not an ejection — and
	// clear it by refuting with a higher incarnation.
	Suspect
	// Dead members missed heartbeats past DeadAfter and are out of the
	// serving set. A Dead node that comes back refutes its way in again.
	Dead
	// Left members announced a graceful departure; terminal for that
	// incarnation (a restart rejoins with a refutation bump).
	Left
)

// String returns the lowercase state name used on the wire and in metrics.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	case Left:
		return "left"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Member is one node's record in the gossip view.
type Member struct {
	// Name uniquely identifies the node across restarts.
	Name string `json:"name"`
	// Addr is the node's serving address (host:port), the same address
	// peers dial for /v1/ traffic and gossip.
	Addr string `json:"addr"`
	// State is the liveness state as known by the sender.
	State State `json:"state"`
	// Incarnation orders records for the same name; only the node itself
	// raises its own incarnation (when refuting a suspicion).
	Incarnation uint64 `json:"incarnation"`
}

// Message is one gossip exchange: the sender's full view plus a digest of
// it, so receivers can cheaply observe convergence.
type Message struct {
	From    string   `json:"from"`
	Digest  string   `json:"digest"`
	Members []Member `json:"members"`
}

// Transport delivers one gossip message to a peer address and returns the
// peer's view in reply. Implementations: HTTPTransport (production) and the
// in-memory transport in the tests.
type Transport interface {
	Gossip(ctx context.Context, addr string, msg Message) (Message, error)
}

// Fault hook points owned by this package (catalog: docs/ROBUSTNESS.md).
const (
	// FaultHeartbeat fires before each outgoing heartbeat; an armed error
	// drops it (send and reply both lost), simulating a partitioned or
	// stalled peer so tests can drive suspect→refutation transitions.
	FaultHeartbeat = "membership/heartbeat"
	// FaultTransfer fires inside the joiner warmup state transfer (see
	// template.Pull); an armed error fails the transfer so tests can prove
	// a joiner degrades to serving cold rather than blocking forever.
	FaultTransfer = "membership/transfer"
)

// Default timing. SuspectAfter and DeadAfter are multiples of the gossip
// interval: 3 missed rounds raise suspicion, 10 declare death.
const (
	DefaultInterval        = time.Second
	defaultSuspectRounds   = 3
	defaultDeadRounds      = 10
	defaultRequestTimeout  = 2 * time.Second
	defaultJoinRetryRounds = 3
)

// Config configures a Node.
type Config struct {
	// Name uniquely identifies this node; required.
	Name string
	// Addr is this node's serving address as peers should dial it; required.
	Addr string
	// Seeds are peer addresses to contact on Join. Empty bootstraps a new
	// cluster of one.
	Seeds []string
	// Interval is the gossip period; 0 selects DefaultInterval.
	Interval time.Duration
	// SuspectAfter is silence before a member turns Suspect; 0 selects
	// 3×Interval.
	SuspectAfter time.Duration
	// DeadAfter is silence before a Suspect member turns Dead; 0 selects
	// 10×Interval.
	DeadAfter time.Duration
	// Transport carries gossip; required.
	Transport Transport
	// OnChange observes every serving-set change (Alive+Suspect members,
	// sorted by name), including the initial set. Called from the gossip
	// goroutine outside the node's lock; it must not call back into the
	// Node. The cluster router's dynamic peer set hangs off this.
	OnChange func([]Member)
	// Metrics receives boundary_membership_* series; nil disables.
	Metrics *obs.Registry
	// Traces, when non-nil, receives one trace per join attempt.
	Traces *obs.TraceStore
	// Service names this node in trace fragments; empty means Name.
	Service string
	// Logger receives membership transitions; nil disables.
	Logger *slog.Logger
	// Faults is the chaos-test hook set; nil disables.
	Faults *faultinject.Set
}

// Node is one cluster member: a gossip loop, a failure detector, and the
// merged view. All methods are safe for concurrent use.
type Node struct {
	cfg Config

	mu      sync.Mutex
	members map[string]*memberState
	self    *memberState
	refuted bool // set by a self-refuting merge, drained by selfWasRefuted

	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	mHeartbeats *obs.Counter
	mDropped    *obs.Counter
	mErrors     *obs.Counter
	mRefutes    *obs.Counter
}

// memberState is a Member plus the local failure detector's evidence.
type memberState struct {
	Member
	lastSeen time.Time
}

// New validates cfg, registers the node as the sole Alive member of its own
// view, and starts the gossip loop. Call Join to merge into an existing
// cluster and Close to stop.
func New(cfg Config) (*Node, error) {
	if cfg.Name == "" {
		return nil, errors.New("membership: a node name is required")
	}
	if cfg.Addr == "" {
		return nil, errors.New("membership: a serving address is required")
	}
	if cfg.Transport == nil {
		return nil, errors.New("membership: a transport is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = defaultSuspectRounds * cfg.Interval
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = defaultDeadRounds * cfg.Interval
	}
	if cfg.Service == "" {
		cfg.Service = cfg.Name
	}
	n := &Node{
		cfg:     cfg,
		members: make(map[string]*memberState),
		done:    make(chan struct{}),

		mHeartbeats: cfg.Metrics.Counter("boundary_membership_heartbeats_total", "Gossip heartbeats sent, by outcome.", "outcome", "ok"),
		mDropped:    cfg.Metrics.Counter("boundary_membership_heartbeats_total", "Gossip heartbeats sent, by outcome.", "outcome", "dropped"),
		mErrors:     cfg.Metrics.Counter("boundary_membership_heartbeats_total", "Gossip heartbeats sent, by outcome.", "outcome", "error"),
		mRefutes:    cfg.Metrics.Counter("boundary_membership_refutations_total", "Suspicions of this node refuted by an incarnation bump."),
	}
	self := &memberState{
		Member:   Member{Name: cfg.Name, Addr: cfg.Addr, State: Alive, Incarnation: 1},
		lastSeen: time.Now(),
	}
	n.members[cfg.Name] = self
	n.self = self
	n.setStateGauges()
	n.wg.Add(1)
	go n.loop()
	return n, nil
}

// Join gossips with every seed, merging their views (and letting them learn
// about us). If a seed's view says this node is Suspect or Dead — a restart
// after a hard kill — the merge refutes with an incarnation bump and Join
// gossips again so the refutation lands before the node takes traffic. With
// no seeds Join is a no-op (bootstrap). It fails only when every seed does.
func (n *Node) Join(ctx context.Context) error {
	if len(n.cfg.Seeds) == 0 {
		return nil
	}
	t := n.trace("membership/join")
	defer func() {
		t.Finish()
		n.cfg.Traces.Publish(t)
	}()
	var lastErr error
	for round := 0; round < defaultJoinRetryRounds; round++ {
		reached := 0
		for _, seed := range n.cfg.Seeds {
			if seed == n.cfg.Addr {
				continue // a seed list may include ourselves
			}
			start := time.Now()
			reply, err := n.cfg.Transport.Gossip(ctx, seed, n.view())
			t.Add("join/seed", time.Since(start), "seed", seed, "err", errString(err))
			if err != nil {
				lastErr = err
				continue
			}
			reached++
			n.merge(reply.Members, seed)
		}
		if reached == 0 && len(n.seedsExcludingSelf()) > 0 {
			return fmt.Errorf("membership: no seed reachable: %w", lastErr)
		}
		// If the merge refuted a stale Suspect/Dead record of us, gossip
		// once more so seeds see the refutation before we serve.
		if !n.selfWasRefuted() {
			return nil
		}
	}
	return nil
}

// seedsExcludingSelf filters our own address out of the seed list.
func (n *Node) seedsExcludingSelf() []string {
	out := make([]string, 0, len(n.cfg.Seeds))
	for _, s := range n.cfg.Seeds {
		if s != n.cfg.Addr {
			out = append(out, s)
		}
	}
	return out
}

// selfWasRefuted reports whether the last merge bumped our incarnation (a
// refutation we should spread immediately), clearing the flag.
func (n *Node) selfWasRefuted() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	r := n.refuted
	n.refuted = false
	return r
}

// Leave broadcasts a graceful departure (state Left at a fresh incarnation)
// to every serving peer, then returns; callers follow with Close. Peers that
// miss the broadcast will detect the silence as Suspect→Dead instead.
func (n *Node) Leave(ctx context.Context) {
	n.mu.Lock()
	n.self.Incarnation++
	n.self.State = Left
	inc := n.self.Incarnation
	n.mu.Unlock()
	n.setStateGauges()
	msg := n.view()
	for _, m := range n.gossipTargets() {
		ctx, cancel := context.WithTimeout(ctx, defaultRequestTimeout)
		n.cfg.Transport.Gossip(ctx, m.Addr, msg)
		cancel()
	}
	n.logf("leaving", "incarnation", inc)
}

// Close stops the gossip loop and waits for it. It does not broadcast; call
// Leave first for a graceful departure.
func (n *Node) Close() {
	n.closeOnce.Do(func() { close(n.done) })
	n.wg.Wait()
}

// Members returns every known member (any state), sorted by name.
func (n *Node) Members() []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Member, 0, len(n.members))
	for _, m := range n.members {
		out = append(out, m.Member)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Serving returns the serving set — Alive and Suspect members, sorted by
// name. Suspect members stay in: suspicion is a grace period, and ejecting
// on it would flap the ring on every slow heartbeat.
func (n *Node) Serving() []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.servingLocked()
}

func (n *Node) servingLocked() []Member {
	out := make([]Member, 0, len(n.members))
	for _, m := range n.members {
		if m.State == Alive || m.State == Suspect {
			out = append(out, m.Member)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// gossipTargets returns every member except self that is worth gossiping to
// (not Left, not Dead — the failure detector, not the gossip fan-out, is
// responsible for noticing a Dead node's return).
func (n *Node) gossipTargets() []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Member, 0, len(n.members))
	for _, m := range n.members {
		if m.Name == n.cfg.Name || m.State == Dead || m.State == Left {
			continue
		}
		out = append(out, m.Member)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// view snapshots the full member list as a gossip message.
func (n *Node) view() Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	members := make([]Member, 0, len(n.members))
	for _, m := range n.members {
		members = append(members, m.Member)
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Name < members[j].Name })
	return Message{From: n.cfg.Name, Digest: digest(members), Members: members}
}

// Digest returns the current view digest; tests use it to await convergence.
func (n *Node) Digest() string {
	return n.view().Digest
}

// digest hashes the sorted member tuples; two converged views share it.
func digest(members []Member) string {
	h := sha256.New()
	for _, m := range members {
		fmt.Fprintf(h, "%s|%s|%d|%d;", m.Name, m.Addr, m.State, m.Incarnation)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// ReceiveGossip merges an incoming view and replies with our own — the
// receiving half of the protocol, mounted at POST /v1/cluster/gossip (and
// /v1/cluster/join, which is just a first gossip). Hearing from a peer is
// liveness evidence for it regardless of what any view claims.
func (n *Node) ReceiveGossip(msg Message) Message {
	n.merge(msg.Members, msg.From)
	return n.view()
}

// merge folds incoming member records into the local view under the
// incarnation/severity rules, records liveness evidence for heard, and
// fires OnChange when the serving set changed.
func (n *Node) merge(incoming []Member, heard string) {
	n.mu.Lock()
	before := servingSignature(n.servingLocked())
	now := time.Now()
	if m, ok := n.members[heard]; ok {
		m.lastSeen = now
	}
	for _, in := range incoming {
		if in.Name == n.cfg.Name {
			n.mergeSelfLocked(in)
			continue
		}
		cur, ok := n.members[in.Name]
		if !ok {
			n.members[in.Name] = &memberState{Member: in, lastSeen: now}
			n.logf("member discovered", "member", in.Name, "addr", in.Addr, "state", in.State.String())
			continue
		}
		if in.Incarnation > cur.Incarnation || (in.Incarnation == cur.Incarnation && in.State > cur.State) {
			prev := cur.State
			cur.Member = in
			if in.State == Alive {
				// A refutation (or rejoin) at a higher incarnation resets
				// the failure detector's clock.
				cur.lastSeen = now
			}
			if prev != in.State {
				n.transition(in.Name, prev, in.State)
			}
		}
	}
	after := servingSignature(n.servingLocked())
	changed := before != after
	var serving []Member
	if changed {
		serving = n.servingLocked()
	}
	n.mu.Unlock()
	n.setStateGauges()
	if changed && n.cfg.OnChange != nil {
		n.cfg.OnChange(serving)
	}
}

// mergeSelfLocked handles an incoming record about this node. Suspicion or
// death at our incarnation (or newer) is refuted: we bump past it and
// re-announce Alive — only the node itself may raise its own incarnation,
// which is what makes the refutation stick everywhere.
func (n *Node) mergeSelfLocked(in Member) {
	if in.State == Alive || in.Incarnation < n.self.Incarnation {
		return
	}
	if n.self.State == Left {
		return // we are leaving; let the record stand
	}
	n.self.Incarnation = in.Incarnation + 1
	n.self.State = Alive
	n.refuted = true
	n.mRefutes.Inc()
	n.logf("refuted suspicion", "claimed", in.State.String(), "incarnation", n.self.Incarnation)
}

// loop is the gossip goroutine: heartbeat every Interval, then run the
// failure detector.
func (n *Node) loop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-ticker.C:
			n.gossipRound()
			n.detect()
		}
	}
}

// gossipRound heartbeats every gossipable peer with our view and merges
// replies. The membership/heartbeat fault drops a heartbeat outright —
// neither our view nor the reply arrives — which is exactly what a
// partition looks like to both sides.
func (n *Node) gossipRound() {
	msg := n.view()
	for _, m := range n.gossipTargets() {
		if err := n.cfg.Faults.Fire(FaultHeartbeat); err != nil {
			n.mDropped.Inc()
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), n.requestTimeout())
		reply, err := n.cfg.Transport.Gossip(ctx, m.Addr, msg)
		cancel()
		if err != nil {
			n.mErrors.Inc()
			continue
		}
		n.mHeartbeats.Inc()
		n.merge(reply.Members, m.Name)
	}
}

// requestTimeout bounds one gossip exchange: long enough for a slow peer,
// short enough that a dead one doesn't stall the round past the interval.
func (n *Node) requestTimeout() time.Duration {
	if t := 2 * n.cfg.Interval; t < defaultRequestTimeout {
		return defaultRequestTimeout
	}
	return 2 * n.cfg.Interval
}

// detect advances the failure detector: Alive members silent past
// SuspectAfter turn Suspect; Suspect members silent past DeadAfter turn
// Dead (and leave the serving set, firing OnChange).
func (n *Node) detect() {
	n.mu.Lock()
	before := servingSignature(n.servingLocked())
	now := time.Now()
	for _, m := range n.members {
		if m.Name == n.cfg.Name {
			continue
		}
		silent := now.Sub(m.lastSeen)
		switch {
		case m.State == Alive && silent > n.cfg.SuspectAfter:
			m.State = Suspect
			n.transition(m.Name, Alive, Suspect)
		case m.State == Suspect && silent > n.cfg.DeadAfter:
			m.State = Dead
			n.transition(m.Name, Suspect, Dead)
		}
	}
	after := servingSignature(n.servingLocked())
	changed := before != after
	var serving []Member
	if changed {
		serving = n.servingLocked()
	}
	n.mu.Unlock()
	n.setStateGauges()
	if changed && n.cfg.OnChange != nil {
		n.cfg.OnChange(serving)
	}
}

// transition records one state change (caller holds the lock).
func (n *Node) transition(name string, from, to State) {
	n.cfg.Metrics.Counter("boundary_membership_transitions_total",
		"Member state transitions observed, by destination state.", "to", to.String()).Inc()
	n.logf("member transition", "member", name, "from", from.String(), "to", to.String())
}

// setStateGauges publishes the per-state member counts.
func (n *Node) setStateGauges() {
	if n.cfg.Metrics == nil {
		return
	}
	n.mu.Lock()
	counts := make(map[State]int)
	for _, m := range n.members {
		counts[m.State]++
	}
	n.mu.Unlock()
	for _, s := range []State{Alive, Suspect, Dead, Left} {
		n.cfg.Metrics.Gauge("boundary_membership_members",
			"Known cluster members, by state.", "state", s.String()).Set(float64(counts[s]))
	}
}

// servingSignature fingerprints a serving set by name+addr, the identity the
// ring cares about.
func servingSignature(members []Member) string {
	var b strings.Builder
	for _, m := range members {
		b.WriteString(m.Name)
		b.WriteByte('|')
		b.WriteString(m.Addr)
		b.WriteByte(';')
	}
	return b.String()
}

// trace starts a membership trace fragment, or a no-op one when tracing is
// off (obs trace methods are nil-safe).
func (n *Node) trace(name string) *obs.Trace {
	if n.cfg.Traces == nil {
		return nil
	}
	t := obs.NewTrace()
	t.SetRoot(n.cfg.Service, name)
	return t
}

func (n *Node) logf(msg string, args ...any) {
	if n.cfg.Logger == nil {
		return
	}
	n.cfg.Logger.Info("membership: "+msg, append([]any{"node", n.cfg.Name}, args...)...)
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
