package membership

import (
	"testing"

	"repro/internal/testutil"
)

// TestMain fails the package if any test leaks a goroutine — gossip loops
// and failure-detector tickers must all stop on Close.
func TestMain(m *testing.M) {
	testutil.VerifyTestMain(m)
}
