package membership

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// GossipPath is where every node mounts its gossip receiver (see
// internal/httpapi's cluster routes); JoinPath is an alias for it — a join
// is just a node's first gossip.
const (
	GossipPath = "/v1/cluster/gossip"
	JoinPath   = "/v1/cluster/join"
)

// HTTPTransport gossips over the serving HTTP port: POST GossipPath with a
// JSON Message, reply is the peer's Message. The zero value is usable.
type HTTPTransport struct {
	// Client overrides http.DefaultClient (tests inject short timeouts).
	Client *http.Client
}

// Gossip implements Transport. addr may be host:port or a full URL.
func (t *HTTPTransport) Gossip(ctx context.Context, addr string, msg Message) (Message, error) {
	body, err := json.Marshal(msg)
	if err != nil {
		return Message{}, err
	}
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimSuffix(url, "/")+GossipPath, bytes.NewReader(body))
	if err != nil {
		return Message{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	client := t.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	resp, err := client.Do(req)
	if err != nil {
		return Message{}, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return Message{}, fmt.Errorf("membership: gossip to %s: status %d: %.200s", addr, resp.StatusCode, b)
	}
	var reply Message
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return Message{}, fmt.Errorf("membership: gossip to %s: bad reply: %w", addr, err)
	}
	return reply, nil
}
