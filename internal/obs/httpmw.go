package obs

import (
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// RequestIDHeader carries the request ID on requests (honored when present)
// and on every response.
const RequestIDHeader = "X-Request-ID"

// statusWriter captures the response status and body size.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports streaming.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer to http.ResponseController, so handlers
// behind the middleware can reach controller features the wrapper does not
// re-implement (EnableFullDuplex, deadlines, hijacking).
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Tracing configures the middleware's distributed-tracing behavior: where
// finished traces are published and which service name the fragment roots
// carry. A nil *Tracing disables tracing entirely.
type Tracing struct {
	Store   *TraceStore
	Service string
}

// Middleware wraps next with structured request logging, per-route metrics,
// X-Request-ID propagation and — when tracing is non-nil — distributed
// tracing: an inbound W3C traceparent header continues the caller's trace
// (otherwise a fresh one starts), the live trace rides the request context
// for handlers to annotate, the trace ID echoes on the X-Trace-ID response
// header, and the finished fragment is published to tracing.Store with its
// status derived from the response code (429 → shed, other 4xx/5xx →
// error). route maps a request to its bounded-cardinality route label (e.g.
// the mux pattern that matched); nil or an empty result is labeled
// "unmatched". logger may be nil to disable logging; reg may be nil to
// disable metrics.
//
// Per route it maintains: http_requests_total{route,method,code},
// http_request_errors_total{route} (status >= 400),
// http_request_duration_seconds{route} (histogram),
// http_request_body_bytes_total{route} (bytes in), and the process-wide
// http_requests_in_flight gauge.
func Middleware(next http.Handler, logger *slog.Logger, reg *Registry, route func(*http.Request) string, tracing *Tracing) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt := "unmatched"
		if route != nil {
			if s := route(r); s != "" {
				rt = s
			}
		}

		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(WithRequestID(r.Context(), id))

		var tr *Trace
		if tracing != nil {
			if sc, ok := ParseTraceparent(r.Header.Get(TraceparentHeader)); ok {
				tr = NewTraceFrom(sc)
			} else {
				tr = NewTrace()
			}
			service := tracing.Service
			if service == "" {
				service = "boundary"
			}
			// Route labels from mux patterns often carry the method already
			// ("POST /v1/discover"); only prefix it when absent.
			name := rt
			if !strings.HasPrefix(name, r.Method+" ") {
				name = r.Method + " " + name
			}
			tr.SetRoot(service, name)
			tr.RootAttr("request_id", id)
			w.Header().Set(TraceIDHeader, tr.ID().String())
			r = r.WithContext(WithTrace(r.Context(), tr))
		}

		inFlight := reg.Gauge("http_requests_in_flight",
			"Requests currently being served.")
		inFlight.Inc()
		defer inFlight.Dec()
		if r.ContentLength > 0 {
			reg.Counter("http_request_body_bytes_total",
				"Request body bytes received, by route.",
				"route", rt).Add(float64(r.ContentLength))
		}

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)

		if sw.status == 0 { // handler wrote nothing
			sw.status = http.StatusOK
		}
		reg.Counter("http_requests_total",
			"HTTP requests served, by route, method and status code.",
			"route", rt, "method", r.Method, "code", strconv.Itoa(sw.status)).Inc()
		if sw.status >= 400 {
			reg.Counter("http_request_errors_total",
				"HTTP requests answered with a 4xx or 5xx status, by route.",
				"route", rt).Inc()
		}
		reg.Histogram("http_request_duration_seconds",
			"HTTP request latency in seconds, by route.", nil,
			"route", rt).Observe(elapsed.Seconds())

		if tr != nil {
			tr.RootAttr("code", strconv.Itoa(sw.status))
			switch {
			case sw.status == http.StatusTooManyRequests:
				tr.SetStatus(StatusShed, "load shed")
			case sw.status >= 400:
				tr.SetStatus(StatusError, "http status "+strconv.Itoa(sw.status))
			}
			tr.Finish()
			tracing.Store.Publish(tr)
		}

		if logger != nil {
			traceID := ""
			if tr != nil {
				traceID = tr.ID().String()
			}
			logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("request_id", id),
				slog.String("trace_id", traceID),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", rt),
				slog.Int("status", sw.status),
				slog.Int64("bytes_in", max(r.ContentLength, 0)),
				slog.Int64("bytes_out", sw.bytes),
				slog.Duration("duration", elapsed),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}
