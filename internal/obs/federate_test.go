package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestValidateExpositionAcceptsOwnRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "Requests.", "route", "/v1/discover").Inc()
	r.Gauge("inflight", "In flight.").Set(2)
	r.Histogram("dur_seconds", "Durations.", DefBuckets).Observe(0.03)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition([]byte(b.String())); err != nil {
		t.Errorf("own registry output rejected: %v\n%s", err, b.String())
	}
}

func TestValidateExpositionRejectsGarbage(t *testing.T) {
	for name, data := range map[string]string{
		"not a sample": "this is not prometheus\n",
		"bad value":    "x_total{} notanumber\n",
		"bad type":     "# TYPE x_total rate\n",
		"torn braces":  "x_total{route=\"/v1 12\n",
	} {
		if err := ValidateExposition([]byte(data)); err == nil {
			t.Errorf("%s: %q validated, want error", name, data)
		}
	}
}

func TestValidateExpositionQuotedLabels(t *testing.T) {
	data := "x_total{route=\"/a b\",msg=\"brace } inside\",esc=\"q\\\"uote\"} 4\n"
	if err := ValidateExposition([]byte(data)); err != nil {
		t.Errorf("quoted labels rejected: %v", err)
	}
}

func TestWriteFederatedMergesPeers(t *testing.T) {
	a := "# HELP reqs_total Requests.\n# TYPE reqs_total counter\nreqs_total{route=\"/x\"} 3\n"
	b := "# HELP reqs_total Requests.\n# TYPE reqs_total counter\nreqs_total{route=\"/x\"} 7\n"
	var out strings.Builder
	err := WriteFederated(&out, []Scrape{
		{Peer: "local-0", Data: []byte(a)},
		{Peer: "local-1", Data: []byte(b)},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		`reqs_total{peer="local-0",route="/x"} 3`,
		`reqs_total{peer="local-1",route="/x"} 7`,
		`boundary_federation_peers{peer="local-0"} 1`,
		`boundary_federation_peers{peer="local-1"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("federated output missing %q:\n%s", want, got)
		}
	}
	if strings.Count(got, "# TYPE reqs_total counter") != 1 {
		t.Errorf("family metadata must be emitted once:\n%s", got)
	}
	if err := ValidateExposition([]byte(got)); err != nil {
		t.Errorf("federated output does not re-parse: %v", err)
	}
}

func TestWriteFederatedFailedPeerBecomesComment(t *testing.T) {
	var out strings.Builder
	err := WriteFederated(&out, []Scrape{
		{Peer: "local-0", Data: []byte("# TYPE up gauge\nup 1\n")},
		{Peer: "remote-1", Err: errors.New("connection refused")},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"# federation: peer remote-1 failed: connection refused",
		`boundary_federation_peers{peer="remote-1"} 0`,
		`boundary_federation_peers{peer="local-0"} 1`,
		`up{peer="local-0"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if err := ValidateExposition([]byte(got)); err != nil {
		t.Errorf("output with failed peer does not re-parse: %v", err)
	}
}

func TestWriteFederatedTypeConflictSkipsPeer(t *testing.T) {
	var out strings.Builder
	err := WriteFederated(&out, []Scrape{
		{Peer: "a", Data: []byte("# TYPE m counter\nm 1\n")},
		{Peer: "b", Data: []byte("# TYPE m gauge\nm 2\n")},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "type conflict on m") {
		t.Errorf("missing type-conflict comment:\n%s", got)
	}
	if !strings.Contains(got, `m{peer="a"} 1`) || strings.Contains(got, `m{peer="b"}`) {
		t.Errorf("conflicting peer's samples must be skipped, first peer's kept:\n%s", got)
	}
}

// TestWriteFederatedHistogramSuffixes: _bucket/_sum/_count samples must stay
// grouped under their histogram family rather than spawning untyped families.
func TestWriteFederatedHistogramSuffixes(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1}).Observe(0.5)
	var exp strings.Builder
	if err := r.WritePrometheus(&exp); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := WriteFederated(&out, []Scrape{{Peer: "p0", Data: []byte(exp.String())}}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if strings.Contains(got, "# TYPE lat_seconds_bucket") {
		t.Errorf("_bucket spawned its own family:\n%s", got)
	}
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{peer="p0",le="1"} 1`,
		`lat_seconds_count{peer="p0"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many goroutines
// while the registry is concurrently rendered; run under -race this is the
// exposition-vs-observe data-race check, and the final counts must not lose
// an observation.
func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 8, 2000
	var writers, renderer sync.WaitGroup
	stop := make(chan struct{})
	renderer.Add(1)
	go func() {
		defer renderer.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				_ = r.WritePrometheus(&b)
				if err := ValidateExposition([]byte(b.String())); err != nil {
					t.Errorf("mid-flight exposition invalid: %v", err)
					return
				}
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				// Re-resolve the metric each time: registration races too.
				r.Histogram("stage_seconds", "Stage durations.", StageBuckets,
					"stage", "parse").Observe(float64(i%10) / 1000)
			}
		}()
	}
	writers.Wait()
	close(stop)
	renderer.Wait()
	h := r.Histogram("stage_seconds", "Stage durations.", StageBuckets, "stage", "parse")
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("Count = %d, want %d (lost observations)", got, goroutines*perG)
	}
}
