package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceStoreConfig tunes a TraceStore. The zero value gives sane defaults.
type TraceStoreConfig struct {
	// Capacity bounds the number of distinct traces retained; the oldest is
	// evicted first. Default 512.
	Capacity int
	// SampleEvery keeps one in N unremarkable traces (ok status, not in the
	// slow tail). 0 or 1 keeps every trace; tail-kept traces — errored,
	// degraded, shed, or slowest-percentile — are always retained regardless.
	SampleEvery int
	// SlowFraction is the fraction of recent traces considered the "slow
	// tail" and always kept (0 means the default 0.10; negative disables
	// slow-tail keeping).
	SlowFraction float64
}

// slowWindow is how many recent durations feed the slow-tail threshold.
const slowWindow = 256

// TraceStore is a bounded in-memory store of finished traces with tail
// sampling: traces whose status is error, shed or degraded are always kept,
// as are those in the slowest percentile of recent traffic; the rest are
// head-sampled one-in-N. Fragments published from different services under
// one TraceID merge into a single stored trace, and a fragment of an
// already-stored trace is always kept so distributed traces never arrive
// half-sampled. A nil *TraceStore is a valid no-op sink.
type TraceStore struct {
	cfg TraceStoreConfig

	mu        sync.Mutex
	traces    map[TraceID]*storedTrace
	order     []TraceID // insertion order, oldest first
	recent    [slowWindow]float64
	recentN   int // total durations ever pushed
	published int
	kept      int
	sampled   int // dropped by head sampling
}

// storedTrace is one trace's merged fragments plus why it was kept.
type storedTrace struct {
	fragments []TraceData
	reason    string // "error", "degraded", "shed", "slow", "sampled"
}

// NewTraceStore returns an empty store.
func NewTraceStore(cfg TraceStoreConfig) *TraceStore {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 512
	}
	if cfg.SlowFraction == 0 {
		cfg.SlowFraction = 0.10
	}
	return &TraceStore{cfg: cfg, traces: make(map[TraceID]*storedTrace)}
}

// Publish offers a finished trace to the store. Both receiver and argument
// may be nil.
func (s *TraceStore) Publish(t *Trace) {
	if s == nil || t == nil {
		return
	}
	s.publish(t.Snapshot())
}

func (s *TraceStore) publish(d TraceData) {
	if d.TraceID.IsZero() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.published++

	if st, ok := s.traces[d.TraceID]; ok {
		// A later fragment of a kept trace always merges in: a distributed
		// trace must not lose its remote halves to sampling.
		st.fragments = append(st.fragments, d)
		s.pushDuration(d)
		return
	}

	reason := ""
	switch d.Status {
	case StatusError:
		reason = "error"
	case StatusDegraded:
		reason = "degraded"
	case StatusShed:
		reason = "shed"
	}
	if reason == "" && s.cfg.SlowFraction > 0 && s.isSlow(d.Duration) {
		reason = "slow"
	}
	s.pushDuration(d)
	if reason == "" {
		if s.cfg.SampleEvery > 1 && s.kept > 0 && (s.published-1)%s.cfg.SampleEvery != 0 {
			s.sampled++
			return
		}
		reason = "sampled"
	}

	s.kept++
	s.traces[d.TraceID] = &storedTrace{fragments: []TraceData{d}, reason: reason}
	s.order = append(s.order, d.TraceID)
	for len(s.order) > s.cfg.Capacity {
		delete(s.traces, s.order[0])
		s.order = s.order[1:]
	}
}

// pushDuration records a duration in the recent-traffic window. Only root
// fragments (no remote parent) count, so one distributed request is one
// sample however many hops it made.
func (s *TraceStore) pushDuration(d TraceData) {
	if !d.RemoteParent.IsZero() {
		return
	}
	s.recent[s.recentN%slowWindow] = d.Duration.Seconds()
	s.recentN++
}

// isSlow reports whether dur falls in the slowest SlowFraction of the
// recent-traffic window. With fewer than 20 samples there is no meaningful
// tail yet and nothing is considered slow.
func (s *TraceStore) isSlow(dur time.Duration) bool {
	n := min(s.recentN, slowWindow)
	if n < 20 {
		return false
	}
	window := make([]float64, n)
	copy(window, s.recent[:n])
	sort.Float64s(window)
	idx := int(float64(n) * (1 - s.cfg.SlowFraction))
	if idx >= n {
		idx = n - 1
	}
	return dur.Seconds() >= window[idx]
}

// Len returns the number of traces currently retained.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Get returns the merged fragments of one trace, in arrival order.
func (s *TraceStore) Get(id TraceID) ([]TraceData, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.traces[id]
	if !ok {
		return nil, false
	}
	return append([]TraceData(nil), st.fragments...), true
}

// TraceSummary is one row of the /debug/traces listing.
type TraceSummary struct {
	TraceID    string    `json:"trace_id"`
	Service    string    `json:"service"`
	Name       string    `json:"name"`
	Status     string    `json:"status"`
	StatusMsg  string    `json:"status_msg,omitempty"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
	Fragments  int       `json:"fragments"`
	Kept       string    `json:"kept"` // why tail sampling retained it
}

// summarize builds the listing row for one stored trace. The first root
// fragment (no remote parent) names the trace; status is the worst across
// fragments.
func summarize(id TraceID, st *storedTrace) TraceSummary {
	sum := TraceSummary{TraceID: id.String(), Kept: st.reason}
	root := st.fragments[0]
	for _, f := range st.fragments {
		if f.RemoteParent.IsZero() {
			root = f
			break
		}
	}
	sum.Service, sum.Name = root.Service, root.Name
	sum.Start = root.Start
	sum.DurationMS = float64(root.Duration) / float64(time.Millisecond)
	sum.Status = root.Status
	sum.StatusMsg = root.StatusMsg
	for _, f := range st.fragments {
		sum.Fragments++
		sum.Spans += len(f.Spans) + 1 // + the fragment root span
		if statusRank(f.Status) > statusRank(sum.Status) {
			sum.Status, sum.StatusMsg = f.Status, f.StatusMsg
		}
	}
	return sum
}

// List returns summaries of the retained traces, newest first.
func (s *TraceStore) List() []TraceSummary {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceSummary, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		id := s.order[i]
		out = append(out, summarize(id, s.traces[id]))
	}
	return out
}

// traceList is the JSON envelope of the /debug/traces listing.
type traceList struct {
	Published int            `json:"published"`
	Kept      int            `json:"kept"`
	Sampled   int            `json:"sampled_out"`
	Traces    []TraceSummary `json:"traces"`
}

// Handler serves the store for debugging: GET /debug/traces lists retained
// traces as JSON (newest first, with sampling totals), and
// GET /debug/traces?trace=<id> renders one trace as a plain-text span tree
// stitched across its fragments.
func (s *TraceStore) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if q := r.URL.Query().Get("trace"); q != "" {
			id, ok := ParseTraceID(q)
			if !ok {
				http.Error(w, "malformed trace id", http.StatusBadRequest)
				return
			}
			frags, ok := s.Get(id)
			if !ok {
				http.Error(w, "trace not found (evicted or sampled out)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, RenderTraceTree(id, frags))
			return
		}
		s.mu.Lock()
		env := traceList{Published: s.published, Kept: s.kept, Sampled: s.sampled}
		s.mu.Unlock()
		env.Traces = s.List()
		if env.Traces == nil {
			env.Traces = []TraceSummary{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(env)
	})
}

// treeNode is one rendered span (or fragment root) and its children.
type treeNode struct {
	label    string
	children []*treeNode
}

// RenderTraceTree renders a trace's fragments as an indented span tree:
// fragments nest under the span in the calling process that spawned them
// (their remote parent), and spans nest under their parent span. Orphans —
// fragments whose remote parent was dropped or never published — render at
// top level, marked as detached.
func RenderTraceTree(id TraceID, frags []TraceData) string {
	byRoot := make(map[SpanID]*treeNode) // fragment root span id → node
	spanNodes := make(map[SpanID]*treeNode)
	fragNodes := make([]*treeNode, len(frags))

	for i, f := range frags {
		status := ""
		if f.Status != "" && f.Status != StatusOK {
			status = " [" + f.Status
			if f.StatusMsg != "" {
				status += ": " + f.StatusMsg
			}
			status += "]"
		}
		n := &treeNode{label: fmt.Sprintf("%s %s %s%s %s",
			f.Service, f.Name, f.Duration, status, attrString(f.RootAttrs))}
		n.label = strings.TrimRight(n.label, " ")
		fragNodes[i] = n
		byRoot[f.Root] = n
		for j := range f.Spans {
			sp := &f.Spans[j]
			st := ""
			if sp.Status != "" && sp.Status != StatusOK {
				st = " [" + sp.Status + "]"
			}
			sn := &treeNode{label: strings.TrimRight(fmt.Sprintf("%s %s%s %s",
				sp.Name, sp.Duration, st, attrString(sp.Attrs)), " ")}
			spanNodes[sp.ID] = sn
		}
	}
	// Parent each span under its parent span, or under its fragment root.
	for i, f := range frags {
		for j := range f.Spans {
			sp := &f.Spans[j]
			child := spanNodes[sp.ID]
			if p, ok := spanNodes[sp.Parent]; ok && p != child {
				p.children = append(p.children, child)
			} else {
				fragNodes[i].children = append(fragNodes[i].children, child)
			}
		}
	}
	// Parent each non-root fragment under its remote parent span.
	var roots []*treeNode
	for i, f := range frags {
		if f.RemoteParent.IsZero() {
			roots = append(roots, fragNodes[i])
			continue
		}
		if p, ok := spanNodes[f.RemoteParent]; ok {
			p.children = append(p.children, fragNodes[i])
		} else if p, ok := byRoot[f.RemoteParent]; ok {
			p.children = append(p.children, fragNodes[i])
		} else {
			fragNodes[i].label += " (detached)"
			roots = append(roots, fragNodes[i])
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%d fragment(s))\n", id, len(frags))
	for _, r := range roots {
		renderNode(&b, r, 0)
	}
	return b.String()
}

func renderNode(b *strings.Builder, n *treeNode, depth int) {
	fmt.Fprintf(b, "%s%s\n", strings.Repeat("  ", depth), n.label)
	for _, c := range n.children {
		renderNode(b, c, depth+1)
	}
}
