package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Scrape is one peer's /metrics exposition (or the error fetching it), as
// input to WriteFederated.
type Scrape struct {
	Peer string
	Data []byte
	Err  error
}

// expoSample is one parsed sample line: the full metric name (including any
// _bucket/_sum/_count suffix), its raw label body (without braces), and its
// value text.
type expoSample struct {
	name   string
	labels string
	value  string
}

// expoFamily groups one metric family's metadata and samples.
type expoFamily struct {
	name    string
	help    string
	typ     string
	samples []expoSample
}

var expoTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// splitSample splits a sample line into name, label body, and value,
// honoring quotes in label values (a label may contain spaces, braces, or
// escaped quotes). ok is false for lines that do not scan.
func splitSample(line string) (name, labels, value string, ok bool) {
	i := strings.IndexAny(line, "{ \t")
	if i <= 0 {
		return "", "", "", false
	}
	name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		// Scan to the closing brace, skipping quoted stretches.
		inQuote, escaped := false, false
		end := -1
		for j := 1; j < len(rest); j++ {
			c := rest[j]
			switch {
			case escaped:
				escaped = false
			case c == '\\':
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", "", "", false
		}
		labels = rest[1:end]
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // value [timestamp]
		return "", "", "", false
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return "", "", "", false
	}
	return name, labels, fields[0], true
}

// parseExposition parses Prometheus text format 0.0.4 into families, in
// order of first appearance. Unknown-family samples (no TYPE line) get an
// implicit untyped family.
func parseExposition(data []byte) ([]*expoFamily, error) {
	byName := make(map[string]*expoFamily)
	var order []*expoFamily
	family := func(name string) *expoFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &expoFamily{name: name}
		byName[name] = f
		order = append(order, f)
		return f
	}
	// sampleFamily maps a sample name to its family, resolving histogram
	// and summary suffixes.
	sampleFamily := func(name string) *expoFamily {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base, found := strings.CutSuffix(name, suffix)
			if !found {
				continue
			}
			if f, ok := byName[base]; ok && (f.typ == "histogram" || f.typ == "summary") {
				return f
			}
		}
		return family(name)
	}

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && fields[1] == "HELP" {
				f := family(fields[2])
				if len(fields) == 4 {
					f.help = fields[3]
				}
				continue
			}
			if len(fields) >= 4 && fields[1] == "TYPE" {
				if !expoTypes[fields[3]] {
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				family(fields[2]).typ = fields[3]
				continue
			}
			continue // bare comment
		}
		name, labels, value, ok := splitSample(line)
		if !ok {
			return nil, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		f := sampleFamily(name)
		f.samples = append(f.samples, expoSample{name: name, labels: labels, value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return order, nil
}

// ValidateExposition checks that data parses as Prometheus text exposition
// format: every sample line scans and carries a float value, and every TYPE
// line declares a known type.
func ValidateExposition(data []byte) error {
	_, err := parseExposition(data)
	return err
}

// WriteFederated merges several peers' expositions into one, re-emitting
// every sample with an injected peer="<name>" label so one scrape of the
// router shows the whole ring with per-replica attribution. Families are
// merged by name across peers (first HELP/TYPE wins; a peer whose TYPE
// disagrees is skipped for that family with an explanatory comment), and a
// failed scrape becomes a comment plus a boundary_federation_errors sample
// rather than failing the whole exposition.
func WriteFederated(w io.Writer, scrapes []Scrape) error {
	type fedFamily struct {
		expoFamily
		perPeer []struct {
			peer    string
			samples []expoSample
		}
	}
	byName := make(map[string]*fedFamily)
	var errsOut []string
	var failed []string

	for _, sc := range scrapes {
		if sc.Err != nil {
			errsOut = append(errsOut, fmt.Sprintf("# federation: peer %s failed: %s", sc.Peer, sc.Err))
			failed = append(failed, sc.Peer)
			continue
		}
		fams, err := parseExposition(sc.Data)
		if err != nil {
			errsOut = append(errsOut, fmt.Sprintf("# federation: peer %s unparseable: %s", sc.Peer, err))
			failed = append(failed, sc.Peer)
			continue
		}
		for _, f := range fams {
			ff, ok := byName[f.name]
			if !ok {
				ff = &fedFamily{expoFamily: expoFamily{name: f.name, help: f.help, typ: f.typ}}
				byName[f.name] = ff
			}
			if ff.typ == "" {
				ff.typ = f.typ
			}
			if ff.help == "" {
				ff.help = f.help
			}
			if f.typ != "" && ff.typ != f.typ {
				errsOut = append(errsOut, fmt.Sprintf(
					"# federation: peer %s: type conflict on %s (%s vs %s), skipped",
					sc.Peer, f.name, f.typ, ff.typ))
				continue
			}
			ff.perPeer = append(ff.perPeer, struct {
				peer    string
				samples []expoSample
			}{sc.Peer, f.samples})
		}
	}

	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, line := range errsOut {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	for _, name := range names {
		ff := byName[name]
		if ff.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", ff.name, ff.help)
		}
		typ := ff.typ
		if typ == "" {
			typ = "untyped"
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", ff.name, typ)
		for _, pp := range ff.perPeer {
			peerLabel := `peer="` + escapeLabel(pp.peer) + `"`
			for _, sample := range pp.samples {
				labels := peerLabel
				if sample.labels != "" {
					labels += "," + sample.labels
				}
				fmt.Fprintf(&b, "%s{%s} %s\n", sample.name, labels, sample.value)
			}
		}
	}
	// Surface scrape health as a metric, so a dashboard can alert on a peer
	// that stopped exposing rather than just losing its series.
	fmt.Fprintf(&b, "# TYPE boundary_federation_peers gauge\n")
	for _, sc := range scrapes {
		up := 1
		for _, f := range failed {
			if f == sc.Peer {
				up = 0
				break
			}
		}
		fmt.Fprintf(&b, "boundary_federation_peers{peer=\"%s\"} %d\n", escapeLabel(sc.Peer), up)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
