// Package obs is the pipeline's observability layer: a concurrency-safe
// metrics registry with Prometheus text-format exposition, per-stage trace
// spans for one Discover call, and structured HTTP request logging with
// generated request IDs. It is stdlib-only by design — the repo's no-new-deps
// rule extends to operational tooling — and every type tolerates a nil
// receiver so instrumented code needs no "is observability on?" branches.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency-histogram bucket upper bounds, in
// seconds. They match the conventional Prometheus client defaults so
// dashboards written against other services carry over.
var DefBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// StageBuckets are bucket bounds for in-process pipeline stages — tag-tree
// build, a single heuristic's ranking — which complete in microseconds to
// milliseconds on Figure-2-sized documents, well under DefBuckets' floor.
// Shared by every stage histogram so per-heuristic latencies compare
// directly.
var StageBuckets = []float64{
	.00001, .000025, .00005, .0001, .00025, .0005, .001, .0025, .005,
	.01, .025, .05, .1, .25, 1,
}

// Registry holds named metric families and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry. A nil *Registry is
// a valid no-op sink: every lookup returns a nil metric whose methods do
// nothing, so callers may thread an optional registry without nil checks.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one metric name: its metadata plus one series per label set.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge" or "histogram"
	buckets []float64
	series  map[string]*series // keyed by rendered label string
}

type series struct {
	pairs [][2]string // sorted label key/value pairs
	value any         // *Counter, *Gauge or *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelPairs normalizes alternating key, value, key, value... arguments into
// sorted pairs. An unpaired trailing key gets an empty value.
func labelPairs(labels []string) [][2]string {
	if len(labels)%2 != 0 {
		labels = append(labels, "")
	}
	pairs := make([][2]string, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, [2]string{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	return pairs
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// renderLabels renders sorted pairs (plus any extras, appended last) as
// {k="v",...}, or "" for an empty set.
func renderLabels(pairs [][2]string, extra ...[2]string) string {
	all := append(append([][2]string{}, pairs...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p[0])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p[1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// metric returns (creating if needed) the series for name+labels, checking
// that the family's type matches. Registering the same name under two
// different types is a programming error and panics.
func (r *Registry) metric(name, help, typ string, buckets []float64, labels []string) any {
	pairs := labelPairs(labels)
	key := renderLabels(pairs)

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{pairs: pairs}
		switch typ {
		case "counter":
			s.value = &Counter{}
		case "gauge":
			s.value = &Gauge{}
		case "histogram":
			s.value = newHistogram(f.buckets)
		}
		f.series[key] = s
	}
	return s.value
}

// Counter returns the counter for name and the given alternating
// key, value label arguments, creating it on first use. help is recorded on
// first registration of the name. A nil registry returns a nil no-op counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.metric(name, help, "counter", nil, labels).(*Counter)
}

// Gauge is the gauge analogue of Counter.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.metric(name, help, "gauge", nil, labels).(*Gauge)
}

// Histogram returns the fixed-bucket histogram for name+labels. buckets are
// upper bounds in ascending order; nil means DefBuckets. The bucket layout is
// fixed by the first registration of the name.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.metric(name, help, "histogram", buckets, labels).(*Histogram)
}

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and are no-ops on a nil receiver.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Add increases the counter by d; negative deltas are ignored.
func (c *Counter) Add(d float64) {
	if c == nil || d < 0 {
		return
	}
	addFloat(&c.bits, d)
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increases (or, for negative d, decreases) the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, d)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// addFloat atomically adds d to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets (cumulative "le" buckets
// in the exposition, like Prometheus client histograms).
type Histogram struct {
	buckets []float64       // upper bounds, ascending
	counts  []atomic.Uint64 // per-bucket counts; last entry is +Inf
	sum     atomic.Uint64   // float64 bits
	count   atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{buckets: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with v <= le
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families and series in deterministic sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot series lists under the lock; values are read atomically after.
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch v := s.value.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, k, formatFloat(v.Value()))
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, k, formatFloat(v.Value()))
			case *Histogram:
				var cum uint64
				for i, le := range v.buckets {
					cum += v.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n",
						f.name, renderLabels(s.pairs, [2]string{"le", formatFloat(le)}), cum)
				}
				cum += v.counts[len(v.buckets)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n",
					f.name, renderLabels(s.pairs, [2]string{"le", "+Inf"}), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, k, formatFloat(v.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, k, cum)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
