package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// mwServer wires a tiny handler through the middleware with a fresh registry.
func mwServer(t *testing.T, logDst io.Writer) (*httptest.Server, *Registry) {
	t.Helper()
	reg := NewRegistry()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/boom":
			http.Error(w, "boom", http.StatusInternalServerError)
		case "/id":
			io.WriteString(w, RequestIDFrom(r.Context()))
		default:
			io.WriteString(w, "hello")
		}
	})
	var logger *slog.Logger
	if logDst != nil {
		logger = slog.New(slog.NewJSONHandler(logDst, nil))
	}
	route := func(r *http.Request) string { return r.URL.Path }
	srv := httptest.NewServer(Middleware(inner, logger, reg, route, nil))
	t.Cleanup(srv.Close)
	return srv, reg
}

func exposition(t *testing.T, reg *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestMiddlewareGeneratesRequestID(t *testing.T) {
	srv, _ := mwServer(t, nil)
	resp, err := http.Get(srv.URL + "/ok")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	id := resp.Header.Get(RequestIDHeader)
	if len(id) != 16 {
		t.Errorf("generated request id %q, want 16 hex chars", id)
	}
}

func TestMiddlewarePropagatesRequestID(t *testing.T) {
	srv, _ := mwServer(t, nil)
	req, _ := http.NewRequest("GET", srv.URL+"/id", nil)
	req.Header.Set(RequestIDHeader, "caller-supplied-id")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "caller-supplied-id" {
		t.Errorf("response header id = %q, want the caller's", got)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "caller-supplied-id" {
		t.Errorf("context id = %q, want the caller's", body)
	}
}

func TestMiddlewareMetrics(t *testing.T) {
	srv, reg := mwServer(t, nil)
	for i := 0; i < 3; i++ {
		resp, err := http.Post(srv.URL+"/ok", "text/plain", strings.NewReader("abcde"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	got := exposition(t, reg)
	for _, want := range []string{
		`http_requests_total{code="200",method="POST",route="/ok"} 3`,
		`http_requests_total{code="500",method="GET",route="/boom"} 1`,
		`http_request_errors_total{route="/boom"} 1`,
		`http_request_body_bytes_total{route="/ok"} 15`,
		`http_request_duration_seconds_count{route="/ok"} 3`,
		`http_requests_in_flight 0`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
}

func TestMiddlewareLogs(t *testing.T) {
	var buf bytes.Buffer
	srv, _ := mwServer(t, &buf)
	resp, err := http.Get(srv.URL + "/ok")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var entry map[string]any
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	if entry["msg"] != "request" || entry["method"] != "GET" ||
		entry["path"] != "/ok" || entry["status"] != float64(200) {
		t.Errorf("log entry = %v", entry)
	}
	if id, _ := entry["request_id"].(string); len(id) != 16 {
		t.Errorf("logged request_id = %v", entry["request_id"])
	}
}

// TestMiddlewareNilSinks checks the middleware works with no logger, no
// registry and no route function.
func TestMiddlewareNilSinks(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	})
	srv := httptest.NewServer(Middleware(inner, nil, nil, nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get(RequestIDHeader) == "" {
		t.Errorf("status %d, id %q", resp.StatusCode, resp.Header.Get(RequestIDHeader))
	}
}
