package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// NewRequestID returns a fresh 16-hex-character request identifier.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a fixed fallback
		// keeps the middleware total rather than panicking a handler.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

type ctxKey int

const requestIDKey ctxKey = iota

// WithRequestID stores a request ID in the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the request ID stored by WithRequestID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
