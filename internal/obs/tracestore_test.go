package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// finished returns a published-ready trace with the given status.
func finished(service, name, status string) *Trace {
	t := NewTrace()
	t.SetRoot(service, name)
	if status != "" && status != StatusOK {
		t.SetStatus(status, "test "+status)
	}
	t.Finish()
	return t
}

func TestTraceStoreKeepsEverythingByDefault(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{})
	for i := 0; i < 5; i++ {
		s.Publish(finished("svc", "op", StatusOK))
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d, want 5 (no sampling configured)", s.Len())
	}
}

func TestTraceStoreHeadSampling(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{SampleEvery: 10, SlowFraction: -1})
	for i := 0; i < 100; i++ {
		s.Publish(finished("svc", "op", StatusOK))
	}
	if got := s.Len(); got != 10 {
		t.Errorf("kept %d of 100 healthy traces with SampleEvery=10, want 10", got)
	}
}

// TestTraceStoreAlwaysKeepsBadTraces: errored, degraded, and shed traces
// bypass head sampling entirely.
func TestTraceStoreAlwaysKeepsBadTraces(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{SampleEvery: 1000, SlowFraction: -1})
	s.Publish(finished("svc", "op", StatusOK)) // first healthy trace is kept
	var bad []TraceID
	for _, status := range []string{StatusError, StatusDegraded, StatusShed} {
		tr := finished("svc", "op", status)
		bad = append(bad, tr.ID())
		s.Publish(tr)
	}
	for i := 0; i < 50; i++ {
		s.Publish(finished("svc", "op", StatusOK))
	}
	for i, id := range bad {
		if _, ok := s.Get(id); !ok {
			t.Errorf("bad trace %d (%s) was sampled out; must always be kept", i, id)
		}
	}
	list := s.List()
	reasons := make(map[string]bool)
	for _, sum := range list {
		reasons[sum.Kept] = true
	}
	for _, want := range []string{"error", "degraded", "shed"} {
		if !reasons[want] {
			t.Errorf("no retained trace with keep reason %q in %v", want, reasons)
		}
	}
}

// TestTraceStoreKeepsSlowTail: once the recent-duration window is primed,
// a trace far above the latency tail is kept even under aggressive sampling.
func TestTraceStoreKeepsSlowTail(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{SampleEvery: 1000})
	for i := 0; i < 30; i++ {
		tr := finished("svc", "op", StatusOK)
		d := tr.Snapshot()
		d.Duration = time.Millisecond
		s.publish(d)
	}
	slow := finished("svc", "op", StatusOK)
	d := slow.Snapshot()
	d.Duration = time.Second
	s.publish(d)
	frags, ok := s.Get(slow.ID())
	if !ok {
		t.Fatal("slow-tail trace was sampled out; must always be kept")
	}
	if len(frags) != 1 {
		t.Errorf("fragments = %d, want 1", len(frags))
	}
	var sum *TraceSummary
	for _, row := range s.List() {
		if row.TraceID == slow.ID().String() {
			sum = &row
			break
		}
	}
	if sum == nil || sum.Kept != "slow" {
		t.Errorf("slow trace keep reason = %+v, want \"slow\"", sum)
	}
}

// TestTraceStoreMergesFragments: fragments published under one TraceID from
// different services merge into a single stored trace, and a late fragment of
// a kept trace is never sampled out.
func TestTraceStoreMergesFragments(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{SampleEvery: 1000, SlowFraction: -1})
	router := finished("router", "POST /v1/discover", StatusOK)
	s.Publish(router)
	// Burn the sampler so an independently-published trace would be dropped.
	for i := 0; i < 20; i++ {
		s.Publish(finished("svc", "op", StatusOK))
	}
	replica := NewTraceFrom(router.SpanContext())
	replica.SetRoot("local-1", "POST /v1/discover")
	replica.Finish()
	s.Publish(replica)

	frags, ok := s.Get(router.ID())
	if !ok {
		t.Fatal("merged trace missing from store")
	}
	if len(frags) != 2 {
		t.Fatalf("fragments = %d, want 2 (router + replica)", len(frags))
	}
	if frags[0].Service != "router" || frags[1].Service != "local-1" {
		t.Errorf("fragment services = %s, %s", frags[0].Service, frags[1].Service)
	}
	for _, row := range s.List() {
		if row.TraceID == router.ID().String() && row.Fragments != 2 {
			t.Errorf("summary fragments = %d, want 2", row.Fragments)
		}
	}
}

func TestTraceStoreEvictsOldestBeyondCapacity(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{Capacity: 3, SlowFraction: -1})
	var ids []TraceID
	for i := 0; i < 5; i++ {
		tr := finished("svc", "op", StatusOK)
		ids = append(ids, tr.ID())
		s.Publish(tr)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want capacity 3", s.Len())
	}
	for _, id := range ids[:2] {
		if _, ok := s.Get(id); ok {
			t.Errorf("oldest trace %s survived eviction", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := s.Get(id); !ok {
			t.Errorf("recent trace %s was evicted", id)
		}
	}
}

func TestTraceStoreHandlerListAndTree(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{})
	parent := NewTrace()
	parent.SetRoot("router", "POST /v1/discover")
	hop := parent.StartSpan("cluster/peer/local-1")
	hop.End()
	parent.Finish()
	child := NewTraceFrom(parent.ChildContext(hop))
	child.SetRoot("local-1", "POST /v1/discover")
	child.Add("parse", time.Millisecond)
	child.Finish()
	s.Publish(parent)
	s.Publish(child)

	// JSON listing.
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces", nil))
	if w.Code != 200 {
		t.Fatalf("list status = %d", w.Code)
	}
	var env struct {
		Published int `json:"published"`
		Kept      int `json:"kept"`
		Traces    []TraceSummary
	}
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatalf("list is not JSON: %v\n%s", err, w.Body)
	}
	if env.Published != 2 || env.Kept != 1 || len(env.Traces) != 1 {
		t.Errorf("published=%d kept=%d traces=%d, want 2/1/1", env.Published, env.Kept, len(env.Traces))
	}

	// Single-trace text tree: the replica fragment must nest under the
	// router's hop span.
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces?trace="+parent.ID().String(), nil))
	if w.Code != 200 {
		t.Fatalf("tree status = %d: %s", w.Code, w.Body)
	}
	tree := w.Body.String()
	hopLine, replicaLine := -1, -1
	for _, line := range strings.Split(tree, "\n") {
		if strings.Contains(line, "cluster/peer/local-1") {
			hopLine = indentOf(line)
		}
		if strings.Contains(line, "local-1 POST") {
			replicaLine = indentOf(line)
		}
	}
	if hopLine < 0 || replicaLine < 0 {
		t.Fatalf("tree missing hop or replica fragment:\n%s", tree)
	}
	if replicaLine <= hopLine {
		t.Errorf("replica fragment (indent %d) must nest under hop span (indent %d):\n%s",
			replicaLine, hopLine, tree)
	}

	// Unknown and malformed IDs.
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("GET",
		"/debug/traces?trace=4bf92f3577b34da6a3ce929d0e0e4736", nil))
	if w.Code != 404 {
		t.Errorf("unknown trace status = %d, want 404", w.Code)
	}
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces?trace=nope", nil))
	if w.Code != 400 {
		t.Errorf("malformed trace id status = %d, want 400", w.Code)
	}
}

func indentOf(line string) int {
	return len(line) - len(strings.TrimLeft(line, " "))
}

func TestNilTraceStoreIsNoOp(t *testing.T) {
	var s *TraceStore
	s.Publish(NewTrace())
	if s.Len() != 0 || s.List() != nil {
		t.Error("nil store must be inert")
	}
	if _, ok := s.Get(TraceID{1}); ok {
		t.Error("nil store Get must miss")
	}
}
