package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Trace records the per-stage spans of one Discover call: tag-tree build,
// highest-fan-out search, candidate extraction, each heuristic's ranking,
// and certainty combination. A nil *Trace is a valid no-op sink, so the
// pipeline can be instrumented unconditionally and pay nothing when tracing
// is off.
type Trace struct {
	mu    sync.Mutex
	spans []*Span
}

// Span is one timed stage with optional descriptive attributes
// (candidate count, winning tag, ...).
type Span struct {
	Name     string
	Start    time.Time
	Duration time.Duration
	// Attrs holds alternating key, value strings in the order added.
	Attrs []string
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// StartSpan opens a live span; call End on the returned span when the stage
// finishes. Returns nil (whose methods are no-ops) on a nil trace.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{Name: name, Start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Add records an already-timed span — for stages whose duration was measured
// elsewhere. attrs are alternating key, value strings.
func (t *Trace) Add(name string, d time.Duration, attrs ...string) {
	if t == nil {
		return
	}
	s := &Span{Name: name, Start: time.Now().Add(-d), Duration: d, Attrs: attrs}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// End closes a live span, fixing its duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Duration = time.Since(s.Start)
}

// Attr appends one key/value attribute and returns the span for chaining.
func (s *Span) Attr(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, key, value)
	return s
}

// AttrInt is Attr for integer values.
func (s *Span) AttrInt(key string, v int) *Span {
	return s.Attr(key, fmt.Sprintf("%d", v))
}

// Spans returns a snapshot of the recorded spans in recording order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	for i, s := range t.spans {
		out[i] = *s
	}
	return out
}

// attrString renders a span's attributes as "k=v k=v".
func attrString(attrs []string) string {
	var b strings.Builder
	for i := 0; i+1 < len(attrs); i += 2 {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", attrs[i], attrs[i+1])
	}
	return b.String()
}

// Table renders the spans as an aligned three-column table (stage, duration,
// attributes) with a total row — the "where does the time go" view for the
// §5.3 worked example.
func (t *Trace) Table() string {
	spans := t.Spans()
	if len(spans) == 0 {
		return "(no spans recorded)\n"
	}
	rows := make([][3]string, 0, len(spans)+1)
	var total time.Duration
	for _, s := range spans {
		total += s.Duration
		rows = append(rows, [3]string{s.Name, s.Duration.String(), attrString(s.Attrs)})
	}
	rows = append(rows, [3]string{"total", total.String(), ""})

	w0, w1 := len("stage"), len("duration")
	for _, r := range rows {
		w0, w1 = max(w0, len(r[0])), max(w1, len(r[1]))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %*s  %s\n", w0, "stage", w1, "duration", "attributes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %*s  %s\n", w0, r[0], w1, r[1], r[2])
	}
	return b.String()
}
