package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"
)

// TraceID is a W3C trace-context 16-byte trace identifier shared by every
// span of one distributed request, across process boundaries.
type TraceID [16]byte

// String renders the ID as 32 lowercase hex characters.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the all-zero (invalid) identifier.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// ParseTraceID parses 32 lowercase hex characters into a TraceID.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if !decodeLowerHex(id[:], s) || id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// SpanID is a W3C trace-context 8-byte span identifier, unique within a
// trace.
type SpanID [8]byte

// String renders the ID as 16 lowercase hex characters.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the all-zero (invalid) identifier.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// decodeLowerHex decodes s into dst, accepting only lowercase hex of exactly
// the right length — the W3C trace-context grammar forbids uppercase.
func decodeLowerHex(dst []byte, s string) bool {
	if len(s) != 2*len(dst) {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	_, err := hex.Decode(dst, []byte(s))
	return err == nil
}

// Span status values, in escalation order: a trace's overall status only
// ever moves toward the more severe value.
const (
	StatusOK       = "ok"
	StatusDegraded = "degraded"
	StatusShed     = "shed"
	StatusError    = "error"
)

// statusRank orders statuses for escalation; unknown strings rank highest so
// they are never silently downgraded.
func statusRank(s string) int {
	switch s {
	case "", StatusOK:
		return 0
	case StatusDegraded:
		return 1
	case StatusShed:
		return 2
	case StatusError:
		return 3
	default:
		return 4
	}
}

// MaxSpans bounds the number of spans one Trace retains; further spans are
// counted but dropped, so a runaway loop cannot exhaust memory through its
// own instrumentation.
const MaxSpans = 1024

// Trace records the spans of one request: tag-tree build, highest-fan-out
// search, candidate extraction, each heuristic's ranking, certainty
// combination, and — in cluster mode — per-peer hops. Each trace carries a
// TraceID so fragments recorded in different processes can be stitched back
// together, and each span a SpanID and parent link so the fragments form a
// tree. A nil *Trace is a valid no-op sink, so the pipeline can be
// instrumented unconditionally and pay nothing when tracing is off.
type Trace struct {
	mu           sync.Mutex
	id           TraceID
	root         SpanID // this fragment's root span
	remoteParent SpanID // parent span in the caller's process, if any
	spanBase     uint64 // random base from which span IDs are derived
	nextSpan     uint64
	service      string
	name         string
	start        time.Time
	end          time.Time
	status       string
	statusMsg    string
	rootAttrs    []string
	spans        []*Span
	dropped      int
}

// Span is one timed stage with optional descriptive attributes
// (candidate count, winning tag, ...).
type Span struct {
	Name     string
	Start    time.Time
	Duration time.Duration
	// Attrs holds alternating key, value strings in the order added.
	Attrs []string
	// ID identifies the span within its trace; Parent is the span (or, for
	// top-level spans, the fragment root) it nests under.
	ID     SpanID
	Parent SpanID
	// Status is "", StatusOK, StatusDegraded, StatusShed or StatusError.
	Status string
	owner  *Trace
}

// NewTrace returns an empty trace with a fresh random TraceID. One
// crypto/rand read seeds the trace ID and the span-ID base; individual span
// IDs are derived by counter so the hot path never blocks on entropy.
func NewTrace() *Trace {
	var seed [32]byte
	if _, err := rand.Read(seed[:]); err != nil {
		// crypto/rand never fails on supported platforms; a fixed fallback
		// keeps tracing total rather than panicking a request.
		seed = [32]byte{1}
	}
	t := &Trace{start: time.Now()}
	copy(t.id[:], seed[:16])
	t.spanBase = binary.BigEndian.Uint64(seed[16:24])
	t.root = t.newSpanID()
	return t
}

// NewTraceFrom returns a trace continuing the given remote span context: it
// shares the caller's TraceID and records the caller's span as the remote
// parent, so the two fragments stitch into one tree. An invalid context
// falls back to a fresh trace.
func NewTraceFrom(sc SpanContext) *Trace {
	t := NewTrace()
	if sc.Valid() {
		t.id = sc.TraceID
		t.remoteParent = sc.SpanID
	}
	return t
}

// newSpanID derives the next span ID from the per-trace random base. The
// base randomizes the high bits, so concurrently-built fragments of the same
// trace do not collide.
func (t *Trace) newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], t.spanBase+t.nextSpan)
	t.nextSpan++
	if id.IsZero() { // astronomically unlikely, but zero means "no span"
		binary.BigEndian.PutUint64(id[:], t.spanBase+t.nextSpan)
		t.nextSpan++
	}
	return id
}

// ID returns the trace identifier ("" stringifies to 32 zeros on nil).
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// SetRoot names the fragment's root span: the service recording it and the
// operation (route, command) it represents.
func (t *Trace) SetRoot(service, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.service, t.name = service, name
	t.mu.Unlock()
}

// RootAttr attaches one key/value attribute to the fragment's root span.
func (t *Trace) RootAttr(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rootAttrs = append(t.rootAttrs, key, value)
	t.mu.Unlock()
}

// SetStatus escalates the trace's overall status. Statuses only move toward
// the more severe value (ok < degraded < shed < error), so a late "ok"
// cannot mask an earlier error; msg is kept from the escalating call.
func (t *Trace) SetStatus(status, msg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if statusRank(status) > statusRank(t.status) {
		t.status, t.statusMsg = status, msg
	}
	t.mu.Unlock()
}

// Finish closes the fragment, fixing its wall-clock duration. Further spans
// may still be added (they are kept) but the root duration no longer grows.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.end.IsZero() {
		t.end = time.Now()
	}
	t.mu.Unlock()
}

// SpanContext returns the context that identifies this fragment's root span
// — what a caller injects into an outgoing traceparent header.
func (t *Trace) SpanContext() SpanContext {
	if t == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: t.id, SpanID: t.root, Flags: 0x01}
}

// ChildContext returns the context identifying s as the parent of whatever
// the callee records — inject it into the outgoing hop so the callee's
// fragment nests under s rather than under the whole request.
func (t *Trace) ChildContext(s *Span) SpanContext {
	if t == nil {
		return SpanContext{}
	}
	sc := SpanContext{TraceID: t.id, Flags: 0x01}
	if s != nil {
		sc.SpanID = s.ID
	} else {
		sc.SpanID = t.root
	}
	return sc
}

// addSpan appends s under the span cap; returns false when dropped.
func (t *Trace) addSpan(s *Span) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= MaxSpans {
		t.dropped++
		return false
	}
	s.ID = t.newSpanID()
	if s.Parent.IsZero() {
		s.Parent = t.root
	}
	t.spans = append(t.spans, s)
	return true
}

// StartSpan opens a live span; call End on the returned span when the stage
// finishes. Returns nil (whose methods are no-ops) on a nil trace.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{Name: name, Start: time.Now(), owner: t}
	if !t.addSpan(s) {
		return nil
	}
	return s
}

// StartSpanUnder is StartSpan with an explicit parent span, for nesting one
// stage under another (a peer hop under the route decision, say). A nil
// parent nests under the fragment root.
func (t *Trace) StartSpanUnder(parent *Span, name string) *Span {
	s := t.StartSpan(name)
	if s != nil && parent != nil {
		s.Parent = parent.ID
	}
	return s
}

// Add records an already-timed span — for stages whose duration was measured
// elsewhere. attrs are alternating key, value strings.
func (t *Trace) Add(name string, d time.Duration, attrs ...string) {
	if t == nil {
		return
	}
	t.addSpan(&Span{Name: name, Start: time.Now().Add(-d), Duration: d, Attrs: attrs, owner: t})
}

// End closes a live span, fixing its duration. Safe to call from a
// goroutine that outlives the request (a losing hedge attempt, say) while
// the trace is being snapshotted.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.Start)
	if s.owner != nil {
		s.owner.mu.Lock()
		defer s.owner.mu.Unlock()
	}
	s.Duration = d
}

// Attr appends one key/value attribute and returns the span for chaining.
func (s *Span) Attr(key, value string) *Span {
	if s == nil {
		return nil
	}
	if s.owner != nil {
		s.owner.mu.Lock()
		defer s.owner.mu.Unlock()
	}
	s.Attrs = append(s.Attrs, key, value)
	return s
}

// AttrInt is Attr for integer values.
func (s *Span) AttrInt(key string, v int) *Span {
	return s.Attr(key, fmt.Sprintf("%d", v))
}

// SetStatus marks the span's own status (it does not escalate the trace;
// call Trace.SetStatus for that).
func (s *Span) SetStatus(status string) *Span {
	if s == nil {
		return nil
	}
	if s.owner != nil {
		s.owner.mu.Lock()
		defer s.owner.mu.Unlock()
	}
	s.Status = status
	return s
}

// Spans returns a snapshot of the recorded spans in recording order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	for i, s := range t.spans {
		out[i] = *s
		out[i].owner = nil
	}
	return out
}

// TraceData is an immutable snapshot of one trace fragment, safe to store
// and serialize after the request that produced it has completed.
type TraceData struct {
	TraceID      TraceID       `json:"-"`
	Root         SpanID        `json:"-"`
	RemoteParent SpanID        `json:"-"`
	Service      string        `json:"service"`
	Name         string        `json:"name"`
	Start        time.Time     `json:"start"`
	Duration     time.Duration `json:"duration"`
	Status       string        `json:"status"`
	StatusMsg    string        `json:"status_msg,omitempty"`
	RootAttrs    []string      `json:"root_attrs,omitempty"`
	Spans        []Span        `json:"spans"`
	Dropped      int           `json:"dropped,omitempty"`
}

// Snapshot captures the fragment's current state. Call after Finish for a
// fixed duration; before, the duration reads as elapsed-so-far.
func (t *Trace) Snapshot() TraceData {
	if t == nil {
		return TraceData{}
	}
	spans := t.Spans()
	t.mu.Lock()
	defer t.mu.Unlock()
	d := time.Since(t.start)
	if !t.end.IsZero() {
		d = t.end.Sub(t.start)
	}
	status := t.status
	if status == "" {
		status = StatusOK
	}
	return TraceData{
		TraceID:      t.id,
		Root:         t.root,
		RemoteParent: t.remoteParent,
		Service:      t.service,
		Name:         t.name,
		Start:        t.start,
		Duration:     d,
		Status:       status,
		StatusMsg:    t.statusMsg,
		RootAttrs:    append([]string(nil), t.rootAttrs...),
		Spans:        spans,
		Dropped:      t.dropped,
	}
}

// attrString renders a span's attributes as "k=v k=v".
func attrString(attrs []string) string {
	var b strings.Builder
	for i := 0; i+1 < len(attrs); i += 2 {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", attrs[i], attrs[i+1])
	}
	return b.String()
}

// Table renders the spans as an aligned three-column table (stage, duration,
// attributes) with a total row — the "where does the time go" view for the
// §5.3 worked example.
func (t *Trace) Table() string {
	spans := t.Spans()
	if len(spans) == 0 {
		return "(no spans recorded)\n"
	}
	rows := make([][3]string, 0, len(spans)+1)
	var total time.Duration
	for _, s := range spans {
		total += s.Duration
		rows = append(rows, [3]string{s.Name, s.Duration.String(), attrString(s.Attrs)})
	}
	rows = append(rows, [3]string{"total", total.String(), ""})

	w0, w1 := len("stage"), len("duration")
	for _, r := range rows {
		w0, w1 = max(w0, len(r[0])), max(w1, len(r[1]))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %*s  %s\n", w0, "stage", w1, "duration", "attributes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %*s  %s\n", w0, r[0], w1, r[1], r[2])
	}
	return b.String()
}
