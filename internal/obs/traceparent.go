package obs

import (
	"context"
	"fmt"
	"strings"
)

// TraceparentHeader is the W3C trace-context request header carrying the
// caller's trace ID, span ID and flags across process boundaries.
const TraceparentHeader = "Traceparent"

// TraceIDHeader echoes the request's trace ID on every traced response, so
// clients can quote it when filing a slow-request report.
const TraceIDHeader = "X-Trace-ID"

// SpanContext is the cross-process identity of one span: enough to continue
// its trace in another service.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// Valid reports whether both identifiers are non-zero.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Header renders the context as a version-00 traceparent header value.
func (sc SpanContext) Header() string {
	return fmt.Sprintf("00-%s-%s-%02x", sc.TraceID, sc.SpanID, sc.Flags)
}

// ParseTraceparent parses a traceparent header value per the W3C
// trace-context recommendation. It returns ok=false for malformed input
// (wrong field sizes, uppercase hex, all-zero IDs, version "ff") and
// tolerates future versions: a header from a newer or foreign vendor with a
// known-good prefix and extra trailing fields still yields its trace and
// parent IDs, so the trace continues rather than restarting at our edge.
func ParseTraceparent(h string) (SpanContext, bool) {
	h = strings.TrimSpace(h)
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return SpanContext{}, false
	}
	var version [1]byte
	if !decodeLowerHex(version[:], parts[0]) || parts[0] == "ff" {
		return SpanContext{}, false
	}
	// Version 00 has exactly four fields; later versions may append more.
	if parts[0] == "00" && len(parts) != 4 {
		return SpanContext{}, false
	}
	var sc SpanContext
	if !decodeLowerHex(sc.TraceID[:], parts[1]) || sc.TraceID.IsZero() {
		return SpanContext{}, false
	}
	if !decodeLowerHex(sc.SpanID[:], parts[2]) || sc.SpanID.IsZero() {
		return SpanContext{}, false
	}
	var flags [1]byte
	if !decodeLowerHex(flags[:], parts[3]) {
		return SpanContext{}, false
	}
	sc.Flags = flags[0]
	return sc, true
}

const (
	traceKey ctxKey = iota + 1 // requestIDKey is 0 in log.go
	spanContextKey
)

// WithTrace stores the request's live trace in the context; instrumented
// stages down the call chain retrieve it with TraceFrom.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey, t)
}

// TraceFrom returns the trace stored by WithTrace, or nil (a valid no-op
// sink) when the request is not traced.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// ContextWithSpanContext stores an outgoing span context — the parent
// identity a client should inject into its next hop's traceparent header.
func ContextWithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, spanContextKey, sc)
}

// SpanContextFromContext returns the span context stored by
// ContextWithSpanContext. When none was stored explicitly it falls back to
// the root of the trace stored by WithTrace, so any traced request can be
// propagated without extra plumbing.
func SpanContextFromContext(ctx context.Context) SpanContext {
	if sc, ok := ctx.Value(spanContextKey).(SpanContext); ok {
		return sc
	}
	return TraceFrom(ctx).SpanContext()
}
