package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTraceSpans(t *testing.T) {
	tr := NewTrace()
	s := tr.StartSpan("parse").Attr("mode", "html").AttrInt("bytes", 42)
	s.End()
	tr.Add("combine", 3*time.Millisecond, "separator", "hr")

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "parse" || spans[0].Duration < 0 {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if got := attrString(spans[0].Attrs); got != "mode=html bytes=42" {
		t.Errorf("attrs = %q", got)
	}
	if spans[1].Duration != 3*time.Millisecond {
		t.Errorf("Add duration = %v", spans[1].Duration)
	}
}

func TestTraceTable(t *testing.T) {
	tr := NewTrace()
	tr.Add("parse", 2*time.Millisecond, "bytes", "10")
	tr.Add("combine", time.Millisecond, "separator", "hr")
	got := tr.Table()
	for _, want := range []string{"stage", "duration", "attributes",
		"parse", "2ms", "bytes=10", "combine", "separator=hr", "total", "3ms"} {
		if !strings.Contains(got, want) {
			t.Errorf("table missing %q:\n%s", want, got)
		}
	}
}

func TestNilTrace(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x").Attr("a", "b").End() // all no-ops
	tr.Add("y", time.Second)
	if tr.Spans() != nil {
		t.Error("nil trace returned spans")
	}
	if got := tr.Table(); !strings.Contains(got, "no spans") {
		t.Errorf("nil table = %q", got)
	}
}

func TestEmptyTraceTable(t *testing.T) {
	if got := NewTrace().Table(); !strings.Contains(got, "no spans") {
		t.Errorf("empty table = %q", got)
	}
}
