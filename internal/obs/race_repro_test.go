package obs

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
)

func TestExpoRace(t *testing.T) {
	r := NewRegistry()
	var done atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for !done.Load() {
				r.Counter("x_total", "", "route", strconv.Itoa(w*1_000_000+i)).Inc()
				i++
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		_ = r.WritePrometheus(io.Discard)
	}
	done.Store(true)
	wg.Wait()
	t.Log("series churned; done")
}
