package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.", "kind", "a")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	if r.Counter("jobs_total", "Jobs.", "kind", "a") != c {
		t.Error("same name+labels did not return the same counter")
	}
	if r.Counter("jobs_total", "Jobs.", "kind", "b") == c {
		t.Error("different labels returned the same counter")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "Queue depth.")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %v, want 7", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 55.65 {
		t.Errorf("sum = %v, want 55.65", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`latency_bucket{le="0.1"} 2`, // 0.05 and 0.1 (le is inclusive)
		`latency_bucket{le="1"} 3`,
		`latency_bucket{le="10"} 4`,
		`latency_bucket{le="+Inf"} 5`,
		`latency_sum 55.65`,
		`latency_count 5`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

// TestPrometheusGolden locks the full exposition format: HELP/TYPE comments,
// sorted families and series, escaped label values.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "B counter.", "route", `with"quote`).Add(2)
	r.Counter("b_total", "B counter.", "route", "plain").Inc()
	r.Gauge("a_gauge", "A gauge.").Set(1.5)
	h := r.Histogram("c_seconds", "C histogram.", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)

	want := `# HELP a_gauge A gauge.
# TYPE a_gauge gauge
a_gauge 1.5
# HELP b_total B counter.
# TYPE b_total counter
b_total{route="plain"} 1
b_total{route="with\"quote"} 2
# HELP c_seconds C histogram.
# TYPE c_seconds histogram
c_seconds_bucket{le="0.5"} 1
c_seconds_bucket{le="1"} 2
c_seconds_bucket{le="+Inf"} 2
c_seconds_sum 1
c_seconds_count 2
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestConcurrentUpdates hammers one counter, gauge and histogram from many
// goroutines; run with -race this is the registry's thread-safety proof.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines, n = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				// Registration races too: look the metrics up every time.
				r.Counter("ops_total", "Ops.").Inc()
				r.Gauge("level", "Level.").Add(1)
				r.Histogram("dur", "Durations.", []float64{0.5}).Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops_total", "Ops.").Value(); got != goroutines*n {
		t.Errorf("counter = %v, want %d", got, goroutines*n)
	}
	if got := r.Gauge("level", "Level.").Value(); got != goroutines*n {
		t.Errorf("gauge = %v, want %d", got, goroutines*n)
	}
	if got := r.Histogram("dur", "Durations.", []float64{0.5}).Count(); got != goroutines*n {
		t.Errorf("histogram count = %v, want %d", got, goroutines*n)
	}
}

// TestNilRegistry checks the no-op contract instrumented code relies on.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.Counter("x", "").Inc()
	r.Gauge("x", "").Set(1)
	r.Histogram("x", "", nil).Observe(1)
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry write: %v", err)
	}
	if v := r.Counter("x", "").Value(); v != 0 {
		t.Errorf("nil counter value = %v", v)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}
