package obs

import (
	"strings"
	"testing"
)

func TestParseTraceparentRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.SetRoot("svc", "op")
	sc := tr.SpanContext()
	if !sc.Valid() {
		t.Fatal("root span context of a live trace must be valid")
	}
	got, ok := ParseTraceparent(sc.Header())
	if !ok {
		t.Fatalf("own header %q did not parse", sc.Header())
	}
	if got != sc {
		t.Errorf("round trip = %+v, want %+v", got, sc)
	}
}

func TestParseTraceparentValid(t *testing.T) {
	for name, h := range map[string]string{
		"canonical":      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"flags zero":     "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00",
		"padded":         "  00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01  ",
		"future version": "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-vendor-extra",
	} {
		sc, ok := ParseTraceparent(h)
		if !ok {
			t.Errorf("%s: %q did not parse", name, h)
			continue
		}
		if sc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Errorf("%s: trace id = %s", name, sc.TraceID)
		}
		if sc.SpanID.String() != "00f067aa0ba902b7" {
			t.Errorf("%s: span id = %s", name, sc.SpanID)
		}
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	for name, h := range map[string]string{
		"empty":              "",
		"missing fields":     "00-4bf92f3577b34da6a3ce929d0e0e4736",
		"version ff":         "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"uppercase trace id": "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
		"uppercase span id":  "00-4bf92f3577b34da6a3ce929d0e0e4736-00F067AA0BA902B7-01",
		"short trace id":     "00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01",
		"long span id":       "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7aa-01",
		"zero trace id":      "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero span id":       "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"non-hex version":    "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"non-hex flags":      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g",
		"v00 extra fields":   "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"spaces inside":      "00 -4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	} {
		if sc, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: %q parsed to %+v, want rejection", name, h, sc)
		}
	}
}

// TestNewTraceFromContinuesForeignTrace: a trace built from a parsed remote
// context must keep the caller's trace ID and record the caller's span as its
// remote parent, while minting distinct local span IDs.
func TestNewTraceFromContinuesForeignTrace(t *testing.T) {
	sc, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("fixture header did not parse")
	}
	tr := NewTraceFrom(sc)
	tr.SetRoot("replica", "POST /v1/discover")
	if tr.ID() != sc.TraceID {
		t.Errorf("trace id = %s, want caller's %s", tr.ID(), sc.TraceID)
	}
	own := tr.SpanContext()
	if own.SpanID == sc.SpanID {
		t.Error("local root span reused the caller's span id")
	}
	if own.TraceID != sc.TraceID {
		t.Errorf("propagated trace id = %s, want %s", own.TraceID, sc.TraceID)
	}
	d := tr.Snapshot()
	if d.RemoteParent != sc.SpanID {
		t.Errorf("remote parent = %s, want %s", d.RemoteParent, sc.SpanID)
	}
}

// TestSpanContextHeaderShape: the injected header must itself be a canonical
// version-00 value so any W3C-conformant downstream accepts it.
func TestSpanContextHeaderShape(t *testing.T) {
	tr := NewTrace()
	tr.SetRoot("svc", "op")
	h := tr.SpanContext().Header()
	parts := strings.Split(h, "-")
	if len(parts) != 4 || parts[0] != "00" || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		t.Errorf("header %q is not a canonical version-00 traceparent", h)
	}
	if h != strings.ToLower(h) {
		t.Errorf("header %q must be lowercase hex", h)
	}
}

func TestParseTraceIDRejectsMalformed(t *testing.T) {
	if _, ok := ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736"); !ok {
		t.Error("canonical 32-hex id rejected")
	}
	for _, s := range []string{"", "xyz", "4BF92F3577B34DA6A3CE929D0E0E4736", "4bf9"} {
		if _, ok := ParseTraceID(s); ok {
			t.Errorf("ParseTraceID(%q) accepted malformed input", s)
		}
	}
}
