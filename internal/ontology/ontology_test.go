package ontology

import (
	"strings"
	"testing"
)

const tinySrc = `
# A minimal test ontology.
ontology Widget
entity Widget

lexicon Color { red green blue }

object Serial : one-to-one {
    type serial
    value ` + "`WD-[0-9]{4}`" + `
}
object Price : one-to-one {
    type price
    keyword ` + "`\\$`" + `
    value ` + "`\\$[0-9]+`" + `
}
object Shade : functional {
    type colorname
    value ` + "`{Color}`" + `
}
object Tag : many {
    type tagname
    keyword ` + "`tagged`" + `
}

relationship Sells : Widget [1] Price [1]
`

func TestParseTiny(t *testing.T) {
	o, err := Parse(tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	if o.Name != "Widget" || o.Entity != "Widget" {
		t.Errorf("name/entity = %q/%q", o.Name, o.Entity)
	}
	if len(o.ObjectSets) != 4 {
		t.Fatalf("object sets = %d, want 4", len(o.ObjectSets))
	}
	if got := o.ObjectSet("Serial"); got == nil || got.Cardinality != OneToOne {
		t.Errorf("Serial = %+v", got)
	}
	if got := o.ObjectSet("Shade"); got == nil || got.Cardinality != Functional {
		t.Errorf("Shade = %+v", got)
	}
	if got := o.ObjectSet("Tag"); got == nil || got.Cardinality != Many {
		t.Errorf("Tag = %+v", got)
	}
	if len(o.Relationships) != 1 || o.Relationships[0].From != "Widget" || o.Relationships[0].To != "Price" {
		t.Errorf("relationships = %+v", o.Relationships)
	}
}

func TestLexiconInterpolation(t *testing.T) {
	o := MustParse(tinySrc)
	shade := o.ObjectSet("Shade")
	pat := shade.Frame.ValuePatterns[0]
	for _, color := range []string{"red", "green", "blue"} {
		if !pat.MatchString(color) {
			t.Errorf("pattern %v should match %q", pat, color)
		}
	}
	if pat.MatchString("mauve") {
		t.Errorf("pattern %v should not match mauve", pat)
	}
}

func TestQuantifierBracesAreNotLexicons(t *testing.T) {
	o := MustParse(tinySrc)
	serial := o.ObjectSet("Serial")
	if !serial.Frame.ValuePatterns[0].MatchString("WD-1234") {
		t.Error("quantifier {4} was mangled")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown declaration", "ontology X\nentity X\nfrobnicate Y", "unknown declaration"},
		{"bad cardinality", "ontology X\nentity X\nobject A : sometimes {\ntype t\nkeyword `k`\n}", "unknown cardinality"},
		{"unknown lexicon", "ontology X\nentity X\nobject A : many {\nvalue `{Nope}`\n}", "unknown lexicon"},
		{"missing entity", "ontology X\nobject A : many {\nkeyword `k`\n}", "missing entity"},
		{"no object sets", "ontology X\nentity X", "no object sets"},
		{"empty frame", "ontology X\nentity X\nobject A : many {\ntype t\n}", "neither keywords nor value"},
		{"duplicate object", "ontology X\nentity X\nobject A : many {\nkeyword `k`\n}\nobject A : many {\nkeyword `k`\n}", "duplicate object set"},
		{"bad relationship ref", "ontology X\nentity X\nobject A : many {\nkeyword `k`\n}\nrelationship R : X [1] B [1]", "unknown set"},
		{"bad regexp", "ontology X\nentity X\nobject A : many {\nkeyword `[`\n}", "bad pattern"},
		{"unterminated body", "ontology X\nentity X\nobject A : many {\nkeyword `k`", "unterminated"},
		{"unquoted pattern", "ontology X\nentity X\nobject A : many {\nkeyword k\n}", "backquoted"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestRecordIdentifyingFieldsTiny(t *testing.T) {
	o := MustParse(tinySrc)
	fields, ok := o.RecordIdentifyingFields()
	if !ok {
		t.Fatal("expected fields")
	}
	// Order: one-to-one keyword (Price), then one-to-one values with unique
	// types (Serial), then functional values (Shade). Tag is many: excluded.
	var names []string
	for _, f := range fields {
		names = append(names, f.Set.Name)
	}
	want := "Price Serial Shade"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("fields = %q, want %q", got, want)
	}
	if !fields[0].UseKeywords || fields[1].UseKeywords || fields[2].UseKeywords {
		t.Errorf("UseKeywords flags wrong: %+v", fields)
	}
}

func TestRecordIdentifyingFieldsRequiresThree(t *testing.T) {
	src := "ontology X\nentity X\nobject A : one-to-one {\nkeyword `k`\n}\nobject B : many {\nkeyword `k2`\n}"
	o := MustParse(src)
	if _, ok := o.RecordIdentifyingFields(); ok {
		t.Error("expected no fields with fewer than 3 candidates")
	}
}

func TestRecordIdentifyingFieldsSharedTypeExcluded(t *testing.T) {
	src := `
ontology X
entity X
object A : one-to-one {
    type date
    value ` + "`a`" + `
}
object B : one-to-one {
    type date
    value ` + "`b`" + `
}
object C : one-to-one {
    keyword ` + "`c`" + `
}
object D : one-to-one {
    keyword ` + "`d`" + `
}
object E : one-to-one {
    keyword ` + "`e`" + `
}
`
	o := MustParse(src)
	fields, ok := o.RecordIdentifyingFields()
	if !ok {
		t.Fatal("expected fields")
	}
	for _, f := range fields {
		if f.Set.Name == "A" || f.Set.Name == "B" {
			t.Errorf("shared-type value field %s selected", f.Set.Name)
		}
	}
}

func TestRecordIdentifyingFieldsTwentyPercentCap(t *testing.T) {
	// 25 object sets → cap = 5.
	var b strings.Builder
	b.WriteString("ontology X\nentity X\n")
	for i := 0; i < 25; i++ {
		name := "F" + string(rune('A'+i))
		b.WriteString("object " + name + " : one-to-one {\nkeyword `k" + name + "`\n}\n")
	}
	o := MustParse(b.String())
	fields, ok := o.RecordIdentifyingFields()
	if !ok {
		t.Fatal("expected fields")
	}
	if len(fields) != 5 {
		t.Errorf("field count = %d, want 5 (20%% of 25)", len(fields))
	}
}

func TestBuiltinOntologiesParseAndValidate(t *testing.T) {
	for _, name := range BuiltinNames() {
		o := Builtin(name)
		if o == nil {
			t.Fatalf("builtin %s missing", name)
		}
		if err := o.Validate(); err != nil {
			t.Errorf("builtin %s invalid: %v", name, err)
		}
		fields, ok := o.RecordIdentifyingFields()
		if !ok {
			t.Errorf("builtin %s: no record-identifying fields", name)
			continue
		}
		if len(fields) != 3 {
			t.Errorf("builtin %s: %d record-identifying fields, want 3", name, len(fields))
		}
	}
	if Builtin("nonsense") != nil {
		t.Error("unknown builtin should be nil")
	}
}

func TestBuiltinRecordIdentifyingFieldChoices(t *testing.T) {
	want := map[string][]string{
		"obituary": {"DeathDate", "FuneralService", "Interment"},
		"carad":    {"Price", "Year", "Phone"},
		"jobad":    {"HowToApply", "ContactEmail", "JobCode"},
		"course":   {"Credits", "Instructor", "CourseCode"},
	}
	for name, wantFields := range want {
		fields, ok := Builtin(name).RecordIdentifyingFields()
		if !ok {
			t.Fatalf("%s: no fields", name)
		}
		for i, w := range wantFields {
			if fields[i].Set.Name != w {
				t.Errorf("%s field %d = %s, want %s", name, i, fields[i].Set.Name, w)
			}
		}
	}
}

func TestObituaryOntologyMatchesFigure2Phrases(t *testing.T) {
	o := Builtin("obituary")
	cases := []struct {
		set    string
		sample string
	}{
		{"DeathDate", "died on"},
		{"DeathDate", "passed away"},
		{"FuneralService", "Funeral services"},
		{"FuneralService", "Services will be held"},
		{"Interment", "Interment"},
	}
	for _, c := range cases {
		set := o.ObjectSet(c.set)
		matched := false
		for _, p := range set.Frame.KeywordPatterns {
			if p.MatchString(c.sample) {
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s keywords do not match %q", c.set, c.sample)
		}
	}
}

func TestSchemeGeneration(t *testing.T) {
	o := MustParse(tinySrc)
	s := o.Scheme()
	if s.Entity.Name != "Widget" {
		t.Errorf("entity table = %s", s.Entity.Name)
	}
	// id + Serial + Price + Shade (Tag is many-valued).
	if len(s.Entity.Columns) != 4 {
		t.Fatalf("entity columns = %+v, want 4", s.Entity.Columns)
	}
	if s.Entity.Columns[0].Name != "widget_id" {
		t.Errorf("key column = %s", s.Entity.Columns[0].Name)
	}
	var shade ColumnSpec
	for _, c := range s.Entity.Columns {
		if c.Name == "Shade" {
			shade = c
		}
	}
	if !shade.Nullable {
		t.Error("functional column should be nullable")
	}
	if len(s.ManyTables) != 1 || s.ManyTables[0].Name != "Widget_Tag" {
		t.Errorf("many tables = %+v", s.ManyTables)
	}
	if got := len(s.Tables()); got != 2 {
		t.Errorf("Tables() = %d, want 2", got)
	}
}

func TestRulesGeneration(t *testing.T) {
	o := MustParse(tinySrc)
	rules := o.Rules()
	// Serial: 1 value; Price: 1 keyword + 1 value; Shade: 1 value; Tag: 1 keyword.
	if len(rules) != 5 {
		t.Fatalf("rules = %d, want 5", len(rules))
	}
	if rules[0].Descriptor() != "Serial/constant" {
		t.Errorf("rule 0 descriptor = %s", rules[0].Descriptor())
	}
	// Keyword rules precede constant rules per object set.
	if rules[1].Descriptor() != "Price/keyword" || rules[2].Descriptor() != "Price/constant" {
		t.Errorf("price rules = %s, %s", rules[1].Descriptor(), rules[2].Descriptor())
	}
}

func TestCardinalityString(t *testing.T) {
	if OneToOne.String() != "one-to-one" || Functional.String() != "functional" || Many.String() != "many" {
		t.Error("cardinality strings wrong")
	}
	if got := Cardinality(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown cardinality = %q", got)
	}
}
