package ontology

import (
	"regexp/syntax"
)

// minPrefilterLen is the shortest literal worth prescanning for: a
// one-character needle (a space, a digit) matches nearly every chunk and
// would make the prescan pure overhead.
const minPrefilterLen = 2

// prefilterLiterals derives a necessary-literal set for a pattern: a list of
// case-sensitive strings such that every match of the pattern contains at
// least one of them. A caller can then reject a text chunk with cheap
// substring scans before invoking the regexp engine — the hot-path
// optimization the recognizer's Data-Record-Table build relies on.
//
// The result is nil when no useful set exists (the pattern can match without
// any fixed literal, e.g. a bare character class, or the best literals are
// shorter than minPrefilterLen); nil means "always run the regexp".
func prefilterLiterals(pattern string) []string {
	re, err := syntax.Parse(pattern, syntax.Perl)
	if err != nil {
		return nil
	}
	lits, ok := necessaryLiterals(re.Simplify())
	if !ok || len(lits) == 0 {
		return nil
	}
	for _, l := range lits {
		if len(l) < minPrefilterLen {
			return nil
		}
	}
	// Cap pathological alternations: scanning dozens of needles per chunk
	// costs more than one regexp run.
	if len(lits) > 24 {
		return nil
	}
	return lits
}

// necessaryLiterals computes, for a parse-tree node, a set of literals of
// which every match of the node must contain at least one. ok is false when
// no such (non-empty) set can be derived.
func necessaryLiterals(re *syntax.Regexp) ([]string, bool) {
	switch re.Op {
	case syntax.OpLiteral:
		if re.Flags&syntax.FoldCase != 0 {
			// A folded literal matches in any case mix; a case-sensitive
			// substring scan would miss valid matches.
			return nil, false
		}
		return []string{string(re.Rune)}, true

	case syntax.OpCapture:
		return necessaryLiterals(re.Sub[0])

	case syntax.OpPlus:
		// The sub-expression matches at least once.
		return necessaryLiterals(re.Sub[0])

	case syntax.OpRepeat:
		if re.Min >= 1 {
			return necessaryLiterals(re.Sub[0])
		}
		return nil, false

	case syntax.OpConcat:
		// Every sub-expression matches in sequence, so any sub-expression's
		// necessary set works; pick the one whose weakest literal is longest.
		var best []string
		bestMin := 0
		for _, sub := range re.Sub {
			lits, ok := necessaryLiterals(sub)
			if !ok || len(lits) == 0 {
				continue
			}
			m := len(lits[0])
			for _, l := range lits[1:] {
				if len(l) < m {
					m = len(l)
				}
			}
			if m > bestMin {
				best, bestMin = lits, m
			}
		}
		return best, best != nil

	case syntax.OpAlternate:
		// A match comes from one branch, so the union works only if every
		// branch contributes a set.
		var all []string
		for _, sub := range re.Sub {
			lits, ok := necessaryLiterals(sub)
			if !ok {
				return nil, false
			}
			all = append(all, lits...)
		}
		return all, true

	default:
		// Character classes, anchors, empty-width ops, star/quest: no
		// required literal.
		return nil, false
	}
}
