package ontology

// This file holds the four application ontologies of the paper's
// experiments: obituaries and car advertisements (the training applications
// of Tables 1–5) and computer job advertisements and university course
// descriptions (the additional test applications of Tables 8 and 9). Each is
// authored in the package DSL and parsed once at init.
//
// The ontologies are "narrow in breadth" as the paper requires — a couple of
// dozen object sets at most — and their data frames recognize the constants
// and keywords that the synthetic corpus (internal/corpus) and the paper's
// Figure 2 example contain.

// ObituarySrc is the obituary application ontology DSL source.
const ObituarySrc = `
ontology Obituary
entity Obituary

lexicon Month {
    January February March April May June July August September October
    November December
}
lexicon Weekday { Monday Tuesday Wednesday Thursday Friday Saturday Sunday }

# Record-identifying fields (§4.5): the three one-to-one keyword-indicated
# sets below — DeathDate, FuneralService, Interment — are selected by the
# 20% rule and drive the OM heuristic.

object DeathDate : one-to-one {
    type date
    keyword ` + "`died on|passed away`" + `
    value ` + "`{Month} [0-9]{1,2}, [0-9]{4}`" + `
}
object FuneralService : one-to-one {
    type service
    keyword ` + "`[Ff]uneral services|Services will be held|A memorial service`" + `
}
object Interment : one-to-one {
    type burial
    keyword ` + "`Interment|Burial|Entombment|[Cc]remation`" + `
}
object DeceasedName : one-to-one {
    type name
    value ` + "`[A-Z][a-z]+(?: [A-Z]\\.?| [A-Z][a-z]+)? [A-Z][a-z]+`" + `
}
object Age : functional {
    type number
    keyword ` + "`age [0-9]{1,3}`" + `
    value ` + "`[0-9]{1,3}`" + `
}
object BirthDate : functional {
    type date
    keyword ` + "`was born(?: on)?`" + `
    value ` + "`{Month} [0-9]{1,2}, [0-9]{4}`" + `
}
object BirthPlace : functional {
    type place
    keyword ` + "`born .{0,24}\\bin [A-Z][a-z]+`" + `
}
object FuneralHome : functional {
    type place
    value ` + "`[A-Z][A-Z'&. ]{4,40}(?:MORTUARY|CHAPEL|FUNERAL HOME)`" + `
}
object ViewingTime : functional {
    type viewing
    keyword ` + "`[Ff]riends may call|[Vv]isitation`" + `
}
object Cemetery : functional {
    type place
    value ` + "`[A-Z][a-z]+(?: [A-Z][a-z]+)? [Cc]emetery`" + `
}
object FuneralDate : functional {
    type date
    keyword ` + "`services .{0,40}{Weekday}`" + `
    value ` + "`{Month} [0-9]{1,2}, [0-9]{4}`" + `
}
object Relative : many {
    type name
    keyword ` + "`survived by|preceded in death by`" + `
}
object Spouse : functional {
    type name
    keyword ` + "`married|husband|wife`" + `
}
object Church : functional {
    type place
    keyword ` + "`church|parish|ward`" + `
}

relationship Dies : Obituary [1] DeathDate [1]
relationship Honors : Obituary [1] FuneralService [1]
relationship RestsAt : Obituary [1] Interment [1]
`

// CarAdSrc is the car-advertisement application ontology DSL source.
const CarAdSrc = `
ontology CarAd
entity CarAd

lexicon Make {
    Ford Chevrolet Chevy Toyota Honda Dodge Nissan Buick Pontiac Chrysler
    Jeep Mercury Oldsmobile Plymouth Subaru Mazda Volkswagen BMW Cadillac
    Saturn
}
lexicon Color {
    red blue white black green silver gold maroon teal tan gray burgundy
}

# Record-identifying fields: Price (keyword-indicated), then Year and Phone
# (value-identified with unique types).

object Price : one-to-one {
    type price
    keyword ` + "`[Aa]sking|[Pp]riced at`" + `
    value ` + "`\\$[0-9][0-9,]*`" + `
}
object Year : one-to-one {
    type year
    value ` + "`\\b19[789][0-9]\\b`" + `
}
object Phone : one-to-one {
    type phone
    value ` + "`\\(?[0-9]{3}\\)?[ -][0-9]{3}-[0-9]{4}`" + `
}
object Make : one-to-one {
    type makename
    value ` + "`{Make}`" + `
}
object Model : functional {
    type modelname
    value ` + "`(?:Taurus|Escort|Mustang|Civic|Accord|Corolla|Camry|Cavalier|Corsica|Lumina|Caravan|Neon|Sentra|Altima|LeSabre|Regal|Jetta|Passat|Legacy|Protege)`" + `
}
object Mileage : functional {
    type miles
    keyword ` + "`[0-9][0-9,]*[Kk]? (?:miles|mi\\.)|low miles`" + `
    value ` + "`[0-9][0-9,]*[Kk]?`" + `
}
object Color : functional {
    type colorname
    value ` + "`{Color}`" + `
}
object Transmission : functional {
    type transmission
    keyword ` + "`automatic|5-speed|4-speed|manual|auto trans`" + `
}
object Condition : functional {
    type condition
    keyword ` + "`excellent condition|good condition|runs great|must sell|like new`" + `
}
object Feature : many {
    type feature
    keyword ` + "`A/C|air|power (?:windows|locks|steering)|CD|cassette|sunroof|leather|cruise`" + `
}
object Seller : functional {
    type name
    keyword ` + "`[Cc]all [A-Z][a-z]+`" + `
}

relationship Costs : CarAd [1] Price [1]
relationship ModelYear : CarAd [1] Year [1]
relationship Contact : CarAd [1] Phone [1]
`

// JobAdSrc is the computer-job-advertisement application ontology DSL source.
const JobAdSrc = `
ontology JobAd
entity JobAd

lexicon Skill {
    Java C COBOL SQL Oracle Sybase UNIX Windows HTML Perl CGI Visual
    PowerBuilder Informix DB2 TCP/IP Novell
}

# Record-identifying fields: HowToApply (keyword), ContactEmail and JobCode
# (value-identified, unique types).

object HowToApply : one-to-one {
    type apply
    keyword ` + "`[Ss]end resume|[Aa]pply (?:to|at|online)|[Ff]ax resume|EOE`" + `
}
object ContactEmail : one-to-one {
    type email
    value ` + "`[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\\.[A-Za-z]{2,6}`" + `
}
object JobCode : one-to-one {
    type code
    value ` + "`(?:Job|Ref)\\.? ?#? ?[A-Z]?[0-9]{3,6}`" + `
}
object JobTitle : one-to-one {
    type title
    value ` + "`(?:Programmer(?:/Analyst)?|Software Engineer|Systems? Analyst|Database Administrator|Web Developer|Network Administrator|Project Manager|Help Desk Technician)`" + `
}
object Employer : functional {
    type company
    keyword ` + "`[A-Z][A-Za-z]+ (?:Inc|Corp|LLC|Systems|Technologies|Consulting)\\.?`" + `
}
object Salary : functional {
    type salary
    keyword ` + "`\\$[0-9]{2,3}[Kk]|salary|DOE|competitive`" + `
}
object Location : functional {
    type place
    keyword ` + "`located in|position in [A-Z][a-z]+`" + `
}
object Skill : many {
    type skillname
    value ` + "`\\b{Skill}\\b`" + `
}
object Experience : functional {
    type years
    keyword ` + "`[0-9]\\+? years?(?: of)? experience`" + `
}
object ContactPhone : functional {
    type phone
    value ` + "`\\(?[0-9]{3}\\)?[ -][0-9]{3}-[0-9]{4}`" + `
}
object Degree : functional {
    type degree
    keyword ` + "`BS|MS|[Bb]achelor|[Mm]aster|degree required`" + `
}

relationship Hires : JobAd [1] HowToApply [1]
relationship Reaches : JobAd [1] ContactEmail [1]
relationship Codes : JobAd [1] JobCode [1]
`

// CourseSrc is the university-course-description application ontology DSL
// source.
const CourseSrc = `
ontology Course
entity Course

lexicon Dept {
    CS MATH PHYS CHEM ENGL HIST BIOL ECON PSYCH PHIL STAT GEOG
}

# Record-identifying fields: Credits and Instructor (keyword-indicated),
# CourseCode (value-identified, unique type).

object Credits : one-to-one {
    type credits
    keyword ` + "`[0-9](?:\\.[0-9])? (?:credit hours|credits|cr\\.|sem\\. hrs)`" + `
}
object Instructor : one-to-one {
    type staff
    keyword ` + "`Instructor:|Taught by`" + `
}
object CourseCode : one-to-one {
    type code
    value ` + "`{Dept} ?[0-9]{3}[A-Z]?`" + `
}
object CourseTitle : one-to-one {
    type title
    value ` + "`(?:Introduction to|Advanced|Principles of|Topics in|Foundations of|Seminar in) [A-Z][A-Za-z ]+`" + `
}
object Schedule : functional {
    type meeting
    keyword ` + "`MWF|TTh|MTWThF|Daily at`" + `
}
object Room : functional {
    type room
    keyword ` + "`Room [0-9]{1,4}|Bldg\\.? [A-Z0-9]+`" + `
}
object Prerequisite : many {
    type prereq
    keyword ` + "`Prerequisites?:`" + `
}
object Enrollment : functional {
    type number
    keyword ` + "`limited to [0-9]+|enrollment cap`" + `
}
object Term : functional {
    type term
    keyword ` + "`Fall|Winter|Spring|Summer`" + `
}
object ExamInfo : functional {
    type exam
    keyword ` + "`final exam|midterm`" + `
}

relationship Earns : Course [1] Credits [1]
relationship TaughtBy : Course [1] Instructor [1]
relationship CodedAs : Course [1] CourseCode [1]
`

// Builtin lazily-parsed application ontologies, keyed by domain name:
// "obituary", "carad", "jobad", "course".
var builtin = map[string]*Ontology{}

func init() {
	for name, src := range map[string]string{
		"obituary": ObituarySrc,
		"carad":    CarAdSrc,
		"jobad":    JobAdSrc,
		"course":   CourseSrc,
	} {
		builtin[name] = MustParse(src)
	}
}

// Builtin returns the named built-in application ontology ("obituary",
// "carad", "jobad", "course"), or nil if unknown. The returned ontology is
// shared; callers must not mutate it.
func Builtin(name string) *Ontology { return builtin[name] }

// BuiltinNames lists the built-in ontology names in a fixed order.
func BuiltinNames() []string { return []string{"obituary", "carad", "jobad", "course"} }
