// Package ontology implements the application-ontology substrate the paper's
// extraction process depends on (Section 2 and Figure 1): a small conceptual
// model — object sets related to an entity of interest with cardinality
// constraints — augmented with data frames (regular expressions describing
// constants and keywords) and lexicons.
//
// An ontology is authored in a compact line-oriented DSL (see Parse), and
// from it the package derives the three artifacts of Figure 1:
//
//   - the database description (Scheme),
//   - the constant/keyword matching rules (Rules),
//   - the record-identifying fields used by the OM heuristic (§4.5)
//     (RecordIdentifyingFields).
package ontology

import (
	"fmt"
	"regexp"
	"sync"
)

// Cardinality describes how an object set relates to the entity of interest.
type Cardinality int

// Cardinality values, ordered from strongest to weakest for the purposes of
// §4.5's "best to worst" record-identifying-field ordering.
const (
	// OneToOne: each entity instance has exactly one value (a death date in
	// an obituary).
	OneToOne Cardinality = iota
	// Functional: each entity instance has at most one value (an age).
	Functional
	// Many: an entity instance may have any number of values (surviving
	// relatives).
	Many
)

// String returns the DSL spelling of the cardinality.
func (c Cardinality) String() string {
	switch c {
	case OneToOne:
		return "one-to-one"
	case Functional:
		return "functional"
	case Many:
		return "many"
	default:
		return fmt.Sprintf("Cardinality(%d)", int(c))
	}
}

// DataFrame carries the textual appearance knowledge for an object set: how
// its constant values look and which context keywords indicate its presence.
type DataFrame struct {
	// Type names the value domain (e.g. "date", "name", "price"). Fields
	// sharing a Type are ambiguous as value-identified record-identifying
	// fields (§4.5) — a birth date matches the same patterns as a death
	// date.
	Type string
	// ValuePatterns match constant values of the object set.
	ValuePatterns []*regexp.Regexp
	// KeywordPatterns match context keywords indicating the field's
	// presence ("died on", "asking price").
	KeywordPatterns []*regexp.Regexp
}

// ObjectSet is one object set of the conceptual model, annotated with its
// cardinality relative to the entity of interest and its data frame.
type ObjectSet struct {
	Name        string
	Cardinality Cardinality
	Frame       DataFrame
}

// HasKeywords reports whether the object set has keyword indicators.
func (o *ObjectSet) HasKeywords() bool { return len(o.Frame.KeywordPatterns) > 0 }

// HasValues reports whether the object set has value patterns.
func (o *ObjectSet) HasValues() bool { return len(o.Frame.ValuePatterns) > 0 }

// Relationship is an explicit relationship set between two object sets (or
// the entity and an object set), kept for scheme generation and
// documentation; the cardinality annotations on object sets are what the
// heuristics consume.
type Relationship struct {
	Name     string
	From, To string
	// FromCard and ToCard are free-form cardinality annotations such as
	// "1" or "0:*", preserved from the DSL.
	FromCard, ToCard string
}

// Ontology is a parsed application ontology.
type Ontology struct {
	// Name identifies the application (e.g. "Obituary").
	Name string
	// Entity is the entity of interest each record describes.
	Entity string
	// ObjectSets in declaration order.
	ObjectSets []*ObjectSet
	// Relationships in declaration order (possibly empty; implicit
	// entity↔object-set relationships are assumed).
	Relationships []Relationship
	// Lexicons maps lexicon name → member words, usable in patterns via
	// {Name} interpolation.
	Lexicons map[string][]string

	// rulesOnce guards the lazily-built, shared matching-rule set (Rules).
	rulesOnce sync.Once
	rules     []Rule
}

// ObjectSet returns the named object set, or nil.
func (o *Ontology) ObjectSet(name string) *ObjectSet {
	for _, s := range o.ObjectSets {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Validate checks structural invariants: a name, an entity, at least one
// object set, every object set non-empty and uniquely named, and every
// relationship endpoint resolvable.
func (o *Ontology) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("ontology: missing name")
	}
	if o.Entity == "" {
		return fmt.Errorf("ontology %s: missing entity", o.Name)
	}
	if len(o.ObjectSets) == 0 {
		return fmt.Errorf("ontology %s: no object sets", o.Name)
	}
	seen := map[string]bool{}
	for _, s := range o.ObjectSets {
		if s.Name == "" {
			return fmt.Errorf("ontology %s: unnamed object set", o.Name)
		}
		if seen[s.Name] {
			return fmt.Errorf("ontology %s: duplicate object set %q", o.Name, s.Name)
		}
		seen[s.Name] = true
		if !s.HasKeywords() && !s.HasValues() {
			return fmt.Errorf("ontology %s: object set %q has neither keywords nor value patterns", o.Name, s.Name)
		}
	}
	for _, r := range o.Relationships {
		for _, end := range []string{r.From, r.To} {
			if end != o.Entity && !seen[end] {
				return fmt.Errorf("ontology %s: relationship %q references unknown set %q", o.Name, r.Name, end)
			}
		}
	}
	return nil
}
