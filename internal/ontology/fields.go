package ontology

// RecordIdentifyingField is an object set selected per §4.5 as likely to
// occur exactly once per record, together with how its occurrences should be
// counted.
type RecordIdentifyingField struct {
	Set *ObjectSet
	// UseKeywords selects keyword occurrences as the indicator; otherwise
	// value-pattern matches are counted.
	UseKeywords bool
}

// MinRecordIdentifyingFields is the paper's lower bound: with fewer than
// three record-identifying fields the OM heuristic is not used.
const MinRecordIdentifyingFields = 3

// RecordIdentifyingFields selects the record-identifying fields of the
// ontology per §4.5:
//
//   - Candidates are object sets in one-to-one correspondence with the
//     entity, then those functionally dependent on it (many-valued sets
//     never identify records).
//   - Within each group, keyword-indicated fields come before
//     value-identified ones.
//   - Value-identified fields whose data-frame type is shared with another
//     field are excluded (two date-typed fields are indistinguishable by
//     value alone).
//   - At least 3 fields are required (else OM declines: ok == false); at
//     most max(3, 20% of the number of object sets) are used.
func (o *Ontology) RecordIdentifyingFields() (fields []RecordIdentifyingField, ok bool) {
	typeCount := map[string]int{}
	for _, s := range o.ObjectSets {
		if s.Frame.Type != "" {
			typeCount[s.Frame.Type]++
		}
	}
	sharesType := func(s *ObjectSet) bool {
		return s.Frame.Type != "" && typeCount[s.Frame.Type] > 1
	}

	// Build the best-to-worst candidate order.
	var ordered []RecordIdentifyingField
	for _, card := range []Cardinality{OneToOne, Functional} {
		// Keyword-indicated first.
		for _, s := range o.ObjectSets {
			if s.Cardinality == card && s.HasKeywords() {
				ordered = append(ordered, RecordIdentifyingField{Set: s, UseKeywords: true})
			}
		}
		// Then value-identified, excluding shared-type values.
		for _, s := range o.ObjectSets {
			if s.Cardinality == card && !s.HasKeywords() && s.HasValues() && !sharesType(s) {
				ordered = append(ordered, RecordIdentifyingField{Set: s, UseKeywords: false})
			}
		}
	}

	if len(ordered) < MinRecordIdentifyingFields {
		return nil, false
	}
	limit := len(o.ObjectSets) / 5 // 20%
	if limit < MinRecordIdentifyingFields {
		limit = MinRecordIdentifyingFields
	}
	if len(ordered) > limit {
		ordered = ordered[:limit]
	}
	return ordered, true
}
