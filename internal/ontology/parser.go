package ontology

import (
	"fmt"
	"regexp"
	"strings"
)

// Parse reads an application ontology from its DSL text. The DSL is
// line-oriented:
//
//	ontology Obituary
//	entity Obituary
//
//	lexicon Month { January February March ... December }
//
//	object DeathDate : one-to-one {
//	    type date
//	    keyword `died on|passed away`
//	    value `{Month} [0-9]{1,2}, [0-9]{4}`
//	}
//
//	relationship Dies : Obituary [1] DeathDate [1]
//
// Patterns are Go regular expressions in backquotes; `{Name}` interpolates a
// lexicon as a non-capturing alternation. Comments start with '#'. Lexicons
// must be declared before the patterns that use them.
func Parse(src string) (*Ontology, error) {
	p := &parser{
		ont:   &Ontology{Lexicons: map[string][]string{}},
		lines: strings.Split(src, "\n"),
	}
	if err := p.run(); err != nil {
		return nil, err
	}
	if err := p.ont.Validate(); err != nil {
		return nil, err
	}
	return p.ont, nil
}

// MustParse is Parse that panics on error; for package-level ontology
// literals whose validity is covered by tests.
func MustParse(src string) *Ontology {
	o, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return o
}

type parser struct {
	ont   *Ontology
	lines []string
	pos   int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("ontology dsl line %d: %s", p.pos, fmt.Sprintf(format, args...))
}

// next returns the next non-blank, non-comment line, trimmed. ok is false at
// end of input.
func (p *parser) next() (string, bool) {
	for p.pos < len(p.lines) {
		line := strings.TrimSpace(p.lines[p.pos])
		p.pos++
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return line, true
	}
	return "", false
}

func (p *parser) run() error {
	for {
		line, ok := p.next()
		if !ok {
			return nil
		}
		word, rest := splitWord(line)
		switch word {
		case "ontology":
			p.ont.Name = strings.TrimSpace(rest)
		case "entity":
			p.ont.Entity = strings.TrimSpace(rest)
		case "lexicon":
			if err := p.parseLexicon(rest); err != nil {
				return err
			}
		case "object":
			if err := p.parseObject(rest); err != nil {
				return err
			}
		case "relationship":
			if err := p.parseRelationship(rest); err != nil {
				return err
			}
		default:
			return p.errf("unknown declaration %q", word)
		}
	}
}

func splitWord(s string) (word, rest string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i:])
}

// parseLexicon handles: Name { word word ... } possibly spanning lines.
func (p *parser) parseLexicon(rest string) error {
	name, tail := splitWord(rest)
	if name == "" {
		return p.errf("lexicon needs a name")
	}
	body, err := p.collectBraces(tail)
	if err != nil {
		return err
	}
	words := strings.Fields(body)
	if len(words) == 0 {
		return p.errf("lexicon %s is empty", name)
	}
	p.ont.Lexicons[name] = words
	return nil
}

// collectBraces gathers the text between { and }, starting from tail (the
// remainder of the declaration line) and consuming further lines as needed.
func (p *parser) collectBraces(tail string) (string, error) {
	var b strings.Builder
	line := tail
	seenOpen := false
	for {
		if !seenOpen {
			i := strings.IndexByte(line, '{')
			if i < 0 {
				return "", p.errf("expected '{'")
			}
			seenOpen = true
			line = line[i+1:]
		}
		if j := strings.IndexByte(line, '}'); j >= 0 {
			b.WriteString(line[:j])
			return b.String(), nil
		}
		b.WriteString(line)
		b.WriteByte('\n')
		var ok bool
		line, ok = p.nextRaw()
		if !ok {
			return "", p.errf("unterminated '{'")
		}
	}
}

// nextRaw returns the next line without comment filtering (lexicon bodies
// and object bodies may contain '#' inside patterns).
func (p *parser) nextRaw() (string, bool) {
	if p.pos >= len(p.lines) {
		return "", false
	}
	line := p.lines[p.pos]
	p.pos++
	return line, true
}

// parseObject handles: Name : cardinality { body }.
func (p *parser) parseObject(rest string) error {
	head, tail, found := strings.Cut(rest, "{")
	if !found {
		return p.errf("object needs a '{' body")
	}
	namePart, cardPart, found := strings.Cut(head, ":")
	if !found {
		return p.errf("object needs ': cardinality'")
	}
	obj := &ObjectSet{Name: strings.TrimSpace(namePart)}
	switch card := strings.TrimSpace(cardPart); card {
	case "one-to-one":
		obj.Cardinality = OneToOne
	case "functional":
		obj.Cardinality = Functional
	case "many":
		obj.Cardinality = Many
	default:
		return p.errf("object %s: unknown cardinality %q", obj.Name, card)
	}
	if err := p.parseObjectBody(obj, tail); err != nil {
		return err
	}
	p.ont.ObjectSets = append(p.ont.ObjectSets, obj)
	return nil
}

func (p *parser) parseObjectBody(obj *ObjectSet, firstLine string) error {
	line := firstLine
	for {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			var ok bool
			line, ok = p.nextRaw()
			if !ok {
				return p.errf("object %s: unterminated body", obj.Name)
			}
			continue
		}
		if strings.HasPrefix(line, "}") {
			return nil
		}
		word, rest := splitWord(line)
		switch word {
		case "type":
			obj.Frame.Type = strings.TrimSpace(rest)
		case "keyword", "value":
			pat, err := p.compilePattern(rest, obj.Name)
			if err != nil {
				return err
			}
			if word == "keyword" {
				obj.Frame.KeywordPatterns = append(obj.Frame.KeywordPatterns, pat)
			} else {
				obj.Frame.ValuePatterns = append(obj.Frame.ValuePatterns, pat)
			}
		default:
			return p.errf("object %s: unknown property %q", obj.Name, word)
		}
		var ok bool
		line, ok = p.nextRaw()
		if !ok {
			return p.errf("object %s: unterminated body", obj.Name)
		}
	}
}

// compilePattern extracts a backquoted pattern, interpolates lexicons, and
// compiles it.
func (p *parser) compilePattern(s, owner string) (*regexp.Regexp, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '`' {
		return nil, p.errf("object %s: pattern must be backquoted", owner)
	}
	end := strings.IndexByte(s[1:], '`')
	if end < 0 {
		return nil, p.errf("object %s: unterminated pattern", owner)
	}
	pat, err := p.interpolate(s[1 : 1+end])
	if err != nil {
		return nil, p.errf("object %s: %v", owner, err)
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		return nil, p.errf("object %s: bad pattern: %v", owner, err)
	}
	return re, nil
}

// interpolate replaces {Lexicon} references with non-capturing alternations
// of the lexicon's (regexp-quoted) members.
func (p *parser) interpolate(pat string) (string, error) {
	var b strings.Builder
	for {
		i := strings.IndexByte(pat, '{')
		if i < 0 {
			b.WriteString(pat)
			return b.String(), nil
		}
		// A '{' that is part of a regexp quantifier like [0-9]{1,2} has a
		// digit right after it; lexicon names start with a letter.
		j := strings.IndexByte(pat[i:], '}')
		if j < 0 {
			b.WriteString(pat)
			return b.String(), nil
		}
		name := pat[i+1 : i+j]
		words, ok := p.ont.Lexicons[name]
		if !ok {
			if isLexiconName(name) {
				return "", fmt.Errorf("unknown lexicon {%s}", name)
			}
			// Quantifier or other regexp construct: pass through.
			b.WriteString(pat[:i+j+1])
			pat = pat[i+j+1:]
			continue
		}
		b.WriteString(pat[:i])
		b.WriteString("(?:")
		for k, w := range words {
			if k > 0 {
				b.WriteByte('|')
			}
			b.WriteString(regexp.QuoteMeta(w))
		}
		b.WriteString(")")
		pat = pat[i+j+1:]
	}
}

// isLexiconName reports whether s looks like a lexicon reference (letters
// only, initial uppercase) rather than a regexp quantifier.
func isLexiconName(s string) bool {
	if s == "" || s[0] < 'A' || s[0] > 'Z' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
			return false
		}
	}
	return true
}

// parseRelationship handles: Name : From [card] To [card].
func (p *parser) parseRelationship(rest string) error {
	name, tail, found := strings.Cut(rest, ":")
	if !found {
		return p.errf("relationship needs ':'")
	}
	r := Relationship{Name: strings.TrimSpace(name)}
	m := relPattern.FindStringSubmatch(strings.TrimSpace(tail))
	if m == nil {
		return p.errf("relationship %s: want 'From [card] To [card]'", r.Name)
	}
	r.From, r.FromCard, r.To, r.ToCard = m[1], m[2], m[3], m[4]
	p.ont.Relationships = append(p.ont.Relationships, r)
	return nil
}

var relPattern = regexp.MustCompile(`^(\S+)\s*\[([^\]]*)\]\s*(\S+)\s*\[([^\]]*)\]$`)
