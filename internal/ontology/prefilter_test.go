package ontology

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestPrefilterLiterals(t *testing.T) {
	cases := []struct {
		pattern string
		want    []string // nil = no usable prefilter
	}{
		{"died on|passed away", []string{"died on", "passed away"}},
		{"[Ff]uneral services", []string{"uneral services"}},
		{"Interment|Burial|Entombment|[Cc]remation", []string{"Interment", "Burial", "Entombment", "remation"}},
		// Concat picks the sub-expression with the longest weakest literal.
		{`born .{0,24}\bin [A-Z][a-z]+`, []string{"born "}},
		// Bare character classes have no required literal.
		{"[0-9]{1,3}", nil},
		{`[A-Z][a-z]+(?: [A-Z]\.?| [A-Z][a-z]+)? [A-Z][a-z]+`, nil},
		// A case-folded literal cannot be matched case-sensitively.
		{"(?i)asking", nil},
		// Min-length floor: a single space matches nearly everything.
		{`\$[0-9]+`, nil},
		// Repeats with min >= 1 still require their body.
		{"(?:abc){2,5}", []string{"abc"}},
		// Star makes the body optional: no requirement.
		{"(?:abc)*x?", nil},
	}
	for _, c := range cases {
		got := prefilterLiterals(c.pattern)
		sort.Strings(got)
		want := append([]string(nil), c.want...)
		sort.Strings(want)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("prefilterLiterals(%q) = %v, want %v", c.pattern, got, c.want)
		}
	}
}

// TestPrefilterIsNecessary: for every built-in ontology rule with a
// prefilter, any text the pattern matches must contain one of the literals —
// otherwise the recognizer would silently drop entries.
func TestPrefilterIsNecessary(t *testing.T) {
	samples := []string{
		"died on March 3, 1998", "passed away Friday", "Funeral services",
		"Services will be held", "A memorial service", "Interment, City Cemetery",
		"Brian Fielding Frost", "age 84", "was born on January 1, 1912",
		"born and raised in Provo", "LARKIN MORTUARY", "Friends may call",
		"Wasatch Lawn Cemetery", "services Saturday", "survived by his wife",
		"married", "church", "Asking $4,500", "1994 Ford", "(801) 555-1234",
		"automatic transmission, air conditioning", "excellent condition",
		"123K miles", "red", "Salary DOE", "BS degree required",
		"contact hr@example.com", "3 credit hours", "MWF 9:00am", "Room 101",
	}
	for _, name := range BuiltinNames() {
		ont := Builtin(name)
		for _, r := range ont.Rules() {
			if r.Prefilter == nil {
				continue
			}
			for _, s := range samples {
				for _, m := range r.Pattern.FindAllString(s, -1) {
					hit := false
					for _, l := range r.Prefilter {
						if strings.Contains(s, l) {
							hit = true
							break
						}
					}
					if !hit {
						t.Errorf("%s rule %s: match %q in %q escapes prefilter %v",
							name, r.Descriptor(), m, s, r.Prefilter)
					}
				}
			}
		}
	}
}
