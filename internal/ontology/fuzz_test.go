package ontology

import (
	"strings"
	"testing"
)

// FuzzParse: the DSL parser must never panic on arbitrary input, and any
// source it accepts must yield a validated ontology whose derived rule set
// is safe to build — the recognizer consumes Rules() without further
// checks, so a parse that "succeeds" into a broken ontology would move the
// crash downstream into the pipeline's hot path.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"# only a comment\n",
		ObituarySrc,
		CarAdSrc,
		JobAdSrc,
		CourseSrc,
		"ontology X\nentity X\nobject A : one-to-one {\nkeyword `k`\n}",
		"ontology X\nentity X\nlexicon M { a b c }\nobject A : one-to-one {\nvalue `{M} [0-9]+`\n}",
		"ontology X\nentity X\nobject A : one-to-one {\nvalue `[unclosed`\n}",
		"ontology X\nentity X\nobject A : one-to-one {\nvalue `{Missing} x`\n}",
		"ontology X\nobject A : one-to-one {\n",
		"relationship R : A [1] B [1]",
		"lexicon L { " + strings.Repeat("w ", 100) + "}",
		"ontology X\r\nentity X\r\nobject A : one-to-one {\r\nkeyword `k`\r\n}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		ont, err := Parse(src)
		if err != nil {
			if ont != nil {
				t.Fatal("Parse returned both an ontology and an error")
			}
			return
		}
		if ont == nil {
			t.Fatal("Parse returned nil ontology without an error")
		}
		// Everything the pipeline consumes must be derivable without
		// panicking: the compiled rule set and the record-identifying
		// field selection.
		for _, r := range ont.Rules() {
			if r.Pattern == nil {
				t.Fatalf("rule %s/%s has nil pattern", r.ObjectSet, r.Kind)
			}
		}
		ont.RecordIdentifyingFields()
	})
}
