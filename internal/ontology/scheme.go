package ontology

import "strings"

// ColumnSpec is one column of a generated table.
type ColumnSpec struct {
	Name string
	// Type is the data-frame type of the backing object set ("date",
	// "name", ...), or "text" when the frame declares none.
	Type string
	// Nullable is true for functional (at-most-one) object sets; a
	// one-to-one set's column is expected in every record.
	Nullable bool
}

// TableSpec is one table of the generated database scheme.
type TableSpec struct {
	Name    string
	Columns []ColumnSpec
	// Key lists the primary-key columns.
	Key []string
}

// Scheme is the database description generated from an ontology (the
// "Database Description" box of Figure 1): one entity table whose columns
// are the single-valued object sets, plus one two-column table per
// many-valued object set.
type Scheme struct {
	Entity TableSpec
	// ManyTables holds one table per many-valued object set, in
	// declaration order.
	ManyTables []TableSpec
}

// Tables returns all tables of the scheme, entity table first.
func (s *Scheme) Tables() []TableSpec {
	out := make([]TableSpec, 0, 1+len(s.ManyTables))
	out = append(out, s.Entity)
	return append(out, s.ManyTables...)
}

// idColumn names the surrogate key column of the entity table.
func idColumn(entity string) string { return strings.ToLower(entity) + "_id" }

// Scheme generates the database scheme for the ontology.
func (o *Ontology) Scheme() *Scheme {
	id := idColumn(o.Entity)
	entity := TableSpec{
		Name:    o.Entity,
		Columns: []ColumnSpec{{Name: id, Type: "int"}},
		Key:     []string{id},
	}
	var many []TableSpec
	for _, s := range o.ObjectSets {
		typ := s.Frame.Type
		if typ == "" {
			typ = "text"
		}
		switch s.Cardinality {
		case OneToOne:
			entity.Columns = append(entity.Columns, ColumnSpec{Name: s.Name, Type: typ})
		case Functional:
			entity.Columns = append(entity.Columns, ColumnSpec{Name: s.Name, Type: typ, Nullable: true})
		case Many:
			many = append(many, TableSpec{
				Name: o.Entity + "_" + s.Name,
				Columns: []ColumnSpec{
					{Name: id, Type: "int"},
					{Name: s.Name, Type: typ},
				},
				Key: []string{id, s.Name},
			})
		}
	}
	return &Scheme{Entity: entity, ManyTables: many}
}
