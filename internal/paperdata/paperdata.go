// Package paperdata records the numbers the paper publishes in its
// evaluation tables, as data. The experiment harness renders measured
// results side by side with these (cmd/experiments -compare), and tests
// cross-check derivations against them (e.g. Tables 2+3 averaging to the
// published Table 4 exactly).
package paperdata

import "repro/internal/certainty"

// Table2 is the paper's Table 2: per-heuristic ranking distribution on the
// 50 obituary training documents (fraction ranked 1st..4th).
var Table2 = []certainty.Distribution{
	{Heuristic: certainty.OM, AtRank: []float64{0.83, 0.17, 0.00, 0.00}},
	{Heuristic: certainty.RP, AtRank: []float64{0.83, 0.07, 0.10, 0.00}},
	{Heuristic: certainty.SD, AtRank: []float64{0.59, 0.27, 0.14, 0.00}},
	{Heuristic: certainty.IT, AtRank: []float64{0.92, 0.08, 0.00, 0.00}},
	{Heuristic: certainty.HT, AtRank: []float64{0.58, 0.23, 0.17, 0.02}},
}

// Table3 is the paper's Table 3: the car-advertisement training
// distribution.
var Table3 = []certainty.Distribution{
	{Heuristic: certainty.OM, AtRank: []float64{0.86, 0.08, 0.04, 0.02}},
	{Heuristic: certainty.RP, AtRank: []float64{0.72, 0.18, 0.08, 0.02}},
	{Heuristic: certainty.SD, AtRank: []float64{0.72, 0.18, 0.10, 0.00}},
	{Heuristic: certainty.IT, AtRank: []float64{1.00, 0.00, 0.00, 0.00}},
	{Heuristic: certainty.HT, AtRank: []float64{0.40, 0.42, 0.16, 0.02}},
}

// Table5 is the paper's Table 5: success rates of all 26 compound
// heuristics on the 100 training documents, by canonical abbreviation.
var Table5 = map[string]float64{
	"OR": 0.8583, "OS": 0.8800, "OI": 0.9500, "OH": 0.7900,
	"RS": 0.7950, "RI": 0.9500, "RH": 0.7633, "SI": 0.9500,
	"SH": 0.6950, "IH": 0.9500,
	"ORS": 0.8150, "ORI": 0.9333, "ORH": 0.8483, "OSI": 0.9500,
	"OSH": 0.8750, "OIH": 0.9500, "RSI": 0.9500, "RSH": 0.8550,
	"RIH": 0.9500, "SIH": 0.9500,
	"ORSI": 1.0000, "ORSH": 0.8250, "ORIH": 1.0000, "OSIH": 0.9500,
	"RSIH": 1.0000, "ORSIH": 1.0000,
}

// TestRow is one published row of Tables 6–9: the rank each heuristic gave
// a correct separator on one test site, plus the compound ("A") rank.
type TestRow struct {
	Site string
	OM   int
	RP   int
	SD   int
	IT   int
	HT   int
	A    int
}

// Rank returns the row's rank for the named heuristic (or A).
func (r TestRow) Rank(h string) int {
	switch h {
	case certainty.OM:
		return r.OM
	case certainty.RP:
		return r.RP
	case certainty.SD:
		return r.SD
	case certainty.IT:
		return r.IT
	case certainty.HT:
		return r.HT
	case "A":
		return r.A
	default:
		return 0
	}
}

// Table6 is the paper's test set 1 (obituaries).
var Table6 = []TestRow{
	{"Alameda Newspaper", 1, 1, 1, 1, 1, 1},
	{"Idaho State Journal", 1, 1, 2, 1, 2, 1},
	{"Sacramento Bee", 1, 1, 1, 1, 1, 1},
	{"Tampa Tribune", 1, 1, 1, 1, 1, 1},
	{"Shoals Timesdaily", 1, 1, 1, 1, 2, 1},
}

// Table7 is the paper's test set 2 (car advertisements).
var Table7 = []TestRow{
	{"Arkansas Democrat-Gazette", 1, 1, 1, 1, 2, 1},
	{"Sioux City Journal", 1, 2, 2, 1, 4, 1},
	{"Knoxville News", 1, 1, 1, 1, 1, 1},
	{"Lincoln Journal Star", 1, 1, 1, 1, 1, 1},
	{"Reno Gazette-Journal", 3, 3, 1, 1, 3, 1},
}

// Table8 is the paper's test set 3 (computer job advertisements).
var Table8 = []TestRow{
	{"Baltimore Sun", 1, 1, 1, 1, 2, 1},
	{"Dallas Morning News", 1, 1, 2, 1, 2, 1},
	{"Denver Post", 4, 1, 1, 1, 4, 1},
	{"Indianapolis Star/News", 1, 1, 1, 1, 1, 1},
	{"Los Angeles Times", 2, 3, 2, 1, 2, 1},
}

// Table9 is the paper's test set 4 (university course descriptions).
var Table9 = []TestRow{
	{"BYU", 2, 2, 1, 1, 1, 1},
	{"MIT", 1, 1, 1, 1, 2, 1},
	{"KSU", 1, 1, 2, 2, 2, 1},
	{"USC", 1, 1, 2, 1, 1, 1},
	{"UT - Austin", 1, 2, 2, 1, 1, 1},
}

// Table10 is the paper's final success-rate table on the 20 test documents.
var Table10 = map[string]float64{
	certainty.OM: 0.80,
	certainty.RP: 0.75,
	certainty.SD: 0.65,
	certainty.IT: 0.95,
	certainty.HT: 0.45,
	"ORSIH":      1.00,
}
