package paperdata

import (
	"math"
	"testing"

	"repro/internal/certainty"
)

// TestTable4IsAverageOfTables2And3 cross-checks the paper's own derivation:
// averaging the published Tables 2 and 3 must give the published Table 4
// exactly (the paper states this is how the certainty factors were chosen).
func TestTable4IsAverageOfTables2And3(t *testing.T) {
	calibrated := certainty.Calibrate(append(append([]certainty.Distribution{}, Table2...), Table3...))
	for h, want := range certainty.PaperTable {
		got := calibrated[h]
		if len(got) != len(want) {
			t.Fatalf("%s: %d factors, want %d", h, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Errorf("%s rank %d: avg(T2,T3) = %v, published Table 4 = %v", h, i+1, got[i], want[i])
			}
		}
	}
}

// TestDistributionsSumToOne: every published distribution row is a
// probability distribution over ranks 1–4.
func TestDistributionsSumToOne(t *testing.T) {
	for _, tbl := range [][]certainty.Distribution{Table2, Table3} {
		for _, d := range tbl {
			sum := 0.0
			for _, v := range d.AtRank {
				sum += v
			}
			if math.Abs(sum-1.0) > 1e-9 {
				t.Errorf("%s sums to %v", d.Heuristic, sum)
			}
		}
	}
}

// TestTable5Consistency: the paper's published sweep has 26 rows; the four
// it names as perfect are at 100%, and every IT combination exceeds 90%.
func TestTable5Consistency(t *testing.T) {
	if len(Table5) != 26 {
		t.Fatalf("Table 5 rows = %d, want 26", len(Table5))
	}
	for _, ab := range []string{"ORSI", "ORIH", "RSIH", "ORSIH"} {
		if Table5[ab] != 1.0 {
			t.Errorf("%s = %v, the paper reports 100%%", ab, Table5[ab])
		}
	}
	for _, combo := range certainty.Combinations(certainty.AllHeuristics, 2) {
		ab := combo.Abbrev()
		rate, ok := Table5[ab]
		if !ok {
			t.Errorf("combination %s missing from Table 5", ab)
			continue
		}
		if combo.Contains(certainty.IT) && rate < 0.90 {
			t.Errorf("%s = %v; the paper says IT combinations exceed 90%%", ab, rate)
		}
	}
}

// TestTable10MatchesTestRows: the paper's Table 10 success rates must equal
// the fraction of rank-1 rows in its own Tables 6–9.
func TestTable10MatchesTestRows(t *testing.T) {
	all := append(append(append(append([]TestRow{}, Table6...), Table7...), Table8...), Table9...)
	if len(all) != 20 {
		t.Fatalf("test rows = %d, want 20", len(all))
	}
	for _, h := range certainty.AllHeuristics {
		firsts := 0
		for _, row := range all {
			if row.Rank(h) == 1 {
				firsts++
			}
		}
		got := float64(firsts) / 20
		if math.Abs(got-Table10[h]) > 1e-9 {
			t.Errorf("%s: Tables 6–9 give %.2f, Table 10 says %.2f", h, got, Table10[h])
		}
	}
	// The compound column is rank 1 everywhere.
	for _, row := range all {
		if row.A != 1 {
			t.Errorf("%s: published A = %d", row.Site, row.A)
		}
	}
}

func TestRankLookup(t *testing.T) {
	row := TestRow{Site: "x", OM: 1, RP: 2, SD: 3, IT: 4, HT: 1, A: 1}
	if row.Rank("OM") != 1 || row.Rank("SD") != 3 || row.Rank("A") != 1 || row.Rank("ZZ") != 0 {
		t.Error("Rank lookup wrong")
	}
}
