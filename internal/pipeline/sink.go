package pipeline

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Sink receives completed outcomes in input order. Write returns the output
// file the outcome landed in (empty for non-file sinks) and the file's end
// offset after the write — the pair the checkpoint journal records so a
// resumed run can truncate away torn trailing writes.
type Sink interface {
	Write(o *Outcome) (file string, end int64, err error)
	Close() error
}

// ShardedFileSink appends one NDJSON line per outcome to
// <dir>/results[-<shard>].ndjson, opening shard files lazily and tracking
// their end offsets. Writes are unbuffered appends so the journaled offset
// always describes bytes actually handed to the OS.
type ShardedFileSink struct {
	dir string

	mu      sync.Mutex
	files   map[string]*os.File // file name → open handle
	offsets map[string]int64    // file name → current end offset
}

// NewShardedFileSink creates dir if needed and returns an empty sink.
func NewShardedFileSink(dir string) (*ShardedFileSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &ShardedFileSink{
		dir:     dir,
		files:   make(map[string]*os.File),
		offsets: make(map[string]int64),
	}, nil
}

// ShardFile maps a shard label to its output file name: results.ndjson for
// the default shard, results-<slug>.ndjson otherwise.
func ShardFile(shard string) string {
	if shard == "" {
		return "results.ndjson"
	}
	return "results-" + slugify(shard) + ".ndjson"
}

// slugify keeps shard-derived file names safe: lowercase letters, digits,
// dash and underscore survive; everything else becomes a dash.
func slugify(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' || r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

// Truncate cuts every known result file back to its journaled offset,
// discarding bytes written after the last checkpoint (a torn final line from
// a killed run). Result files on disk that the journal never mentions are
// truncated to zero — every byte they hold is un-checkpointed. Call it once,
// before Run, when resuming.
func (s *ShardedFileSink) Truncate(offsets map[string]int64) error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.Type().IsRegular() || !strings.HasPrefix(name, "results") || !strings.HasSuffix(name, ".ndjson") {
			continue
		}
		if err := os.Truncate(filepath.Join(s.dir, name), offsets[name]); err != nil {
			return err
		}
	}
	s.mu.Lock()
	for name, off := range offsets {
		s.offsets[name] = off
	}
	s.mu.Unlock()
	return nil
}

// Write appends the outcome to its shard file.
func (s *ShardedFileSink) Write(o *Outcome) (string, int64, error) {
	line, err := json.Marshal(o)
	if err != nil {
		return "", 0, err
	}
	line = append(line, '\n')

	name := ShardFile(o.Shard)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	if !ok {
		f, err = os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return "", 0, err
		}
		// Resume appends after the journaled offset; Truncate already cut
		// the file there, so seek to the current end.
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return "", 0, err
		}
		s.files[name] = f
		if _, seen := s.offsets[name]; !seen {
			info, err := f.Stat()
			if err != nil {
				return "", 0, err
			}
			s.offsets[name] = info.Size()
		}
	}
	n, err := f.Write(line)
	s.offsets[name] += int64(n)
	if err != nil {
		return name, s.offsets[name], fmt.Errorf("pipeline: writing %s: %w", name, err)
	}
	return name, s.offsets[name], nil
}

// Close closes every open shard file, returning the first error.
func (s *ShardedFileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, f := range s.files {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.files = make(map[string]*os.File)
	return firstErr
}

// WriterSink streams outcomes as NDJSON to one writer — the shape behind
// POST /v1/discover/stream and cmd/bulk's stdout mode. flush, when non-nil,
// runs after every line so a network peer sees results as they complete.
type WriterSink struct {
	w     io.Writer
	flush func()
	off   int64
}

// NewWriterSink wraps w; flush may be nil.
func NewWriterSink(w io.Writer, flush func()) *WriterSink {
	return &WriterSink{w: w, flush: flush}
}

// Write emits one NDJSON line.
func (s *WriterSink) Write(o *Outcome) (string, int64, error) {
	line, err := json.Marshal(o)
	if err != nil {
		return "", 0, err
	}
	line = append(line, '\n')
	n, err := s.w.Write(line)
	s.off += int64(n)
	if err != nil {
		return "", s.off, err
	}
	if s.flush != nil {
		s.flush()
	}
	return "", s.off, nil
}

// Close is a no-op; the caller owns the writer.
func (s *WriterSink) Close() error { return nil }
