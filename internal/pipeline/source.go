package pipeline

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Source yields tasks in input order with dense sequence numbers starting at
// zero. Next returns io.EOF after the last task; any other error aborts the
// run (per-document problems travel inside the Task instead, see
// Task.invalid).
type Source interface {
	Next() (*Task, error)
}

// DefaultMaxLineBytes bounds one NDJSON input line when the caller does not
// choose a limit — the same envelope the HTTP surface enforces per body.
const DefaultMaxLineBytes = 8 << 20

// taskLine is the NDJSON input envelope: the /v1/discover request fields
// plus the bulk id and shard labels.
type taskLine struct {
	ID            string   `json:"id,omitempty"`
	HTML          string   `json:"html,omitempty"`
	XML           string   `json:"xml,omitempty"`
	Ontology      string   `json:"ontology,omitempty"`
	SeparatorList []string `json:"separator_list,omitempty"`
	Shard         string   `json:"shard,omitempty"`
}

// NDJSONSource reads one task per JSON line. Blank lines are skipped; a
// malformed or oversized line becomes a Task with an inline error rather
// than ending the stream, so a single corrupt record cannot sink a corpus
// run. Sequence numbers count every non-blank line (including invalid
// ones), keeping Seq assignment stable across resumed runs.
type NDJSONSource struct {
	r       *bufio.Reader
	maxLine int
	seq     int
	done    bool
}

// NewNDJSONSource wraps r; maxLine bounds one line's bytes (0 selects
// DefaultMaxLineBytes).
func NewNDJSONSource(r io.Reader, maxLine int) *NDJSONSource {
	if maxLine <= 0 {
		maxLine = DefaultMaxLineBytes
	}
	return &NDJSONSource{r: bufio.NewReader(r), maxLine: maxLine}
}

// Next returns the next task or io.EOF.
func (s *NDJSONSource) Next() (*Task, error) {
	for {
		if s.done {
			return nil, io.EOF
		}
		line, tooLong, err := s.readLine()
		if err != nil && !errors.Is(err, io.EOF) {
			return nil, err
		}
		if errors.Is(err, io.EOF) {
			s.done = true
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 && !tooLong {
			continue
		}
		t := &Task{Seq: s.seq}
		s.seq++
		if tooLong {
			t.invalid = fmt.Errorf("input line exceeds the %d-byte limit", s.maxLine)
			return t, nil
		}
		var tl taskLine
		if err := json.Unmarshal(line, &tl); err != nil {
			t.invalid = fmt.Errorf("bad input line: %w", err)
			return t, nil
		}
		t.ID = tl.ID
		t.Ontology = tl.Ontology
		t.SeparatorList = tl.SeparatorList
		t.Shard = tl.Shard
		switch {
		case (tl.HTML == "") == (tl.XML == ""):
			t.invalid = errors.New("exactly one of html or xml is required")
		case tl.HTML != "":
			t.Mode, t.Doc = "html", tl.HTML
		default:
			t.Mode, t.Doc = "xml", tl.XML
		}
		return t, nil
	}
}

// readLine reads up to the next newline. When the line exceeds maxLine it is
// drained and reported with tooLong=true so the stream can continue at the
// following line.
func (s *NDJSONSource) readLine() (line []byte, tooLong bool, err error) {
	var buf []byte
	for {
		frag, err := s.r.ReadSlice('\n')
		if !tooLong {
			buf = append(buf, frag...)
			if len(buf) > s.maxLine {
				tooLong = true
				buf = nil
			}
		}
		switch {
		case err == nil:
			return buf, tooLong, nil
		case errors.Is(err, bufio.ErrBufferFull):
			continue
		default:
			return buf, tooLong, err
		}
	}
}

// DirSource yields one task per document file in dir (non-recursive), sorted
// by name so sequence assignment is stable. Files ending in .xml are parsed
// with XML semantics; everything else (.html, .htm, ...) as HTML. The file
// name becomes the task ID; the constructor's ontology and shard apply to
// every task (per-document shards need NDJSON input).
type DirSource struct {
	dir      string
	files    []string
	i        int
	seq      int
	ontology string
	shard    string
}

// NewDirSource lists dir's regular files. ontologySrc and shard are applied
// to every task (the CLI's -ontology / -shard flags).
func NewDirSource(dir, ontologySrc, shard string) (*DirSource, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if e.Type().IsRegular() {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	return &DirSource{dir: dir, files: files, ontology: ontologySrc, shard: shard}, nil
}

// Next returns the next file's task or io.EOF.
func (s *DirSource) Next() (*Task, error) {
	if s.i >= len(s.files) {
		return nil, io.EOF
	}
	name := s.files[s.i]
	s.i++
	t := &Task{Seq: s.seq, ID: name, Ontology: s.ontology, Shard: s.shard}
	s.seq++
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		t.invalid = err
		return t, nil
	}
	t.Doc = string(data)
	t.Mode = "html"
	if strings.EqualFold(filepath.Ext(name), ".xml") {
		t.Mode = "xml"
	}
	return t, nil
}

// SliceSource yields pre-built tasks — the programmatic entry point used by
// tests and embedders. Seq fields are (re)assigned densely in order.
type SliceSource struct {
	tasks []*Task
	i     int
}

// NewSliceSource copies the slice and assigns sequence numbers.
func NewSliceSource(tasks []*Task) *SliceSource {
	out := make([]*Task, len(tasks))
	for i, t := range tasks {
		c := *t
		c.Seq = i
		out[i] = &c
	}
	return &SliceSource{tasks: out}
}

// Next returns the next task or io.EOF.
func (s *SliceSource) Next() (*Task, error) {
	if s.i >= len(s.tasks) {
		return nil, io.EOF
	}
	t := s.tasks[s.i]
	s.i++
	return t, nil
}
