package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// figure2ish is a small hr-delimited document every heuristic handles.
const figure2ish = `<html><body><div>
<hr><b>Alpha Person</b> died March 3, 1998. Services Friday. <br>
<hr><b>Beta Person</b> died March 4, 1998. Interment follows. <br>
<hr><b>Gamma Person</b> died March 5, 1998. Burial Saturday. <br>
<hr></div></body></html>`

// xmlFeed is a minimal XML-mode document.
const xmlFeed = `<feed><entry>a b</entry><entry>c d</entry><entry>e f</entry></feed>`

func htmlTasks(n int) []*Task {
	tasks := make([]*Task, n)
	for i := range tasks {
		tasks[i] = &Task{ID: fmt.Sprintf("t%d", i), Mode: "html", Doc: figure2ish}
	}
	return tasks
}

// runToWriter drains tasks through an engine into an in-memory sink.
func runToWriter(t *testing.T, eng *Engine, tasks []*Task) ([]Outcome, Stats) {
	t.Helper()
	var buf bytes.Buffer
	stats, err := eng.Run(context.Background(), NewSliceSource(tasks), NewWriterSink(&buf, nil), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return decodeOutcomes(t, buf.Bytes()), stats
}

func decodeOutcomes(t *testing.T, data []byte) []Outcome {
	t.Helper()
	var out []Outcome
	for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var o Outcome
		if err := json.Unmarshal(line, &o); err != nil {
			t.Fatalf("bad output line %q: %v", line, err)
		}
		out = append(out, o)
	}
	return out
}

func TestRunBasicOrderAndResults(t *testing.T) {
	tasks := htmlTasks(9)
	tasks[4] = &Task{ID: "xml", Mode: "xml", Doc: xmlFeed, SeparatorList: []string{"entry"}}
	outs, stats := runToWriter(t, New(Config{Workers: 4}), tasks)

	if stats.OK != 9 || stats.Read != 9 || stats.Failed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(outs) != 9 {
		t.Fatalf("got %d outcomes, want 9", len(outs))
	}
	for i, o := range outs {
		if o.Seq != i {
			t.Fatalf("outcome %d has seq %d; output must be in input order", i, o.Seq)
		}
		want := "hr"
		if i == 4 {
			want = "entry"
		}
		if o.Separator != want {
			t.Errorf("doc %d separator = %q, want %q", i, o.Separator, want)
		}
		if o.Error != "" {
			t.Errorf("doc %d unexpected error %q", i, o.Error)
		}
		if len(o.Scores) == 0 || len(o.Candidates) == 0 {
			t.Errorf("doc %d missing scores/candidates: %+v", i, o)
		}
		if i != 4 && len(o.Rankings) == 0 {
			t.Errorf("doc %d missing rankings: %+v", i, o)
		}
	}
}

func TestRunInlineErrors(t *testing.T) {
	tasks := htmlTasks(3)
	tasks[1] = &Task{ID: "empty", Mode: "html", Doc: "no tags at all"}
	outs, stats := runToWriter(t, New(Config{Workers: 2}), tasks)
	if stats.OK != 2 || stats.Failed != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if outs[1].Error == "" || outs[1].Separator != "" {
		t.Fatalf("doc 1 should fail inline, got %+v", outs[1])
	}
	if outs[0].Error != "" || outs[2].Error != "" {
		t.Fatalf("neighbors must be unaffected: %+v %+v", outs[0], outs[2])
	}
}

func TestRunBadModeAndBadOntology(t *testing.T) {
	tasks := []*Task{
		{Mode: "pdf", Doc: figure2ish},
		{Mode: "html", Doc: figure2ish, Ontology: "object x; nonsense ("},
		{Mode: "html", Doc: figure2ish, Ontology: "obituary"},
	}
	outs, stats := runToWriter(t, New(Config{}), tasks)
	if stats.Failed != 2 || stats.OK != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if !strings.Contains(outs[0].Error, "mode") {
		t.Errorf("bad-mode error = %q", outs[0].Error)
	}
	if !strings.Contains(outs[1].Error, "ontology") {
		t.Errorf("bad-ontology error = %q", outs[1].Error)
	}
	if outs[2].Separator != "hr" {
		t.Errorf("builtin-ontology doc: %+v", outs[2])
	}
}

func TestRetryTransientFailures(t *testing.T) {
	faults := faultinject.New()
	faults.Inject("pipeline/attempt", faultinject.Fault{
		Err:   Transient(errors.New("flaky backend")),
		Times: 2,
	})
	metrics := obs.NewRegistry()
	eng := New(Config{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		Faults:  faults,
		Metrics: metrics,
	})
	outs, stats := runToWriter(t, eng, htmlTasks(1))
	if stats.OK != 1 || stats.Retries != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if outs[0].Error != "" || outs[0].Attempts != 3 {
		t.Fatalf("outcome = %+v, want success on attempt 3", outs[0])
	}
	if got := metrics.Counter("boundary_bulk_retries_total", "").Value(); got != 2 {
		t.Errorf("boundary_bulk_retries_total = %v, want 2", got)
	}
}

func TestRetriesExhaustedReportInline(t *testing.T) {
	faults := faultinject.New()
	faults.Inject("pipeline/attempt", faultinject.Fault{
		Err: Transient(errors.New("always down")),
	})
	eng := New(Config{
		Retry:  RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
		Faults: faults,
	})
	outs, stats := runToWriter(t, eng, htmlTasks(1))
	if stats.Failed != 1 || stats.Retries != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if !strings.Contains(outs[0].Error, "always down") || outs[0].Attempts != 2 {
		t.Fatalf("outcome = %+v", outs[0])
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	faults := faultinject.New()
	faults.Inject("pipeline/attempt", faultinject.Fault{Err: errors.New("hard failure"), Times: 1})
	eng := New(Config{
		Retry:  RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond},
		Faults: faults,
	})
	outs, stats := runToWriter(t, eng, htmlTasks(1))
	if stats.Retries != 0 || stats.Failed != 1 {
		t.Fatalf("permanent errors must not retry: %+v", stats)
	}
	if outs[0].Attempts != 0 {
		t.Fatalf("attempts should be unset on first-try failure: %+v", outs[0])
	}
}

func TestAttemptTimeoutIsTransient(t *testing.T) {
	faults := faultinject.New()
	faults.Inject("pipeline/attempt", faultinject.Fault{Delay: time.Second, Times: 1})
	eng := New(Config{
		Workers:        1,
		AttemptTimeout: 10 * time.Millisecond,
		Retry:          RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
		Faults:         faults,
	})
	start := time.Now()
	outs, stats := runToWriter(t, eng, htmlTasks(1))
	if stats.OK != 1 || stats.Retries != 1 {
		t.Fatalf("stats = %+v (after %v)", stats, time.Since(start))
	}
	if outs[0].Attempts != 2 {
		t.Fatalf("outcome = %+v", outs[0])
	}
}

func TestAttemptPanicIsIsolated(t *testing.T) {
	faults := faultinject.New()
	faults.Inject("pipeline/attempt", faultinject.Fault{Panic: "boom", Times: 1})
	outs, stats := runToWriter(t, New(Config{Workers: 1, Faults: faults}), htmlTasks(2))
	if stats.Failed != 1 || stats.OK != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if !strings.Contains(outs[0].Error, "panicked") {
		t.Fatalf("outcome 0 = %+v", outs[0])
	}
}

func TestRunCancellation(t *testing.T) {
	faults := faultinject.New()
	faults.Inject("pipeline/attempt", faultinject.Fault{Delay: 50 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	var buf bytes.Buffer
	eng := New(Config{Workers: 2, Faults: faults})

	done := make(chan struct{})
	var stats Stats
	var err error
	go func() {
		defer close(done)
		stats, err = eng.Run(ctx, NewSliceSource(htmlTasks(64)), NewWriterSink(&buf, nil), nil)
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.OK == 64 {
		t.Fatalf("all documents completed despite cancel: %+v", stats)
	}
}

func TestMetricsOutcomes(t *testing.T) {
	metrics := obs.NewRegistry()
	tasks := htmlTasks(3)
	tasks[1] = &Task{Mode: "html", Doc: "plain text only"}
	eng := New(Config{Metrics: metrics})
	_, stats := runToWriter(t, eng, tasks)
	if stats.OK != 2 || stats.Failed != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if got := metrics.Counter("boundary_bulk_documents_total", "", "outcome", "ok").Value(); got != 2 {
		t.Errorf("ok counter = %v, want 2", got)
	}
	if got := metrics.Counter("boundary_bulk_documents_total", "", "outcome", "error").Value(); got != 1 {
		t.Errorf("error counter = %v, want 1", got)
	}
}

func TestShardedSinkRoutesByShard(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewShardedFileSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	tasks := []*Task{
		{Mode: "html", Doc: figure2ish, Shard: "obituary"},
		{Mode: "html", Doc: figure2ish},
		{Mode: "html", Doc: figure2ish, Shard: "car/ad"},
		{Mode: "html", Doc: figure2ish, Shard: "obituary"},
	}
	stats, err := New(Config{Workers: 2}).Run(context.Background(), NewSliceSource(tasks), sink, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.OK != 4 {
		t.Fatalf("stats = %+v", stats)
	}
	for file, wantSeqs := range map[string][]int{
		"results-obituary.ndjson": {0, 3},
		"results.ndjson":          {1},
		"results-car-ad.ndjson":   {2},
	} {
		data, err := os.ReadFile(filepath.Join(dir, file))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		outs := decodeOutcomes(t, data)
		var seqs []int
		for _, o := range outs {
			seqs = append(seqs, o.Seq)
		}
		if fmt.Sprint(seqs) != fmt.Sprint(wantSeqs) {
			t.Errorf("%s seqs = %v, want %v", file, seqs, wantSeqs)
		}
	}
}

func TestNDJSONSourceEnvelope(t *testing.T) {
	input := strings.Join([]string{
		`{"id":"a","html":"<p>x</p>","ontology":"obituary","shard":"s1"}`,
		``,
		`not json at all`,
		`{"id":"both","html":"<p>x</p>","xml":"<a/>"}`,
		`{"id":"neither"}`,
		`{"xml":"<f><e>1</e><e>2</e></f>","separator_list":["e"]}`,
	}, "\n")
	src := NewNDJSONSource(strings.NewReader(input), 0)
	var tasks []*Task
	for {
		tk, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, tk)
	}
	if len(tasks) != 5 {
		t.Fatalf("got %d tasks, want 5 (blank line skipped)", len(tasks))
	}
	if tasks[0].ID != "a" || tasks[0].Mode != "html" || tasks[0].Ontology != "obituary" || tasks[0].Shard != "s1" {
		t.Errorf("task 0 = %+v", tasks[0])
	}
	if tasks[1].invalid == nil || tasks[2].invalid == nil || tasks[3].invalid == nil {
		t.Errorf("lines 1-3 must be invalid: %v %v %v", tasks[1].invalid, tasks[2].invalid, tasks[3].invalid)
	}
	if tasks[4].Mode != "xml" || len(tasks[4].SeparatorList) != 1 {
		t.Errorf("task 4 = %+v", tasks[4])
	}
	for i, tk := range tasks {
		if tk.Seq != i {
			t.Errorf("task %d seq = %d; invalid lines must still consume a seq", i, tk.Seq)
		}
	}
}

func TestNDJSONSourceOversizedLineFailsInlineAndContinues(t *testing.T) {
	big := `{"html":"` + strings.Repeat("x", 4096) + `"}`
	input := big + "\n" + `{"id":"ok","html":"<p>y</p>"}` + "\n"
	src := NewNDJSONSource(strings.NewReader(input), 1024)
	t1, err := src.Next()
	if err != nil || t1.invalid == nil || !strings.Contains(t1.invalid.Error(), "exceeds") {
		t.Fatalf("t1 = %+v, err = %v", t1, err)
	}
	t2, err := src.Next()
	if err != nil || t2.invalid != nil || t2.ID != "ok" {
		t.Fatalf("t2 = %+v, err = %v; stream must continue past an oversized line", t2, err)
	}
	if _, err := src.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestDirSource(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "b.html"), []byte(figure2ish), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.xml"), []byte(xmlFeed), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := NewDirSource(dir, "obituary", "myshard")
	if err != nil {
		t.Fatal(err)
	}
	first, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first.ID != "a.xml" || first.Mode != "xml" || first.Shard != "myshard" || first.Ontology != "obituary" {
		t.Errorf("first = %+v", first)
	}
	second, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if second.ID != "b.html" || second.Mode != "html" {
		t.Errorf("second = %+v", second)
	}
	if _, err := src.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestJournalReplayAndTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.ndjson")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(0, "results.ndjson", 100); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(1, "results.ndjson", 230); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(2, "results-x.ndjson", 55); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a kill mid-append: a torn, unparsable final line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"file":"resul`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.DoneCount() != 3 || !j2.Done(1) || j2.Done(3) {
		t.Fatalf("replayed journal: count=%d", j2.DoneCount())
	}
	off := j2.Offsets()
	if off["results.ndjson"] != 230 || off["results-x.ndjson"] != 55 {
		t.Fatalf("offsets = %v", off)
	}
}

// TestBulkRunOverFullCorpus is the acceptance run: every document of the
// 20-site test corpus goes through the bulk engine, sharded by domain, and
// every outcome must agree with the generator's ground truth.
func TestBulkRunOverFullCorpus(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewShardedFileSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	docs := corpus.TestDocuments()
	var tasks []*Task
	for _, d := range docs {
		tasks = append(tasks, &Task{
			ID:       d.Site.Name,
			Mode:     "html",
			Doc:      d.HTML,
			Ontology: string(d.Site.Domain),
			Shard:    string(d.Site.Domain),
		})
	}
	jr, err := OpenJournal(filepath.Join(dir, "checkpoint.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	stats, err := New(Config{Workers: 4}).Run(context.Background(), NewSliceSource(tasks), sink, jr)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.OK != len(docs) || stats.Failed != 0 || stats.Degraded != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if jr.DoneCount() != len(docs) {
		t.Fatalf("journal has %d entries, want %d", jr.DoneCount(), len(docs))
	}

	// Each domain shard holds its five documents in input order, and every
	// discovered separator matches ground truth.
	bySeq := map[int]Outcome{}
	for _, d := range corpus.AllDomains {
		data, err := os.ReadFile(filepath.Join(dir, ShardFile(string(d))))
		if err != nil {
			t.Fatalf("shard %s: %v", d, err)
		}
		outs := decodeOutcomes(t, data)
		if len(outs) != 5 {
			t.Fatalf("shard %s has %d outcomes, want 5", d, len(outs))
		}
		prev := -1
		for _, o := range outs {
			if o.Seq <= prev {
				t.Fatalf("shard %s out of order: seq %d after %d", d, o.Seq, prev)
			}
			prev = o.Seq
			bySeq[o.Seq] = o
		}
	}
	for i, d := range docs {
		o, ok := bySeq[i]
		if !ok {
			t.Fatalf("document %d (%s) missing from output", i, d.Site.Name)
		}
		if !d.IsCorrect(o.Separator) {
			t.Errorf("%s: separator %q not in truth %v", d.Site.Name, o.Separator, d.Truth)
		}
	}
}
