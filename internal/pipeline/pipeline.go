// Package pipeline is the streaming bulk-ingestion engine: it fans an
// NDJSON document stream across a bounded worker pool running boundary
// discovery (reusing core.DiscoverContext and the PR-3 cancellation/limit
// semantics), retries transient failures with exponential backoff and
// jitter, restores input order on output, and checkpoints completed
// documents to an append-only journal so a killed run resumes without
// re-processing anything already durable.
//
// The engine is deliberately deterministic about what "done" means: an
// outcome is emitted to the sink strictly in input order, its bytes reach
// the output file before its journal entry is appended, and a canceled
// run's journal therefore describes exactly the prefix of work whose
// results are on disk. Resuming truncates each output file to its journaled
// offset (discarding at most one torn trailing line) and skips the
// journaled documents, making the resumed output byte-identical to an
// uninterrupted run over the same input.
//
// cmd/bulk wires the engine to files and directories; the HTTP surface
// exposes the same engine as POST /v1/discover/stream.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/tagtree"
	"repro/internal/template"
)

// RetryPolicy bounds how the engine retries a document that failed
// transiently (see Transient and Config.AttemptTimeout). Delays grow
// exponentially from BaseDelay, are capped at MaxDelay, and carry full
// jitter drawn from a per-(task, attempt) deterministic seed so runs are
// reproducible.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per document; <= 1 disables
	// retrying.
	MaxAttempts int
	// BaseDelay is the first retry's backoff ceiling (default 25ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 1s).
	MaxDelay time.Duration
}

// Attempts returns the effective total tries per document (at least 1).
func (p RetryPolicy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the jittered sleep before the given retry (attempt is the
// 1-based attempt that just failed). It is exported so other fan-out layers —
// the cluster router rerouting a document to another peer — share the bulk
// engine's backoff shape instead of growing their own.
func (p RetryPolicy) Backoff(seq, attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	maxD := p.MaxDelay
	if maxD <= 0 {
		maxD = time.Second
	}
	d := base << (attempt - 1)
	if d > maxD || d <= 0 {
		d = maxD
	}
	// Full jitter in [d/2, d], deterministic per (seq, attempt).
	r := rand.New(rand.NewSource(int64(seq)*7919 + int64(attempt)))
	return d/2 + time.Duration(r.Int63n(int64(d/2)+1))
}

// Config tunes one Engine.
type Config struct {
	// Workers bounds concurrent document processing; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// Window bounds how many documents may be in flight or waiting in the
	// reorder buffer ahead of the next emission; <= 0 selects
	// max(16, 4*Workers). It is the engine's memory bound: output is in
	// input order, so a slow head-of-line document could otherwise pile up
	// unboundedly many completed results behind it.
	Window int
	// Retry governs transient-failure retries.
	Retry RetryPolicy
	// AttemptTimeout bounds one attempt's processing; an attempt that
	// exceeds it fails transiently (the run context staying alive) and is
	// retried under Retry. Zero disables it.
	AttemptTimeout time.Duration
	// Metrics receives boundary_bulk_* counters and, threaded through
	// core.Options, the per-stage pipeline series. Nil disables both.
	Metrics *obs.Registry
	// Trace, when non-nil, receives the per-stage spans of every document
	// (concurrently; obs.Trace is safe for that).
	Trace *obs.Trace
	// Limits bounds per-document parse resources, as on the HTTP surface.
	Limits tagtree.Limits
	// Faults is the test-only fault-injection hook set. The engine fires
	// "pipeline/attempt" before each attempt and threads the set into
	// core.Options for the pipeline-internal points.
	Faults *faultinject.Set
	// Templates, if non-nil, enables core's learned-wrapper fast path for
	// every document: a bulk corpus dominated by a handful of site
	// templates pays full discovery once per template (per option set)
	// and serves the rest from the store. See docs/WRAPPER.md.
	Templates *template.Store
}

// Stats summarizes one Run.
type Stats struct {
	// Read counts tasks consumed from the source (including invalid lines).
	Read int
	// Skipped counts tasks the checkpoint journal proved already complete.
	Skipped int
	// OK counts documents that discovered a separator cleanly.
	OK int
	// Degraded counts documents answered by surviving heuristics only.
	Degraded int
	// Failed counts documents emitted with an inline error.
	Failed int
	// Canceled counts documents abandoned because the run context ended;
	// they are not journaled and will be re-processed by a resumed run.
	Canceled int
	// Retries counts individual retry sleeps across all documents.
	Retries int
}

// Engine runs bulk discovery; the zero value with a zero Config is usable.
type Engine struct {
	cfg  Config
	onts ontologyCache
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg, onts: ontologyCache{m: make(map[string]ontologyEntry)}}
}

// errTransient marks retryable failures.
var errTransient = errors.New("transient")

// Transient wraps err so the engine's retry policy applies to it — the
// marker fault-injection and embedders use to request a retry.
func Transient(err error) error {
	return fmt.Errorf("%w: %w", errTransient, err)
}

// IsTransient reports whether err carries the Transient marker.
func IsTransient(err error) bool { return errors.Is(err, errTransient) }

// Run drains src through the worker pool into sink. When jr is non-nil,
// tasks it records as done are skipped and every emitted outcome is
// checkpointed; callers resuming a ShardedFileSink run should first call
// Truncate with jr.Offsets(). Run returns the run's statistics and the
// first of: a source read error, a sink/journal write error, or ctx's error
// when the run was canceled (the partial Stats are valid in every case).
func (e *Engine) Run(ctx context.Context, src Source, sink Sink, jr *Journal) (Stats, error) {
	runStart := time.Now()
	runSpan := e.cfg.Trace.StartSpan("bulk/run")
	defer func() {
		runSpan.End()
		e.cfg.Metrics.Histogram("boundary_bulk_run_duration_seconds",
			"Wall-clock duration of one bulk engine run.", nil).
			Observe(time.Since(runStart).Seconds())
	}()
	workers := e.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	window := e.cfg.Window
	if window <= 0 {
		window = 4 * workers
		if window < 16 {
			window = 16
		}
	}

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	var (
		read, skipped, ok, degraded, failed, canceled, retries atomic.Int64
		srcErr, emitErr                                        error
	)

	work := make(chan *Task)
	results := make(chan *Outcome, workers)
	tokens := make(chan struct{}, window)

	// Dispatcher: read the source, honor the reorder window, stop on cancel.
	go func() {
		defer close(work)
		for {
			t, err := src.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				srcErr = fmt.Errorf("pipeline: reading input: %w", err)
				cancelRun()
				return
			}
			read.Add(1)
			select {
			case tokens <- struct{}{}:
			case <-runCtx.Done():
				return
			}
			select {
			case work <- t:
			case <-runCtx.Done():
				return
			}
		}
	}()

	// Workers: process tasks (or recognize journaled ones), slotting
	// outcomes into the reorder stream.
	var wg sync.WaitGroup
	inflight := e.gauge("boundary_bulk_inflight",
		"Bulk documents currently being processed.")
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One arena per worker for the byte-level hot path: each attempt
			// resets and reuses it, and fillResult deep-copies everything an
			// Outcome carries before the next task overwrites the tree.
			arena := tagtree.AcquireArena()
			defer arena.Release()
			for t := range work {
				var o *Outcome
				if jr != nil && jr.Done(t.Seq) {
					o = &Outcome{Seq: t.Seq, skipped: true}
					skipped.Add(1)
					e.countDocument("skipped")
				} else {
					inflight.Inc()
					o = e.process(runCtx, t, &retries, arena)
					inflight.Dec()
					switch {
					case o.canceled:
						canceled.Add(1)
						e.countDocument("canceled")
					case o.Error != "":
						failed.Add(1)
						e.countDocument("error")
					case o.Degraded:
						degraded.Add(1)
						e.countDocument("degraded")
					default:
						ok.Add(1)
						e.countDocument("ok")
					}
				}
				results <- o
			}
		}()
	}
	go func() { wg.Wait(); close(results) }()

	// Emitter: restore input order, write, then checkpoint. After a cancel
	// or write failure nothing further is written (or journaled), keeping
	// the journal an exact description of the bytes on disk.
	pending := make(map[int]*Outcome)
	next := 0
	for o := range results {
		pending[o.Seq] = o
		for {
			cur, ready := pending[next]
			if !ready {
				break
			}
			delete(pending, next)
			if !cur.skipped && !cur.canceled && emitErr == nil && runCtx.Err() == nil {
				file, end, err := sink.Write(cur)
				if err == nil && jr != nil {
					err = jr.Append(cur.Seq, file, end)
					e.counter("boundary_bulk_checkpoint_entries_total",
						"Checkpoint journal entries appended.").Inc()
				}
				if err != nil {
					emitErr = err
					cancelRun()
				}
			}
			next++
			select {
			case <-tokens:
			default:
			}
		}
	}

	stats := Stats{
		Read:     int(read.Load()),
		Skipped:  int(skipped.Load()),
		OK:       int(ok.Load()),
		Degraded: int(degraded.Load()),
		Failed:   int(failed.Load()),
		Canceled: int(canceled.Load()),
		Retries:  int(retries.Load()),
	}
	switch {
	case srcErr != nil:
		return stats, srcErr
	case emitErr != nil:
		return stats, emitErr
	case ctx.Err() != nil:
		return stats, ctx.Err()
	}
	return stats, nil
}

// process runs one document to completion: validation, ontology resolution,
// then up to Retry.MaxAttempts pipeline attempts with backoff between
// transient failures.
func (e *Engine) process(ctx context.Context, t *Task, retries *atomic.Int64, arena *tagtree.Arena) *Outcome {
	o := &Outcome{Seq: t.Seq, ID: t.TaskID(), Shard: t.Shard}
	if t.invalid != nil {
		o.Error = t.invalid.Error()
		return o
	}
	if t.Mode != "html" && t.Mode != "xml" {
		o.Error = fmt.Sprintf("unknown document mode %q", t.Mode)
		return o
	}
	ont, err := e.onts.resolve(t.Ontology)
	if err != nil {
		o.Error = err.Error()
		return o
	}

	maxAttempts := e.cfg.Retry.Attempts()
	for attempt := 1; ; attempt++ {
		if ctx.Err() != nil {
			o.canceled = true
			return o
		}
		res, err := e.attempt(ctx, t, ont, arena)
		if err == nil {
			o.fillResult(res)
			if attempt > 1 {
				o.Attempts = attempt
			}
			return o
		}
		if ctx.Err() != nil {
			o.canceled = true
			return o
		}
		if attempt >= maxAttempts || !IsTransient(err) {
			o.Error = err.Error()
			if attempt > 1 {
				o.Attempts = attempt
			}
			return o
		}
		retries.Add(1)
		e.counter("boundary_bulk_retries_total",
			"Bulk document attempts retried after a transient failure.").Inc()
		timer := time.NewTimer(e.cfg.Retry.Backoff(t.Seq, attempt))
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			o.canceled = true
			return o
		}
	}
}

// attempt runs one discovery pass under the per-attempt timeout, isolating
// panics and classifying an attempt-deadline expiry (run context still
// alive) as transient.
func (e *Engine) attempt(ctx context.Context, t *Task, ont *ontology.Ontology, arena *tagtree.Arena) (res *core.Result, err error) {
	actx := ctx
	if e.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, e.cfg.AttemptTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pipeline: attempt panicked: %v", r)
		}
		if err != nil && !IsTransient(err) &&
			errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			err = Transient(err)
		}
	}()
	if err := e.cfg.Faults.FireCtx(actx, "pipeline/attempt"); err != nil {
		return nil, err
	}
	opts := core.Options{
		Ontology:      ont,
		SeparatorList: t.SeparatorList,
		Metrics:       e.cfg.Metrics,
		Trace:         e.cfg.Trace,
		Limits:        e.cfg.Limits,
		Faults:        e.cfg.Faults,
		Arena:         arena,
	}
	if e.cfg.Templates != nil {
		mode := "html"
		if t.Mode == "xml" {
			mode = "xml"
		}
		opts.Templates = e.cfg.Templates
		// Same salt derivation as the HTTP surface, so bulk and serving
		// traffic share one template key space.
		opts.TemplateSalt = template.Salt(mode, t.Ontology, t.SeparatorList)
	}
	if t.Mode == "xml" {
		return core.DiscoverXMLContext(actx, t.Doc, opts)
	}
	return core.DiscoverContext(actx, t.Doc, opts)
}

func (e *Engine) countDocument(outcome string) {
	e.counter("boundary_bulk_documents_total",
		"Documents run through the bulk engine, by outcome.",
		"outcome", outcome).Inc()
}

func (e *Engine) counter(name, help string, labels ...string) *obs.Counter {
	return e.cfg.Metrics.Counter(name, help, labels...)
}

func (e *Engine) gauge(name, help string) *obs.Gauge {
	return e.cfg.Metrics.Gauge(name, help)
}

// ontologyCache memoizes ontology resolution per distinct source string so a
// million-document corpus sharing one DSL ontology parses it once. Both
// successes and failures are memoized.
type ontologyCache struct {
	mu sync.Mutex
	m  map[string]ontologyEntry
}

type ontologyEntry struct {
	ont *ontology.Ontology
	err error
}

// resolve mirrors the HTTP surface's rules: empty disables OM, a built-in
// name selects it, anything else is parsed as DSL source.
func (c *ontologyCache) resolve(src string) (*ontology.Ontology, error) {
	if src == "" {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]ontologyEntry)
	}
	if e, ok := c.m[src]; ok {
		return e.ont, e.err
	}
	var e ontologyEntry
	if ont := ontology.Builtin(src); ont != nil {
		e.ont = ont
	} else if ont, err := ontology.Parse(src); err == nil {
		e.ont = ont
	} else {
		e.err = fmt.Errorf("ontology is neither built-in (%v) nor valid DSL: %w",
			ontology.BuiltinNames(), err)
	}
	c.m[src] = e
	return e.ont, e.err
}
