package pipeline

import (
	"fmt"

	"repro/internal/core"
)

// Task is one document queued for bulk discovery. Seq is its dense 0-based
// position in the input stream; the engine uses it both to restore input
// order on output and as the checkpoint key, so the same input must always
// produce the same Seq assignment (sources guarantee this).
type Task struct {
	// Seq is assigned by the source in input order, starting at 0.
	Seq int
	// ID is the caller's label for the document ("doc-<seq>" when absent).
	ID string
	// Mode is "html" or "xml".
	Mode string
	// Doc is the document source.
	Doc string
	// Ontology is a built-in ontology name or full DSL source; empty
	// disables OM, exactly as on the HTTP surface.
	Ontology string
	// SeparatorList optionally overrides IT's identifiable-separator list.
	SeparatorList []string
	// Shard routes the result to an output shard (e.g. the document's
	// domain); empty lands in the default shard.
	Shard string

	// invalid carries a per-line input error (malformed JSON, oversized
	// line, bad envelope). The engine emits it as an error outcome without
	// running the pipeline, so one bad line cannot sink a corpus.
	invalid error
}

// Invalid returns the task's per-line input error (malformed JSON, oversized
// line, bad envelope), or nil for a well-formed task. Surfaces that consume
// Sources directly — the cluster router's stream path — use it to emit the
// same inline error the bulk engine would.
func (t *Task) Invalid() error { return t.invalid }

// TaskID returns the task's label, defaulting to its sequence position
// ("doc-<seq>"). Every surface that emits Outcomes — the bulk engine and the
// cluster router's stream path — must use this so identical inputs produce
// identical output bytes.
func (t *Task) TaskID() string {
	if t.ID != "" {
		return t.ID
	}
	return fmt.Sprintf("doc-%d", t.Seq)
}

// Score is one compound certainty score on the wire.
type Score struct {
	Tag string  `json:"tag"`
	CF  float64 `json:"cf"`
}

// RankEntry is one heuristic ranking row on the wire.
type RankEntry struct {
	Tag  string `json:"tag"`
	Rank int    `json:"rank"`
}

// Candidate is one candidate separator tag with its count on the wire.
type Candidate struct {
	Tag   string `json:"tag"`
	Count int    `json:"count"`
}

// Outcome is one document's bulk-discovery result as written to the output
// stream — the same shape as the /v1/discover response body plus the bulk
// envelope (seq, id, shard, attempts, error). Exactly one of Separator or
// Error is meaningful.
type Outcome struct {
	Seq   int    `json:"seq"`
	ID    string `json:"id"`
	Shard string `json:"shard,omitempty"`
	// Attempts is recorded only when retries happened (>1).
	Attempts int `json:"attempts,omitempty"`

	Separator  string                 `json:"separator,omitempty"`
	TopTags    []string               `json:"top_tags,omitempty"`
	Scores     []Score                `json:"scores,omitempty"`
	Rankings   map[string][]RankEntry `json:"rankings,omitempty"`
	Candidates []Candidate            `json:"candidates,omitempty"`
	Subtree    string                 `json:"subtree,omitempty"`

	Degraded         bool     `json:"degraded,omitempty"`
	FailedHeuristics []string `json:"failed_heuristics,omitempty"`

	// Error carries the per-document failure; the run itself keeps going,
	// mirroring the batch endpoint's inline-error contract.
	Error string `json:"error,omitempty"`

	// skipped marks a task the checkpoint journal proved already done; the
	// emitter advances past it without writing or journaling.
	skipped bool
	// canceled marks a task abandoned because the run context ended; it is
	// never written or journaled, so a resumed run re-processes it.
	canceled bool
}

// fillResult copies a discovery result into the outcome's wire fields.
func (o *Outcome) fillResult(res *core.Result) {
	o.Separator = res.Separator
	o.TopTags = res.TopTags
	o.Subtree = res.Subtree.Name
	o.Degraded = res.Degraded
	o.FailedHeuristics = res.FailedHeuristics
	for _, s := range res.Scores {
		o.Scores = append(o.Scores, Score{Tag: s.Tag, CF: s.CF})
	}
	if len(res.Rankings) > 0 {
		o.Rankings = make(map[string][]RankEntry, len(res.Rankings))
		for name, ranking := range res.Rankings {
			rows := make([]RankEntry, 0, len(ranking))
			for _, e := range ranking {
				rows = append(rows, RankEntry{Tag: e.Tag, Rank: e.Rank})
			}
			o.Rankings[name] = rows
		}
	}
	for _, c := range res.Candidates {
		o.Candidates = append(o.Candidates, Candidate{Tag: c.Name, Count: c.Count})
	}
}
