package pipeline

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/corpus"
	"repro/internal/faultinject"
)

// corpusTasks builds the bulk task list for the full 20-site test corpus,
// sharded by domain.
func corpusTasks() []*Task {
	var tasks []*Task
	for _, d := range corpus.TestDocuments() {
		tasks = append(tasks, &Task{
			ID:       fmt.Sprintf("%s-%d", d.Site.Name, d.Index),
			Mode:     "html",
			Doc:      d.HTML,
			Ontology: string(d.Site.Domain),
			Shard:    string(d.Site.Domain),
		})
	}
	return tasks
}

// runAll drains tasks into dir with a journal, uninterrupted.
func runAll(t *testing.T, dir string, tasks []*Task, cfg Config) Stats {
	t.Helper()
	sink, err := NewShardedFileSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	jr, err := OpenJournal(filepath.Join(dir, "checkpoint.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Truncate(jr.Offsets()); err != nil {
		t.Fatal(err)
	}
	stats, err := New(cfg).Run(context.Background(), NewSliceSource(tasks), sink, jr)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	return stats
}

// killSink forwards writes to the wrapped sink and cancels the run right
// after the killth successful write — a deterministic stand-in for SIGKILL
// landing between a result write and the next one.
type killSink struct {
	Sink
	cancel context.CancelFunc
	writes int
	kill   int
}

func (k *killSink) Write(o *Outcome) (string, int64, error) {
	file, end, err := k.Sink.Write(o)
	if err == nil {
		k.writes++
		if k.writes == k.kill {
			k.cancel()
		}
	}
	return file, end, err
}

// readShards returns the contents of every results*.ndjson file in dir.
func readShards(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string)
	for _, e := range entries {
		name := e.Name()
		if name == "checkpoint.ndjson" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		out[name] = string(data)
	}
	return out
}

// TestResumeAfterKillByteIdentical is the resumability acceptance test: kill
// a corpus run after K emitted results, resume it with the same command, and
// require (a) no document is processed twice and (b) the final shard files
// are byte-for-byte identical to an uninterrupted run's.
func TestResumeAfterKillByteIdentical(t *testing.T) {
	tasks := corpusTasks()
	n := len(tasks)
	const kill = 7

	// Reference: one uninterrupted run.
	refDir := t.TempDir()
	runAll(t, refDir, tasks, Config{Workers: 3})
	want := readShards(t, refDir)

	// Interrupted run: cancel right after the 7th result is written (and
	// journaled — the emitter checkpoints each write before noticing the
	// cancel, matching a kill that lands between two documents).
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink, err := NewShardedFileSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	jr, err := OpenJournal(filepath.Join(dir, "checkpoint.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	faults1 := faultinject.New()
	_, runErr := New(Config{Workers: 3, Faults: faults1}).Run(
		ctx, NewSliceSource(tasks), &killSink{Sink: sink, cancel: cancel, kill: kill}, jr)
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", runErr)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	firstPass := faults1.Fired("pipeline/attempt")
	doneAfterKill := jr.DoneCount()
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	if doneAfterKill != kill {
		t.Fatalf("journal has %d entries after kill, want exactly %d", doneAfterKill, kill)
	}

	// Resume: same directory, same input. The journaled documents must be
	// skipped, the rest processed exactly once.
	faults2 := faultinject.New()
	sink2, err := NewShardedFileSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	jr2, err := OpenJournal(filepath.Join(dir, "checkpoint.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sink2.Truncate(jr2.Offsets()); err != nil {
		t.Fatal(err)
	}
	stats, err := New(Config{Workers: 3, Faults: faults2}).Run(
		context.Background(), NewSliceSource(tasks), sink2, jr2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink2.Close(); err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()

	if stats.Skipped != kill {
		t.Errorf("resumed run skipped %d documents, want %d", stats.Skipped, kill)
	}
	if stats.OK != n-kill {
		t.Errorf("resumed run processed %d documents, want %d", stats.OK, n-kill)
	}
	// No document processed twice: attempts across both passes cover each
	// document at most once per pass, and the resumed pass only touched the
	// un-journaled remainder.
	if secondPass := faults2.Fired("pipeline/attempt"); secondPass != n-kill {
		t.Errorf("resumed run attempted %d documents, want %d", secondPass, n-kill)
	}
	// The interrupted pass attempted at most the full corpus (workers that
	// were mid-flight at cancel count too, but nothing is attempted twice
	// within a pass).
	if firstPass > n {
		t.Errorf("interrupted run attempted %d documents, more than the corpus size %d", firstPass, n)
	}
	if jr2.DoneCount() != n {
		t.Errorf("journal has %d entries after resume, want %d", jr2.DoneCount(), n)
	}

	got := readShards(t, dir)
	if len(got) != len(want) {
		t.Fatalf("shard files after resume: %v, want %v", keys(got), keys(want))
	}
	for name, wantData := range want {
		if got[name] != wantData {
			t.Errorf("shard %s differs from uninterrupted run (%d vs %d bytes)",
				name, len(got[name]), len(wantData))
		}
	}
}

// TestResumeTruncatesTornWrite: bytes written after the last checkpoint (a
// result line the kill tore in half) are discarded on resume and the final
// output is still byte-identical.
func TestResumeTruncatesTornWrite(t *testing.T) {
	tasks := corpusTasks()

	refDir := t.TempDir()
	runAll(t, refDir, tasks, Config{Workers: 2})
	want := readShards(t, refDir)

	// Build a half-finished run: journal only the first 9 documents' entries
	// by replaying a full run's journal prefix, then simulate torn trailing
	// bytes in a shard file.
	dir := t.TempDir()
	runAll(t, dir, tasks, Config{Workers: 2})

	jpath := filepath.Join(dir, "checkpoint.ndjson")
	full, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := splitLines(full)
	if len(lines) != len(tasks) {
		t.Fatalf("journal has %d lines, want %d", len(lines), len(tasks))
	}
	prefix := joinLines(lines[:9]) + `{"seq":9,"file":"resu` // torn final append
	if err := os.WriteFile(jpath, []byte(prefix), 0o644); err != nil {
		t.Fatal(err)
	}
	// Tear a shard file too: un-checkpointed garbage past the journaled
	// offset of one shard, and a shard the truncated journal never mentions.
	shard := filepath.Join(dir, ShardFile(string(corpus.AllDomains[len(corpus.AllDomains)-1])))
	f, err := os.OpenFile(shard, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":999,"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	stats := runAll(t, dir, tasks, Config{Workers: 2})
	if stats.Skipped != 9 {
		t.Errorf("resumed run skipped %d, want 9", stats.Skipped)
	}

	got := readShards(t, dir)
	for name, wantData := range want {
		if got[name] != wantData {
			t.Errorf("shard %s differs after torn-write resume (%d vs %d bytes)",
				name, len(got[name]), len(wantData))
		}
	}
}

// TestResumeCompletedRunIsNoop: re-running a finished run skips everything
// and changes nothing.
func TestResumeCompletedRunIsNoop(t *testing.T) {
	tasks := corpusTasks()
	dir := t.TempDir()
	runAll(t, dir, tasks, Config{Workers: 2})
	want := readShards(t, dir)

	faults := faultinject.New()
	stats := runAll(t, dir, tasks, Config{Workers: 2, Faults: faults})
	if stats.Skipped != len(tasks) || stats.OK != 0 {
		t.Fatalf("second run stats = %+v, want all skipped", stats)
	}
	if n := faults.Fired("pipeline/attempt"); n != 0 {
		t.Fatalf("second run attempted %d documents, want 0", n)
	}
	got := readShards(t, dir)
	for name, wantData := range want {
		if got[name] != wantData {
			t.Errorf("shard %s changed on no-op resume", name)
		}
	}
}

func splitLines(data []byte) []string {
	var out []string
	start := 0
	for i, b := range data {
		if b == '\n' {
			out = append(out, string(data[start:i+1]))
			start = i + 1
		}
	}
	return out
}

func joinLines(lines []string) string {
	var s string
	for _, l := range lines {
		s += l
	}
	return s
}

func keys(m map[string]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
