package pipeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Journal is the append-only checkpoint log that makes a bulk run resumable.
// One entry is appended after each outcome's bytes reach its output file, so
// on restart the set of journaled sequence numbers is exactly the set of
// documents whose results are already durable — those are skipped — and the
// per-file end offsets let the sink truncate away any torn write that
// happened after the final checkpoint. A document is therefore never
// processed twice, and a resumed run's output is byte-identical to an
// uninterrupted one.
//
// The format is NDJSON, one entry per line:
//
//	{"seq":17,"file":"results-carad.ndjson","offset":8831}
//
// Loading tolerates a trailing partial line (the run was killed mid-append):
// that entry's document simply runs again.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	done    map[int]bool
	offsets map[string]int64
}

// journalEntry is one checkpoint line.
type journalEntry struct {
	Seq    int    `json:"seq"`
	File   string `json:"file,omitempty"`
	Offset int64  `json:"offset,omitempty"`
}

// OpenJournal opens (creating if absent) the journal at path and replays its
// entries.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, done: make(map[int]bool), offsets: make(map[string]int64)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			// A torn final line from a killed run: ignore it (and anything
			// after it — there is nothing after a torn tail by construction).
			break
		}
		j.done[e.Seq] = true
		if e.File != "" && e.Offset > j.offsets[e.File] {
			j.offsets[e.File] = e.Offset
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("pipeline: reading journal %s: %w", path, err)
	}
	return j, nil
}

// Done reports whether seq was checkpointed by a previous run.
func (j *Journal) Done(seq int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done[seq]
}

// DoneCount returns how many documents the journal records as complete.
func (j *Journal) DoneCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Offsets returns the per-file end offsets of the journaled results — the
// truncation map for ShardedFileSink.Truncate.
func (j *Journal) Offsets() map[string]int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]int64, len(j.offsets))
	for k, v := range j.offsets {
		out[k] = v
	}
	return out
}

// Append checkpoints one completed document. The entry is written with a
// single Write call so a kill can tear at most the final line.
func (j *Journal) Append(seq int, file string, offset int64) error {
	line, err := json.Marshal(journalEntry{Seq: seq, File: file, Offset: offset})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("pipeline: appending journal entry: %w", err)
	}
	j.done[seq] = true
	if file != "" && offset > j.offsets[file] {
		j.offsets[file] = offset
	}
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
