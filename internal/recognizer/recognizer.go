// Package recognizer implements the Constant/Keyword Recognizer of the
// paper's Figure 1 pipeline: it applies the matching rules generated from an
// application ontology to the plain text of a document and produces the
// Data-Record Table — one row per recognized keyword or constant, carrying a
// descriptor, the matched string, and its position, ordered by position.
//
// The OM heuristic (§4.5) reads its occurrence counts from this table, and
// the Database-Instance Generator partitions it at the discovered separator
// positions to build records.
package recognizer

import (
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/ontology"
	"repro/internal/tagtree"
)

// Entry is one row of the Data-Record Table.
type Entry struct {
	// ObjectSet names the object set whose rule matched.
	ObjectSet string
	// Kind distinguishes keyword matches from constant (value) matches.
	Kind ontology.RuleKind
	// String is the matched text.
	String string
	// Pos is the byte offset of the match in the original document.
	Pos int
	// End is the byte offset just past the match.
	End int
}

// Descriptor renders the entry's descriptor, e.g. "DeathDate/keyword".
func (e Entry) Descriptor() string { return e.ObjectSet + "/" + e.Kind.String() }

// countKey identifies one (object set, rule kind) occurrence-count bucket.
type countKey struct {
	objectSet string
	kind      ontology.RuleKind
}

// Table is the Data-Record Table: entries sorted by position in the
// document (ties broken by object-set name, then kind).
type Table struct {
	Entries []Entry

	// counts caches per-(objectSet, kind) entry counts. Recognize fills it
	// so the OM heuristic's per-field lookups are O(1) instead of a fresh
	// scan of all entries; tables assembled by hand leave it nil and fall
	// back to the linear count.
	counts map[countKey]int
}

// Len returns the number of entries ("lines" in the paper's O(d) analysis).
func (t *Table) Len() int { return len(t.Entries) }

// CountKeyword returns the number of keyword entries for the object set.
func (t *Table) CountKeyword(objectSet string) int {
	return t.count(objectSet, ontology.KeywordRule)
}

// CountConstant returns the number of constant entries for the object set.
func (t *Table) CountConstant(objectSet string) int {
	return t.count(objectSet, ontology.ConstantRule)
}

func (t *Table) count(objectSet string, kind ontology.RuleKind) int {
	if t.counts != nil {
		return t.counts[countKey{objectSet, kind}]
	}
	n := 0
	for _, e := range t.Entries {
		if e.ObjectSet == objectSet && e.Kind == kind {
			n++
		}
	}
	return n
}

// buildCounts precomputes the per-(objectSet, kind) counts.
func (t *Table) buildCounts() {
	t.counts = make(map[countKey]int)
	for _, e := range t.Entries {
		t.counts[countKey{e.ObjectSet, e.Kind}]++
	}
}

// Slice returns the entries with Pos in [from, to), preserving order. It is
// how the Database-Instance Generator partitions the table into records.
func (t *Table) Slice(from, to int) []Entry {
	lo := sort.Search(len(t.Entries), func(i int) bool { return t.Entries[i].Pos >= from })
	hi := sort.Search(len(t.Entries), func(i int) bool { return t.Entries[i].Pos >= to })
	return t.Entries[lo:hi]
}

// parallelThreshold is the total chunk byte count below which fanning the
// scan out across workers costs more than it saves.
const parallelThreshold = 16 << 10

// Recognize runs the ontology's matching rules over the plain text of the
// subtree rooted at n (normally the highest-fan-out subtree) and returns the
// Data-Record Table. Text chunks are matched individually — a rule never
// matches across a tag boundary, mirroring how the paper's recognizers run
// over the cleaned text between tags. Positions are document offsets.
//
// Each chunk takes a single pass: rules whose prefilter literals (see
// ontology.Rule.Prefilter) are absent from the chunk are rejected with
// substring scans and never reach the regexp engine. Chunks are independent,
// so large documents fan out across a bounded worker pool; per-chunk entry
// lists are sorted locally and concatenated in document order, which leaves
// the table globally sorted without a final full-table sort.
func Recognize(ont *ontology.Ontology, tree *tagtree.Tree, n *tagtree.Node) *Table {
	rules := ont.Rules()

	events := tree.SubtreeEvents(n)
	chunks := make([]tagtree.Event, 0, len(events)/2)
	total := 0
	for _, ev := range events {
		if ev.Kind == tagtree.EventText {
			chunks = append(chunks, ev)
			total += len(ev.Text)
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if total < parallelThreshold || workers <= 1 {
		t := &Table{Entries: scanChunks(rules, chunks)}
		t.buildCounts()
		return t
	}

	// Shard the chunk list into contiguous runs, one per worker, so each
	// worker's output is already in document order.
	perChunk := make([][]Entry, len(chunks))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				perChunk[i] = scanChunks(rules, chunks[i:i+1])
			}
		}()
	}
	for i := range chunks {
		next <- i
	}
	close(next)
	wg.Wait()

	n2 := 0
	for _, es := range perChunk {
		n2 += len(es)
	}
	entries := make([]Entry, 0, n2)
	for _, es := range perChunk {
		entries = append(entries, es...)
	}
	t := &Table{Entries: entries}
	t.buildCounts()
	return t
}

// scanChunks matches every rule against every chunk, returning entries
// sorted by (Pos, ObjectSet, Kind). Chunks must be in ascending document
// order; since chunk byte ranges are disjoint, sorting each chunk's matches
// locally keeps the concatenation globally sorted.
func scanChunks(rules []ontology.Rule, chunks []tagtree.Event) []Entry {
	var entries []Entry
	for _, ev := range chunks {
		chunkStart := len(entries)
		for _, r := range rules {
			if !prefilterHit(r.Prefilter, ev.Text) {
				continue
			}
			for _, m := range r.Pattern.FindAllStringIndex(ev.Text, -1) {
				entries = append(entries, Entry{
					ObjectSet: r.ObjectSet,
					Kind:      r.Kind,
					String:    ev.Text[m[0]:m[1]],
					Pos:       ev.Pos + m[0],
					End:       ev.Pos + m[1],
				})
			}
		}
		sortEntries(entries[chunkStart:])
	}
	return entries
}

// prefilterHit reports whether the chunk can possibly match a rule with the
// given necessary-literal set. An empty set means "always possible".
func prefilterHit(lits []string, text string) bool {
	if len(lits) == 0 {
		return true
	}
	for _, l := range lits {
		if strings.Contains(text, l) {
			return true
		}
	}
	return false
}

// sortEntries orders entries by position, ties broken by object-set name,
// then kind — the table's canonical order.
func sortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		if a.ObjectSet != b.ObjectSet {
			return a.ObjectSet < b.ObjectSet
		}
		return a.Kind < b.Kind
	})
}

// FieldCount returns the number of indicator occurrences for one
// record-identifying field, per §4.5: keyword occurrences for
// keyword-indicated fields, constant occurrences otherwise.
func FieldCount(t *Table, f ontology.RecordIdentifyingField) int {
	if f.UseKeywords {
		return t.CountKeyword(f.Set.Name)
	}
	return t.CountConstant(f.Set.Name)
}

// EstimateRecordCount averages the indicator counts of the ontology's
// record-identifying fields — the paper's estimate of the number of records
// in the document. ok is false when the ontology has fewer than three
// record-identifying fields (OM then declines to answer).
func EstimateRecordCount(ont *ontology.Ontology, t *Table) (estimate float64, ok bool) {
	fields, ok := ont.RecordIdentifyingFields()
	if !ok {
		return 0, false
	}
	sum := 0
	for _, f := range fields {
		sum += FieldCount(t, f)
	}
	return float64(sum) / float64(len(fields)), true
}
