// Package recognizer implements the Constant/Keyword Recognizer of the
// paper's Figure 1 pipeline: it applies the matching rules generated from an
// application ontology to the plain text of a document and produces the
// Data-Record Table — one row per recognized keyword or constant, carrying a
// descriptor, the matched string, and its position, ordered by position.
//
// The OM heuristic (§4.5) reads its occurrence counts from this table, and
// the Database-Instance Generator partitions it at the discovered separator
// positions to build records.
package recognizer

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/ontology"
	"repro/internal/tagtree"
)

// Entry is one row of the Data-Record Table.
type Entry struct {
	// ObjectSet names the object set whose rule matched.
	ObjectSet string
	// Kind distinguishes keyword matches from constant (value) matches.
	Kind ontology.RuleKind
	// String is the matched text.
	String string
	// Pos is the byte offset of the match in the original document.
	Pos int
	// End is the byte offset just past the match.
	End int
}

// Descriptor renders the entry's descriptor, e.g. "DeathDate/keyword".
func (e Entry) Descriptor() string { return e.ObjectSet + "/" + e.Kind.String() }

// countKey identifies one (object set, rule kind) occurrence-count bucket.
type countKey struct {
	objectSet string
	kind      ontology.RuleKind
}

// Table is the Data-Record Table: entries sorted by position in the
// document (ties broken by object-set name, then kind).
type Table struct {
	Entries []Entry

	// counts caches per-(objectSet, kind) entry counts. Recognize fills it
	// so the OM heuristic's per-field lookups are O(1) instead of a fresh
	// scan of all entries; tables assembled by hand leave it nil and fall
	// back to the linear count.
	counts map[countKey]int
}

// Len returns the number of entries ("lines" in the paper's O(d) analysis).
func (t *Table) Len() int { return len(t.Entries) }

// CountKeyword returns the number of keyword entries for the object set.
func (t *Table) CountKeyword(objectSet string) int {
	return t.count(objectSet, ontology.KeywordRule)
}

// CountConstant returns the number of constant entries for the object set.
func (t *Table) CountConstant(objectSet string) int {
	return t.count(objectSet, ontology.ConstantRule)
}

func (t *Table) count(objectSet string, kind ontology.RuleKind) int {
	if t.counts != nil {
		return t.counts[countKey{objectSet, kind}]
	}
	n := 0
	for _, e := range t.Entries {
		if e.ObjectSet == objectSet && e.Kind == kind {
			n++
		}
	}
	return n
}

// buildCounts precomputes the per-(objectSet, kind) counts.
func (t *Table) buildCounts() {
	t.counts = make(map[countKey]int)
	for _, e := range t.Entries {
		t.counts[countKey{e.ObjectSet, e.Kind}]++
	}
}

// Slice returns the entries with Pos in [from, to), preserving order. It is
// how the Database-Instance Generator partitions the table into records.
func (t *Table) Slice(from, to int) []Entry {
	lo := sort.Search(len(t.Entries), func(i int) bool { return t.Entries[i].Pos >= from })
	hi := sort.Search(len(t.Entries), func(i int) bool { return t.Entries[i].Pos >= to })
	return t.Entries[lo:hi]
}

// parallelThreshold is the total chunk byte count below which fanning the
// scan out across workers costs more than it saves.
const parallelThreshold = 16 << 10

// Recognize runs the ontology's matching rules over the plain text of the
// subtree rooted at n (normally the highest-fan-out subtree) and returns the
// Data-Record Table. Text chunks are matched individually — a rule never
// matches across a tag boundary, mirroring how the paper's recognizers run
// over the cleaned text between tags. Positions are document offsets.
//
// Each chunk takes a single pass: rules whose prefilter literals (see
// ontology.Rule.Prefilter) are absent from the chunk are rejected with
// substring scans and never reach the regexp engine. Chunks are independent,
// so large documents fan out across a bounded worker pool; per-chunk entry
// lists are sorted locally and concatenated in document order, which leaves
// the table globally sorted without a final full-table sort.
func Recognize(ont *ontology.Ontology, tree *tagtree.Tree, n *tagtree.Node) *Table {
	t, err := RecognizeContext(context.Background(), ont, tree, n, nil)
	if err != nil {
		// Unreachable: a background context never cancels and a nil fault
		// set never fires, so the scan cannot fail.
		panic("recognizer: Recognize failed without context or faults: " + err.Error())
	}
	return t
}

// scanCheckEvery is how many chunks the serial scan processes between
// context checks.
const scanCheckEvery = 64

// scanScratch is the transient per-scan state RecognizeContext reuses via a
// pool: the text-chunk gather list and the per-chunk output table of the
// parallel path. Only scratch is pooled — the returned Table's entries are
// always freshly allocated, so results never alias pooled memory.
type scanScratch struct {
	chunks   []tagtree.Event
	perChunk [][]Entry
}

// maxRetainedChunks bounds a pooled scratch's kept capacity.
const maxRetainedChunks = 1 << 14

var scanScratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

// release scrubs document references (chunk text, node pointers, per-chunk
// entry slices) and repools. Deferred right after Get, so a panicking scan
// still returns its entry.
func (s *scanScratch) release() {
	if cap(s.chunks) > maxRetainedChunks {
		s.chunks = nil
	} else {
		ch := s.chunks[:cap(s.chunks)]
		for i := range ch {
			ch[i] = tagtree.Event{}
		}
		s.chunks = s.chunks[:0]
	}
	if cap(s.perChunk) > maxRetainedChunks {
		s.perChunk = nil
	} else {
		pc := s.perChunk[:cap(s.perChunk)]
		for i := range pc {
			pc[i] = nil
		}
		s.perChunk = s.perChunk[:0]
	}
	scanScratchPool.Put(s)
}

// RecognizeContext is Recognize with cancellation and fault injection: the
// scan — serial or fanned out across the worker pool — stops promptly when
// ctx is canceled, a panicking chunk scan is contained and surfaced as an
// error instead of crashing the process, and faults (nil in production)
// arms the "recognizer/chunk" hook point fired once per scanned chunk.
func RecognizeContext(ctx context.Context, ont *ontology.Ontology, tree *tagtree.Tree, n *tagtree.Node, faults *faultinject.Set) (*Table, error) {
	rules := ont.Rules()

	scr := scanScratchPool.Get().(*scanScratch)
	defer scr.release()

	events := tree.SubtreeEvents(n)
	chunks := scr.chunks[:0]
	total := 0
	for _, ev := range events {
		if ev.Kind == tagtree.EventText {
			chunks = append(chunks, ev)
			total += len(ev.Text)
		}
	}
	scr.chunks = chunks

	workers := runtime.GOMAXPROCS(0)
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if total < parallelThreshold || workers <= 1 {
		entries, err := scanSerial(ctx, rules, chunks, faults)
		if err != nil {
			return nil, err
		}
		t := &Table{Entries: entries}
		t.buildCounts()
		return t, nil
	}

	// Shard the chunk list into contiguous runs, one per worker, so each
	// worker's output is already in document order. scanCtx carries both
	// caller cancellation and the fail-fast cancel below, so every worker
	// and the feeder unblock as soon as anything goes wrong.
	scanCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	if cap(scr.perChunk) < len(chunks) {
		scr.perChunk = make([][]Entry, len(chunks))
	}
	perChunk := scr.perChunk[:len(chunks)]
	for i := range perChunk {
		perChunk[i] = nil // a canceled prior scan may have left stale rows
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					fail(fmt.Errorf("recognizer: chunk scan panicked: %v", r))
				}
			}()
			for {
				select {
				case i, ok := <-next:
					if !ok {
						return
					}
					if faults != nil {
						if err := faults.FireCtx(scanCtx, "recognizer/chunk"); err != nil {
							fail(err)
							return
						}
					}
					perChunk[i] = scanChunk(nil, rules, chunks[i])
				case <-scanCtx.Done():
					return
				}
			}
		}()
	}
feed:
	for i := range chunks {
		select {
		case next <- i:
		case <-scanCtx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	n2 := 0
	for _, es := range perChunk {
		n2 += len(es)
	}
	entries := make([]Entry, 0, n2)
	for _, es := range perChunk {
		entries = append(entries, es...)
	}
	t := &Table{Entries: entries}
	t.buildCounts()
	return t, nil
}

// scanSerial matches every rule against every chunk on the calling
// goroutine, honoring ctx, containing panics, and firing the per-chunk
// fault hook. Entries come back sorted by (Pos, ObjectSet, Kind): chunks
// are in ascending document order and their byte ranges are disjoint, so
// sorting each chunk's matches locally keeps the concatenation globally
// sorted.
func scanSerial(ctx context.Context, rules []ontology.Rule, chunks []tagtree.Event, faults *faultinject.Set) (entries []Entry, err error) {
	defer func() {
		if r := recover(); r != nil {
			entries, err = nil, fmt.Errorf("recognizer: chunk scan panicked: %v", r)
		}
	}()
	for i, ev := range chunks {
		if i%scanCheckEvery == scanCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if faults != nil {
			if err := faults.FireCtx(ctx, "recognizer/chunk"); err != nil {
				return nil, err
			}
		}
		entries = scanChunk(entries, rules, ev)
	}
	return entries, nil
}

// scanChunk appends one chunk's matches to entries, locally sorted.
func scanChunk(entries []Entry, rules []ontology.Rule, ev tagtree.Event) []Entry {
	chunkStart := len(entries)
	for _, r := range rules {
		if !prefilterHit(r.Prefilter, ev.Text) {
			continue
		}
		for _, m := range r.Pattern.FindAllStringIndex(ev.Text, -1) {
			entries = append(entries, Entry{
				ObjectSet: r.ObjectSet,
				Kind:      r.Kind,
				String:    ev.Text[m[0]:m[1]],
				Pos:       ev.Pos + m[0],
				End:       ev.Pos + m[1],
			})
		}
	}
	sortEntries(entries[chunkStart:])
	return entries
}

// prefilterHit reports whether the chunk can possibly match a rule with the
// given necessary-literal set. An empty set means "always possible".
func prefilterHit(lits []string, text string) bool {
	if len(lits) == 0 {
		return true
	}
	for _, l := range lits {
		if strings.Contains(text, l) {
			return true
		}
	}
	return false
}

// sortEntries orders entries by position, ties broken by object-set name,
// then kind — the table's canonical order.
func sortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		if a.ObjectSet != b.ObjectSet {
			return a.ObjectSet < b.ObjectSet
		}
		return a.Kind < b.Kind
	})
}

// FieldCount returns the number of indicator occurrences for one
// record-identifying field, per §4.5: keyword occurrences for
// keyword-indicated fields, constant occurrences otherwise.
func FieldCount(t *Table, f ontology.RecordIdentifyingField) int {
	if f.UseKeywords {
		return t.CountKeyword(f.Set.Name)
	}
	return t.CountConstant(f.Set.Name)
}

// EstimateRecordCount averages the indicator counts of the ontology's
// record-identifying fields — the paper's estimate of the number of records
// in the document. ok is false when the ontology has fewer than three
// record-identifying fields (OM then declines to answer).
func EstimateRecordCount(ont *ontology.Ontology, t *Table) (estimate float64, ok bool) {
	fields, ok := ont.RecordIdentifyingFields()
	if !ok {
		return 0, false
	}
	sum := 0
	for _, f := range fields {
		sum += FieldCount(t, f)
	}
	return float64(sum) / float64(len(fields)), true
}
