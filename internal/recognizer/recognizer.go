// Package recognizer implements the Constant/Keyword Recognizer of the
// paper's Figure 1 pipeline: it applies the matching rules generated from an
// application ontology to the plain text of a document and produces the
// Data-Record Table — one row per recognized keyword or constant, carrying a
// descriptor, the matched string, and its position, ordered by position.
//
// The OM heuristic (§4.5) reads its occurrence counts from this table, and
// the Database-Instance Generator partitions it at the discovered separator
// positions to build records.
package recognizer

import (
	"sort"

	"repro/internal/ontology"
	"repro/internal/tagtree"
)

// Entry is one row of the Data-Record Table.
type Entry struct {
	// ObjectSet names the object set whose rule matched.
	ObjectSet string
	// Kind distinguishes keyword matches from constant (value) matches.
	Kind ontology.RuleKind
	// String is the matched text.
	String string
	// Pos is the byte offset of the match in the original document.
	Pos int
	// End is the byte offset just past the match.
	End int
}

// Descriptor renders the entry's descriptor, e.g. "DeathDate/keyword".
func (e Entry) Descriptor() string { return e.ObjectSet + "/" + e.Kind.String() }

// Table is the Data-Record Table: entries sorted by position in the
// document (ties broken by object-set name, then kind).
type Table struct {
	Entries []Entry
}

// Len returns the number of entries ("lines" in the paper's O(d) analysis).
func (t *Table) Len() int { return len(t.Entries) }

// CountKeyword returns the number of keyword entries for the object set.
func (t *Table) CountKeyword(objectSet string) int {
	return t.count(objectSet, ontology.KeywordRule)
}

// CountConstant returns the number of constant entries for the object set.
func (t *Table) CountConstant(objectSet string) int {
	return t.count(objectSet, ontology.ConstantRule)
}

func (t *Table) count(objectSet string, kind ontology.RuleKind) int {
	n := 0
	for _, e := range t.Entries {
		if e.ObjectSet == objectSet && e.Kind == kind {
			n++
		}
	}
	return n
}

// Slice returns the entries with Pos in [from, to), preserving order. It is
// how the Database-Instance Generator partitions the table into records.
func (t *Table) Slice(from, to int) []Entry {
	lo := sort.Search(len(t.Entries), func(i int) bool { return t.Entries[i].Pos >= from })
	hi := sort.Search(len(t.Entries), func(i int) bool { return t.Entries[i].Pos >= to })
	return t.Entries[lo:hi]
}

// Recognize runs the ontology's matching rules over the plain text of the
// subtree rooted at n (normally the highest-fan-out subtree) and returns the
// Data-Record Table. Text chunks are matched individually — a rule never
// matches across a tag boundary, mirroring how the paper's recognizers run
// over the cleaned text between tags. Positions are document offsets.
func Recognize(ont *ontology.Ontology, tree *tagtree.Tree, n *tagtree.Node) *Table {
	rules := ont.Rules()
	var entries []Entry
	for _, ev := range tree.SubtreeEvents(n) {
		if ev.Kind != tagtree.EventText {
			continue
		}
		for _, r := range rules {
			for _, m := range r.Pattern.FindAllStringIndex(ev.Text, -1) {
				entries = append(entries, Entry{
					ObjectSet: r.ObjectSet,
					Kind:      r.Kind,
					String:    ev.Text[m[0]:m[1]],
					Pos:       ev.Pos + m[0],
					End:       ev.Pos + m[1],
				})
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		if a.ObjectSet != b.ObjectSet {
			return a.ObjectSet < b.ObjectSet
		}
		return a.Kind < b.Kind
	})
	return &Table{Entries: entries}
}

// FieldCount returns the number of indicator occurrences for one
// record-identifying field, per §4.5: keyword occurrences for
// keyword-indicated fields, constant occurrences otherwise.
func FieldCount(t *Table, f ontology.RecordIdentifyingField) int {
	if f.UseKeywords {
		return t.CountKeyword(f.Set.Name)
	}
	return t.CountConstant(f.Set.Name)
}

// EstimateRecordCount averages the indicator counts of the ontology's
// record-identifying fields — the paper's estimate of the number of records
// in the document. ok is false when the ontology has fewer than three
// record-identifying fields (OM then declines to answer).
func EstimateRecordCount(ont *ontology.Ontology, t *Table) (estimate float64, ok bool) {
	fields, ok := ont.RecordIdentifyingFields()
	if !ok {
		return 0, false
	}
	sum := 0
	for _, f := range fields {
		sum += FieldCount(t, f)
	}
	return float64(sum) / float64(len(fields)), true
}
