package recognizer

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ontology"
	"repro/internal/paperdoc"
	"repro/internal/tagtree"
)

func obituarySetup(t *testing.T) (*ontology.Ontology, *tagtree.Tree, *tagtree.Node) {
	t.Helper()
	ont := ontology.Builtin("obituary")
	tree := tagtree.Parse(paperdoc.Figure2)
	return ont, tree, tree.HighestFanOut()
}

func TestRecognizeFigure2DeathDateKeywords(t *testing.T) {
	ont, tree, hf := obituarySetup(t)
	table := Recognize(ont, tree, hf)
	// One "died on" + two "passed away": exactly one per record.
	if got := table.CountKeyword("DeathDate"); got != 3 {
		t.Errorf("DeathDate keywords = %d, want 3", got)
	}
	if got := table.CountKeyword("FuneralService"); got != 3 {
		t.Errorf("FuneralService keywords = %d, want 3", got)
	}
	if got := table.CountKeyword("Interment"); got != 3 {
		t.Errorf("Interment keywords = %d, want 3", got)
	}
}

func TestEstimateRecordCountFigure2(t *testing.T) {
	ont, tree, hf := obituarySetup(t)
	table := Recognize(ont, tree, hf)
	est, ok := EstimateRecordCount(ont, table)
	if !ok {
		t.Fatal("estimate unavailable")
	}
	if est != 3.0 {
		t.Errorf("estimated record count = %v, want 3.0 (the document has 3 obituaries)", est)
	}
}

func TestEntriesSortedByPosition(t *testing.T) {
	ont, tree, hf := obituarySetup(t)
	table := Recognize(ont, tree, hf)
	if table.Len() == 0 {
		t.Fatal("empty table")
	}
	for i := 1; i < len(table.Entries); i++ {
		if table.Entries[i].Pos < table.Entries[i-1].Pos {
			t.Fatalf("entries out of order at %d: %+v then %+v", i, table.Entries[i-1], table.Entries[i])
		}
	}
}

func TestEntryDescriptor(t *testing.T) {
	e := Entry{ObjectSet: "DeathDate", Kind: ontology.KeywordRule}
	if got := e.Descriptor(); got != "DeathDate/keyword" {
		t.Errorf("descriptor = %q", got)
	}
	e.Kind = ontology.ConstantRule
	if got := e.Descriptor(); got != "DeathDate/constant" {
		t.Errorf("descriptor = %q", got)
	}
}

func TestSlicePartitionsByPosition(t *testing.T) {
	ont, tree, hf := obituarySetup(t)
	table := Recognize(ont, tree, hf)
	// Partition at the separator (hr) occurrences; each inter-hr span must
	// contain exactly one DeathDate keyword.
	positions := tagtree.Occurrences(tree, hf, "hr")
	if len(positions) != 4 {
		t.Fatalf("hr occurrences = %d, want 4", len(positions))
	}
	for i := 0; i+1 < len(positions); i++ {
		got := 0
		for _, e := range table.Slice(positions[i], positions[i+1]) {
			if e.ObjectSet == "DeathDate" && e.Kind == ontology.KeywordRule {
				got++
			}
		}
		if got != 1 {
			t.Errorf("record %d: DeathDate keywords = %d, want 1", i+1, got)
		}
	}
}

func TestSliceEmptyRange(t *testing.T) {
	ont, tree, hf := obituarySetup(t)
	table := Recognize(ont, tree, hf)
	if got := table.Slice(5, 5); len(got) != 0 {
		t.Errorf("empty range returned %d entries", len(got))
	}
}

func TestRecognizeDoesNotMatchAcrossTags(t *testing.T) {
	// "died" and "on" split by a tag must not produce a DeathDate keyword.
	ont := ontology.Builtin("obituary")
	tree := tagtree.Parse("<div><p>died </p><p>on March 3</p></div>")
	table := Recognize(ont, tree, tree.Root)
	if got := table.CountKeyword("DeathDate"); got != 0 {
		t.Errorf("keyword matched across tag boundary: %d", got)
	}
}

func TestRecognizeOutsideSubtreeExcluded(t *testing.T) {
	ont := ontology.Builtin("obituary")
	doc := "<body>passed away outside<div><b>x</b><b>passed away inside</b></div></body>"
	tree := tagtree.Parse(doc)
	div := tree.Root.Find("div")
	table := Recognize(ont, tree, div)
	if got := table.CountKeyword("DeathDate"); got != 1 {
		t.Errorf("DeathDate keywords in div = %d, want 1 (outside text must be excluded)", got)
	}
}

func TestEstimateRequiresThreeFields(t *testing.T) {
	src := "ontology X\nentity X\nobject A : one-to-one {\nkeyword `k`\n}"
	ont := ontology.MustParse(src)
	tree := tagtree.Parse("<div>k k k</div>")
	table := Recognize(ont, tree, tree.Root)
	if _, ok := EstimateRecordCount(ont, table); ok {
		t.Error("estimate should be unavailable with < 3 record-identifying fields")
	}
}

// TestCountsPrecomputed: Recognize fills the per-(objectSet, kind) count
// map, and the O(1) lookups agree with a linear scan of the entries.
func TestCountsPrecomputed(t *testing.T) {
	ont, tree, hf := obituarySetup(t)
	table := Recognize(ont, tree, hf)
	if table.counts == nil {
		t.Fatal("Recognize left counts nil")
	}
	linear := func(set string, kind ontology.RuleKind) int {
		n := 0
		for _, e := range table.Entries {
			if e.ObjectSet == set && e.Kind == kind {
				n++
			}
		}
		return n
	}
	for _, s := range ont.ObjectSets {
		if got, want := table.CountKeyword(s.Name), linear(s.Name, ontology.KeywordRule); got != want {
			t.Errorf("CountKeyword(%s) = %d, want %d", s.Name, got, want)
		}
		if got, want := table.CountConstant(s.Name), linear(s.Name, ontology.ConstantRule); got != want {
			t.Errorf("CountConstant(%s) = %d, want %d", s.Name, got, want)
		}
	}
}

// TestCountFallbackOnHandBuiltTable: a table assembled directly (no counts
// map) still counts correctly via the linear fallback.
func TestCountFallbackOnHandBuiltTable(t *testing.T) {
	table := &Table{Entries: []Entry{
		{ObjectSet: "A", Kind: ontology.KeywordRule},
		{ObjectSet: "A", Kind: ontology.KeywordRule},
		{ObjectSet: "A", Kind: ontology.ConstantRule},
		{ObjectSet: "B", Kind: ontology.ConstantRule},
	}}
	if got := table.CountKeyword("A"); got != 2 {
		t.Errorf("CountKeyword(A) = %d, want 2", got)
	}
	if got := table.CountConstant("B"); got != 1 {
		t.Errorf("CountConstant(B) = %d, want 1", got)
	}
	if got := table.CountKeyword("C"); got != 0 {
		t.Errorf("CountKeyword(C) = %d, want 0", got)
	}
}

// TestRecognizeParallelMatchesSequential: the worker-pool path must produce
// the identical table as a forced-sequential scan, on a document large
// enough to cross the fan-out threshold.
func TestRecognizeParallelMatchesSequential(t *testing.T) {
	ont := ontology.Builtin("obituary")
	var sb strings.Builder
	sb.WriteString("<div>")
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&sb, "<b>Brian Fielding Frost %d</b> passed away on March %d, 1998, age %d. "+
			"Funeral services at the chapel. Interment at City Cemetery. Some filler text padding the chunk out. ",
			i, i%28+1, 20+i%70)
		sb.WriteString("<hr>")
	}
	sb.WriteString("</div>")
	tree := tagtree.Parse(sb.String())
	rules := ont.Rules()

	// Reference: the same single-goroutine scan the small-document path uses.
	var chunks []tagtree.Event
	for _, ev := range tree.SubtreeEvents(tree.Root) {
		if ev.Kind == tagtree.EventText {
			chunks = append(chunks, ev)
		}
	}
	var want []Entry
	for _, ev := range chunks {
		want = scanChunk(want, rules, ev)
	}

	got := Recognize(ont, tree, tree.Root)
	if len(got.Entries) != len(want) {
		t.Fatalf("parallel entries = %d, sequential = %d", len(got.Entries), len(want))
	}
	for i := range want {
		if got.Entries[i] != want[i] {
			t.Fatalf("entry %d: parallel %+v != sequential %+v", i, got.Entries[i], want[i])
		}
	}
	for i := 1; i < len(got.Entries); i++ {
		if got.Entries[i].Pos < got.Entries[i-1].Pos {
			t.Fatalf("entries out of order at %d", i)
		}
	}
}

func TestFieldCountSelectsIndicatorKind(t *testing.T) {
	src := `
ontology X
entity X
object K : one-to-one {
    keyword ` + "`kw`" + `
    value ` + "`val`" + `
}
object V : one-to-one {
    type v
    value ` + "`val`" + `
}
object W : one-to-one {
    keyword ` + "`w`" + `
}
`
	ont := ontology.MustParse(src)
	tree := tagtree.Parse("<div>kw val val w</div>")
	table := Recognize(ont, tree, tree.Root)
	fields, ok := ont.RecordIdentifyingFields()
	if !ok {
		t.Fatal("no fields")
	}
	counts := map[string]int{}
	for _, f := range fields {
		counts[f.Set.Name] = FieldCount(table, f)
	}
	if counts["K"] != 1 { // keyword-indicated: counts "kw" only
		t.Errorf("K count = %d, want 1", counts["K"])
	}
	if counts["V"] != 2 { // value-identified: counts both "val"s
		t.Errorf("V count = %d, want 2", counts["V"])
	}
}
