package recognizer

import (
	"testing"

	"repro/internal/testutil"
)

// TestMain fails the package's test run if the chunk-scan worker pool leaks
// goroutines, including on cancellation, fault, and panic paths.
func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
