package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Lexicons for synthetic text. The value vocabularies (car makes, models,
// months, skills, departments) deliberately coincide with the built-in
// application ontologies' data frames so the recognizer finds what the
// generator plants.

var firstNames = []string{
	"Lemar", "Brian", "Leonard", "Phyllis", "Harold", "Margaret", "Walter",
	"Dorothy", "Eugene", "Mildred", "Ralph", "Bernice", "Chester", "Opal",
	"Vernon", "Lucille", "Homer", "Gladys", "Floyd", "Edna", "Clifford",
	"Thelma", "Herman", "Beulah", "Orville", "Hazel", "Emmett", "Vera",
	"Clarence", "Irene", "Norman", "Ethel", "Willard", "Ruby", "Stanley",
	"Agnes", "Milton", "Doris", "Russell", "Elsie",
}

var lastNames = []string{
	"Adamson", "Frost", "Gunther", "Jensen", "Whitaker", "Caldwell",
	"Huffman", "Barrett", "Stocks", "Pemberton", "Ashworth", "Lindqvist",
	"Romero", "Castleton", "Bagley", "Sorensen", "McAllister", "Draper",
	"Holladay", "Bingham", "Okelberry", "Tanner", "Beesley", "Crandall",
	"Openshaw", "Despain", "Winward", "Leavitt", "Stratton", "Chappell",
}

var middleInitials = "ABCDEFGHJKLMNPRSTW"

var months = []string{
	"January", "February", "March", "April", "May", "June", "July",
	"August", "September", "October", "November", "December",
}

var weekdays = []string{
	"Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday",
}

var cities = []string{
	"Provo", "Ogden", "Tucson", "Sandy", "Murray", "Layton", "Orem",
	"Tooele", "Logan", "Bountiful", "Cheyenne", "Boise", "Spokane",
	"Fresno", "Amarillo", "Topeka", "Peoria", "Dayton", "Macon", "Erie",
}

var churches = []string{
	"First Presbyterian Church", "St. Mark's Parish", "Grace Lutheran Church",
	"Twelfth Ward", "Holy Trinity Parish", "Calvary Baptist Church",
}

var mortuaries = []string{
	"MEMORIAL CHAPEL", "HEATHER MORTUARY", "WASATCH FUNERAL HOME",
	"LINDQUIST MORTUARY", "SUNSET CHAPEL", "EVERGREEN FUNERAL HOME",
}

var cemeteries = []string{
	"Holy Hope Cemetery", "Evergreen Cemetery", "Mountain View Cemetery",
	"Oak Hill Cemetery", "Pleasant Grove Cemetery",
}

var carMakes = []string{
	"Ford", "Chevrolet", "Toyota", "Honda", "Dodge", "Nissan", "Buick",
	"Pontiac", "Chrysler", "Jeep", "Mercury", "Oldsmobile", "Subaru",
	"Mazda", "Volkswagen", "Saturn",
}

// carModels maps a make to plausible models; model names coincide with the
// CarAd ontology's Model pattern.
var carModels = map[string][]string{
	"Ford":       {"Taurus", "Escort", "Mustang"},
	"Chevrolet":  {"Cavalier", "Corsica", "Lumina"},
	"Toyota":     {"Corolla", "Camry"},
	"Honda":      {"Civic", "Accord"},
	"Dodge":      {"Caravan", "Neon"},
	"Nissan":     {"Sentra", "Altima"},
	"Buick":      {"LeSabre", "Regal"},
	"Volkswagen": {"Jetta", "Passat"},
	"Subaru":     {"Legacy"},
	"Mazda":      {"Protege"},
}

var carColors = []string{
	"red", "blue", "white", "black", "green", "silver", "gold", "maroon",
	"teal", "tan", "gray", "burgundy",
}

var carFeatures = []string{
	"A/C", "power windows", "power locks", "power steering", "CD",
	"cassette", "sunroof", "leather", "cruise",
}

var carConditions = []string{
	"excellent condition", "good condition", "runs great", "must sell",
	"like new",
}

var jobTitles = []string{
	"Programmer/Analyst", "Software Engineer", "Systems Analyst",
	"Database Administrator", "Web Developer", "Network Administrator",
	"Project Manager", "Help Desk Technician",
}

var jobSkills = []string{
	"Java", "C", "COBOL", "SQL", "Oracle", "Sybase", "UNIX", "Windows",
	"HTML", "Perl", "CGI", "PowerBuilder", "Informix", "DB2",
}

var companies = []string{
	"Summit Systems", "Deseret Technologies", "Wasatch Consulting",
	"Pioneer Data Corp", "Intermountain Software Inc", "Canyon Technologies",
	"Redrock Systems", "Bonneville Consulting",
}

var courseDepts = []string{
	"CS", "MATH", "PHYS", "CHEM", "ENGL", "HIST", "BIOL", "ECON",
	"PSYCH", "PHIL", "STAT", "GEOG",
}

var courseTopics = []string{
	"Computer Programming", "Data Structures", "Discrete Mathematics",
	"Organic Chemistry", "American Literature", "World History",
	"Microeconomics", "Cognitive Psychology", "Formal Logic",
	"Statistical Methods", "Physical Geography", "Cell Biology",
	"Database Systems", "Operating Systems", "Linear Algebra",
}

var courseLeads = []string{
	"Introduction to", "Advanced", "Principles of", "Topics in",
	"Foundations of", "Seminar in",
}

var fillerWords = []string{
	"the", "and", "with", "for", "many", "years", "community", "family",
	"member", "active", "served", "loved", "known", "friends", "where",
	"after", "before", "during", "later", "also", "devoted", "longtime",
	"dedicated", "together", "local", "area", "worked", "enjoyed",
	"gardening", "fishing", "quilting", "reading", "music", "church",
	"neighbors", "cherished", "remembered", "honor", "generous",
}

// pick returns a uniformly random element.
func pick[T any](r *rand.Rand, xs []T) T { return xs[r.Intn(len(xs))] }

// between returns a uniform integer in [lo, hi].
func between(r *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// chance reports true with probability p.
func chance(r *rand.Rand, p float64) bool { return r.Float64() < p }

// personName produces "First Last" or "First M. Last".
func personName(r *rand.Rand) string {
	first := pick(r, firstNames)
	last := pick(r, lastNames)
	if chance(r, 0.4) {
		mi := middleInitials[r.Intn(len(middleInitials))]
		return fmt.Sprintf("%s %c. %s", first, mi, last)
	}
	return first + " " + last
}

// dateIn produces "Month D, YYYY" within the given year.
func dateIn(r *rand.Rand, year int) string {
	return fmt.Sprintf("%s %d, %d", pick(r, months), between(r, 1, 28), year)
}

// phone produces "(NNN) NNN-NNNN".
func phone(r *rand.Rand) string {
	return fmt.Sprintf("(%d) 555-%04d", between(r, 201, 989), r.Intn(10000))
}

// price produces "$N,NNN" in [lo, hi].
func price(r *rand.Rand, lo, hi int) string {
	p := between(r, lo, hi)
	if p >= 1000 {
		return fmt.Sprintf("$%d,%03d", p/1000, p%1000)
	}
	return fmt.Sprintf("$%d", p)
}

// fillerSentence emits a prose sentence of roughly n characters built from
// the filler vocabulary; it never contains ontology keywords.
func fillerSentence(r *rand.Rand, n int) string {
	var b strings.Builder
	b.WriteString("He was ")
	for b.Len() < n {
		b.WriteString(pick(r, fillerWords))
		b.WriteByte(' ')
	}
	s := strings.TrimSpace(b.String())
	return s + "."
}

// fillerExact emits filler prose of exactly n characters (padded or
// truncated), for profiles that need tight control over text lengths.
func fillerExact(r *rand.Rand, n int) string {
	if n <= 0 {
		return ""
	}
	s := fillerSentence(r, n+16)
	if len(s) > n {
		s = s[:n]
	}
	for len(s) < n {
		s += "."
	}
	return s
}
