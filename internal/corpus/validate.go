package corpus

import (
	"fmt"

	"repro/internal/tagtree"
)

// Validate checks a Profile for contradictory or degenerate knob settings
// before any document is generated. The corpus's own sites are validated in
// tests; callers building custom profiles get the same guardrails.
func (p *Profile) Validate() error {
	if len(p.Container) == 0 && p.Layout == Delimited {
		return fmt.Errorf("corpus: delimited profile needs a container element")
	}
	if p.Separator == "" {
		return fmt.Errorf("corpus: profile has no separator tag")
	}
	if p.Records[0] < 2 {
		return fmt.Errorf("corpus: at least 2 records required (the paper assumes multiple records); got min %d", p.Records[0])
	}
	if p.Records[1] < p.Records[0] {
		return fmt.Errorf("corpus: record bounds inverted: [%d,%d]", p.Records[0], p.Records[1])
	}
	if p.Layout == Wrapped && p.Separator == "hr" {
		return fmt.Errorf("corpus: hr is a void element and cannot wrap records")
	}
	if p.LineStructured && p.BreakEvery > 0 {
		return fmt.Errorf("corpus: LineStructured and BreakEvery are alternative SD knobs; set one")
	}
	if p.LineStructured && p.Lines[1] < p.Lines[0] {
		return fmt.Errorf("corpus: line bounds inverted: [%d,%d]", p.Lines[0], p.Lines[1])
	}
	if p.BoldRuns[1] < p.BoldRuns[0] {
		return fmt.Errorf("corpus: bold bounds inverted: [%d,%d]", p.BoldRuns[0], p.BoldRuns[1])
	}
	if p.KeywordDropRate < 0 || p.KeywordDropRate > 1 || p.KeywordExtraRate < 0 || p.KeywordExtraRate > 1 {
		return fmt.Errorf("corpus: keyword rates must be in [0,1]")
	}
	if p.LeadTextRate < 0 || p.LeadTextRate > 1 {
		return fmt.Errorf("corpus: LeadTextRate must be in [0,1]")
	}
	// Budget check: the separator must be able to clear the 10% candidate
	// rule. Estimate tags per record from the knobs.
	perRecord := 1.0 // the separator itself
	perRecord += float64(p.BoldRuns[0]+p.BoldRuns[1]) / 2
	if p.LineStructured {
		perRecord += float64(p.Lines[0]+p.Lines[1])/2 + 1
	} else if p.BreakEvery > 0 {
		perRecord += float64(p.BaseSize) / 60 / float64(p.BreakEvery)
	} else {
		perRecord += float64(p.Breaks[0]+p.Breaks[1]) / 2
	}
	if p.ItalicNote || p.ItalicBoldPair {
		perRecord += 1.5
		if p.ItalicBoldPair {
			perRecord += 1.5 // the wrapped bolds
		}
	}
	if p.Anchors {
		perRecord += 2
	}
	if p.Layout == Wrapped {
		perRecord += 1 // the td cell
	}
	if share := 1.0 / perRecord; share < tagtree.DefaultCandidateThreshold*1.1 {
		return fmt.Errorf("corpus: separator share ≈ %.0f%% of tags per record is too close to the 10%% candidate cutoff (≈%.1f tags/record)",
			share*100, perRecord)
	}
	return nil
}
