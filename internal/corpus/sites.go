package corpus

// This file defines the synthetic analogues of the paper's experimental
// sites: the ten training newspapers of Table 1 (each contributing five
// obituary documents for Table 2 and five car-ad documents for Table 3) and
// the twenty test sites of Tables 6–9 (one document each).
//
// Each site's Profile is engineered around one observation about the
// heuristics: a tag that appears exactly once per record is statistically
// indistinguishable from the separator (its count matches the record
// estimate for OM, and a boundary-adjacent pair count matches its own count
// for RP), while bold-rich Figure-2-style prose defeats HT, line-structured
// or sentence-broken text defeats SD, and <a>-bearing <p> layouts defeat
// IT. The per-site mixes below distribute those failure modes so the
// aggregate distributions track Tables 2, 3, 6–10; EXPERIMENTS.md records
// measured-vs-paper numbers.

// Archetypes. Each profileFn returns a fresh Profile; .with tweaks knobs.

// figure2Prose is the paper's Figure 2 house style: bold-rich obituary
// prose delimited by <hr>. The bold count (~2.5 per record) sinks HT —
// exactly as the paper's own worked example shows — while every other
// heuristic succeeds.
var figure2Prose profileFn = func() Profile {
	return Profile{
		Container:  []string{"table", "tr", "td"},
		Layout:     Delimited,
		Separator:  "hr",
		Records:    [2]int{10, 22},
		BoldRuns:   [2]int{2, 3},
		Breaks:     [2]int{1, 2},
		BaseSize:   320,
		SizeJitter: 0.12,
		TrailBreak: true,
	}
}

// plainProse is sparse hr-delimited prose: roughly half the records bold
// their head and little else is marked up, so the separator holds the top
// count (HT succeeds). The occasional head bold still forms an
// <hr><b> pair whose count equals the bold count, so RP ranks <b> first —
// the one heuristic this style defeats.
var plainProse profileFn = func() Profile {
	return Profile{
		Container:  []string{"table", "tr", "td"},
		Layout:     Delimited,
		Separator:  "hr",
		Records:    [2]int{10, 22},
		BoldRuns:   [2]int{0, 1},
		Breaks:     [2]int{0, 1},
		BaseSize:   300,
		SizeJitter: 0.12,
	}
}

// tableRows wraps each record in a <tr><td> cell — the tool-generated
// layout. Both tr and td correctly separate the records, and every
// heuristic succeeds (the (tr, td) adjacency is perfect for RP, the counts
// are exact for OM and HT, and row sizes are uniform for SD).
var tableRows profileFn = func() Profile {
	return Profile{
		Container:  []string{"table"},
		Layout:     Wrapped,
		Separator:  "tr",
		TruthExtra: []string{"td"},
		Records:    [2]int{12, 25},
		BoldRuns:   [2]int{0, 1},
		Breaks:     [2]int{0, 1},
		BaseSize:   240,
		SizeJitter: 0.15,
	}
}

// pDelimited separates records with <p>.
var pDelimited profileFn = func() Profile {
	return Profile{
		Container:  []string{"div"},
		Layout:     Delimited,
		Separator:  "p",
		Records:    [2]int{10, 20},
		BoldRuns:   [2]int{2, 3},
		Breaks:     [2]int{1, 2},
		BaseSize:   280,
		SizeJitter: 0.12,
	}
}

// lineWrapped renders records as fixed-width <br>-terminated lines between
// <hr> rules: the <br> intervals are nearly constant while record sizes
// vary, so SD and HT prefer <br>.
var lineWrapped profileFn = func() Profile {
	return Profile{
		Container:      []string{"table", "tr", "td"},
		Layout:         Delimited,
		Separator:      "hr",
		Records:        [2]int{10, 20},
		BoldRuns:       [2]int{0, 1},
		LineStructured: true,
		LineLen:        58,
		Lines:          [2]int{2, 6},
	}
}

// sentenceBroken is jittered prose with a <br> after every sentence:
// sentence lengths are far more uniform than record sizes, so SD prefers
// <br> (and HT does too, by count); the trailing sentence break keeps the
// <br><hr> boundary pair intact, so RP still succeeds.
var sentenceBroken profileFn = func() Profile {
	p := figure2Prose()
	p.SizeJitter = 0.6
	p.BreakEvery = 2
	p.TrailBreak = false
	return p
}

// omOvercount is bold-rich prose where every record mentions one extra
// record-identifying phrase ("His wife passed away in 1987"), pushing the
// OM estimate toward the <br> count.
var omOvercount profileFn = func() Profile {
	p := figure2Prose()
	p.KeywordExtraRate = 1.0
	p.TrailBreak = false
	return p
}

// italicTrap is prose with exactly one <i> note per record: the italic
// count equals the record count, so OM ranks <i> first.
var italicTrap profileFn = func() Profile {
	p := figure2Prose()
	p.ItalicNote = true
	p.TrailBreak = false
	return p
}

// rpTrap is prose whose records carry <i><b>…</b></i> segments (a perfect
// repeating pair, so RP ranks <i> first) and often open with plain text
// (weakening the separator's own pairs).
var rpTrap profileFn = func() Profile {
	p := figure2Prose()
	p.ItalicBoldPair = true
	p.LeadTextRate = 0.5
	p.TrailBreak = false
	p.Breaks = [2]int{0, 1}
	return p
}

// profileFn helpers let archetypes be tweaked inline.
type profileFn func() Profile

func (f profileFn) with(mutate func(*Profile)) Profile {
	p := f()
	mutate(&p)
	return p
}

func (f profileFn) sized(base int) Profile {
	p := f()
	p.BaseSize = base
	return p
}

// Training sites: the paper's Table 1.

// TrainingDocsPerSite is the paper's five documents per site per domain.
const TrainingDocsPerSite = 5

// trainingSpec couples a site identity with its per-domain profiles.
type trainingSpec struct {
	name, url string
	obit      Profile
	carad     Profile
}

func trainingSpecs() []trainingSpec {
	return []trainingSpec{
		{
			name: "Salt Lake Tribune", url: "www.sltrib.com",
			obit:  plainProse(),
			carad: plainProse.sized(170),
		},
		{
			name: "Arizona Daily Star", url: "www.azstarnet.com",
			obit:  figure2Prose(),
			carad: figure2Prose.sized(180),
		},
		{
			name: "Houston Chronicle", url: "www.chron.com",
			obit:  italicTrap(),
			carad: italicTrap.sized(180),
		},
		{
			name: "San Francisco Chronicle", url: "www.sfgate.com",
			obit:  lineWrapped(),
			carad: lineWrapped.with(func(p *Profile) { p.Lines = [2]int{2, 5} }),
		},
		{
			name: "Seattle Times", url: "www.seatimes.com",
			obit:  tableRows(),
			carad: tableRows.sized(160),
		},
		{
			name: "GoCincinnati.com", url: "classifinder.gocinci.net",
			// Anchor-per-record (guest-book links) for obituaries: IT ranks
			// <a> above <p>. The car-ad side drops the anchors, keeping
			// Table 3's IT row at 100%.
			obit:  pDelimited.with(func(p *Profile) { p.Anchors = true }),
			carad: pDelimited.with(func(p *Profile) { p.BaseSize = 170; p.LeadTextRate = 0.5 }),
		},
		{
			name: "Standard Times", url: "www.s-t.com",
			obit:  rpTrap(),
			carad: rpTrap.sized(180),
		},
		{
			name: "Detroit Newspapers", url: "www.dnps.com",
			obit:  tableRows.sized(260),
			carad: tableRows.sized(150),
		},
		{
			name: "Connecticut Post", url: "www.connpost.com",
			obit:  sentenceBroken(),
			carad: sentenceBroken.sized(190),
		},
		{
			name: "Access Atlanta", url: "www.accessatlanta.com",
			obit:  omOvercount(),
			carad: omOvercount.sized(190),
		},
	}
}

// TrainingSites returns the Table 1 sites for the given training domain
// (Obituaries or CarAds).
func TrainingSites(d Domain) []*Site {
	var out []*Site
	for _, spec := range trainingSpecs() {
		p := spec.obit
		if d == CarAds {
			p = spec.carad
		}
		out = append(out, &Site{Name: spec.name, URL: spec.url, Domain: d, Profile: p})
	}
	return out
}

// TrainingDocuments generates the full training corpus for one domain:
// TrainingDocsPerSite documents per Table 1 site (50 documents), the corpus
// behind Table 2 (obituaries) and Table 3 (car ads).
func TrainingDocuments(d Domain) []*Document {
	var out []*Document
	for _, s := range TrainingSites(d) {
		for i := 0; i < TrainingDocsPerSite; i++ {
			out = append(out, s.Generate(i))
		}
	}
	return out
}

// Test sites: the paper's Tables 6–9, one document per site.

// TestSites returns the five test sites for the given domain, engineered to
// echo the failure patterns of the paper's corresponding table.
func TestSites(d Domain) []*Site {
	mk := func(name, url string, p Profile) *Site {
		return &Site{Name: name, URL: url, Domain: d, Profile: p}
	}
	switch d {
	case Obituaries: // Table 6
		return []*Site{
			mk("Alameda Newspaper", "www.adone.com/alameda", tableRows()),
			// Idaho State Journal: paper shows SD 2, HT 2.
			mk("Idaho State Journal", "www.journalnet.com", sentenceBroken()),
			mk("Sacramento Bee", "www.sacbee.com", tableRows.sized(280)),
			mk("Tampa Tribune", "www.tampatrib.com", plainProse()),
			// Shoals Timesdaily: paper shows HT 2 — bold-rich prose.
			mk("Shoals Timesdaily", "www.timesdaily.com", figure2Prose()),
		}
	case CarAds: // Table 7
		return []*Site{
			// Arkansas Democrat-Gazette: HT 2.
			mk("Arkansas Democrat-Gazette", "www.ardemgaz.com", figure2Prose.sized(170)),
			// Sioux City Journal: RP 2, SD 2, HT 4 — jittered sentence-broken
			// ads with italic-bold pairs and plenty of bold.
			mk("Sioux City Journal", "www.siouxcityjournal.com", sentenceBroken.with(func(p *Profile) {
				p.BaseSize = 200
				p.BoldRuns = [2]int{1, 2}
				p.ItalicBoldPair = true
				p.LeadTextRate = 0.5
			})),
			mk("Knoxville News", "www.knoxnews.com", tableRows.sized(150)),
			mk("Lincoln Journal Star", "www.nebweb.com", tableRows.sized(170)),
			// Reno Gazette-Journal: the paper's hardest row (OM 3, RP 3,
			// HT 3): an exactly-once italic-bold pair per record plus heavy
			// lead text.
			mk("Reno Gazette-Journal", "www.nevadanet.com/renogazette", figure2Prose.with(func(p *Profile) {
				p.BaseSize = 190
				p.ItalicBoldPair = true
				p.LeadTextRate = 0.7
				p.TrailBreak = false
				p.Breaks = [2]int{0, 1}
			})),
		}
	case JobAds: // Table 8
		return []*Site{
			// Baltimore Sun: HT 2.
			mk("Baltimore Sun", "www.sunspot.net", figure2Prose.sized(260)),
			// Dallas Morning News: SD 2, HT 2.
			mk("Dallas Morning News", "dallasnews.com", sentenceBroken.sized(260)),
			// Denver Post: OM 4, HT 4 — overcounted keywords plus an
			// exact-count italic.
			mk("Denver Post", "www.denverpost.com", italicTrap.with(func(p *Profile) {
				p.BaseSize = 300
				p.KeywordDropRate = 0.5
				p.Breaks = [2]int{2, 3}
			})),
			mk("Indianapolis Star/News", "www.starnews.com", tableRows.sized(220)),
			// Los Angeles Times: OM 2, RP 3, SD 2, HT 2.
			mk("Los Angeles Times", "www.latimes.com", sentenceBroken.with(func(p *Profile) {
				p.BaseSize = 260
				p.ItalicNote = true
				p.LeadTextRate = 0.6
			})),
		}
	case Courses: // Table 9
		return []*Site{
			// BYU: OM 2, RP 2 — exact-count italic plus italic-bold pairs.
			mk("BYU", "www.byu.edu", figure2Prose.with(func(p *Profile) {
				p.BaseSize = 210
				p.ItalicNote = true
				p.ItalicBoldPair = true
				p.LeadTextRate = 0.5
				p.TrailBreak = false
			})),
			mk("MIT", "registrar.mit.edu", tableRows.sized(180)),
			// KSU: SD 2, IT 2, HT 2 — <p>-separated listings with syllabus
			// links and sentence breaks.
			mk("KSU", "www.ksu.edu", pDelimited.with(func(p *Profile) {
				p.BaseSize = 220
				p.SizeJitter = 0.6
				p.BreakEvery = 2
				// Bold-rich so <b> outcounts the anchors: <a> must fail via
				// IT's list order, not also climb HT past the separator.
				p.BoldRuns = [2]int{2, 3}
				p.Anchors = true
			})),
			// USC: SD 2 — line-structured listings.
			mk("USC", "www.usc.edu", lineWrapped.with(func(p *Profile) {
				p.Container = []string{"div"}
				p.LineLen = 56
			})),
			// UT Austin: RP 2, SD 2.
			mk("UT - Austin", "www.utexas.edu", sentenceBroken.with(func(p *Profile) {
				p.BaseSize = 210
				p.ItalicBoldPair = true
				p.LeadTextRate = 0.5
			})),
		}
	default:
		return nil
	}
}

// TestDocuments generates the 20-document test corpus of Tables 6–9: one
// document per test site across all four domains.
func TestDocuments() []*Document {
	var out []*Document
	for _, d := range AllDomains {
		for _, s := range TestSites(d) {
			out = append(out, s.Generate(0))
		}
	}
	return out
}

// AllDomains lists the four application areas in the paper's order.
var AllDomains = []Domain{Obituaries, CarAds, JobAds, Courses}

// NoisyTestDocuments generates the test corpus with hand-authoring noise
// (Profile.NoiseRate) applied: roughly one record in four writes one field
// in a degraded form the recognizer misses. This is the corpus for
// measuring extraction quality in the paper's ~90% recall regime; the clean
// TestDocuments corpus extracts at essentially 100%.
func NoisyTestDocuments() []*Document {
	var out []*Document
	for _, d := range AllDomains {
		for _, s := range TestSites(d) {
			noisy := *s
			noisy.Profile.NoiseRate = 0.25
			out = append(out, noisy.Generate(0))
		}
	}
	return out
}
