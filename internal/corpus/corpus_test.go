package corpus

import (
	"strings"
	"testing"

	"repro/internal/recognizer"
	"repro/internal/tagtree"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, d := range AllDomains {
		site := TestSites(d)[0]
		a := site.Generate(3)
		b := site.Generate(3)
		if a.HTML != b.HTML || a.Records != b.Records {
			t.Errorf("%s: generation not deterministic", d)
		}
		c := site.Generate(4)
		if c.HTML == a.HTML {
			t.Errorf("%s: different indexes produced identical documents", d)
		}
	}
}

func TestTrainingCorpusSize(t *testing.T) {
	obits := TrainingDocuments(Obituaries)
	cars := TrainingDocuments(CarAds)
	if len(obits) != 50 || len(cars) != 50 {
		t.Fatalf("training corpus = %d + %d docs, want 50 + 50", len(obits), len(cars))
	}
	totalRecords := 0
	for _, d := range append(obits, cars...) {
		totalRecords += d.Records
	}
	if totalRecords < 1000 {
		t.Errorf("training corpus has %d records; the paper's corpus had thousands", totalRecords)
	}
}

func TestTestCorpusSize(t *testing.T) {
	docs := TestDocuments()
	if len(docs) != 20 {
		t.Fatalf("test corpus = %d docs, want 20", len(docs))
	}
	seen := map[Domain]int{}
	for _, d := range docs {
		seen[d.Site.Domain]++
	}
	for _, dom := range AllDomains {
		if seen[dom] != 5 {
			t.Errorf("domain %s has %d test docs, want 5", dom, seen[dom])
		}
	}
}

func TestEveryDocumentRecordCountInRange(t *testing.T) {
	for _, d := range allDocs() {
		lo, hi := d.Site.Profile.Records[0], d.Site.Profile.Records[1]
		if d.Records < lo || d.Records > hi {
			t.Errorf("%s #%d: %d records outside [%d,%d]", d.Site.Name, d.Index, d.Records, lo, hi)
		}
	}
}

func allDocs() []*Document {
	docs := TrainingDocuments(Obituaries)
	docs = append(docs, TrainingDocuments(CarAds)...)
	return append(docs, TestDocuments()...)
}

// TestSeparatorIsAlwaysCandidate guards the corpus's core invariant: the
// true separator must survive the 10% irrelevant-tag rule in the highest-
// fan-out subtree of every generated document.
func TestSeparatorIsAlwaysCandidate(t *testing.T) {
	for _, d := range allDocs() {
		tree := tagtree.Parse(d.HTML)
		hf := tree.HighestFanOut()
		cands := tagtree.Candidates(hf, tagtree.DefaultCandidateThreshold)
		found := false
		for _, c := range cands {
			if d.IsCorrect(c.Name) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s %s #%d: no correct separator among candidates %v",
				d.Site.Name, d.Site.Domain, d.Index, cands)
		}
	}
}

// TestSeparatorCountMatchesRecords: the separator tag count must track the
// record count (N for wrapped layouts, N+1 for delimited).
func TestSeparatorCountMatchesRecords(t *testing.T) {
	for _, d := range allDocs() {
		tree := tagtree.Parse(d.HTML)
		hf := tree.HighestFanOut()
		counts := tagtree.TagCounts(hf)
		got := counts[d.Site.Profile.Separator]
		want := d.Records
		if d.Site.Profile.Layout == Delimited {
			want++
		}
		if got != want {
			t.Errorf("%s %s #%d: separator count %d, want %d (records %d)",
				d.Site.Name, d.Site.Domain, d.Index, got, want, d.Records)
		}
	}
}

// TestRecordIdentifyingKeywordsPlanted: with no OM noise knobs, every record
// must contain exactly one indicator per record-identifying field — the
// OM estimate must then equal the record count.
func TestRecordIdentifyingKeywordsPlanted(t *testing.T) {
	for _, dom := range AllDomains {
		site := &Site{Name: "clean", Domain: dom, Profile: Profile{
			Container: []string{"div"},
			Layout:    Delimited,
			Separator: "hr",
			Records:   [2]int{12, 12},
			BoldRuns:  [2]int{2, 3},
			BaseSize:  250,
		}}
		doc := site.Generate(0)
		ont := dom.Ontology()
		tree := tagtree.Parse(doc.HTML)
		table := recognizer.Recognize(ont, tree, tree.HighestFanOut())
		est, ok := recognizer.EstimateRecordCount(ont, table)
		if !ok {
			t.Fatalf("%s: no estimate", dom)
		}
		if est != float64(doc.Records) {
			fields, _ := ont.RecordIdentifyingFields()
			for _, f := range fields {
				t.Logf("%s field %s count=%d", dom, f.Set.Name, recognizer.FieldCount(table, f))
			}
			t.Errorf("%s: OM estimate %.2f, want exactly %d", dom, est, doc.Records)
		}
	}
}

func TestKeywordDropReducesEstimate(t *testing.T) {
	base := Profile{
		Container: []string{"div"}, Layout: Delimited, Separator: "hr",
		Records: [2]int{20, 20}, BoldRuns: [2]int{1, 2}, BaseSize: 250,
	}
	dropped := base
	dropped.KeywordDropRate = 1.0
	est := func(p Profile) float64 {
		site := &Site{Name: "x", Domain: Obituaries, Profile: p}
		doc := site.Generate(0)
		tree := tagtree.Parse(doc.HTML)
		table := recognizer.Recognize(Obituaries.Ontology(), tree, tree.HighestFanOut())
		e, _ := recognizer.EstimateRecordCount(Obituaries.Ontology(), table)
		return e
	}
	if e1, e2 := est(base), est(dropped); e2 >= e1 {
		t.Errorf("drop rate 1.0 estimate %.2f should be below clean estimate %.2f", e2, e1)
	}
}

func TestWrappedLayoutShape(t *testing.T) {
	site := TestSites(Obituaries)[0] // Alameda: tableRows
	doc := site.Generate(0)
	tree := tagtree.Parse(doc.HTML)
	table := tree.Root.Find("table")
	if table == nil {
		t.Fatal("no table element")
	}
	if got := table.FanOut(); got != doc.Records {
		t.Errorf("table fan-out %d, want %d rows", got, doc.Records)
	}
	for _, tr := range table.Children {
		if tr.Name != "tr" {
			t.Errorf("table child %s, want tr", tr.Name)
		}
	}
}

func TestDocumentWellFormedEnough(t *testing.T) {
	// Every document should parse into a tree whose highest-fan-out subtree
	// is the intended container element.
	for _, d := range allDocs() {
		tree := tagtree.Parse(d.HTML)
		hf := tree.HighestFanOut()
		container := d.Site.Profile.Container
		wantName := "table" // wrapped layout: the table itself
		if d.Site.Profile.Layout == Delimited {
			wantName = container[len(container)-1]
		}
		if hf.Name != wantName {
			t.Errorf("%s %s #%d: highest-fan-out is <%s>, want <%s>",
				d.Site.Name, d.Site.Domain, d.Index, hf.Name, wantName)
		}
	}
}

func TestLineStructuredLinesAreUniform(t *testing.T) {
	site := &Site{Name: "lines", Domain: CarAds, Profile: Profile{
		Container: []string{"div"}, Layout: Delimited, Separator: "hr",
		Records: [2]int{10, 10}, LineStructured: true, LineLen: 50,
		Lines: [2]int{3, 6},
	}}
	doc := site.Generate(0)
	for _, line := range strings.Split(doc.HTML, "<br>") {
		line = strings.TrimSpace(line)
		if i := strings.LastIndexByte(line, '>'); i >= 0 {
			line = line[i+1:]
		}
		if len(line) > 60 {
			t.Errorf("line exceeds width budget: %q (%d chars)", line, len(line))
		}
	}
}

func TestIsCorrect(t *testing.T) {
	d := &Document{Truth: []string{"tr", "td"}}
	if !d.IsCorrect("tr") || !d.IsCorrect("td") || d.IsCorrect("b") {
		t.Error("IsCorrect wrong")
	}
}

func TestDomainHelpers(t *testing.T) {
	for _, d := range AllDomains {
		if d.Ontology() == nil {
			t.Errorf("%s: no ontology", d)
		}
		if d.Title() == string(d) {
			t.Errorf("%s: no human title", d)
		}
	}
	if Domain("bogus").Title() != "bogus" {
		t.Error("unknown domain title should fall back to name")
	}
}

func TestProfileTruth(t *testing.T) {
	p := Profile{Separator: "tr", TruthExtra: []string{"td"}}
	got := p.Truth()
	if len(got) != 2 || got[0] != "tr" || got[1] != "td" {
		t.Errorf("Truth = %v", got)
	}
}

// TestBoundariesCoverEveryRecord pins the planted ground truth the
// evaluation harness scores against: one byte span per record, ascending
// and non-overlapping, starting at the record's separator tag, with
// record-identifying text inside the span.
func TestBoundariesCoverEveryRecord(t *testing.T) {
	for _, d := range AllDomains {
		for _, site := range append(TrainingSites(d), TestSites(d)...) {
			doc := site.Generate(0)
			if len(doc.Boundaries) != doc.Records {
				t.Fatalf("%s: %d boundary spans for %d records",
					site.Name, len(doc.Boundaries), doc.Records)
			}
			prevEnd := 0
			for i, sp := range doc.Boundaries {
				if sp.Start < prevEnd || sp.End <= sp.Start || sp.End > len(doc.HTML) {
					t.Fatalf("%s: span %d %+v malformed (prev end %d, doc %d bytes)",
						site.Name, i, sp, prevEnd, len(doc.HTML))
				}
				if !strings.HasPrefix(doc.HTML[sp.Start:], "<"+site.Profile.Separator) {
					t.Fatalf("%s: span %d does not start at a <%s> tag: %q...",
						site.Name, i, site.Profile.Separator, doc.HTML[sp.Start:sp.Start+12])
				}
				if body := doc.HTML[sp.Start:sp.End]; !strings.ContainsAny(body, "abcdefghijklmnopqrstuvwxyz") {
					t.Fatalf("%s: span %d carries no text", site.Name, i)
				}
				prevEnd = sp.End
			}
		}
	}
}

// TestBoundariesDeterministic: ground truth, like the documents themselves,
// is identical across generations.
func TestBoundariesDeterministic(t *testing.T) {
	site := TestSites(CarAds)[0]
	a, b := site.Generate(1), site.Generate(1)
	if len(a.Boundaries) != len(b.Boundaries) {
		t.Fatalf("boundary counts differ: %d vs %d", len(a.Boundaries), len(b.Boundaries))
	}
	for i := range a.Boundaries {
		if a.Boundaries[i] != b.Boundaries[i] {
			t.Fatalf("span %d differs: %+v vs %+v", i, a.Boundaries[i], b.Boundaries[i])
		}
	}
}
