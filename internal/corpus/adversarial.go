package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Adversarial documents probe the paper's stated assumptions rather than
// its heuristics: pages that violate "the subtree with the highest fan-out
// contains the records" (§3) or "each document has multiple records and at
// least one record-separator tag" (§1). The paper explicitly scopes these
// out ("we do not consider Web documents that do not satisfy this
// conjecture"); the cases below document what the implementation actually
// does on them, and the classifier's role in catching them first.

// AdversarialCase is one assumption-violating document with the expected
// behaviour documented.
type AdversarialCase struct {
	Name string
	// HTML is the page.
	HTML string
	// Violates names the violated assumption.
	Violates string
	// ConjectureHolds reports whether the highest-fan-out subtree still
	// contains the records (when there are records at all).
	ConjectureHolds bool
}

// AdversarialCases generates the assumption-violating pages. Deterministic.
func AdversarialCases() []AdversarialCase {
	r := rand.New(rand.NewSource(424242))

	// Case 1: a navigation list with more entries than the record list —
	// the highest-fan-out conjecture picks the nav <ul>, not the records.
	var nav strings.Builder
	nav.WriteString("<html><body><ul>\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&nav, `<li><a href="s%d.html">Section %d</a>`+"\n", i, i)
	}
	nav.WriteString("</ul>\n<div>\n")
	for i := 0; i < 4; i++ {
		var rec strings.Builder
		obituaryRecord(&rec, r, &Profile{BoldRuns: [2]int{1, 1}, BaseSize: 200}, omPlan{dropField: -1, extraField: -1})
		nav.WriteString("<hr>" + rec.String() + "\n")
	}
	nav.WriteString("<hr></div></body></html>")

	// Case 2: two record groups of different applications on one page; the
	// algorithm can only find one subtree.
	var dual strings.Builder
	dual.WriteString("<html><body><div id=obits>\n")
	for i := 0; i < 8; i++ {
		var rec strings.Builder
		obituaryRecord(&rec, r, &Profile{BoldRuns: [2]int{1, 1}, BaseSize: 180}, omPlan{dropField: -1, extraField: -1})
		dual.WriteString("<hr>" + rec.String() + "\n")
	}
	dual.WriteString("<hr></div>\n<div id=cars>\n")
	for i := 0; i < 6; i++ {
		var rec strings.Builder
		carAdRecord(&rec, r, &Profile{BoldRuns: [2]int{1, 1}, BaseSize: 150}, omPlan{dropField: -1, extraField: -1})
		dual.WriteString("<p>" + rec.String() + "\n")
	}
	dual.WriteString("</div></body></html>")

	// Case 3: records exist but no tag separates them — boundaries are
	// blank lines in a <pre> block (violates "at least one record-separator
	// tag").
	var pre strings.Builder
	pre.WriteString("<html><body><pre>\n")
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&pre, "Person %d died on March %d, 1998. Funeral services pending. Interment follows.\n\n", i, 1+i)
	}
	pre.WriteString("</pre></body></html>")

	return []AdversarialCase{
		{
			Name:            "nav-dominant",
			HTML:            nav.String(),
			Violates:        "highest-fan-out conjecture (§3): the nav list out-fans the record group",
			ConjectureHolds: false,
		},
		{
			Name:            "two-record-groups",
			HTML:            dual.String(),
			Violates:        "single record group per page (implicit in §3's single-subtree search)",
			ConjectureHolds: true, // the larger group still wins
		},
		{
			Name:            "no-separator-tag",
			HTML:            pre.String(),
			Violates:        "assumption (2) of §1: no record-separator tag exists",
			ConjectureHolds: false,
		},
	}
}
