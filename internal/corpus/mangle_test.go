package corpus

import (
	"strings"
	"testing"

	"repro/internal/tagtree"
)

func TestMangleChangesSurface(t *testing.T) {
	doc := TestSites(Obituaries)[0].Generate(0)
	mangled := Mangle(doc.HTML, 1)
	if mangled == doc.HTML {
		t.Fatal("mangling left the document unchanged")
	}
	// It must actually exercise the normalization paths.
	if !strings.Contains(mangled, "<!--") {
		t.Error("no comments injected")
	}
}

func TestMangleDeterministic(t *testing.T) {
	doc := TestSites(CarAds)[0].Generate(0)
	if Mangle(doc.HTML, 7) != Mangle(doc.HTML, 7) {
		t.Error("mangle not deterministic for equal seeds")
	}
	if Mangle(doc.HTML, 7) == Mangle(doc.HTML, 8) {
		t.Error("mangle identical across different seeds")
	}
}

// TestManglePreservesTreeStructure: dropped omissible end-tags, case
// changes, comments, and whitespace must all normalize away — the tag tree
// of the mangled document equals the original's.
func TestManglePreservesTreeStructure(t *testing.T) {
	for _, d := range TestDocuments() {
		for seed := int64(0); seed < 3; seed++ {
			orig := tagtree.Parse(d.HTML)
			mang := tagtree.Parse(Mangle(d.HTML, seed))
			if !tagtree.Equal(orig, mang) {
				t.Errorf("%s %s seed %d: tree changed under mangling",
					d.Site.Name, d.Site.Domain, seed)
			}
		}
	}
}
