// Package corpus generates the synthetic Web-document corpus that stands in
// for the paper's 1998 newspaper and university pages (DESIGN.md documents
// the substitution). Every document is deterministic in (site, index), and
// every site carries a Profile whose knobs control exactly the properties
// the five heuristics observe:
//
//   - separator tag identity and layout (IT),
//   - per-record bold/break tag counts (HT),
//   - record-size uniformity vs. fixed-width line structure (SD),
//   - tag adjacency at record boundaries (RP),
//   - record-identifying keyword regularity (OM).
//
// The training sites (Table 1 analogues) and test sites (Tables 6–9
// analogues) live in sites.go.
package corpus

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"repro/internal/ontology"
	"repro/internal/tagtree"
)

// Domain is an application area of the paper's experiments.
type Domain string

// The four application areas.
const (
	Obituaries Domain = "obituary"
	CarAds     Domain = "carad"
	JobAds     Domain = "jobad"
	Courses    Domain = "course"
)

// Ontology returns the built-in application ontology for the domain.
func (d Domain) Ontology() *ontology.Ontology { return ontology.Builtin(string(d)) }

// Title returns a human-readable name for the domain.
func (d Domain) Title() string {
	switch d {
	case Obituaries:
		return "obituaries"
	case CarAds:
		return "car advertisements"
	case JobAds:
		return "computer job advertisements"
	case Courses:
		return "university course descriptions"
	default:
		return string(d)
	}
}

// Layout selects how records relate to the separator tag.
type Layout int

// Layouts.
const (
	// Delimited records are separated by a void/boundary tag (<hr>, <p>,
	// <br>) with the record content between occurrences.
	Delimited Layout = iota
	// Wrapped records are each enclosed by the separator element
	// (<tr>…</tr> table rows).
	Wrapped
)

// Profile is the knob set describing one site's page style.
type Profile struct {
	// Container is the element path under <body> whose innermost element
	// holds the records (and becomes the highest-fan-out subtree).
	Container []string
	// Layout selects delimiter- vs wrapper-style records.
	Layout Layout
	// Separator is the correct record-separator tag.
	Separator string
	// TruthExtra lists additional tags that also correctly separate the
	// records (a wrapped <tr> whose single <td> is an equally correct
	// separator).
	TruthExtra []string
	// Records bounds the records per document.
	Records [2]int

	// BoldRuns bounds the <b> segments per record (HT pressure).
	BoldRuns [2]int
	// Breaks bounds the <br> tags per record in prose style.
	Breaks [2]int
	// BreakEvery, when positive, inserts a <br> after every k-th sentence
	// instead of at random spots. Sentence-group lengths are far more
	// uniform than jittered record sizes, so with SizeJitter this is the
	// prose-style SD-failure knob (the line-break tag's intervals beat the
	// separator's) while keeping the <br> count low enough that the
	// separator stays above the 10%% candidate threshold.
	BreakEvery int
	// ItalicNote adds exactly one <i>…</i> segment per record. On a
	// Delimited layout this is the OM-failure knob: the italic's count
	// equals the record count exactly, beating the separator's count of
	// records+1.
	ItalicNote bool
	// ItalicBoldPair adds one or two <i><b>…</b></i> segments per record.
	// The italic immediately wraps a bold, so the (i, b) adjacency is a
	// perfect repeating pattern — the RP-failure knob — while the italic
	// count (≈1.5 per record) stays away from the record count, leaving OM
	// unaffected.
	ItalicBoldPair bool
	// Anchors adds one or two <a href> links per record (guest books,
	// mailto contacts). With a <p>-separated layout this is the IT-failure
	// knob: <a> precedes <p> on the identifiable-separator list.
	Anchors bool
	// LeadTextRate is the fraction of records beginning with plain text
	// before their first tag (defeats the separator's RP adjacency).
	LeadTextRate float64
	// TrailBreak ends each record with a <br> just before the next
	// separator (creates the <br><sep> RP pair).
	TrailBreak bool

	// LineStructured renders records as fixed-width lines each ended by
	// <br>, making <br> intervals far more uniform than record sizes (the
	// SD failure mode). LineLen is the line width; Lines bounds the line
	// count per record.
	LineStructured bool
	LineLen        int
	Lines          [2]int
	// BaseSize is the target plain-text size per prose record; SizeJitter
	// is the relative uniform jitter applied to it (SD pressure).
	BaseSize   int
	SizeJitter float64

	// KeywordDropRate is the per-record probability of omitting one
	// record-identifying keyword (OM undercount); KeywordExtraRate the
	// probability of emitting a duplicate (OM overcount).
	KeywordDropRate  float64
	KeywordExtraRate float64
	// NoiseRate is the per-record probability of writing one field value in
	// a degraded form the recognizer's patterns miss (an abbreviated month,
	// a slash-formatted phone number) while the fact is still planted as
	// ground truth — the knob that gives extraction the paper's ~90% recall
	// instead of a synthetic 100%.
	NoiseRate float64
}

// Truth returns every correct separator tag for the profile.
func (p *Profile) Truth() []string {
	return append([]string{p.Separator}, p.TruthExtra...)
}

// Site is one synthetic Web site.
type Site struct {
	// Name and URL echo the paper's site tables ("Salt Lake Tribune",
	// "www.sltrib.com").
	Name string
	URL  string
	// Domain is the application area of the site's documents.
	Domain Domain
	// Profile is the page style shared by the site's documents.
	Profile Profile
}

// Fact is the planted ground truth of one record: object-set name → the
// value the generator wrote into the page. Only fields the ontology can
// extract as constants are recorded.
type Fact map[string]string

// Document is one generated page with its ground truth.
type Document struct {
	Site  *Site
	Index int
	HTML  string
	// Truth lists every correct record-separator tag.
	Truth []string
	// Records is the number of records the page contains.
	Records int
	// Facts holds the planted field values of each record, in page order —
	// the ground truth for extraction-quality measurement.
	Facts []Fact
	// Boundaries are the ground-truth record boundaries: one byte span per
	// record in page order, running from the record's separator tag to the
	// next record's separator (delimited layouts) or from the wrapping
	// element to the next one, with the last record closed at the record
	// container's end tag. This is exactly the segmentation an ideal
	// splitter produces given the correct separator, so extractor output is
	// comparable span-by-span (see internal/eval's structural matching).
	Boundaries []tagtree.Span
}

// IsCorrect reports whether tag is one of the document's correct separators.
func (d *Document) IsCorrect(tag string) bool {
	for _, t := range d.Truth {
		if t == tag {
			return true
		}
	}
	return false
}

// seed derives the document's deterministic seed from site name and index.
func (s *Site) seed(index int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s/%d", s.Name, s.Domain, index)
	return int64(h.Sum64())
}

// recordWriter emits the inner markup of one record (no separators) and
// returns the planted facts. Domain writers must honor the profile's knobs.
type recordWriter func(w *strings.Builder, r *rand.Rand, p *Profile, om omPlan) Fact

// omPlan tells the record writer how to treat the record-identifying
// keywords of this record.
type omPlan struct {
	// dropField is the 0-based record-identifying field to omit, or -1.
	dropField int
	// extraField is the 0-based field to duplicate, or -1.
	extraField int
	// noisy requests one field value be written in a degraded form.
	noisy bool
}

func newOMPlan(r *rand.Rand, p *Profile) omPlan {
	plan := omPlan{dropField: -1, extraField: -1}
	if chance(r, p.KeywordDropRate) {
		plan.dropField = r.Intn(3)
	}
	if chance(r, p.KeywordExtraRate) {
		plan.extraField = r.Intn(3)
	}
	// Guard the draw: consuming randomness when the knob is off would
	// change every clean document's content.
	if p.NoiseRate > 0 {
		plan.noisy = chance(r, p.NoiseRate)
	}
	return plan
}

// writerFor returns the domain's record writer.
func writerFor(d Domain) recordWriter {
	switch d {
	case Obituaries:
		return obituaryRecord
	case CarAds:
		return carAdRecord
	case JobAds:
		return jobAdRecord
	case Courses:
		return courseRecord
	default:
		panic("corpus: unknown domain " + string(d))
	}
}

// Generate renders document index for the site. The same (site, index)
// always yields the identical document.
func (s *Site) Generate(index int) *Document {
	r := rand.New(rand.NewSource(s.seed(index)))
	p := &s.Profile
	n := between(r, p.Records[0], p.Records[1])
	write := writerFor(s.Domain)

	var body strings.Builder
	var facts []Fact
	// marks records the body-relative start of each record's markup; tail is
	// where the record region ends (the trailing separator on delimited
	// layouts). Both become Document.Boundaries once the body's offset in
	// the full page is known.
	marks := make([]int, 0, n)
	for i := 0; i < n; i++ {
		var rec strings.Builder
		facts = append(facts, write(&rec, r, p, newOMPlan(r, p)))
		marks = append(marks, body.Len())
		if p.Layout == Wrapped {
			body.WriteString(wrapRecord(p.Separator, rec.String()))
			body.WriteByte('\n')
		} else {
			body.WriteString("<" + p.Separator + ">\n")
			body.WriteString(rec.String())
			body.WriteByte('\n')
		}
	}
	tail := body.Len()
	if p.Layout == Delimited {
		body.WriteString("<" + p.Separator + ">\n")
	}

	var doc strings.Builder
	doc.WriteString("<html><head><title>")
	doc.WriteString(s.Name)
	doc.WriteString(" - ")
	doc.WriteString(s.Domain.Title())
	doc.WriteString("</title></head>\n<body bgcolor=\"#FFFFFF\">\n")
	fmt.Fprintf(&doc, "<h1 align=\"left\">%s</h1> %s\n", pageHeading(s.Domain), dateIn(r, 1998))
	for _, c := range p.Container {
		doc.WriteString("<" + c + ">")
	}
	doc.WriteByte('\n')
	bodyOff := doc.Len()
	doc.WriteString(body.String())
	// The last wrapped record runs to the end tag of the innermost container
	// (the highest-fan-out subtree's close), which is written first below.
	innerEnd := doc.Len()
	for i := len(p.Container) - 1; i >= 0; i-- {
		doc.WriteString("</" + p.Container[i] + ">")
		if i == len(p.Container)-1 {
			innerEnd = doc.Len()
		}
	}
	doc.WriteString("\nAll material is copyrighted. <a href=\"index.html\">Home</a>\n</body>\n</html>\n")

	bounds := make([]tagtree.Span, n)
	for i, m := range marks {
		end := innerEnd
		switch {
		case i+1 < len(marks):
			end = bodyOff + marks[i+1]
		case p.Layout == Delimited:
			end = bodyOff + tail
		}
		bounds[i] = tagtree.Span{Start: bodyOff + m, End: end}
	}

	return &Document{
		Site:       s,
		Index:      index,
		HTML:       doc.String(),
		Truth:      p.Truth(),
		Records:    n,
		Facts:      facts,
		Boundaries: bounds,
	}
}

// wrapRecord encloses the record in the separator element, using the
// conventional inner cell for table rows.
func wrapRecord(sep, inner string) string {
	if sep == "tr" {
		return "<tr><td>" + inner + "</td></tr>"
	}
	return "<" + sep + ">" + inner + "</" + sep + ">"
}

func pageHeading(d Domain) string {
	switch d {
	case Obituaries:
		return "Funeral Notices - "
	case CarAds:
		return "Autos For Sale - "
	case JobAds:
		return "Computer &amp; Technical Employment - "
	case Courses:
		return "Course Catalog - "
	default:
		return "Classifieds - "
	}
}
