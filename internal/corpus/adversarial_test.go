package corpus

import (
	"testing"

	"repro/internal/tagtree"
)

// TestAdversarialCasesDocumentAssumptionFailures pins down what happens on
// pages that violate the paper's stated input assumptions — the behaviour
// is documented, not hidden.
func TestAdversarialCasesDocumentAssumptionFailures(t *testing.T) {
	cases := AdversarialCases()
	if len(cases) != 3 {
		t.Fatalf("cases = %d", len(cases))
	}
	byName := map[string]AdversarialCase{}
	for _, c := range cases {
		byName[c.Name] = c
	}

	// nav-dominant: the highest-fan-out subtree is the nav list, exactly
	// the failure the paper scopes out with its conjecture.
	nav := byName["nav-dominant"]
	tree := tagtree.Parse(nav.HTML)
	if hf := tree.HighestFanOut(); hf.Name != "ul" {
		t.Errorf("nav-dominant highest fan-out = %s; the case should defeat the conjecture", hf.Name)
	}
	if nav.ConjectureHolds {
		t.Error("nav-dominant should be marked as defeating the conjecture")
	}

	// two-record-groups: the obituary group (8 records) out-fans the car
	// group (6) — the conjecture picks it and the car ads are missed.
	dual := byName["two-record-groups"]
	tree = tagtree.Parse(dual.HTML)
	hf := tree.HighestFanOut()
	if hf.Name != "div" {
		t.Errorf("two-groups highest fan-out = %s, want the obituary div", hf.Name)
	}
	counts := tagtree.TagCounts(hf)
	if counts["hr"] != 9 {
		t.Errorf("winning group should be the hr-separated obituaries; counts = %v", counts)
	}
	if counts["p"] != 0 {
		t.Errorf("the car-ad group should be outside the winning subtree; counts = %v", counts)
	}

	// no-separator-tag: the record prose lives in one <pre> region with no
	// repeating tag — whatever structural tags become candidates, none
	// occurs once per record, so no candidate can separate the six records.
	pre := byName["no-separator-tag"]
	tree = tagtree.Parse(pre.HTML)
	hf = tree.HighestFanOut()
	for _, c := range tagtree.Candidates(hf, tagtree.DefaultCandidateThreshold) {
		if c.Count >= 6 {
			t.Errorf("candidate %v repeats like a separator; the case should have none", c)
		}
	}
}

func TestAdversarialDeterministic(t *testing.T) {
	a := AdversarialCases()
	b := AdversarialCases()
	for i := range a {
		if a[i].HTML != b[i].HTML {
			t.Errorf("case %s not deterministic", a[i].Name)
		}
	}
}
