package corpus

import (
	"strings"
	"testing"
)

// TestAllShippedProfilesValidate: every training and test site must pass
// its own guardrails.
func TestAllShippedProfilesValidate(t *testing.T) {
	check := func(name string, p Profile) {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	for _, d := range []Domain{Obituaries, CarAds} {
		for _, s := range TrainingSites(d) {
			check(s.Name+"/"+string(d), s.Profile)
		}
	}
	for _, d := range AllDomains {
		for _, s := range TestSites(d) {
			check(s.Name+"/"+string(d), s.Profile)
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	base := func() Profile {
		return Profile{
			Container: []string{"div"}, Layout: Delimited, Separator: "hr",
			Records: [2]int{10, 20}, BoldRuns: [2]int{0, 1}, BaseSize: 300,
		}
	}
	cases := []struct {
		name   string
		mutate func(*Profile)
		want   string
	}{
		{"no separator", func(p *Profile) { p.Separator = "" }, "no separator"},
		{"no container", func(p *Profile) { p.Container = nil }, "container"},
		{"single record", func(p *Profile) { p.Records = [2]int{1, 1} }, "at least 2"},
		{"inverted records", func(p *Profile) { p.Records = [2]int{20, 10} }, "inverted"},
		{"void wrapper", func(p *Profile) { p.Layout = Wrapped; p.Separator = "hr" }, "void"},
		{"two SD knobs", func(p *Profile) { p.LineStructured = true; p.BreakEvery = 2; p.Lines = [2]int{2, 4} }, "alternative SD knobs"},
		{"bad rate", func(p *Profile) { p.KeywordDropRate = 1.5 }, "rates"},
		{"bad lead", func(p *Profile) { p.LeadTextRate = -0.1 }, "LeadTextRate"},
		{"inverted bolds", func(p *Profile) { p.BoldRuns = [2]int{3, 1} }, "bold bounds"},
		{"threshold crowd-out", func(p *Profile) {
			p.LineStructured = true
			p.Lines = [2]int{8, 14}
			p.BoldRuns = [2]int{2, 3}
			p.Anchors = true
		}, "10% candidate cutoff"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := base()
			c.mutate(&p)
			err := p.Validate()
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}
