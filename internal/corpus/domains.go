package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Record-identifying field indices per domain, matching the built-in
// ontologies' §4.5 selections. An omPlan's dropField/extraField refer to
// these positions.
//
//	obituary: 0 DeathDate, 1 FuneralService, 2 Interment
//	carad:    0 Price,     1 Year,           2 Phone
//	jobad:    0 HowToApply, 1 ContactEmail,  2 JobCode
//	course:   0 Credits,   1 Instructor,     2 CourseCode

// record assembles the common structure of a prose or line-structured
// record from a head fragment (markup allowed) and body sentences
// (markup allowed only in prose mode).
type record struct {
	head      string
	sentences []string
}

// emit renders the record into w per the profile's layout knobs.
func (rec record) emit(w *strings.Builder, r *rand.Rand, p *Profile) {
	if p.LineStructured {
		rec.emitLines(w, r, p)
		return
	}
	rec.emitProse(w, r, p)
}

// emitProse writes head + sentences + filler to the profile's target size,
// scattering <br> tags and an optional trailing <br>.
func (rec record) emitProse(w *strings.Builder, r *rand.Rand, p *Profile) {
	target := p.BaseSize
	if target == 0 {
		target = 300
	}
	if p.SizeJitter > 0 {
		target = int(float64(target) * (1 + p.SizeJitter*(2*r.Float64()-1)))
	}

	sentences := append([]string(nil), rec.sentences...)
	textLen := func() int {
		n := approxTextLen(rec.head)
		for _, s := range sentences {
			n += approxTextLen(s) + 1
		}
		return n
	}
	for textLen() < target {
		sentences = append(sentences, fillerSentence(r, min(80, target-textLen()+10)))
	}

	// Sentence order within a record is shuffled: field statistics are
	// order-independent (keyword and value share a sentence), and random
	// positions keep inline tags' SD intervals honestly irregular.
	r.Shuffle(len(sentences), func(i, j int) {
		sentences[i], sentences[j] = sentences[j], sentences[i]
	})

	breakAfter := map[int]bool{}
	if p.BreakEvery > 0 {
		for i := p.BreakEvery; i <= len(sentences); i += p.BreakEvery {
			breakAfter[i] = true
		}
	} else {
		breaks := between(r, p.Breaks[0], p.Breaks[1])
		for i := 0; i < breaks; i++ {
			breakAfter[r.Intn(len(sentences)+1)] = true
		}
	}

	w.WriteString(rec.head)
	if breakAfter[0] {
		w.WriteString("<br>")
	}
	w.WriteByte(' ')
	for i, s := range sentences {
		w.WriteString(s)
		if breakAfter[i+1] {
			w.WriteString("<br>")
		}
		w.WriteByte(' ')
	}
	if p.TrailBreak {
		w.WriteString("<br>")
	}
}

// emitLines writes the head on its own line and packs plain-text sentences
// into fixed-width lines, each terminated by <br>; the line count is drawn
// from the profile. Sentences in line mode must be markup-free.
func (rec record) emitLines(w *strings.Builder, r *rand.Rand, p *Profile) {
	lineLen := p.LineLen
	if lineLen == 0 {
		lineLen = 60
	}
	lines := between(r, p.Lines[0], p.Lines[1])
	target := lines * lineLen

	var text strings.Builder
	for _, s := range rec.sentences {
		// Line mode is plain-text only: inline markup would inflate tag
		// counts and break line-width uniformity.
		text.WriteString(stripTags(s))
		text.WriteByte(' ')
	}
	for text.Len() < target {
		text.WriteString(fillerSentence(r, min(80, target-text.Len()+10)))
		text.WriteByte(' ')
	}

	w.WriteString(rec.head)
	w.WriteString("<br>\n")
	words := strings.Fields(text.String())
	var line strings.Builder
	emitted := 0
	for _, word := range words {
		if line.Len() > 0 && line.Len()+1+len(word) > lineLen {
			w.WriteString(line.String())
			w.WriteString("<br>\n")
			line.Reset()
			emitted++
			if emitted >= lines {
				return
			}
		}
		if line.Len() > 0 {
			line.WriteByte(' ')
		}
		line.WriteString(word)
	}
	if line.Len() > 0 {
		w.WriteString(line.String())
		w.WriteString("<br>\n")
	}
}

// stripTags removes markup from an HTML fragment, keeping its text.
func stripTags(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	inTag := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '<':
			inTag = true
		case s[i] == '>':
			inTag = false
		case !inTag:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// approxTextLen estimates the plain-text length of an HTML fragment.
func approxTextLen(s string) int {
	n, inTag := 0, false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '<':
			inTag = true
		case s[i] == '>':
			inTag = false
		case !inTag:
			n++
		}
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// abbreviateMonth rewrites "September 30, 1998" as "Sept. 30, 1998" — a
// common hand-authored form the ontology's month lexicon does not cover.
func abbreviateMonth(date string) string {
	i := strings.IndexByte(date, ' ')
	if i < 4 {
		return date
	}
	return date[:4] + ". " + date[i+1:]
}

// freeProse reports layouts where extra optional sentences are harmless:
// prose without per-sentence breaks or fixed-width lines. On BreakEvery and
// LineStructured sites every added sentence adds a <br>, eroding the
// separator's share of the 10%% candidate threshold.
func freeProse(p *Profile) bool {
	return p.BreakEvery == 0 && !p.LineStructured
}

// lead prefixes the head with plain text for a LeadTextRate fraction of
// records, defeating separator→tag adjacency for RP.
func lead(r *rand.Rand, p *Profile, phrase string) string {
	if chance(r, p.LeadTextRate) {
		return phrase
	}
	return ""
}

// boldBudget draws the record's total <b>-run budget from the profile.
func boldBudget(r *rand.Rand, p *Profile) int {
	return between(r, p.BoldRuns[0], p.BoldRuns[1])
}

// maybeBold wraps s in <b> when the budget allows, decrementing it.
func maybeBold(budget *int, s string) string {
	if *budget <= 0 {
		return s
	}
	*budget--
	return "<b>" + s + "</b>"
}

// boldExtras renders the remaining budget as standalone bold runs.
func boldExtras(r *rand.Rand, budget int, pool []string) []string {
	var out []string
	for i := 0; i < budget; i++ {
		out = append(out, "<b>"+pick(r, pool)+"</b>"+pickPunct(r))
	}
	return out
}

func pickPunct(r *rand.Rand) string {
	if chance(r, 0.5) {
		return ","
	}
	return "."
}

// anchors renders the profile's optional link segments: exactly two
// <a href> sentences per record. Two, not one-or-two: a tag whose count
// can land on the record count would tie the separator under OM (the
// exactly-once trap), and this knob's purpose is only IT's list order.
func anchors(r *rand.Rand, p *Profile, href, label string) []string {
	if !p.Anchors {
		return nil
	}
	_ = r
	return []string{
		`See <a href="` + href + `">` + label + `</a>.`,
		`Or visit the <a href="index.html">front page</a>.`,
	}
}

// italics renders the profile's optional italic segments: exactly one plain
// <i> for ItalicNote (the OM-failure knob), one-to-two <i><b>…</b></i>
// pairs for ItalicBoldPair (the RP-failure knob), or exactly one such pair
// when both are set (tripping OM and RP together).
func italics(r *rand.Rand, p *Profile, note string) []string {
	switch {
	case p.ItalicNote && p.ItalicBoldPair:
		return []string{"<i><b>" + note + "</b></i>."}
	case p.ItalicBoldPair:
		n := between(r, 1, 2)
		out := make([]string, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, "<i><b>"+note+"</b></i>.")
		}
		return out
	case p.ItalicNote:
		return []string{"<i>" + note + "</i>."}
	default:
		return nil
	}
}

// obituaryRecord emits one obituary in the Figure 2 style.
func obituaryRecord(w *strings.Builder, r *rand.Rand, p *Profile, om omPlan) Fact {
	name := personName(r)
	deathYear := 1998
	budget := boldBudget(r, p)
	head := lead(r, p, "Our beloved ") + maybeBold(&budget, name)
	fact := Fact{"DeceasedName": name}

	var sents []string
	if om.dropField != 0 {
		verb := "died on"
		if chance(r, 0.5) {
			verb = "passed away on"
		}
		deathDate := dateIn(r, deathYear)
		fact["DeathDate"] = deathDate
		written := deathDate
		if om.noisy {
			// Hand-abbreviated month: the ontology's date pattern misses it,
			// but the planted fact still names the full form.
			written = abbreviateMonth(deathDate)
		}
		sents = append(sents, fmt.Sprintf("%s %s.", verb, written))
	} else {
		sents = append(sents, fmt.Sprintf("left us %s.", dateIn(r, deathYear)))
	}
	birthDate := dateIn(r, between(r, 1905, 1960))
	fact["BirthDate"] = birthDate
	sents = append(sents, fmt.Sprintf("%s was born on %s in %s.",
		strings.Split(name, " ")[0], birthDate, pick(r, cities)))
	if freeProse(p) && chance(r, 0.6) {
		sents = append(sents, fmt.Sprintf("He reached age %d surrounded by family.", between(r, 38, 96)))
	}
	if freeProse(p) && chance(r, 0.5) {
		spouse := personName(r)
		sents = append(sents, fmt.Sprintf("He married %s and they made their home in %s.",
			spouse, pick(r, cities)))
	}

	if om.dropField != 1 {
		sents = append(sents, fmt.Sprintf("Funeral services will be held %s at 11:00 a.m. at %s.",
			pick(r, weekdays), maybeBold(&budget, pick(r, mortuaries))))
	}
	if om.extraField == 1 {
		sents = append(sents, "A memorial service for the family will follow.")
	}
	if om.dropField != 2 {
		sents = append(sents, fmt.Sprintf("Interment will follow in %s.", pick(r, cemeteries)))
	}
	if om.extraField == 0 {
		sents = append(sents, fmt.Sprintf("His wife passed away in %d.", between(r, 1980, 1995)))
	}
	if om.extraField == 2 {
		sents = append(sents, "Burial will be private.")
	}
	sents = append(sents, italics(r, p, "The family suggests donations to the "+pick(r, churches))...)
	sents = append(sents, anchors(r, p, "guestbook.html", "guest book")...)
	sents = append(sents, boldExtras(r, budget, churches)...)

	record{head: head, sentences: sents}.emit(w, r, p)
	return fact
}

// carAdRecord emits one classified car advertisement.
func carAdRecord(w *strings.Builder, r *rand.Rand, p *Profile, om omPlan) Fact {
	fact := Fact{}
	make_ := pick(r, carMakes)
	models := carModels[make_]
	model := ""
	if len(models) > 0 {
		model = " " + pick(r, models)
	}
	year := between(r, 1987, 1998)
	yearStr := fmt.Sprintf("%d", year)
	if om.dropField == 1 {
		yearStr = "Late model"
	} else {
		fact["Year"] = yearStr
	}
	fact["Make"] = make_
	budget := boldBudget(r, p)
	head := lead(r, p, "For sale: ") + maybeBold(&budget, fmt.Sprintf("%s %s%s", yearStr, make_, model))

	var sents []string
	color := pick(r, carColors)
	fact["Color"] = color
	desc := fmt.Sprintf("%s, %s.", color, pick(r, carConditions))
	sents = append(sents, desc)
	if freeProse(p) && chance(r, 0.6) {
		sents = append(sents, pick(r, []string{"Automatic.", "5-speed manual.", "4-speed auto trans."}))
	}
	nf := between(r, 1, 3)
	feats := make([]string, 0, nf)
	for i := 0; i < nf; i++ {
		feats = append(feats, pick(r, carFeatures))
	}
	sents = append(sents, strings.Join(feats, ", ")+".")
	sents = append(sents, fmt.Sprintf("%s miles.", fmt.Sprintf("%d,%03d", between(r, 20, 120), r.Intn(1000))))

	if om.dropField != 0 {
		ask := price(r, 1200, 14000)
		fact["Price"] = ask
		sents = append(sents, fmt.Sprintf("Asking %s obo.", ask))
	} else {
		sents = append(sents, "Best offer takes it.")
	}
	if om.extraField == 0 {
		sents = append(sents, fmt.Sprintf("Priced at %s when new.", price(r, 14000, 18000)))
	}
	if om.extraField == 1 {
		sents = append(sents, fmt.Sprintf("New engine in %d.", between(r, 1995, 1997)))
	}
	if om.dropField != 2 {
		tel := phone(r)
		fact["Phone"] = tel
		written := tel
		if om.noisy {
			// Slash-separated phone: the recognizer's pattern misses it.
			written = strings.NewReplacer("(", "", ") ", "/").Replace(tel)
		}
		sents = append(sents, fmt.Sprintf("Call %s %s.", pick(r, firstNames), written))
	} else {
		sents = append(sents, "See dealer for details.")
	}
	if om.extraField == 2 {
		sents = append(sents, fmt.Sprintf("Evenings %s.", phone(r)))
	}
	sents = append(sents, italics(r, p, "dealer inquiries welcome")...)
	sents = append(sents, anchors(r, p, "photos.html", "photos")...)
	sents = append(sents, boldExtras(r, budget, []string{"MUST SELL", "REDUCED", "ONE OWNER", "NEW TIRES"})...)

	record{head: head, sentences: sents}.emit(w, r, p)
	return fact
}

// jobAdRecord emits one computer-job advertisement.
func jobAdRecord(w *strings.Builder, r *rand.Rand, p *Profile, om omPlan) Fact {
	fact := Fact{}
	title := pick(r, jobTitles)
	budget := boldBudget(r, p)
	head := lead(r, p, "Immediate opening: ") + maybeBold(&budget, strings.ToUpper(title))
	company := pick(r, companies) + " Inc."

	var sents []string
	sents = append(sents, fmt.Sprintf("%s seeks a %s for its %s office.",
		company, title, pick(r, cities)))
	ns := between(r, 2, 4)
	skills := make([]string, 0, ns)
	for i := 0; i < ns; i++ {
		skills = append(skills, pick(r, jobSkills))
	}
	sents = append(sents, fmt.Sprintf("%d+ years experience in %s required.",
		between(r, 2, 7), strings.Join(skills, ", ")))

	if freeProse(p) && chance(r, 0.5) {
		sents = append(sents, fmt.Sprintf("Salary $%d%sK, DOE.", between(r, 4, 9), "0"))
	}
	if freeProse(p) && chance(r, 0.4) {
		sents = append(sents, "BS degree required.")
	}
	if om.dropField != 0 {
		sents = append(sents, fmt.Sprintf("Send resume to %s.", company))
	}
	if om.extraField == 0 {
		sents = append(sents, "Apply online today.")
	}
	if om.dropField != 1 {
		user := strings.ToLower(strings.Fields(company)[0])
		email := fmt.Sprintf("%s@%s.com", pick(r, []string{"jobs", "hr", "careers", "resumes"}), user)
		fact["ContactEmail"] = email
		written := email
		if om.noisy {
			// Anti-harvest spelling: the recognizer's pattern misses it.
			written = strings.ReplaceAll(email, "@", " at ")
		}
		sents = append(sents, fmt.Sprintf("Email %s for details.", written))
	}
	if om.extraField == 1 {
		sents = append(sents, fmt.Sprintf("Questions: info@%s.org.", strings.ToLower(pick(r, cities))))
	}
	if om.dropField != 2 {
		code := fmt.Sprintf("Job #%d", between(r, 10000, 99999))
		fact["JobCode"] = code
		sents = append(sents, code+".")
	}
	if om.extraField == 2 {
		sents = append(sents, fmt.Sprintf("Ref #%d.", between(r, 1000, 9999)))
	}
	sents = append(sents, italics(r, p, "competitive salary, DOE")...)
	sents = append(sents, anchors(r, p, "apply.html", "application form")...)
	sents = append(sents, boldExtras(r, budget, []string{"FULL TIME", "CONTRACT", "BENEFITS", "401K PLAN"})...)

	record{head: head, sentences: sents}.emit(w, r, p)
	return fact
}

// courseRecord emits one university course description.
func courseRecord(w *strings.Builder, r *rand.Rand, p *Profile, om omPlan) Fact {
	fact := Fact{}
	dept := pick(r, courseDepts)
	num := between(r, 100, 599)
	code := fmt.Sprintf("%s %d", dept, num)
	title := pick(r, courseLeads) + " " + pick(r, courseTopics)
	budget := boldBudget(r, p)
	var head string
	if om.dropField == 2 {
		head = lead(r, p, "New this term: ") + maybeBold(&budget, title)
	} else {
		fact["CourseCode"] = code
		written := code
		if om.noisy {
			// Dash-joined code: the recognizer's pattern misses it.
			written = strings.ReplaceAll(code, " ", "-")
		}
		head = lead(r, p, "New this term: ") + maybeBold(&budget, written) + " " + title + "."
	}

	var sents []string
	if om.dropField != 0 {
		sents = append(sents, fmt.Sprintf("%d credit hours.", between(r, 1, 5)))
	}
	if om.extraField == 0 {
		sents = append(sents, "Lab counts for 1 credit hours.")
	}
	if om.dropField != 1 {
		instructor := "Instructor: " + pick(r, lastNames) + "."
		if chance(r, 0.2) {
			instructor = "Taught by " + pick(r, lastNames) + "."
		}
		sents = append(sents, instructor)
	}
	if om.extraField == 1 {
		sents = append(sents, "Instructor: Staff.")
	}
	if om.extraField == 2 {
		sents = append(sents, fmt.Sprintf("Same as %s %d.", pick(r, courseDepts), between(r, 100, 599)))
	}
	sents = append(sents, fmt.Sprintf("%s %d:00, Room %d.",
		pick(r, []string{"MWF", "TTh", "Daily at"}), between(r, 8, 15), between(r, 100, 400)))
	sents = append(sents, fmt.Sprintf("Covers %s and %s.",
		strings.ToLower(pick(r, courseTopics)), strings.ToLower(pick(r, courseTopics))))
	if freeProse(p) && chance(r, 0.4) {
		sents = append(sents, "Prerequisites: consent of instructor.")
	}
	if freeProse(p) && chance(r, 0.3) {
		sents = append(sents, fmt.Sprintf("Enrollment limited to %d students.", between(r, 15, 120)))
	}
	sents = append(sents, italics(r, p, "satisfies the general education requirement")...)
	sents = append(sents, anchors(r, p, "syllabus.html", "syllabus")...)
	sents = append(sents, boldExtras(r, budget, []string{"HONORS SECTION", "FALL TERM", "LIMITED ENROLLMENT"})...)

	record{head: head, sentences: sents}.emit(w, r, p)
	return fact
}
