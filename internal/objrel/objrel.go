// Package objrel is the "Record-Level Objects, Relationships, and
// Constraints" box of the paper's Figure 1: the typed intermediate
// representation between recognition (the Data-Record Table) and database
// population. Each record becomes an entity instance whose attribute
// bindings carry provenance — whether a value was anchored by a keyword,
// taken positionally, or only evidenced by a keyword — and the ontology's
// cardinality constraints are checked per record, producing violations
// instead of silent mispopulation.
package objrel

import (
	"fmt"
	"strings"

	"repro/internal/ontology"
)

// Provenance records how a binding's value was established.
type Provenance int

// Provenance values.
const (
	// KeywordAnchored: a keyword match anchored a nearby constant ("died
	// on" → the following date). The strongest evidence.
	KeywordAnchored Provenance = iota
	// Positional: the first unclaimed constant of the object set was taken
	// without a keyword anchor.
	Positional
	// KeywordOnly: a keyword proved the field's presence but no constant
	// was found; the binding's value is the keyword text itself.
	KeywordOnly
)

// String names the provenance.
func (p Provenance) String() string {
	switch p {
	case KeywordAnchored:
		return "keyword-anchored"
	case Positional:
		return "positional"
	case KeywordOnly:
		return "keyword-only"
	default:
		return fmt.Sprintf("Provenance(%d)", int(p))
	}
}

// Binding is one attribute value of an entity instance.
type Binding struct {
	// ObjectSet names the bound object set.
	ObjectSet string
	// Value is the bound constant (or keyword text for KeywordOnly).
	Value string
	// Pos is the document offset of the evidence.
	Pos        int
	Provenance Provenance
}

// Violation is a cardinality-constraint breach detected while building a
// record instance.
type Violation struct {
	// ObjectSet names the violated set.
	ObjectSet string
	// Constraint describes the breached rule.
	Constraint string
}

// String renders the violation.
func (v Violation) String() string { return v.ObjectSet + ": " + v.Constraint }

// RecordInstance is one entity instance: the object-level view of a record.
type RecordInstance struct {
	// ID is the 1-based record ordinal within the document.
	ID int
	// Span is the record's byte range in the source document.
	SpanStart, SpanEnd int
	// Single holds single-valued bindings by object set (one-to-one and
	// functional sets).
	Single map[string]Binding
	// Many holds the multi-valued bindings by object set, in document
	// order, deduplicated by value.
	Many map[string][]Binding
	// Violations lists cardinality breaches (e.g. a one-to-one field with
	// no value after correlation).
	Violations []Violation
}

// Value returns the single-valued binding's value, with ok reporting
// presence.
func (r *RecordInstance) Value(objectSet string) (string, bool) {
	b, ok := r.Single[objectSet]
	return b.Value, ok
}

// RelationshipInstance links the entity instance to one of its bound values
// under a declared relationship set.
type RelationshipInstance struct {
	// Name is the relationship set's name from the ontology.
	Name string
	// RecordID is the entity instance.
	RecordID int
	// ObjectSet and Value are the related object instance.
	ObjectSet string
	Value     string
}

// Instance is the model instance for one document.
type Instance struct {
	// Entity names the entity of interest.
	Entity string
	// Records are the accepted entity instances, in document order.
	Records []*RecordInstance
	// Relationships are the instantiated declared relationship sets.
	Relationships []RelationshipInstance
	// Rejected counts chunks that did not qualify as records (headers,
	// footers, separator-adjacent noise).
	Rejected int
}

// Instantiate derives relationship instances for a record from the
// ontology's declared relationship sets: for each declaration Entity↔Set
// (in either direction) with a binding present, one instance is emitted.
func (inst *Instance) instantiateRelationships(ont *ontology.Ontology, rec *RecordInstance) {
	for _, rel := range ont.Relationships {
		var set string
		switch {
		case rel.From == ont.Entity:
			set = rel.To
		case rel.To == ont.Entity:
			set = rel.From
		default:
			continue
		}
		if b, ok := rec.Single[set]; ok {
			inst.Relationships = append(inst.Relationships, RelationshipInstance{
				Name: rel.Name, RecordID: rec.ID, ObjectSet: set, Value: b.Value,
			})
			continue
		}
		for _, b := range rec.Many[set] {
			inst.Relationships = append(inst.Relationships, RelationshipInstance{
				Name: rel.Name, RecordID: rec.ID, ObjectSet: set, Value: b.Value,
			})
		}
	}
}

// AddRecord appends a record instance, checks its constraints against the
// ontology, and instantiates its relationships. It assigns the record's ID.
func (inst *Instance) AddRecord(ont *ontology.Ontology, rec *RecordInstance) {
	rec.ID = len(inst.Records) + 1
	for _, set := range ont.ObjectSets {
		if set.Cardinality == ontology.OneToOne {
			if _, ok := rec.Single[set.Name]; !ok {
				rec.Violations = append(rec.Violations, Violation{
					ObjectSet:  set.Name,
					Constraint: "one-to-one field has no value in this record",
				})
			}
		}
	}
	inst.Records = append(inst.Records, rec)
	inst.instantiateRelationships(ont, rec)
}

// Summary renders a compact description for logs.
func (inst *Instance) Summary() string {
	violations := 0
	for _, r := range inst.Records {
		violations += len(r.Violations)
	}
	return fmt.Sprintf("%s: %d records, %d relationship instances, %d violations, %d chunks rejected",
		inst.Entity, len(inst.Records), len(inst.Relationships), violations, inst.Rejected)
}

// ProvenanceCounts tallies single-valued bindings by provenance across the
// instance — the evidence-quality profile of an extraction.
func (inst *Instance) ProvenanceCounts() map[Provenance]int {
	out := map[Provenance]int{}
	for _, r := range inst.Records {
		for _, b := range r.Single {
			out[b.Provenance]++
		}
	}
	return out
}

// Describe renders the instance in a readable multi-line form (records,
// bindings with provenance, violations).
func (inst *Instance) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", inst.Summary())
	for _, r := range inst.Records {
		fmt.Fprintf(&b, "record %d [%d:%d]\n", r.ID, r.SpanStart, r.SpanEnd)
		for _, set := range orderedKeys(r.Single) {
			bind := r.Single[set]
			fmt.Fprintf(&b, "  %-18s %-16s %q\n", set, "("+bind.Provenance.String()+")", bind.Value)
		}
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  ! %s\n", v)
		}
	}
	return b.String()
}

func orderedKeys(m map[string]Binding) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Insertion order is not tracked; sort for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
