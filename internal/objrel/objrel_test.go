package objrel_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dbgen"
	"repro/internal/objrel"
	"repro/internal/ontology"
	"repro/internal/paperdoc"
	"repro/internal/recognizer"
)

// figure2Instance builds the model instance for the paper's Figure 2 page.
func figure2Instance(t *testing.T) *objrel.Instance {
	t.Helper()
	ont := ontology.Builtin("obituary")
	res, err := core.Discover(paperdoc.Figure2, core.Options{Ontology: ont})
	if err != nil {
		t.Fatal(err)
	}
	table := recognizer.Recognize(ont, res.Tree, res.Subtree)
	return dbgen.Correlate(ont, res, table)
}

func TestCorrelateFigure2Records(t *testing.T) {
	inst := figure2Instance(t)
	if inst.Entity != "Obituary" {
		t.Errorf("entity = %s", inst.Entity)
	}
	if len(inst.Records) != 3 {
		t.Fatalf("records = %d, want 3\n%s", len(inst.Records), inst.Describe())
	}
	if inst.Rejected < 1 {
		t.Errorf("rejected = %d; the header chunk should be rejected", inst.Rejected)
	}
	names := []string{"Lemar K. Adamson", "Brian Fielding Frost", "Leonard Kenneth Gunther"}
	for i, rec := range inst.Records {
		if rec.ID != i+1 {
			t.Errorf("record %d has ID %d", i, rec.ID)
		}
		if got, _ := rec.Value("DeceasedName"); got != names[i] {
			t.Errorf("record %d name = %q, want %q", i+1, got, names[i])
		}
		if rec.SpanStart >= rec.SpanEnd {
			t.Errorf("record %d bad span [%d,%d)", i+1, rec.SpanStart, rec.SpanEnd)
		}
	}
}

func TestProvenanceOnFigure2(t *testing.T) {
	inst := figure2Instance(t)
	rec := inst.Records[0]
	// DeathDate is keyword-anchored ("died on" → the date); DeceasedName is
	// positional (value pattern only).
	if b := rec.Single["DeathDate"]; b.Provenance != objrel.KeywordAnchored {
		t.Errorf("DeathDate provenance = %v, want keyword-anchored", b.Provenance)
	}
	if b := rec.Single["DeceasedName"]; b.Provenance != objrel.Positional {
		t.Errorf("DeceasedName provenance = %v, want positional", b.Provenance)
	}
	// Interment has keywords only: its binding is the keyword evidence.
	if b, ok := rec.Single["Interment"]; !ok || b.Provenance != objrel.KeywordOnly {
		t.Errorf("Interment binding = %+v ok=%v, want keyword-only", b, ok)
	}
	counts := inst.ProvenanceCounts()
	if counts[objrel.KeywordAnchored] == 0 || counts[objrel.Positional] == 0 || counts[objrel.KeywordOnly] == 0 {
		t.Errorf("provenance counts = %v; all three kinds expected on Figure 2", counts)
	}
}

func TestRelationshipInstances(t *testing.T) {
	inst := figure2Instance(t)
	// The obituary ontology declares Dies/Honors/RestsAt between Obituary
	// and DeathDate/FuneralService/Interment: 3 per record.
	if len(inst.Relationships) != 9 {
		t.Fatalf("relationship instances = %d, want 9:\n%+v", len(inst.Relationships), inst.Relationships)
	}
	byName := map[string]int{}
	for _, ri := range inst.Relationships {
		byName[ri.Name]++
		if ri.RecordID < 1 || ri.RecordID > 3 {
			t.Errorf("relationship %s has bad record id %d", ri.Name, ri.RecordID)
		}
	}
	for _, name := range []string{"Dies", "Honors", "RestsAt"} {
		if byName[name] != 3 {
			t.Errorf("%s instances = %d, want 3", name, byName[name])
		}
	}
}

func TestViolationsDetected(t *testing.T) {
	// A record missing a one-to-one field (here: no phone in the second
	// ad) is accepted — it fills 3 of 4 one-to-one sets — but carries a
	// violation.
	doc := `<html><body><div>
<hr><b>1994 Ford Taurus</b>, red. Asking $4,500. Call (801) 555-1234.
<hr><b>1991 Honda Civic</b>, blue. Asking $2,900. See dealer for details.
<hr></div></body></html>`
	ont := ontology.Builtin("carad")
	res, err := core.Discover(doc, core.Options{Ontology: ont})
	if err != nil {
		t.Fatal(err)
	}
	inst := dbgen.Correlate(ont, res, recognizer.Recognize(ont, res.Tree, res.Subtree))
	if len(inst.Records) != 2 {
		t.Fatalf("records = %d\n%s", len(inst.Records), inst.Describe())
	}
	if len(inst.Records[0].Violations) != 0 {
		t.Errorf("record 1 violations = %v, want none", inst.Records[0].Violations)
	}
	var phoneViolation bool
	for _, v := range inst.Records[1].Violations {
		if v.ObjectSet == "Phone" {
			phoneViolation = true
		}
	}
	if !phoneViolation {
		t.Errorf("record 2 should report the missing Phone: %v", inst.Records[1].Violations)
	}
}

func TestPopulateInstanceMatchesDirectPopulate(t *testing.T) {
	ont := ontology.Builtin("obituary")
	res, err := core.Discover(paperdoc.Figure2, core.Options{Ontology: ont})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := dbgen.Populate(ont, res)
	if err != nil {
		t.Fatal(err)
	}
	inst := figure2Instance(t)
	staged, err := dbgen.PopulateInstance(ont, inst)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Summary() != staged.Summary() {
		t.Errorf("summaries differ: %s vs %s", direct.Summary(), staged.Summary())
	}
}

func TestDescribeAndSummary(t *testing.T) {
	inst := figure2Instance(t)
	s := inst.Summary()
	if !strings.Contains(s, "3 records") || !strings.Contains(s, "9 relationship instances") {
		t.Errorf("summary = %q", s)
	}
	d := inst.Describe()
	for _, want := range []string{"record 1", "DeathDate", "keyword-anchored", "Lemar K. Adamson"} {
		if !strings.Contains(d, want) {
			t.Errorf("describe missing %q:\n%s", want, d)
		}
	}
}

func TestProvenanceString(t *testing.T) {
	if objrel.KeywordAnchored.String() != "keyword-anchored" ||
		objrel.Positional.String() != "positional" ||
		objrel.KeywordOnly.String() != "keyword-only" {
		t.Error("provenance names wrong")
	}
	if !strings.Contains(objrel.Provenance(9).String(), "9") {
		t.Error("unknown provenance should show its number")
	}
}

func TestViolationString(t *testing.T) {
	v := objrel.Violation{ObjectSet: "Phone", Constraint: "missing"}
	if v.String() != "Phone: missing" {
		t.Errorf("violation = %q", v.String())
	}
}
