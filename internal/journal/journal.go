// Package journal is the shared NDJSON write-ahead journal behind every
// durable cache in the system: the learned-wrapper store
// (internal/template) and the HTTP layer's discovery result cache both
// persist through it, so a restarted replica comes back warm instead of
// stampeding the heuristics.
//
// The format is one JSON record per line, each carrying exactly one of a
// "put" payload (opaque to this package) or an "evict" key. Recovery
// tolerates a torn final line — a crash mid-append loses only the record
// that was never acknowledged — while damage anywhere earlier refuses to
// open with an error wrapping ErrCorrupt, because silently serving a
// partial memory is worse than relearning from scratch.
//
// Compaction rewrites the journal as one put per live entry once enough
// dead lines (superseded puts, evictions) accumulate. The rewrite goes
// through a temp file that is fsynced BEFORE the rename: a crash at any
// point leaves either the complete old journal or the complete new one on
// disk, never a half-compacted hybrid. The journal/compact fault hook
// (docs/ROBUSTNESS.md) lets chaos tests kill a compaction between the
// temp-file write and the rename and prove recovery.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"repro/internal/faultinject"
)

// ErrCorrupt marks a journal whose body (not merely its torn tail) fails to
// decode or apply. Callers distinguish it from I/O errors with errors.Is.
var ErrCorrupt = errors.New("journal: corrupt journal")

// FaultCompact fires inside compaction after the temp file is written and
// synced but before the rename commits it. An armed error aborts the
// compaction at exactly the point a crash would, leaving the old journal
// (and a stray temp file) behind — recovery must see the full
// pre-compaction state.
const FaultCompact = "journal/compact"

// DefaultCompactThreshold is how many journal lines accumulate before a
// compaction is considered (it still waits until the journal holds at least
// twice as many lines as live entries, so a large working set is not
// rewritten over and over).
const DefaultCompactThreshold = 4096

// Line is one journal record: exactly one of Put or Evict is set.
type Line struct {
	V     int             `json:"v"`
	Put   json.RawMessage `json:"put,omitempty"`
	Evict string          `json:"evict,omitempty"`
}

// Config configures a Journal.
type Config struct {
	// Path is the journal file; required.
	Path string
	// CompactThreshold overrides DefaultCompactThreshold; <= 0 selects it.
	CompactThreshold int
	// Snapshot returns the live set as marshaled put payloads, oldest
	// first — the lines a compaction writes. Required for compaction to
	// run; nil disables it (the journal grows unbounded).
	Snapshot func() []json.RawMessage
	// Faults is the chaos-test hook set (FaultCompact); nil disables.
	Faults *faultinject.Set
}

// Journal is an append-only NDJSON log with replay and compaction. Methods
// are safe for concurrent use.
type Journal struct {
	cfg Config

	mu    sync.Mutex
	file  *os.File
	lines int // journal lines since the last compaction
}

// Open replays the journal at cfg.Path — calling apply for every put line
// and evict for every evict line, in file order — and then opens it for
// appends. A missing file is an empty journal. The final line may be torn
// (undecodable, or rejected by apply/evict) and is skipped; the same
// damage anywhere earlier returns an error wrapping ErrCorrupt.
func Open(cfg Config, apply func(put json.RawMessage) error, evict func(key string) error) (*Journal, error) {
	if cfg.Path == "" {
		return nil, errors.New("journal: a path is required")
	}
	if cfg.CompactThreshold <= 0 {
		cfg.CompactThreshold = DefaultCompactThreshold
	}
	j := &Journal{cfg: cfg}
	if err := j.replay(apply, evict); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(cfg.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j.file = f
	return j, nil
}

// replay loads the journal through the caller's apply/evict callbacks.
func (j *Journal) replay(apply func(put json.RawMessage) error, evict func(key string) error) error {
	data, err := os.ReadFile(j.cfg.Path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	lines := splitLines(data)
	for i, ln := range lines {
		tail := i == len(lines)-1
		var rec Line
		if err := json.Unmarshal(ln, &rec); err != nil {
			if tail {
				return nil // torn tail: the record was never acknowledged
			}
			return fmt.Errorf("%w: line %d: %v", ErrCorrupt, i+1, err)
		}
		switch {
		case rec.Put != nil:
			if err := apply(rec.Put); err != nil {
				if tail {
					return nil
				}
				return fmt.Errorf("%w: line %d: %v", ErrCorrupt, i+1, err)
			}
		case rec.Evict != "":
			if err := evict(rec.Evict); err != nil {
				if tail {
					return nil
				}
				return fmt.Errorf("%w: line %d: %v", ErrCorrupt, i+1, err)
			}
		default:
			if tail {
				return nil
			}
			return fmt.Errorf("%w: line %d: neither put nor evict", ErrCorrupt, i+1)
		}
		j.lines++
	}
	return nil
}

// splitLines splits on '\n', dropping empty lines (a trailing newline is
// the normal committed state, not a torn record).
func splitLines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			if i > start {
				out = append(out, data[start:i])
			}
			start = i + 1
		}
	}
	if start < len(data) {
		out = append(out, data[start:])
	}
	return out
}

// Append writes one put record. live is the caller's current live-entry
// count, which gates compaction.
func (j *Journal) Append(put json.RawMessage, live int) {
	j.append(Line{V: 1, Put: put}, live)
}

// AppendEvict writes one evict record.
func (j *Journal) AppendEvict(key string, live int) {
	j.append(Line{V: 1, Evict: key}, live)
}

func (j *Journal) append(rec Line, live int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.file == nil {
		return // closed
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	if _, err := j.file.Write(b); err != nil {
		return
	}
	j.lines++
	if j.cfg.Snapshot != nil && j.lines >= j.cfg.CompactThreshold && j.lines > 2*live {
		j.compactLocked()
	}
}

// Compact rewrites the journal as one put line per live entry now,
// regardless of thresholds. Tests and Close use it; the append path
// compacts automatically.
func (j *Journal) Compact() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.file == nil || j.cfg.Snapshot == nil {
		return
	}
	j.compactLocked()
}

// compactLocked rewrites the journal from the live snapshot through a temp
// file that is fsynced before the rename: a crash on either side of the
// rename leaves a complete journal — the old one or the new one, never a
// torn hybrid.
func (j *Journal) compactLocked() {
	tmp := j.cfg.Path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	w := bufio.NewWriter(f)
	n := 0
	for _, put := range j.cfg.Snapshot() {
		b, err := json.Marshal(Line{V: 1, Put: put})
		if err != nil {
			continue
		}
		w.Write(b)
		w.WriteByte('\n')
		n++
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	// The fsync must land before the rename: rename is atomic on the
	// directory entry, but without the sync a crash after it could expose
	// a name pointing at unwritten data.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return
	}
	if err := j.cfg.Faults.Fire(FaultCompact); err != nil {
		// A chaos test is simulating a crash between the temp-file write
		// and the rename: abort exactly as a crash would, temp file left
		// behind, the live journal untouched.
		return
	}
	if err := os.Rename(tmp, j.cfg.Path); err != nil {
		os.Remove(tmp)
		return
	}
	j.file.Close()
	nf, err := os.OpenFile(j.cfg.Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.file = nil
		return
	}
	j.file = nf
	j.lines = n
}

// Lines returns the journal's current line count (post-replay, including
// appends since the last compaction). Tests use it to observe compaction.
func (j *Journal) Lines() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lines
}

// Close compacts (when a snapshot is available) and closes the journal.
// Safe to call on a nil journal.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.file == nil {
		return nil
	}
	if j.cfg.Snapshot != nil {
		j.compactLocked()
	}
	var err error
	if j.file != nil {
		err = j.file.Close()
		j.file = nil
	}
	return err
}
