package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// testEntry is the toy payload the tests journal.
type testEntry struct {
	Key string `json:"key"`
	Val int    `json:"val"`
}

// openInto opens path and replays it into a fresh map, returning both.
func openInto(t *testing.T, cfg Config) (*Journal, map[string]int) {
	t.Helper()
	state := make(map[string]int)
	if cfg.Snapshot == nil {
		cfg.Snapshot = snapshotOf(state)
	}
	j, err := Open(cfg,
		func(put json.RawMessage) error {
			var e testEntry
			if err := json.Unmarshal(put, &e); err != nil {
				return err
			}
			if e.Key == "" {
				return errors.New("missing key")
			}
			state[e.Key] = e.Val
			return nil
		},
		func(key string) error {
			delete(state, key)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return j, state
}

// snapshotOf emits the live map as marshaled entries (order is irrelevant
// to these tests' assertions).
func snapshotOf(state map[string]int) func() []json.RawMessage {
	return func() []json.RawMessage {
		var out []json.RawMessage
		for k, v := range state {
			b, _ := json.Marshal(testEntry{Key: k, Val: v})
			out = append(out, b)
		}
		return out
	}
}

func put(t *testing.T, j *Journal, e testEntry, live int) {
	t.Helper()
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(b, live)
}

func TestReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ndjson")
	// Close compacts from the snapshot, so the live map must track appends.
	j, live := openInto(t, Config{Path: path})
	live["a"] = 1
	put(t, j, testEntry{Key: "a", Val: 1}, 1)
	live["b"] = 2
	put(t, j, testEntry{Key: "b", Val: 2}, 2)
	live["a"] = 3
	put(t, j, testEntry{Key: "a", Val: 3}, 2) // supersedes a=1
	delete(live, "b")
	j.AppendEvict("b", 1)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, state := openInto(t, Config{Path: path})
	defer j2.Close()
	if len(state) != 1 || state["a"] != 3 {
		t.Fatalf("replayed state = %v, want map[a:3]", state)
	}
}

func TestTornTailIsTolerated(t *testing.T) {
	for _, tear := range []string{
		`{"v":1,"put":{"key":"b","va`,      // mid-record cut
		`{"v":1,"put":{"key":"","val":9}}`, // apply rejects it
		`{"v":1}`,                          // neither put nor evict
		`garbage`,                          // not JSON at all
	} {
		t.Run(tear, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "j.ndjson")
			intact := `{"v":1,"put":{"key":"a","val":1}}` + "\n"
			if err := os.WriteFile(path, []byte(intact+tear), 0o644); err != nil {
				t.Fatal(err)
			}
			j, state := openInto(t, Config{Path: path})
			defer j.Close()
			if len(state) != 1 || state["a"] != 1 {
				t.Fatalf("state after torn tail = %v, want map[a:1]", state)
			}
		})
	}
}

func TestCorruptBodyRefusesToOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ndjson")
	body := `garbage` + "\n" + `{"v":1,"put":{"key":"a","val":1}}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(Config{Path: path},
		func(json.RawMessage) error { return nil },
		func(string) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v should wrap ErrCorrupt", err)
	}
}

func TestAutoCompactionRewritesLiveSet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ndjson")
	state := make(map[string]int)
	cfg := Config{Path: path, CompactThreshold: 8, Snapshot: snapshotOf(state)}
	j, err := Open(cfg, func(json.RawMessage) error { return nil }, func(string) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	// Churn one key: every put supersedes the last, so the live set stays
	// at 1 while lines pile up past the threshold.
	state["a"] = 0
	for i := 0; i < 20; i++ {
		state["a"] = i
		put(t, j, testEntry{Key: "a", Val: i}, 1)
	}
	if n := j.Lines(); n > 8 {
		t.Fatalf("journal holds %d lines after churn, want compaction to have shrunk it", n)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != j.Lines() {
		t.Fatalf("file has %d lines, journal thinks %d", lines, j.Lines())
	}
}

// TestKillMidCompaction is the crash-safety contract of the satellite fix:
// a compaction that dies between writing the temp file and renaming it must
// leave the original journal fully intact — recovery sees every record, and
// the stray temp file is ignored.
func TestKillMidCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ndjson")
	faults := faultinject.New()
	state := make(map[string]int)
	j, err := Open(Config{Path: path, Snapshot: snapshotOf(state), Faults: faults},
		func(json.RawMessage) error { return nil }, func(string) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		state[k] = i
		put(t, j, testEntry{Key: k, Val: i}, len(state))
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// The "kill": compaction aborts after the temp write, before the rename.
	faults.Inject(FaultCompact, faultinject.Fault{Err: errors.New("killed")})
	j.Compact()
	if got := faults.Fired(FaultCompact); got != 1 {
		t.Fatalf("journal/compact fired %d times, want 1", got)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Fatalf("aborted compaction changed the journal:\nbefore %q\nafter  %q", before, after)
	}
	if _, err := os.Stat(path + ".tmp"); err != nil {
		t.Fatalf("simulated crash should leave the temp file behind: %v", err)
	}

	// The journal keeps accepting appends after the aborted compaction,
	// and a restart (fresh Open over the same file) sees everything.
	state["late"] = 99
	put(t, j, testEntry{Key: "late", Val: 99}, len(state))
	j2, replayed := openInto(t, Config{Path: path})
	defer j2.Close()
	if len(replayed) != 11 || replayed["late"] != 99 || replayed["k3"] != 3 {
		t.Fatalf("recovered state = %v, want all 11 entries", replayed)
	}

	// With the fault disarmed the retried compaction commits: the file
	// shrinks to one line per live entry and replays identically.
	faults.Reset()
	j.Compact()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j3, final := openInto(t, Config{Path: path})
	defer j3.Close()
	if len(final) != 11 {
		t.Fatalf("post-compaction state has %d entries, want 11", len(final))
	}
	if j3.Lines() != 11 {
		t.Fatalf("compacted journal has %d lines, want 11", j3.Lines())
	}
}

func TestMissingFileIsEmptyJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.ndjson")
	j, state := openInto(t, Config{Path: path})
	defer j.Close()
	if len(state) != 0 {
		t.Fatalf("fresh journal replayed %v", state)
	}
}

func TestOpenRequiresPath(t *testing.T) {
	if _, err := Open(Config{}, nil, nil); err == nil {
		t.Fatal("Open with no path should error")
	}
}
