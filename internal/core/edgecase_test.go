package core

// Table-driven edge cases for the full discovery path: empty/tagless input
// (ErrNoCandidates in both markup modes), the single-candidate short
// circuit, a document where every voting heuristic declines (all-zero
// compound certainties), and a symmetric document where two tags tie — the
// tie must be broken by tag name with both tags listed in TopTags.

import (
	"errors"
	"math"
	"testing"

	"repro/internal/certainty"
)

// symmetricXY has two candidate tags with identical counts and identical
// inter-occurrence text sizes, no adjacent candidate pairs (RP declines),
// and names absent from IT's separator list (IT declines).
const symmetricXY = "<div><x>aa</x><y>bb</y><x>cc</x><y>dd</y><x>ee</x><y>ff</y></div>"

func TestDiscoverEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		doc     string
		xml     bool
		opts    Options
		wantErr error
		sep     string
		topTags []string
		cf      float64
		// rankings is the expected set of heuristics that answered;
		// nil means don't check, empty means none answered.
		rankings []string
	}{
		{
			name:    "EmptyDocument",
			doc:     "",
			wantErr: ErrNoCandidates,
		},
		{
			name:    "WhitespaceOnly",
			doc:     " \n\t  ",
			wantErr: ErrNoCandidates,
		},
		{
			name:    "TaglessDocument",
			doc:     "several obituaries, but no markup to discover",
			wantErr: ErrNoCandidates,
		},
		{
			name:    "EmptyXMLDocument",
			doc:     "",
			xml:     true,
			wantErr: ErrNoCandidates,
		},
		{
			// Section 3: one candidate is the separator outright, certainty
			// 1, with no heuristics consulted.
			name:     "SingleCandidateTag",
			doc:      "<div><p>one</p><p>two</p><p>three</p></div>",
			sep:      "p",
			topTags:  []string{"p"},
			cf:       1,
			rankings: []string{},
		},
		{
			name:     "SingleCandidateTagXML",
			doc:      "<records><rec>a</rec><rec>b</rec><rec>c</rec></records>",
			xml:      true,
			sep:      "rec",
			topTags:  []string{"rec"},
			cf:       1,
			rankings: []string{},
		},
		{
			// OM has no ontology and RP finds no adjacent pairs, so the
			// whole combination declines: every compound certainty is zero
			// and the separator falls back to the alphabetically first tag,
			// with every tag tied on top.
			name:     "AllHeuristicsDecline",
			doc:      symmetricXY,
			opts:     Options{Combination: certainty.Combination{certainty.OM, certainty.RP}},
			sep:      "x",
			topTags:  []string{"x", "y"},
			cf:       0,
			rankings: []string{},
		},
		{
			// A single heuristic that ties two tags at rank 1: both get the
			// same factor and the tie is broken by tag name.
			name:     "TwoTagTieSingleHeuristic",
			doc:      symmetricXY,
			opts:     Options{Combination: certainty.Combination{certainty.HT}},
			sep:      "x",
			topTags:  []string{"x", "y"},
			cf:       certainty.PaperTable.Factor(certainty.HT, 1),
			rankings: []string{certainty.HT},
		},
		{
			// Full default combination on the same document: SD and HT both
			// answer and both tie, the rest decline — the tie survives the
			// compound combination.
			name:     "TwoTagTieFullCombination",
			doc:      symmetricXY,
			sep:      "x",
			topTags:  []string{"x", "y"},
			cf:       certainty.Combine(certainty.PaperTable.Factor(certainty.SD, 1), certainty.PaperTable.Factor(certainty.HT, 1)),
			rankings: []string{certainty.SD, certainty.HT},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var res *Result
			var err error
			if tc.xml {
				res, err = DiscoverXML(tc.doc, tc.opts)
			} else {
				res, err = Discover(tc.doc, tc.opts)
			}
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if res.Separator != tc.sep {
				t.Errorf("separator = %q, want %q", res.Separator, tc.sep)
			}
			if len(res.TopTags) != len(tc.topTags) {
				t.Errorf("TopTags = %v, want %v", res.TopTags, tc.topTags)
			} else {
				for i, tag := range tc.topTags {
					if res.TopTags[i] != tag {
						t.Errorf("TopTags[%d] = %q, want %q", i, res.TopTags[i], tag)
					}
				}
			}
			if math.Abs(res.Scores[0].CF-tc.cf) > 1e-9 {
				t.Errorf("top CF = %v, want %v", res.Scores[0].CF, tc.cf)
			}
			if len(tc.topTags) > 1 && res.Scores[0].CF != res.Scores[1].CF {
				t.Errorf("tied tags have unequal CFs: %v vs %v", res.Scores[0], res.Scores[1])
			}
			if tc.rankings != nil {
				if len(res.Rankings) != len(tc.rankings) {
					t.Errorf("Rankings has %d heuristics %v, want %v",
						len(res.Rankings), res.Rankings, tc.rankings)
				}
				for _, h := range tc.rankings {
					if _, ok := res.Rankings[h]; !ok {
						t.Errorf("heuristic %s missing from Rankings", h)
					}
				}
			}
		})
	}
}
