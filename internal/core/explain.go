package core

import (
	"fmt"
	"strings"
)

// HeuristicExplain is one heuristic's contribution to a discovery decision:
// either the certainty factor its rank of the chosen separator contributed,
// or the reason it contributed nothing.
type HeuristicExplain struct {
	Name string `json:"name"`
	// Declined marks a heuristic that supplied no ranking; Failed marks one
	// that panicked and was isolated (Failed implies Declined's absence of a
	// contribution but carries its own flag so dashboards can tell them
	// apart).
	Declined bool   `json:"declined,omitempty"`
	Failed   bool   `json:"failed,omitempty"`
	Reason   string `json:"reason,omitempty"`
	// Rank is the 1-based rank this heuristic gave the chosen separator
	// (0 when unranked), Top its own first-choice tag, and Certainty the
	// Table 4 factor the rank contributed to the combination.
	Rank      int     `json:"rank,omitempty"`
	Top       string  `json:"top,omitempty"`
	Certainty float64 `json:"certainty"`
}

// Explanation is the machine-readable account of one discovery decision:
// per-heuristic certainties and decline reasons plus the Stanford
// certainty-theory arithmetic (CF = 1 − ∏(1−CFi), §3) that combined them.
// It is the ?explain=1 response payload and the -explain data source.
type Explanation struct {
	Separator  string  `json:"separator"`
	CompoundCF float64 `json:"compound_cf"`
	// Formula spells out the combination arithmetic for the chosen
	// separator with the actual Table 4 factors substituted in.
	Formula    string             `json:"formula"`
	Degraded   bool               `json:"degraded,omitempty"`
	Heuristics []HeuristicExplain `json:"heuristics"`
}

// NewExplanation builds the explanation for a completed discovery under the
// options that produced it (the certainty table and combination in opts
// must match the ones the discovery ran with; the zero Options gives the
// paper's configuration, same as discovery itself).
func NewExplanation(res *Result, opts Options) *Explanation {
	table := opts.factors()
	exp := &Explanation{
		Separator: res.Separator,
		Degraded:  res.Degraded,
	}
	if len(res.Scores) > 0 {
		exp.CompoundCF = res.Scores[0].CF
	}
	failed := make(map[string]bool, len(res.FailedHeuristics))
	for _, name := range res.FailedHeuristics {
		failed[name] = true
	}

	// The single-candidate shortcut (§3) never consults the heuristics:
	// the lone candidate is the separator with certainty 1.
	single := len(res.Rankings) == 0 && len(res.Candidates) == 1 && !res.Degraded &&
		len(res.HeuristicReasons) == 0
	var parts []string
	for _, name := range opts.combination() {
		h := HeuristicExplain{Name: name}
		switch {
		case single:
			h.Declined = true
			h.Reason = "not consulted: single candidate is the separator outright"
		case failed[name]:
			h.Failed = true
			h.Reason = res.HeuristicReasons[name]
		default:
			ranking, ok := res.Rankings[name]
			if !ok {
				h.Declined = true
				h.Reason = res.HeuristicReasons[name]
				break
			}
			if len(ranking) > 0 {
				h.Top = ranking[0].Tag
			}
			h.Rank = ranking.RankOf(res.Separator)
			h.Certainty = table.Factor(name, h.Rank)
			if h.Certainty > 0 {
				parts = append(parts, fmt.Sprintf("(1−%.3f)", h.Certainty))
			}
		}
		exp.Heuristics = append(exp.Heuristics, h)
	}

	switch {
	case single:
		exp.CompoundCF = 1
		exp.Formula = "CF = 1 (single candidate)"
	case len(parts) == 0:
		exp.Formula = fmt.Sprintf("CF = %.4f (no heuristic ranked the separator)", exp.CompoundCF)
	default:
		exp.Formula = fmt.Sprintf("CF = 1 − %s = %.4f",
			strings.Join(parts, "·"), exp.CompoundCF)
	}
	return exp
}

// ExplainVerbose renders Explain's worked-example report plus the certainty
// evidence of NewExplanation: each heuristic's contributed factor or its
// decline/failure reason, and the combination arithmetic. This is the
// -explain output of cmd/boundary; the terser Explain stays unchanged for
// callers (and golden files) that depend on its exact format.
func ExplainVerbose(res *Result, opts Options) string {
	var b strings.Builder
	b.WriteString(Explain(res))
	exp := NewExplanation(res, opts)
	b.WriteString("certainty:\n")
	for _, h := range exp.Heuristics {
		switch {
		case h.Failed:
			fmt.Fprintf(&b, "  %s: failed — %s\n", h.Name, h.Reason)
		case h.Declined:
			fmt.Fprintf(&b, "  %s: declined — %s\n", h.Name, h.Reason)
		case h.Rank == 0:
			fmt.Fprintf(&b, "  %s: ranked <%s> first; did not rank <%s>\n",
				h.Name, h.Top, exp.Separator)
		default:
			fmt.Fprintf(&b, "  %s: factor %.3f (ranked <%s> at %d)\n",
				h.Name, h.Certainty, exp.Separator, h.Rank)
		}
	}
	fmt.Fprintf(&b, "  combined: %s\n", exp.Formula)
	return b.String()
}

// TraceAttrs renders the explanation as alternating trace-attribute pairs,
// so the same evidence the client sees rides the request's trace.
func (e *Explanation) TraceAttrs() []string {
	attrs := []string{"combination", e.Formula}
	for _, h := range e.Heuristics {
		switch {
		case h.Failed:
			attrs = append(attrs, h.Name, "failed: "+h.Reason)
		case h.Declined:
			attrs = append(attrs, h.Name, "declined: "+h.Reason)
		default:
			attrs = append(attrs, h.Name, fmt.Sprintf("cf=%.3f rank=%d", h.Certainty, h.Rank))
		}
	}
	return attrs
}
