package core

import (
	"testing"

	"repro/internal/testutil"
)

// TestMain fails the package's test run if the pipeline leaks goroutines —
// the heuristic fan-out and recognizer worker pool must always be joined,
// even on cancellation and panic paths.
func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
