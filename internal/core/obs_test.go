package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/paperdoc"
)

// TestDiscoverTraced: a Discover call with a Trace attached records one span
// per pipeline stage in execution order, with the winning separator on the
// combine span.
func TestDiscoverTraced(t *testing.T) {
	tr := obs.NewTrace()
	res, err := Discover(paperdoc.Figure2, Options{
		Ontology: ontology.Builtin("obituary"),
		Trace:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Separator != "hr" {
		t.Fatalf("separator = %s", res.Separator)
	}

	var names []string
	for _, s := range tr.Spans() {
		names = append(names, s.Name)
	}
	want := []string{"parse", "fanout", "candidates", "recognize",
		"heuristic/OM", "heuristic/RP", "heuristic/SD", "heuristic/IT", "heuristic/HT",
		"combine"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Errorf("spans = %v, want %v", names, want)
	}
	table := tr.Table()
	if !strings.Contains(table, "separator=hr") {
		t.Errorf("combine span missing separator attr:\n%s", table)
	}
}

// TestDiscoverMetrics: the registry accumulates document, stage and
// heuristic series across calls, including OM's decline without an ontology.
func TestDiscoverMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	// No ontology: OM must decline and be counted as such.
	if _, err := Discover(paperdoc.Figure2, Options{Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	// A tagless document: counted under outcome=no_candidates.
	if _, err := Discover("plain text only", Options{Metrics: reg}); err == nil {
		t.Fatal("tagless document should fail")
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		`boundary_documents_total{outcome="ok"} 1`,
		`boundary_documents_total{outcome="no_candidates"} 1`,
		`boundary_heuristic_runs_total{heuristic="OM"} 1`,
		`boundary_heuristic_declines_total{heuristic="OM"} 1`,
		`boundary_heuristic_runs_total{heuristic="HT"} 1`,
		`boundary_stage_duration_seconds_count{stage="parse"} 2`,
		`boundary_stage_duration_seconds_count{stage="combine"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("metrics missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, `boundary_heuristic_declines_total{heuristic="HT"}`) {
		t.Error("HT should not have declined")
	}
}

// TestDiscoverConcurrentObserved exercises the parallel heuristic fan-out
// under the race detector: many Discover calls run at once, all feeding one
// shared metrics registry while each carries its own trace. Span order must
// stay deterministic per call even though the heuristics run concurrently.
func TestDiscoverConcurrentObserved(t *testing.T) {
	reg := obs.NewRegistry()
	ont := ontology.Builtin("obituary")
	const calls = 8
	var wg sync.WaitGroup
	traces := make([]*obs.Trace, calls)
	for i := 0; i < calls; i++ {
		traces[i] = obs.NewTrace()
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := Discover(paperdoc.Figure2, Options{
				Ontology: ont,
				Trace:    traces[i],
				Metrics:  reg,
			})
			if err != nil || res.Separator != "hr" {
				t.Errorf("res = %v, err = %v", res, err)
			}
		}()
	}
	wg.Wait()

	want := []string{"parse", "fanout", "candidates", "recognize",
		"heuristic/OM", "heuristic/RP", "heuristic/SD", "heuristic/IT", "heuristic/HT",
		"combine"}
	for i, tr := range traces {
		var names []string
		for _, s := range tr.Spans() {
			names = append(names, s.Name)
		}
		if strings.Join(names, " ") != strings.Join(want, " ") {
			t.Errorf("call %d spans = %v, want %v", i, names, want)
		}
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf(`boundary_documents_total{outcome="ok"} %d`, calls); !strings.Contains(b.String(), want) {
		t.Errorf("metrics missing %q", want)
	}
}

// TestDiscoverUnobserved: with no sinks attached the result is identical —
// observability must never perturb the pipeline's answer.
func TestDiscoverUnobserved(t *testing.T) {
	plain, err := Discover(paperdoc.Figure2, Options{Ontology: ontology.Builtin("obituary")})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Discover(paperdoc.Figure2, Options{
		Ontology: ontology.Builtin("obituary"),
		Trace:    obs.NewTrace(),
		Metrics:  obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Separator != traced.Separator || len(plain.Scores) != len(traced.Scores) {
		t.Errorf("observed run changed the answer: %+v vs %+v", plain.Scores, traced.Scores)
	}
}
