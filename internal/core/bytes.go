package core

import "unsafe"

// bytesView returns a string view sharing doc's backing array — the one
// unsafe conversion of the byte-level hot path. The contract is the usual
// one for zero-copy views: the caller must not mutate doc while the view
// (or anything derived from it: trees, results, records) is reachable.
func bytesView(doc []byte) string {
	if len(doc) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(doc), len(doc))
}
