package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/paperdoc"
	"repro/internal/tagtree"
)

// metricsText renders the registry for substring assertions.
func metricsText(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestDiscoverContextCanceled: a pre-canceled context fails the call with
// context.Canceled and counts the document under outcome=canceled.
func TestDiscoverContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reg := obs.NewRegistry()
	_, err := DiscoverContext(ctx, paperdoc.Figure2, Options{Metrics: reg})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := metricsText(t, reg); !strings.Contains(got, `boundary_documents_total{outcome="canceled"} 1`) {
		t.Errorf("canceled outcome not counted:\n%s", got)
	}
}

// TestHeuristicPanicIsolated: an injected panic in one heuristic degrades
// the result instead of crashing — the survivors still pick <hr> on the
// paper's Figure 2 document, the failure is named, the panic counter ticks,
// and the document lands under outcome=degraded.
func TestHeuristicPanicIsolated(t *testing.T) {
	faults := faultinject.New()
	faults.Inject("core/heuristic/HT", faultinject.Fault{Panic: "injected HT failure"})
	reg := obs.NewRegistry()
	res, err := Discover(paperdoc.Figure2, Options{
		Ontology: ontology.Builtin("obituary"),
		Metrics:  reg,
		Faults:   faults,
	})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if !res.Degraded {
		t.Error("result not marked degraded")
	}
	if len(res.FailedHeuristics) != 1 || res.FailedHeuristics[0] != "HT" {
		t.Errorf("FailedHeuristics = %v, want [HT]", res.FailedHeuristics)
	}
	if _, ok := res.Rankings["HT"]; ok {
		t.Error("panicked heuristic left a ranking")
	}
	if res.Separator != "hr" {
		t.Errorf("separator = %s, want hr (survivors should still agree)", res.Separator)
	}
	got := metricsText(t, reg)
	for _, want := range []string{
		`boundary_heuristic_panics_total{heuristic="HT"} 1`,
		`boundary_documents_total{outcome="degraded"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("metrics missing %q:\n%s", want, got)
		}
	}
}

// TestAllHeuristicsPanicStillAnswers: even with every heuristic down, the
// compound combination over zero rankings still returns a (low-confidence)
// answer rather than failing — missing evidence, not an error.
func TestAllHeuristicsPanicStillAnswers(t *testing.T) {
	faults := faultinject.New()
	for _, name := range []string{"OM", "RP", "SD", "IT", "HT"} {
		faults.Inject("core/heuristic/"+name, faultinject.Fault{Panic: "down"})
	}
	res, err := Discover(paperdoc.Figure2, Options{
		Ontology: ontology.Builtin("obituary"),
		Faults:   faults,
	})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if !res.Degraded || len(res.FailedHeuristics) != 5 {
		t.Errorf("Degraded=%v FailedHeuristics=%v, want all five down", res.Degraded, res.FailedHeuristics)
	}
	if res.Separator == "" {
		t.Error("no separator chosen")
	}
}

// TestFaultErrorAtParse: an injected error at the core/parse hook fails the
// call with that error.
func TestFaultErrorAtParse(t *testing.T) {
	boom := errors.New("injected parse failure")
	faults := faultinject.New()
	faults.Inject("core/parse", faultinject.Fault{Err: boom})
	if _, err := Discover(paperdoc.Figure2, Options{Faults: faults}); !errors.Is(err, boom) {
		t.Errorf("err = %v, want injected error", err)
	}
}

// TestDiscoverLimits: exceeded resource limits surface as the tagtree
// sentinels and count under outcome=limit.
func TestDiscoverLimits(t *testing.T) {
	reg := obs.NewRegistry()
	_, err := DiscoverContext(context.Background(), paperdoc.Figure2, Options{
		Metrics: reg,
		Limits:  tagtree.Limits{MaxNodes: 3},
	})
	if !errors.Is(err, tagtree.ErrTooManyNodes) {
		t.Fatalf("err = %v, want ErrTooManyNodes", err)
	}
	if got := metricsText(t, reg); !strings.Contains(got, `boundary_documents_total{outcome="limit"} 1`) {
		t.Errorf("limit outcome not counted:\n%s", got)
	}
}

// TestDiscoverXMLContextCanceled: the XML entry point honors ctx too.
func TestDiscoverXMLContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	doc := "<root>" + strings.Repeat("<item>x</item>", 10) + "</root>"
	if _, err := DiscoverXMLContext(ctx, doc, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestDegradedHeuristicKeepsFigure2Certainties: with no faults armed the
// compound certainties of the paper's worked example are untouched by the
// robustness plumbing (the acceptance pin; repro_test.go checks the exact
// values end to end).
func TestDegradedHeuristicKeepsFigure2Certainties(t *testing.T) {
	res, err := Discover(paperdoc.Figure2, Options{Ontology: ontology.Builtin("obituary")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || len(res.FailedHeuristics) != 0 {
		t.Errorf("clean run marked degraded: %v %v", res.Degraded, res.FailedHeuristics)
	}
	if res.Separator != "hr" {
		t.Errorf("separator = %s, want hr", res.Separator)
	}
}
