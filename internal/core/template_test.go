package core

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/tagtree"
	"repro/internal/template"
)

const templateDoc = `<html><body>
<h1>Listings</h1>
<hr><p>Alpha listing, phone 555-1234</p>
<hr><p>Beta listing, phone 555-2345</p>
<hr><p>Gamma listing, phone 555-3456</p>
<hr><p>Delta listing, phone 555-4567</p>
</body></html>`

func openTemplateStore(t *testing.T, cfg template.Config) (*template.Store, *obs.Registry) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	s, err := template.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, cfg.Metrics
}

func docKey(doc, salt string) template.Key {
	return template.MakeKey(template.FingerprintDoc(doc), salt)
}

func TestDiscoverTemplateFastPath(t *testing.T) {
	store, _ := openTemplateStore(t, template.Config{})
	salt := template.Salt("html", "", nil)
	opts := Options{Templates: store, TemplateSalt: salt}

	cold, err := Discover(templateDoc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("after cold run: %+v", st)
	}

	warm, err := Discover(templateDoc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Hits != 1 {
		t.Fatalf("after warm run: %+v", st)
	}

	// The warm answer must be indistinguishable on every stored dimension.
	key := docKey(templateDoc, salt)
	if !NewTemplateEntry(key, cold).Equal(NewTemplateEntry(key, warm)) {
		t.Fatalf("warm result diverged:\ncold %+v\nwarm %+v", cold, warm)
	}
	if warm.Tree == nil || warm.Subtree == nil {
		t.Fatal("warm result lost the real tree")
	}
	// Record splitting must work off the served result's real nodes.
	coldRecs, warmRecs := Split(templateDoc, cold), Split(templateDoc, warm)
	if len(coldRecs) != len(warmRecs) || len(warmRecs) == 0 {
		t.Fatalf("split: cold %d records, warm %d", len(coldRecs), len(warmRecs))
	}
	for i := range coldRecs {
		if coldRecs[i] != warmRecs[i] {
			t.Fatalf("record %d differs:\ncold %q\nwarm %q", i, coldRecs[i], warmRecs[i])
		}
	}
}

func TestDiscoverTemplateSaltSeparatesOptions(t *testing.T) {
	store, _ := openTemplateStore(t, template.Config{})
	base := Options{Templates: store, TemplateSalt: template.Salt("html", "", nil)}
	if _, err := Discover(templateDoc, base); err != nil {
		t.Fatal(err)
	}
	// Different separator list → different salt → no cross-option hit.
	alt := Options{
		Templates:     store,
		TemplateSalt:  template.Salt("html", "", []string{"p"}),
		SeparatorList: []string{"p"},
	}
	if _, err := Discover(templateDoc, alt); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Hits != 0 || st.Misses != 2 || st.Stores != 2 {
		t.Fatalf("salted options should miss each other's entries: %+v", st)
	}
}

func TestDiscoverTemplateSpotCheckDivergenceRelearns(t *testing.T) {
	reg := obs.NewRegistry()
	store, _ := openTemplateStore(t, template.Config{SpotCheckEvery: 1, Metrics: reg})
	salt := template.Salt("html", "", nil)
	opts := Options{Templates: store, TemplateSalt: salt}

	if _, err := Discover(templateDoc, opts); err != nil {
		t.Fatal(err)
	}
	// Poison the stored answer: same key, wrong separator — as if the
	// template drifted since it was learned.
	key := docKey(templateDoc, salt)
	poisoned, ok := store.Lookup(key)
	if !ok {
		t.Fatal("entry missing after learn")
	}
	poisoned.Separator = "p"
	poisoned.TopTags = []string{"p"}
	if err := store.Put(poisoned); err != nil {
		t.Fatal(err)
	}

	// Every hit spot-checks; the fresh answer diverges from the poisoned
	// entry, which must still be served correctly and be relearned.
	res, err := Discover(templateDoc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Separator != "hr" {
		t.Fatalf("spot-checked request served stale separator %q", res.Separator)
	}
	if v := reg.Counter("boundary_template_spot_checks_total", "", "outcome", "divergent").Value(); v != 1 {
		t.Fatalf("divergent spot-checks = %v, want 1", v)
	}
	if v := reg.Counter("boundary_template_drift_total", "", "reason", "divergent").Value(); v != 1 {
		t.Fatalf("divergent drift evictions = %v, want 1", v)
	}
	healed, ok := store.Lookup(key)
	if !ok || healed.Separator != "hr" {
		t.Fatalf("store not relearned: %+v ok=%v", healed, ok)
	}
}

func TestDiscoverTemplateSubtreeMismatchFallsBack(t *testing.T) {
	reg := obs.NewRegistry()
	store, _ := openTemplateStore(t, template.Config{Metrics: reg})
	salt := template.Salt("html", "", nil)
	opts := Options{Templates: store, TemplateSalt: salt}

	if _, err := Discover(templateDoc, opts); err != nil {
		t.Fatal(err)
	}
	key := docKey(templateDoc, salt)
	e, _ := store.Lookup(key)
	e.Subtree = "table" // wrong fan-out winner for this shape
	if err := store.Put(e); err != nil {
		t.Fatal(err)
	}

	res, err := Discover(templateDoc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Separator != "hr" {
		t.Fatalf("mismatched entry served: separator %q", res.Separator)
	}
	if v := reg.Counter("boundary_template_drift_total", "", "reason", "subtree_mismatch").Value(); v != 1 {
		t.Fatalf("subtree_mismatch drift = %v, want 1", v)
	}
	healed, ok := store.Lookup(key)
	if !ok || healed.Subtree != "body" {
		t.Fatalf("store not relearned after mismatch: %+v ok=%v", healed, ok)
	}
}

func TestDiscoverXMLTemplateFastPath(t *testing.T) {
	store, _ := openTemplateStore(t, template.Config{})
	salt := template.Salt("xml", "", nil)
	opts := Options{Templates: store, TemplateSalt: salt}

	xml := `<feed><entry><title>a</title></entry><entry><title>b</title></entry><entry><title>c</title></entry></feed>`
	cold, err := DiscoverXML(xml, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := DiscoverXML(xml, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("xml fast path: %+v", st)
	}
	fp, _ := template.FingerprintTree(tagtree.ParseXML(xml))
	key := template.MakeKey(fp, salt)
	if !NewTemplateEntry(key, cold).Equal(NewTemplateEntry(key, warm)) {
		t.Fatal("xml warm result diverged")
	}
}
