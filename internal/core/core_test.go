package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/certainty"
	"repro/internal/ontology"
	"repro/internal/paperdoc"
	"repro/internal/tagtree"
)

func discoverFigure2(t *testing.T) *Result {
	t.Helper()
	res, err := Discover(paperdoc.Figure2, Options{Ontology: ontology.Builtin("obituary")})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFigure2WorkedExample is the paper's §5.3 golden test end-to-end:
// ORSIH on the Figure 2 document yields hr 99.96%, b 64.75%, br 56.34%.
func TestFigure2WorkedExample(t *testing.T) {
	res := discoverFigure2(t)
	if res.Separator != "hr" {
		t.Fatalf("separator = %s, want hr\n%s", res.Separator, Explain(res))
	}
	want := []struct {
		tag string
		cf  float64
	}{{"hr", 0.9996}, {"b", 0.6475}, {"br", 0.5634}}
	if len(res.Scores) != 3 {
		t.Fatalf("scores = %v", res.Scores)
	}
	for i, w := range want {
		if res.Scores[i].Tag != w.tag {
			t.Errorf("score %d tag = %s, want %s", i, res.Scores[i].Tag, w.tag)
		}
		if math.Abs(res.Scores[i].CF-w.cf) > 5e-5 {
			t.Errorf("%s CF = %.4f, want %.4f", w.tag, res.Scores[i].CF, w.cf)
		}
	}
	if len(res.TopTags) != 1 || res.TopTags[0] != "hr" {
		t.Errorf("TopTags = %v, want [hr]", res.TopTags)
	}
}

func TestFigure2AllHeuristicsAnswered(t *testing.T) {
	res := discoverFigure2(t)
	for _, h := range certainty.AllHeuristics {
		if _, ok := res.Rankings[h]; !ok {
			t.Errorf("heuristic %s missing from rankings", h)
		}
	}
}

func TestFigure2WithoutOntology(t *testing.T) {
	// Without an ontology OM declines; RSIH still picks hr.
	res, err := Discover(paperdoc.Figure2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Rankings["OM"]; ok {
		t.Error("OM should have declined without an ontology")
	}
	if res.Separator != "hr" {
		t.Errorf("separator = %s, want hr", res.Separator)
	}
}

func TestSplitFigure2Records(t *testing.T) {
	res := discoverFigure2(t)
	recs := Split(paperdoc.Figure2, res)
	// Leading chunk (heading) + three obituaries; the trailing chunk after
	// the final hr is empty and dropped.
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4", len(recs))
	}
	wantNames := []string{"Funeral Notices", "Lemar K. Adamson", "Brian Fielding Frost", "Leonard Kenneth Gunther"}
	for i, w := range wantNames {
		if !strings.Contains(recs[i].Text, w) {
			t.Errorf("record %d text %q does not contain %q", i, recs[i].Text[:60], w)
		}
	}
	// Each true obituary contains exactly one death phrase.
	for i := 1; i < 4; i++ {
		n := strings.Count(recs[i].Text, "died on") + strings.Count(recs[i].Text, "passed away")
		if n != 1 {
			t.Errorf("record %d death phrases = %d, want 1", i, n)
		}
	}
}

func TestSplitRecordsAreCleanText(t *testing.T) {
	res := discoverFigure2(t)
	for i, r := range Split(paperdoc.Figure2, res) {
		if strings.ContainsAny(r.Text, "<>") {
			t.Errorf("record %d text contains markup: %q", i, r.Text)
		}
		if r.Start >= r.End {
			t.Errorf("record %d bad range [%d,%d)", i, r.Start, r.End)
		}
		if !strings.Contains(paperdoc.Figure2[r.Start:r.End], r.HTML[:10]) {
			t.Errorf("record %d HTML does not match its range", i)
		}
	}
}

func TestSplitOffsetsPartitionSubtree(t *testing.T) {
	res := discoverFigure2(t)
	recs := Split(paperdoc.Figure2, res)
	for i := 1; i < len(recs); i++ {
		if recs[i].Start < recs[i-1].End {
			t.Errorf("records %d and %d overlap", i-1, i)
		}
	}
}

func TestSingleCandidateShortCircuit(t *testing.T) {
	// Only one candidate tag: it is the separator with certainty 1 and no
	// heuristics are consulted (Section 3).
	doc := "<div><p>one</p><p>two</p><p>three</p></div>"
	res, err := Discover(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Separator != "p" {
		t.Errorf("separator = %s, want p", res.Separator)
	}
	if res.Scores[0].CF != 1 {
		t.Errorf("CF = %v, want 1", res.Scores[0].CF)
	}
	if len(res.Rankings) != 0 {
		t.Errorf("rankings should be empty for single candidate, got %v", res.Rankings)
	}
}

func TestDiscoverNoCandidates(t *testing.T) {
	for _, doc := range []string{"", "plain text only"} {
		if _, err := Discover(doc, Options{}); err == nil {
			t.Errorf("doc %q: expected ErrNoCandidates", doc)
		}
	}
	// A document with tags but no records degenerates to the single-
	// candidate short circuit rather than an error.
	res, err := Discover("<html></html>", Options{})
	if err != nil || res.Separator != "html" {
		t.Errorf("degenerate doc: sep=%v err=%v", res, err)
	}
}

func TestCombinationSubset(t *testing.T) {
	// With only HT, the Figure 2 separator is (wrongly) b — showing the
	// combination option takes effect.
	res, err := Discover(paperdoc.Figure2, Options{
		Combination: certainty.Combination{certainty.HT},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Separator != "b" {
		t.Errorf("HT-only separator = %s, want b", res.Separator)
	}
	if len(res.Rankings) != 1 {
		t.Errorf("rankings = %v, want HT only", res.Rankings)
	}
}

func TestCustomFactors(t *testing.T) {
	// A factor table that trusts only HT flips the answer to b even with
	// all heuristics running.
	factors := certainty.Table{
		"HT": {0.99, 0.0, 0.0, 0.0},
		"OM": {0.0}, "RP": {0.0}, "SD": {0.0}, "IT": {0.0},
	}
	res, err := Discover(paperdoc.Figure2, Options{
		Factors:  factors,
		Ontology: ontology.Builtin("obituary"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Separator != "b" {
		t.Errorf("separator = %s, want b under HT-only factors", res.Separator)
	}
}

func TestCustomSeparatorList(t *testing.T) {
	// Putting b first on IT's list (and nothing else) boosts b.
	res, err := Discover(paperdoc.Figure2, Options{
		Combination:   certainty.Combination{certainty.IT},
		SeparatorList: []string{"b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Separator != "b" {
		t.Errorf("separator = %s, want b", res.Separator)
	}
}

func TestCandidateThresholdOption(t *testing.T) {
	// With a tiny threshold, h1 becomes a candidate too.
	res, err := Discover(paperdoc.Figure2, Options{CandidateThreshold: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Candidates {
		if c.Name == "h1" {
			found = true
		}
	}
	if !found {
		t.Errorf("h1 missing from candidates at low threshold: %v", res.Candidates)
	}
	if res.Separator != "hr" {
		t.Errorf("separator = %s, want hr even at low threshold", res.Separator)
	}
}

func TestExplainFormat(t *testing.T) {
	res := discoverFigure2(t)
	got := Explain(res)
	for _, want := range []string{
		"highest-fan-out subtree: <td> (fan-out 18)",
		"candidates: b(8) br(5) hr(4)",
		"OM: [(hr, 1), (br, 2), (b, 3)]",
		"HT: [(b, 1), (br, 2), (hr, 3)]",
		"(hr, 99.96%)",
		"separator: <hr>",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Explain output missing %q:\n%s", want, got)
		}
	}
}

func TestExplainNoAnswerHeuristic(t *testing.T) {
	res, err := Discover(paperdoc.Figure2, Options{}) // no ontology → OM silent
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Explain(res), "OM: (no answer)") {
		t.Error("Explain should show OM declined")
	}
}

func TestDiscoverXML(t *testing.T) {
	// An XML feed of repeated <listing> elements: discovery generalizes
	// per the paper's footnote 1. The HTML separator list means nothing
	// here, so IT is given the vocabulary's plausible wrappers.
	xml := `<?xml version="1.0"?>
<catalog>
  <listing><name>Adamson</name><price>100</price></listing>
  <listing><name>Frost</name><price>200</price></listing>
  <listing><name>Gunther</name><price>300</price></listing>
  <listing><name>Jensen</name><price>400</price></listing>
</catalog>`
	res, err := DiscoverXML(xml, Options{SeparatorList: []string{"listing", "entry", "item"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Separator != "listing" {
		t.Errorf("separator = %s, want listing\n%s", res.Separator, Explain(res))
	}
	if res.Subtree.Name != "catalog" {
		t.Errorf("subtree = %s, want catalog", res.Subtree.Name)
	}
}

func TestDiscoverXMLCaseSensitiveTags(t *testing.T) {
	xml := `<Feed><Entry>a b c</Entry><Entry>d e f</Entry><Entry>g h i</Entry></Feed>`
	res, err := DiscoverXML(xml, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Separator != "Entry" {
		t.Errorf("separator = %q, want Entry (case preserved)", res.Separator)
	}
}

// TestSplitXMLKeepsXMLSemantics is the regression test for the old
// re-parse bug: Split used to re-tokenize every chunk with tagtree.Parse
// (HTML semantics), so an XML element whose name collides with an HTML
// raw-text element (title, script, style) leaked its child markup into
// Record.Text as literal "<...>" text. Splitting now reads the original
// tree's event stream, so the XML parse semantics carry through.
func TestSplitXMLKeepsXMLSemantics(t *testing.T) {
	xml := `<catalog>` +
		`<listing><title><b>First</b> edition</title><price>100</price></listing>` +
		`<listing><title><b>Second</b> edition</title><price>200</price></listing>` +
		`<listing><title><b>Third</b> edition</title><price>300</price></listing>` +
		`</catalog>`
	res, err := DiscoverXML(xml, Options{SeparatorList: []string{"listing"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Separator != "listing" {
		t.Fatalf("separator = %s, want listing\n%s", res.Separator, Explain(res))
	}
	recs := Split(xml, res)
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	for i, want := range []string{"First edition 100", "Second edition 200", "Third edition 300"} {
		if recs[i].Text != want {
			t.Errorf("record %d text = %q, want %q", i, recs[i].Text, want)
		}
		if strings.ContainsAny(recs[i].Text, "<>") {
			t.Errorf("record %d text contains markup (HTML raw-text semantics leaked): %q",
				i, recs[i].Text)
		}
	}
}

// TestSplitMatchesSubtreeText: the event-stream split must reproduce, per
// record, exactly the text a fresh parse of the chunk would produce for an
// HTML document (the pre-rewrite behavior), keeping Split's contract stable.
func TestSplitMatchesSubtreeText(t *testing.T) {
	res := discoverFigure2(t)
	for i, r := range Split(paperdoc.Figure2, res) {
		want := tagtree.Parse(r.HTML).Root.Text()
		if r.Text != want {
			t.Errorf("record %d text = %q, re-parse gives %q", i, r.Text, want)
		}
	}
}

func TestDiscoverTreeReuse(t *testing.T) {
	tree := tagtree.Parse(paperdoc.Figure2)
	res, err := DiscoverTree(tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree != tree {
		t.Error("result should reference the supplied tree")
	}
}
