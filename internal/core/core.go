// Package core implements the paper's primary contribution: the
// Record-Boundary Discovery Algorithm of Section 5.3.
//
// Given a Web document containing multiple records, the algorithm
//
//  1. builds the tag tree (Appendix A),
//  2. locates the highest-fan-out subtree,
//  3. extracts the candidate separator tags (the 10% rule),
//  4. applies the five individual heuristics (OM, RP, SD, IT, HT), and
//  5. combines their rankings with Stanford certainty theory using the
//     calibrated certainty factors of Table 4, choosing the tag with the
//     highest compound certainty factor as the record separator.
//
// The package also implements the surrounding Record Extractor of Figure 1:
// splitting the document into record-sized chunks at the separator and
// cleaning markup, ready for downstream recognition.
package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/certainty"
	"repro/internal/faultinject"
	"repro/internal/heuristic"
	"repro/internal/htmlparse"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/tagtree"
	"repro/internal/template"
)

// Options configure discovery. The zero value gives the paper's published
// configuration: all five heuristics (ORSIH), the Table 4 certainty factors,
// and the 10% candidate threshold.
type Options struct {
	// Ontology enables the OM heuristic; nil disables it (OM then declines
	// and contributes nothing, as the paper specifies for documents without
	// enough record-identifying fields).
	Ontology *ontology.Ontology
	// Combination selects which heuristics participate; nil means ORSIH.
	Combination certainty.Combination
	// Factors is the rank→certainty table; nil means the paper's Table 4.
	Factors certainty.Table
	// CandidateThreshold is the irrelevant-tag cutoff; 0 means the paper's
	// 10%.
	CandidateThreshold float64
	// SeparatorList overrides IT's identifiable-separator list; nil means
	// the paper's list.
	SeparatorList []string
	// Trace, if non-nil, receives one span per pipeline stage (parse,
	// fan-out search, candidate extraction, recognition, each heuristic,
	// certainty combination) for this call.
	Trace *obs.Trace
	// Metrics, if non-nil, receives pipeline counters and stage-latency
	// histograms (see docs/OBSERVABILITY.md for the metric names).
	Metrics *obs.Registry
	// Limits bounds input resources (document bytes, tag-tree depth, node
	// count); zero-value fields are unlimited. Exceeding a limit fails the
	// call with the sentinel errors of tagtree.Limits / htmlparse.
	Limits tagtree.Limits
	// Faults is the test-only fault-injection hook set (see
	// internal/faultinject); nil — the production value — disables every
	// hook point at the cost of one nil check each.
	Faults *faultinject.Set
	// Templates, if non-nil, enables the learned-wrapper fast path: the
	// tree's structural fingerprint is looked up before the heuristics
	// run, a hit is served from the store, and a clean miss stores the
	// discovered answer for next time (see docs/WRAPPER.md).
	Templates *template.Store
	// TemplateSalt binds store keys to the non-document request options
	// that change the discovery answer; build it with template.Salt from
	// the same fields the caller would hash into a result-cache key.
	// Required whenever Templates is set and any of mode, ontology, or
	// separator list can vary between callers sharing the store.
	TemplateSalt string
	// Arena, if non-nil, runs parsing and discovery on the byte-level hot
	// path: tokens, tree nodes, and event buffers come from the arena
	// (acquire with tagtree.AcquireArena, release when the result has been
	// copied out), and the heuristics run serially on the caller's
	// goroutine instead of fanning out — per-request goroutine spawning is
	// itself a hot-path cost, and an arena caller is already managing
	// per-request resources. Results are byte-identical to the default
	// path; see docs/PERFORMANCE.md for the ownership rules.
	Arena *tagtree.Arena
}

// observed reports whether any observability sink is attached.
func (o Options) observed() bool { return o.Trace != nil || o.Metrics != nil }

// recordStage files one completed stage with both sinks. Stage latencies
// use the microsecond-scale StageBuckets — whole stages finish far below
// the HTTP-oriented default bucket floor.
func (o Options) recordStage(name string, d time.Duration, attrs ...string) {
	o.Trace.Add(name, d, attrs...)
	o.Metrics.Histogram("boundary_stage_duration_seconds",
		"Pipeline stage latency in seconds, by stage.", obs.StageBuckets,
		"stage", name).Observe(d.Seconds())
}

func (o Options) combination() certainty.Combination {
	if o.Combination == nil {
		return certainty.AllHeuristics
	}
	return o.Combination
}

func (o Options) factors() certainty.Table {
	if o.Factors == nil {
		return certainty.PaperTable
	}
	return o.Factors
}

func (o Options) threshold() float64 {
	if o.CandidateThreshold == 0 {
		return tagtree.DefaultCandidateThreshold
	}
	return o.CandidateThreshold
}

func (o Options) heuristics() []heuristic.Heuristic {
	var out []heuristic.Heuristic
	for _, name := range o.combination() {
		h := heuristic.ByName(name)
		if h == nil {
			continue
		}
		if it, ok := h.(heuristic.IT); ok && o.SeparatorList != nil {
			it.List = o.SeparatorList
			h = it
		}
		out = append(out, h)
	}
	return out
}

// Result is the outcome of record-boundary discovery on one document.
type Result struct {
	// Separator is the consensus record-separator tag (the highest
	// compound certainty factor; ties broken by tag name, with all tied
	// tags listed in TopTags).
	Separator string
	// TopTags lists every tag sharing the highest compound CF — the "X
	// tags" of the paper's sc(D) = Y/X success measure. Usually length 1.
	TopTags []string
	// Scores are all candidates with compound certainty factors, best
	// first.
	Scores []certainty.Score
	// Rankings holds each heuristic's individual answer; heuristics that
	// declined are absent.
	Rankings map[string]heuristic.Ranking
	// Candidates are the candidate tags with counts, by descending count.
	Candidates []tagtree.Candidate
	// Subtree is the highest-fan-out subtree's root node.
	Subtree *tagtree.Node
	// Tree is the document's tag tree.
	Tree *tagtree.Tree
	// Degraded reports that at least one heuristic failed (panicked) and
	// the compound certainty was computed from the survivors — the paper's
	// tolerance of missing evidence, applied to our own failures.
	Degraded bool
	// FailedHeuristics names the heuristics that panicked and were
	// isolated, in combination order; empty on a clean run.
	FailedHeuristics []string
	// HeuristicReasons explains, per heuristic name, why a heuristic
	// contributed no ranking: a decline reason in the paper's terms, or
	// "panicked: ..." for an isolated failure. Heuristics that answered are
	// absent.
	HeuristicReasons map[string]string
}

// ErrNoCandidates is returned for documents whose highest-fan-out subtree
// yields no candidate separator tags (e.g. an empty or tagless document).
// The paper assumes every input has multiple records and at least one
// record-separator tag; this error flags inputs violating that assumption.
var ErrNoCandidates = errors.New("core: no candidate separator tags")

// Discover runs the Record-Boundary Discovery Algorithm on an HTML document.
func Discover(doc string, opts Options) (*Result, error) {
	return DiscoverContext(context.Background(), doc, opts)
}

// DiscoverContext is Discover with cancellation: ctx is honored at
// checkpoints throughout the pipeline — the tag-tree build loop, the
// recognizer's chunk scan, and the heuristic fan-out — so an HTTP request
// context that expires actually stops the work instead of merely abandoning
// its result. It returns ctx's error when canceled, and the sentinel limit
// errors of Options.Limits when the document exceeds a resource bound.
func DiscoverContext(ctx context.Context, doc string, opts Options) (*Result, error) {
	start := time.Now()
	if err := opts.Faults.FireCtx(ctx, "core/parse"); err != nil {
		return nil, opts.failDocument(err)
	}
	tree, err := parseHTML(ctx, doc, opts)
	if err != nil {
		return nil, opts.failDocument(err)
	}
	if opts.observed() {
		opts.recordStage("parse", time.Since(start),
			"mode", "html", "bytes", strconv.Itoa(len(doc)))
	}
	return DiscoverTreeContext(ctx, tree, opts)
}

// parseHTML routes to the arena (byte-level) parser when one is attached.
func parseHTML(ctx context.Context, doc string, opts Options) (*tagtree.Tree, error) {
	if opts.Arena != nil {
		return tagtree.ParseArenaContext(ctx, doc, opts.Limits, opts.Arena, opts.Faults)
	}
	return tagtree.ParseContext(ctx, doc, opts.Limits)
}

// parseXML is parseHTML with XML tokenization semantics.
func parseXML(ctx context.Context, doc string, opts Options) (*tagtree.Tree, error) {
	if opts.Arena != nil {
		return tagtree.ParseXMLArenaContext(ctx, doc, opts.Limits, opts.Arena, opts.Faults)
	}
	return tagtree.ParseXMLContext(ctx, doc, opts.Limits)
}

// DiscoverBytes runs discovery directly over document bytes without copying
// them into a string: the bytes are viewed zero-copy, so the caller must not
// mutate doc until the result (and anything aliasing it) is dead. Pair it
// with Options.Arena for the fully allocation-free hot path.
func DiscoverBytes(doc []byte, opts Options) (*Result, error) {
	return DiscoverBytesContext(context.Background(), doc, opts)
}

// DiscoverBytesContext is DiscoverBytes with cancellation.
func DiscoverBytesContext(ctx context.Context, doc []byte, opts Options) (*Result, error) {
	return DiscoverContext(ctx, bytesView(doc), opts)
}

// DiscoverXMLBytesContext is the XML counterpart of DiscoverBytesContext.
func DiscoverXMLBytesContext(ctx context.Context, doc []byte, opts Options) (*Result, error) {
	return DiscoverXMLContext(ctx, bytesView(doc), opts)
}

// DiscoverXML runs the algorithm on an XML document (the paper's footnote 1
// generalization to other DTDs): the tag tree is built with XML semantics —
// case-sensitive names, no void elements, no implied closings. Note that
// IT's default separator list is HTML-specific; for XML vocabularies
// callers usually supply Options.SeparatorList (or rely on the other
// heuristics, which are markup-agnostic).
func DiscoverXML(doc string, opts Options) (*Result, error) {
	return DiscoverXMLContext(context.Background(), doc, opts)
}

// DiscoverXMLContext is DiscoverXML with cancellation and resource limits,
// the XML counterpart of DiscoverContext.
func DiscoverXMLContext(ctx context.Context, doc string, opts Options) (*Result, error) {
	start := time.Now()
	if err := opts.Faults.FireCtx(ctx, "core/parse"); err != nil {
		return nil, opts.failDocument(err)
	}
	tree, err := parseXML(ctx, doc, opts)
	if err != nil {
		return nil, opts.failDocument(err)
	}
	if opts.observed() {
		opts.recordStage("parse", time.Since(start),
			"mode", "xml", "bytes", strconv.Itoa(len(doc)))
	}
	return DiscoverTreeContext(ctx, tree, opts)
}

// DiscoverTree runs discovery over an already-parsed tag tree, for callers
// that need the tree for other purposes too.
func DiscoverTree(tree *tagtree.Tree, opts Options) (*Result, error) {
	return DiscoverTreeContext(context.Background(), tree, opts)
}

// DiscoverTreeContext is DiscoverTree with cancellation and heuristic fault
// isolation. Each heuristic runs behind recover(): one that panics becomes
// a recorded failure (Result.Degraded / Result.FailedHeuristics, the
// boundary_heuristic_panics_total metric, and a "panicked" trace attribute)
// and the compound certainty is computed from the survivors — mirroring the
// paper's Stanford-certainty tolerance of heuristics that decline.
func DiscoverTreeContext(ctx context.Context, tree *tagtree.Tree, opts Options) (*Result, error) {
	// Learned-wrapper fast path: a known template shape skips the
	// heuristics entirely. A miss (or a 1-in-N spot-check hit) falls
	// through to full discovery, whose answer is then stored; spotEntry
	// carries the stored answer a spot-check must re-verify against.
	var tmplKey template.Key
	var spotEntry *template.Entry
	if opts.Templates != nil {
		start := time.Now()
		fp, hfo := template.FingerprintTree(tree)
		tmplKey = template.MakeKey(fp, opts.TemplateSalt)
		if e, ok := opts.Templates.Lookup(tmplKey); ok {
			switch {
			case e.Subtree != hfo.Name:
				// Same hash, different fan-out winner: treat as
				// drift, never serve a mismatched wrapper.
				opts.Templates.ReportDrift(tmplKey, "subtree_mismatch")
			case opts.Templates.SpotCheck():
				spotEntry = e
			default:
				res := resultFromEntry(e, tree, hfo)
				if opts.observed() {
					opts.recordStage("template/hit", time.Since(start),
						"separator", res.Separator,
						"cf", fmt.Sprintf("%.4f", e.Certainty))
				}
				opts.countDocument("ok")
				return res, nil
			}
		}
	}

	// The Data-Record Table (regular-expression recognition) is by far the
	// most expensive context ingredient; skip it when OM is not voting.
	ont := opts.Ontology
	if !opts.combination().Contains(certainty.OM) {
		ont = nil
	}
	var onStage heuristic.StageFunc
	if opts.observed() {
		onStage = func(s heuristic.Stage) { opts.recordStage(s.Name, s.Duration, s.Attrs...) }
	}
	hctx, err := heuristic.NewContextCtx(ctx, tree, opts.threshold(), ont, onStage, opts.Faults)
	if err != nil {
		return nil, opts.failDocument(err)
	}
	if len(hctx.Candidates) == 0 {
		opts.countDocument("no_candidates")
		return nil, ErrNoCandidates
	}

	res := &Result{
		Rankings:   make(map[string]heuristic.Ranking),
		Candidates: hctx.Candidates,
		Subtree:    hctx.Subtree,
		Tree:       tree,
	}

	// Section 3: a single candidate is the separator outright.
	if len(hctx.Candidates) == 1 {
		res.Separator = hctx.Candidates[0].Name
		res.TopTags = []string{res.Separator}
		res.Scores = []certainty.Score{{Tag: res.Separator, CF: 1}}
		opts.countDocument("single_candidate")
		opts.templateLearn(tmplKey, spotEntry, res)
		return res, nil
	}

	// The heuristics share one immutable Context and never write to it, so
	// they fan out concurrently — one goroutine each, isolated by recover()
	// so a panicking heuristic is contained in its own slot. Results land
	// in per-heuristic slots and all observability is filed after the join,
	// in combination order, keeping trace output deterministic and the
	// sinks race-free.
	hs := opts.heuristics()
	answers := make([]heuristicAnswer, len(hs))
	runOne := func(i int, h heuristic.Heuristic) {
		start := time.Now()
		defer func() {
			if r := recover(); r != nil {
				answers[i] = heuristicAnswer{
					name: h.Name(), d: time.Since(start),
					panicked: true, panicMsg: fmt.Sprint(r),
				}
			}
		}()
		// A canceled context turns the remaining heuristics into
		// declines; the post-join check below fails the whole call.
		if ctx.Err() != nil {
			answers[i] = heuristicAnswer{name: h.Name()}
			return
		}
		if err := opts.Faults.FireCtx(ctx, "core/heuristic/"+h.Name()); err != nil {
			answers[i] = heuristicAnswer{name: h.Name(), d: time.Since(start),
				reason: "fault injected"}
			return
		}
		r, ok := h.Rank(hctx)
		answers[i] = heuristicAnswer{name: h.Name(), d: time.Since(start), r: r, ok: ok}
	}
	if opts.Arena != nil {
		// Byte-level hot path: per-request goroutine spawning is a
		// measurable cost at arena throughput, and the answers (panic
		// isolation included) are identical either way, so run in place.
		for i, h := range hs {
			runOne(i, h)
		}
	} else {
		var wg sync.WaitGroup
		for i, h := range hs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				runOne(i, h)
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, opts.failDocument(err)
	}

	rankMaps := make(map[string]map[string]int)
	for i := range answers {
		a := &answers[i]
		switch {
		case a.panicked:
			a.reason = "panicked: " + a.panicMsg
		case !a.ok && a.reason == "":
			a.reason = heuristic.DeclineReason(a.name, hctx)
			if a.reason == "" {
				a.reason = "declined"
			}
		}
		if opts.observed() {
			opts.observeHeuristic(*a)
		}
		if a.panicked {
			res.Degraded = true
			res.FailedHeuristics = append(res.FailedHeuristics, a.name)
		}
		if !a.ok || a.panicked {
			if res.HeuristicReasons == nil {
				res.HeuristicReasons = make(map[string]string)
			}
			res.HeuristicReasons[a.name] = a.reason
			continue
		}
		res.Rankings[a.name] = a.r
		rankMaps[a.name] = a.r.ToMap()
	}

	if err := opts.Faults.FireCtx(ctx, "core/combine"); err != nil {
		return nil, opts.failDocument(err)
	}
	tags := make([]string, len(hctx.Candidates))
	for i, c := range hctx.Candidates {
		tags[i] = c.Name
	}
	start := time.Now()
	res.Scores = certainty.Compound(opts.factors(), opts.combination(), rankMaps, tags)
	res.Separator = res.Scores[0].Tag
	for _, s := range res.Scores {
		if s.CF == res.Scores[0].CF {
			res.TopTags = append(res.TopTags, s.Tag)
		}
	}
	if opts.observed() {
		opts.recordStage("combine", time.Since(start),
			"separator", res.Separator,
			"cf", fmt.Sprintf("%.4f", res.Scores[0].CF))
	}
	if res.Degraded {
		opts.Trace.SetStatus(obs.StatusDegraded,
			"failed heuristics: "+strings.Join(res.FailedHeuristics, ","))
		opts.countDocument("degraded")
	} else {
		opts.countDocument("ok")
	}
	opts.templateLearn(tmplKey, spotEntry, res)
	return res, nil
}

// templateLearn stores a freshly-discovered answer in the wrapper store and
// settles a pending spot-check: a stored answer matching the fresh one is
// healthy; a divergent one is drift — evicted, then overwritten by the fresh
// answer. Degraded results are never stored (the answer came from surviving
// heuristics only, mirroring the result cache's completeness rule).
func (o Options) templateLearn(key template.Key, spot *template.Entry, res *Result) {
	if o.Templates == nil || res.Degraded {
		return
	}
	e := NewTemplateEntry(key, res)
	if spot != nil {
		if spot.Equal(e) {
			o.Templates.ReportSpotCheck("ok")
		} else {
			o.Templates.ReportSpotCheck("divergent")
			o.Templates.ReportDrift(key, "divergent")
		}
	}
	o.Templates.Put(e)
}

// NewTemplateEntry snapshots a clean discovery result as a wrapper-store
// entry under key. The entry holds every field needed to rebuild a Result
// (and hence a wire response) byte-identical to res on any same-shaped tree.
func NewTemplateEntry(key template.Key, res *Result) *template.Entry {
	e := &template.Entry{
		Key:       key.String(),
		Separator: res.Separator,
		TopTags:   append([]string(nil), res.TopTags...),
		Subtree:   res.Subtree.Name,
		Certainty: res.Scores[0].CF,
	}
	for _, s := range res.Scores {
		e.Scores = append(e.Scores, template.Score{Tag: s.Tag, CF: s.CF})
	}
	if len(res.Rankings) > 0 {
		e.Rankings = make(map[string][]template.RankEntry, len(res.Rankings))
		for name, r := range res.Rankings {
			rows := make([]template.RankEntry, len(r))
			for i, row := range r {
				rows[i] = template.RankEntry{Tag: row.Tag, Rank: row.Rank}
			}
			e.Rankings[name] = rows
		}
	}
	for _, c := range res.Candidates {
		e.Candidates = append(e.Candidates, template.Candidate{Tag: c.Name, Count: c.Count})
	}
	if len(res.HeuristicReasons) > 0 {
		e.Reasons = make(map[string]string, len(res.HeuristicReasons))
		for k, v := range res.HeuristicReasons {
			e.Reasons[k] = v
		}
	}
	return e
}

// resultFromEntry rebuilds a Result from a stored wrapper entry. tree and
// hfo are the current document's — real nodes, so downstream record
// splitting works exactly as after a full discovery. The per-heuristic
// ranking Scores are not stored (no wire surface carries them), so rebuilt
// Rankings have Score zero.
func resultFromEntry(e *template.Entry, tree *tagtree.Tree, hfo *tagtree.Node) *Result {
	res := &Result{
		Separator: e.Separator,
		TopTags:   append([]string(nil), e.TopTags...),
		Rankings:  make(map[string]heuristic.Ranking, len(e.Rankings)),
		Subtree:   hfo,
		Tree:      tree,
	}
	for _, s := range e.Scores {
		res.Scores = append(res.Scores, certainty.Score{Tag: s.Tag, CF: s.CF})
	}
	for name, rows := range e.Rankings {
		r := make(heuristic.Ranking, len(rows))
		for i, row := range rows {
			r[i] = heuristic.Ranked{Tag: row.Tag, Rank: row.Rank}
		}
		res.Rankings[name] = r
	}
	for _, c := range e.Candidates {
		res.Candidates = append(res.Candidates, tagtree.Candidate{Name: c.Tag, Count: c.Count})
	}
	if len(e.Reasons) > 0 {
		res.HeuristicReasons = make(map[string]string, len(e.Reasons))
		for k, v := range e.Reasons {
			res.HeuristicReasons[k] = v
		}
	}
	return res
}

// heuristicAnswer is one heuristic's result as collected by the concurrent
// fan-out, held until the join so observability is filed in a stable order.
// panicked marks an isolated heuristic panic (panicMsg carries the value).
type heuristicAnswer struct {
	name     string
	d        time.Duration
	r        heuristic.Ranking
	ok       bool
	panicked bool
	panicMsg string
	// reason says why the heuristic contributed nothing (decline reason,
	// injected fault, panic); "" when it answered.
	reason string
}

// failDocument counts a failed document under the outcome its error class
// maps to (canceled, limit, or error), escalates the trace's status, and
// returns the error unchanged.
func (o Options) failDocument(err error) error {
	o.Trace.SetStatus(obs.StatusError, err.Error())
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		o.countDocument("canceled")
	case errors.Is(err, htmlparse.ErrTooLarge),
		errors.Is(err, tagtree.ErrTooDeep),
		errors.Is(err, tagtree.ErrTooManyNodes):
		o.countDocument("limit")
	default:
		o.countDocument("error")
	}
	return err
}

// countDocument increments the per-outcome document counter.
func (o Options) countDocument(outcome string) {
	o.Metrics.Counter("boundary_documents_total",
		"Documents run through boundary discovery, by outcome.",
		"outcome", outcome).Inc()
}

// observeHeuristic files one heuristic's answer (decline, or isolated
// panic) with both sinks: a trace span named heuristic/<name>, a
// stage-latency observation, and run/decline/panic counters.
func (o Options) observeHeuristic(a heuristicAnswer) {
	stage := "heuristic/" + a.name
	attrs := []string{"declined", "true", "reason", a.reason}
	switch {
	case a.panicked:
		attrs = []string{"panicked", "true", "panic", a.panicMsg}
	case a.ok && len(a.r) > 0:
		attrs = []string{"declined", "false", "rank1", a.r[0].Tag}
	}
	o.recordStage(stage, a.d, attrs...)
	o.Metrics.Histogram("boundary_heuristic_duration_seconds",
		"One heuristic's ranking latency in seconds, by heuristic.",
		obs.StageBuckets, "heuristic", a.name).Observe(a.d.Seconds())
	o.Metrics.Counter("boundary_heuristic_runs_total",
		"Heuristic invocations, by heuristic.", "heuristic", a.name).Inc()
	switch {
	case a.panicked:
		o.Metrics.Counter("boundary_heuristic_panics_total",
			"Heuristic invocations that panicked and were isolated, by heuristic.",
			"heuristic", a.name).Inc()
	case !a.ok:
		o.Metrics.Counter("boundary_heuristic_declines_total",
			"Heuristic invocations that declined to answer, by heuristic.",
			"heuristic", a.name).Inc()
	}
}

// Record is one record-sized chunk of a document.
type Record struct {
	// HTML is the raw markup of the chunk.
	HTML string
	// Text is the chunk's plain text with markup removed and whitespace
	// collapsed — the "cleaned" unstructured record document of Figure 1.
	Text string
	// Start and End are the chunk's byte offsets in the original document.
	Start, End int
}

// Split partitions the document at the separator-tag occurrences inside the
// highest-fan-out subtree, returning one Record per chunk between
// consecutive separators. Content before the first separator and after the
// last one (within the subtree) forms leading/trailing chunks; chunks with
// no plain text (adjacent separators, a trailing separator at the subtree's
// edge) are dropped.
//
// Record.Text comes from the already-built tree's event stream, so the whole
// split is one linear pass with no re-tokenization — and the text honors the
// semantics the tree was parsed with (a record split from a DiscoverXML
// result is never re-read with HTML's void elements or raw-text rules).
func Split(doc string, res *Result) []Record {
	positions := tagtree.Occurrences(res.Tree, res.Subtree, res.Separator)
	if len(positions) == 0 {
		return nil
	}
	subStart, subEnd := res.Subtree.StartPos, res.Subtree.EndPos
	bounds := append([]int{subStart}, positions...)
	bounds = append(bounds, subEnd)

	// One merge walk: text events and bounds are both in ascending document
	// order, and text runs never straddle a bound (every bound is a
	// start-tag position, which terminates any text run before it).
	events := res.Tree.SubtreeEvents(res.Subtree)
	ei := 0
	var out []Record
	var parts []string
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		if lo >= hi || lo < 0 || hi > len(doc) {
			continue
		}
		for ei < len(events) && events[ei].Pos < lo {
			ei++
		}
		parts = parts[:0]
		for ; ei < len(events) && events[ei].Pos < hi; ei++ {
			if events[ei].Kind != tagtree.EventText {
				continue
			}
			if s := tagtree.CollapseSpace(events[ei].Text); s != "" {
				parts = append(parts, s)
			}
		}
		if len(parts) == 0 {
			continue
		}
		out = append(out, Record{
			HTML:  doc[lo:hi],
			Text:  strings.Join(parts, " "),
			Start: lo,
			End:   hi,
		})
	}
	return out
}

// Boundaries returns the record boundaries Split produces as byte spans —
// the machine-comparable form the evaluation harness scores extractors on
// (see internal/eval and docs/EVALUATION.md).
func (r *Result) Boundaries(doc string) []tagtree.Span {
	recs := Split(doc, r)
	spans := make([]tagtree.Span, len(recs))
	for i, rec := range recs {
		spans[i] = tagtree.Span{Start: rec.Start, End: rec.End}
	}
	return spans
}

// SplitAt partitions a document at a known separator tag without running
// discovery: parse, locate the highest-fan-out subtree, split. This is the
// oracle path for callers that already know a page's wrapper — the
// evaluation harness uses it to materialize ground-truth boundaries from a
// corpus document's planted separator, and it is the cheapest way to
// re-split a page whose separator was learned out of band. It returns no
// records when the separator never occurs inside the subtree.
func SplitAt(doc, separator string, limits tagtree.Limits) ([]Record, error) {
	tree, err := tagtree.ParseContext(context.Background(), doc, limits)
	if err != nil {
		return nil, err
	}
	res := &Result{Separator: separator, Subtree: tree.HighestFanOut(), Tree: tree}
	return Split(doc, res), nil
}

// Explain renders a human-readable report of a discovery result: the chosen
// separator, each heuristic's ranking, and the compound scores — the
// worked-example format of §5.3.
func Explain(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "highest-fan-out subtree: <%s> (fan-out %d)\n", res.Subtree.Name, res.Subtree.FanOut())
	b.WriteString("candidates:")
	for _, c := range res.Candidates {
		fmt.Fprintf(&b, " %s(%d)", c.Name, c.Count)
	}
	b.WriteByte('\n')
	for _, name := range certainty.AllHeuristics {
		r, ok := res.Rankings[name]
		if !ok {
			fmt.Fprintf(&b, "%s: (no answer)\n", name)
			continue
		}
		fmt.Fprintf(&b, "%s: [", name)
		for i, e := range r {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%s, %d)", e.Tag, e.Rank)
		}
		b.WriteString("]\n")
	}
	b.WriteString("compound: [")
	for i, s := range res.Scores {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%s, %.2f%%)", s.Tag, s.CF*100)
	}
	b.WriteString("]\n")
	fmt.Fprintf(&b, "separator: <%s>\n", res.Separator)
	return b.String()
}
