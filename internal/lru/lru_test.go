package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetAddBasics(t *testing.T) {
	c := New[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a value")
	}
	if _, evicted := c.Add("a", 1); evicted {
		t.Fatal("first Add evicted")
	}
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Get("a") // b is now least recently used
	if k, evicted := c.Add("c", 3); !evicted || k != "b" {
		t.Fatalf("Add over capacity evicted (%q, %v), want (b, true)", k, evicted)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for k, want := range map[string]int{"a": 1, "c": 3} {
		if v, ok := c.Get(k); !ok || v != want {
			t.Errorf("Get(%s) = %d, %v; want %d", k, v, ok, want)
		}
	}
}

func TestAddRefreshesExistingKey(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	if _, evicted := c.Add("a", 10); evicted {
		t.Fatal("refreshing a resident key must not evict")
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("refresh did not update value: %d", v)
	}
	c.Add("c", 3) // evicts b, not the refreshed a
	if _, ok := c.Get("a"); !ok {
		t.Fatal("refreshed key was evicted")
	}
}

func TestItemsReplayOrder(t *testing.T) {
	c := New[string, int](4)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Get("a") // a becomes most recently used
	items := c.Items()
	if len(items) != 2 || items[0].Key != "b" || items[1].Key != "a" {
		t.Fatalf("Items = %v, want b then a (LRU first)", items)
	}
}

func TestNewPanicsOnNonPositiveCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int, int](0)
}

// TestConcurrentAccess hammers the cache from many goroutines; run with
// -race this verifies the locking discipline.
func TestConcurrentAccess(t *testing.T) {
	c := New[string, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", i%100)
				c.Add(k, i)
				c.Get(k)
				c.Len()
			}
		}()
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("Len = %d exceeds capacity", c.Len())
	}
}
