// Package lru provides a small, concurrency-safe, fixed-capacity LRU cache.
// It is stdlib-only (container/list + a map) and generic over key and value,
// serving as the building block for the HTTP layer's discovery-result cache;
// metrics live with the caller so the cache itself stays dependency-free.
package lru

import (
	"container/list"
	"sync"
)

// entry is one key/value pair stored in the recency list.
type entry[K comparable, V any] struct {
	key   K
	value V
}

// Cache is a fixed-capacity least-recently-used cache. All methods are safe
// for concurrent use. The zero value is not usable; call New.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[K]*list.Element
}

// New returns an empty cache holding at most capacity entries. New panics if
// capacity is not positive — callers model "cache off" by not constructing
// one, not with a zero-capacity instance.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		panic("lru: capacity must be positive")
	}
	return &Cache[K, V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[K]*list.Element, capacity),
	}
}

// Get returns the value for key and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry[K, V]).value, true
	}
	var zero V
	return zero, false
}

// Add inserts or refreshes key, marking it most recently used. When the
// insert pushed a least-recently-used entry out to make room, Add reports
// evicted true along with the evicted key, so durable callers can journal
// the eviction without the cache calling back into them under its lock.
func (c *Cache[K, V]) Add(key K, value V) (evictedKey K, evicted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var zero K
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry[K, V]).value = value
		return zero, false
	}
	c.items[key] = c.ll.PushFront(&entry[K, V]{key: key, value: value})
	if c.ll.Len() <= c.cap {
		return zero, false
	}
	oldest := c.ll.Back()
	c.ll.Remove(oldest)
	k := oldest.Value.(*entry[K, V]).key
	delete(c.items, k)
	return k, true
}

// Len returns the number of entries currently cached.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Remove deletes key, reporting whether it was present.
func (c *Cache[K, V]) Remove(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.items, key)
	return true
}

// Item is one key/value pair as returned by Items.
type Item[K comparable, V any] struct {
	Key   K
	Value V
}

// Items returns the cached pairs from least to most recently used — the
// order that, replayed through Add, reproduces the cache's recency state.
// Durable caches snapshot through it when compacting their journals.
func (c *Cache[K, V]) Items() []Item[K, V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Item[K, V], 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry[K, V])
		out = append(out, Item[K, V]{Key: e.key, Value: e.value})
	}
	return out
}

// Values returns the cached values from least to most recently used — the
// order that, replayed through Add, reproduces the cache's recency state.
func (c *Cache[K, V]) Values() []V {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]V, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		out = append(out, el.Value.(*entry[K, V]).value)
	}
	return out
}
