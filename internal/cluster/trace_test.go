package cluster

// Distributed-tracing conformance: one routed request — including a hedged
// one — must publish trace fragments from the router and every replica it
// touched under a single trace ID, /metrics/cluster must attribute every
// replica's series with a distinct peer label, and ?explain=1 must report all
// five heuristic certainties from whichever replica computed the answer.

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/httpapi"
	"repro/internal/obs"
)

// newTracedCluster builds a 3-replica in-process cluster that shares one
// trace store — the cmd/serve -cluster topology.
func newTracedCluster(t *testing.T, store *obs.TraceStore, mutate func(*Config)) (*Router, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := Config{
		HealthInterval: time.Minute,
		Metrics:        reg,
		TraceStore:     store,
	}
	for i := 0; i < 3; i++ {
		name := "local-" + strconv.Itoa(i)
		cfg.Peers = append(cfg.Peers, NewLocalPeer(name,
			httpapi.NewHandler(httpapi.Config{
				Metrics:   obs.NewRegistry(),
				Traces:    store,
				Service:   name,
				CacheSize: 64,
			})))
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, reg
}

func TestRoutedRequestYieldsOneStitchedTrace(t *testing.T) {
	store := obs.NewTraceStore(obs.TraceStoreConfig{})
	router, _ := newTracedCluster(t, store, nil)

	w := postRouter(t, router, "/v1/discover", discoverBody(""))
	if w.Code != 200 {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	idText := w.Header().Get(obs.TraceIDHeader)
	if idText == "" {
		t.Fatal("routed response carries no X-Trace-ID header")
	}
	id, ok := obs.ParseTraceID(idText)
	if !ok {
		t.Fatalf("X-Trace-ID %q is not a trace id", idText)
	}
	frags, ok := store.Get(id)
	if !ok {
		t.Fatalf("trace %s not in the shared store", id)
	}
	if len(frags) != 2 {
		t.Fatalf("fragments = %d, want 2 (router + replica): %+v", len(frags), frags)
	}
	var routerFrag, replicaFrag *obs.TraceData
	for i := range frags {
		if frags[i].Service == "router" {
			routerFrag = &frags[i]
		} else if strings.HasPrefix(frags[i].Service, "local-") {
			replicaFrag = &frags[i]
		}
	}
	if routerFrag == nil || replicaFrag == nil {
		t.Fatalf("missing router or replica fragment: %+v", frags)
	}
	if routerFrag.TraceID != id || replicaFrag.TraceID != id {
		t.Error("fragments carry different trace ids")
	}
	// The replica fragment must hang off the router's peer-hop span, so the
	// rendered tree nests client → router → replica.
	var hopSpan *obs.Span
	for i := range routerFrag.Spans {
		if strings.HasPrefix(routerFrag.Spans[i].Name, "cluster/peer/") {
			hopSpan = &routerFrag.Spans[i]
		}
	}
	if hopSpan == nil {
		t.Fatalf("router fragment has no cluster/peer span: %+v", routerFrag.Spans)
	}
	if replicaFrag.RemoteParent != hopSpan.ID {
		t.Errorf("replica remote parent = %s, want hop span %s", replicaFrag.RemoteParent, hopSpan.ID)
	}
	if hopSpan.Name != "cluster/peer/"+replicaFrag.Service {
		t.Errorf("hop span %q does not name the replica %q", hopSpan.Name, replicaFrag.Service)
	}
	tree := obs.RenderTraceTree(id, frags)
	if !strings.Contains(tree, "router POST /v1/discover") ||
		!strings.Contains(tree, replicaFrag.Service+" POST /v1/discover") {
		t.Errorf("rendered tree missing a hop:\n%s", tree)
	}
}

// TestHedgedRequestStaysOneTrace: when the primary stalls and the hedge wins,
// the trace still has one ID, with a hop span per attempted peer and the
// winning replica's fragment stitched in.
func TestHedgedRequestStaysOneTrace(t *testing.T) {
	store := obs.NewTraceStore(obs.TraceStoreConfig{})
	faults := faultinject.New()
	router, _ := newTracedCluster(t, store, func(c *Config) {
		c.HedgeAfter = 100 * time.Millisecond
		c.Faults = faults
	})
	faults.Inject("cluster/peer", faultinject.Fault{Delay: 5 * time.Second, Times: 1})

	w := postRouter(t, router, "/v1/discover", discoverBody(""))
	if w.Code != 200 {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	id, ok := obs.ParseTraceID(w.Header().Get(obs.TraceIDHeader))
	if !ok {
		t.Fatal("hedged response carries no trace id")
	}
	frags, ok := store.Get(id)
	if !ok {
		t.Fatal("hedged trace not stored")
	}
	var routerFrag *obs.TraceData
	replicaServices := map[string]bool{}
	for i := range frags {
		if frags[i].Service == "router" {
			routerFrag = &frags[i]
		} else {
			replicaServices[frags[i].Service] = true
		}
	}
	if routerFrag == nil {
		t.Fatal("no router fragment")
	}
	hops := 0
	for _, s := range routerFrag.Spans {
		if strings.HasPrefix(s.Name, "cluster/peer/") {
			hops++
		}
	}
	if hops != 2 {
		t.Errorf("router recorded %d hop spans, want 2 (primary + hedge)", hops)
	}
	// The winning (unstalled) replica's fragment must be present; the stalled
	// primary may or may not publish before the request ends, but whatever
	// fragments exist share the one trace ID.
	if len(replicaServices) < 1 {
		t.Errorf("no replica fragment stitched into hedged trace: %+v", frags)
	}
	for i := range frags {
		if frags[i].TraceID != id {
			t.Errorf("fragment %d has trace id %s, want %s", i, frags[i].TraceID, id)
		}
	}
}

func TestClusterMetricsFederatesDistinctPeers(t *testing.T) {
	store := obs.NewTraceStore(obs.TraceStoreConfig{})
	router, _ := newTracedCluster(t, store, nil)

	// Touch every replica so each registry has request series.
	for i := 0; i < 8; i++ {
		postRouter(t, router, "/v1/discover", discoverBody(strconv.Itoa(i)))
	}
	req := httptest.NewRequest("GET", "/metrics/cluster", nil)
	w := httptest.NewRecorder()
	router.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("/metrics/cluster status = %d: %s", w.Code, w.Body)
	}
	body := w.Body.Bytes()
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("federated output is not valid exposition: %v\n%s", err, body)
	}
	got := string(body)
	for _, peer := range []string{"router", "local-0", "local-1", "local-2"} {
		if !strings.Contains(got, `peer="`+peer+`"`) {
			t.Errorf("federated output missing peer label %q:\n%s", peer, got)
		}
	}
}

func TestExplainPropagatesThroughCluster(t *testing.T) {
	store := obs.NewTraceStore(obs.TraceStoreConfig{})
	router, _ := newTracedCluster(t, store, nil)

	w := postRouter(t, router, "/v1/discover?explain=1", discoverBody(""))
	if w.Code != 200 {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Separator string `json:"separator"`
		Explain   *struct {
			Formula    string `json:"formula"`
			Heuristics []struct {
				Name      string  `json:"name"`
				Declined  bool    `json:"declined"`
				Certainty float64 `json:"certainty"`
			} `json:"heuristics"`
		} `json:"explain"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, w.Body)
	}
	if resp.Explain == nil {
		t.Fatalf("?explain=1 through the router returned no explain block:\n%s", w.Body)
	}
	names := map[string]bool{}
	for _, h := range resp.Explain.Heuristics {
		names[h.Name] = true
		if !h.Declined && h.Certainty <= 0 && h.Name != "OM" {
			// OM legitimately declines without an ontology; the request
			// carries one, so every heuristic should rank or decline with a
			// reason — a zero certainty without declining means rank-miss,
			// which Figure 2 should not produce.
			t.Errorf("heuristic %s: neither declined nor contributing (certainty %v)", h.Name, h.Certainty)
		}
	}
	for _, want := range []string{"OM", "RP", "SD", "IT", "HT"} {
		if !names[want] {
			t.Errorf("explain block missing heuristic %s: %v", want, names)
		}
	}
	if !strings.Contains(resp.Explain.Formula, "CF = ") {
		t.Errorf("formula %q does not spell out the combination", resp.Explain.Formula)
	}
	if resp.Separator != "hr" {
		t.Errorf("separator = %q, want hr", resp.Separator)
	}

	// Byte-level conformance guard: the same request without explain must not
	// change shape (explain is strictly opt-in).
	w2 := postRouter(t, router, "/v1/discover", discoverBody(""))
	if strings.Contains(w2.Body.String(), "explain") {
		t.Errorf("plain response leaked an explain block:\n%s", w2.Body)
	}
}
