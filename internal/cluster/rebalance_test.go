package cluster

import (
	"crypto/sha256"
	"fmt"
	"net/http"
	"strconv"
	"testing"

	"repro/internal/httpapi"
)

// ownerName resolves a key's primary owner to its peer name.
func ownerName(r *ring, names []string, key [sha256.Size]byte) string {
	return names[r.order(key)[0]]
}

// testKeys derives k deterministic ring keys.
func testKeys(k int) [][sha256.Size]byte {
	keys := make([][sha256.Size]byte, k)
	for i := range keys {
		keys[i] = sha256.Sum256([]byte("key-" + strconv.Itoa(i)))
	}
	return keys
}

// peerNames builds n names peer-0..peer-n-1.
func peerNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = "peer-" + strconv.Itoa(i)
	}
	return names
}

// TestRingRebalanceIsIncremental is the rebalancing-math contract: adding or
// removing one peer moves only the key fraction owned by the moved vnodes —
// about 1/(n+1) on add and 1/n on remove — never a full reshuffle, and on
// removal every moved key belonged to the removed peer.
func TestRingRebalanceIsIncremental(t *testing.T) {
	const keyCount = 4000
	keys := testKeys(keyCount)
	for _, n := range []int{2, 3, 5, 8} {
		t.Run(fmt.Sprintf("add-to-%d", n), func(t *testing.T) {
			before, after := peerNames(n), peerNames(n+1)
			rb, ra := newRing(before), newRing(after)
			moved := 0
			for _, key := range keys {
				ob, oa := ownerName(rb, before, key), ownerName(ra, after, key)
				if ob == oa {
					continue
				}
				moved++
				if oa != "peer-"+strconv.Itoa(n) {
					t.Fatalf("key moved from %s to %s; only the new peer may gain keys on add", ob, oa)
				}
			}
			ideal := float64(keyCount) / float64(n+1)
			if f := float64(moved); f < 0.5*ideal || f > 2*ideal {
				t.Errorf("add to %d peers moved %d/%d keys, want near the ideal %.0f (1/(n+1))",
					n, moved, keyCount, ideal)
			}
		})
		t.Run(fmt.Sprintf("remove-from-%d", n+1), func(t *testing.T) {
			before, after := peerNames(n+1), peerNames(n)
			rb, ra := newRing(before), newRing(after)
			removed := "peer-" + strconv.Itoa(n)
			moved := 0
			for _, key := range keys {
				ob, oa := ownerName(rb, before, key), ownerName(ra, after, key)
				if ob == oa {
					continue
				}
				moved++
				if ob != removed {
					t.Fatalf("key moved from %s to %s; only the removed peer's keys may move", ob, oa)
				}
			}
			ideal := float64(keyCount) / float64(n+1)
			if f := float64(moved); f < 0.5*ideal || f > 2*ideal {
				t.Errorf("remove from %d peers moved %d/%d keys, want near the ideal %.0f (1/n)",
					n+1, moved, keyCount, ideal)
			}
		})
	}
}

// TestRingChurnEveryKeyHasExactlyOneOwner is the churn property test: across
// an arbitrary join/leave sequence, every key always resolves to exactly one
// owner drawn from the current member set, deterministically.
func TestRingChurnEveryKeyHasExactlyOneOwner(t *testing.T) {
	keys := testKeys(500)
	members := peerNames(3)
	steps := []struct {
		op   string
		name string
	}{
		{"add", "joiner-a"},
		{"add", "joiner-b"},
		{"remove", "peer-1"},
		{"remove", "joiner-a"},
		{"add", "peer-1"}, // a rejoin
		{"remove", "peer-0"},
	}
	apply := func(cur []string, op, name string) []string {
		if op == "add" {
			return append(append([]string(nil), cur...), name)
		}
		out := cur[:0:0]
		for _, m := range cur {
			if m != name {
				out = append(out, m)
			}
		}
		return out
	}
	for step := -1; step < len(steps); step++ {
		if step >= 0 {
			members = apply(members, steps[step].op, steps[step].name)
		}
		r := newRing(members)
		valid := make(map[string]bool, len(members))
		for _, m := range members {
			valid[m] = true
		}
		for _, key := range keys {
			order := r.order(key)
			if len(order) != len(members) {
				t.Fatalf("step %d: order covers %d peers, want %d", step, len(order), len(members))
			}
			owner := members[order[0]]
			if !valid[owner] {
				t.Fatalf("step %d: key owned by departed member %s", step, owner)
			}
			if again := members[r.order(key)[0]]; again != owner {
				t.Fatalf("step %d: ownership not deterministic: %s then %s", step, owner, again)
			}
		}
	}
}

// TestRouterDynamicMembership drives AddPeer/RemovePeer on a live router:
// requests keep answering 200 around every change, a rejoining peer with a
// changed address replaces the old record, and removal of an unknown peer
// reports false.
func TestRouterDynamicMembership(t *testing.T) {
	r, _ := newTestRouter(t, 2, nil)
	body := discoverBody("")
	check := func(stage string) {
		t.Helper()
		if w := postRouter(t, r, "/v1/discover", body); w.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", stage, w.Code, w.Body.String())
		}
	}
	check("initial 2 peers")

	if err := r.AddPeer(NewLocalPeer("p2", httpapi.NewHandler(httpapi.Config{CacheSize: 64}))); err != nil {
		t.Fatal(err)
	}
	if got := len(r.PeerNames()); got != 3 {
		t.Fatalf("after add: %d peers, want 3", got)
	}
	check("after join")

	// Rejoin under the same name: the new handler replaces the old peer
	// without growing the set.
	if err := r.AddPeer(NewLocalPeer("p2", httpapi.NewHandler(httpapi.Config{CacheSize: 64}))); err != nil {
		t.Fatal(err)
	}
	if got := len(r.PeerNames()); got != 3 {
		t.Fatalf("after rejoin: %d peers, want 3", got)
	}
	check("after rejoin")

	if !r.RemovePeer("p2") {
		t.Fatal("RemovePeer(p2) reported absent")
	}
	if r.RemovePeer("p2") {
		t.Fatal("second RemovePeer(p2) reported present")
	}
	if got := len(r.PeerNames()); got != 2 {
		t.Fatalf("after remove: %d peers, want 2", got)
	}
	check("after leave")
}
