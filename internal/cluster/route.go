package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/httpapi"
	"repro/internal/obs"
)

// fingerprint is the routing key — the same sha256 the replicas use as their
// result-cache key (httpapi.RequestFingerprint), which is what makes routing
// cache-affine.
type fingerprint = [sha256.Size]byte

// Sentinel routing failures. errBusy and errNoPeers map to distinct statuses
// at the edge (429 vs 503); everything else surfaces as 502-flavored 503s.
var (
	errBusy    = errors.New("cluster: every reachable peer's queue is full")
	errNoPeers = errors.New("cluster: no healthy peers in the rotation")
)

// discoverEnvelope mirrors the single-node request envelope field-for-field;
// the router decodes it only to derive the routing key and to replicate
// validation, never to re-serialize — request bytes are forwarded verbatim.
type discoverEnvelope struct {
	HTML          string   `json:"html,omitempty"`
	XML           string   `json:"xml,omitempty"`
	Ontology      string   `json:"ontology,omitempty"`
	SeparatorList []string `json:"separator_list,omitempty"`
}

// routingKey derives the consistent-hash key for one discover request body.
// A well-formed request hashes exactly like the replica's cache key; a
// malformed one (the replica will answer 400) hashes its raw bytes — any
// stable route is fine for an error.
func routingKey(body []byte) fingerprint {
	var env discoverEnvelope
	if err := json.Unmarshal(body, &env); err != nil ||
		(env.HTML == "") == (env.XML == "") {
		return sha256.Sum256(body)
	}
	mode, doc := "html", env.HTML
	if env.XML != "" {
		mode, doc = "xml", env.XML
	}
	return httpapi.RequestFingerprint(mode, doc, env.Ontology, env.SeparatorList)
}

// preference returns peer indices (into v.peers) in routing order for key:
// the ring's clockwise order, with one adjustment — when a past hedge for
// this key was won by another peer, that winner is promoted to the front
// (its cache holds the result; the natural primary was slow last time).
// Winners are remembered by name, not index: membership churn renumbers the
// peer slice, and a stale name simply fails the view lookup and is ignored.
func (r *Router) preference(v *routerView, key fingerprint) []int {
	order := v.ring.order(key)
	if name, ok := r.winners.Get(key); ok {
		if w, ok := v.index[name]; ok && w != order[0] && v.peers[w].healthy() {
			out := make([]int, 0, len(order))
			out = append(out, w)
			for _, p := range order {
				if p != w {
					out = append(out, p)
				}
			}
			return out
		}
	}
	return order
}

// attempt runs one request against one peer: queue slot, fault hooks, the
// wire call, per-peer metrics, a per-hop trace span, and the passive health
// signal. blocking selects backpressure (wait for a slot) over shedding
// (errBusy when the queue is full) — batch/stream fan-out blocks, the
// interactive path and hedges never do.
func (r *Router) attempt(ctx context.Context, v *routerView, idx int, path string, body []byte, blocking bool) (int, []byte, error) {
	ps := v.peers[idx]
	name := ps.peer.Name()
	if blocking {
		if !ps.acquire(ctx) {
			return 0, nil, ctx.Err()
		}
	} else if !ps.tryAcquire() {
		r.counter("boundary_cluster_shed_total",
			"Peer attempts not made because the peer's queue was full, by peer.",
			"peer", name).Inc()
		return 0, nil, errBusy
	}
	gauge := r.queueGauge(name)
	gauge.Set(float64(ps.depth()))
	defer func() {
		ps.release()
		gauge.Set(float64(ps.depth()))
	}()

	// The hop span opens before the wire call and its identity is injected
	// into the outgoing context, so the replica's own trace fragment (sent
	// via the traceparent header by Peer.Do) nests under this exact hop —
	// including each side of a hedge race separately.
	tr := r.trace(ctx)
	span := tr.StartSpan("cluster/peer/" + name)
	if span != nil {
		ctx = obs.ContextWithSpanContext(ctx, tr.ChildContext(span))
	}

	if err := r.cfg.Faults.FireCtx(ctx, "cluster/peer"); err != nil {
		r.finishAttempt(ps, name, path, 0, 0, err, span)
		return 0, nil, err
	}
	if err := r.cfg.Faults.FireCtx(ctx, "cluster/peer/"+name); err != nil {
		r.finishAttempt(ps, name, path, 0, 0, err, span)
		return 0, nil, err
	}

	start := time.Now()
	status, resp, err := ps.peer.Do(ctx, path, body)
	r.finishAttempt(ps, name, path, status, time.Since(start), err, span)
	if err != nil {
		return 0, nil, err
	}
	return status, resp, nil
}

// finishAttempt records one attempt's metrics, trace span, and health signal.
// A transport failure caused by our own context ending (a lost hedge race, a
// hung-up client) says nothing about the peer and is counted separately.
func (r *Router) finishAttempt(ps *peerState, name, path string, status int, elapsed time.Duration, err error, span *obs.Span) {
	outcome := "ok"
	switch {
	case err != nil && ctxRelated(err):
		outcome = "canceled"
	case err != nil:
		outcome = "transport"
		r.noteFailure(ps, err)
	default:
		r.noteSuccess(ps)
		if status >= 500 {
			outcome = "error"
		}
	}
	r.counter("boundary_cluster_requests_total",
		"Requests routed to peers, by peer and outcome.",
		"peer", name, "outcome", outcome).Inc()
	r.cfg.Metrics.Histogram("boundary_cluster_peer_request_seconds",
		"Peer round-trip latency in seconds, by peer.", nil,
		"peer", name).Observe(elapsed.Seconds())
	if span != nil {
		span.End()
		span.Attr("peer", name).Attr("path", path).Attr("outcome", outcome)
		if err == nil {
			span.Attr("status", strconv.Itoa(status))
		}
		if outcome == "transport" || outcome == "error" {
			span.SetStatus(obs.StatusError)
		}
	}
}

// ctxRelated reports whether err stems from a canceled or expired context.
func ctxRelated(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// attemptResult is one peer attempt's outcome in the hedged race.
type attemptResult struct {
	idx    int // index into the live candidate list
	status int
	body   []byte
	err    error
}

// doDiscover routes one interactive discover request: the primary (the key's
// ring owner, or a remembered hedge winner) is tried first; if it has not
// answered within HedgeAfter a hedged second attempt races it on the next
// peer and the first answer wins; transport failures and full queues fall
// through the rest of the preference order. Peer response bytes are returned
// verbatim — the router adds no serialization of its own.
func (r *Router) doDiscover(ctx context.Context, key fingerprint, path string, body []byte) (int, []byte, error) {
	if err := r.cfg.Faults.FireCtx(ctx, "cluster/route"); err != nil {
		return 0, nil, err
	}
	// One view snapshot serves the whole hedged race; a membership change
	// mid-race is picked up by the caller's next request or retry pass.
	v := r.snapshot()
	prefs := r.preference(v, key)
	live := make([]int, 0, len(prefs))
	for _, idx := range prefs {
		if v.peers[idx].healthy() {
			live = append(live, idx)
		}
	}
	if len(live) == 0 {
		return 0, nil, errNoPeers
	}
	r.trace(ctx).Add("cluster/route", 0,
		"primary", v.peers[live[0]].peer.Name(),
		"candidates", strconv.Itoa(len(live)))

	// Attempts run under their own cancel so the losing side of a hedge race
	// stops as soon as a winner returns.
	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan attemptResult, len(live))
	launch := func(i int) {
		go func() {
			status, resp, err := r.attempt(actx, v, live[i], path, body, false)
			results <- attemptResult{idx: i, status: status, body: resp, err: err}
		}()
	}
	launch(0)
	next, inFlight := 1, 1
	hedgeIdx := -1

	var hedgeC <-chan time.Time
	if r.cfg.HedgeAfter > 0 && len(live) > 1 {
		t := time.NewTimer(r.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}

	busy := 0
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			if next >= len(live) {
				break
			}
			if err := r.cfg.Faults.FireCtx(actx, "cluster/hedge"); err != nil {
				break // an armed fault suppresses the hedge
			}
			r.counter("boundary_cluster_hedges_fired_total",
				"Hedged second attempts launched because the primary was slow.").Inc()
			hedgeIdx = next
			launch(next)
			next++
			inFlight++
		case res := <-results:
			inFlight--
			if res.err == nil {
				if res.idx == hedgeIdx {
					r.counter("boundary_cluster_hedges_won_total",
						"Hedged second attempts that answered before the primary.").Inc()
					r.winners.Add(key, v.peers[live[res.idx]].peer.Name())
				}
				return res.status, res.body, nil
			}
			if errors.Is(res.err, errBusy) {
				busy++
			} else if !ctxRelated(res.err) {
				lastErr = res.err
			}
			// Fall through the preference order: the failed slot is replaced
			// by the next untried candidate.
			if next < len(live) {
				r.counter("boundary_cluster_reroutes_total",
					"Requests rerouted to another peer after a failed attempt.").Inc()
				launch(next)
				next++
				inFlight++
			} else if inFlight == 0 {
				if lastErr == nil && busy > 0 {
					return 0, nil, errBusy
				}
				if lastErr == nil {
					lastErr = errors.New("every attempt was canceled")
				}
				return 0, nil, fmt.Errorf("cluster: discovery failed on all %d live peers: %w", len(live), lastErr)
			}
		}
	}
}

// routeBlocking routes one batch/stream document: walk the preference order
// with blocking queue acquisition (backpressure, not shedding), return the
// first peer answer, and fall through on transport failures.
func (r *Router) routeBlocking(ctx context.Context, key fingerprint, path string, body []byte) (int, []byte, error) {
	if err := r.cfg.Faults.FireCtx(ctx, "cluster/route"); err != nil {
		return 0, nil, err
	}
	// Each blocking pass routes against a fresh view, so a retry after a
	// membership change sees the rebalanced ring.
	v := r.snapshot()
	tried := 0
	var lastErr error
	for _, idx := range r.preference(v, key) {
		if !v.peers[idx].healthy() {
			continue
		}
		if tried > 0 {
			r.counter("boundary_cluster_reroutes_total",
				"Requests rerouted to another peer after a failed attempt.").Inc()
		}
		tried++
		status, resp, err := r.attempt(ctx, v, idx, path, body, true)
		if err == nil {
			return status, resp, nil
		}
		if ctx.Err() != nil {
			return 0, nil, ctx.Err()
		}
		lastErr = err
	}
	if tried == 0 {
		return 0, nil, errNoPeers
	}
	return 0, nil, fmt.Errorf("cluster: discovery failed on all %d live peers: %w", tried, lastErr)
}

// routeWithRetry wraps routeBlocking in the bulk engine's retry/backoff
// policy, covering the transient window where a peer died but the health
// checker has not ejected it yet (the next pass routes around it). attempts
// is reported so stream outcomes can carry the engine's Attempts field.
func (r *Router) routeWithRetry(ctx context.Context, seq int, key fingerprint, path string, body []byte) (status int, resp []byte, attempts int, err error) {
	retry := r.cfg.retry()
	maxAttempts := retry.Attempts()
	for attempt := 1; ; attempt++ {
		status, resp, err = r.routeBlocking(ctx, key, path, body)
		if err == nil || ctx.Err() != nil || attempt >= maxAttempts {
			return status, resp, attempt, err
		}
		r.counter("boundary_cluster_retries_total",
			"Whole-preference-order routing passes retried with backoff.").Inc()
		timer := time.NewTimer(retry.Backoff(seq, attempt))
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return 0, nil, attempt, ctx.Err()
		}
	}
}

// handleDiscover is the interactive routed endpoint. Validation errors the
// single node reports before running the pipeline (oversized body) are
// replicated here with identical wording; everything else — including bad
// request bodies — is answered by the peer so responses stay byte-identical.
func (r *Router) handleDiscover(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	// The query string is forwarded verbatim (?explain=1 is computed by the
	// replica, never by the router) but does not join the routing key, so an
	// explain request lands on the same cache-affine peer as its plain twin.
	path := "/v1/discover"
	if req.URL.RawQuery != "" {
		path += "?" + req.URL.RawQuery
	}
	status, resp, err := r.doDiscover(req.Context(), routingKey(body), path, body)
	if err != nil {
		writeRouteErr(w, err)
		return
	}
	writeRaw(w, status, resp)
}

// readBody reads one request body under the single-node size envelope,
// answering the same 413 the replica would.
func readBody(w http.ResponseWriter, req *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(req.Body, httpapi.MaxBodyBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return nil, false
	}
	if len(body) > httpapi.MaxBodyBytes {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds the %d-byte limit", httpapi.MaxBodyBytes))
		return nil, false
	}
	return body, true
}

// writeRaw relays a peer response verbatim.
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// errorBody matches the single-node uniform error response.
type errorBody struct {
	Error string `json:"error"`
}

// writeJSON mirrors the single-node encoder (two-space indent) so
// router-originated bodies render like every other body in the system.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// writeRouteErr maps a routing failure to its edge status: saturation is
// 429 + Retry-After (the load-shedding contract), everything else — no
// healthy peers, all attempts failed, canceled — is 503.
func writeRouteErr(w http.ResponseWriter, err error) {
	if errors.Is(err, errBusy) {
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err)
		return
	}
	writeErr(w, http.StatusServiceUnavailable, err)
}
