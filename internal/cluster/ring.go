package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ringVnodes is the number of virtual nodes each peer contributes to the
// hash ring. 128 points per peer keeps the key-space share of any peer
// within a few percent of fair for small clusters while the ring stays tiny
// (a 16-peer ring is 2048 points, one binary search per lookup).
const ringVnodes = 128

// ringPoint is one virtual node: a position on the 64-bit ring owned by a
// peer index.
type ringPoint struct {
	hash uint64
	peer int
}

// ring is an immutable consistent-hash ring over the configured peers.
// Ejection does not rebuild the ring — lookups simply skip ejected peers —
// so a peer that comes back owns exactly the key range it had before, and
// the caches it warmed stay valid.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // number of distinct peers
}

// newRing hashes every peer name into ringVnodes points. Peer names must be
// unique (NewRouter validates this); the name, not the slice position, owns
// the ring share, so reordering the peer list does not reshuffle keys.
func newRing(names []string) *ring {
	points := make([]ringPoint, 0, len(names)*ringVnodes)
	for i, name := range names {
		for v := 0; v < ringVnodes; v++ {
			sum := sha256.Sum256([]byte(name + "#" + strconv.Itoa(v)))
			points = append(points, ringPoint{
				hash: binary.BigEndian.Uint64(sum[:8]),
				peer: i,
			})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].peer < points[j].peer
	})
	return &ring{points: points, n: len(names)}
}

// order returns every peer index in the key's ring preference order: the
// owner of the first point at or after the key's position, then the next
// distinct peers walking clockwise. The full order — not just the primary —
// is what rerouting and hedging consume: entry 0 is the affinity target,
// entry 1 the natural stand-in, and so on.
func (r *ring) order(key [sha256.Size]byte) []int {
	h := binary.BigEndian.Uint64(key[:8])
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	for i := 0; i < len(r.points) && len(out) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
