package cluster

// Cluster chaos tests: every scenario arms internal/faultinject hooks on the
// router's own hook points (cluster/route, cluster/peer[/<name>],
// cluster/hedge) and asserts the router degrades the way docs/SCALING.md
// promises — hedges beat slow peers, dead peers are routed around without
// losing or duplicating documents, and a fully-dead backend set answers
// clean errors instead of hanging.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/paperdoc"
	"repro/internal/pipeline"
)

func TestHedgeFiresAndWins(t *testing.T) {
	faults := faultinject.New()
	router, reg := newTestRouter(t, 3, func(c *Config) {
		c.HedgeAfter = 250 * time.Millisecond
		c.Faults = faults
	})
	// Stall only the first peer attempt (the primary); the hedge that fires
	// 250ms in lands on an unstalled peer and must win the race. The stall is
	// far longer than the test — the winner's return cancels it.
	faults.Inject("cluster/peer", faultinject.Fault{Delay: 30 * time.Second, Times: 1})

	start := time.Now()
	w := postRouter(t, router, "/v1/discover", discoverBody(""))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("hedged request took %v — it waited for the stalled primary", elapsed)
	}
	if v := reg.Counter("boundary_cluster_hedges_fired_total", "").Value(); v != 1 {
		t.Errorf("hedges_fired_total = %v, want 1", v)
	}
	if v := reg.Counter("boundary_cluster_hedges_won_total", "").Value(); v != 1 {
		t.Errorf("hedges_won_total = %v, want 1", v)
	}
	if got := faults.Fired("cluster/hedge"); got != 1 {
		t.Errorf("cluster/hedge fired %d times, want 1", got)
	}

	// The winner is remembered: an identical request routes straight to the
	// peer that answered, so no second hedge fires.
	if w := postRouter(t, router, "/v1/discover", discoverBody("")); w.Code != http.StatusOK {
		t.Fatalf("repeat status = %d", w.Code)
	}
	if v := reg.Counter("boundary_cluster_hedges_fired_total", "").Value(); v != 1 {
		t.Errorf("hedges_fired_total after winner-affinity repeat = %v, want still 1", v)
	}
}

func TestHedgeSuppressedByArmedFault(t *testing.T) {
	faults := faultinject.New()
	router, reg := newTestRouter(t, 2, func(c *Config) {
		c.HedgeAfter = 10 * time.Millisecond
		c.Faults = faults
	})
	faults.Inject("cluster/peer", faultinject.Fault{Delay: 150 * time.Millisecond, Times: 1})
	faults.Inject("cluster/hedge", faultinject.Fault{Err: fmt.Errorf("no hedging today")})

	if w := postRouter(t, router, "/v1/discover", discoverBody("")); w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	if v := reg.Counter("boundary_cluster_hedges_fired_total", "").Value(); v != 0 {
		t.Errorf("hedges_fired_total = %v, want 0 (suppressed)", v)
	}
	if faults.Fired("cluster/hedge") == 0 {
		t.Error("cluster/hedge hook was never reached")
	}
}

// TestStreamReroutesAroundDeadPeer kills one replica (every attempt on it
// fails) under a 30-document stream and asserts the no-loss/no-duplication
// contract: every sequence number appears exactly once, every document
// succeeds, and the dead peer was passively ejected.
func TestStreamReroutesAroundDeadPeer(t *testing.T) {
	faults := faultinject.New()
	router, reg := newTestRouter(t, 3, func(c *Config) {
		c.Faults = faults
		c.FailAfter = 2
	})
	faults.Inject("cluster/peer/p0", faultinject.Fault{Err: fmt.Errorf("peer p0 is dead")})

	const docs = 30
	var in bytes.Buffer
	for i := 0; i < docs; i++ {
		fmt.Fprintf(&in, "%s\n", mustMarshal(map[string]string{
			"html": paperdoc.Figure2 + fmt.Sprintf("<!-- doc %d -->", i),
		}))
	}
	w := postRouter(t, router, "/v1/discover/stream", in.String())
	if w.Code != http.StatusOK {
		t.Fatalf("stream status = %d", w.Code)
	}

	seen := make(map[int]int)
	sc := bufio.NewScanner(w.Body)
	sc.Buffer(nil, 1<<20)
	for sc.Scan() {
		var o pipeline.Outcome
		if err := json.Unmarshal(sc.Bytes(), &o); err != nil {
			t.Fatalf("bad outcome line %q: %v", sc.Text(), err)
		}
		seen[o.Seq]++
		if o.Error != "" {
			t.Errorf("doc %d failed: %s", o.Seq, o.Error)
		}
		if o.Separator != "hr" {
			t.Errorf("doc %d separator = %q, want hr", o.Seq, o.Separator)
		}
	}
	if len(seen) != docs {
		t.Fatalf("got %d distinct documents, want %d", len(seen), docs)
	}
	for i := 0; i < docs; i++ {
		if seen[i] != 1 {
			t.Errorf("seq %d emitted %d times, want exactly once", i, seen[i])
		}
	}
	if v := reg.Counter("boundary_cluster_reroutes_total", "").Value(); v < 1 {
		t.Errorf("reroutes_total = %v, want >= 1", v)
	}
	if v := reg.Counter("boundary_cluster_ejections_total", "", "peer", "p0").Value(); v < 1 {
		t.Errorf("ejections_total{p0} = %v, want >= 1 (passive ejection)", v)
	}
}

// TestAllPeersDownAnswersCleanly proves total backend loss yields prompt
// 503s (interactive) and inline per-document errors (batch, stream) — never
// a hang.
func TestAllPeersDownAnswersCleanly(t *testing.T) {
	faults := faultinject.New()
	router, _ := newTestRouter(t, 3, func(c *Config) {
		c.Faults = faults
		c.Retry = pipeline.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	})
	faults.Inject("cluster/peer", faultinject.Fault{Err: fmt.Errorf("backend gone")})

	done := make(chan struct{})
	go func() {
		defer close(done)

		if w := postRouter(t, router, "/v1/discover", discoverBody("")); w.Code != http.StatusServiceUnavailable {
			t.Errorf("discover = %d, want 503: %s", w.Code, w.Body)
		}

		batch := fmt.Sprintf(`{"documents": [%s, %s]}`, discoverBody(""), discoverBody("y"))
		bw := postRouter(t, router, "/v1/discover/batch", batch)
		if bw.Code != http.StatusOK {
			t.Errorf("batch = %d, want 200 with inline errors", bw.Code)
		}
		var parsed struct {
			Results []struct {
				Error string `json:"error"`
			} `json:"results"`
		}
		if err := json.Unmarshal(bw.Body.Bytes(), &parsed); err != nil {
			t.Errorf("batch body: %v", err)
		}
		for i, res := range parsed.Results {
			if !strings.Contains(res.Error, "backend gone") && !strings.Contains(res.Error, "no healthy peers") {
				t.Errorf("batch doc %d error = %q, want a cluster failure", i, res.Error)
			}
		}

		sw := postRouter(t, router, "/v1/discover/stream", discoverBody("")+"\n")
		var o pipeline.Outcome
		if err := json.Unmarshal(bytes.TrimSpace(sw.Body.Bytes()), &o); err != nil {
			t.Errorf("stream body %q: %v", sw.Body, err)
		} else if o.Error == "" {
			t.Error("stream outcome has no inline error with every peer down")
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("requests against a fully-dead cluster hung")
	}
}

// TestRouteHookFires pins the cluster/route hook point: an armed error
// fails routing before any peer is touched.
func TestRouteHookFires(t *testing.T) {
	faults := faultinject.New()
	router, _ := newTestRouter(t, 2, func(c *Config) { c.Faults = faults })
	faults.Inject("cluster/route", faultinject.Fault{Err: fmt.Errorf("routing vetoed"), Times: 1})
	if w := postRouter(t, router, "/v1/discover", discoverBody("")); w.Code != http.StatusServiceUnavailable {
		t.Errorf("vetoed route = %d, want 503", w.Code)
	}
	if faults.Fired("cluster/peer") != 0 {
		t.Error("peer attempted despite the route being vetoed")
	}
	if w := postRouter(t, router, "/v1/discover", discoverBody("")); w.Code != http.StatusOK {
		t.Errorf("after fault consumed: %d", w.Code)
	}
}
