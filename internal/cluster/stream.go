package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/httpapi"
	"repro/internal/pipeline"
)

// handleStream is the routed bulk surface: the NDJSON task stream is parsed
// with the bulk engine's own source (identical per-line validation), each
// document fans out to its fingerprint's replica through the blocking
// (backpressure) routing path, and outcomes are merged back in input order
// by the engine's reorder discipline — dense window tokens, a pending map,
// emission strictly by sequence number. The output is byte-identical to the
// single node's /v1/discover/stream for the same input.
func (r *Router) handleStream(w http.ResponseWriter, req *http.Request) {
	var flush func()
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	// Reading the request body while writing the response needs full duplex
	// on HTTP/1.x, exactly as on the single-node surface.
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	src := pipeline.NewNDJSONSource(req.Body, httpapi.MaxBodyBytes)
	sink := pipeline.NewWriterSink(w, flush)
	if err := r.runStream(req.Context(), src, sink); err != nil && req.Context().Err() == nil {
		_, _, _ = sink.Write(&pipeline.Outcome{Seq: -1, Error: "stream aborted: " + err.Error()})
	}
}

// runStream is the router's analogue of the bulk engine's Run loop, with the
// worker body swapped from "run the pipeline locally" to "route to a peer".
func (r *Router) runStream(ctx context.Context, src pipeline.Source, sink pipeline.Sink) error {
	workers := r.cfg.workers(len(r.snapshot().peers))
	window := 4 * workers
	if window < 16 {
		window = 16
	}

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	var srcErr, emitErr error
	work := make(chan *pipeline.Task)
	results := make(chan *pipeline.Outcome, workers)
	tokens := make(chan struct{}, window)

	go func() {
		defer close(work)
		for {
			t, err := src.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				srcErr = fmt.Errorf("pipeline: reading input: %w", err)
				cancelRun()
				return
			}
			select {
			case tokens <- struct{}{}:
			case <-runCtx.Done():
				return
			}
			select {
			case work <- t:
			case <-runCtx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range work {
				results <- r.streamOutcome(runCtx, t)
			}
		}()
	}
	go func() { wg.Wait(); close(results) }()

	pending := make(map[int]*pipeline.Outcome)
	next := 0
	for o := range results {
		pending[o.Seq] = o
		for {
			cur, ready := pending[next]
			if !ready {
				break
			}
			delete(pending, next)
			if emitErr == nil && runCtx.Err() == nil {
				if _, _, err := sink.Write(cur); err != nil {
					emitErr = err
					cancelRun()
				}
			}
			next++
			select {
			case <-tokens:
			default:
			}
		}
	}

	switch {
	case srcErr != nil:
		return srcErr
	case emitErr != nil:
		return emitErr
	default:
		return ctx.Err()
	}
}

// peerDiscoverResponse decodes a replica's /v1/discover answer for
// repackaging into the bulk outcome envelope. Numbers round-trip exactly
// (float64 in, shortest-form float64 out, the same encoding the replica
// used) and map keys re-sort identically, so the re-marshaled line matches
// what the local engine would have written.
type peerDiscoverResponse struct {
	Separator        string                          `json:"separator"`
	TopTags          []string                        `json:"top_tags"`
	Scores           []pipeline.Score                `json:"scores"`
	Rankings         map[string][]pipeline.RankEntry `json:"rankings"`
	Candidates       []pipeline.Candidate            `json:"candidates"`
	Subtree          string                          `json:"subtree"`
	Degraded         bool                            `json:"degraded"`
	FailedHeuristics []string                        `json:"failed_heuristics"`
}

// streamOutcome turns one task into one outcome, replicating the engine's
// per-task validation (invalid lines and unknown modes fail inline with the
// same wording) and otherwise routing the document to its replica.
func (r *Router) streamOutcome(ctx context.Context, t *pipeline.Task) *pipeline.Outcome {
	o := &pipeline.Outcome{Seq: t.Seq, ID: t.TaskID(), Shard: t.Shard}
	if err := t.Invalid(); err != nil {
		o.Error = err.Error()
		return o
	}
	if t.Mode != "html" && t.Mode != "xml" {
		o.Error = fmt.Sprintf("unknown document mode %q", t.Mode)
		return o
	}

	env := discoverEnvelope{Ontology: t.Ontology, SeparatorList: t.SeparatorList}
	if t.Mode == "xml" {
		env.XML = t.Doc
	} else {
		env.HTML = t.Doc
	}
	body := mustMarshal(env)
	key := httpapi.RequestFingerprint(t.Mode, t.Doc, t.Ontology, t.SeparatorList)

	status, resp, attempts, err := r.routeWithRetry(ctx, t.Seq, key, "/v1/discover", body)
	if attempts > 1 {
		o.Attempts = attempts
	}
	switch {
	case err != nil:
		o.Error = err.Error()
	case status != http.StatusOK:
		var peerErr errorBody
		if jsonErr := json.Unmarshal(resp, &peerErr); jsonErr != nil || peerErr.Error == "" {
			peerErr.Error = fmt.Sprintf("peer answered status %d", status)
		}
		o.Error = peerErr.Error
	default:
		var res peerDiscoverResponse
		if jsonErr := json.Unmarshal(resp, &res); jsonErr != nil {
			o.Error = fmt.Sprintf("cluster: undecodable peer response: %v", jsonErr)
			break
		}
		o.Separator = res.Separator
		o.TopTags = res.TopTags
		o.Scores = res.Scores
		if len(res.Rankings) > 0 {
			o.Rankings = res.Rankings
		}
		o.Candidates = res.Candidates
		o.Subtree = res.Subtree
		o.Degraded = res.Degraded
		o.FailedHeuristics = res.FailedHeuristics
	}
	return o
}
