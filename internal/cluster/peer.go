package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/obs"
)

// MaxPeerResponseBytes bounds one peer response body. It is deliberately
// larger than httpapi.MaxBodyBytes: a discovery response carries rankings and
// scores on top of what the request carried.
const MaxPeerResponseBytes = 32 << 20

// Peer is one backend replica the router can send discovery traffic to.
// Implementations must be safe for concurrent use; the router issues
// overlapping Do calls (scatter-gather, hedges) against the same peer.
type Peer interface {
	// Name identifies the peer in metrics, logs, and trace spans — and seeds
	// its consistent-hash ring points, so it must be unique and stable across
	// restarts for cache affinity to survive.
	Name() string
	// Do issues one POST of a JSON body to the peer and returns the HTTP
	// status with the full response body. A non-nil error means the peer was
	// not reached (transport failure); peer-side failures come back as
	// status/body.
	Do(ctx context.Context, path string, body []byte) (status int, resp []byte, err error)
	// Check probes the peer's health (GET /healthz).
	Check(ctx context.Context) error
}

// MetricsScraper is the optional interface a Peer implements to join the
// /metrics/cluster federation: it returns the peer's /metrics exposition.
// It is separate from Peer so existing implementations (including test
// fakes) keep compiling; peers without it federate as scrape failures.
type MetricsScraper interface {
	ScrapeMetrics(ctx context.Context) ([]byte, error)
}

// HTTPPeer is a remote replica speaking the existing single-node HTTP API.
type HTTPPeer struct {
	name   string
	base   string
	client *http.Client
}

// NewHTTPPeer returns a peer for the service at baseURL (scheme://host:port,
// no trailing path). A nil client selects a private default client; pass one
// to control timeouts, connection pooling, or TLS.
func NewHTTPPeer(baseURL string, client *http.Client) *HTTPPeer {
	if client == nil {
		client = &http.Client{}
	}
	return &HTTPPeer{
		name:   baseURL,
		base:   strings.TrimRight(baseURL, "/"),
		client: client,
	}
}

// NewNamedHTTPPeer is NewHTTPPeer with an explicit ring name. Membership
// mode names remote peers by their stable member name instead of their URL,
// so a replica that rejoins on a new port keeps its ring position and its
// routing-affinity history.
func NewNamedHTTPPeer(name, baseURL string, client *http.Client) *HTTPPeer {
	p := NewHTTPPeer(baseURL, client)
	p.name = name
	return p
}

// Name returns the peer's base URL (or the explicit name it was given).
func (p *HTTPPeer) Name() string { return p.name }

// Do posts body to the peer and reads the whole response. When the context
// carries a span context (the router's hop span), it is injected as a W3C
// traceparent header so the peer's trace fragment joins the same trace.
func (p *HTTPPeer) Do(ctx context.Context, path string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if sc := obs.SpanContextFromContext(ctx); sc.Valid() {
		req.Header.Set(obs.TraceparentHeader, sc.Header())
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxPeerResponseBytes+1))
	if err != nil {
		return 0, nil, fmt.Errorf("cluster: reading response from %s: %w", p.name, err)
	}
	if len(data) > MaxPeerResponseBytes {
		return 0, nil, fmt.Errorf("cluster: response from %s exceeds the %d-byte limit", p.name, MaxPeerResponseBytes)
	}
	return resp.StatusCode, data, nil
}

// Check probes GET /healthz.
func (p *HTTPPeer) Check(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s /healthz answered %d", p.name, resp.StatusCode)
	}
	return nil
}

// ScrapeMetrics fetches the peer's GET /metrics exposition for federation.
func (p *HTTPPeer) ScrapeMetrics(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxPeerResponseBytes+1))
	if err != nil {
		return nil, fmt.Errorf("cluster: reading metrics from %s: %w", p.name, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s /metrics answered %d", p.name, resp.StatusCode)
	}
	return data, nil
}

// LocalPeer is an in-process replica: a full single-node handler (its own
// result cache, its own limits) invoked by direct method call instead of a
// network hop. cmd/serve -cluster N runs N of these behind one router,
// turning a single process into a sharded cluster with per-replica caches.
type LocalPeer struct {
	name string
	h    http.Handler
}

// NewLocalPeer wraps a handler (normally httpapi.NewHandler output) as a
// peer named name.
func NewLocalPeer(name string, h http.Handler) *LocalPeer {
	return &LocalPeer{name: name, h: h}
}

// Name returns the replica's configured name.
func (p *LocalPeer) Name() string { return p.name }

// Do runs one in-memory round trip through the replica's handler. Like the
// HTTP transport, it propagates trace context via the traceparent header —
// the replica's middleware reads headers, not context values, so local and
// remote replicas stitch traces identically.
func (p *LocalPeer) Do(ctx context.Context, path string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://cluster.local"+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if sc := obs.SpanContextFromContext(ctx); sc.Valid() {
		req.Header.Set(obs.TraceparentHeader, sc.Header())
	}
	w := newMemWriter()
	p.h.ServeHTTP(w, req)
	return w.status(), w.buf.Bytes(), nil
}

// Check runs GET /healthz through the replica's handler.
func (p *LocalPeer) Check(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://cluster.local/healthz", nil)
	if err != nil {
		return err
	}
	w := newMemWriter()
	p.h.ServeHTTP(w, req)
	if w.status() != http.StatusOK {
		return fmt.Errorf("cluster: %s /healthz answered %d", p.name, w.status())
	}
	return nil
}

// ScrapeMetrics runs GET /metrics through the replica's handler.
func (p *LocalPeer) ScrapeMetrics(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://cluster.local/metrics", nil)
	if err != nil {
		return nil, err
	}
	w := newMemWriter()
	p.h.ServeHTTP(w, req)
	if w.status() != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s /metrics answered %d", p.name, w.status())
	}
	return w.buf.Bytes(), nil
}

// memWriter is the minimal in-memory http.ResponseWriter behind LocalPeer —
// a buffer, not a socket, so a local hop costs no serialization beyond the
// JSON bodies themselves.
type memWriter struct {
	header http.Header
	code   int
	buf    bytes.Buffer
}

func newMemWriter() *memWriter {
	return &memWriter{header: make(http.Header)}
}

func (w *memWriter) Header() http.Header { return w.header }

func (w *memWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
}

func (w *memWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.buf.Write(b)
}

func (w *memWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// peerState pairs a Peer with the router-side serving state: the bounded
// per-peer queue (a semaphore — slots held for the duration of an attempt)
// and the health record the checker and the passive request path both feed.
type peerState struct {
	peer  Peer
	slots chan struct{}

	mu       sync.Mutex
	failures int  // consecutive failures (probe or transport)
	ejected  bool // true while the peer is out of the rotation
}

// tryAcquire takes a queue slot without waiting; it reports false when the
// peer's queue is full (the caller reroutes or propagates 429).
func (p *peerState) tryAcquire() bool {
	select {
	case p.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// acquire waits for a queue slot — the backpressure mode batch and stream
// fan-out use, where throttling beats shedding. It reports false only when
// ctx ends first.
func (p *peerState) acquire(ctx context.Context) bool {
	select {
	case p.slots <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// release returns a queue slot.
func (p *peerState) release() { <-p.slots }

// depth returns the number of occupied queue slots.
func (p *peerState) depth() int { return len(p.slots) }

// healthy reports whether the peer is in the rotation.
func (p *peerState) healthy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.ejected
}
