package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/httpapi"
)

// batchEnvelope is decoded strictly (unknown fields rejected) purely to
// replicate the single node's validation wording; the documents themselves
// travel on as raw bytes.
type batchEnvelope struct {
	Documents []discoverEnvelope `json:"documents"`
}

// rawBatch re-decodes the same body for forwarding: each document's original
// bytes, untouched, so the peer sees exactly what the client sent.
type rawBatch struct {
	Documents []json.RawMessage `json:"documents"`
}

// codeNotAttempted mirrors the single-node batch contract for documents the
// request's end cut off before dispatch.
const codeNotAttempted = "not_attempted"

// batchErrorItem is a per-document failure row; field order matches the
// single node's batchItem (result fields, then error, then code) so the
// reassembled response is byte-identical.
type batchErrorItem struct {
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}

// handleBatch scatter-gathers one batch across the cluster: each document is
// routed independently by its own fingerprint (different documents land on
// different replicas — this is where the cluster's parallelism comes from)
// and the per-document response bytes are merged back in input order.
// Validation mirrors the single node exactly; per-document results are the
// peers' bytes verbatim, re-indented uniformly by the outer encoder.
func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var env batchEnvelope
	if err := dec.Decode(&env); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(env.Documents) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("documents must be non-empty"))
		return
	}
	if len(env.Documents) > httpapi.MaxBatchDocuments {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("batch has %d documents, limit is %d", len(env.Documents), httpapi.MaxBatchDocuments))
		return
	}
	var raw rawBatch
	if err := json.Unmarshal(body, &raw); err != nil || len(raw.Documents) != len(env.Documents) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}

	ctx := req.Context()
	workers := r.cfg.workers(len(r.snapshot().peers))
	if workers > len(raw.Documents) {
		workers = len(raw.Documents)
	}

	attempted := make([]bool, len(raw.Documents))
	items := make([]json.RawMessage, len(raw.Documents))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case i, ok := <-next:
					if !ok {
						return
					}
					attempted[i] = true
					items[i] = r.batchDocument(ctx, i, raw.Documents[i])
				case <-ctx.Done():
					return
				}
			}
		}()
	}
dispatch:
	for i := range raw.Documents {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()

	for i := range items {
		if !attempted[i] {
			items[i] = mustMarshal(batchErrorItem{
				Error: "batch request ended before this document was attempted",
				Code:  codeNotAttempted,
			})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": items})
}

// batchDocument routes one document and converts the peer's answer into the
// batch item shape: a 200 body passes through verbatim; a peer error becomes
// the single node's inline {"error": ...} row.
func (r *Router) batchDocument(ctx context.Context, seq int, doc json.RawMessage) json.RawMessage {
	status, resp, _, err := r.routeWithRetry(ctx, seq, routingKey(doc), "/v1/discover", doc)
	if err != nil {
		return mustMarshal(batchErrorItem{Error: err.Error()})
	}
	if status == http.StatusOK {
		return json.RawMessage(resp)
	}
	var peerErr errorBody
	if jsonErr := json.Unmarshal(resp, &peerErr); jsonErr != nil || peerErr.Error == "" {
		peerErr.Error = fmt.Sprintf("peer answered status %d", status)
	}
	return mustMarshal(batchErrorItem{Error: peerErr.Error})
}

// mustMarshal marshals a value that cannot fail (plain structs of strings).
func mustMarshal(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err) // unreachable: inputs are fixed-shape structs
	}
	return b
}
