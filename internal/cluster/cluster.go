// Package cluster is the horizontal scale-out tier: a router/frontend that
// consistent-hash routes discovery requests across N backend replicas —
// in-process worker backends (LocalPeer) or remote peers speaking the
// existing single-node HTTP API (HTTPPeer) — so the system serves traffic no
// single node could.
//
// The design leans on the pipeline being embarrassingly shardable: each
// document's boundary discovery (tag tree → highest-fan-out subtree → five
// heuristics → certainty combination) is independent of every other
// document, so any replica can serve any request and routing is purely a
// performance decision. The router makes that decision with a consistent
// hash over httpapi.RequestFingerprint — the same fingerprint the replicas
// use as their LRU result-cache key — which gives each replica a stable key
// range and keeps its cache hot for exactly that range.
//
// Around the hash ring sit the serving-tier protections:
//
//   - per-peer health checking (active /healthz probes plus passive
//     transport-failure signals) with ejection and readmission, so a dead
//     replica's key range reroutes to its ring successor and snaps back,
//     caches intact, when it recovers;
//   - bounded per-peer queues, so one saturated replica applies
//     backpressure (batch/stream fan-out waits; interactive requests
//     reroute, then shed with 429) instead of queueing unboundedly;
//   - hedged requests: when the primary has not answered within
//     Config.HedgeAfter, a second attempt fires at the next peer on the
//     ring and the first result wins — cutting tail latency when one
//     replica stalls;
//   - scatter-gather fan-out for /v1/discover/batch and
//     /v1/discover/stream with in-order merge, reusing the bulk engine's
//     retry/backoff machinery (pipeline.RetryPolicy) for transient peer
//     failures.
//
// Every surface is conformance-tested byte-identical to the single-node
// service (see conformance_test.go at the repo root): the router forwards
// request bytes verbatim and returns replica response bytes verbatim, so a
// cluster is indistinguishable from one node except in throughput.
//
// Observability: boundary_cluster_* metrics (per-peer requests, hedges
// fired/won, ejections, queue depth) in Config.Metrics, per-hop trace spans
// in Config.Trace, and the same request-logging middleware as the
// single-node surface. Chaos hooks cluster/route, cluster/peer[/<name>],
// and cluster/hedge arm the fault-injection tests (internal/faultinject).
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/lru"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Config tunes one Router.
type Config struct {
	// Peers are the backend replicas; at least one is required and names
	// must be unique (they seed the hash ring).
	Peers []Peer
	// HedgeAfter is how long the primary peer may go unanswered before a
	// hedged second attempt fires at the next peer on the ring. Zero
	// disables hedging.
	HedgeAfter time.Duration
	// QueueDepth bounds each peer's in-flight requests from this router;
	// <= 0 selects 32. A full queue reroutes interactive requests (429 when
	// every peer is full) and throttles batch/stream fan-out.
	QueueDepth int
	// HealthInterval is the active /healthz probe period; <= 0 selects 1s.
	HealthInterval time.Duration
	// FailAfter is how many consecutive failures (probe or transport) eject
	// a peer from the rotation; <= 0 selects 2. One success readmits it.
	FailAfter int
	// Workers bounds the batch/stream scatter-gather pool; <= 0 selects
	// 4 × len(Peers).
	Workers int
	// Retry governs re-routing retries for batch and stream documents whose
	// routing failed on every currently-available peer (transient windows:
	// a peer died but is not yet ejected). Zero-value selects 3 attempts
	// with the bulk engine's default backoff.
	Retry pipeline.RetryPolicy
	// Metrics receives the boundary_cluster_* series and the router's HTTP
	// middleware metrics; nil disables both.
	Metrics *obs.Registry
	// Logger receives one structured "request" record per routed request;
	// nil disables request logging.
	Logger *slog.Logger
	// Trace, when non-nil, receives one per-hop span per peer attempt
	// (cluster/peer/<name>) plus a cluster/route span per routing decision.
	// With TraceStore set, per-request traces take precedence and this sink
	// only sees requests that carry no trace of their own.
	Trace *obs.Trace
	// TraceStore enables per-request distributed tracing: every routed
	// request gets (or continues, via its traceparent header) a trace, peer
	// hops inject traceparent downstream so replica fragments stitch under
	// the hop span, and finished fragments land here. GET /debug/traces is
	// NOT served by the router itself — mount TraceStore.Handler on an ops
	// mux (cmd/serve does). Nil disables per-request tracing.
	TraceStore *obs.TraceStore
	// Service names the router in trace fragments; empty means "router".
	Service string
	// Faults is the test-only fault-injection hook set; nil in production.
	Faults *faultinject.Set
	// Fallback serves every route the router does not own (/v1/records,
	// /v1/extract, /metrics, ...). Nil answers 404 for those routes —
	// the pure-frontend configuration.
	Fallback http.Handler
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 32
	}
	return c.QueueDepth
}

func (c Config) healthInterval() time.Duration {
	if c.HealthInterval <= 0 {
		return time.Second
	}
	return c.HealthInterval
}

func (c Config) failAfter() int {
	if c.FailAfter <= 0 {
		return 2
	}
	return c.FailAfter
}

func (c Config) workers(peers int) int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 4 * peers
}

func (c Config) retry() pipeline.RetryPolicy {
	r := c.Retry
	if r.MaxAttempts == 0 {
		r.MaxAttempts = 3
	}
	return r
}

// hedgeWinnerCacheSize bounds the router's memory of hedge outcomes (see
// Router.winners).
const hedgeWinnerCacheSize = 4096

// routerView is one immutable snapshot of the peer set and its hash ring.
// Requests load the current view once and route entirely against it, so a
// membership change mid-request is invisible: in-flight attempts finish
// against the peers they started with (a removed peer's attempt fails and
// the normal reroute/retry machinery absorbs it), and the next request —
// or the next retry pass — sees the new view. Mutations build a fresh view
// and swap the pointer; they never modify a published one.
type routerView struct {
	peers []*peerState
	ring  *ring
	index map[string]int // peer name → index in peers
}

// newView builds a view (and its ring) over the given peer states.
func newView(peers []*peerState) *routerView {
	names := make([]string, len(peers))
	index := make(map[string]int, len(peers))
	for i, ps := range peers {
		names[i] = ps.peer.Name()
		index[names[i]] = i
	}
	return &routerView{peers: peers, ring: newRing(names), index: index}
}

// Router is the cluster frontend: an http.Handler owning POST /v1/discover,
// /v1/discover/batch, /v1/discover/stream, and GET /healthz, delegating
// everything else to Config.Fallback. Close it when done — it runs a health
// checker goroutine. The peer set is dynamic: AddPeer/RemovePeer rebalance
// the ring incrementally (names own ring shares, so only the moved vnodes'
// keys change owner) while requests keep flowing.
type Router struct {
	cfg Config

	mu   sync.Mutex // serializes membership mutations (view swaps)
	view atomic.Pointer[routerView]

	// winners remembers, per routing key, the peer that won a hedge — so a
	// hot document on a persistently slow primary is routed straight to the
	// replica that actually answered (and whose cache now holds the result)
	// instead of paying the hedge delay again. Bounded LRU keyed by peer
	// NAME (indices are unstable under membership churn); entries for
	// ejected or departed peers are ignored at lookup.
	winners *lru.Cache[fingerprint, string]

	handler   http.Handler // observability-wrapped mux for owned routes
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// snapshot returns the current immutable view.
func (r *Router) snapshot() *routerView {
	return r.view.Load()
}

// NewRouter validates cfg, builds the ring, and starts the health checker.
// The caller must Close the router to stop that goroutine.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: at least one peer is required")
	}
	seen := make(map[string]bool, len(cfg.Peers))
	for i, p := range cfg.Peers {
		name := p.Name()
		if name == "" {
			return nil, fmt.Errorf("cluster: peer %d has an empty name", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate peer name %q", name)
		}
		seen[name] = true
	}

	r := &Router{
		cfg:     cfg,
		winners: lru.New[fingerprint, string](hedgeWinnerCacheSize),
		done:    make(chan struct{}),
	}
	peers := make([]*peerState, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		peers = append(peers, &peerState{
			peer:  p,
			slots: make(chan struct{}, cfg.queueDepth()),
		})
	}
	r.view.Store(newView(peers))

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/discover", r.handleDiscover)
	mux.HandleFunc("POST /v1/discover/batch", r.handleBatch)
	mux.HandleFunc("POST /v1/discover/stream", r.handleStream)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /metrics/cluster", r.handleClusterMetrics)
	route := func(req *http.Request) string {
		_, pattern := mux.Handler(req)
		return pattern
	}
	var tracing *obs.Tracing
	if cfg.TraceStore != nil {
		tracing = &obs.Tracing{Store: cfg.TraceStore, Service: r.serviceName()}
	}
	r.handler = obs.Middleware(mux, cfg.Logger, cfg.Metrics, route, tracing)

	r.healthyGauge().Set(float64(len(peers)))
	r.wg.Add(1)
	go r.healthLoop()
	return r, nil
}

// AddPeer adds (or, for a rejoining node whose address changed, replaces) a
// peer and rebalances the ring. Replacement retains nothing of the old
// peer's state — a rejoined node is a fresh peer with an empty queue and a
// clean health record. In-flight requests keep routing against the previous
// view until they finish.
func (r *Router) AddPeer(p Peer) error {
	name := p.Name()
	if name == "" {
		return errors.New("cluster: peer has an empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.view.Load()
	peers := make([]*peerState, 0, len(old.peers)+1)
	for _, ps := range old.peers {
		if ps.peer.Name() == name {
			continue // replaced below
		}
		peers = append(peers, ps)
	}
	peers = append(peers, &peerState{
		peer:  p,
		slots: make(chan struct{}, r.cfg.queueDepth()),
	})
	r.swapView(peers, "add", name)
	return nil
}

// RemovePeer drops a peer from the rotation and rebalances the ring; its
// in-flight requests fail over through the normal reroute machinery. It
// reports whether the peer was present.
func (r *Router) RemovePeer(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.view.Load()
	if _, ok := old.index[name]; !ok {
		return false
	}
	peers := make([]*peerState, 0, len(old.peers)-1)
	for _, ps := range old.peers {
		if ps.peer.Name() != name {
			peers = append(peers, ps)
		}
	}
	r.swapView(peers, "remove", name)
	return true
}

// swapView publishes a new view (caller holds r.mu) and records the change.
func (r *Router) swapView(peers []*peerState, op, name string) {
	r.view.Store(newView(peers))
	r.healthyGauge().Set(float64(r.healthyCount()))
	r.cfg.Metrics.Gauge("boundary_cluster_peers",
		"Peers currently in the ring (any health state).").Set(float64(len(peers)))
	r.counter("boundary_cluster_membership_changes_total",
		"Dynamic peer-set changes applied to the ring, by operation.", "op", op).Inc()
	if r.cfg.Logger != nil {
		r.cfg.Logger.Info("cluster membership change", "op", op, "peer", name, "peers", len(peers))
	}
}

// PeerNames returns the current ring membership, sorted by ring construction
// order (the order peers were added).
func (r *Router) PeerNames() []string {
	v := r.snapshot()
	names := make([]string, len(v.peers))
	for i, ps := range v.peers {
		names[i] = ps.peer.Name()
	}
	return names
}

// ServeHTTP dispatches owned routes through the router (with its own
// logging/metrics middleware) and everything else to the fallback.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if r.owned(req) {
		r.handler.ServeHTTP(w, req)
		return
	}
	if r.cfg.Fallback != nil {
		r.cfg.Fallback.ServeHTTP(w, req)
		return
	}
	http.NotFound(w, req)
}

// owned reports whether the router itself serves the request's route.
func (r *Router) owned(req *http.Request) bool {
	switch req.URL.Path {
	case "/v1/discover", "/v1/discover/batch", "/v1/discover/stream":
		return req.Method == http.MethodPost
	case "/healthz", "/metrics/cluster":
		return req.Method == http.MethodGet
	}
	return false
}

// serviceName is the router's name in trace fragments and its own federated
// metrics.
func (r *Router) serviceName() string {
	if r.cfg.Service != "" {
		return r.cfg.Service
	}
	return "router"
}

// trace returns the trace peer hops should record onto: the per-request
// trace when the middleware started one, else the process-wide Config.Trace
// sink (the pre-distributed behavior, kept for embedders and tests).
func (r *Router) trace(ctx context.Context) *obs.Trace {
	if t := obs.TraceFrom(ctx); t != nil {
		return t
	}
	return r.cfg.Trace
}

// handleClusterMetrics is GET /metrics/cluster: the federation endpoint. It
// scrapes every peer's /metrics concurrently (bounded by a short timeout so
// one hung replica cannot stall the scrape), merges them with the router's
// own registry, and re-emits every series with a peer="<name>" label — one
// scrape shows the whole ring. Peers that cannot be scraped are reported as
// boundary_federation_peers{peer}=0 plus a comment, not an error status.
func (r *Router) handleClusterMetrics(w http.ResponseWriter, req *http.Request) {
	ctx, cancel := context.WithTimeout(req.Context(), 2*time.Second)
	defer cancel()

	v := r.snapshot()
	results := make([]obs.Scrape, len(v.peers))
	var wg sync.WaitGroup
	for i, ps := range v.peers {
		wg.Add(1)
		go func(i int, ps *peerState) {
			defer wg.Done()
			name := ps.peer.Name()
			sc, ok := ps.peer.(MetricsScraper)
			if !ok {
				results[i] = obs.Scrape{Peer: name,
					Err: errors.New("peer does not expose metrics")}
				return
			}
			data, err := sc.ScrapeMetrics(ctx)
			results[i] = obs.Scrape{Peer: name, Data: data, Err: err}
		}(i, ps)
	}
	var self bytes.Buffer
	_ = r.cfg.Metrics.WritePrometheus(&self)
	wg.Wait()

	scrapes := append([]obs.Scrape{{Peer: r.serviceName(), Data: self.Bytes()}}, results...)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WriteFederated(w, scrapes)
}

// Close stops the health checker. Safe to call more than once.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.done) })
	r.wg.Wait()
}

// handleHealthz reports the cluster's own health: ok while at least one
// peer is in the rotation, 503 when the whole backend set is ejected — the
// signal an upstream load balancer uses to stop sending traffic here.
func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	healthy := r.healthyCount()
	if healthy == 0 {
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Errorf("cluster: all %d peers are ejected", len(r.snapshot().peers)))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// healthLoop probes every peer each HealthInterval until Close.
func (r *Router) healthLoop() {
	defer r.wg.Done()
	interval := r.cfg.healthInterval()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
			r.checkPeers(interval)
		}
	}
}

// checkPeers probes all peers concurrently, bounded by one interval (capped
// at 2s) so a hung peer cannot stall the next round.
func (r *Router) checkPeers(interval time.Duration) {
	timeout := interval
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, ps := range r.snapshot().peers {
		wg.Add(1)
		go func(ps *peerState) {
			defer wg.Done()
			if err := ps.peer.Check(ctx); err != nil {
				r.noteFailure(ps, err)
			} else {
				r.noteSuccess(ps)
			}
		}(ps)
	}
	wg.Wait()
}

// noteFailure records one failed probe or transport-failed request; crossing
// FailAfter consecutive failures ejects the peer from the rotation.
func (r *Router) noteFailure(ps *peerState, err error) {
	ps.mu.Lock()
	ps.failures++
	ejectNow := !ps.ejected && ps.failures >= r.cfg.failAfter()
	if ejectNow {
		ps.ejected = true
	}
	ps.mu.Unlock()
	if !ejectNow {
		return
	}
	r.counter("boundary_cluster_ejections_total",
		"Peers ejected from the routing rotation after consecutive failures, by peer.",
		"peer", ps.peer.Name()).Inc()
	r.healthyGauge().Set(float64(r.healthyCount()))
	if r.cfg.Logger != nil {
		r.cfg.Logger.Warn("cluster peer ejected",
			"peer", ps.peer.Name(), "err", err.Error())
	}
}

// noteSuccess records one successful probe or request; it readmits an
// ejected peer and clears the failure streak.
func (r *Router) noteSuccess(ps *peerState) {
	ps.mu.Lock()
	readmit := ps.ejected
	ps.failures = 0
	ps.ejected = false
	ps.mu.Unlock()
	if !readmit {
		return
	}
	r.counter("boundary_cluster_readmissions_total",
		"Ejected peers readmitted to the routing rotation after a successful probe, by peer.",
		"peer", ps.peer.Name()).Inc()
	r.healthyGauge().Set(float64(r.healthyCount()))
	if r.cfg.Logger != nil {
		r.cfg.Logger.Info("cluster peer readmitted", "peer", ps.peer.Name())
	}
}

// healthyCount returns how many peers are in the rotation.
func (r *Router) healthyCount() int {
	n := 0
	for _, ps := range r.snapshot().peers {
		if ps.healthy() {
			n++
		}
	}
	return n
}

func (r *Router) counter(name, help string, labels ...string) *obs.Counter {
	return r.cfg.Metrics.Counter(name, help, labels...)
}

func (r *Router) healthyGauge() *obs.Gauge {
	return r.cfg.Metrics.Gauge("boundary_cluster_peers_healthy",
		"Peers currently in the routing rotation.")
}

func (r *Router) queueGauge(peer string) *obs.Gauge {
	return r.cfg.Metrics.Gauge("boundary_cluster_peer_queue_depth",
		"Occupied per-peer queue slots, by peer.", "peer", peer)
}
