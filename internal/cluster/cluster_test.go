package cluster

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/paperdoc"
)

// newTestRouter builds an n-replica in-process cluster. mutate, when non-nil,
// adjusts the config before the router starts.
func newTestRouter(t *testing.T, n int, mutate func(*Config)) (*Router, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := Config{
		HealthInterval: time.Minute, // tests drive health transitions explicitly
		Metrics:        reg,
	}
	for i := 0; i < n; i++ {
		cfg.Peers = append(cfg.Peers,
			NewLocalPeer("p"+strconv.Itoa(i), httpapi.NewHandler(httpapi.Config{CacheSize: 64})))
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, reg
}

func postRouter(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader([]byte(body)))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func discoverBody(suffix string) string {
	doc := paperdoc.Figure2 + suffix
	b := mustMarshal(discoverEnvelope{HTML: doc, Ontology: "obituary"})
	return string(b)
}

func TestRingOrderIsDeterministicAndComplete(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	r1, r2 := newRing(names), newRing(names)
	for i := 0; i < 50; i++ {
		key := sha256.Sum256([]byte(strconv.Itoa(i)))
		o1, o2 := r1.order(key), r2.order(key)
		if len(o1) != len(names) {
			t.Fatalf("order(%d) has %d peers, want %d", i, len(o1), len(names))
		}
		seen := make(map[int]bool)
		for _, p := range o1 {
			if seen[p] {
				t.Fatalf("order(%d) repeats peer %d: %v", i, p, o1)
			}
			seen[p] = true
		}
		for j := range o1 {
			if o1[j] != o2[j] {
				t.Fatalf("order(%d) differs between identical rings: %v vs %v", i, o1, o2)
			}
		}
	}
}

func TestRingOwnershipFollowsNamesNotPositions(t *testing.T) {
	// The same peer names in a different list order must own the same keys:
	// ring shares belong to names, so a reordered -peers flag does not
	// reshuffle every replica's cache.
	fwd := newRing([]string{"a", "b", "c"})
	rev := newRing([]string{"c", "b", "a"})
	fwdNames := []string{"a", "b", "c"}
	revNames := []string{"c", "b", "a"}
	for i := 0; i < 50; i++ {
		key := sha256.Sum256([]byte(strconv.Itoa(i)))
		if fwdNames[fwd.order(key)[0]] != revNames[rev.order(key)[0]] {
			t.Fatalf("key %d owned by %s in one ordering, %s in the other",
				i, fwdNames[fwd.order(key)[0]], revNames[rev.order(key)[0]])
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r := newRing([]string{"a", "b", "c"})
	counts := make([]int, 3)
	for i := 0; i < 600; i++ {
		key := sha256.Sum256([]byte(strconv.Itoa(i)))
		counts[r.order(key)[0]]++
	}
	for p, c := range counts {
		if c < 100 {
			t.Errorf("peer %d owns only %d/600 keys — ring badly unbalanced: %v", p, c, counts)
		}
	}
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(Config{}); err == nil {
		t.Error("no peers: want error")
	}
	h := httpapi.NewServeMux()
	if _, err := NewRouter(Config{Peers: []Peer{NewLocalPeer("", h)}}); err == nil {
		t.Error("empty name: want error")
	}
	if _, err := NewRouter(Config{Peers: []Peer{
		NewLocalPeer("a", h), NewLocalPeer("a", h),
	}}); err == nil {
		t.Error("duplicate name: want error")
	}
}

// TestDiscoverMatchesSingleNode proves the core byte-identity contract on
// success and on the single node's own validation failures.
func TestDiscoverMatchesSingleNode(t *testing.T) {
	single := httpapi.NewHandler(httpapi.Config{CacheSize: 64})
	router, _ := newTestRouter(t, 3, nil)

	cases := map[string]string{
		"success":        discoverBody(""),
		"bad json":       `{"html": `,
		"both modes":     `{"html": "<p>a</p>", "xml": "<a/>"}`,
		"neither mode":   `{"ontology": "obituary"}`,
		"unknown field":  `{"html": "<p>a</p>", "bogus": 1}`,
		"bad ontology":   `{"html": "<p>a</p>", "ontology": "no-such"}`,
		"no candidates":  `{"html": ""}`,
		"xml mode":       `{"xml": "<list><item>a</item><item>b</item><item>c</item></list>"}`,
		"separator list": `{"html": ` + strconv.Quote(paperdoc.Figure2) + `, "separator_list": ["hr", "p"]}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			want := postRouter(t, single, "/v1/discover", body)
			got := postRouter(t, router, "/v1/discover", body)
			if got.Code != want.Code {
				t.Fatalf("status = %d, single node = %d (%s)", got.Code, want.Code, got.Body)
			}
			if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
				t.Errorf("response differs from single node:\n cluster: %s\n single:  %s",
					got.Body, want.Body)
			}
		})
	}
}

func TestDiscoverAffinity(t *testing.T) {
	router, reg := newTestRouter(t, 3, nil)
	body := discoverBody("")
	for i := 0; i < 5; i++ {
		if w := postRouter(t, router, "/v1/discover", body); w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, w.Code, w.Body)
		}
	}
	// All five identical requests must have landed on one peer (whose cache
	// served the repeats), not spread round-robin.
	served := 0
	for i := 0; i < 3; i++ {
		v := reg.Counter("boundary_cluster_requests_total", "",
			"peer", "p"+strconv.Itoa(i), "outcome", "ok").Value()
		if v > 0 {
			served++
			if v != 5 {
				t.Errorf("peer p%d served %v requests, want all 5 on one peer", i, v)
			}
		}
	}
	if served != 1 {
		t.Errorf("%d peers served the identical request, want exactly 1", served)
	}
}

func TestFallbackRouting(t *testing.T) {
	marker := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	router, _ := newTestRouter(t, 2, func(c *Config) { c.Fallback = marker })
	req := httptest.NewRequest(http.MethodGet, "/v1/ontologies", nil)
	w := httptest.NewRecorder()
	router.ServeHTTP(w, req)
	if w.Code != http.StatusTeapot {
		t.Errorf("unowned route status = %d, want fallback's %d", w.Code, http.StatusTeapot)
	}

	bare, _ := newTestRouter(t, 2, nil)
	w = httptest.NewRecorder()
	bare.ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Errorf("unowned route with nil fallback = %d, want 404", w.Code)
	}
}

func TestQueueSaturationSheds429(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		entered <- struct{}{}
		<-release
		httpapi.NewServeMux().ServeHTTP(w, r)
	})
	router, err := NewRouter(Config{
		Peers:          []Peer{NewLocalPeer("slow", slow)},
		QueueDepth:     1,
		HealthInterval: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	// Park one request inside the peer (holding the only queue slot), then
	// prove the next interactive request is shed instead of queued.
	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- postRouter(t, router, "/v1/discover", discoverBody("")) }()
	<-entered

	w := postRouter(t, router, "/v1/discover", discoverBody("x"))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated cluster answered %d, want 429: %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 is missing Retry-After")
	}
	close(release)
	if got := (<-first).Code; got != http.StatusOK {
		t.Fatalf("parked request finished with %d", got)
	}
}

func TestEjectionAndClusterHealthz(t *testing.T) {
	dead := httptest.NewServer(nil)
	dead.Close() // a peer whose address refuses connections
	reg := obs.NewRegistry()
	router, err := NewRouter(Config{
		Peers:          []Peer{NewHTTPPeer(dead.URL, nil)},
		HealthInterval: 20 * time.Millisecond,
		FailAfter:      2,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	deadline := time.Now().Add(5 * time.Second)
	for router.healthyCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead peer was never ejected")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if v := reg.Counter("boundary_cluster_ejections_total", "", "peer", dead.URL).Value(); v < 1 {
		t.Errorf("ejections_total = %v, want >= 1", v)
	}
	if v := reg.Gauge("boundary_cluster_peers_healthy", "").Value(); v != 0 {
		t.Errorf("peers_healthy = %v, want 0", v)
	}

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	router.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("cluster /healthz with all peers ejected = %d, want 503", w.Code)
	}
	if dw := postRouter(t, router, "/v1/discover", discoverBody("")); dw.Code != http.StatusServiceUnavailable {
		t.Errorf("discover with all peers ejected = %d, want 503", dw.Code)
	}
}

func TestReadmissionAfterRecovery(t *testing.T) {
	var down atomic.Bool
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		httpapi.NewServeMux().ServeHTTP(w, r)
	})
	reg := obs.NewRegistry()
	router, err := NewRouter(Config{
		Peers:          []Peer{NewLocalPeer("flaky", flaky)},
		HealthInterval: 20 * time.Millisecond,
		FailAfter:      2,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	down.Store(true)
	waitFor(t, "ejection", func() bool { return router.healthyCount() == 0 })
	down.Store(false)
	waitFor(t, "readmission", func() bool { return router.healthyCount() == 1 })
	if v := reg.Counter("boundary_cluster_readmissions_total", "", "peer", "flaky").Value(); v < 1 {
		t.Errorf("readmissions_total = %v, want >= 1", v)
	}
	if w := postRouter(t, router, "/v1/discover", discoverBody("")); w.Code != http.StatusOK {
		t.Errorf("discover after readmission = %d: %s", w.Code, w.Body)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHTTPPeerAgainstRealServer(t *testing.T) {
	srv := httptest.NewServer(httpapi.NewHandler(httpapi.Config{}))
	defer srv.Close()
	p := NewHTTPPeer(srv.URL, nil)
	if err := p.Check(t.Context()); err != nil {
		t.Fatalf("Check: %v", err)
	}
	status, resp, err := p.Do(t.Context(), "/v1/discover", []byte(discoverBody("")))
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, resp)
	}
	single := postRouter(t, httpapi.NewHandler(httpapi.Config{}), "/v1/discover", discoverBody(""))
	if !bytes.Equal(resp, single.Body.Bytes()) {
		t.Error("HTTP peer response differs from in-process handler")
	}
}

func TestRoutedRequestsAppearInRouterMetrics(t *testing.T) {
	router, reg := newTestRouter(t, 2, nil)
	if w := postRouter(t, router, "/v1/discover", discoverBody("")); w.Code != http.StatusOK {
		t.Fatalf("discover: %d", w.Code)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"boundary_cluster_requests_total",
		"boundary_cluster_peer_request_seconds",
		"boundary_cluster_peers_healthy",
		"http_requests_total",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("exposition is missing %s", want)
		}
	}
}

func TestPerHopTraceSpans(t *testing.T) {
	tr := obs.NewTrace()
	router, _ := newTestRouter(t, 2, func(c *Config) { c.Trace = tr })
	if w := postRouter(t, router, "/v1/discover", discoverBody("")); w.Code != http.StatusOK {
		t.Fatalf("discover: %d", w.Code)
	}
	var route, hop bool
	for _, s := range tr.Spans() {
		switch {
		case s.Name == "cluster/route":
			route = true
		case len(s.Name) > len("cluster/peer/") && s.Name[:len("cluster/peer/")] == "cluster/peer/":
			hop = true
		}
	}
	if !route || !hop {
		t.Errorf("trace spans missing: route=%v per-hop=%v (%v)", route, hop, tr.Spans())
	}
}

func TestBodyLimitMirrorsSingleNode(t *testing.T) {
	router, _ := newTestRouter(t, 1, nil)
	single := httpapi.NewHandler(httpapi.Config{})
	big := fmt.Sprintf(`{"html": %q}`, bytes.Repeat([]byte("x"), httpapi.MaxBodyBytes))
	want := postRouter(t, single, "/v1/discover", big)
	got := postRouter(t, router, "/v1/discover", big)
	if got.Code != http.StatusRequestEntityTooLarge || want.Code != got.Code {
		t.Fatalf("oversized body: cluster %d, single %d", got.Code, want.Code)
	}
	if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		t.Errorf("413 body differs:\n cluster: %s\n single:  %s", got.Body, want.Body)
	}
}
