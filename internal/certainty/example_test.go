package certainty_test

import (
	"fmt"

	"repro/internal/certainty"
)

// The paper's §5.1 example: three independent pieces of evidence with
// certainty factors 88%, 74%, and 66% combine to ~98.9%.
func ExampleCombine() {
	cf := certainty.Combine(0.88, 0.74, 0.66)
	fmt.Printf("%.4f\n", cf)
	// Output: 0.9894
}

// The §5.3 worked example: combining the five heuristics' rankings of the
// Figure 2 candidates under the paper's Table 4 certainty factors.
func ExampleCompound() {
	rankings := map[string]map[string]int{
		certainty.OM: {"hr": 1, "br": 2, "b": 3},
		certainty.RP: {"hr": 1, "br": 2, "b": 3},
		certainty.SD: {"hr": 1, "b": 2, "br": 3},
		certainty.IT: {"hr": 1, "br": 2, "b": 3},
		certainty.HT: {"b": 1, "br": 2, "hr": 3},
	}
	scores := certainty.Compound(certainty.PaperTable, certainty.AllHeuristics,
		rankings, []string{"hr", "b", "br"})
	for _, s := range scores {
		fmt.Println(s)
	}
	// Output:
	// hr 99.96%
	// b 64.75%
	// br 56.34%
}

// Enumerating the paper's 26 compound heuristics.
func ExampleCombinations() {
	all := certainty.Combinations(certainty.AllHeuristics, 2)
	fmt.Println(len(all), "combinations; largest:", all[len(all)-1].Abbrev())
	// Output: 26 combinations; largest: ORSIH
}
