package certainty

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCombinePaperExample(t *testing.T) {
	// §5.1: factors 88%, 74%, 66% combine to "98.93%" (the paper truncates;
	// the exact value is 0.989392).
	got := Combine(0.88, 0.74, 0.66)
	if math.Abs(got-0.989392) > 1e-6 {
		t.Errorf("Combine(0.88,0.74,0.66) = %.6f, want 0.989392", got)
	}
}

func TestCombineEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		factors []float64
		want    float64
	}{
		{"no evidence", nil, 0},
		{"single factor", []float64{0.5}, 0.5},
		{"certainty absorbs", []float64{1.0, 0.3}, 1.0},
		{"zeros are neutral", []float64{0, 0, 0.4}, 0.4},
		{"pairwise rule", []float64{0.6, 0.5}, 0.6 + 0.5 - 0.3},
		{"clamps negatives", []float64{-0.5, 0.4}, 0.4},
		{"clamps above one", []float64{1.5}, 1.0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Combine(c.factors...); !almostEqual(got, c.want) {
				t.Errorf("Combine(%v) = %v, want %v", c.factors, got, c.want)
			}
		})
	}
}

// Property: Combine is commutative, monotone, and stays in [0,1].
func TestCombineProperties(t *testing.T) {
	clamp := func(f float64) float64 {
		f = math.Abs(math.Mod(f, 1))
		if math.IsNaN(f) {
			return 0.5
		}
		return f
	}
	commutative := func(a, b, c float64) bool {
		a, b, c = clamp(a), clamp(b), clamp(c)
		return almostEqual(Combine(a, b, c), Combine(c, a, b))
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Error("commutativity:", err)
	}
	monotone := func(a, b float64) bool {
		a, b = clamp(a), clamp(b)
		return Combine(a, b) >= Combine(a)-1e-12
	}
	if err := quick.Check(monotone, nil); err != nil {
		t.Error("monotonicity:", err)
	}
	bounded := func(fs []float64) bool {
		for i := range fs {
			fs[i] = clamp(fs[i])
		}
		got := Combine(fs...)
		return got >= 0 && got <= 1
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Error("boundedness:", err)
	}
}

func TestTableFactor(t *testing.T) {
	if got := PaperTable.Factor(OM, 1); got != 0.845 {
		t.Errorf("OM rank 1 = %v, want 0.845", got)
	}
	if got := PaperTable.Factor(IT, 2); got != 0.040 {
		t.Errorf("IT rank 2 = %v, want 0.040", got)
	}
	if got := PaperTable.Factor(HT, 5); got != 0 {
		t.Errorf("HT rank 5 = %v, want 0", got)
	}
	if got := PaperTable.Factor("XX", 1); got != 0 {
		t.Errorf("unknown heuristic = %v, want 0", got)
	}
	if got := PaperTable.Factor(OM, 0); got != 0 {
		t.Errorf("rank 0 = %v, want 0", got)
	}
}

func TestPaperTableRowsSumNearOne(t *testing.T) {
	// Each Table 4 row is a probability distribution over ranks 1-4.
	for h, fs := range PaperTable {
		sum := 0.0
		for _, f := range fs {
			sum += f
		}
		if math.Abs(sum-1.0) > 1e-9 {
			t.Errorf("%s factors sum to %v, want 1.0", h, sum)
		}
	}
}

func TestCalibrateAveragesTables2And3(t *testing.T) {
	// The paper's Table 4 is the average of Tables 2 and 3; reproduce the
	// derivation for every heuristic.
	table2 := []Distribution{ // obituaries
		{OM, []float64{0.83, 0.17, 0.00, 0.00}},
		{RP, []float64{0.83, 0.07, 0.10, 0.00}},
		{SD, []float64{0.59, 0.27, 0.14, 0.00}},
		{IT, []float64{0.92, 0.08, 0.00, 0.00}},
		{HT, []float64{0.58, 0.23, 0.17, 0.02}},
	}
	table3 := []Distribution{ // car ads
		{OM, []float64{0.86, 0.08, 0.04, 0.02}},
		{RP, []float64{0.72, 0.18, 0.08, 0.02}},
		{SD, []float64{0.72, 0.18, 0.10, 0.00}},
		{IT, []float64{1.00, 0.00, 0.00, 0.00}},
		{HT, []float64{0.40, 0.42, 0.16, 0.02}},
	}
	got := Calibrate(append(table2, table3...))
	for h, want := range PaperTable {
		for i, w := range want {
			if math.Abs(got[h][i]-w) > 1e-9 {
				t.Errorf("%s rank %d = %v, want %v", h, i+1, got[h][i], w)
			}
		}
	}
}

func TestCalibrateHandlesUnequalLengths(t *testing.T) {
	got := Calibrate([]Distribution{
		{OM, []float64{1.0}},
		{OM, []float64{0.5, 0.5}},
	})
	if !almostEqual(got[OM][0], 0.75) || !almostEqual(got[OM][1], 0.25) {
		t.Errorf("calibrated = %v, want [0.75 0.25]", got[OM])
	}
}

func TestCombinationsCount(t *testing.T) {
	// The paper: sum C(5,i) for i=2..5 = 26 compound heuristics.
	all := Combinations(AllHeuristics, 2)
	if len(all) != 26 {
		t.Fatalf("combinations = %d, want 26", len(all))
	}
	seen := map[string]bool{}
	for _, c := range all {
		ab := c.Abbrev()
		if seen[ab] {
			t.Errorf("duplicate combination %s", ab)
		}
		seen[ab] = true
	}
	if !seen["ORSIH"] || !seen["OR"] || !seen["RSIH"] {
		t.Errorf("missing expected combinations; have %v", seen)
	}
}

func TestCombinationAbbrev(t *testing.T) {
	c := Combination{HT, OM, IT}
	if got := c.Abbrev(); got != "OIH" {
		t.Errorf("Abbrev = %q, want OIH (canonical order)", got)
	}
}

func TestCompoundWorkedExample(t *testing.T) {
	// §5.3: the Figure 2 document's per-heuristic rankings combine to
	// hr 99.96%, b 64.75%, br 56.34% under the paper's Table 4.
	rankings := map[string]map[string]int{
		OM: {"hr": 1, "br": 2, "b": 3},
		RP: {"hr": 1, "br": 2, "b": 3},
		SD: {"hr": 1, "b": 2, "br": 3},
		IT: {"hr": 1, "br": 2, "b": 3},
		HT: {"b": 1, "br": 2, "hr": 3},
	}
	scores := Compound(PaperTable, AllHeuristics, rankings, []string{"hr", "b", "br"})
	want := []struct {
		tag string
		cf  float64
	}{{"hr", 0.9996}, {"b", 0.6475}, {"br", 0.5634}}
	for i, w := range want {
		if scores[i].Tag != w.tag {
			t.Fatalf("rank %d tag = %s, want %s (scores %v)", i+1, scores[i].Tag, w.tag, scores)
		}
		if math.Abs(scores[i].CF-w.cf) > 5e-5 {
			t.Errorf("%s CF = %.6f, want %.4f", w.tag, scores[i].CF, w.cf)
		}
	}
}

func TestCompoundSkipsAbsentHeuristics(t *testing.T) {
	rankings := map[string]map[string]int{
		IT: {"hr": 1},
		// OM supplied no answer: not in map.
	}
	scores := Compound(PaperTable, Combination{OM, IT}, rankings, []string{"hr"})
	if !almostEqual(scores[0].CF, 0.96) {
		t.Errorf("CF = %v, want 0.96 (IT only)", scores[0].CF)
	}
}

func TestCompoundUnrankedTagGetsZeroFromThatHeuristic(t *testing.T) {
	rankings := map[string]map[string]int{
		IT: {"hr": 1}, // "b" not in IT's list → rank 0 → factor 0
		HT: {"b": 1, "hr": 2},
	}
	scores := Compound(PaperTable, Combination{IT, HT}, rankings, []string{"hr", "b"})
	byTag := map[string]float64{}
	for _, s := range scores {
		byTag[s.Tag] = s.CF
	}
	if !almostEqual(byTag["b"], 0.49) {
		t.Errorf("b CF = %v, want 0.49", byTag["b"])
	}
	if !almostEqual(byTag["hr"], Combine(0.96, 0.325)) {
		t.Errorf("hr CF = %v, want %v", byTag["hr"], Combine(0.96, 0.325))
	}
}

func TestCompoundDeterministicTieBreak(t *testing.T) {
	rankings := map[string]map[string]int{IT: {"a": 1, "b": 1}}
	scores := Compound(PaperTable, Combination{IT}, rankings, []string{"b", "a"})
	if scores[0].Tag != "a" || scores[1].Tag != "b" {
		t.Errorf("tie break not by name: %v", scores)
	}
}

func TestScoreString(t *testing.T) {
	s := Score{Tag: "hr", CF: 0.99964}
	if got := s.String(); got != "hr 99.96%" {
		t.Errorf("String = %q", got)
	}
}

func TestTableClone(t *testing.T) {
	c := PaperTable.Clone()
	c[OM][0] = 0
	if PaperTable[OM][0] != 0.845 {
		t.Error("Clone shares backing arrays with original")
	}
}

// Property: improving a tag's rank under any single heuristic never lowers
// its compound certainty factor (the paper's Table 4 columns are
// monotonically non-increasing in rank, and Combine is monotone).
func TestCompoundMonotoneInRank(t *testing.T) {
	for _, h := range AllHeuristics {
		factors := PaperTable[h]
		for better := 0; better+1 < len(factors); better++ {
			if factors[better] < factors[better+1] {
				t.Errorf("%s: factor at rank %d (%v) below rank %d (%v) — Table 4 must be non-increasing",
					h, better+1, factors[better], better+2, factors[better+1])
			}
		}
	}
	// End-to-end: rank 1 vs rank 2 under OM with everything else fixed.
	base := map[string]map[string]int{
		RP: {"x": 2}, SD: {"x": 2}, IT: {"x": 2}, HT: {"x": 2},
	}
	withRank := func(k int) float64 {
		rankings := map[string]map[string]int{OM: {"x": k}}
		for h, m := range base {
			rankings[h] = m
		}
		return Compound(PaperTable, AllHeuristics, rankings, []string{"x"})[0].CF
	}
	prev := 2.0
	for k := 1; k <= 5; k++ {
		cf := withRank(k)
		if cf > prev {
			t.Errorf("compound CF increased when OM rank worsened to %d: %v > %v", k, cf, prev)
		}
		prev = cf
	}
}

// TestCompoundEdgeCases drives the combiner through its degenerate inputs in
// one table: every heuristic declining, no candidate tags at all, an empty
// combination, ranks beyond the calibrated table, and exact ties — each must
// produce zero factors (never an error) with deterministic name-ordered
// output.
func TestCompoundEdgeCases(t *testing.T) {
	cases := []struct {
		name        string
		combination Combination
		rankings    map[string]map[string]int
		tags        []string
		want        []Score
	}{
		{
			name:        "AllHeuristicsDeclined",
			combination: Combination(AllHeuristics),
			rankings:    map[string]map[string]int{},
			tags:        []string{"b", "a"},
			want:        []Score{{Tag: "a", CF: 0}, {Tag: "b", CF: 0}},
		},
		{
			name:        "NoCandidateTags",
			combination: Combination(AllHeuristics),
			rankings:    map[string]map[string]int{IT: {"hr": 1}},
			tags:        nil,
			want:        []Score{},
		},
		{
			name:        "EmptyCombination",
			combination: Combination{},
			rankings:    map[string]map[string]int{IT: {"hr": 1}},
			tags:        []string{"hr"},
			want:        []Score{{Tag: "hr", CF: 0}},
		},
		{
			name:        "SingleTagSingleAnswer",
			combination: Combination{IT},
			rankings:    map[string]map[string]int{IT: {"p": 1}},
			tags:        []string{"p"},
			want:        []Score{{Tag: "p", CF: 0.96}},
		},
		{
			name:        "RankBeyondTable",
			combination: Combination{IT},
			rankings:    map[string]map[string]int{IT: {"p": 9}},
			tags:        []string{"p"},
			want:        []Score{{Tag: "p", CF: 0}},
		},
		{
			name:        "TwoTagTieSortsByName",
			combination: Combination{SD, HT},
			rankings: map[string]map[string]int{
				SD: {"x": 1, "y": 1},
				HT: {"x": 1, "y": 1},
			},
			tags: []string{"y", "x"},
			want: []Score{
				{Tag: "x", CF: Combine(0.655, 0.49)},
				{Tag: "y", CF: Combine(0.655, 0.49)},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Compound(PaperTable, tc.combination, tc.rankings, tc.tags)
			if len(got) != len(tc.want) {
				t.Fatalf("Compound returned %d scores, want %d: %v", len(got), len(tc.want), got)
			}
			for i := range got {
				if got[i].Tag != tc.want[i].Tag || !almostEqual(got[i].CF, tc.want[i].CF) {
					t.Errorf("score[%d] = %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}
