// Package certainty implements the paper's adaptation of Stanford certainty
// theory (Section 5): combining independent heuristic evidence into a
// compound certainty factor, the calibrated rank→factor tables (paper
// Table 4), calibration of such tables from ranking-distribution
// measurements (Tables 2 and 3), and enumeration of heuristic combinations
// (Table 5).
package certainty

import (
	"fmt"
	"sort"
)

// Combine applies the Stanford certainty-theory rule for independent
// evidence supporting the same observation:
//
//	CF(E1,E2) = CF(E1) + CF(E2) − CF(E1)·CF(E2)
//
// folded over any number of factors, which is equivalent to
// 1 − ∏(1 − CFi). Factors are probabilities in [0,1]; values outside the
// range are clamped.
func Combine(factors ...float64) float64 {
	remain := 1.0
	for _, f := range factors {
		if f < 0 {
			f = 0
		} else if f > 1 {
			f = 1
		}
		remain *= 1 - f
	}
	return 1 - remain
}

// Table maps a heuristic name to its certainty factors by rank: entry k-1
// is the certainty that the heuristic's rank-k choice is a correct record
// separator. Ranks beyond the slice carry zero certainty.
type Table map[string][]float64

// Factor returns the certainty factor the table assigns to the given
// heuristic at the given 1-based rank. Unknown heuristics and out-of-range
// ranks yield 0.
func (t Table) Factor(heuristic string, rank int) float64 {
	fs := t[heuristic]
	if rank < 1 || rank > len(fs) {
		return 0
	}
	return fs[rank-1]
}

// Clone returns a deep copy of the table.
func (t Table) Clone() Table {
	out := make(Table, len(t))
	for k, v := range t {
		out[k] = append([]float64(nil), v...)
	}
	return out
}

// Heuristic names used throughout the reproduction, matching the paper's
// abbreviations.
const (
	OM = "OM" // ontology matching
	RP = "RP" // repeating-tag pattern
	SD = "SD" // standard deviation
	IT = "IT" // identifiable separator tags
	HT = "HT" // highest-count tags
)

// AllHeuristics lists the five heuristic names in the paper's ORSIH order.
var AllHeuristics = []string{OM, RP, SD, IT, HT}

// PaperTable is the paper's Table 4: certainty factors obtained by averaging
// the obituary and car-advertisement training distributions (Tables 2 and 3).
var PaperTable = Table{
	OM: {0.845, 0.125, 0.020, 0.010},
	RP: {0.775, 0.125, 0.090, 0.010},
	SD: {0.655, 0.225, 0.120, 0.000},
	IT: {0.960, 0.040, 0.000, 0.000},
	HT: {0.490, 0.325, 0.165, 0.020},
}

// Distribution records, for one heuristic on one training corpus, the
// fraction of documents in which the correct separator appeared at each
// rank: entry k-1 is the fraction ranked k. This is one row of the paper's
// Table 2 or Table 3.
type Distribution struct {
	Heuristic string
	AtRank    []float64
}

// Calibrate averages ranking distributions per heuristic into a certainty
// table, exactly how the paper derives Table 4 from Tables 2 and 3. Each
// heuristic's factors are the element-wise mean of its distributions;
// distributions of different lengths are padded with zeros.
func Calibrate(dists []Distribution) Table {
	sums := make(map[string][]float64)
	counts := make(map[string]int)
	for _, d := range dists {
		s := sums[d.Heuristic]
		for len(s) < len(d.AtRank) {
			s = append(s, 0)
		}
		for i, v := range d.AtRank {
			s[i] += v
		}
		sums[d.Heuristic] = s
		counts[d.Heuristic]++
	}
	out := make(Table, len(sums))
	for h, s := range sums {
		n := float64(counts[h])
		fs := make([]float64, len(s))
		for i, v := range s {
			fs[i] = v / n
		}
		out[h] = fs
	}
	return out
}

// Combination is a subset of heuristic names, e.g. {"OM","RP","SD","IT","HT"}
// for the paper's ORSIH compound heuristic.
type Combination []string

// Abbrev renders the combination in the paper's single-letter notation
// (O, R, S, I, H), e.g. "ORSIH".
func (c Combination) Abbrev() string {
	order := map[string]int{OM: 0, RP: 1, SD: 2, IT: 3, HT: 4}
	letters := []byte("ORSIH")
	present := make([]bool, 5)
	for _, h := range c {
		if i, ok := order[h]; ok {
			present[i] = true
		}
	}
	var out []byte
	for i, p := range present {
		if p {
			out = append(out, letters[i])
		}
	}
	return string(out)
}

// Contains reports whether the combination includes the named heuristic.
func (c Combination) Contains(h string) bool {
	for _, x := range c {
		if x == h {
			return true
		}
	}
	return false
}

// Combinations enumerates every subset of the given heuristics with at least
// minSize members, in a stable order (by size, then lexicographic position).
// Combinations(AllHeuristics, 2) yields the paper's 26 compound heuristics.
func Combinations(heuristics []string, minSize int) []Combination {
	n := len(heuristics)
	var out []Combination
	for mask := 1; mask < 1<<n; mask++ {
		var c Combination
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				c = append(c, heuristics[i])
			}
		}
		if len(c) >= minSize {
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return len(out[i]) < len(out[j]) })
	return out
}

// Score is a tag with its compound certainty factor.
type Score struct {
	Tag string
	CF  float64
}

// String formats the score like the paper's worked example: "hr 99.96%".
func (s Score) String() string { return fmt.Sprintf("%s %.2f%%", s.Tag, s.CF*100) }

// Compound combines per-heuristic rankings into compound certainty factors
// for each tag. rankings maps heuristic name → (tag → 1-based rank); a
// heuristic absent from the map supplied no answer and contributes nothing.
// Tags missing from a heuristic's ranking get zero factor from it. The
// result is sorted by descending CF, ties broken by tag name.
func Compound(table Table, combination Combination, rankings map[string]map[string]int, tags []string) []Score {
	out := make([]Score, 0, len(tags))
	for _, tag := range tags {
		var fs []float64
		for _, h := range combination {
			ranks, ok := rankings[h]
			if !ok {
				continue // heuristic gave no answer for this document
			}
			fs = append(fs, table.Factor(h, ranks[tag]))
		}
		out = append(out, Score{Tag: tag, CF: Combine(fs...)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CF != out[j].CF {
			return out[i].CF > out[j].CF
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}
